(* Recursive-descent parser over a flat token list. Tokens are plain
   strings: punctuation and operators stand for themselves, numbers keep
   their text, identifiers keep their case, and string literals carry a
   leading single quote ("'" ^ contents). Keywords are recognized
   case-insensitively at parse time so identifiers may shadow nothing. *)

let is_ident_start c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'
let is_ident_char c = is_ident_start c || (c >= '0' && c <= '9')
let is_digit c = c >= '0' && c <= '9'

let tokenize input =
  let n = String.length input in
  let tokens = ref [] in
  let error = ref None in
  let i = ref 0 in
  let push t = tokens := t :: !tokens in
  while !error = None && !i < n do
    let c = input.[!i] in
    if c = ' ' || c = '\t' || c = '\n' || c = '\r' then incr i
    else if is_ident_start c then begin
      let start = !i in
      while !i < n && is_ident_char input.[!i] do
        incr i
      done;
      push (String.sub input start (!i - start))
    end
    else if is_digit c then begin
      let start = !i in
      while !i < n && (is_digit input.[!i] || input.[!i] = '.') do
        incr i
      done;
      push (String.sub input start (!i - start))
    end
    else if c = '\'' then begin
      let buf = Buffer.create 16 in
      Buffer.add_char buf '\'';
      incr i;
      let closed = ref false in
      while (not !closed) && !i < n do
        if input.[!i] = '\'' then
          if !i + 1 < n && input.[!i + 1] = '\'' then begin
            Buffer.add_char buf '\'';
            i := !i + 2
          end
          else begin
            closed := true;
            incr i
          end
        else begin
          Buffer.add_char buf input.[!i];
          incr i
        end
      done;
      if !closed then push (Buffer.contents buf)
      else error := Some (Printf.sprintf "unterminated string literal at position %d" !i)
    end
    else begin
      let two = if !i + 1 < n then String.sub input !i 2 else "" in
      match two with
      | "<>" | "<=" | ">=" | "!=" ->
          push (if two = "!=" then "<>" else two);
          i := !i + 2
      | _ -> (
          match c with
          | ',' | '.' | '(' | ')' | '*' | '=' | '<' | '>' | '%' ->
              push (String.make 1 c);
              incr i
          | _ -> error := Some (Printf.sprintf "unexpected character %C at position %d" c !i))
    end
  done;
  match !error with Some e -> Error e | None -> Ok (List.rev !tokens)

(* ------------------------------------------------------------------ *)

exception Parse_error of string

type state = { tokens : string array; mutable pos : int }

let fail fmt = Printf.ksprintf (fun s -> raise (Parse_error s)) fmt

let peek st = if st.pos < Array.length st.tokens then Some st.tokens.(st.pos) else None

let advance st = st.pos <- st.pos + 1

let keyword_matches tok kw = String.lowercase_ascii tok = kw

let accept_keyword st kw =
  match peek st with
  | Some tok when keyword_matches tok kw ->
      advance st;
      true
  | _ -> false

let expect_keyword st kw =
  if not (accept_keyword st kw) then
    fail "expected %S at token %d%s" kw st.pos
      (match peek st with Some t -> Printf.sprintf " (found %S)" t | None -> " (end of input)")

let expect_symbol st sym =
  match peek st with
  | Some tok when tok = sym -> advance st
  | Some tok -> fail "expected %S, found %S" sym tok
  | None -> fail "expected %S, found end of input" sym

let keywords =
  [ "explain"; "select"; "from"; "where"; "group"; "by"; "and"; "as"; "sample"; "using"; "limit"; "order"; "asc"; "desc";
    "count"; "sum"; "avg"; "min"; "max" ]

let ident st =
  match peek st with
  | Some tok
    when String.length tok > 0
         && is_ident_start tok.[0]
         && not (List.mem (String.lowercase_ascii tok) keywords) ->
      advance st;
      tok
  | Some tok -> fail "expected identifier, found %S" tok
  | None -> fail "expected identifier, found end of input"

let column st =
  let first = ident st in
  match peek st with
  | Some "." ->
      advance st;
      let name = ident st in
      { Ast.table = Some first; name }
  | _ -> { Ast.table = None; name = first }

let literal_of_token tok =
  if String.length tok > 0 && tok.[0] = '\'' then
    Some (Ast.L_str (String.sub tok 1 (String.length tok - 1)))
  else
    match int_of_string_opt tok with
    | Some i -> Some (Ast.L_int i)
    | None -> (
        match float_of_string_opt tok with
        | Some f when String.length tok > 0 && is_digit tok.[0] -> Some (Ast.L_float f)
        | _ -> None)

let agg_of_keyword = function
  | "count" -> Some Ast.Count
  | "sum" -> Some Ast.Sum
  | "avg" -> Some Ast.Avg
  | "min" -> Some Ast.Min
  | "max" -> Some Ast.Max
  | _ -> None

let optional_alias st =
  if accept_keyword st "as" then Some (ident st)
  else
    match peek st with
    | Some tok
      when String.length tok > 0
           && is_ident_start tok.[0]
           && not (List.mem (String.lowercase_ascii tok) keywords) ->
        advance st;
        Some tok
    | _ -> None

let select_item st =
  match peek st with
  | Some "*" ->
      advance st;
      Ast.S_star
  | Some tok -> (
      match agg_of_keyword (String.lowercase_ascii tok) with
      | Some f ->
          advance st;
          expect_symbol st "(";
          let arg =
            match peek st with
            | Some "*" ->
                advance st;
                None
            | _ -> Some (column st)
          in
          expect_symbol st ")";
          let alias = optional_alias st in
          Ast.S_agg (f, arg, alias)
      | None ->
          let c = column st in
          let alias = optional_alias st in
          Ast.S_col (c, alias))
  | None -> fail "expected select item, found end of input"

let rec comma_separated st parse_one =
  let first = parse_one st in
  match peek st with
  | Some "," ->
      advance st;
      first :: comma_separated st parse_one
  | _ -> [ first ]

let comparison st =
  match peek st with
  | Some "=" ->
      advance st;
      Ast.Eq
  | Some "<>" ->
      advance st;
      Ast.Ne
  | Some "<" ->
      advance st;
      Ast.Lt
  | Some "<=" ->
      advance st;
      Ast.Le
  | Some ">" ->
      advance st;
      Ast.Gt
  | Some ">=" ->
      advance st;
      Ast.Ge
  | Some tok -> fail "expected comparison operator, found %S" tok
  | None -> fail "expected comparison operator, found end of input"

let condition st =
  let left = column st in
  let cmp = comparison st in
  let right =
    match peek st with
    | Some tok -> (
        match literal_of_token tok with
        | Some lit ->
            advance st;
            Ast.O_lit lit
        | None -> Ast.O_col (column st))
    | None -> fail "expected operand, found end of input"
  in
  { Ast.left; cmp; right }

let rec and_separated st parse_one =
  let first = parse_one st in
  if accept_keyword st "and" then first :: and_separated st parse_one else [ first ]

let table_ref st =
  let name = ident st in
  let alias =
    match peek st with
    | Some tok
      when String.length tok > 0
           && is_ident_start tok.[0]
           && not (List.mem (String.lowercase_ascii tok) keywords) ->
        advance st;
        Some tok
    | _ -> None
  in
  (name, alias)

let positive_int st what =
  match peek st with
  | Some tok -> (
      match int_of_string_opt tok with
      | Some v when v >= 0 ->
          advance st;
          v
      | _ -> fail "expected non-negative integer after %s, found %S" what tok)
  | None -> fail "expected integer after %s" what

let query st =
  let explain = accept_keyword st "explain" in
  expect_keyword st "select";
  let select = comma_separated st select_item in
  expect_keyword st "from";
  let from = comma_separated st table_ref in
  let where = if accept_keyword st "where" then and_separated st condition else [] in
  (* GROUP BY, SAMPLE and LIMIT may appear in any order (sampling is
     applied below aggregation regardless), each at most once. *)
  let group_by = ref None and order_by = ref None and sample = ref None and limit = ref None in
  let once what cell v = match !cell with
    | Some _ -> fail "duplicate %s clause" what
    | None -> cell := Some v
  in
  let continue = ref true in
  while !continue do
    if accept_keyword st "group" then begin
      expect_keyword st "by";
      once "GROUP BY" group_by (comma_separated st column)
    end
    else if accept_keyword st "sample" then begin
      (* SAMPLE n (absolute) or SAMPLE p% (fraction of the estimated
         join size, resolved at planning time). The fraction may be
         non-integral ("sample 2.5%") and must lie in (0, 100]. *)
      let num =
        match peek st with
        | Some tok -> (
            match float_of_string_opt tok with
            | Some v when v >= 0. && String.length tok > 0 && is_digit tok.[0] ->
                advance st;
                v
            | _ -> fail "expected non-negative number after SAMPLE, found %S" tok)
        | None -> fail "expected number after SAMPLE"
      in
      let size =
        match peek st with
        | Some "%" ->
            advance st;
            if num <= 0. || num > 100. then
              fail "SAMPLE fraction must be in (0, 100], got %g%%" num;
            Ast.Pct num
        | _ ->
            if Float.is_integer num then Ast.Abs (int_of_float num)
            else fail "SAMPLE size must be an integer (or a percentage), got %g" num
      in
      let strategy = if accept_keyword st "using" then Some (ident st) else None in
      once "SAMPLE" sample { Ast.size; strategy }
    end
    else if accept_keyword st "order" then begin
      expect_keyword st "by";
      let one st =
        let c = column st in
        let dir =
          if accept_keyword st "desc" then Ast.Desc
          else begin
            ignore (accept_keyword st "asc");
            Ast.Asc
          end
        in
        (c, dir)
      in
      once "ORDER BY" order_by (comma_separated st one)
    end
    else if accept_keyword st "limit" then once "LIMIT" limit (positive_int st "LIMIT")
    else continue := false
  done;
  (match peek st with
  | Some tok -> fail "unexpected trailing token %S" tok
  | None -> ());
  {
    Ast.explain;
    select;
    from;
    where;
    group_by = Option.value ~default:[] !group_by;
    order_by = Option.value ~default:[] !order_by;
    sample = !sample;
    limit = !limit;
  }

let parse input =
  match tokenize input with
  | Error e -> Error e
  | Ok tokens -> (
      let st = { tokens = Array.of_list tokens; pos = 0 } in
      try Ok (query st) with Parse_error msg -> Error msg)

(** Abstract syntax for the SQL subset.

    The dialect covers the paper's experimental queries
    ([SELECT * FROM t1, t2 WHERE t1.col2 = t2.col2]) extended with the
    sampling clause the paper proposes as a language primitive
    ([SAMPLE n [USING strategy]]), plus filters, GROUP BY aggregation
    and LIMIT — enough to express the motivating OLAP examples. *)

type literal = L_int of int | L_float of float | L_str of string

type column = { table : string option; name : string }
(** A possibly-qualified column reference. *)

type comparison = Eq | Ne | Lt | Le | Gt | Ge

type operand = O_col of column | O_lit of literal

type condition = { left : column; cmp : comparison; right : operand }
(** Conditions are conjunctive (WHERE c1 AND c2 AND ...). *)

type agg_func = Count | Sum | Avg | Min | Max

type select_item =
  | S_star
  | S_col of column * string option  (** column [AS alias] *)
  | S_agg of agg_func * column option * string option
      (** agg(column) or COUNT( * ), with optional alias. *)

type direction = Asc | Desc

(** Requested sample size: an absolute tuple count, or a percentage of
    the (estimated) join size. The fraction form resolves to an
    absolute r at planning time, {e before} the cost-based picker runs
    (the picker's cost formulas take absolute r). *)
type sample_size =
  | Abs of int  (** [SAMPLE n] — n tuples, WR semantics. *)
  | Pct of float  (** [SAMPLE p%] — p in (0, 100], of the join size. *)

type sample_clause = {
  size : sample_size;
  strategy : string option;
      (** Strategy name after USING; [None] = cost-based picker (or a
          root reservoir when the query shape is not a two-table
          equi-join). *)
}

val sample_size_to_string : sample_size -> string

type query = {
  explain : bool;  (** [EXPLAIN SELECT ...]: plan (and pick), don't execute. *)
  select : select_item list;
  from : (string * string option) list;  (** table [alias], join order = list order. *)
  where : condition list;
  group_by : column list;
  order_by : (column * direction) list;
      (** Applied to the {e output} columns (post projection/aggregation),
          resolved by name. *)
  sample : sample_clause option;
  limit : int option;
}

val pp_query : Format.formatter -> query -> unit
val column_to_string : column -> string

type literal = L_int of int | L_float of float | L_str of string

type column = { table : string option; name : string }

type comparison = Eq | Ne | Lt | Le | Gt | Ge

type operand = O_col of column | O_lit of literal

type condition = { left : column; cmp : comparison; right : operand }

type agg_func = Count | Sum | Avg | Min | Max

type select_item =
  | S_star
  | S_col of column * string option
  | S_agg of agg_func * column option * string option

type direction = Asc | Desc

type sample_size = Abs of int | Pct of float

type sample_clause = { size : sample_size; strategy : string option }

let sample_size_to_string = function
  | Abs n -> string_of_int n
  | Pct p -> Printf.sprintf "%g%%" p

type query = {
  explain : bool;  (** [EXPLAIN SELECT ...]: plan, don't execute. *)
  select : select_item list;
  from : (string * string option) list;
  where : condition list;
  group_by : column list;
  order_by : (column * direction) list;
  sample : sample_clause option;
  limit : int option;
}

let column_to_string c =
  match c.table with Some t -> t ^ "." ^ c.name | None -> c.name

let literal_to_string = function
  | L_int i -> string_of_int i
  | L_float f -> Printf.sprintf "%g" f
  | L_str s -> Printf.sprintf "'%s'" s

let comparison_to_string = function
  | Eq -> "="
  | Ne -> "<>"
  | Lt -> "<"
  | Le -> "<="
  | Gt -> ">"
  | Ge -> ">="

let agg_to_string = function
  | Count -> "count"
  | Sum -> "sum"
  | Avg -> "avg"
  | Min -> "min"
  | Max -> "max"

let select_item_to_string = function
  | S_star -> "*"
  | S_col (c, alias) ->
      column_to_string c ^ (match alias with Some a -> " as " ^ a | None -> "")
  | S_agg (f, arg, alias) ->
      agg_to_string f ^ "("
      ^ (match arg with Some c -> column_to_string c | None -> "*")
      ^ ")"
      ^ (match alias with Some a -> " as " ^ a | None -> "")

let pp_query ppf q =
  if q.explain then Format.fprintf ppf "explain ";
  Format.fprintf ppf "select %s from %s"
    (String.concat ", " (List.map select_item_to_string q.select))
    (String.concat ", "
       (List.map
          (fun (t, alias) -> match alias with Some a -> t ^ " " ^ a | None -> t)
          q.from));
  if q.where <> [] then
    Format.fprintf ppf " where %s"
      (String.concat " and "
         (List.map
            (fun c ->
              Printf.sprintf "%s %s %s" (column_to_string c.left)
                (comparison_to_string c.cmp)
                (match c.right with
                | O_col col -> column_to_string col
                | O_lit l -> literal_to_string l))
            q.where));
  if q.group_by <> [] then
    Format.fprintf ppf " group by %s"
      (String.concat ", " (List.map column_to_string q.group_by));
  if q.order_by <> [] then
    Format.fprintf ppf " order by %s"
      (String.concat ", "
         (List.map
            (fun (c, d) ->
              column_to_string c ^ (match d with Asc -> "" | Desc -> " desc"))
            q.order_by));
  (match q.sample with
  | Some s ->
      Format.fprintf ppf " sample %s%s" (sample_size_to_string s.size)
        (match s.strategy with Some st -> " using " ^ st | None -> "")
  | None -> ());
  match q.limit with Some n -> Format.fprintf ppf " limit %d" n | None -> ()

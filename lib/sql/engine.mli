(** Planner and executor for the SQL subset.

    Turns a parsed {!Ast.query} into an {!Rsj_exec.Plan} over a catalog
    of named relations, then runs it. The [SAMPLE n] clause implements
    the paper's proposal of sampling as a language primitive:

    - [SAMPLE n] on a single equi-join of two tables routes through the
      cost-based picker ({!Rsj_optimizer.Picker}): the engine snapshots
      an exact catalog, costs every strategy (Theorems 5–9), runs the
      winner, and records the decision trace in the result. On any
      other query shape it places a WR reservoir (Black-Box U2) at the
      root of the query tree — the Naive-Sample construction, valid
      for any query shape;
    - [SAMPLE n USING <strategy>] pushes the named strategy into the
      join; this requires the query to be a single equi-join of two
      tables (the setting of §5–6). Single-table constant filters are
      pushed below the sampling first — selection commutes with
      sampling (§1) — so [WHERE t1.a = t2.a AND t1.x > 5] is sampled
      correctly.
    - [EXPLAIN SELECT ...] plans (and, for picked samples, decides)
      without executing: the result carries the plan and decision with
      no rows.

    Aggregation over a sample estimates the aggregate over the full
    result scaled via {!Rsj_core.Aqp} only in the examples; the engine
    itself evaluates aggregates over whatever rows reach them, exactly
    as a real engine running on a sample operator would. *)

open Rsj_relation

type catalog = (string * Relation.t) list
(** Name → relation bindings visible to FROM. *)

type query_result = {
  schema : Schema.t;
  rows : Tuple.t list;  (** Empty when [explained]. *)
  metrics : Rsj_exec.Metrics.t;
  plan : Rsj_exec.Plan.t;  (** The executed plan, for EXPLAIN. *)
  decision : Rsj_optimizer.Picker.decision option;
      (** Present iff the picker routed a plain [SAMPLE n]. *)
  explained : bool;  (** The query carried an [EXPLAIN] prefix. *)
}

val plan_query : ?seed:int -> catalog -> Ast.query -> (Rsj_exec.Plan.t, string) result
(** Plan without executing. *)

val run_query : ?seed:int -> catalog -> Ast.query -> (query_result, string) result
val run : ?seed:int -> catalog -> string -> (query_result, string) result
(** Parse + plan + execute. All errors (syntax, unknown table/column,
    ambiguity, unsupported sampling shape) come back as [Error msg]. *)

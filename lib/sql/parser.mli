(** Hand-written recursive-descent parser for the SQL subset.

    Grammar (case-insensitive keywords):
    {v
    query    ::= [EXPLAIN] SELECT items FROM tables [WHERE conds]
                 [GROUP BY columns] [SAMPLE int [USING ident]] [LIMIT int]
    items    ::= '*' | item (',' item)*
    item     ::= column [AS ident]
               | (COUNT|SUM|AVG|MIN|MAX) '(' (column | '*') ')' [AS ident]
    tables   ::= table (',' table)*     -- list order = join order
    table    ::= ident [ident]          -- optional alias
    conds    ::= cond (AND cond)*
    cond     ::= column op (column | literal)
    op       ::= '=' | '<>' | '!=' | '<' | '<=' | '>' | '>='
    column   ::= ident ['.' ident]
    literal  ::= integer | float | string in single quotes
    v} *)

val parse : string -> (Ast.query, string) result
(** Parse one query; error messages carry a character position. *)

val tokenize : string -> (string list, string) result
(** Exposed for tests: the token stream (lowercased keywords/symbols,
    identifiers as-is, strings tagged with a leading ['\'']). *)

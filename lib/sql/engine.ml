open Rsj_relation
module Plan = Rsj_exec.Plan
module Metrics = Rsj_exec.Metrics
module Predicate = Rsj_exec.Predicate
module Aggregate = Rsj_exec.Aggregate
module Strategy = Rsj_core.Strategy

type catalog = (string * Relation.t) list

type query_result = {
  schema : Schema.t;
  rows : Tuple.t list;
  metrics : Metrics.t;
  plan : Plan.t;
  decision : Rsj_optimizer.Picker.decision option;
  explained : bool;
}

exception Plan_error of string

let fail fmt = Printf.ksprintf (fun s -> raise (Plan_error s)) fmt

(* A bound table: how FROM entry [index] maps into the concatenated
   join row. *)
type binding = {
  label : string;  (* alias if given, else table name *)
  relation : Relation.t;
  offset : int;  (* first column of this table in the joined row *)
}

let lookup_table catalog name =
  match List.assoc_opt name catalog with
  | Some rel -> rel
  | None -> fail "unknown table %S" name

let bind_tables catalog from =
  let seen = Hashtbl.create 8 in
  let offset = ref 0 in
  List.map
    (fun (name, alias) ->
      let rel = lookup_table catalog name in
      let label = Option.value ~default:name alias in
      if Hashtbl.mem seen label then fail "duplicate table label %S in FROM" label;
      Hashtbl.replace seen label ();
      let b = { label; relation = rel; offset = !offset } in
      offset := !offset + Schema.arity (Relation.schema rel);
      b)
    from

(* Resolve a column reference against a subset of bindings; returns the
   global position in the joined row. *)
let resolve bindings (c : Ast.column) =
  let candidates =
    List.filter_map
      (fun b ->
        let matches_table =
          match c.Ast.table with None -> true | Some t -> t = b.label
        in
        if not matches_table then None
        else
          Option.map
            (fun idx -> (b, b.offset + idx))
            (Schema.column_index_opt (Relation.schema b.relation) c.Ast.name))
      bindings
  in
  match candidates with
  | [ (_, pos) ] -> pos
  | [] -> fail "unknown column %s" (Ast.column_to_string c)
  | _ :: _ :: _ -> fail "ambiguous column %s" (Ast.column_to_string c)

let resolve_opt bindings c =
  match resolve bindings c with pos -> Some pos | exception Plan_error _ -> None

let value_of_literal = function
  | Ast.L_int i -> Value.Int i
  | Ast.L_float f -> Value.Float f
  | Ast.L_str s -> Value.Str s

let constant_predicate pos cmp lit =
  let v = value_of_literal lit in
  match (cmp : Ast.comparison) with
  | Eq -> Predicate.Eq (pos, v)
  | Ne -> Predicate.Ne (pos, v)
  | Lt -> Predicate.Lt (pos, v)
  | Le -> Predicate.Le (pos, v)
  | Gt -> Predicate.Gt (pos, v)
  | Ge -> Predicate.Ge (pos, v)

let column_predicate lpos cmp rpos =
  let test op row =
    let a = Tuple.get row lpos and b = Tuple.get row rpos in
    (not (Value.is_null a)) && (not (Value.is_null b)) && op (Value.compare a b) 0
  in
  let name op_str = Printf.sprintf "#%d %s #%d" lpos op_str rpos in
  match (cmp : Ast.comparison) with
  | Eq -> Predicate.Custom (name "=", test ( = ))
  | Ne -> Predicate.Custom (name "<>", test ( <> ))
  | Lt -> Predicate.Custom (name "<", test ( < ))
  | Le -> Predicate.Custom (name "<=", test ( <= ))
  | Gt -> Predicate.Custom (name ">", test ( > ))
  | Ge -> Predicate.Custom (name ">=", test ( >= ))

(* Split WHERE into: per-table constant conditions, equi-join
   conditions (col = col across tables), and everything else. *)
type classified = {
  constants : (string * Ast.condition) list;  (* binding label, cond *)
  equijoins : (Ast.column * Ast.column) list;
  residual : Ast.condition list;
}

let classify bindings conds =
  let binding_of c =
    List.find_opt
      (fun b ->
        (match c.Ast.table with None -> true | Some t -> t = b.label)
        && Schema.column_index_opt (Relation.schema b.relation) c.Ast.name <> None)
      bindings
  in
  List.fold_left
    (fun acc cond ->
      match cond.Ast.right with
      | Ast.O_lit _ -> (
          match binding_of cond.Ast.left with
          | Some b -> { acc with constants = (b.label, cond) :: acc.constants }
          | None -> fail "unknown column %s" (Ast.column_to_string cond.Ast.left))
      | Ast.O_col rc -> (
          match (cond.Ast.cmp, binding_of cond.Ast.left, binding_of rc) with
          | Ast.Eq, Some bl, Some br when bl.label <> br.label ->
              { acc with equijoins = (cond.Ast.left, rc) :: acc.equijoins }
          | _ -> { acc with residual = cond :: acc.residual }))
    { constants = []; equijoins = []; residual = [] }
    conds

(* ------------------------------------------------------------------ *)
(* Join tree construction (left-deep, FROM order)                      *)

let build_join_tree bindings equijoins =
  match bindings with
  | [] -> fail "FROM list is empty"
  | first :: rest ->
      let used = ref [] in
      let bound = ref [ first ] in
      let plan = ref (Plan.Scan first.relation) in
      List.iter
        (fun b ->
          (* Find an equi-join between the bound prefix and table b. *)
          let found =
            List.find_opt
              (fun (l, r) ->
                let in_prefix c = resolve_opt !bound c <> None in
                let in_new c = resolve_opt [ { b with offset = 0 } ] c <> None in
                (in_prefix l && in_new r) || (in_prefix r && in_new l))
              (List.filter (fun j -> not (List.memq j !used)) equijoins)
          in
          match found with
          | None ->
              fail "no equi-join predicate connects table %S to the preceding tables" b.label
          | Some ((l, r) as j) ->
              used := j :: !used;
              let prefix_col, new_col =
                if resolve_opt !bound l <> None then (l, r) else (r, l)
              in
              let left_key = resolve !bound prefix_col in
              let right_key = resolve [ { b with offset = 0 } ] new_col in
              plan :=
                Plan.Join
                  {
                    Plan.algorithm = Plan.Hash;
                    left = !plan;
                    right = Plan.Scan b.relation;
                    left_key;
                    right_key;
                  };
              bound := !bound @ [ b ])
        rest;
      let unused =
        List.filter (fun j -> not (List.memq j !used)) equijoins
      in
      (!plan, !bound, unused)

(* ------------------------------------------------------------------ *)
(* Sampling                                                            *)

let filtered_relation b conds =
  if conds = [] then b.relation
  else begin
    let local = [ { b with offset = 0 } ] in
    let preds =
      List.map
        (fun cond ->
          let pos = resolve local cond.Ast.left in
          match cond.Ast.right with
          | Ast.O_lit lit -> constant_predicate pos cond.Ast.cmp lit
          | Ast.O_col _ -> assert false)
        conds
    in
    let out = Relation.create ~name:(b.label ^ "_filtered") (Relation.schema b.relation) in
    Relation.iter b.relation (fun row ->
        if List.for_all (fun p -> Predicate.eval p row) preds then
          Relation.append_unchecked out row);
    out
  end

let valid_strategy_names () =
  String.concat ", " (List.map Strategy.name Strategy.all)

(* How the sampling strategy was determined: spelled out in the query
   ([USING <name>]) or left to the cost-based picker. *)
type sample_route = Named of Strategy.t | Picked

let picker_shape_ok bindings classified =
  match (bindings, classified.equijoins, classified.residual) with
  | [ _; _ ], [ _ ], [] -> true
  | _ -> false

(* Resolve a SAMPLE size to an absolute tuple count. The fraction form
   is a share of the join size, which the env's frequency statistics
   give exactly (and, routed through the structure cache, cheaply);
   this happens before the picker runs, so the picker's cost formulas
   always see absolute r. *)
let resolve_sample_size env (size : Ast.sample_size) =
  match size with
  | Ast.Abs n -> n
  | Ast.Pct p ->
      let join_size = Strategy.env_join_size env in
      if join_size = 0 then 0
      else max 1 (int_of_float (Float.ceil (p /. 100. *. float_of_int join_size)))

let strategy_sample_plan ~seed bindings classified (sample : Ast.sample_clause) route =
  match (bindings, classified.equijoins, classified.residual) with
  | [ b1; b2 ], [ (l, r) ], [] ->
      (* Push constant selections below the sampling (selection
         commutes with sampling), then run the strategy. *)
      let conds_for label =
        List.filter_map
          (fun (lbl, c) -> if lbl = label then Some c else None)
          classified.constants
      in
      let left_rel = filtered_relation b1 (conds_for b1.label) in
      let right_rel = filtered_relation b2 (conds_for b2.label) in
      let local1 = [ { b1 with relation = left_rel; offset = 0 } ] in
      let local2 = [ { b2 with relation = right_rel; offset = 0 } ] in
      let left_key, right_key =
        if resolve_opt local1 l <> None && resolve_opt local2 r <> None then
          (resolve local1 l, resolve local2 r)
        else (resolve local1 r, resolve local2 l)
      in
      let env =
        (* Unfiltered inputs are the caller's own relations: their
           auxiliary structures are memoized in the shared structure
           cache, so repeated queries stop rebuilding. A filtered input
           is a fresh one-shot relation — don't pollute the cache. *)
        if left_rel == b1.relation && right_rel == b2.relation then
          Rsj_cache.Structure_cache.env
            (Rsj_cache.Structure_cache.shared ())
            ~seed ~left:left_rel ~right:right_rel ~left_key ~right_key ()
        else Strategy.make_env ~seed ~left:left_rel ~right:right_rel ~left_key ~right_key ()
      in
      let size = resolve_sample_size env sample.Ast.size in
      let strategy, decision =
        match route with
        | Named s -> (s, None)
        | Picked ->
            (* The engine owns materialized relations, so every
               auxiliary structure of Table 1 is constructible: the
               picker decides on cost alone, over an exact catalog. *)
            let catalog =
              Rsj_optimizer.Catalog.of_env ~availability:Strategy.all_available env
            in
            let shape = Rsj_optimizer.Cost_model.shape ~r:size in
            let s, d = Rsj_optimizer.Picker.choose_counted catalog shape in
            (s, Some d)
      in
      let res = Strategy.run env strategy ~r:size in
      let schema =
        Schema.concat (Relation.schema left_rel) (Relation.schema right_rel)
      in
      let rows = res.Strategy.sample in
      ( Plan.source_of_stream ~name:(Printf.sprintf "Sample[%s, r=%d]" (Strategy.name strategy) size)
          schema
          (fun () -> Stream0.of_array rows),
        decision )
  | _ ->
      fail
        "SAMPLE ... USING requires exactly two tables joined by one equi-join predicate and \
         no cross-table filters (got %d tables, %d join predicates, %d residual conditions)"
        (List.length bindings)
        (List.length classified.equijoins)
        (List.length classified.residual)

(* Linear-chain detection for k >= 3 tables: exactly k-1 equi-joins,
   each pairing two consecutive FROM tables (one per edge, either
   orientation), and no residual conditions. Returns the columns per
   edge oriented FROM-order (left table's column first), or [None]
   when the shape doesn't hold and the query falls through to the
   reservoir path. *)
let chain_edges bindings classified =
  let k = List.length bindings in
  if k < 3 || classified.residual <> [] || List.length classified.equijoins <> k - 1 then
    None
  else begin
    let arr = Array.of_list bindings in
    let local i = [ { arr.(i) with offset = 0 } ] in
    let remaining = ref classified.equijoins in
    let edges = Array.make (k - 1) None in
    try
      for i = 0 to k - 2 do
        let found =
          List.find_opt
            (fun (l, r) ->
              (resolve_opt (local i) l <> None && resolve_opt (local (i + 1)) r <> None)
              || (resolve_opt (local i) r <> None && resolve_opt (local (i + 1)) l <> None))
            !remaining
        in
        match found with
        | None -> raise Exit
        | Some ((l, r) as j) ->
            remaining := List.filter (fun x -> x != j) !remaining;
            let a, b = if resolve_opt (local i) l <> None then (l, r) else (r, l) in
            edges.(i) <- Some (a, b)
      done;
      Some (Array.map Option.get edges)
    with Exit -> None
  end

(* Plain SAMPLE over a linear chain: route it into the chain walker —
   exact WR sampling with no join materialization at all. The prepared
   walker (weight tables + per-value draw tables on the current
   RSJ_DRAW plane) is memoized in the shared structure cache whenever
   every input is unfiltered, so a warm daemon pays only the O(k) walk
   per drawn tuple. The fraction form resolves against the walker's
   exact join size (paper §7.2's precomputed-statistics argument,
   extended along the chain). *)
let chain_sample_plan ~seed bindings classified (sample : Ast.sample_clause) edges =
  let conds_for label =
    List.filter_map
      (fun (lbl, c) -> if lbl = label then Some c else None)
      classified.constants
  in
  let arr = Array.of_list bindings in
  let rels = Array.map (fun b -> filtered_relation b (conds_for b.label)) arr in
  let join_keys =
    Array.mapi
      (fun i (a, b) ->
        let la = [ { arr.(i) with relation = rels.(i); offset = 0 } ] in
        let lb = [ { arr.(i + 1) with relation = rels.(i + 1); offset = 0 } ] in
        (resolve la a, resolve lb b))
      edges
  in
  let spec = { Rsj_core.Chain_sample.relations = rels; join_keys } in
  let unfiltered = ref true in
  Array.iteri (fun i b -> if rels.(i) != b.relation then unfiltered := false) arr;
  let cs =
    if !unfiltered then
      Rsj_cache.Structure_cache.chain (Rsj_cache.Structure_cache.shared ()) spec
    else Rsj_core.Chain_sample.prepare spec
  in
  let size =
    match sample.Ast.size with
    | Ast.Abs n -> n
    | Ast.Pct p ->
        let join_size = Rsj_core.Chain_sample.join_size cs in
        if join_size <= 0. then 0
        else max 1 (int_of_float (Float.ceil (p /. 100. *. join_size)))
  in
  let rng = Rsj_util.Prng.create ~seed () in
  let rows = Rsj_core.Chain_sample.sample cs rng ~r:size () in
  let schema =
    Array.fold_left
      (fun acc rel ->
        match acc with
        | None -> Some (Relation.schema rel)
        | Some s -> Some (Schema.concat s (Relation.schema rel)))
      None rels
    |> Option.get
  in
  ( Plan.source_of_stream ~name:(Printf.sprintf "Sample[chain-walk, r=%d]" size) schema
      (fun () -> Stream0.of_array rows),
    None )

(* ------------------------------------------------------------------ *)
(* Aggregation and projection                                          *)

let has_aggregates select =
  List.exists (function Ast.S_agg _ -> true | Ast.S_star | Ast.S_col _ -> false) select

let agg_name f arg alias =
  match alias with
  | Some a -> a
  | None -> (
      let base =
        match (f : Ast.agg_func) with
        | Count -> "count"
        | Sum -> "sum"
        | Avg -> "avg"
        | Min -> "min"
        | Max -> "max"
      in
      match arg with
      | Some c -> Printf.sprintf "%s(%s)" base (Ast.column_to_string c)
      | None -> base ^ "(*)")

let build_aggregation bindings query plan =
  let group_positions = List.map (resolve bindings) query.Ast.group_by in
  (* Select items map onto (aggregate list, output projection). *)
  let aggregates = ref [] in
  let projections =
    List.map
      (fun item ->
        match item with
        | Ast.S_star -> fail "SELECT * cannot be combined with aggregation"
        | Ast.S_col (c, _) -> (
            let pos = resolve bindings c in
            match List.mapi (fun i p -> (i, p)) group_positions
                  |> List.find_opt (fun (_, p) -> p = pos)
            with
            | Some (i, _) -> `Group i
            | None ->
                fail "column %s must appear in GROUP BY" (Ast.column_to_string c))
        | Ast.S_agg (f, arg, alias) ->
            let func =
              match ((f : Ast.agg_func), arg) with
              | Count, None -> Aggregate.Count
              | Count, Some c -> Aggregate.Count_col (resolve bindings c)
              | Sum, Some c -> Aggregate.Sum (resolve bindings c)
              | Avg, Some c -> Aggregate.Avg (resolve bindings c)
              | Min, Some c -> Aggregate.Min (resolve bindings c)
              | Max, Some c -> Aggregate.Max (resolve bindings c)
              | (Sum | Avg | Min | Max), None ->
                  fail "%s requires a column argument" (agg_name f None alias)
            in
            aggregates := (agg_name f arg alias, func) :: !aggregates;
            `Agg (List.length !aggregates - 1))
      query.Ast.select
  in
  let aggregates = List.rev !aggregates in
  let spec = { Aggregate.group_by = group_positions; aggregates } in
  let aggregated = Aggregate.plan spec plan in
  (* Aggregate output: group columns first, then aggregates in spec
     order; project into SELECT order. *)
  let n_groups = List.length group_positions in
  let cols =
    List.map (function `Group i -> i | `Agg i -> n_groups + i) projections
  in
  Plan.Project (cols, aggregated)

let build_projection bindings select plan =
  if List.for_all (function Ast.S_star -> true | _ -> false) select then plan
  else begin
    let cols =
      List.concat_map
        (function
          | Ast.S_star -> fail "SELECT * cannot be mixed with explicit columns"
          | Ast.S_col (c, _) -> [ resolve bindings c ]
          | Ast.S_agg _ -> assert false)
        select
    in
    Plan.Project (cols, plan)
  end

(* ------------------------------------------------------------------ *)

let plan_query_exn ?(seed = 0x5EED) catalog (query : Ast.query) =
  if query.Ast.select = [] then fail "empty SELECT list";
  let bindings = bind_tables catalog query.Ast.from in
  let classified = classify bindings query.Ast.where in
  let sampled_source =
    match query.Ast.sample with
    | Some ({ Ast.strategy = Some strat; _ } as sample) ->
        let strategy =
          match Strategy.of_name strat with
          | Some s -> s
          | None ->
              fail "unknown sampling strategy %S (valid: %s)" strat
                (valid_strategy_names ())
        in
        Some (strategy_sample_plan ~seed bindings classified sample (Named strategy))
    | Some ({ Ast.strategy = None; _ } as sample)
      when picker_shape_ok bindings classified ->
        (* Plain SAMPLE n on the two-table equi-join shape: let the
           cost-based picker route it into the join. *)
        Some (strategy_sample_plan ~seed bindings classified sample Picked)
    | Some ({ Ast.strategy = None; _ } as sample) -> (
        (* Three or more tables: if the joins form a linear chain,
           route into the chain walker (no join is ever materialized).
           Other shapes fall through to the reservoir below. *)
        match chain_edges bindings classified with
        | Some edges -> Some (chain_sample_plan ~seed bindings classified sample edges)
        | None -> None)
    | None -> None
  in
  let decision = Option.bind sampled_source snd in
  let base_plan =
    match sampled_source with
    | Some (p, _) -> p
    | None ->
        let joined, _bound, unused_joins = build_join_tree bindings classified.equijoins in
        (* Constant and residual conditions become filters above the
           join tree (the executor has no per-table pushdown need at
           this scale, and correctness is identical). *)
        let with_constants =
          List.fold_left
            (fun acc (_, cond) ->
              let pos = resolve bindings cond.Ast.left in
              match cond.Ast.right with
              | Ast.O_lit lit -> Plan.Filter (constant_predicate pos cond.Ast.cmp lit, acc)
              | Ast.O_col _ -> assert false)
            joined classified.constants
        in
        let with_residual =
          List.fold_left
            (fun acc cond ->
              match cond.Ast.right with
              | Ast.O_col rc ->
                  let lpos = resolve bindings cond.Ast.left in
                  let rpos = resolve bindings rc in
                  Plan.Filter (column_predicate lpos cond.Ast.cmp rpos, acc)
              | Ast.O_lit _ -> assert false)
            with_constants classified.residual
        in
        let with_unused_joins =
          List.fold_left
            (fun acc (l, r) ->
              let lpos = resolve bindings l and rpos = resolve bindings r in
              Plan.Filter (column_predicate lpos Ast.Eq rpos, acc))
            with_residual unused_joins
        in
        (* Plain SAMPLE n: reservoir at the root (Naive-Sample). The
           fraction form needs a join-size estimate, which only the
           two-table equi-join shape provides. *)
        (match query.Ast.sample with
        | Some { Ast.size = Ast.Abs size; strategy = None } ->
            let rng = Rsj_util.Prng.create ~seed () in
            Rsj_core.Sample_op.u2 rng ~r:size with_unused_joins
        | Some { Ast.size = Ast.Pct _; strategy = None } ->
            fail
              "SAMPLE with a percentage requires the two-table equi-join or linear-chain \
               shape (the fraction resolves against the known join size)"
        | Some _ | None -> with_unused_joins)
  in
  let sort_plan keys names plan =
    let compare_rows a b =
      let rec go = function
        | [] -> 0
        | (pos, dir) :: rest ->
            let c = Value.compare (Tuple.get a pos) (Tuple.get b pos) in
            let c = match dir with Ast.Asc -> c | Ast.Desc -> -c in
            if c <> 0 then c else go rest
      in
      go keys
    in
    Plan.Transform
      {
        Plan.transform_name = Printf.sprintf "OrderBy [%s]" (String.concat ", " names);
        child = plan;
        out_schema = None;
        apply =
          (fun metrics stream ->
            let rows = Stream0.to_array stream in
            metrics.Metrics.sort_tuples <- metrics.Metrics.sort_tuples + Array.length rows;
            Array.sort compare_rows rows;
            Stream0.of_array rows);
      }
  in
  let order_names =
    List.map
      (fun ((c : Ast.column), d) ->
        Ast.column_to_string c ^ match d with Ast.Asc -> "" | Ast.Desc -> " desc")
      query.Ast.order_by
  in
  let aggregated = has_aggregates query.Ast.select || query.Ast.group_by <> [] in
  let shaped =
    if aggregated then begin
      let plan = build_aggregation bindings query base_plan in
      if query.Ast.order_by = [] then plan
      else begin
        (* With aggregation, ORDER BY resolves against the output
           schema by (possibly aliased) column name. *)
        let out_schema = Plan.schema_of plan in
        let keys =
          List.map
            (fun ((c : Ast.column), dir) ->
              match Schema.column_index_opt out_schema c.Ast.name with
              | Some pos -> (pos, dir)
              | None ->
                  fail "ORDER BY column %s is not in the output" (Ast.column_to_string c))
            query.Ast.order_by
        in
        sort_plan keys order_names plan
      end
    end
    else begin
      (* Without aggregation, ORDER BY may reference any underlying
         column (SQL semantics): sort before projecting. *)
      let plan =
        if query.Ast.order_by = [] then base_plan
        else begin
          let keys =
            List.map (fun (c, dir) -> (resolve bindings c, dir)) query.Ast.order_by
          in
          sort_plan keys order_names base_plan
        end
      in
      build_projection bindings query.Ast.select plan
    end
  in
  let final = match query.Ast.limit with Some n -> Plan.Limit (n, shaped) | None -> shaped in
  (final, decision)

let plan_query ?seed catalog query =
  try Ok (fst (plan_query_exn ?seed catalog query)) with Plan_error msg -> Error msg

let run_query ?seed catalog query =
  match (try Ok (plan_query_exn ?seed catalog query) with Plan_error msg -> Error msg) with
  | Error _ as e -> e
  | Ok (plan, decision) -> (
      try
        let metrics = Metrics.create () in
        let rows =
          (* EXPLAIN: plan (and decide) but do not execute. *)
          if query.Ast.explain then [] else Plan.collect ~metrics plan
        in
        Ok
          {
            schema = Plan.schema_of plan;
            rows;
            metrics;
            plan;
            decision;
            explained = query.Ast.explain;
          }
      with Plan_error msg -> Error msg)

let run ?seed catalog input =
  match Parser.parse input with
  | Error msg -> Error ("parse error: " ^ msg)
  | Ok query -> run_query ?seed catalog query

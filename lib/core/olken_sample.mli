(** Strategy Olken-Sample (paper §5.3; Olken & Rotem / Olken's thesis) —
    the pre-existing Case C baseline.

    Repeatedly: draw a uniform random tuple t1 from R1 (random access —
    hence the index/materialization requirement on R1), draw a uniform
    random matching tuple t2 from R2 (index), and {e accept} the pair
    with probability m2(t1.A) / M where M bounds m2; otherwise reject
    and retry. Theorem 5: expected M·n1/n iterations per output tuple.
    The rejection step is the inefficiency Stream-Sample eliminates. *)

open Rsj_relation
open Rsj_exec

val default_max_iterations : int
(** The default global iteration budget ([500_000_000]). *)

val attempt :
  Rsj_util.Prng.t ->
  metrics:Metrics.t ->
  left:Relation.t ->
  left_key:int ->
  right_index:Rsj_index.Hash_index.t ->
  m:int ->
  Tuple.t option
(** One accept/reject round: a uniform t1, a uniform matching t2, a
    Bernoulli(m2(t1.A)/m) acceptance. [Some (t1 ⋈ t2)] on acceptance,
    [None] on rejection or when t1 has no match. Each call is an iid
    draw — conditional on acceptance the joined tuple is uniform on
    R1 ⋈ R2 — which is what lets the parallel runtime run independent
    rounds speculatively on every domain
    ({!Rsj_parallel}). [m] must bound every m2(v). *)

val attempt_int :
  Rsj_util.Prng.t ->
  metrics:Metrics.t ->
  left_n:int ->
  keys1:int array ->
  right_index:Rsj_index.Hash_index.t ->
  m:int ->
  int
(** Columnar twin of {!attempt} over the flat R1 key column: the packed
    (left row, right row) pair ({!Internals_int.pack}) on acceptance,
    [-1] on rejection — drawing from the generator exactly as
    {!attempt} does. *)

val sample_int :
  Rsj_util.Prng.t ->
  metrics:Metrics.t ->
  r:int ->
  left:Relation.t ->
  keys1:int array ->
  right_index:Rsj_index.Hash_index.t ->
  ?m_bound:int ->
  ?max_iterations:int ->
  unit ->
  Tuple.t array
(** Columnar twin of {!sample}: the rejection loop runs {!attempt_int}
    and only accepted pairs are rehydrated. Bit-identical output to the
    boxed path from the same generator state. *)

val sample :
  Rsj_util.Prng.t ->
  metrics:Metrics.t ->
  r:int ->
  left:Relation.t ->
  left_key:int ->
  right_index:Rsj_index.Hash_index.t ->
  ?m_bound:int ->
  ?max_iterations:int ->
  unit ->
  Tuple.t array
(** WR sample of size [r] from R1 ⋈ R2. [r <= 0] returns [[||]]
    immediately, before inspecting the input — an empty join is never
    an error (and never costs an iteration) when nothing was asked
    for.

    [m_bound] is the upper bound M on m2(v) (default: the exact maximum
    from the index, the most favourable choice for Olken — a looser
    bound only increases rejections). [max_iterations] (default
    {!default_max_iterations}) guards against an empty join, where the
    loop would never accept: exceeding it raises [Failure]. Raises
    [Invalid_argument] if [left] is empty with [r > 0]. *)

open Rsj_relation
open Rsj_exec
module End_biased = Rsj_stats.Histogram.End_biased

let sample rng ~metrics ~r ~left ~left_key ~right ~right_key ~histogram =
  let open Metrics in
  (* Scan 1 of R2: hash only the low-frequency tuples (the high side
     never joins through the hash). *)
  let frequency = End_biased.frequency histogram in
  let is_low v = Option.is_none (frequency v) in
  let tbl = Internals.build_join_hash ~keep:is_low metrics right ~right_key in
  (* Pass over R1: hi/lo routing through the shared accumulator, as in
     Frequency-Partition. *)
  let acc = Internals.Partition.create ~r in
  let lo_matches _metrics v = Internals.hash_matches tbl v in
  Stream0.iter
    (fun t1 -> Internals.Partition.route rng metrics acc ~left_key ~frequency ~lo_matches t1)
    left;
  let n_hi = Internals.Partition.n_hi acc ~frequency in
  let n_lo = Internals.Partition.n_lo acc in
  (* Scan 2 of R2: Count-Sample the high side (populations from the
     histogram; low values are absent from the S1 groups so the engine
     skips them). *)
  let s1 = Internals.Partition.s1 acc in
  let hi_pool =
    Internals.count_sample_scan rng metrics ~strategy:"Hybrid_count.sample" ~s1 ~left_key ~right
      ~right_key
      ~population:(fun v -> match frequency v with Some m2v -> m2v | None -> 0)
  in
  let lo_pool = Internals.Partition.lo_pool acc in
  let out, r_hi, r_lo = Internals.binomial_combine rng ~r ~n_hi ~n_lo ~hi_pool ~lo_pool in
  metrics.output_tuples <- metrics.output_tuples + Array.length out;
  (out, { Frequency_partition.n_hi; n_lo; r_hi; r_lo })

open Rsj_relation
open Rsj_exec
module Hash_index = Rsj_index.Hash_index
module Frequency = Rsj_stats.Frequency

let sample rng ~metrics ~r ~left ~left_key ~right_index ?right_stats ?total_weight () =
  let open Metrics in
  let weight t1 =
    let v = Tuple.attr t1 left_key in
    match right_stats with
    | Some stats ->
        metrics.stats_lookups <- metrics.stats_lookups + 1;
        float_of_int (Frequency.frequency stats v)
    | None ->
        metrics.index_probes <- metrics.index_probes + 1;
        float_of_int (Hash_index.multiplicity right_index v)
  in
  let s1 =
    match total_weight with
    | Some w -> Stream0.to_array (Black_box.wr1 rng ~total_weight:w ~r ~weight left)
    | None -> Black_box.wr2 rng ~r ~weight left
  in
  let out =
    Array.map
      (fun t1 ->
        let v = Tuple.attr t1 left_key in
        metrics.index_probes <- metrics.index_probes + 1;
        match Hash_index.random_match right_index rng v with
        | Some t2 ->
            metrics.join_output_tuples <- metrics.join_output_tuples + 1;
            Tuple.join t1 t2
        | None ->
            (* A sampled tuple always has positive weight, i.e. at least
               one match — reachable only with stale statistics. *)
            failwith
              "Stream_sample.sample: sampled tuple has no match in R2 (stale statistics?)")
      s1
  in
  metrics.output_tuples <- metrics.output_tuples + Array.length out;
  out

(* Columnar fast path: the weighted S1 pass runs over the flat key
   column through the allocation-free Wr_int kernel (weights from the
   statistics' int counter), and only the r winners touch Tuple.t.
   Draw-for-draw the reservoir (WR2) path of [sample] with
   [right_stats] — same generator stream, bit-identical sample. *)
let sample_int rng ~metrics ~r ~left ~(keys : int array) ~right_index ~freq () =
  let open Metrics in
  let n = Array.length keys in
  (* The boxed path's R1 scan and per-tuple stats lookup, batched. *)
  metrics.tuples_scanned <- metrics.tuples_scanned + n;
  metrics.stats_lookups <- metrics.stats_lookups + n;
  let ker = Rsj_util.Wr_int.create ~on_displace:Reservoir.note_displacements rng ~r in
  for row = 0 to n - 1 do
    Rsj_util.Wr_int.feed ker
      ~weight:(Rsj_index.Int_index.Counter.get freq (Array.unsafe_get keys row))
      row
  done;
  Rsj_util.Wr_int.finish ker;
  let s1 = Rsj_util.Wr_int.contents ker in
  let right = Hash_index.relation right_index in
  let out =
    Array.map
      (fun row ->
        metrics.index_probes <- metrics.index_probes + 1;
        match Hash_index.random_match_row right_index rng keys.(row) with
        | -1 ->
            failwith
              "Stream_sample.sample: sampled tuple has no match in R2 (stale statistics?)"
        | r2 ->
            metrics.join_output_tuples <- metrics.join_output_tuples + 1;
            Tuple.join (Relation.get left row) (Relation.get right r2))
      s1
  in
  metrics.output_tuples <- metrics.output_tuples + Array.length out;
  out

open Rsj_relation
open Rsj_util

let example1 ~k =
  if k < 1 then invalid_arg "Negative.example1: k < 1";
  let schema1 = Schema.of_list [ ("A", Value.T_int); ("B", Value.T_int) ] in
  let schema2 = Schema.of_list [ ("A", Value.T_int); ("C", Value.T_int) ] in
  let r1 = Relation.create ~name:"example1_R1" ~capacity:(k + 1) schema1 in
  let r2 = Relation.create ~name:"example1_R2" ~capacity:(k + 1) schema2 in
  (* R1: (a1, b0) then (a2, b1) ... (a2, bk). *)
  Relation.append r1 [| Value.Int 1; Value.Int 0 |];
  for i = 1 to k do
    Relation.append r1 [| Value.Int 2; Value.Int i |]
  done;
  (* R2: (a2, c0) then (a1, c1) ... (a1, ck). *)
  Relation.append r2 [| Value.Int 2; Value.Int 0 |];
  for i = 1 to k do
    Relation.append r2 [| Value.Int 1; Value.Int i |]
  done;
  (r1, r2)

let oblivious_join_empty_prob ~f1 ~f2 = (1. -. f1) *. (1. -. f2)

let oblivious_join_trial rng ~k ~f1 ~f2 =
  let r1, r2 = example1 ~k in
  let keep f row = ignore row; Prng.bernoulli rng f in
  let s1 = Relation.fold r1 ~init:[] ~f:(fun acc row -> if keep f1 row then row :: acc else acc) in
  let s2 = Relation.fold r2 ~init:[] ~f:(fun acc row -> if keep f2 row then row :: acc else acc) in
  (* Join of the two samples on A. *)
  List.fold_left
    (fun acc t1 ->
      acc
      + List.length
          (List.filter (fun t2 -> Value.equal (Tuple.get t1 0) (Tuple.get t2 0)) s2))
    0 s1

let thm11_feasible ~m1 ~m2 ~f ~f1 ~f2 =
  if m1 <= 0 || m2 <= 0 then invalid_arg "Negative.thm11_feasible: m1, m2 must be positive";
  let m = float_of_int (max m1 m2) in
  let m' = float_of_int (min m1 m2) in
  let ok = ref true in
  if f <= 1. /. m then begin
    if f1 < f *. float_of_int m2 /. 2. then ok := false;
    if f2 < f *. float_of_int m1 /. 2. then ok := false
  end;
  if f >= 1. /. m' then begin
    if f1 < 0.5 then ok := false;
    if f2 < 0.5 then ok := false
  end;
  !ok

let thm12_feasible ~f ~f1 ~f2 = f1 *. f2 >= f
let min_symmetric_fraction ~f = sqrt f

let biased_wr_draw rng ~universe ~r =
  let n = Array.length universe in
  if n = 0 then invalid_arg "Negative.biased_wr_draw: empty universe";
  if r < 0 then invalid_arg "Negative.biased_wr_draw: r < 0";
  (* Over-weight the first half of the universe 4:1 — a gross, easily
     detectable departure from the uniform law every strategy targets.
     Drawn through the plane-dispatched table, so the negative control
     exercises whichever RSJ_DRAW plane is live (the @drawplane sweep
     must reject it under both). *)
  let weights = Array.init n (fun i -> if 2 * i < n then 4. else 1.) in
  let table = Dist.Draw_table.of_weights weights in
  Array.init r (fun _ -> universe.(Dist.Draw_table.draw table rng))

type uniformity_report = {
  cells : int;
  draws : int;
  chi_square : Stats_math.chi_square_result;
}

let uniformity_check ~trials ~universe ~draw =
  let cells = Array.length universe in
  if cells = 0 then invalid_arg "Negative.uniformity_check: empty universe";
  let index = Hashtbl.create (2 * cells) in
  Array.iteri
    (fun i t ->
      if Hashtbl.mem index t then
        invalid_arg "Negative.uniformity_check: duplicate tuple in universe";
      Hashtbl.replace index t i)
    universe;
  let observed = Array.make cells 0 in
  let draws = ref 0 in
  for _ = 1 to trials do
    Array.iter
      (fun t ->
        match Hashtbl.find_opt index t with
        | Some i ->
            observed.(i) <- observed.(i) + 1;
            incr draws
        | None ->
            invalid_arg
              (Printf.sprintf "Negative.uniformity_check: sampled tuple %s not in the join"
                 (Tuple.to_string t)))
      (draw ())
  done;
  { cells; draws = !draws; chi_square = Stats_math.chi_square_uniform ~observed }

(* Shared machinery for the join-sampling strategies. Not part of the
   public API (not exported in the .mli-less module convention: the
   library interface file rsj_core.ml would hide it; we keep it public
   within the library but undocumented outside). *)

open Rsj_relation
open Rsj_exec

module Vtbl = Hashtbl.Make (struct
  type t = Value.t

  let equal = Value.equal
  let hash = Value.hash
end)

(* Build a join hash table over [right], optionally keeping only tuples
   whose key satisfies [keep]. Counts one hash_build insert per retained
   tuple and one scanned tuple per row (the build scan). *)
let build_join_hash ?(keep = fun _ -> true) (metrics : Metrics.t) right ~right_key :
    Tuple.t array Vtbl.t =
  let lists : Tuple.t list ref Vtbl.t = Vtbl.create 1024 in
  Relation.iter right (fun row ->
      metrics.tuples_scanned <- metrics.tuples_scanned + 1;
      let v = Tuple.attr row right_key in
      if (not (Value.is_null v)) && keep v then begin
        metrics.hash_build_tuples <- metrics.hash_build_tuples + 1;
        match Vtbl.find_opt lists v with
        | Some cell -> cell := row :: !cell
        | None -> Vtbl.replace lists v (ref [ row ])
      end);
  let out = Vtbl.create (Vtbl.length lists) in
  Vtbl.iter (fun v cell -> Vtbl.replace out v (Array.of_list (List.rev !cell))) lists;
  out

let hash_matches tbl v : Tuple.t array =
  if Value.is_null v then [||]
  else match Vtbl.find_opt tbl v with Some rows -> rows | None -> [||]

(* The hi/lo routing pass shared by Frequency-Partition, Hybrid-Count
   and Index-Sample (paper §6 step 2): each R1 tuple either feeds the
   weighted S1 reservoir (high-frequency side, weight m2(v) from the
   end-biased histogram) while its value's Rhi1 frequency is tallied,
   or joins immediately and streams the pairs through the unweighted
   Jlo reservoir (low-frequency side). The accumulator is mergeable —
   both reservoirs merge and the tallies add — so the pass can run
   per-chunk across domains and fold back in chunk order
   (Rsj_parallel), with the exact same distribution as one sequential
   pass. *)
module Partition = struct
  type t = {
    s1_res : Tuple.t Reservoir.Wr.t;
    m1_hi : int ref Vtbl.t;
    jlo_res : Tuple.t Reservoir.Wr.t;
    mutable n_lo : int;
  }

  let create ~r =
    {
      s1_res = Reservoir.Wr.create ~r;
      m1_hi = Vtbl.create 64;
      jlo_res = Reservoir.Wr.create ~r;
      n_lo = 0;
    }

  (* Route one R1 tuple. [frequency] is the histogram lookup (Some m2v
     for high-frequency values); [lo_matches] resolves a low value's R2
     matches (hash probe or index probe — the caller charges whichever
     metric applies). Does NOT count tuples_scanned: sequential callers
     get that from the dispatch stream wrapper, parallel callers count
     per chunk. *)
  let route rng (metrics : Metrics.t) acc ~left_key ~frequency
      ~(lo_matches : Metrics.t -> Value.t -> Tuple.t array) t1 =
    let open Metrics in
    let v = Tuple.attr t1 left_key in
    if Value.is_null v then ()
    else begin
      metrics.stats_lookups <- metrics.stats_lookups + 1;
      match (frequency v : int option) with
      | Some m2v ->
          Reservoir.Wr.feed rng acc.s1_res ~weight:(float_of_int m2v) t1;
          (match Vtbl.find_opt acc.m1_hi v with
          | Some cell -> incr cell
          | None -> Vtbl.replace acc.m1_hi v (ref 1))
      | None ->
          let matches = lo_matches metrics v in
          Array.iter
            (fun t2 ->
              metrics.join_output_tuples <- metrics.join_output_tuples + 1;
              acc.n_lo <- acc.n_lo + 1;
              Reservoir.Wr.feed rng acc.jlo_res ~weight:1. (Tuple.join t1 t2))
            matches
    end

  let merge rng a b =
    let m1_hi = Vtbl.create (Vtbl.length a.m1_hi + Vtbl.length b.m1_hi) in
    let add tbl =
      Vtbl.iter
        (fun v cell ->
          match Vtbl.find_opt m1_hi v with
          | Some c -> c := !c + !cell
          | None -> Vtbl.replace m1_hi v (ref !cell))
        tbl
    in
    add a.m1_hi;
    add b.m1_hi;
    (* Explicit lets pin the generator consumption order (s1 then jlo):
       record-field evaluation order is unspecified, and the data-plane
       twin (Internals_int) must merge in the same order to stay
       bit-identical. *)
    let s1_res = Reservoir.Wr.merge rng a.s1_res b.s1_res in
    let jlo_res = Reservoir.Wr.merge rng a.jlo_res b.jlo_res in
    { s1_res; m1_hi; jlo_res; n_lo = a.n_lo + b.n_lo }

  (* Exact |Jhi| from the collected Rhi1 tallies and the histogram. *)
  let n_hi acc ~frequency =
    Vtbl.fold
      (fun v m1v a ->
        match (frequency v : int option) with Some m2v -> a + (!m1v * m2v) | None -> a)
      acc.m1_hi 0

  let s1 acc = Reservoir.Wr.contents acc.s1_res
  let lo_pool acc = Reservoir.Wr.contents acc.jlo_res
  let n_lo acc = acc.n_lo
end

(* High-side pool, Frequency-Partition flavour (Group-Sample step 4):
   one uniform pick among the matches of each S1 slot. The counter
   charges the full group size — the S1 ⋈ R2hi intermediate, i.e.
   Theorem 8's alpha·|J|. *)
let fps_hi_pick rng (metrics : Metrics.t) ~(matches : Value.t -> Tuple.t array) ~left_key
    (s1 : Tuple.t array) =
  Array.map
    (fun t1 ->
      let v = Tuple.attr t1 left_key in
      let ms = matches v in
      if Array.length ms = 0 then
        failwith
          "Frequency_partition.sample: sampled hi tuple has no match in R2 (stale histogram?)"
      else begin
        metrics.Metrics.join_output_tuples <-
          metrics.Metrics.join_output_tuples + Array.length ms;
        Tuple.join t1 (Rsj_util.Prng.pick rng ms)
      end)
    s1

(* High-side pool, Index-Sample flavour (à la Stream-Sample): one
   random match per S1 slot through the R2 index. *)
let index_hi_pick rng (metrics : Metrics.t) ~right_index ~left_key (s1 : Tuple.t array) =
  Array.map
    (fun t1 ->
      let v = Tuple.attr t1 left_key in
      metrics.Metrics.index_probes <- metrics.Metrics.index_probes + 1;
      match Rsj_index.Hash_index.random_match right_index rng v with
      | Some t2 ->
          metrics.Metrics.join_output_tuples <- metrics.Metrics.join_output_tuples + 1;
          Tuple.join t1 t2
      | None ->
          failwith "Index_sample.sample: sampled hi tuple has no match in R2 (stale histogram?)")
    s1

(* The Count-Sample matching engine (paper §6.4 steps 2-4), shared by
   Count-Sample and Hybrid-Count-Sample. Groups the S1 entries by join
   value, then scans [right] running one Black-Box U1 per value with
   r := s1(v) and n := population(v); each U1 pick is matched without
   replacement to a member of the (pre-shuffled) group. Returns the
   joined pairs in random order. Raises [Failure strategy ...] when the
   claimed populations disagree with R2's actual content. *)
let count_sample_scan rng (metrics : Metrics.t) ~strategy ~(s1 : Tuple.t array) ~left_key ~right
    ~right_key ~(population : Value.t -> int) : Tuple.t array =
  if Array.length s1 = 0 then [||]
  else begin
    let module G = struct
      type t = {
        mutable outstanding : int;
        mutable seen : int;
        population : int;
        members : Tuple.t array;
        mutable next_member : int;
      }
    end in
    let member_lists : Tuple.t list ref Vtbl.t = Vtbl.create (2 * Array.length s1) in
    (* Group in S1 first-occurrence order — a deterministic order shared
       with the data-plane twin (which cannot reproduce Vtbl iteration
       order), so the per-group shuffles below consume the generator
       identically in both planes. *)
    let order = ref [] in
    Array.iter
      (fun t1 ->
        let v = Tuple.attr t1 left_key in
        match Vtbl.find_opt member_lists v with
        | Some cell -> cell := t1 :: !cell
        | None ->
            Vtbl.replace member_lists v (ref [ t1 ]);
            order := v :: !order)
      s1;
    let groups : G.t Vtbl.t = Vtbl.create (Vtbl.length member_lists) in
    List.iter
      (fun v ->
        let cell = Vtbl.find member_lists v in
        let members = Array.of_list !cell in
        Rsj_util.Prng.shuffle_in_place rng members;
        let population = population v in
        if population <= 0 then
          failwith (strategy ^ ": sampled value has no frequency in the statistics");
        Vtbl.replace groups v
          { G.outstanding = Array.length members; seen = 0; population; members; next_member = 0 })
      (List.rev !order);
    let out = ref [] in
    Relation.iter right (fun t2 ->
        metrics.tuples_scanned <- metrics.tuples_scanned + 1;
        let v = Tuple.attr t2 right_key in
        if not (Value.is_null v) then
          match Vtbl.find_opt groups v with
          | None -> ()
          | Some g ->
              if g.G.outstanding > 0 then begin
                if g.G.seen >= g.G.population then
                  failwith
                    (strategy ^ ": R2 holds more tuples of a value than the statistics claim");
                let p = 1. /. float_of_int (g.G.population - g.G.seen) in
                let copies = Rsj_util.Dist.binomial rng ~n:g.G.outstanding ~p in
                g.G.seen <- g.G.seen + 1;
                g.G.outstanding <- g.G.outstanding - copies;
                for _ = 1 to copies do
                  let t1 = g.G.members.(g.G.next_member) in
                  g.G.next_member <- g.G.next_member + 1;
                  metrics.join_output_tuples <- metrics.join_output_tuples + 1;
                  out := Tuple.join t1 t2 :: !out
                done
              end
              else g.G.seen <- g.G.seen + 1);
    Vtbl.iter
      (fun _ g ->
        if g.G.outstanding > 0 then
          failwith (strategy ^ ": statistics overstate a value's frequency (stale statistics?)"))
      groups;
    let pool = Array.of_list !out in
    Rsj_util.Prng.shuffle_in_place rng pool;
    pool
  end

(* Combine the low- and high-frequency sample pools (steps 5-7 of
   Frequency-Partition-Sample): flip r coins with heads probability
   n_hi / (n_hi + n_lo), take that many WoR *positions* from the hi pool
   and the rest from the lo pool, and shuffle the union. Pools are WR
   samples of their subdomain of size >= needed draws (pools shorter
   than the draw count indicate an empty subdomain and must only occur
   with the matching n_* equal to 0). *)
let binomial_combine rng ~r ~n_hi ~n_lo ~hi_pool ~lo_pool =
  if n_hi < 0 || n_lo < 0 then invalid_arg "binomial_combine: negative join sizes";
  let total = n_hi + n_lo in
  if total = 0 then ([||], 0, 0)
  else begin
    let r_hi =
      Rsj_util.Dist.binomial rng ~n:r ~p:(float_of_int n_hi /. float_of_int total)
    in
    let r_lo = r - r_hi in
    if r_hi > Array.length hi_pool then
      invalid_arg "binomial_combine: hi pool smaller than the draw count";
    if r_lo > Array.length lo_pool then
      invalid_arg "binomial_combine: lo pool smaller than the draw count";
    let pick pool k =
      if k = 0 then [||]
      else begin
        let idx = Rsj_util.Prng.sample_distinct rng ~k ~n:(Array.length pool) in
        Array.map (fun i -> pool.(i)) idx
      end
    in
    let out = Array.append (pick hi_pool r_hi) (pick lo_pool r_lo) in
    Rsj_util.Prng.shuffle_in_place rng out;
    (out, r_hi, r_lo)
  end

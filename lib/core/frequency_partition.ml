open Rsj_relation
open Rsj_exec
module End_biased = Rsj_stats.Histogram.End_biased

type detail = { n_hi : int; n_lo : int; r_hi : int; r_lo : int }

let sample rng ~metrics ~r ~left ~left_key ~right ~right_key ~histogram =
  let open Metrics in
  (* The join method underneath is a hash join on R2, exactly as in
     Naive-Sample — the saving comes from probing it with S1 instead of
     all of Rhi1. *)
  let tbl = Internals.build_join_hash metrics right ~right_key in
  let frequency = End_biased.frequency histogram in
  (* Single pass over R1 (step 2): hi/lo routing through the shared
     accumulator (Internals.Partition). *)
  let acc = Internals.Partition.create ~r in
  let lo_matches _metrics v = Internals.hash_matches tbl v in
  Stream0.iter
    (fun t1 -> Internals.Partition.route rng metrics acc ~left_key ~frequency ~lo_matches t1)
    left;
  let n_hi = Internals.Partition.n_hi acc ~frequency in
  let n_lo = Internals.Partition.n_lo acc in
  (* Group-Sample the high side: join S1 with R2hi through the same
     hash table, one uniform pick per S1 slot (step 4). The counter
     charges the full group size — the S1 ⋈ R2hi intermediate the
     paper's strategy computes, i.e. exactly Theorem 8's alpha·|J| —
     although this implementation amortizes group enumeration through
     the shared hash bucket, so wall-clock scales with r while the
     work model reports the paper-faithful intermediate. The benches
     report both. *)
  let s1 = Internals.Partition.s1 acc in
  let hi_pool =
    Internals.fps_hi_pick rng metrics ~matches:(Internals.hash_matches tbl) ~left_key s1
  in
  let lo_pool = Internals.Partition.lo_pool acc in
  let out, r_hi, r_lo = Internals.binomial_combine rng ~r ~n_hi ~n_lo ~hi_pool ~lo_pool in
  metrics.output_tuples <- metrics.output_tuples + Array.length out;
  (out, { n_hi; n_lo; r_hi; r_lo })

(** Feed-based reservoirs.

    The stream black boxes ({!Black_box.u2}, {!Black_box.wr2}) consume a
    whole stream; strategies that route one input pass into several
    samplers (Frequency-Partition-Sample splits R1 into high- and
    low-frequency sides in a single pass) need the same samplers in
    push style. These reservoirs are that push style; the black boxes
    are thin wrappers over them. *)

open Rsj_util

val note_displacements : int -> unit
(** Bump the reservoir displacement counter (a single branch when
    tracing is disabled). Exposed so the data-plane kernel ({!Wr_int})
    can report the same telemetry as the feeds below. *)

(** Weighted WR reservoir of a fixed number of slots. After feeding
    elements x with weights w(x), each slot independently holds element
    x with probability w(x)/W — i.e. the slots are r iid weighted draws
    (Black-Box WR2, Theorem 4; unweighted with w ≡ 1 gives U2,
    Theorem 2). Slot updates are batched: one Binomial(r, w/W) draw per
    fed element. *)
module Wr : sig
  type 'a t

  val create : r:int -> 'a t
  val feed : Prng.t -> 'a t -> weight:float -> 'a -> unit
  (** Negative weights raise [Invalid_argument]; zero weights are
      ignored (never sampled). *)

  val fed_count : 'a t -> int
  (** Elements with positive weight fed so far. *)

  val total_weight : 'a t -> float

  val contents : 'a t -> 'a array
  (** The r draws; [[||]] when nothing with positive weight was fed.
      Fresh array. *)

  val of_parts : r:int -> slots:'a array -> fed:int -> total:float -> 'a t
  (** Lift a finished {!Wr_int} kernel state into a reservoir (slots
      array is taken over, not copied). The parts must describe a state
      the feed above could have produced. *)

  val merge : Prng.t -> 'a t -> 'a t -> 'a t
  (** [merge rng a b] is a fresh reservoir distributed as if one
      reservoir had been fed everything [a] and [b] were fed: each slot
      comes from [a] with probability W_a/(W_a+W_b), source slots are
      consumed without reuse, and fed counts / total weights add. The
      inputs are not mutated. This is the per-shard combine step of the
      parallel runtime. Raises [Invalid_argument] when the slot counts
      differ. *)
end

(** Reservoir of exactly one uniform element — the per-group sampler of
    Group-Sample step 3. *)
module Unit : sig
  type 'a t

  val create : unit -> 'a t
  val feed : Prng.t -> 'a t -> 'a -> unit
  val fed_count : 'a t -> int
  val get : 'a t -> 'a option
  (** Uniform over everything fed; [None] if nothing was. *)

  val merge : Prng.t -> 'a t -> 'a t -> 'a t
  (** [merge rng a b] keeps [a]'s element with probability
      fed_a/(fed_a+fed_b) — uniform over the union of both feeds.
      Fresh value; inputs untouched. *)
end

(** k independent unit reservoirs over one stream, fed as a batch —
    after feeding n elements, slot i holds a uniform pick of the n,
    independently across slots (picks are with replacement across
    slots). Equivalent to an array of k {!Unit}s but with one
    Binomial(k, 1/n) draw per fed element instead of k coins — the
    thinning trick of the sequential Count-Sample scan
    ({!Internals.count_sample_scan}), which is what makes the parallel
    per-group R2 scans cost O(|R2|·mean-binomial) rather than the full
    S1 ⋈ R2 output. *)
module Multi : sig
  type 'a t

  val create : k:int -> 'a t
  val feed : Prng.t -> 'a t -> 'a -> unit
  val fed_count : 'a t -> int

  val size : 'a t -> int
  (** The slot count k. *)

  val get : 'a t -> int -> 'a option
  (** [get t i] is slot i's pick — uniform over everything fed, iid
      across slots; [None] if nothing was fed. *)

  val merge : Prng.t -> 'a t -> 'a t -> 'a t
  (** [merge rng a b]: slot-wise {!Unit.merge} law (keep [a]'s pick
      with probability fed_a/(fed_a+fed_b)), batched into one binomial
      plus a distinct-position choice. Fresh value; inputs untouched.
      Raises [Invalid_argument] when the slot counts differ. *)
end

(** Unweighted WoR reservoir (Vitter's Algorithm R) in push style. *)
module Wor : sig
  type 'a t

  val create : r:int -> 'a t
  val feed : Prng.t -> 'a t -> 'a -> unit
  val fed_count : 'a t -> int
  val contents : 'a t -> 'a array
  (** min(r, fed) distinct-position elements, unspecified order. *)

  val merge : Prng.t -> 'a t -> 'a t -> 'a t
  (** [merge rng a b] is a fresh WoR reservoir over the union of both
      feeds: min(r, fed_a+fed_b) elements, drawn by the fed-count-
      weighted simulation (next element from [a]'s population with
      probability proportional to its remaining count). Inputs are not
      mutated. Raises [Invalid_argument] when the slot counts differ. *)
end

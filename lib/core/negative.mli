(** Constructions and checkers for the paper's negative results
    (Example 1; Theorems 10, 11, 12).

    These are theorems, so the library "reproduces" them empirically:
    {!example1} builds the adversarial relations whose uniform samples
    almost surely miss every joining pair; the bound checkers evaluate
    the theorem inequalities; and {!uniformity_check} is the chi-square
    harness used to certify every positive strategy against the WR
    semantics (a strategy violating uniformity would refute its
    theorem — none does). *)

open Rsj_relation
open Rsj_util

val example1 : k:int -> Relation.t * Relation.t
(** The Example 1 pair: R1(A,B) has one tuple with A = a1 and [k]
    tuples with A = a2; R2(A,C) has [k] tuples with A = a1 and one with
    A = a2 (a1 = 1, a2 = 2 as integers; B/C are distinct row numbers).
    |R1 ⋈ R2| = 2k, half on each value, yet uniform samples of R1 and
    R2 of any fraction < 1 rarely contain (a1, b0) or (a2, c0). *)

val oblivious_join_empty_prob : f1:float -> f2:float -> float
(** For the Example 1 pair under CF sampling, every joining pair passes
    through one of two "bridge" tuples — (a1, b0) in R1 or (a2, c0) in
    R2 — so the join of the samples is empty whenever both bridges are
    missed: probability at least (1-f1)·(1-f2), {e independent of k}
    (a lower bound: the join is also empty when a bridge is kept but
    all k partners on the other side are missed). With f1 = f2 = 1%
    the sample join is empty ≥ 98% of the time while the true join has
    2k tuples — the Theorem 10 phenomenon. *)

val oblivious_join_trial :
  Prng.t -> k:int -> f1:float -> f2:float -> int
(** One Monte-Carlo trial: CF-sample both Example 1 relations and
    return the size of the join of the samples (usually 0 — the
    demonstration of Theorem 10). *)

val thm11_feasible : m1:int -> m2:int -> f:float -> f1:float -> f2:float -> bool
(** Theorem 11 necessary conditions in the uniform case (frequencies at
    most [m1] in R1, [m2] in R2): with m = max(m1,m2) and
    m' = min(m1,m2), requires f1 >= f·m2/2 and f2 >= f·m1/2 when
    f <= 1/m, and f1 >= 1/2, f2 >= 1/2 when f >= 1/m'. Returns whether
    (f1, f2) satisfies every condition that applies. *)

val thm12_feasible : f:float -> f1:float -> f2:float -> bool
(** Theorem 12: producing sample(R1 ⋈ R2, f) from S1, S2 requires
    f1·f2 >= f. *)

val min_symmetric_fraction : f:float -> float
(** The smallest f1 = f2 permitted by Theorem 12: sqrt f. *)

val biased_wr_draw : Prng.t -> universe:'a array -> r:int -> 'a array
(** Deliberately {e non}-uniform WR draw over [universe]: elements in
    the first half carry 4× the probability mass of the rest. This is
    the negative control of the conformance suite — a distribution-test
    kernel that does not reject this sampler has no power, so the
    conformance gate requires its rejection before trusting any PASS
    verdict. *)

type uniformity_report = {
  cells : int;  (** Distinct join tuples (chi-square cells). *)
  draws : int;  (** Total sample draws counted. *)
  chi_square : Rsj_util.Stats_math.chi_square_result;
}

val uniformity_check :
  trials:int ->
  universe:Tuple.t array ->
  draw:(unit -> Tuple.t array) ->
  uniformity_report
(** Run [draw] [trials] times; classify every returned tuple against
    [universe] (the exact join output) and chi-square-test the counts
    against uniform. Raises [Invalid_argument] if a drawn tuple is not
    in the universe (a correctness bug far worse than bias). *)

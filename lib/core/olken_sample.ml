open Rsj_relation
open Rsj_exec
module Hash_index = Rsj_index.Hash_index

let default_max_iterations = 500_000_000

let resolve_m_bound ~right_index = function
  | Some m ->
      if m < Hash_index.max_multiplicity right_index then
        invalid_arg "Olken_sample.sample: m_bound below the true maximum multiplicity";
      m
  | None -> Hash_index.max_multiplicity right_index

let attempt rng ~metrics ~left ~left_key ~right_index ~m =
  let open Metrics in
  metrics.random_accesses <- metrics.random_accesses + 1;
  let t1 = Relation.random_row left rng in
  let v = Tuple.attr t1 left_key in
  metrics.index_probes <- metrics.index_probes + 1;
  match Hash_index.random_match right_index rng v with
  | None ->
      metrics.rejected_samples <- metrics.rejected_samples + 1;
      None
  | Some t2 ->
      (* The acceptance probability reads m2(v) from the statistics
         (the paper's Olken assumes full statistics for R2), not
         through another index traversal. *)
      let m2v = Hash_index.multiplicity right_index v in
      metrics.stats_lookups <- metrics.stats_lookups + 1;
      let accept_p = float_of_int m2v /. float_of_int m in
      if Rsj_util.Prng.bernoulli rng accept_p then begin
        metrics.join_output_tuples <- metrics.join_output_tuples + 1;
        Some (Tuple.join t1 t2)
      end
      else begin
        metrics.rejected_samples <- metrics.rejected_samples + 1;
        None
      end

(* Columnar twin of [attempt]: same draw order (uniform row, index
   pick, m2 probe, acceptance coin) over the flat key column; returns
   the packed row pair, or -1 on rejection. *)
let attempt_int rng ~(metrics : Metrics.t) ~left_n ~(keys1 : int array) ~right_index ~m =
  let open Metrics in
  metrics.random_accesses <- metrics.random_accesses + 1;
  let row = Rsj_util.Prng.int rng left_n in
  let k = Array.unsafe_get keys1 row in
  metrics.index_probes <- metrics.index_probes + 1;
  match Hash_index.random_match_row right_index rng k with
  | -1 ->
      metrics.rejected_samples <- metrics.rejected_samples + 1;
      -1
  | r2 ->
      let m2v = Hash_index.multiplicity_key right_index k in
      metrics.stats_lookups <- metrics.stats_lookups + 1;
      let accept_p = float_of_int m2v /. float_of_int m in
      if Rsj_util.Prng.bernoulli rng accept_p then begin
        metrics.join_output_tuples <- metrics.join_output_tuples + 1;
        Internals_int.pack row r2
      end
      else begin
        metrics.rejected_samples <- metrics.rejected_samples + 1;
        -1
      end

let sample_int rng ~metrics ~r ~left ~(keys1 : int array) ~right_index ?m_bound
    ?(max_iterations = default_max_iterations) () =
  if r <= 0 then [||]
  else begin
    if Relation.cardinality left = 0 then
      invalid_arg "Olken_sample.sample: empty R1 with r > 0";
    let m = resolve_m_bound ~right_index m_bound in
    if m = 0 then failwith "Olken_sample.sample: R2 has no joinable tuples";
    let left_n = Relation.cardinality left in
    let right = Hash_index.relation right_index in
    let out = Array.make r [||] in
    let produced = ref 0 in
    let iterations = ref 0 in
    while !produced < r do
      incr iterations;
      if !iterations > max_iterations then
        failwith "Olken_sample.sample: iteration budget exhausted (join empty or near-empty?)";
      let p = attempt_int rng ~metrics ~left_n ~keys1 ~right_index ~m in
      if p >= 0 then begin
        out.(!produced) <-
          Tuple.join
            (Relation.get left (Internals_int.unpack_left p))
            (Relation.get right (Internals_int.unpack_right p));
        incr produced
      end
    done;
    metrics.Metrics.output_tuples <- metrics.Metrics.output_tuples + r;
    out
  end

let sample rng ~metrics ~r ~left ~left_key ~right_index ?m_bound
    ?(max_iterations = default_max_iterations) () =
  (* r = 0 asks for nothing: return before touching the input, so an
     empty or non-joining R1 (where the rejection loop could only spin
     its whole iteration budget) is never an error for a no-op draw. *)
  if r <= 0 then [||]
  else begin
    if Relation.cardinality left = 0 then
      invalid_arg "Olken_sample.sample: empty R1 with r > 0";
    let m = resolve_m_bound ~right_index m_bound in
    if m = 0 then failwith "Olken_sample.sample: R2 has no joinable tuples";
    let out = Array.make r [||] in
    let produced = ref 0 in
    let iterations = ref 0 in
    while !produced < r do
      incr iterations;
      if !iterations > max_iterations then
        failwith "Olken_sample.sample: iteration budget exhausted (join empty or near-empty?)";
      match attempt rng ~metrics ~left ~left_key ~right_index ~m with
      | Some t ->
          out.(!produced) <- t;
          incr produced
      | None -> ()
    done;
    metrics.Metrics.output_tuples <- metrics.Metrics.output_tuples + r;
    out
  end

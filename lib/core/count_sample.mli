(** Strategy Count-Sample (paper §6.4) — index-free matching by a single
    scan of R2.

    Step 1–2: weighted WR sample S1 from streaming R1 (weights m2 from
    statistics); record s1(v), the number of S1 entries per join value.
    Step 3: scan R2 once; for each value v, an independent Black-Box U1
    instance with r := s1(v), n := m2(v) picks exactly s1(v)
    with-replacement samples from the m2(v) tuples of that value.
    Step 4: match each picked R2 tuple to a distinct S1 entry of the
    same value (sampling without replacement from S1), and output the
    joined pairs.

    Replaces Stream-Sample's index requirement with one sequential scan
    of R2 — total work n1 + n2 + r regardless of skew. *)

open Rsj_relation
open Rsj_exec

val sample :
  Rsj_util.Prng.t ->
  metrics:Metrics.t ->
  r:int ->
  left:Tuple.t Stream0.t ->
  left_key:int ->
  right:Relation.t ->
  right_key:int ->
  right_stats:Rsj_stats.Frequency.t ->
  Tuple.t array
(** WR sample of size [r] of R1 ⋈ R2 ([[||]] when empty). Raises
    [Failure] when the statistics disagree with R2's actual content
    (fewer than m2(v) tuples of a sampled value encountered). *)

val sample_int :
  Rsj_util.Prng.t ->
  metrics:Metrics.t ->
  r:int ->
  left:Relation.t ->
  right:Relation.t ->
  keys1:int array ->
  keys2:int array ->
  freq:Rsj_index.Int_index.Counter.t ->
  Tuple.t array
(** Columnar twin of {!sample}: both join columns as
    {!Column.int_view} extractions and [freq] the statistics' int
    counter. Bit-identical output to the boxed path from the same
    generator state. *)

open Rsj_relation
open Rsj_exec
module Frequency = Rsj_stats.Frequency
module Histogram = Rsj_stats.Histogram
module Hash_index = Rsj_index.Hash_index

type t =
  | Naive
  | Olken
  | Stream
  | Group
  | Frequency_partition
  | Index_sample
  | Count_sample
  | Hybrid_count

let all =
  [ Naive; Olken; Stream; Group; Frequency_partition; Index_sample; Count_sample; Hybrid_count ]

let name = function
  | Naive -> "Naive-Sample"
  | Olken -> "Olken-Sample"
  | Stream -> "Stream-Sample"
  | Group -> "Group-Sample"
  | Frequency_partition -> "Frequency-Partition-Sample"
  | Index_sample -> "Index-Sample"
  | Count_sample -> "Count-Sample"
  | Hybrid_count -> "Hybrid-Count-Sample"

let of_name s =
  let norm =
    String.lowercase_ascii s |> String.map (function '-' | '_' | ' ' -> '-' | c -> c)
  in
  let strip_sample x =
    if Filename.check_suffix x "-sample" then Filename.chop_suffix x "-sample" else x
  in
  match strip_sample norm with
  | "naive" -> Some Naive
  | "olken" -> Some Olken
  | "stream" -> Some Stream
  | "group" -> Some Group
  | "frequency-partition" | "fps" -> Some Frequency_partition
  | "index" -> Some Index_sample
  | "count" -> Some Count_sample
  | "hybrid-count" -> Some Hybrid_count
  | _ -> None

type requirement = Nothing | Index | Index_or_stats | Statistics | Partial_statistics

(* Table 1 of the paper, extended with the §6.4 variants. *)
let r1_requirement = function
  | Naive | Stream | Group | Frequency_partition | Index_sample | Count_sample | Hybrid_count ->
      Nothing
  | Olken -> Index

let r2_requirement = function
  | Naive -> Nothing
  | Olken -> Index_or_stats
  | Stream -> Index_or_stats
  | Group -> Statistics
  | Frequency_partition -> Partial_statistics
  | Index_sample -> Partial_statistics  (* plus an index on the hi part *)
  | Count_sample -> Statistics
  | Hybrid_count -> Partial_statistics

let requirement_to_string = function
  | Nothing -> "-"
  | Index -> "Index"
  | Index_or_stats -> "Index/Stats."
  | Statistics -> "Statistics"
  | Partial_statistics -> "Partial Stats."

let table1 () =
  List.map
    (fun s ->
      (name s, requirement_to_string (r1_requirement s), requirement_to_string (r2_requirement s)))
    all

(* ------------------------------------------------------------------ *)
(* Catalog availability: which auxiliary structures exist              *)

type availability = {
  left_index : bool;
  right_index : bool;
  right_stats : bool;
  right_histogram : bool;
}

let all_available =
  { left_index = true; right_index = true; right_stats = true; right_histogram = true }

let nothing_available =
  { left_index = false; right_index = false; right_stats = false; right_histogram = false }

exception Missing_structure of { strategy : string; structure : string }

(* Structure names are stable identifiers: error messages, decision
   traces and the negative tests all match on them. *)
let missing_r1 avail = function
  | Nothing -> None
  | Index -> if avail.left_index then None else Some "index(R1)"
  (* Table 1 never asks for R1 statistics, but the requirement type is
     shared; name the structure anyway so a future strategy fails
     loudly rather than silently passing. *)
  | Index_or_stats -> if avail.left_index then None else Some "index(R1) or statistics(R1)"
  | Statistics -> Some "statistics(R1)"
  | Partial_statistics -> Some "end-biased histogram(R1)"

let missing_r2 avail = function
  | Nothing -> None
  | Index -> if avail.right_index then None else Some "index(R2)"
  | Index_or_stats ->
      if avail.right_index || avail.right_stats then None
      else Some "index(R2) or statistics(R2)"
  | Statistics -> if avail.right_stats then None else Some "statistics(R2)"
  | Partial_statistics ->
      if avail.right_histogram then None else Some "end-biased histogram(R2)"

let missing_structures avail strategy =
  let base =
    List.filter_map
      (fun x -> x)
      [ missing_r1 avail (r1_requirement strategy); missing_r2 avail (r2_requirement strategy) ]
  in
  (* Index-Sample additionally random-accesses the hi part of R2
     (Table 1's "plus an index" footnote). *)
  match strategy with
  | Index_sample when not avail.right_index -> base @ [ "index(R2hi)" ]
  | _ -> base

let require_structures avail strategy =
  match missing_structures avail strategy with
  | [] -> ()
  | structure :: _ -> raise (Missing_structure { strategy = name strategy; structure })

type env = {
  rng : Rsj_util.Prng.t;
  left : Relation.t;
  right : Relation.t;
  left_key : int;
  right_key : int;
  histogram_fraction : float;
  right_stats : Frequency.t Lazy.t;
  left_stats : Frequency.t Lazy.t;
  right_index : Hash_index.t Lazy.t;
  histogram : Histogram.End_biased.t Lazy.t;
  (* Columnar key views for the compact data plane: extracted once per
     env, [None] when a column is not int-viewable. Mode-independent —
     the Column.mode switch gates which plane the dispatch consults,
     not whether the view exists (the bench toggles modes on one
     prebuilt env). *)
  left_key_view : int array option Lazy.t;
  right_key_view : int array option Lazy.t;
}

(* Injection point for memoized auxiliary structures: a warm cache
   (Rsj_cache.Structure_cache, which sits above this library) supplies
   thunks instead of letting the env build privately. Thunks — not
   values — so nothing is built until a strategy actually forces it,
   exactly like the private lazies they replace. *)
type prebuilt = {
  p_left_stats : (unit -> Frequency.t) option;
  p_right_stats : (unit -> Frequency.t) option;
  p_right_index : (unit -> Hash_index.t) option;
  p_histogram : (unit -> Histogram.End_biased.t) option;
  p_left_key_view : (unit -> int array option) option;
  p_right_key_view : (unit -> int array option) option;
}

let no_prebuilt =
  {
    p_left_stats = None;
    p_right_stats = None;
    p_right_index = None;
    p_histogram = None;
    p_left_key_view = None;
    p_right_key_view = None;
  }

let make_env ?(seed = 0x5EED) ?(histogram_fraction = 0.05) ?(structures = no_prebuilt) ~left
    ~right ~left_key ~right_key () =
  let via thunk fallback =
    match thunk with Some f -> lazy (f ()) | None -> Lazy.from_fun fallback
  in
  let right_stats =
    via structures.p_right_stats (fun () -> Frequency.of_relation right ~key:right_key)
  in
  {
    rng = Rsj_util.Prng.create ~seed ();
    left;
    right;
    left_key;
    right_key;
    histogram_fraction;
    right_stats;
    left_stats =
      via structures.p_left_stats (fun () -> Frequency.of_relation left ~key:left_key);
    right_index =
      via structures.p_right_index (fun () -> Hash_index.build right ~key:right_key);
    histogram =
      via structures.p_histogram (fun () ->
          Histogram.End_biased.build_fraction (Lazy.force right_stats)
            ~fraction:histogram_fraction);
    left_key_view =
      via structures.p_left_key_view (fun () -> Column.int_view left ~col:left_key);
    right_key_view =
      via structures.p_right_key_view (fun () -> Column.int_view right ~col:right_key);
  }

let env_left env = env.left
let env_right env = env.right
let env_left_key env = env.left_key
let env_right_key env = env.right_key
let env_rng env = env.rng
let env_right_stats env = Lazy.force env.right_stats
let env_right_index env = Lazy.force env.right_index
let env_histogram env = Lazy.force env.histogram
let env_join_size env = Frequency.join_size (Lazy.force env.left_stats) (Lazy.force env.right_stats)
let env_left_key_view env = Lazy.force env.left_key_view
let env_right_key_view env = Lazy.force env.right_key_view

type result = {
  strategy : t;
  sample : Tuple.t array;
  metrics : Metrics.t;
  elapsed_seconds : float;
}

let now () = Rsj_obs.Clock.now_s ()

(* Whether dispatch should take the columnar fast path: the session
   data-plane mode says int AND every plane the strategy needs exists
   (int-viewable key columns, int-keyed statistics/index planes).
   Anything missing escapes to the boxed twin — same distribution, and
   for the twinned strategies the very same draws. *)
let int_mode () = Column.mode () = Column.Int_keys

let dispatch env strategy rng metrics ~r =
  (* Strategies treat their R1 input as an opaque stream; the scan is
     counted here so pipelined inputs (whose own operators already
     count) are never double-counted. (The columnar twins bypass the
     wrapper and count their flat scans themselves.) *)
  let left () =
    Stream0.on_element
      (fun _ -> metrics.Metrics.tuples_scanned <- metrics.Metrics.tuples_scanned + 1)
      (Relation.to_stream env.left)
  in
  match strategy with
  | Naive -> (
      let boxed () =
        Naive_sample.sample rng ~metrics ~r ~left:(left ()) ~right:env.right
          ~left_key:env.left_key ~right_key:env.right_key
      in
      if not (int_mode ()) then boxed ()
      else
        match (Lazy.force env.left_key_view, Lazy.force env.right_key_view) with
        | Some keys1, Some keys2 ->
            Naive_sample.sample_int rng ~metrics ~r ~left:env.left ~right:env.right ~keys1
              ~keys2
        | _ -> boxed ())
  | Olken -> (
      let boxed () =
        Olken_sample.sample rng ~metrics ~r ~left:env.left ~left_key:env.left_key
          ~right_index:(Lazy.force env.right_index) ()
      in
      if not (int_mode ()) then boxed ()
      else
        let index = Lazy.force env.right_index in
        match (Lazy.force env.left_key_view, Hash_index.int_plane index) with
        | Some keys1, Some _ ->
            Olken_sample.sample_int rng ~metrics ~r ~left:env.left ~keys1 ~right_index:index
              ()
        | _ -> boxed ())
  | Stream -> (
      let boxed () =
        Stream_sample.sample rng ~metrics ~r ~left:(left ()) ~left_key:env.left_key
          ~right_index:(Lazy.force env.right_index)
          ~right_stats:(Lazy.force env.right_stats) ()
      in
      if not (int_mode ()) then boxed ()
      else
        let index = Lazy.force env.right_index in
        match
          ( Lazy.force env.left_key_view,
            Frequency.int_counter (Lazy.force env.right_stats),
            Hash_index.int_plane index )
        with
        | Some keys, Some freq, Some _ ->
            Stream_sample.sample_int rng ~metrics ~r ~left:env.left ~keys ~right_index:index
              ~freq ()
        | _ -> boxed ())
  | Group ->
      Group_sample.sample rng ~metrics ~r ~left:(left ()) ~left_key:env.left_key
        ~right:env.right ~right_key:env.right_key
        ~right_stats:(Lazy.force env.right_stats)
  | Frequency_partition ->
      fst
        (Frequency_partition.sample rng ~metrics ~r ~left:(left ()) ~left_key:env.left_key
           ~right:env.right ~right_key:env.right_key ~histogram:(Lazy.force env.histogram))
  | Index_sample ->
      fst
        (Index_sample.sample rng ~metrics ~r ~left:(left ()) ~left_key:env.left_key
           ~right_index:(Lazy.force env.right_index) ~histogram:(Lazy.force env.histogram))
  | Count_sample -> (
      let boxed () =
        Count_sample.sample rng ~metrics ~r ~left:(left ()) ~left_key:env.left_key
          ~right:env.right ~right_key:env.right_key
          ~right_stats:(Lazy.force env.right_stats)
      in
      if not (int_mode ()) then boxed ()
      else
        match
          ( Lazy.force env.left_key_view,
            Lazy.force env.right_key_view,
            Frequency.int_counter (Lazy.force env.right_stats) )
        with
        | Some keys1, Some keys2, Some freq ->
            Count_sample.sample_int rng ~metrics ~r ~left:env.left ~right:env.right ~keys1
              ~keys2 ~freq
        | _ -> boxed ())
  | Hybrid_count ->
      fst
        (Hybrid_count.sample rng ~metrics ~r ~left:(left ()) ~left_key:env.left_key
           ~right:env.right ~right_key:env.right_key ~histogram:(Lazy.force env.histogram))

let prepare env strategy =
  (* Force auxiliary structures the strategy is entitled to before the
     clock starts (the paper's indexes/statistics pre-exist). *)
  (match r2_requirement strategy with
  | Nothing -> ()
  | Index -> ignore (Lazy.force env.right_index)
  | Index_or_stats ->
      ignore (Lazy.force env.right_index);
      ignore (Lazy.force env.right_stats)
  | Statistics -> ignore (Lazy.force env.right_stats)
  | Partial_statistics -> ignore (Lazy.force env.histogram));
  (match strategy with
  | Index_sample -> ignore (Lazy.force env.right_index)
  | Naive | Olken | Stream | Group | Frequency_partition | Count_sample | Hybrid_count -> ());
  (* The compact data plane's structures count as pre-existing too:
     key-column extractions and the int twins of whatever statistics
     the strategy is entitled to are forced before the clock starts,
     like the indexes and statistics above. *)
  if int_mode () then begin
    ignore (Lazy.force env.left_key_view);
    ignore (Lazy.force env.right_key_view);
    (match r2_requirement strategy with
    | Statistics | Index_or_stats ->
        ignore (Frequency.int_counter (Lazy.force env.right_stats))
    | Partial_statistics ->
        ignore (Histogram.End_biased.int_tracked (Lazy.force env.histogram))
    | Nothing | Index -> ())
  end

let run env strategy ~r =
  prepare env strategy;
  let rng = Rsj_util.Prng.split env.rng in
  let metrics = Metrics.create () in
  let t0 = now () in
  let sample = dispatch env strategy rng metrics ~r in
  let elapsed_seconds = now () -. t0 in
  { strategy; sample; metrics; elapsed_seconds }

let run_wor env strategy ~r =
  let join_distinct = env_join_size env in
  let target = min r join_distinct in
  let rng = Rsj_util.Prng.split env.rng in
  let metrics = Metrics.create () in
  let t0 = now () in
  let collected = Hashtbl.create (2 * r) in
  let out = ref [] in
  let count = ref 0 in
  (* Draw WR batches and reject duplicates (§3 observation 1); batch
     size r keeps the expected number of rounds small. *)
  let rounds = ref 0 in
  while !count < target && !rounds < 64 do
    incr rounds;
    let batch_rng = Rsj_util.Prng.split rng in
    let batch = dispatch env strategy batch_rng metrics ~r in
    let deduped = Convert.wr_to_wor batch_rng ~key:Tuple.hash ~r:(target - !count) batch in
    Array.iter
      (fun t ->
        let k = Tuple.hash t in
        if not (Hashtbl.mem collected k) then begin
          Hashtbl.replace collected k ();
          out := t :: !out;
          incr count
        end)
      deduped
  done;
  if !count < target then
    failwith "Strategy.run_wor: failed to accumulate distinct samples (very small join?)";
  let elapsed_seconds = now () -. t0 in
  { strategy; sample = Array.of_list !out; metrics; elapsed_seconds }

open Rsj_util
module Obs = Rsj_obs

(* Slot overwrites across every reservoir flavour — the observable cost
   of keeping the sample uniform as the stream grows. Gated on the
   tracing switch: the disabled hot path stays a single branch. *)
let displacements =
  Obs.Registry.counter
    ~help:"Reservoir slot displacements (overwrites of an occupied slot)"
    "rsj_reservoir_displacements_total"

let note_displacements n = if Obs.enabled () then Obs.Registry.add displacements n

module Wr = struct
  type 'a t = {
    r : int;
    mutable slots : 'a array;  (* length r once first element arrives *)
    mutable fed : int;
    mutable total : float;
  }

  let create ~r =
    if r < 0 then invalid_arg "Reservoir.Wr.create: r < 0";
    { r; slots = [||]; fed = 0; total = 0. }

  let feed rng t ~weight x =
    if weight < 0. then invalid_arg "Reservoir.Wr.feed: negative weight";
    if weight > 0. && t.r > 0 then begin
      t.fed <- t.fed + 1;
      t.total <- t.total +. weight;
      if Array.length t.slots = 0 then t.slots <- Array.make t.r x
      else begin
        let p = weight /. t.total in
        let flips = Dist.binomial rng ~n:t.r ~p in
        if flips > 0 then begin
          note_displacements flips;
          let slots = Prng.sample_distinct rng ~k:flips ~n:t.r in
          Array.iter (fun s -> t.slots.(s) <- x) slots
        end
      end
    end
    else if weight > 0. then begin
      (* r = 0: still track mass so callers can read totals. *)
      t.fed <- t.fed + 1;
      t.total <- t.total +. weight
    end

  let fed_count t = t.fed
  let total_weight t = t.total
  let contents t = Array.copy t.slots

  (* Lift a data-plane kernel's (Wr_int) finished state into a regular
     reservoir so the existing merge tree applies unchanged. The parts
     must describe a reservoir the feed sequence above could have
     produced: [slots] of length [r] once anything was fed, empty
     otherwise. *)
  let of_parts ~r ~slots ~fed ~total =
    if r < 0 then invalid_arg "Reservoir.Wr.of_parts: r < 0";
    if fed > 0 && Array.length slots <> r then
      invalid_arg "Reservoir.Wr.of_parts: slots length <> r";
    if fed = 0 then create ~r else { r; slots; fed; total }

  let merge rng a b =
    if a.r <> b.r then invalid_arg "Reservoir.Wr.merge: mismatched slot counts";
    let fed = a.fed + b.fed in
    let total = a.total +. b.total in
    if a.r = 0 || total = 0. then { r = a.r; slots = [||]; fed; total }
    else if a.total = 0. then { r = a.r; slots = Array.copy b.slots; fed; total }
    else if b.total = 0. then { r = a.r; slots = Array.copy a.slots; fed; total }
    else begin
      (* Each merged slot is an iid draw from the combined weighted
         distribution: it comes from A with probability W_a/(W_a+W_b),
         else from B. Source slots are themselves iid draws, so
         consuming each source slot at most once keeps the merged
         slots independent; per-slot coins batch into one binomial
         plus a uniform choice of which positions A fills. *)
      let k = Dist.binomial rng ~n:a.r ~p:(a.total /. total) in
      let from_a = Array.make a.r false in
      Array.iter (fun p -> from_a.(p) <- true) (Prng.sample_distinct rng ~k ~n:a.r);
      let out = Array.make a.r a.slots.(0) in
      let ia = ref 0 and ib = ref 0 in
      for i = 0 to a.r - 1 do
        if from_a.(i) then begin
          out.(i) <- a.slots.(!ia);
          incr ia
        end
        else begin
          out.(i) <- b.slots.(!ib);
          incr ib
        end
      done;
      { r = a.r; slots = out; fed; total }
    end
end

module Unit = struct
  type 'a t = { mutable kept : 'a option; mutable fed : int }

  let create () = { kept = None; fed = 0 }

  let feed rng t x =
    t.fed <- t.fed + 1;
    if t.fed = 1 then t.kept <- Some x
    else if Prng.int rng t.fed = 0 then t.kept <- Some x

  let fed_count t = t.fed
  let get t = t.kept

  let merge rng a b =
    let fed = a.fed + b.fed in
    let kept =
      if b.fed = 0 then a.kept
      else if a.fed = 0 then b.kept
      else if Prng.int rng fed < a.fed then a.kept
      else b.kept
    in
    { kept; fed }
end

module Multi = struct
  type 'a t = { k : int; slots : 'a option array; mutable fed : int }

  let create ~k =
    if k < 0 then invalid_arg "Reservoir.Multi.create: k < 0";
    { k; slots = Array.make k None; fed = 0 }

  let feed rng t x =
    t.fed <- t.fed + 1;
    if t.k > 0 then begin
      if t.fed = 1 then Array.fill t.slots 0 t.k (Some x)
      else begin
        (* Each slot keeps x with probability 1/fed independently;
           batched into one Binomial(k, 1/fed) draw plus a uniform
           choice of positions — Σ E[flips] = k·H(fed), not k per
           element. *)
        let p = 1. /. float_of_int t.fed in
        let flips = Dist.binomial rng ~n:t.k ~p in
        if flips > 0 then begin
          note_displacements flips;
          Array.iter (fun s -> t.slots.(s) <- Some x) (Prng.sample_distinct rng ~k:flips ~n:t.k)
        end
      end
    end

  let fed_count t = t.fed
  let size t = t.k
  let get t i = t.slots.(i)

  let merge rng a b =
    if a.k <> b.k then invalid_arg "Reservoir.Multi.merge: mismatched slot counts";
    let fed = a.fed + b.fed in
    if b.fed = 0 then { k = a.k; slots = Array.copy a.slots; fed }
    else if a.fed = 0 then { k = a.k; slots = Array.copy b.slots; fed }
    else begin
      (* Slot i of each side is an independent unit reservoir over that
         side's feed, so slot i merges exactly like Unit.merge: keep
         [a]'s pick with probability fed_a/fed. The per-slot coins are
         iid, so they batch into one Binomial(k, fed_a/fed) count plus
         a uniform choice of which positions keep [a] — the merged
         slots stay iid uniform over the union of both feeds. *)
      let keep = Dist.binomial rng ~n:a.k ~p:(float_of_int a.fed /. float_of_int fed) in
      let slots = Array.copy b.slots in
      Array.iter (fun s -> slots.(s) <- a.slots.(s)) (Prng.sample_distinct rng ~k:keep ~n:a.k);
      { k = a.k; slots; fed }
    end
end

module Wor = struct
  type 'a t = { r : int; mutable slots : 'a array; mutable filled : int; mutable fed : int }

  let create ~r =
    if r < 0 then invalid_arg "Reservoir.Wor.create: r < 0";
    { r; slots = [||]; filled = 0; fed = 0 }

  let feed rng t x =
    if t.r > 0 then begin
      t.fed <- t.fed + 1;
      if t.filled < t.r then begin
        if Array.length t.slots = 0 then t.slots <- Array.make t.r x;
        t.slots.(t.filled) <- x;
        t.filled <- t.filled + 1
      end
      else begin
        let j = Prng.int rng t.fed in
        if j < t.r then begin
          note_displacements 1;
          t.slots.(j) <- x
        end
      end
    end
    else t.fed <- t.fed + 1

  let fed_count t = t.fed

  let contents t =
    if t.filled = 0 then [||]
    else if t.filled < t.r then Array.sub t.slots 0 t.filled
    else Array.copy t.slots

  let merge rng a b =
    if a.r <> b.r then invalid_arg "Reservoir.Wor.merge: mismatched slot counts";
    let fed = a.fed + b.fed in
    let r = a.r in
    let out_n = min r fed in
    if r = 0 || out_n = 0 then { r; slots = [||]; filled = 0; fed }
    else begin
      (* Simulate drawing the merged WoR sample element by element: the
         next draw comes from A's population with probability
         (remaining A population) / (remaining total). Consuming each
         side's sample in shuffled order makes every consumed element a
         uniform WoR draw from that side, so the simulation is exact.
         The side counters count down from the fed totals, which keeps
         consumption within each side's min(r, fed) kept elements. *)
      let sa = contents a and sb = contents b in
      Prng.shuffle_in_place rng sa;
      Prng.shuffle_in_place rng sb;
      let seed_elt = if Array.length sa > 0 then sa.(0) else sb.(0) in
      let slots = Array.make r seed_elt in
      let ka = ref a.fed and kb = ref b.fed in
      let ia = ref 0 and ib = ref 0 in
      for i = 0 to out_n - 1 do
        if Prng.int rng (!ka + !kb) < !ka then begin
          slots.(i) <- sa.(!ia);
          incr ia;
          decr ka
        end
        else begin
          slots.(i) <- sb.(!ib);
          incr ib;
          decr kb
        end
      done;
      { r; slots; filled = out_n; fed }
    end
end

open Rsj_relation
open Rsj_exec
module Vtbl = Internals.Vtbl
module Dist = Rsj_util.Dist
module Obs = Rsj_obs

type spec = { relations : Relation.t array; join_keys : (int * int) array }

(* For relation i (i >= 1), tuples are reachable through their join-in
   value (column b of join i-1). bucket: per join-in value, the
   matching rows with a draw table over their downstream weights —
   O(1) per pick on the alias plane, O(log bucket) on the CDF plane
   (RSJ_DRAW selects at prepare time). *)
type bucket = { rows : int array; pick : Dist.Draw_table.t }

type level = {
  relation : Relation.t;
  succ : bucket option array;
      (* row_id -> the next level's bucket for this row's join-out
         value, resolved at prepare time so the walk never touches a
         tuple or hashes a value; [||] for the last level. *)
}

type t = {
  levels : level array;
  root_rows : int array;
  root_pick : Dist.Draw_table.t option;  (* None when the join is empty *)
  total : float;
  plane : Dist.draw_plane;  (* the plane every table was built on *)
}

(* Draws served through the alias plane, across every chain walk (root
   pick + one pick per level entered). The CDF plane bumps nothing, so
   the counter doubles as the toggle's visibility. A complete walk of
   a k-chain makes exactly k weighted picks (positive root weight
   guarantees a full path), so counting is one bump per request. *)
let alias_draws =
  lazy
    (Obs.Registry.counter ~help:"Weighted draws served by the alias draw plane."
       "rsj_alias_draws_total")

let count_draws t n =
  if t.plane = Dist.Alias then Obs.Registry.add (Lazy.force alias_draws) (n * Array.length t.levels)

let prepare ?(metrics = Metrics.create ()) spec =
  let k = Array.length spec.relations in
  if k = 0 then invalid_arg "Chain_sample.prepare: empty chain";
  if Array.length spec.join_keys <> k - 1 then
    invalid_arg "Chain_sample.prepare: need exactly k-1 join key pairs";
  Array.iteri
    (fun i (a, b) ->
      let arity_l = Schema.arity (Relation.schema spec.relations.(i)) in
      let arity_r = Schema.arity (Relation.schema spec.relations.(i + 1)) in
      if a < 0 || a >= arity_l then
        invalid_arg (Printf.sprintf "Chain_sample.prepare: join %d left column out of range" i);
      if b < 0 || b >= arity_r then
        invalid_arg (Printf.sprintf "Chain_sample.prepare: join %d right column out of range" i))
    spec.join_keys;
  Obs.Trace.with_span ~cat:"chain"
    ~args:[ ("k", Obs.Json.Int k); ("plane", Obs.Json.Str (Dist.draw_plane_name ())) ]
    "chain_sample.prepare"
  @@ fun () ->
  (* weights.(i) : per-row weight for relation i; computed right to
     left. value_weight.(i) : join-in-value -> summed weight table used
     by level i-1 to compute its own weights. *)
  let weights = Array.make k [||] in
  let value_tables : float Vtbl.t array = Array.make k (Vtbl.create 0) in
  for i = k - 1 downto 0 do
    let rel = spec.relations.(i) in
    let n = Relation.cardinality rel in
    let w = Array.make n 0. in
    (if i = k - 1 then Array.fill w 0 n 1.
     else begin
       let a, _ = spec.join_keys.(i) in
       let downstream = value_tables.(i + 1) in
       Relation.iteri rel (fun row_id row ->
           metrics.Metrics.tuples_scanned <- metrics.Metrics.tuples_scanned + 1;
           let v = Tuple.attr row a in
           if not (Value.is_null v) then
             w.(row_id) <- Option.value ~default:0. (Vtbl.find_opt downstream v))
     end);
    weights.(i) <- w;
    if i > 0 then begin
      let _, b = spec.join_keys.(i - 1) in
      let table = Vtbl.create 1024 in
      Relation.iteri rel (fun row_id row ->
          metrics.Metrics.tuples_scanned <- metrics.Metrics.tuples_scanned + 1;
          let v = Tuple.attr row b in
          if (not (Value.is_null v)) && w.(row_id) > 0. then
            Vtbl.replace table v (w.(row_id) +. Option.value ~default:0. (Vtbl.find_opt table v)));
      value_tables.(i) <- table
    end
  done;
  (* Build per-value buckets with draw tables for levels 1..k-1, then
     resolve them into per-row successor arrays: each row of level i
     points straight at its bucket in level i+1, so the draw loop pays
     only the weighted picks — no tuple fetch, no value hash. *)
  let buckets_of : bucket Vtbl.t array = Array.make k (Vtbl.create 0) in
  for i = 1 to k - 1 do
    let rel = spec.relations.(i) in
    let _, b = spec.join_keys.(i - 1) in
    let lists : int list ref Vtbl.t = Vtbl.create 1024 in
    Relation.iteri rel (fun row_id row ->
        let v = Tuple.attr row b in
        if (not (Value.is_null v)) && weights.(i).(row_id) > 0. then
          match Vtbl.find_opt lists v with
          | Some cell -> cell := row_id :: !cell
          | None -> Vtbl.replace lists v (ref [ row_id ]));
    let buckets = Vtbl.create (Vtbl.length lists) in
    Vtbl.iter
      (fun v cell ->
        let rows = Array.of_list (List.rev !cell) in
        let w = Array.map (fun row_id -> weights.(i).(row_id)) rows in
        Vtbl.replace buckets v { rows; pick = Dist.Draw_table.of_weights w })
      lists;
    buckets_of.(i) <- buckets
  done;
  let levels =
    Array.init k (fun i ->
        let rel = spec.relations.(i) in
        if i = k - 1 then { relation = rel; succ = [||] }
        else begin
          let a, _ = spec.join_keys.(i) in
          let succ = Array.make (Relation.cardinality rel) None in
          Relation.iteri rel (fun row_id row ->
              if weights.(i).(row_id) > 0. then
                let v = Tuple.attr row a in
                if not (Value.is_null v) then
                  succ.(row_id) <- Vtbl.find_opt buckets_of.(i + 1) v);
          { relation = rel; succ }
        end)
  in
  (* Root table over all rows of R1 with positive weight. *)
  let root_rows = ref [] in
  let root_weights = ref [] in
  let total = ref 0. in
  Relation.iteri spec.relations.(0) (fun row_id _ ->
      if weights.(0).(row_id) > 0. then begin
        root_rows := row_id :: !root_rows;
        root_weights := weights.(0).(row_id) :: !root_weights;
        total := !total +. weights.(0).(row_id)
      end);
  let root_rows = Array.of_list (List.rev !root_rows) in
  let root_w = Array.of_list (List.rev !root_weights) in
  let root_pick = if Array.length root_w = 0 then None else Some (Dist.Draw_table.of_weights root_w) in
  { levels; root_rows; root_pick; total = !total; plane = Dist.draw_plane () }

let join_size t = t.total

(* The weighted walk below the root: picks the next row in each
   level's bucket for the current join value, combining with [f].
   Raises Failure when the weight tables disagree with the relation
   contents (only possible if a relation mutated after prepare). *)
(* [st] is a packed PRNG state ([Prng.dump_state]): the walk makes its
   picks without touching the generator's boxed int64 fields. *)
let walk_from t st metrics ~row0_id ~f ~init =
  let k = Array.length t.levels in
  let row0 = Relation.get t.levels.(0).relation row0_id in
  metrics.Metrics.random_accesses <- metrics.Metrics.random_accesses + 1;
  let rec walk acc level_idx row_id =
    if level_idx = k - 1 then acc
    else begin
      metrics.Metrics.index_probes <- metrics.Metrics.index_probes + 1;
      match t.levels.(level_idx).succ.(row_id) with
      | None ->
          (* Positive weight guarantees a resolved successor;
             unreachable unless the relations changed after prepare. *)
          failwith "Chain_sample.draw: weight table inconsistent with relation contents"
      | Some bucket ->
          let j = Dist.Draw_table.draw_packed bucket.pick st in
          let next_id = bucket.rows.(j) in
          let row = Relation.get t.levels.(level_idx + 1).relation next_id in
          walk (f acc next_id row) (level_idx + 1) next_id
    end
  in
  walk (f init row0_id row0) 0 row0_id

let draw t rng ?(metrics = Metrics.create ()) () =
  match t.root_pick with
  | None -> None
  | Some root_pick ->
      count_draws t 1;
      let idx = Dist.Draw_table.draw root_pick rng in
      let st = Bytes.create 40 in
      Rsj_util.Prng.dump_state rng st;
      let join acc _row_id row = match acc with None -> Some row | Some l -> Some (Tuple.join l row) in
      let res = walk_from t st metrics ~row0_id:t.root_rows.(idx) ~f:join ~init:None in
      Rsj_util.Prng.load_state rng st;
      res

let sample t rng ?(metrics = Metrics.create ()) ~r () =
  match t.root_pick with
  | None -> [||]
  | Some root_pick ->
      Obs.Trace.with_span ~cat:"chain" ~args:[ ("r", Obs.Json.Int r) ] "chain_sample.sample"
      @@ fun () ->
      (* Batch the root picks: one packed-state pass on the alias
         plane amortizes PRNG and bounds checks across the request. *)
      count_draws t r;
      let roots = Array.make (max 1 r) 0 in
      Dist.Draw_table.draw_many root_pick rng ~into:roots ~n:r;
      let st = Bytes.create 40 in
      Rsj_util.Prng.dump_state rng st;
      let join acc _row_id row = match acc with None -> Some row | Some l -> Some (Tuple.join l row) in
      let out =
        Array.init r (fun j ->
            match walk_from t st metrics ~row0_id:t.root_rows.(roots.(j)) ~f:join ~init:None with
            | Some row -> row
            | None -> assert false)
      in
      Rsj_util.Prng.load_state rng st;
      out

let sample_rows t rng ?(metrics = Metrics.create ()) ~r () =
  match t.root_pick with
  | None -> [||]
  | Some root_pick ->
      Obs.Trace.with_span ~cat:"chain" ~args:[ ("r", Obs.Json.Int r) ] "chain_sample.sample_rows"
      @@ fun () ->
      count_draws t r;
      let k = Array.length t.levels in
      let roots = Array.make (max 1 r) 0 in
      Dist.Draw_table.draw_many root_pick rng ~into:roots ~n:r;
      let out = Array.make (r * k) 0 in
      (* The walk inlined without closures, on the packed state for the
         whole batch: this is the draw kernel the bench's draw-plane
         section times, so nothing per-draw beyond the picks
         themselves. *)
      let st = Bytes.create 40 in
      Rsj_util.Prng.dump_state rng st;
      (* Accounting hoisted out of the loop: a complete batch makes
         exactly r root accesses and r * (k-1) successor probes. *)
      metrics.Metrics.random_accesses <- metrics.Metrics.random_accesses + r;
      metrics.Metrics.index_probes <- metrics.Metrics.index_probes + (r * (k - 1));
      let succs = Array.init (k - 1) (fun i -> t.levels.(i).succ) in
      let root_rows = t.root_rows in
      for j = 0 to r - 1 do
        let base = j * k in
        let row_id = ref (Array.unsafe_get root_rows (Array.unsafe_get roots j)) in
        Array.unsafe_set out base !row_id;
        for level_idx = 0 to k - 2 do
          match Array.unsafe_get (Array.unsafe_get succs level_idx) !row_id with
          | None ->
              failwith "Chain_sample.draw: weight table inconsistent with relation contents"
          | Some bucket ->
              let jj = Dist.Draw_table.draw_packed bucket.pick st in
              row_id := Array.unsafe_get bucket.rows jj;
              Array.unsafe_set out (base + level_idx + 1) !row_id
        done
      done;
      Rsj_util.Prng.load_state rng st;
      out

open Rsj_util

let wr_to_wor rng ?(key = Hashtbl.hash) ~r sample =
  let order = Array.init (Array.length sample) Fun.id in
  Prng.shuffle_in_place rng order;
  let seen = Hashtbl.create (2 * r) in
  let out = ref [] in
  let count = ref 0 in
  Array.iter
    (fun idx ->
      if !count < r then begin
        let k = key sample.(idx) in
        if not (Hashtbl.mem seen k) then begin
          Hashtbl.replace seen k ();
          out := sample.(idx) :: !out;
          incr count
        end
      end)
    order;
  Array.of_list (List.rev !out)

let cf_to_wor rng ~r sample =
  let n = Array.length sample in
  if n < r then None
  else begin
    let idxs = Prng.sample_distinct rng ~k:r ~n in
    Some (Array.map (fun i -> sample.(i)) idxs)
  end

let cf_oversample_fraction ~f ~n ?(failure_prob = 1e-6) () =
  if f < 0. || f > 1. then invalid_arg "Convert.cf_oversample_fraction: f outside [0,1]";
  if n <= 0 then invalid_arg "Convert.cf_oversample_fraction: n <= 0";
  if f = 0. then 0.
  else begin
    (* Multiplicative Chernoff lower tail: a CF(f') sample of n tuples
       falls below (1 - eps) f' n with probability <= exp(-eps^2 f' n / 2).
       The bound holds at failure_prob when eps = sqrt(2 target / (n f')),
       so the guaranteed mass g(f') = (1 - eps) f' = f' - sqrt(2 target
       f' / n) must reach f. g is increasing in f', so bisect on [f, 1];
       when even f' = 1 cannot guarantee f n (small n, tight
       failure_prob), the whole relation must be read. *)
    let nf = float_of_int n in
    let target = -.log failure_prob in
    let guaranteed fp = fp -. sqrt (2. *. target *. fp /. nf) in
    if guaranteed 1. < f then 1.
    else begin
      let lo = ref f and hi = ref 1. in
      for _ = 1 to 60 do
        let mid = 0.5 *. (!lo +. !hi) in
        if guaranteed mid >= f then hi := mid else lo := mid
      done;
      !hi
    end
  end

let wor_to_wr rng ~r sample =
  let n = Array.length sample in
  if n = 0 then
    if r = 0 then [||] else invalid_arg "Convert.wor_to_wr: empty source with r > 0"
  else Array.init r (fun _ -> sample.(Prng.int rng n))

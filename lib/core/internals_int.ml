(* Data-plane twins of the Internals machinery: the same routing,
   matching and combination passes over flat int key columns
   (Column.int_view extractions) and int row ids, with no boxed Value
   in any loop. Join outputs travel as packed (left row, right row)
   pairs until the caller rehydrates the accepted winners through
   Relation.get.

   Every function here is draw-for-draw identical to its boxed twin in
   Internals from the same generator state — the RSJ_DATAPLANE toggle
   and test/test_dataplane.ml pin that equivalence — so a fixed seed
   produces bit-identical samples on either plane. The module is
   Value-free by construction (enforced by the @box-hygiene alias). *)

open Rsj_exec
module Prng = Rsj_util.Prng
module Dist = Rsj_util.Dist
module Wr_int = Rsj_util.Wr_int
module Int_index = Rsj_index.Int_index
module Hash_index = Rsj_index.Hash_index
module Counter = Int_index.Counter

let null_key = Int_index.null_key

(* Join outputs as packed row-id pairs: the left row in the high bits,
   the right row in the low 31. Relations are in-memory arrays well
   below 2^31 rows, and 62 bits fit the native int on every 64-bit
   target. *)
let pack i j = (i lsl 31) lor j
let unpack_left p = p asr 31
let unpack_right p = p land 0x7FFF_FFFF

(* Int twin of Internals.build_join_hash: same scan and retained-tuple
   accounting, CSR buckets in storage order (the boxed build's bucket
   order), keyed by raw int. *)
let build_join_index ?keep (metrics : Metrics.t) ~keys =
  let idx = Int_index.build ?keep ~keys () in
  metrics.tuples_scanned <- metrics.tuples_scanned + Array.length keys;
  metrics.hash_build_tuples <- metrics.hash_build_tuples + Int_index.size idx;
  idx

(* Int twin of Internals.Partition: the hi/lo routing pass with both
   reservoirs as allocation-free Wr_int kernels sharing one packed
   generator stream (the boxed route interleaves s1/jlo feeds on one
   rng, so the kernels must too), and the Rhi1 tallies in an int
   Counter. [seal] lifts a chunk's kernels into plain int reservoirs so
   Reservoir.Wr.merge applies unchanged. *)
module Partition = struct
  type kernels = {
    s1k : Wr_int.t;
    jlok : Wr_int.t;
    m1_hi : Counter.t;
    mutable n_lo : int;
  }

  type t = {
    s1_res : int Reservoir.Wr.t;
    m1_hi : Counter.t;
    jlo_res : int Reservoir.Wr.t;
    n_lo : int;
  }

  let create_kernels rng ~r =
    let s1k = Wr_int.create ~on_displace:Reservoir.note_displacements rng ~r in
    {
      s1k;
      jlok = Wr_int.create_linked ~on_displace:Reservoir.note_displacements s1k ~r;
      m1_hi = Counter.create ();
      n_lo = 0;
    }

  (* Route one R1 row. [tracked] is the histogram's int plane (count
     > 0 ⟺ high-frequency); [lo_tbl] resolves a low value's R2 bucket;
     [on_lo_probe] charges whichever probe metric the caller's boxed
     twin charges (index probe for Index-Sample, nothing for the hash
     flavours). Draws and counters mirror Internals.Partition.route:
     nothing for a null key, stats lookup per non-null row, one
     weighted feed per hi row, one unit feed per lo join pair. *)
  let route (metrics : Metrics.t) kers ~tracked ~lo_tbl ~on_lo_probe row k =
    if k <> null_key then begin
      metrics.stats_lookups <- metrics.stats_lookups + 1;
      let m2v = Counter.get tracked k in
      if m2v > 0 then begin
        Wr_int.feed kers.s1k ~weight:m2v row;
        Counter.add kers.m1_hi k 1
      end
      else begin
        on_lo_probe metrics;
        match Int_index.find_gid lo_tbl k with
        | -1 -> ()
        | g ->
            let s = Int_index.gid_start lo_tbl g in
            let m = Int_index.gid_multiplicity lo_tbl g in
            for j = s to s + m - 1 do
              metrics.join_output_tuples <- metrics.join_output_tuples + 1;
              kers.n_lo <- kers.n_lo + 1;
              Wr_int.feed kers.jlok ~weight:1 (pack row (Int_index.row lo_tbl j))
            done
      end
    end

  let seal ~r kers =
    (* The kernels share one packed state; one finish releases it. *)
    Wr_int.finish kers.s1k;
    {
      s1_res =
        Reservoir.Wr.of_parts ~r ~slots:(Wr_int.contents kers.s1k)
          ~fed:(Wr_int.fed_count kers.s1k) ~total:(Wr_int.total_weight kers.s1k);
      m1_hi = kers.m1_hi;
      jlo_res =
        Reservoir.Wr.of_parts ~r ~slots:(Wr_int.contents kers.jlok)
          ~fed:(Wr_int.fed_count kers.jlok) ~total:(Wr_int.total_weight kers.jlok);
      n_lo = kers.n_lo;
    }

  let create ~r =
    {
      s1_res = Reservoir.Wr.create ~r;
      m1_hi = Counter.create ();
      jlo_res = Reservoir.Wr.create ~r;
      n_lo = 0;
    }

  let merge rng a b =
    let m1_hi = Counter.create ~capacity:(Counter.cardinal a.m1_hi + Counter.cardinal b.m1_hi) () in
    Counter.iter (fun k v -> Counter.add m1_hi k v) a.m1_hi;
    Counter.iter (fun k v -> Counter.add m1_hi k v) b.m1_hi;
    (* Same generator order as the boxed merge: s1 then jlo. *)
    let s1_res = Reservoir.Wr.merge rng a.s1_res b.s1_res in
    let jlo_res = Reservoir.Wr.merge rng a.jlo_res b.jlo_res in
    { s1_res; m1_hi; jlo_res; n_lo = a.n_lo + b.n_lo }

  let n_hi acc ~tracked =
    Counter.fold
      (fun k m1v a ->
        let m2v = Counter.get tracked k in
        if m2v > 0 then a + (m1v * m2v) else a)
      acc.m1_hi 0

  let s1 acc = Reservoir.Wr.contents acc.s1_res
  let lo_pool acc = Reservoir.Wr.contents acc.jlo_res
  let n_lo acc = acc.n_lo
end

(* Int twin of Internals.fps_hi_pick: one uniform bucket pick per S1
   row, same failure diagnostic, packed output. *)
let fps_hi_pick rng (metrics : Metrics.t) ~tbl ~(keys1 : int array) (s1 : int array) =
  Array.map
    (fun row ->
      match Int_index.find_gid tbl keys1.(row) with
      | -1 ->
          failwith
            "Frequency_partition.sample: sampled hi tuple has no match in R2 (stale histogram?)"
      | g ->
          let s = Int_index.gid_start tbl g in
          let m = Int_index.gid_multiplicity tbl g in
          metrics.join_output_tuples <- metrics.join_output_tuples + m;
          pack row (Int_index.row tbl (s + Prng.int rng m)))
    s1

(* Int twin of Internals.index_hi_pick: one random match per S1 row
   through the R2 index's int plane. *)
let index_hi_pick rng (metrics : Metrics.t) ~right_index ~(keys1 : int array) (s1 : int array) =
  Array.map
    (fun row ->
      metrics.index_probes <- metrics.index_probes + 1;
      match Hash_index.random_match_row right_index rng keys1.(row) with
      | -1 ->
          failwith "Index_sample.sample: sampled hi tuple has no match in R2 (stale histogram?)"
      | r2 ->
          metrics.join_output_tuples <- metrics.join_output_tuples + 1;
          pack row r2)
    s1

(* Int twin of Internals.count_sample_scan: groups S1 rows by key in
   first-occurrence order (members in reverse-S1 order before the
   per-group shuffle, like the boxed consed lists), then the same
   binomial-thinning R2 scan over the flat key column. Output is the
   packed join pairs in the boxed emission order, shuffled with the
   same draws. *)
let count_sample_scan rng (metrics : Metrics.t) ~strategy ~(s1 : int array) ~keys1 ~keys2
    ~(population : int -> int) : int array =
  let n1 = Array.length s1 in
  if n1 = 0 then [||]
  else begin
    let gid = Counter.create ~capacity:(2 * n1) () in
    let order = Array.make n1 0 in
    let cells = Array.make n1 [] in
    let ngroups = ref 0 in
    Array.iter
      (fun row ->
        let k = keys1.(row) in
        let g =
          match Counter.get gid k with
          | 0 ->
              incr ngroups;
              Counter.add gid k !ngroups;
              order.(!ngroups - 1) <- k;
              !ngroups - 1
          | g -> g - 1
        in
        cells.(g) <- row :: cells.(g))
      s1;
    let ng = !ngroups in
    let members = Array.make ng [||] in
    let outstanding = Array.make ng 0 in
    let seen = Array.make ng 0 in
    let pops = Array.make ng 0 in
    let next_member = Array.make ng 0 in
    for g = 0 to ng - 1 do
      let mem = Array.of_list cells.(g) in
      Prng.shuffle_in_place rng mem;
      let pop = population order.(g) in
      if pop <= 0 then
        failwith (strategy ^ ": sampled value has no frequency in the statistics");
      members.(g) <- mem;
      outstanding.(g) <- Array.length mem;
      pops.(g) <- pop
    done;
    let out = ref [] in
    let n2 = Array.length keys2 in
    for i = 0 to n2 - 1 do
      metrics.tuples_scanned <- metrics.tuples_scanned + 1;
      let k = Array.unsafe_get keys2 i in
      if k <> null_key then begin
        let g = Counter.get gid k in
        if g > 0 then begin
          let g = g - 1 in
          if outstanding.(g) > 0 then begin
            if seen.(g) >= pops.(g) then
              failwith (strategy ^ ": R2 holds more tuples of a value than the statistics claim");
            let p = 1. /. float_of_int (pops.(g) - seen.(g)) in
            let copies = Dist.binomial rng ~n:outstanding.(g) ~p in
            seen.(g) <- seen.(g) + 1;
            outstanding.(g) <- outstanding.(g) - copies;
            for _ = 1 to copies do
              let row1 = members.(g).(next_member.(g)) in
              next_member.(g) <- next_member.(g) + 1;
              metrics.join_output_tuples <- metrics.join_output_tuples + 1;
              out := pack row1 i :: !out
            done
          end
          else seen.(g) <- seen.(g) + 1
        end
      end
    done;
    for g = 0 to ng - 1 do
      if outstanding.(g) > 0 then
        failwith (strategy ^ ": statistics overstate a value's frequency (stale statistics?)")
    done;
    let pool = Array.of_list !out in
    Prng.shuffle_in_place rng pool;
    pool
  end

open Rsj_relation
open Rsj_exec
module Frequency = Rsj_stats.Frequency

let sample rng ~metrics ~r ~left ~left_key ~right ~right_key ~right_stats =
  let open Metrics in
  let weight t1 =
    metrics.stats_lookups <- metrics.stats_lookups + 1;
    float_of_int (Frequency.frequency right_stats (Tuple.attr t1 left_key))
  in
  let s1 = Black_box.wr2 rng ~r ~weight left in
  let out =
    Internals.count_sample_scan rng metrics ~strategy:"Count_sample.sample" ~s1 ~left_key ~right
      ~right_key
      ~population:(fun v -> Frequency.frequency right_stats v)
  in
  metrics.output_tuples <- metrics.output_tuples + Array.length out;
  out

(* Columnar fast path: the weighted S1 pass runs through the Wr_int
   kernel over the flat R1 key column, and the R2 matching scan is the
   int twin Internals_int.count_sample_scan over the flat R2 column;
   only the accepted pairs are rehydrated. Bit-identical to [sample]
   from the same generator state. *)
let sample_int rng ~metrics ~r ~left ~right ~(keys1 : int array) ~(keys2 : int array) ~freq =
  let open Metrics in
  let module Counter = Rsj_index.Int_index.Counter in
  let n1 = Array.length keys1 in
  metrics.tuples_scanned <- metrics.tuples_scanned + n1;
  metrics.stats_lookups <- metrics.stats_lookups + n1;
  let ker = Rsj_util.Wr_int.create ~on_displace:Reservoir.note_displacements rng ~r in
  for row = 0 to n1 - 1 do
    Rsj_util.Wr_int.feed ker ~weight:(Counter.get freq (Array.unsafe_get keys1 row)) row
  done;
  Rsj_util.Wr_int.finish ker;
  let s1 = Rsj_util.Wr_int.contents ker in
  let pairs =
    Internals_int.count_sample_scan rng metrics ~strategy:"Count_sample.sample" ~s1 ~keys1
      ~keys2
      ~population:(fun k -> Counter.get freq k)
  in
  let out =
    Array.map
      (fun p ->
        Tuple.join
          (Relation.get left (Internals_int.unpack_left p))
          (Relation.get right (Internals_int.unpack_right p)))
      pairs
  in
  metrics.output_tuples <- metrics.output_tuples + Array.length out;
  out

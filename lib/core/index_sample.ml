open Rsj_relation
open Rsj_exec
module End_biased = Rsj_stats.Histogram.End_biased
module Hash_index = Rsj_index.Hash_index

let sample rng ~metrics ~r ~left ~left_key ~right_index ~histogram =
  let open Metrics in
  let frequency = End_biased.frequency histogram in
  (* Pass over R1: hi/lo routing through the shared accumulator; low
     values resolve their matches through the R2 index instead of a
     per-run hash table. *)
  let acc = Internals.Partition.create ~r in
  let lo_matches (m : Metrics.t) v =
    m.index_probes <- m.index_probes + 1;
    Hash_index.matching_tuples right_index v
  in
  Stream0.iter
    (fun t1 -> Internals.Partition.route rng metrics acc ~left_key ~frequency ~lo_matches t1)
    left;
  let n_hi = Internals.Partition.n_hi acc ~frequency in
  let n_lo = Internals.Partition.n_lo acc in
  (* High side à la Stream-Sample: one random match per sampled tuple. *)
  let s1 = Internals.Partition.s1 acc in
  let hi_pool = Internals.index_hi_pick rng metrics ~right_index ~left_key s1 in
  let lo_pool = Internals.Partition.lo_pool acc in
  let out, r_hi, r_lo = Internals.binomial_combine rng ~r ~n_hi ~n_lo ~hi_pool ~lo_pool in
  metrics.output_tuples <- metrics.output_tuples + Array.length out;
  (out, { Frequency_partition.n_hi; n_lo; r_hi; r_lo })

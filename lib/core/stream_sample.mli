(** Strategy Stream-Sample (paper §6.1) — the headline Case B strategy.

    Step 1: draw a weighted WR sample S1 of size r from the streaming
    R1, weighting each tuple t by m2(t.A) (frequency of its join value
    in R2). Step 2: for each sampled t1, draw one uniform random
    matching tuple t2 from R2 via the index and output t1 ⋈ t2.

    Theorem 6: the result is a WR sample of R1 ⋈ R2 and {e exactly one}
    iteration is spent per output tuple — no rejection, no index or
    materialization of R1 (contrast Olken-Sample). *)

open Rsj_relation
open Rsj_exec

val sample :
  Rsj_util.Prng.t ->
  metrics:Metrics.t ->
  r:int ->
  left:Tuple.t Stream0.t ->
  left_key:int ->
  right_index:Rsj_index.Hash_index.t ->
  ?right_stats:Rsj_stats.Frequency.t ->
  ?total_weight:float ->
  unit ->
  Tuple.t array
(** WR sample of size [r] of R1 ⋈ R2; shorter only when the join is
    empty (then [[||]]).

    Weights come from [right_stats] when provided (the "statistics" of
    Table 1 — one stats lookup per streamed tuple), otherwise from index
    multiplicity probes. When [total_weight] (= Σ_t m2(t.A) over R1,
    which equals |J|) is supplied, the online Black-Box WR1 is used —
    O(1) memory, output begins before R1 is drained; otherwise the
    reservoir Black-Box WR2 is used, which needs no advance knowledge.
    Both produce identical distributions. *)

val sample_int :
  Rsj_util.Prng.t ->
  metrics:Metrics.t ->
  r:int ->
  left:Relation.t ->
  keys:int array ->
  right_index:Rsj_index.Hash_index.t ->
  freq:Rsj_index.Int_index.Counter.t ->
  unit ->
  Tuple.t array
(** Columnar twin of the reservoir (WR2 + [right_stats]) path of
    {!sample}: [keys] is R1's join column as a {!Column.int_view},
    [freq] the statistics' int counter; the S1 inner loop is
    allocation-free and winners are rehydrated by row id. Bit-identical
    output to the boxed path from the same generator state. *)

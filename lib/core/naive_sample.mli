(** Strategy Naive-Sample (paper §5.3) — the Case A baseline.

    Compute the full join J = R1 ⋈ R2 and sample sequentially from the
    output pipeline with an unweighted WR black box, never materializing
    J. The only strategy available when no index or statistics exist on
    either operand; every other strategy is measured against it. *)

open Rsj_relation
open Rsj_exec

val sample :
  Rsj_util.Prng.t ->
  metrics:Metrics.t ->
  r:int ->
  left:Tuple.t Stream0.t ->
  right:Relation.t ->
  left_key:int ->
  right_key:int ->
  Tuple.t array
(** WR sample of size [r] (or [[||]] when the join is empty). The join
    is executed as a hash join building on [right] and streaming [left];
    its output feeds Black-Box U2 (reservoir, since |J| is unknown in
    advance). Work counted: the R2 build scan, the R1 probe scan, and
    every join output tuple — the full |J|. *)

val sample_known_n :
  Rsj_util.Prng.t ->
  metrics:Metrics.t ->
  r:int ->
  n:int ->
  left:Tuple.t Stream0.t ->
  right:Relation.t ->
  left_key:int ->
  right_key:int ->
  Tuple.t array
(** Variant using Black-Box U1 when |J| = [n] is known (e.g. from exact
    statistics): O(1) auxiliary memory and online output, but identical
    join work. Raises [Failure] if the join produces fewer than [n]
    tuples. *)

val sample_int :
  Rsj_util.Prng.t ->
  metrics:Metrics.t ->
  r:int ->
  left:Relation.t ->
  right:Relation.t ->
  keys1:int array ->
  keys2:int array ->
  Tuple.t array
(** Columnar twin of {!sample}: both join columns as
    {!Column.int_view} extractions; the hash build, probe scan and
    reservoir feed run over flat ints and packed row pairs, with
    winners rehydrated by row id. Bit-identical output to the boxed
    path from the same generator state. *)

val sample_cf :
  Rsj_util.Prng.t ->
  metrics:Metrics.t ->
  f:float ->
  left:Tuple.t Stream0.t ->
  right:Relation.t ->
  left_key:int ->
  right_key:int ->
  Tuple.t array
(** Coin-flip semantics over the join output (each output tuple kept
    independently with probability [f]). *)

open Rsj_relation
open Rsj_exec

let join_stream (metrics : Metrics.t) ~left ~right ~left_key ~right_key =
  let tbl = Internals.build_join_hash metrics right ~right_key in
  Stream0.concat_map
    (fun t1 ->
      let matches = Internals.hash_matches tbl (Tuple.attr t1 left_key) in
      Stream0.map
        (fun t2 ->
          metrics.join_output_tuples <- metrics.join_output_tuples + 1;
          Tuple.join t1 t2)
        (Stream0.of_array matches))
    left

let sample rng ~metrics ~r ~left ~right ~left_key ~right_key =
  let j = join_stream metrics ~left ~right ~left_key ~right_key in
  let out = Black_box.u2 rng ~r j in
  metrics.output_tuples <- metrics.output_tuples + Array.length out;
  out

let sample_known_n rng ~metrics ~r ~n ~left ~right ~left_key ~right_key =
  let j = join_stream metrics ~left ~right ~left_key ~right_key in
  let out = Stream0.to_array (Black_box.u1 rng ~n ~r j) in
  metrics.output_tuples <- metrics.output_tuples + Array.length out;
  out

(* Columnar fast path of [sample]: the join is enumerated over the two
   flat key columns (int-plane hash build, CSR bucket walk) and each
   output pair feeds the allocation-free Wr_int kernel as a packed row
   pair; only the r winners are rehydrated. Bit-identical to [sample]
   from the same generator state. *)
let sample_int rng ~metrics ~r ~left ~right ~(keys1 : int array) ~(keys2 : int array) =
  let open Metrics in
  let module I = Rsj_index.Int_index in
  let tbl = Internals_int.build_join_index metrics ~keys:keys2 in
  let n1 = Array.length keys1 in
  metrics.tuples_scanned <- metrics.tuples_scanned + n1;
  let ker = Rsj_util.Wr_int.create ~on_displace:Reservoir.note_displacements rng ~r in
  let matched = ref 0 in
  for row = 0 to n1 - 1 do
    match I.find_gid tbl (Array.unsafe_get keys1 row) with
    | -1 -> ()
    | g ->
        let s = I.gid_start tbl g in
        let m = I.gid_multiplicity tbl g in
        for j = s to s + m - 1 do
          Rsj_util.Wr_int.feed ker ~weight:1 (Internals_int.pack row (I.row tbl j))
        done;
        matched := !matched + m
  done;
  metrics.join_output_tuples <- metrics.join_output_tuples + !matched;
  Rsj_util.Wr_int.finish ker;
  let out =
    Array.map
      (fun p ->
        Tuple.join
          (Relation.get left (Internals_int.unpack_left p))
          (Relation.get right (Internals_int.unpack_right p)))
      (Rsj_util.Wr_int.contents ker)
  in
  metrics.output_tuples <- metrics.output_tuples + Array.length out;
  out

let sample_cf rng ~metrics ~f ~left ~right ~left_key ~right_key =
  let j = join_stream metrics ~left ~right ~left_key ~right_key in
  let out = Stream0.to_array (Black_box.coin_flip rng ~f j) in
  metrics.output_tuples <- metrics.output_tuples + Array.length out;
  out

(** Exact WR sampling over a whole join chain without computing any
    join — the full push-down the paper poses as future work in §7.2
    ("we will have to sample from R1 using statistics for both R2 and
    R3. In principle, this can be done, since the operand relations are
    all base relations and their statistics can be precomputed").

    For a chain R1 ⋈ R2 ⋈ ... ⋈ Rk (each join on its own attribute
    pair), propagate weights right to left:

    - w_k(t) = 1 for t in Rk;
    - w_i(t) = Σ over matching t' in R(i+1) of w_(i+1)(t'), aggregated
      per join value so each pass is one scan;
    - |J| = Σ over t in R1 of w_1(t).

    One output tuple is drawn by walking left to right, choosing the
    next tuple with probability proportional to its weight among the
    matches — a weighted random walk whose acceptance probability is 1
    (the same idea later published as Wander Join with exact weights).
    Every draw is an independent uniform tuple of the chain join, so r
    draws form a WR sample. Preparation costs one scan of every
    relation; each sample costs k categorical draws. *)

open Rsj_relation
open Rsj_exec

type spec = {
  relations : Relation.t array;  (** R1 ... Rk, k >= 1. *)
  join_keys : (int * int) array;
      (** [join_keys.(i) = (a, b)]: R(i+1).a = R(i+2).b in 0-based
          array terms — column [a] of [relations.(i)] equals column [b]
          of [relations.(i+1)]. Length k-1. *)
}

type t
(** Prepared sampler (weight tables and per-value draw tables, built
    on the current [RSJ_DRAW] plane: alias structures for O(1) picks
    by default, CDF tables under [RSJ_DRAW=cdf]). *)

val prepare : ?metrics:Metrics.t -> spec -> t
(** Validates the spec and builds the weight tables. Raises
    [Invalid_argument] on shape errors. The per-value pick structures
    are built on the draw plane current at this call; an r-draw from a
    k-chain is then O(k·r) on the alias plane against
    O(r·(log |R1| + Σ log bucket)) on the CDF plane. *)

val join_size : t -> float
(** Exact |J| as the total root weight (float: chains can overflow
    int range; exact up to float precision). *)

val draw : t -> Rsj_util.Prng.t -> ?metrics:Metrics.t -> unit -> Tuple.t option
(** One uniform random tuple of the chain join (concatenated row), or
    [None] when the join is empty. *)

val sample : t -> Rsj_util.Prng.t -> ?metrics:Metrics.t -> r:int -> unit -> Tuple.t array
(** [r] independent draws (WR). [[||]] when the join is empty. The
    root picks are batched through the plane's [draw_many] (one
    packed-state pass on the alias plane), so the stream differs from
    [r] successive {!draw}s — each tuple is still an exact independent
    uniform draw of the join. *)

val sample_rows : t -> Rsj_util.Prng.t -> ?metrics:Metrics.t -> r:int -> unit -> int array
(** The draw kernel alone: [r] independent WR draws returned as row-id
    paths — [r] consecutive groups of [k] row ids (group [j] holds the
    R1..Rk row ids of draw [j]) — with no tuple materialization.
    [[||]] when the join is empty. *)

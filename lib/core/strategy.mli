(** Unified view over all join-sampling strategies: names, information
    requirements (the paper's Table 1), and a single entry point that
    prepares whatever auxiliary structures each strategy needs and runs
    it over a common join instance.

    The per-strategy modules ({!Naive_sample}, {!Olken_sample},
    {!Stream_sample}, {!Group_sample}, {!Frequency_partition},
    {!Index_sample}, {!Count_sample}, {!Hybrid_count}) remain the
    precise, fully-typed API; this module is the convenience layer used
    by the harness, the CLI, and quick experiments. *)

open Rsj_relation
open Rsj_exec

type t =
  | Naive
  | Olken
  | Stream
  | Group
  | Frequency_partition
  | Index_sample
  | Count_sample
  | Hybrid_count

val all : t list
val name : t -> string
val of_name : string -> t option
(** Case-insensitive; accepts the paper's hyphenated spellings
    ("Stream-Sample") and the short forms ("stream"). *)

(** What a strategy needs to know about an operand (Table 1). *)
type requirement =
  | Nothing  (** The operand may be a pure stream. *)
  | Index  (** Random access / index required. *)
  | Index_or_stats  (** An index or full statistics. *)
  | Statistics  (** Full frequency statistics (no index). *)
  | Partial_statistics  (** An end-biased histogram suffices. *)

val r1_requirement : t -> requirement
val r2_requirement : t -> requirement
val requirement_to_string : requirement -> string

val table1 : unit -> (string * string * string) list
(** Rows of the paper's Table 1: (strategy, R1 info, R2 info). *)

(** Which auxiliary structures the catalog actually has for a join
    instance — the optimizer's view of Table 1's columns. The flags
    describe availability, not construction cost: {!env} can always
    build anything lazily, but a picker must not choose a strategy
    whose requirements the declared catalog state cannot meet. *)
type availability = {
  left_index : bool;  (** Random access / index on R1. *)
  right_index : bool;  (** Index on R2's join attribute. *)
  right_stats : bool;  (** Full frequency statistics for R2. *)
  right_histogram : bool;  (** End-biased histogram for R2. *)
}

val all_available : availability
val nothing_available : availability

exception Missing_structure of { strategy : string; structure : string }
(** Raised by {!require_structures}; [structure] is the stable name of
    the first absent requirement (e.g. ["index(R1)"],
    ["statistics(R2)"], ["end-biased histogram(R2)"],
    ["index(R2) or statistics(R2)"], ["index(R2hi)"]). *)

val missing_structures : availability -> t -> string list
(** Structure names required by the strategy (per {!r1_requirement} /
    {!r2_requirement}, plus Index-Sample's hi-side index) that the
    availability record does not provide; [[]] means runnable. *)

val require_structures : availability -> t -> unit
(** Raise {!Missing_structure} naming the first absent requirement, or
    return unit when every requirement is met. *)

(** A prepared join instance: both relations materialized (so any
    strategy can run), auxiliary structures built lazily so a strategy
    pays only for what it requires. *)
type env

(** Optional supplier of already-built (or memoized) auxiliary
    structures. Every field defaults to "build privately"; a warm
    structure cache ({!Rsj_cache.Structure_cache}) passes thunks that
    consult it instead, so repeated envs over the same relations stop
    rebuilding. Thunks run at first force, never at env creation. *)
type prebuilt = {
  p_left_stats : (unit -> Rsj_stats.Frequency.t) option;
  p_right_stats : (unit -> Rsj_stats.Frequency.t) option;
  p_right_index : (unit -> Rsj_index.Hash_index.t) option;
  p_histogram : (unit -> Rsj_stats.Histogram.End_biased.t) option;
  p_left_key_view : (unit -> int array option) option;
  p_right_key_view : (unit -> int array option) option;
}

val no_prebuilt : prebuilt
(** All fields [None] — the default private builds. *)

val make_env :
  ?seed:int ->
  ?histogram_fraction:float ->
  ?structures:prebuilt ->
  left:Relation.t ->
  right:Relation.t ->
  left_key:int ->
  right_key:int ->
  unit ->
  env
(** [histogram_fraction] is the end-biased threshold as a fraction of
    |R2| (the paper's k%; default 0.05 as in Figures A–E).
    [structures] injects memoized builds (see {!prebuilt}). *)

val env_left : env -> Relation.t
val env_right : env -> Relation.t
val env_left_key : env -> int
val env_right_key : env -> int

val env_rng : env -> Rsj_util.Prng.t
(** The env's root generator. Runners split children off it (never
    draw from it directly) so successive runs stay reproducible. *)

val env_right_stats : env -> Rsj_stats.Frequency.t
val env_right_index : env -> Rsj_index.Hash_index.t
val env_histogram : env -> Rsj_stats.Histogram.End_biased.t
val env_join_size : env -> int
(** Exact |R1 ⋈ R2| (forces statistics on both sides). *)

val env_left_key_view : env -> int array option
val env_right_key_view : env -> int array option
(** The join columns as flat {!Column.int_view} extractions ([None]
    when not int-viewable), cached per env. These are the compact data
    plane's inputs; {!run} and the parallel runtime consult them when
    {!Column.mode} is [Int_keys]. *)

type result = {
  strategy : t;
  sample : Tuple.t array;
  metrics : Metrics.t;
  elapsed_seconds : float;  (** Wall-clock for the sampling run only
      (auxiliary-structure construction is excluded, matching the
      paper's setup where indexes and statistics pre-exist). *)
}

val prepare : env -> t -> unit
(** Force the auxiliary structures [strategy] is entitled to (Table 1),
    so a subsequent timed run excludes their construction. {!run} calls
    this itself; alternative runners (the parallel runtime) reuse it. *)

val run : env -> t -> r:int -> result
(** Draw a WR sample of size [r] with the given strategy. A fresh
    child generator is split off the env's seed per run, so runs are
    reproducible and independent. *)

val run_wor : env -> t -> r:int -> result
(** WoR variant: runs the strategy with WR semantics and applies the
    §3 conversion, topping up with further WR batches until [r]
    distinct tuples are found (or the whole join is exhausted). *)

(** Exact frequency statistics for a join attribute.

    A frequency table records m(v) — the number of tuples holding value
    [v] in the attribute — for every value in the relation. These are
    the "full statistics" of the paper's Case B/C: Stream-Sample and
    Group-Sample read tuple weights m2(t.A) from such a table
    (§6.1–6.2). In the SQL Server implementation the table was "read
    from a file and stored in a work table"; here it is an in-memory
    hash map with the same information content. *)

open Rsj_relation

type t

val of_relation : Relation.t -> key:int -> t
(** One-scan construction. NULLs are not counted (they never join). *)

val of_stream : Tuple.t Stream0.t -> key:int -> t
(** Consume a stream and tabulate frequencies — used when R1's
    statistics are collected on the fly (§6.3 step 2). *)

val of_relation_parallel : ?domains:int -> Relation.t -> key:int -> t
(** [of_relation_parallel ~domains r ~key] builds the same table as
    {!of_relation} by counting contiguous row shards on [domains] OCaml
    domains and summing the per-shard tables. [domains <= 1] (the
    default) falls back to the sequential build. *)

val merge : t -> t -> t
(** [merge a b] is the fresh table with m(v) = m_a(v) + m_b(v) — the
    combine step for statistics collected over disjoint shards. *)

val of_assoc : (Value.t * int) list -> t
(** Build directly from (value, frequency) pairs; frequencies must be
    positive. For tests and synthetic scenarios. *)

val frequency : t -> Value.t -> int
(** m(v); 0 for unseen values. The paper's m1/m2 functions. *)

val int_counter : t -> Rsj_index.Int_index.Counter.t option
(** The data-plane view of the table: the same counts keyed by raw int,
    for inner loops scanning a {!Column.int_view} key column
    ([Counter.get c k] = [frequency t (Int k)]). Derived on first use
    and cached until the next mutation; [None] when the table holds a
    value no int key can represent. *)

val total : t -> int
(** Sum of all frequencies (= number of non-NULL tuples scanned). *)

val distinct_count : t -> int
val max_frequency : t -> int
(** The Olken bound M = max_v m(v); 0 for an empty table. *)

val iter : t -> (Value.t -> int -> unit) -> unit
val fold : t -> init:'a -> f:('a -> Value.t -> int -> 'a) -> 'a
val to_assoc : t -> (Value.t * int) list
(** Pairs sorted by decreasing frequency, ties by value order —
    end-biased histogram construction relies on this ordering. *)

val values_above : t -> threshold:int -> (Value.t * int) list
(** Values with m(v) >= threshold, sorted by decreasing frequency. *)

val join_size : t -> t -> int
(** [join_size m1 m2] is |R1 ⋈ R2| = Σ_v m1(v)·m2(v) (§5). *)

val restrict : t -> keep:(Value.t -> bool) -> t
(** Sub-table retaining only values satisfying [keep] — the paper's
    R|D' restriction at the statistics level. *)

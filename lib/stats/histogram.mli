(** Histograms: summary statistics weaker than full frequency tables.

    The end-biased histogram is the structure Frequency-Partition-Sample
    actually requires (§6.3): exact frequencies for every value occurring
    at least [threshold] times, and nothing for the rest. The paper's
    threshold is expressed as k% of the relation size ("a threshold of
    k% means that frequency counts are kept for all values which occur
    k% of the time or more"). An equi-depth histogram is also provided
    as the conventional engine statistic (used by the examples and by
    join-size estimation). *)

open Rsj_relation

(** End-biased histogram (exact head, nothing for the tail). *)
module End_biased : sig
  type t

  val build : Frequency.t -> threshold:int -> t
  (** Keep values with frequency >= [threshold] (absolute count). *)

  val build_fraction : Frequency.t -> fraction:float -> t
  (** Paper-style threshold: keep values with m(v) >= fraction·n, where
      [n] is the table's total count. [fraction] in [\[0, 1\]]. *)

  val threshold : t -> int
  val frequency : t -> Value.t -> int option
  (** [Some m(v)] for tracked (high-frequency) values, [None] for
      untracked ones — the caller cannot distinguish "absent" from
      "below threshold", exactly the information loss the strategy must
      tolerate. *)

  val int_tracked : t -> Rsj_index.Int_index.Counter.t option
  (** Data-plane view of the tracked set: [Counter.get c k] is the
      tracked frequency of [Int k], and 0 unambiguously means "not
      tracked" (tracked counts are >= threshold >= 1). Derived on first
      use; [None] when a tracked value has no int representation. *)

  val is_high : t -> Value.t -> bool
  (** Membership of the high-frequency subdomain Dhi. *)

  val high_values : t -> (Value.t * int) list
  (** Tracked (value, frequency) pairs, decreasing frequency. *)

  val tracked_count : t -> int
  val tracked_mass : t -> int
  (** Σ m(v) over tracked values — the size of R2hi. *)
end

(** Equi-depth (equi-height) histogram over an ordered domain. *)
module Equi_depth : sig
  type t

  type bucket = {
    lo : Value.t;  (** Smallest value in the bucket. *)
    hi : Value.t;  (** Largest value in the bucket. *)
    count : int;  (** Tuples in the bucket. *)
    distinct : int;  (** Distinct values in the bucket. *)
  }

  val build : Relation.t -> key:int -> buckets:int -> t
  (** Sorts the column once and cuts it into [buckets] near-equal-mass
      ranges. Raises [Invalid_argument] if [buckets <= 0]. *)

  val buckets : t -> bucket array
  val total : t -> int

  val estimate_frequency : t -> Value.t -> float
  (** Uniform-within-bucket estimate of m(v): bucket count / bucket
      distinct for the bucket containing the value, 0 outside all
      buckets. *)

  val estimate_join_size : t -> t -> float
  (** Classical bucket-overlap estimate of |R1 ⋈ R2| under uniformity
      assumptions; compared against exact {!Frequency.join_size} in the
      validation benches. *)
end

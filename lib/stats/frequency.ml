open Rsj_relation

module Vtbl = Hashtbl.Make (struct
  type t = Value.t

  let equal = Value.equal
  let hash = Value.hash
end)

module Counter = Rsj_index.Int_index.Counter

(* [key_cache] is the data-plane view of the table: the same counts
   keyed by raw int instead of boxed Value, derived lazily and
   invalidated by any mutation. [Unavailable] marks tables holding a
   non-int value, for which the int plane escapes to boxed lookups. *)
type key_cache = Stale | Unavailable | Ready of Counter.t

type t = {
  counts : int Vtbl.t;
  mutable total : int;
  mutable max_freq : int;
  mutable key_cache : key_cache;
}

let empty () = { counts = Vtbl.create 256; total = 0; max_freq = 0; key_cache = Stale }

let bump t v k =
  let c = k + Option.value ~default:0 (Vtbl.find_opt t.counts v) in
  Vtbl.replace t.counts v c;
  t.total <- t.total + k;
  t.key_cache <- Stale;
  if c > t.max_freq then t.max_freq <- c

let int_counter t =
  match t.key_cache with
  | Ready c -> Some c
  | Unavailable -> None
  | Stale ->
      let ok = ref true in
      let c = Counter.create ~capacity:(Vtbl.length t.counts) () in
      Vtbl.iter
        (fun v n ->
          match v with
          | Value.Int x when x <> min_int -> Counter.add c x n
          | _ -> ok := false)
        t.counts;
      if !ok then begin
        t.key_cache <- Ready c;
        Some c
      end
      else begin
        t.key_cache <- Unavailable;
        None
      end

let of_relation rel ~key =
  match Column.int_view rel ~col:key with
  | Some keys ->
      (* Int-column fast path: count raw keys through the open-addressing
         counter (no Value hashing), then mirror the table into the boxed
         Vtbl for the boxed consumers. Totals, multiplicities and the
         maximum agree exactly with the row-order build. *)
      let c = Counter.create ~capacity:64 () in
      let total = ref 0 in
      let nk = Array.length keys in
      for i = 0 to nk - 1 do
        let k = Array.unsafe_get keys i in
        if k <> min_int then begin
          Counter.add c k 1;
          incr total
        end
      done;
      let t = empty () in
      Counter.iter
        (fun k n ->
          Vtbl.replace t.counts (Value.Int k) n;
          if n > t.max_freq then t.max_freq <- n)
        c;
      t.total <- !total;
      t.key_cache <- Ready c;
      t
  | None ->
      let t = empty () in
      Relation.iter rel (fun row ->
          let v = Tuple.attr row key in
          if not (Value.is_null v) then bump t v 1);
      t

let of_stream stream ~key =
  let t = empty () in
  Stream0.iter
    (fun row ->
      let v = Tuple.attr row key in
      if not (Value.is_null v) then bump t v 1)
    stream;
  t

let merge a b =
  let out = empty () in
  Vtbl.iter (fun v c -> bump out v c) a.counts;
  Vtbl.iter (fun v c -> bump out v c) b.counts;
  out

let of_relation_parallel ?(domains = 1) rel ~key =
  if domains <= 1 then of_relation rel ~key
  else begin
    (* Count each contiguous shard on a pooled worker; the per-shard
       tables merge by addition in shard order, so the result is
       exactly [of_relation]'s table. *)
    let shards = Relation.shards rel ~n:domains in
    let parts =
      Domain_pool.run (Domain_pool.global ()) ~domains (fun k -> of_stream shards.(k) ~key)
    in
    let acc = parts.(0) in
    for k = 1 to domains - 1 do
      Vtbl.iter (fun v c -> bump acc v c) parts.(k).counts
    done;
    acc
  end

let of_assoc pairs =
  let t = empty () in
  List.iter
    (fun (v, c) ->
      if c <= 0 then invalid_arg "Frequency.of_assoc: non-positive frequency";
      if Vtbl.mem t.counts v then invalid_arg "Frequency.of_assoc: duplicate value";
      bump t v c)
    pairs;
  t

let frequency t v = Option.value ~default:0 (Vtbl.find_opt t.counts v)
let total t = t.total
let distinct_count t = Vtbl.length t.counts
let max_frequency t = t.max_freq

let iter t f = Vtbl.iter f t.counts

let fold t ~init ~f =
  let acc = ref init in
  Vtbl.iter (fun v c -> acc := f !acc v c) t.counts;
  !acc

let by_freq_desc (v1, c1) (v2, c2) =
  if c1 <> c2 then Int.compare c2 c1 else Value.compare v1 v2

let to_assoc t =
  let pairs = fold t ~init:[] ~f:(fun acc v c -> (v, c) :: acc) in
  List.sort by_freq_desc pairs

let values_above t ~threshold =
  (* Filter during the fold, then sort only the survivors: for an
     end-biased threshold the survivor set is a tiny fraction of the
     domain, so this avoids sorting the whole table. *)
  let pairs =
    fold t ~init:[] ~f:(fun acc v c -> if c >= threshold then (v, c) :: acc else acc)
  in
  List.sort by_freq_desc pairs

let join_size t1 t2 =
  (* Iterate the smaller table for speed. *)
  let small, large = if distinct_count t1 <= distinct_count t2 then (t1, t2) else (t2, t1) in
  fold small ~init:0 ~f:(fun acc v c -> acc + (c * frequency large v))

let restrict t ~keep =
  let out = empty () in
  iter t (fun v c -> if keep v then bump out v c);
  out

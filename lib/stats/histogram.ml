open Rsj_relation

module Vtbl = Hashtbl.Make (struct
  type t = Value.t

  let equal = Value.equal
  let hash = Value.hash
end)

module End_biased = struct
  module Counter = Rsj_index.Int_index.Counter

  (* Data-plane view of the tracked set, derived lazily: tracked counts
     are >= threshold >= 1, so [Counter.get c k] = 0 unambiguously
     means "not tracked" (low frequency). [Unavailable] marks histograms
     tracking a non-int value. *)
  type key_cache = Stale | Unavailable | Ready of Counter.t
  type t = { threshold : int; tracked : int Vtbl.t; mass : int; mutable key_cache : key_cache }

  let build freq ~threshold =
    let threshold = max threshold 1 in
    let tracked = Vtbl.create 64 in
    let mass = ref 0 in
    Frequency.iter freq (fun v c ->
        if c >= threshold then begin
          Vtbl.replace tracked v c;
          mass := !mass + c
        end);
    { threshold; tracked; mass = !mass; key_cache = Stale }

  let int_tracked t =
    match t.key_cache with
    | Ready c -> Some c
    | Unavailable -> None
    | Stale ->
        let ok = ref true in
        let c = Counter.create ~capacity:(Vtbl.length t.tracked) () in
        Vtbl.iter
          (fun v n ->
            match v with
            | Value.Int x when x <> min_int -> Counter.add c x n
            | _ -> ok := false)
          t.tracked;
        if !ok then begin
          t.key_cache <- Ready c;
          Some c
        end
        else begin
          t.key_cache <- Unavailable;
          None
        end

  let build_fraction freq ~fraction =
    if fraction < 0. || fraction > 1. then
      invalid_arg "End_biased.build_fraction: fraction outside [0,1]";
    let n = Frequency.total freq in
    let threshold = max 1 (int_of_float (ceil (fraction *. float_of_int n))) in
    build freq ~threshold

  let threshold t = t.threshold
  let frequency t v = Vtbl.find_opt t.tracked v
  let is_high t v = Vtbl.mem t.tracked v

  let high_values t =
    let pairs = Vtbl.fold (fun v c acc -> (v, c) :: acc) t.tracked [] in
    List.sort
      (fun (v1, c1) (v2, c2) ->
        if c1 <> c2 then Int.compare c2 c1 else Value.compare v1 v2)
      pairs

  let tracked_count t = Vtbl.length t.tracked
  let tracked_mass t = t.mass
end

module Equi_depth = struct
  type bucket = { lo : Value.t; hi : Value.t; count : int; distinct : int }
  type t = { buckets : bucket array; total : int }

  let build rel ~key ~buckets:nb =
    if nb <= 0 then invalid_arg "Equi_depth.build: buckets <= 0";
    let vals =
      Relation.fold rel ~init:[] ~f:(fun acc row ->
          let v = Tuple.attr row key in
          if Value.is_null v then acc else v :: acc)
      |> Array.of_list
    in
    Array.sort Value.compare vals;
    let n = Array.length vals in
    if n = 0 then { buckets = [||]; total = 0 }
    else begin
      let nb = min nb n in
      let out = ref [] in
      let start = ref 0 in
      for b = 0 to nb - 1 do
        (* Equal-mass cut points; the last bucket absorbs rounding. *)
        let stop = if b = nb - 1 then n else (b + 1) * n / nb in
        if stop > !start then begin
          let distinct = ref 1 in
          for i = !start + 1 to stop - 1 do
            if not (Value.equal vals.(i) vals.(i - 1)) then incr distinct
          done;
          out :=
            { lo = vals.(!start); hi = vals.(stop - 1); count = stop - !start; distinct = !distinct }
            :: !out;
          start := stop
        end
      done;
      { buckets = Array.of_list (List.rev !out); total = n }
    end

  let buckets t = Array.copy t.buckets
  let total t = t.total

  let find_bucket t v =
    let rec go i =
      if i >= Array.length t.buckets then None
      else begin
        let b = t.buckets.(i) in
        if Value.compare v b.lo >= 0 && Value.compare v b.hi <= 0 then Some b else go (i + 1)
      end
    in
    go 0

  let estimate_frequency t v =
    match find_bucket t v with
    | None -> 0.
    | Some b -> float_of_int b.count /. float_of_int b.distinct

  (* Overlap estimate: for each pair of overlapping buckets, assume
     values uniform within buckets and independent, giving
     count1*count2 * overlap_distinct / (distinct1*distinct2) matches
     per common value. This is the standard coarse estimator; it is
     intentionally approximate (validated as such in benches). *)
  let estimate_join_size t1 t2 =
    let overlap b1 b2 =
      let lo = if Value.compare b1.lo b2.lo >= 0 then b1.lo else b2.lo in
      let hi = if Value.compare b1.hi b2.hi <= 0 then b1.hi else b2.hi in
      if Value.compare lo hi > 0 then None else Some (lo, hi)
    in
    let width b =
      (* Only meaningful for integer domains; fall back to distinct. *)
      match (b.lo, b.hi) with
      | Value.Int l, Value.Int h -> float_of_int (h - l + 1)
      | _ -> float_of_int b.distinct
    in
    let acc = ref 0. in
    Array.iter
      (fun b1 ->
        Array.iter
          (fun b2 ->
            match overlap b1 b2 with
            | None -> ()
            | Some (lo, hi) ->
                let ow =
                  match (lo, hi) with
                  | Value.Int l, Value.Int h -> float_of_int (h - l + 1)
                  | _ -> 1.
                in
                let w1 = width b1 and w2 = width b2 in
                let d1 = float_of_int b1.distinct *. (ow /. w1) in
                let d2 = float_of_int b2.distinct *. (ow /. w2) in
                let common = Float.min d1 d2 in
                if common > 0. then begin
                  let f1 = float_of_int b1.count /. float_of_int b1.distinct in
                  let f2 = float_of_int b2.count /. float_of_int b2.distinct in
                  acc := !acc +. (common *. f1 *. f2)
                end)
          t2.buckets)
      t1.buckets;
    !acc
end

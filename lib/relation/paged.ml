type t = {
  relation : Relation.t;
  tuples_per_page : int;
  mutable pages_read : int;
  mutable cached_page : int;  (* -1 = nothing pinned *)
}

let create ?(tuples_per_page = 100) relation =
  if tuples_per_page <= 0 then invalid_arg "Paged.create: tuples_per_page <= 0";
  { relation; tuples_per_page; pages_read = 0; cached_page = -1 }

let relation t = t.relation
let tuples_per_page t = t.tuples_per_page
let cardinality t = Relation.cardinality t.relation

let page_count t =
  (Relation.cardinality t.relation + t.tuples_per_page - 1) / t.tuples_per_page

let page_of_tuple t i = i / t.tuples_per_page

let read_page t p =
  let pages = page_count t in
  if p < 0 || p >= pages then
    invalid_arg (Printf.sprintf "Paged.read_page: page %d out of range [0,%d)" p pages);
  if t.cached_page <> p then begin
    t.pages_read <- t.pages_read + 1;
    t.cached_page <- p
  end;
  let start = p * t.tuples_per_page in
  let stop = min (start + t.tuples_per_page) (Relation.cardinality t.relation) in
  Array.init (stop - start) (fun i -> Relation.get t.relation (start + i))

let fetch t i =
  let n = cardinality t in
  if i < 0 || i >= n then
    invalid_arg (Printf.sprintf "Paged.fetch: tuple %d out of range [0,%d)" i n);
  let page = read_page t (page_of_tuple t i) in
  page.(i mod t.tuples_per_page)

let scan_pages t ~lo ~hi =
  let pages = page_count t in
  if lo < 0 || hi > pages || lo > hi then
    invalid_arg (Printf.sprintf "Paged.scan_pages: [%d,%d) outside [0,%d)" lo hi pages);
  let current = ref [||] in
  let page_idx = ref lo in
  let tuple_idx = ref 0 in
  let rec next () =
    if !tuple_idx < Array.length !current then begin
      let row = !current.(!tuple_idx) in
      incr tuple_idx;
      Some row
    end
    else if !page_idx < hi then begin
      current := read_page t !page_idx;
      incr page_idx;
      tuple_idx := 0;
      next ()
    end
    else None
  in
  Stream0.make ~next ()

let scan t = scan_pages t ~lo:0 ~hi:(page_count t)

let shards t ~n =
  if n <= 0 then invalid_arg "Paged.shards: n <= 0";
  let pages = page_count t in
  Array.init n (fun k -> scan_pages t ~lo:(k * pages / n) ~hi:((k + 1) * pages / n))

let pages_read t = t.pages_read

let reset_io t =
  t.pages_read <- 0;
  t.cached_page <- -1

let needs_quoting s =
  String.exists (function ',' | '"' | '\n' | '\r' -> true | _ -> false) s

let escape_field s =
  if needs_quoting s then begin
    let buf = Buffer.create (String.length s + 2) in
    Buffer.add_char buf '"';
    String.iter
      (fun c ->
        if c = '"' then Buffer.add_string buf "\"\"" else Buffer.add_char buf c)
      s;
    Buffer.add_char buf '"';
    Buffer.contents buf
  end
  else s

let field_of_value = function
  | Value.Null -> ""
  | Value.Int x -> string_of_int x
  | Value.Float x -> Printf.sprintf "%.17g" x
  | Value.Str s -> escape_field (if s = "" then "\"\"" else s) |> fun e ->
      (* empty string must be quoted to distinguish it from NULL *)
      if s = "" then "\"\"" else e

let save ~path rel =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      let schema = Relation.schema rel in
      let header =
        Array.to_list (Schema.columns schema)
        |> List.map (fun (c : Schema.column) -> escape_field c.name)
        |> String.concat ","
      in
      output_string oc header;
      output_char oc '\n';
      Relation.iter rel (fun row ->
          let line =
            Array.to_list row |> List.map field_of_value |> String.concat ","
          in
          output_string oc line;
          output_char oc '\n'))

(* A tiny state machine splits one record into fields. Quoted fields may
   not contain newlines (records are line-oriented in this dialect). *)
let parse_line line =
  let n = String.length line in
  let fields = ref [] in
  let buf = Buffer.create 16 in
  let quoted = ref false in
  (* was_quoted distinguishes "" (empty string) from an empty field (NULL) *)
  let was_quoted = ref false in
  let flush () =
    let raw = Buffer.contents buf in
    let tagged = if !was_quoted then "\"" ^ raw else raw in
    fields := tagged :: !fields;
    Buffer.clear buf;
    was_quoted := false
  in
  let i = ref 0 in
  while !i < n do
    let c = line.[!i] in
    if !quoted then begin
      if c = '"' then
        if !i + 1 < n && line.[!i + 1] = '"' then begin
          Buffer.add_char buf '"';
          incr i
        end
        else quoted := false
      else Buffer.add_char buf c
    end
    else if c = '"' then begin
      quoted := true;
      was_quoted := true
    end
    else if c = ',' then flush ()
    else Buffer.add_char buf c;
    incr i
  done;
  if !quoted then failwith "Csv_io.parse_line: unterminated quote";
  flush ();
  List.rev_map
    (fun f ->
      (* strip the was-quoted tag; callers see the raw content *)
      if String.length f > 0 && f.[0] = '"' then String.sub f 1 (String.length f - 1) else f)
    !fields

(* parse_line returns raw fields but loses the quoted/NULL distinction;
   re-derive it here by looking at the original text per field. *)
let split_with_null_info line =
  let n = String.length line in
  let fields = ref [] in
  let buf = Buffer.create 16 in
  let quoted = ref false in
  let was_quoted = ref false in
  let flush () =
    fields := (Buffer.contents buf, !was_quoted) :: !fields;
    Buffer.clear buf;
    was_quoted := false
  in
  let i = ref 0 in
  while !i < n do
    let c = line.[!i] in
    if !quoted then begin
      if c = '"' then
        if !i + 1 < n && line.[!i + 1] = '"' then begin
          Buffer.add_char buf '"';
          incr i
        end
        else quoted := false
      else Buffer.add_char buf c
    end
    else if c = '"' then begin
      quoted := true;
      was_quoted := true
    end
    else if c = ',' then flush ()
    else Buffer.add_char buf c;
    incr i
  done;
  if !quoted then failwith "Csv_io: unterminated quote";
  flush ();
  List.rev !fields

(* Exception-free int parse for the load hot path: a manual digit loop
   covers the overwhelmingly common [+-]?[0-9]+ shape without the
   Failure-raising round trip inside [int_of_string_opt]'s caml_int_of_string,
   and anything it cannot prove in-range and decimal (overflow, '_'
   separators, 0x/0o/0b prefixes, stray characters) falls back to
   [int_of_string_opt] so accepted spellings are exactly unchanged.
   Accumulates in negative space so min_int parses without wrapping. *)
let parse_int s =
  let n = String.length s in
  if n = 0 then None
  else begin
    let c0 = String.unsafe_get s 0 in
    let neg = c0 = '-' in
    let start = if neg || c0 = '+' then 1 else 0 in
    if n = start then None
    else begin
      let lim = min_int / 10 in
      let acc = ref 0 in
      let i = ref start in
      let fast = ref true in
      while !fast && !i < n do
        let d = Char.code (String.unsafe_get s !i) - Char.code '0' in
        if d < 0 || d > 9 then fast := false
        else if !acc < lim then fast := false
        else begin
          let a = !acc * 10 in
          if a < min_int + d then fast := false else acc := a - d;
          if !fast then incr i
        end
      done;
      if not !fast then int_of_string_opt s
      else if neg then Some !acc
      else if !acc = min_int then int_of_string_opt s
      else Some (- !acc)
    end
  end

let value_of_field ~line_no ~col (raw, was_quoted) ty =
  if raw = "" && not was_quoted then Value.Null
  else
    match ty with
    | Value.T_int -> (
        match parse_int raw with
        | Some x -> Value.Int x
        | None ->
            failwith
              (Printf.sprintf "Csv_io.load: line %d column %d: %S is not an int" line_no col raw))
    | Value.T_float -> (
        match float_of_string_opt raw with
        | Some x -> Value.Float x
        | None ->
            failwith
              (Printf.sprintf "Csv_io.load: line %d column %d: %S is not a float" line_no col raw))
    | Value.T_str -> Value.Str raw

let load ~path schema =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let rel = Relation.create ~name:(Filename.basename path) schema in
      let header = try input_line ic with End_of_file -> failwith "Csv_io.load: empty file" in
      let header_fields = parse_line header in
      let expected =
        Array.to_list (Schema.columns schema) |> List.map (fun (c : Schema.column) -> c.name)
      in
      if header_fields <> expected then
        failwith
          (Printf.sprintf "Csv_io.load: header mismatch: got [%s], expected [%s]"
             (String.concat "; " header_fields)
             (String.concat "; " expected));
      let tys = Array.map (fun (c : Schema.column) -> c.ty) (Schema.columns schema) in
      let line_no = ref 1 in
      (try
         while true do
           let line = input_line ic in
           incr line_no;
           if line <> "" then begin
             let fields = split_with_null_info line in
             if List.length fields <> Array.length tys then
               failwith
                 (Printf.sprintf "Csv_io.load: line %d: %d fields, expected %d" !line_no
                    (List.length fields) (Array.length tys));
             let row =
               List.mapi (fun col f -> value_of_field ~line_no:!line_no ~col f tys.(col)) fields
             in
             Relation.append rel (Array.of_list row)
           end
         done
       with End_of_file -> ());
      rel)

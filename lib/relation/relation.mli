(** Materialized relations: a schema plus a growable row store.

    A materialized relation supports random access by row id — the
    capability Olken-Sample needs on R1 ("sample a tuple t1 ∈ R1
    uniformly at random") and that streamed inputs deliberately lack.
    Building an index or exact statistics requires materialization;
    Case B strategies consume R1 only through {!to_stream}. *)

type t

val create : ?name:string -> ?capacity:int -> Schema.t -> t
(** Fresh empty relation. [capacity] pre-sizes the row store. *)

val name : t -> string
val schema : t -> Schema.t
val cardinality : t -> int
(** Number of rows — the paper's [n]. *)

val uid : t -> int
(** Process-unique identity assigned at creation; never reused. *)

val version : t -> int
(** Mutation counter: bumped on every {!append}/{!append_unchecked}. *)

val fingerprint : t -> int
(** Identifies one immutable snapshot of one relation: combines {!uid}
    and {!version}, so any mutation (and any other relation) yields a
    different fingerprint. The {!Rsj_cache.Structure_cache} keys its
    memoized auxiliary structures on it. *)

val append : t -> Tuple.t -> unit
(** [append t row] validates [row] against the schema and stores it.
    Raises [Invalid_argument] with the validation message on mismatch. *)

val append_unchecked : t -> Tuple.t -> unit
(** Hot-path insert that skips validation (used by generators that
    construct rows from the schema itself). *)

val get : t -> int -> Tuple.t
(** [get t i] is row [i] (0-based). Raises [Invalid_argument] when out of
    range. This is the random-access primitive. *)

val iter : t -> (Tuple.t -> unit) -> unit
val iteri : t -> (int -> Tuple.t -> unit) -> unit
val fold : t -> init:'a -> f:('a -> Tuple.t -> 'a) -> 'a

val of_tuples : ?name:string -> Schema.t -> Tuple.t list -> t
val of_rows : ?name:string -> Schema.t -> Value.t list list -> t

val to_stream : t -> Tuple.t Stream0.t
(** A single-pass cursor over the rows in storage order. The cursor does
    not reveal the relation's cardinality — strategies that need [n] must
    take it as an explicit argument, mirroring the paper's distinction
    between U1 (knows [n]) and U2 (does not). *)

val stream_range : t -> lo:int -> hi:int -> Tuple.t Stream0.t
(** Single-pass cursor over rows [lo, hi) in storage order. Raises
    [Invalid_argument] unless [0 <= lo <= hi <= cardinality]. *)

val shards : t -> n:int -> Tuple.t Stream0.t array
(** [shards t ~n] splits the row range into [n] contiguous,
    near-equal-size sub-streams covering every row exactly once. The
    shards read shared storage and are safe to consume from distinct
    domains as long as the relation is not mutated meanwhile. Raises
    [Invalid_argument] if [n <= 0]. *)

val chunk_count : t -> chunk_size:int -> int
(** Number of fixed-size chunks covering the row range —
    [ceil (cardinality / chunk_size)], 0 for an empty relation. The
    unit of work distribution for the parallel runtime's chunk-queue
    scheduler ({!Rsj_parallel.Chunk_scheduler}). Raises
    [Invalid_argument] if [chunk_size <= 0]. *)

val chunk : t -> chunk_size:int -> int -> Tuple.t Stream0.t
(** [chunk t ~chunk_size i] is the [i]-th fixed-size range
    [\[i·chunk_size, min ((i+1)·chunk_size) cardinality)] as a
    single-pass cursor; the [chunk_count] chunks partition the rows
    exactly. Like {!shards}, chunks read shared storage and may be
    consumed from distinct domains while the relation is not mutated.
    Raises [Invalid_argument] when [i] is outside
    [\[0, chunk_count)]. *)

val to_list : t -> Tuple.t list
val to_array : t -> Tuple.t array
(** Copies; mutating the result does not affect the relation. *)

val random_row : t -> Rsj_util.Prng.t -> Tuple.t
(** Uniform random row; the Olken-Sample access path. Raises
    [Invalid_argument] on an empty relation. *)

val column_values : t -> int -> Value.t array
[@@ocaml.deprecated
  "boxed column copy — hot paths use Column.int_view (the compact data plane's flat int \
   extraction) instead"]
(** All values in one column, in row order, as boxed values.

    @deprecated Hot paths should use {!Column.int_view}: the flat
    [int array] extraction that the sampling inner loops scan without
    allocation. This boxed copy remains only for debug/report code. *)

val pp_sample : ?limit:int -> Format.formatter -> t -> unit
(** Debug printer showing up to [limit] rows (default 10). *)

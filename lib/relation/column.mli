(** Columnar int-key views of a relation — the compact data plane.

    Join-key columns whose every cell is [Value.Int] (or [Null]) can be
    extracted once into a flat [int array]; the sampling inner loops
    then scan unboxed ints and touch [Tuple.t] only to rehydrate
    accepted rows by id through {!Relation.get}. [Null] maps to
    {!null_key}, a sentinel that the int-plane index and counters treat
    as matching nothing — the same join semantics the boxed plane gives
    [Null]. Columns that cannot be represented (a non-int cell, or the
    sentinel itself as data) escape to the boxed path. *)

type mode = Boxed | Int_keys

val mode : unit -> mode
(** The session-wide data-plane selector, initialised from the
    [RSJ_DATAPLANE] environment variable ([boxed] or [int]; default
    [int]). Strategies consult it when deciding whether to take the
    columnar fast path; both planes draw identically from the
    generator, so fixed-seed samples are bit-identical either way. *)

val set_mode : mode -> unit
(** Override the selector (used by the bench harness and the
    boxed-vs-int conformance tests). *)

val mode_name : unit -> string
(** ["boxed"] or ["int"], for reports. *)

val null_key : int
(** The [Null] sentinel ([min_int]). Never a valid data key: a column
    containing it as a genuine value is not int-viewable. *)

val int_view : Relation.t -> col:int -> int array option
(** [int_view t ~col] is the column as a flat key array in row order,
    or [None] when some cell is neither [Int] (≠ {!null_key}) nor
    [Null]. O(n); callers cache the result (strategy environments hold
    it lazily). *)

val key_of : Relation.t -> col:int -> int array
(** Like {!int_view} but raises [Invalid_argument] on escape. *)

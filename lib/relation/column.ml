(* Columnar int-key views — the entry gate of the compact data plane.

   A strategy's inner loop only ever consults the join-key column; the
   rest of the tuple matters exactly once, when an accepted row is
   emitted. Extracting that column into a flat int array up front lets
   the hot loops scan unboxed ints and rehydrate winners by row id via
   Relation.get — the "sample over cheap key columns, join back the
   survivors" split of Joins-on-Samples, applied here to the sampling
   loops themselves.

   Null is mapped to a sentinel key (min_int) that indexes and counters
   treat as "matches nothing", which is exactly the boxed plane's join
   semantics for Null. A column containing a non-int value — or the
   sentinel itself as a genuine data value — cannot be represented, and
   int_view escapes to None; every consumer falls back to the boxed
   path in that case, so the fast path is a pure specialisation. *)

type mode = Boxed | Int_keys

let mode_of_env () =
  match Sys.getenv_opt "RSJ_DATAPLANE" with
  | Some "boxed" -> Boxed
  | Some "int" | None -> Int_keys
  | Some other ->
      invalid_arg (Printf.sprintf "RSJ_DATAPLANE: expected \"boxed\" or \"int\", got %S" other)

let current = ref (mode_of_env ())
let mode () = !current
let set_mode m = current := m
let mode_name () = match !current with Boxed -> "boxed" | Int_keys -> "int"
let null_key = min_int

let int_view t ~col =
  let n = Relation.cardinality t in
  let keys = Array.make n null_key in
  let rec fill i =
    if i >= n then Some keys
    else
      match Tuple.get (Relation.get t i) col with
      | Value.Int x when x <> null_key ->
          keys.(i) <- x;
          fill (i + 1)
      | Value.Null -> fill (i + 1) (* stays null_key *)
      | _ -> None
  in
  if n = 0 then Some keys else fill 0

let key_of t ~col =
  match int_view t ~col with
  | Some keys -> keys
  | None ->
      invalid_arg
        (Printf.sprintf "Column.key_of: column %d of %s is not int-viewable" col
           (Relation.name t))

type t =
  | Null
  | Int of int
  | Float of float
  | Str of string

type ty = T_int | T_float | T_str

let ty_of = function
  | Null -> None
  | Int _ -> Some T_int
  | Float _ -> Some T_float
  | Str _ -> Some T_str

let conforms v ty =
  match (v, ty) with
  | Null, _ -> true
  | Int _, T_int | Float _, T_float | Str _, T_str -> true
  | (Int _ | Float _ | Str _), _ -> false

let equal a b =
  match (a, b) with
  (* Int first: join keys are overwhelmingly ints, and this is the
     comparison every Vtbl probe performs. *)
  | Int x, Int y -> x = y
  | Null, Null -> true
  | Float x, Float y -> Float.equal x y
  | Str x, Str y -> String.equal x y
  | (Null | Int _ | Float _ | Str _), _ -> false

let kind_rank = function Null -> 0 | Int _ -> 1 | Float _ -> 2 | Str _ -> 3

let compare a b =
  match (a, b) with
  | Null, Null -> 0
  | Int x, Int y -> Int.compare x y
  | Float x, Float y -> Float.compare x y
  | Str x, Str y -> String.compare x y
  | Int x, Float y -> Float.compare (float_of_int x) y
  | Float x, Int y -> Float.compare x (float_of_int y)
  | _ -> Int.compare (kind_rank a) (kind_rank b)

let hash = function
  | Null -> 0x9E37
  | Int x ->
      (* Fibonacci-style multiplicative mix, masked non-negative — no
         trip through the generic [Hashtbl.hash] structural walker on
         the hot int-key path. Injective up to the mask, so distinct
         int keys never collide by construction. *)
      (x * 0x2545F4914F6CDD1D) land max_int
  | Float x -> Hashtbl.hash x
  | Str s -> Hashtbl.hash s

let int x = Int x
let float x = Float x
let str s = Str s

let to_int_exn = function
  | Int x -> x
  | v -> invalid_arg (Printf.sprintf "Value.to_int_exn: not an int (%s)"
                        (match v with Null -> "null" | Float _ -> "float" | Str _ -> "string" | Int _ -> assert false))

let to_float_exn = function
  | Float x -> x
  | Int x -> float_of_int x
  | Null -> invalid_arg "Value.to_float_exn: null"
  | Str _ -> invalid_arg "Value.to_float_exn: string"

let to_str_exn = function
  | Str s -> s
  | _ -> invalid_arg "Value.to_str_exn: not a string"

let is_null = function Null -> true | Int _ | Float _ | Str _ -> false

let pp ppf = function
  | Null -> Format.pp_print_string ppf "NULL"
  | Int x -> Format.pp_print_int ppf x
  | Float x -> Format.fprintf ppf "%g" x
  | Str s -> Format.fprintf ppf "%S" s

let to_string v = Format.asprintf "%a" pp v
let ty_to_string = function T_int -> "int" | T_float -> "float" | T_str -> "string"

(** Minimal CSV import/export so examples and the CLI can exchange data
    with other tools.

    The dialect is deliberately simple: comma separator, double-quote
    quoting with doubled quotes inside quoted fields, one header row with
    column names. Values are parsed according to the target schema;
    the literal empty unquoted field denotes NULL. *)

val save : path:string -> Relation.t -> unit
(** Write the relation with a header row. Overwrites [path]. *)

val load : path:string -> Schema.t -> Relation.t
(** Read a CSV produced by {!save} (or compatible). The header row is
    checked against the schema's column names. Raises [Failure] with a
    line-numbered message on malformed input. *)

val parse_line : string -> string list
(** Exposed for tests: split one CSV record into raw fields. *)

val parse_int : string -> int option
(** Exception-free int parse. A manual digit loop accepts the plain
    decimal shape [[+-]?[0-9]+] when it fits in an [int]; everything
    else (overflow, ['_'] separators, radix prefixes, junk) defers to
    [int_of_string_opt], so the accepted language is exactly
    [int_of_string_opt]'s. *)

val escape_field : string -> string
(** Exposed for tests: quote a field if it needs quoting. *)

(** Paged view of a relation: simulated disk blocks.

    The paper notes that Black-Box U1 "can be efficiently extended to
    block-level sampling on disk" and "can be made efficient by reading
    only those records that get into the reservoir, by generating
    random intervals of records to be skipped" (§4.1). This module
    provides the substrate for that claim: a relation chopped into
    fixed-size pages with a fetch counter, so sampling algorithms can
    be compared by {e pages touched} rather than tuples touched.

    The view is read-only and shares the underlying storage. *)

type t

val create : ?tuples_per_page:int -> Relation.t -> t
(** Wrap a relation (default 100 tuples/page; must be positive). *)

val relation : t -> Relation.t
val tuples_per_page : t -> int
val cardinality : t -> int
val page_count : t -> int

val page_of_tuple : t -> int -> int
(** Page holding global tuple index [i]. *)

val read_page : t -> int -> Tuple.t array
(** Fetch page [p] (0-based), counting one page read. The most recently
    fetched page is cached: re-reading it is free, modelling the buffer
    pool's current pin. Raises [Invalid_argument] out of range. *)

val fetch : t -> int -> Tuple.t
(** Fetch one tuple by global index through {!read_page}. *)

val scan : t -> Tuple.t Stream0.t
(** Full sequential scan, page at a time ([page_count] reads). *)

val scan_pages : t -> lo:int -> hi:int -> Tuple.t Stream0.t
(** Sequential scan of pages [lo, hi) only. Raises [Invalid_argument]
    out of range. *)

val shards : t -> n:int -> Tuple.t Stream0.t array
(** [shards t ~n] splits the scan into [n] contiguous page ranges
    covering every page exactly once — block-aligned work units for the
    parallel runtime. Tuple data flows through shared read-only
    storage, so concurrent consumption from distinct domains is safe;
    the {!pages_read} counter and the one-page cache, however, are
    plain mutable fields, so IO accounting is approximate (undercounted
    at worst) when shards run concurrently. Raises [Invalid_argument]
    if [n <= 0]. *)

val pages_read : t -> int
(** Pages fetched since creation or the last {!reset_io}. *)

val reset_io : t -> unit

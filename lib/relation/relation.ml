type t = {
  name : string;
  schema : Schema.t;
  uid : int;  (* process-unique identity, assigned at creation *)
  mutable version : int;  (* bumped on every mutation *)
  mutable rows : Tuple.t array;  (* slots [0, size) are live *)
  mutable size : int;
}

(* Identity counter for fingerprints. Atomic so relations may be
   created from any domain (the parallel builders do). *)
let next_uid = Atomic.make 0

let create ?(name = "<anon>") ?(capacity = 64) schema =
  let capacity = max capacity 1 in
  {
    name;
    schema;
    uid = Atomic.fetch_and_add next_uid 1;
    version = 0;
    rows = Array.make capacity [||];
    size = 0;
  }

let name t = t.name
let schema t = t.schema
let cardinality t = t.size

let ensure_capacity t =
  if t.size >= Array.length t.rows then begin
    let fresh = Array.make (2 * Array.length t.rows) [||] in
    Array.blit t.rows 0 fresh 0 t.size;
    t.rows <- fresh
  end

let append_unchecked t row =
  ensure_capacity t;
  t.rows.(t.size) <- row;
  t.size <- t.size + 1;
  t.version <- t.version + 1

let uid t = t.uid
let version t = t.version

(* A fingerprint identifies one immutable snapshot of one relation:
   any append changes it, and no two relations ever share one. Derived
   caches (Structure_cache) key on it so stale entries can never be
   served after a mutation. *)
let fingerprint t = (t.uid * 0x10001) lxor t.version

let append t row =
  match Schema.validate t.schema row with
  | Ok () -> append_unchecked t row
  | Error msg -> invalid_arg (Printf.sprintf "Relation.append(%s): %s" t.name msg)

let get t i =
  if i < 0 || i >= t.size then
    invalid_arg (Printf.sprintf "Relation.get(%s): row %d out of range [0,%d)" t.name i t.size);
  t.rows.(i)

let iter t f =
  for i = 0 to t.size - 1 do
    f t.rows.(i)
  done

let iteri t f =
  for i = 0 to t.size - 1 do
    f i t.rows.(i)
  done

let fold t ~init ~f =
  let acc = ref init in
  iter t (fun row -> acc := f !acc row);
  !acc

let of_tuples ?name schema tuples =
  let t = create ?name ~capacity:(max 1 (List.length tuples)) schema in
  List.iter (append t) tuples;
  t

let of_rows ?name schema rows = of_tuples ?name schema (List.map Array.of_list rows)

let to_stream t =
  let i = ref 0 in
  Stream0.make
    ~next:(fun () ->
      if !i >= t.size then None
      else begin
        let row = t.rows.(!i) in
        incr i;
        Some row
      end)
    ()

let stream_range t ~lo ~hi =
  if lo < 0 || hi > t.size || lo > hi then
    invalid_arg
      (Printf.sprintf "Relation.stream_range(%s): [%d,%d) outside [0,%d)" t.name lo hi t.size);
  let i = ref lo in
  Stream0.make
    ~next:(fun () ->
      if !i >= hi then None
      else begin
        let row = t.rows.(!i) in
        incr i;
        Some row
      end)
    ()

let shards t ~n =
  if n <= 0 then invalid_arg (Printf.sprintf "Relation.shards(%s): n <= 0" t.name);
  Array.init n (fun k ->
      stream_range t ~lo:(k * t.size / n) ~hi:((k + 1) * t.size / n))

let chunk_count t ~chunk_size =
  if chunk_size <= 0 then
    invalid_arg (Printf.sprintf "Relation.chunk_count(%s): chunk_size <= 0" t.name);
  (t.size + chunk_size - 1) / chunk_size

let chunk t ~chunk_size i =
  let n = chunk_count t ~chunk_size in
  if i < 0 || i >= n then
    invalid_arg (Printf.sprintf "Relation.chunk(%s): chunk %d outside [0,%d)" t.name i n);
  stream_range t ~lo:(i * chunk_size) ~hi:(min ((i + 1) * chunk_size) t.size)

let to_list t = List.init t.size (fun i -> t.rows.(i))
let to_array t = Array.init t.size (fun i -> t.rows.(i))

let random_row t rng =
  if t.size = 0 then invalid_arg (Printf.sprintf "Relation.random_row(%s): empty" t.name);
  t.rows.(Rsj_util.Prng.int rng t.size)

let column_values t col = Array.init t.size (fun i -> Tuple.get t.rows.(i) col)

let pp_sample ?(limit = 10) ppf t =
  Format.fprintf ppf "@[<v>%s %a (%d rows)" t.name Schema.pp t.schema t.size;
  let shown = min limit t.size in
  for i = 0 to shown - 1 do
    Format.fprintf ppf "@,  %a" Tuple.pp t.rows.(i)
  done;
  if t.size > shown then Format.fprintf ppf "@,  ... (%d more)" (t.size - shown);
  Format.fprintf ppf "@]"

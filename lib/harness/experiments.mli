(** The paper's experimental evaluation (§8), re-run on the OCaml
    substrate.

    Every figure/table of the paper has one function here that sweeps
    the same parameters and prints the same series. Because absolute
    times do not transfer across substrates, each figure is reported
    twice per strategy: wall-clock running time as % of Naive-Sample
    (the paper's metric) and work-model cost as % of Naive-Sample
    (scale-independent; see {!Rsj_exec.Metrics.total_work}). Scale is
    read from {!Rsj_workload.Zipf_tables.Scale.from_env}. *)

type config = {
  scale : Rsj_workload.Zipf_tables.Scale.t;
  repetitions : int;  (** Median-of-k wall-clock timing (default 3, env RSJ_REPS). *)
}

val config_from_env : unit -> config

(** One measurement at one sweep point. [label] is the series name — a
    strategy for Figures A–D, a (strategy, outer-skew) pair for Figure
    E, a Z-pair for Figure F. *)
type cell = {
  label : string;
  runtime_pct : float;  (** Wall-clock relative to Naive-Sample, in %. *)
  work_pct : float;  (** total_work relative to Naive-Sample, in %. *)
  sample_size : int;
}

type sweep_point = { x_label : string; naive_seconds : float; naive_work : int; cells : cell list }

type figure = {
  id : string;  (** "A" ... "F". *)
  caption : string;
  x_axis : string;
  points : sweep_point list;
}

val table1 : unit -> Report.t
(** The paper's Table 1 (information requirements), extended with the
    §6.4 variants. *)

val figure_a : config -> figure
(** Effect of sampling fraction, z = (0, 0); fractions 100 tuples,
    sqrt n, 1%, 5%, 10%; Olken / Stream / Frequency-Partition vs
    Naive. Index on the inner relation; FPS threshold 5%. *)

val figure_b : config -> figure
(** Same sweep at z = (2, 3). *)

val figure_c : config -> figure
(** Effect of inner skew (z2 in 0..3), outer z = 0, fraction 1%. *)

val figure_d : config -> figure
(** Effect of inner skew, outer z = 3, fraction 1%. *)

val figure_e : config -> figure
(** Frequency-Partition-Sample with no index on the inner relation,
    varying inner skew, for outer z = 0 and z = 3 (the two series are
    rendered as two sweep points groups; FPS is the only strategy). *)

val figure_f : config -> figure
(** Effect of the statistics threshold k in {0.1, 0.5, 1, 2, 5, 10,
    20}% on Frequency-Partition-Sample, for z = (2,3), (1,2), (1,1). *)

val render_figure : Format.formatter -> figure -> unit
(** Two tables per figure: runtime % and work %. *)

val validate_alphas : config -> Report.t
(** V1: predicted intermediate-join fractions (Theorems 7, 8, 9)
    against measured join_output_tuples / |J| for Group-Sample,
    Frequency-Partition-Sample and Index-Sample across skews. *)

val validate_uniformity : ?trials:int -> unit -> Report.t
(** V2: chi-square p-value of every strategy's sample against the
    uniform distribution over a small fully-enumerated join. *)

val negative_demo : unit -> Report.t
(** V3: Theorem 10 Monte-Carlo (empty sample-join rate on Example 1 vs
    the analytic prediction) and Theorem 12 feasibility rows. *)

val disk_model_comparison : config -> Report.t
(** V4: the Figure A sweep re-scored under {!Rsj_exec.Io_model}'s
    disk cost model (random pages 4x sequential). Under disk costs
    Olken-Sample's random accesses dominate and the paper's ordering
    (Stream beats Olken at larger fractions) emerges from the same
    runs whose in-memory wall-clock favours Olken. *)

val all_strategies_comparison : config -> Report.t
(** V5: every implemented strategy (including the §6.4 variants the
    paper describes but does not plot) on one representative skewed
    cell (Z = (1,2), fraction 1%): runtime %, work %, and the
    dominant counter of each. *)

val parallel_speedup : ?domain_counts:int list -> config -> Report.t
(** V6: wall-clock speedup of the {!Rsj_parallel} runtime over the
    sequential runner for Stream- and Group-Sample, plus the parallel
    index/statistics build, at each requested domain count (default
    [\[1; 2; 4\]]). Note the measurement only shows a speedup on a
    machine with that many cores; the table reports the available
    core count alongside. *)

val run_all : Format.formatter -> unit
(** Everything above, in paper order — the payload of
    [dune exec bench/main.exe]. *)

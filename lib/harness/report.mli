(** Plain-text table rendering for experiment output.

    The benches print the same rows/series the paper's figures plot;
    this module renders them as aligned ASCII tables. *)

type t = {
  title : string;
  header : string list;  (** Column names; first column is the row label. *)
  rows : string list list;  (** Each row must match the header length. *)
}

val render : Format.formatter -> t -> unit
(** Box-drawn table with a title line. Raises [Invalid_argument] when a
    row's arity disagrees with the header. *)

val print : t -> unit
(** [render] to stdout. *)

val render_csv : Format.formatter -> t -> unit
(** Machine-readable rendering: one RFC-4180-style CSV line per row
    (header first, fields quoted when they contain commas, quotes or
    newlines; the title is not emitted). Raises [Invalid_argument] on a
    row-arity mismatch, like {!render}. *)

val to_csv : t -> string
(** {!render_csv} into a string. *)

val pct : float -> string
(** Format a percentage: ["63.1%"]; ["-"] for NaN. *)

val float_cell : float -> string
(** Compact numeric cell: 3 significant-ish decimals, ["-"] for NaN. *)

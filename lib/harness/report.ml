type t = { title : string; header : string list; rows : string list list }

let pct x = if Float.is_nan x then "-" else Printf.sprintf "%.1f%%" x

let float_cell x =
  if Float.is_nan x then "-"
  else if Float.abs x >= 1000. then Printf.sprintf "%.0f" x
  else Printf.sprintf "%.3g" x

let render ppf t =
  let ncols = List.length t.header in
  List.iter
    (fun row ->
      if List.length row <> ncols then
        invalid_arg
          (Printf.sprintf "Report.render(%s): row arity %d, header %d" t.title
             (List.length row) ncols))
    t.rows;
  let widths = Array.of_list (List.map String.length t.header) in
  List.iter
    (List.iteri (fun i cell -> if String.length cell > widths.(i) then widths.(i) <- String.length cell))
    t.rows;
  let sep =
    "+" ^ String.concat "+" (Array.to_list (Array.map (fun w -> String.make (w + 2) '-') widths)) ^ "+"
  in
  let render_row cells =
    let padded =
      List.mapi (fun i c -> Printf.sprintf " %-*s " widths.(i) c) cells
    in
    "|" ^ String.concat "|" padded ^ "|"
  in
  Format.fprintf ppf "@.== %s ==@.%s@.%s@.%s@." t.title sep (render_row t.header) sep;
  List.iter (fun row -> Format.fprintf ppf "%s@." (render_row row)) t.rows;
  Format.fprintf ppf "%s@." sep

let print t = render Format.std_formatter t

let csv_escape s =
  if String.exists (fun c -> c = ',' || c = '"' || c = '\n') s then
    "\"" ^ String.concat "\"\"" (String.split_on_char '"' s) ^ "\""
  else s

let render_csv ppf t =
  let ncols = List.length t.header in
  List.iter
    (fun row ->
      if List.length row <> ncols then
        invalid_arg
          (Printf.sprintf "Report.render_csv(%s): row arity %d, header %d" t.title
             (List.length row) ncols))
    t.rows;
  let line cells = String.concat "," (List.map csv_escape cells) in
  Format.fprintf ppf "%s@." (line t.header);
  List.iter (fun row -> Format.fprintf ppf "%s@." (line row)) t.rows

let to_csv t = Format.asprintf "%a" render_csv t

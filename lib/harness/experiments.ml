open Rsj_core
module Zipf_tables = Rsj_workload.Zipf_tables
module Metrics = Rsj_exec.Metrics
module Frequency = Rsj_stats.Frequency
module Join_size = Rsj_stats.Join_size

type config = { scale : Zipf_tables.Scale.t; repetitions : int }

let config_from_env () =
  let repetitions =
    match Sys.getenv_opt "RSJ_REPS" with
    | Some s -> ( match int_of_string_opt s with Some v when v > 0 -> v | _ -> 1)
    | None -> 1
  in
  { scale = Zipf_tables.Scale.from_env (); repetitions }

type cell = { label : string; runtime_pct : float; work_pct : float; sample_size : int }
type sweep_point = { x_label : string; naive_seconds : float; naive_work : int; cells : cell list }
type figure = { id : string; caption : string; x_axis : string; points : sweep_point list }

(* ------------------------------------------------------------------ *)
(* Measurement plumbing                                                *)

(* Median wall-clock over k runs plus the work counters of the last
   run (work is essentially deterministic across runs). *)
let measure ~reps env strategy ~r =
  let times = ref [] in
  let last = ref None in
  for _ = 1 to max 1 reps do
    let res = Strategy.run env strategy ~r in
    times := res.Strategy.elapsed_seconds :: !times;
    last := Some res
  done;
  let med = Rsj_util.Stats_math.median (Array.of_list !times) in
  match !last with
  | Some res -> (med, Metrics.total_work res.Strategy.metrics, Array.length res.Strategy.sample)
  | None -> assert false

type fraction = Abs of int | Sqrt | Pct of float

let fraction_label = function
  | Abs k -> Printf.sprintf "%d tuples" k
  | Sqrt -> "sqrt(n)"
  | Pct p -> Printf.sprintf "%g%%" p

let resolve_r fraction ~n =
  match fraction with
  | Abs k -> min k (max n 1)
  | Sqrt -> max 1 (int_of_float (sqrt (float_of_int n)))
  | Pct p -> max 1 (int_of_float (float_of_int n *. p /. 100.))

let paper_fractions = [ Abs 100; Sqrt; Pct 1.; Pct 5.; Pct 10. ]

let make_env ?(histogram_fraction = 0.05) (cfg : config) ~z1 ~z2 () =
  let s = cfg.scale in
  let pair = Zipf_tables.make_pair ~seed:s.seed ~n1:s.n1 ~n2:s.n2 ~z1 ~z2 ~domain:s.domain () in
  Strategy.make_env ~seed:s.seed ~histogram_fraction ~left:pair.outer ~right:pair.inner
    ~left_key:Zipf_tables.col2 ~right_key:Zipf_tables.col2 ()

(* One sweep point: run Naive for the baseline, then each strategy. *)
let sweep_point ~reps env ~x_label ~r strategies =
  let naive_seconds, naive_work, _ = measure ~reps env Strategy.Naive ~r in
  let cells =
    List.map
      (fun s ->
        let seconds, work, sample_size = measure ~reps env s ~r in
        {
          label = Strategy.name s;
          runtime_pct = 100. *. seconds /. Float.max naive_seconds 1e-9;
          work_pct = 100. *. float_of_int work /. float_of_int (max naive_work 1);
          sample_size;
        })
      strategies
  in
  { x_label; naive_seconds; naive_work; cells }

let figure_strategies = [ Strategy.Olken; Strategy.Stream; Strategy.Frequency_partition ]

let fraction_figure cfg ~id ~z1 ~z2 =
  let env = make_env cfg ~z1 ~z2 () in
  let n = Strategy.env_join_size env in
  let points =
    List.map
      (fun frac ->
        let r = resolve_r frac ~n in
        sweep_point ~reps:cfg.repetitions env ~x_label:(fraction_label frac) ~r figure_strategies)
      paper_fractions
  in
  {
    id;
    caption =
      Printf.sprintf "Effect of sampling fraction on performance, Z = (%g, %g), |J| = %d" z1 z2 n;
    x_axis = "sampling fraction";
    points;
  }

let figure_a cfg = fraction_figure cfg ~id:"A" ~z1:0. ~z2:0.
let figure_b cfg = fraction_figure cfg ~id:"B" ~z1:2. ~z2:3.

let skew_figure cfg ~id ~z1 =
  let points =
    List.map
      (fun z2 ->
        let env = make_env cfg ~z1 ~z2 () in
        let n = Strategy.env_join_size env in
        let r = resolve_r (Pct 1.) ~n in
        sweep_point ~reps:cfg.repetitions env
          ~x_label:(Printf.sprintf "z2=%g" z2)
          ~r figure_strategies)
      [ 0.; 1.; 2.; 3. ]
  in
  {
    id;
    caption =
      Printf.sprintf
        "Effect of skew (index on inner relation), outer z = %g, sampling fraction = 1%%" z1;
    x_axis = "inner relation skew z2";
    points;
  }

let figure_c cfg = skew_figure cfg ~id:"C" ~z1:0.
let figure_d cfg = skew_figure cfg ~id:"D" ~z1:3.

let figure_e cfg =
  let points =
    List.concat_map
      (fun z1 ->
        List.map
          (fun z2 ->
            let env = make_env cfg ~z1 ~z2 () in
            let n = Strategy.env_join_size env in
            let r = resolve_r (Pct 1.) ~n in
            let naive_seconds, naive_work, _ = measure ~reps:cfg.repetitions env Strategy.Naive ~r in
            let seconds, work, sample_size =
              measure ~reps:cfg.repetitions env Strategy.Frequency_partition ~r
            in
            {
              x_label = Printf.sprintf "z2=%g" z2;
              naive_seconds;
              naive_work;
              cells =
                [
                  {
                    label = Printf.sprintf "FPS (outer z=%g)" z1;
                    runtime_pct = 100. *. seconds /. Float.max naive_seconds 1e-9;
                    work_pct = 100. *. float_of_int work /. float_of_int (max naive_work 1);
                    sample_size;
                  };
                ];
            })
          [ 0.; 1.; 2.; 3. ])
      [ 0.; 3. ]
  in
  {
    id = "E";
    caption =
      "Frequency-Partition-Sample with no index on the inner relation, varying inner skew, \
       fraction 1%";
    x_axis = "inner relation skew z2";
    points;
  }

let figure_f cfg =
  let thresholds = [ 0.1; 0.5; 1.; 2.; 5.; 10.; 20. ] in
  let z_pairs = [ (2., 3.); (1., 2.); (1., 1.) ] in
  (* Naive does not depend on the threshold: measure it once per pair. *)
  let baselines =
    List.map
      (fun (z1, z2) ->
        let env = make_env cfg ~z1 ~z2 () in
        let n = Strategy.env_join_size env in
        let r = resolve_r (Pct 1.) ~n in
        let naive_seconds, naive_work, _ = measure ~reps:cfg.repetitions env Strategy.Naive ~r in
        ((z1, z2), (naive_seconds, naive_work, r)))
      z_pairs
  in
  let points =
    List.map
      (fun k ->
        let cells =
          List.map
            (fun (z1, z2) ->
              let naive_seconds, naive_work, r = List.assoc (z1, z2) baselines in
              let env = make_env ~histogram_fraction:(k /. 100.) cfg ~z1 ~z2 () in
              let seconds, work, sample_size =
                measure ~reps:cfg.repetitions env Strategy.Frequency_partition ~r
              in
              {
                label = Printf.sprintf "Z=(%g,%g)" z1 z2;
                runtime_pct = 100. *. seconds /. Float.max naive_seconds 1e-9;
                work_pct = 100. *. float_of_int work /. float_of_int (max naive_work 1);
                sample_size;
              })
            z_pairs
        in
        let naive_seconds, naive_work, _ = snd (List.hd baselines) in
        { x_label = Printf.sprintf "%g%%" k; naive_seconds; naive_work; cells })
      thresholds
  in
  {
    id = "F";
    caption =
      "Effect of the statistics threshold on Frequency-Partition-Sample, fraction 1%";
    x_axis = "statistics threshold";
    points;
  }

(* ------------------------------------------------------------------ *)
(* Rendering                                                           *)

let column_labels figure =
  let seen = Hashtbl.create 8 in
  List.concat_map
    (fun p ->
      List.filter_map
        (fun c ->
          if Hashtbl.mem seen c.label then None
          else begin
            Hashtbl.replace seen c.label ();
            Some c.label
          end)
        p.cells)
    figure.points

let figure_table figure ~select ~metric_name =
  let labels = column_labels figure in
  let rows =
    List.map
      (fun p ->
        p.x_label
        :: List.map
             (fun l ->
               match List.find_opt (fun c -> c.label = l) p.cells with
               | Some c -> Report.pct (select c)
               | None -> "-")
             labels)
      figure.points
  in
  {
    Report.title = Printf.sprintf "Figure %s (%s): %s" figure.id metric_name figure.caption;
    header = figure.x_axis :: labels;
    rows;
  }

let render_figure ppf figure =
  Report.render ppf (figure_table figure ~select:(fun c -> c.runtime_pct) ~metric_name:"running time vs Naive");
  Report.render ppf (figure_table figure ~select:(fun c -> c.work_pct) ~metric_name:"work model vs Naive")

let table1 () =
  {
    Report.title = "Table 1: information about R1 and R2 required by each strategy";
    header = [ "Sampling Strategy"; "R1 Info."; "R2 Info." ];
    rows = List.map (fun (a, b, c) -> [ a; b; c ]) (Strategy.table1 ());
  }

(* ------------------------------------------------------------------ *)
(* Validations                                                         *)

let validate_alphas cfg =
  let rows = ref [] in
  List.iter
    (fun (z1, z2) ->
      let env = make_env cfg ~z1 ~z2 () in
      let n = Strategy.env_join_size env in
      let r = max 1 (n / 100) in
      let m1 = Frequency.of_relation (Strategy.env_left env) ~key:Zipf_tables.col2 in
      let m2 = Strategy.env_right_stats env in
      let histogram = Strategy.env_histogram env in
      let is_high v = Rsj_stats.Histogram.End_biased.is_high histogram v in
      let measured strategy =
        let runs = 5 in
        let acc = ref 0 in
        for _ = 1 to runs do
          let res = Strategy.run env strategy ~r in
          acc := !acc + res.Strategy.metrics.Metrics.join_output_tuples
        done;
        float_of_int !acc /. float_of_int (runs * max n 1)
      in
      let add name predicted strategy =
        rows :=
          [
            Printf.sprintf "Z=(%g,%g)" z1 z2;
            name;
            string_of_int r;
            Report.float_cell predicted;
            Report.float_cell (measured strategy);
          ]
          :: !rows
      in
      add "Group-Sample (Thm 7)" (Join_size.alpha_group_sample ~m1 ~m2 ~r) Strategy.Group;
      add "Freq-Partition (Thm 8)"
        (Join_size.alpha_frequency_partition ~m1 ~m2 ~is_high ~r)
        Strategy.Frequency_partition;
      add "Index-Sample (Thm 9)"
        (Join_size.alpha_index_sample ~m1 ~m2 ~is_high ~r)
        Strategy.Index_sample)
    [ (1., 1.); (1., 2.); (2., 3.) ];
  {
    Report.title =
      "V1: predicted vs measured intermediate-join fraction alpha (r = 1% of |J|)";
    header = [ "Z"; "strategy"; "r"; "alpha predicted"; "alpha measured" ];
    rows = List.rev !rows;
  }

let validate_uniformity ?(trials = 150) () =
  let pair = Zipf_tables.make_pair ~seed:0x11 ~n1:40 ~n2:80 ~z1:1. ~z2:2. ~domain:6 () in
  let env =
    Strategy.make_env ~seed:0x11 ~left:pair.outer ~right:pair.inner ~left_key:Zipf_tables.col2
      ~right_key:Zipf_tables.col2 ()
  in
  let universe =
    Array.of_list
      (Rsj_exec.Plan.collect
         (Rsj_exec.Plan.Join
            {
              Rsj_exec.Plan.algorithm = Rsj_exec.Plan.Hash;
              left = Rsj_exec.Plan.Scan (Strategy.env_left env);
              right = Rsj_exec.Plan.Scan (Strategy.env_right env);
              left_key = Zipf_tables.col2;
              right_key = Zipf_tables.col2;
            }))
  in
  let rows =
    List.map
      (fun s ->
        let report =
          Negative.uniformity_check ~trials ~universe ~draw:(fun () ->
              (Strategy.run env s ~r:20).Strategy.sample)
        in
        [
          Strategy.name s;
          string_of_int report.Negative.cells;
          string_of_int report.Negative.draws;
          Printf.sprintf "%.4f" report.Negative.chi_square.Rsj_util.Stats_math.p_value;
          (if report.Negative.chi_square.Rsj_util.Stats_math.p_value > 0.001 then "PASS" else "FAIL");
        ])
      Strategy.all
  in
  {
    Report.title = "V2: chi-square uniformity of every strategy over an enumerated join";
    header = [ "strategy"; "cells"; "draws"; "p-value"; "verdict" ];
    rows;
  }

let negative_demo () =
  let rng = Rsj_util.Prng.create ~seed:0xD0 () in
  let trials = 300 in
  let empirical_rate ~f1 ~f2 =
    let empty = ref 0 in
    for _ = 1 to trials do
      if Negative.oblivious_join_trial rng ~k:50 ~f1 ~f2 = 0 then incr empty
    done;
    float_of_int !empty /. float_of_int trials
  in
  let rows_thm10 =
    List.map
      (fun (f1, f2) ->
        [
          Printf.sprintf "Thm 10 demo: f1=%g f2=%g" f1 f2;
          Report.pct (100. *. Negative.oblivious_join_empty_prob ~f1 ~f2);
          Report.pct (100. *. empirical_rate ~f1 ~f2);
        ])
      [ (0.01, 0.01); (0.05, 0.05); (0.2, 0.2) ]
  in
  let rows_thm12 =
    List.map
      (fun (f, f1, f2) ->
        [
          Printf.sprintf "Thm 12: f=%g f1=%g f2=%g" f f1 f2;
          (if Negative.thm12_feasible ~f ~f1 ~f2 then "feasible" else "infeasible");
          Printf.sprintf "min symmetric f1=f2: %.3f" (Negative.min_symmetric_fraction ~f);
        ])
      [ (0.01, 0.1, 0.1); (0.01, 0.05, 0.1); (0.04, 0.5, 0.1) ]
  in
  {
    Report.title =
      "V3: negative results (Example 1 / Theorem 10 empty-join rate; Theorem 12 bounds)";
    header = [ "case"; "predicted"; "measured / note" ];
    rows = rows_thm10 @ rows_thm12;
  }

let disk_model_comparison cfg =
  let env = make_env cfg ~z1:0. ~z2:0. () in
  let n = Strategy.env_join_size env in
  let model = Rsj_exec.Io_model.default_disk in
  let rows =
    List.map
      (fun frac ->
        let r = resolve_r frac ~n in
        let baseline = (Strategy.run env Strategy.Naive ~r).Strategy.metrics in
        let cells =
          List.map
            (fun s ->
              let m = (Strategy.run env s ~r).Strategy.metrics in
              Report.pct (Rsj_exec.Io_model.relative_pct model ~baseline m))
            figure_strategies
        in
        fraction_label frac :: cells)
      paper_fractions
  in
  {
    Report.title =
      "V4: Figure A sweep under the disk cost model (random page = 4x sequential page)";
    header = "sampling fraction" :: List.map Strategy.name figure_strategies;
    rows;
  }

let all_strategies_comparison cfg =
  let env = make_env cfg ~z1:1. ~z2:2. () in
  let n = Strategy.env_join_size env in
  let r = resolve_r (Pct 1.) ~n in
  let naive = Strategy.run env Strategy.Naive ~r in
  let naive_seconds = naive.Strategy.elapsed_seconds in
  let naive_work = Metrics.total_work naive.Strategy.metrics in
  let rows =
    List.map
      (fun s ->
        let res = Strategy.run env s ~r in
        let m = res.Strategy.metrics in
        [
          Strategy.name s;
          Report.pct (100. *. res.Strategy.elapsed_seconds /. Float.max naive_seconds 1e-9);
          Report.pct (100. *. float_of_int (Metrics.total_work m) /. float_of_int (max naive_work 1));
          string_of_int m.Metrics.join_output_tuples;
          string_of_int (m.Metrics.index_probes + m.Metrics.random_accesses);
          string_of_int m.Metrics.rejected_samples;
        ])
      Strategy.all
  in
  {
    Report.title =
      Printf.sprintf
        "V5: all strategies on one cell (Z=(1,2), r = 1%% of |J| = %d, vs Naive)" n;
    header =
      [ "strategy"; "runtime"; "work"; "join tuples"; "probes+random"; "rejections" ];
    rows;
  }

let parallel_speedup ?(domain_counts = [ 1; 2; 4 ]) cfg =
  let env = make_env cfg ~z1:0. ~z2:0. () in
  let n = Strategy.env_join_size env in
  let r = resolve_r (Pct 1.) ~n in
  let median_time strategy domains =
    let times =
      Array.init (max 1 cfg.repetitions) (fun _ ->
          (Rsj_parallel.run env strategy ~r ~domains).Strategy.elapsed_seconds)
    in
    Rsj_util.Stats_math.median times
  in
  let strategy_rows strategy =
    let base = median_time strategy 1 in
    List.map
      (fun d ->
        let t = median_time strategy d in
        [
          Printf.sprintf "%s" (Strategy.name strategy);
          string_of_int d;
          Printf.sprintf "%.4fs" t;
          Printf.sprintf "%.2fx" (base /. Float.max t 1e-9);
        ])
      domain_counts
  in
  let right = Strategy.env_right env in
  let build_base = ref nan in
  let build_rows =
    List.map
      (fun d ->
        let t0 = Rsj_obs.Clock.now_s () in
        ignore (Rsj_index.Hash_index.build_parallel right ~key:Zipf_tables.col2 ~domains:d);
        ignore (Frequency.of_relation_parallel ~domains:d right ~key:Zipf_tables.col2);
        let t = Rsj_obs.Clock.now_s () -. t0 in
        if d = 1 then build_base := t;
        [
          "index+stats build";
          string_of_int d;
          Printf.sprintf "%.4fs" t;
          Printf.sprintf "%.2fx" (!build_base /. Float.max t 1e-9);
        ])
      domain_counts
  in
  {
    Report.title =
      Printf.sprintf
        "V6: parallel runtime speedup (Z=(0,0), r = 1%% of |J| = %d, %d cores available)" n
        (Domain.recommended_domain_count ());
    header = [ "workload"; "domains"; "time"; "speedup" ];
    rows = List.concat_map strategy_rows [ Strategy.Stream; Strategy.Group ] @ build_rows;
  }

let run_all ppf =
  let cfg = config_from_env () in
  Format.fprintf ppf "Random Sampling over Joins — experiment harness@.";
  Format.fprintf ppf "scale: %a, repetitions: %d@."
    Zipf_tables.Scale.pp cfg.scale cfg.repetitions;
  Report.render ppf (table1 ());
  List.iter
    (fun mk -> render_figure ppf (mk cfg))
    [ figure_a; figure_b; figure_c; figure_d; figure_e; figure_f ];
  Report.render ppf (validate_alphas cfg);
  Report.render ppf (validate_uniformity ());
  Report.render ppf (negative_demo ());
  Report.render ppf (disk_model_comparison cfg);
  Report.render ppf (all_strategies_comparison cfg);
  Report.render ppf (parallel_speedup cfg)

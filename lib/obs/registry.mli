(** Named counters, gauges and log-bucketed histograms with Prometheus
    and JSON exporters.

    Handle creation is memoized under a mutex; the hot operations
    ({!incr}, {!add}, {!set_gauge}, {!observe}) are lock-free atomics,
    so metrics may be bumped from any domain concurrently. A metric is
    keyed by (name, sorted labels); help text and type are per-name
    (the Prometheus family model), and re-registering a name with a
    different type raises [Invalid_argument]. *)

type labels = (string * string) list
type counter
type gauge
type histogram

val counter : ?help:string -> ?labels:labels -> string -> counter
(** Get-or-create. The same (name, labels) always returns the same
    cell. *)

val incr : counter -> unit
val add : counter -> int -> unit
val value : counter -> int

val gauge : ?help:string -> ?labels:labels -> string -> gauge
val set_gauge : gauge -> float -> unit
val gauge_value : gauge -> float

val default_buckets : float array
(** The shared exponential ladder: 30 upper bounds, powers of two from
    1 µs (1e-6) to ~537 s — sized for pool wake latencies up through
    whole-strategy runs, in seconds. *)

val bucket_index : ?buckets:float array -> float -> int
(** Index of the bucket whose upper bound first reaches [v]
    ([v <= bound]); [Array.length buckets] — the +Inf slot — when [v]
    exceeds every bound. *)

val histogram : ?help:string -> ?labels:labels -> ?buckets:float array -> string -> histogram
val observe : histogram -> float -> unit
val observed_count : histogram -> int
val observed_sum : histogram -> float

val quantile : histogram -> float -> float
(** Upper bound of the bucket where the cumulative count crosses
    [q × count] — a factor-of-2 estimate by construction. [nan] when
    nothing was observed. *)

val reset : unit -> unit
(** Zero every registered metric (registrations survive). Test hook;
    note it also zeroes the always-on pool counters. *)

val to_prometheus : ?only:(string -> bool) -> unit -> string
(** Prometheus text exposition: [# HELP]/[# TYPE] per family, then one
    line per series; histograms as cumulative [_bucket{le=...}] plus
    [_sum]/[_count]. [only] filters family names. *)

val to_json : ?only:(string -> bool) -> unit -> Json.t
(** Same data as JSON, with per-histogram p50/p99 included. *)

val absorb_assoc : ?prefix:string -> (string * int) list -> unit
(** Add each [(name, v)] into the counter [prefix ^ name] — the bridge
    that folds a {!Rsj_exec.Metrics} record ([Metrics.to_assoc]) into
    the registry after a run. *)

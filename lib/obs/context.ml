(* Ambient request context: a per-domain (Domain.DLS) slot holding the
   id of the request currently being served, if any. The server mints
   an id per request and wraps execution in [with_request]; every
   Trace span recorded underneath then carries the id automatically
   (Trace consults [current] at record time), as does the request log.

   Like the trace rings, the slot is domain-local: spans recorded by
   pool worker domains do not see the caller's context (documented in
   DESIGN.md §14). The serve loop runs requests on the loop thread, so
   in practice every serve-path span is covered.

   The slot is a plain ref inside DLS — no locking, no allocation on
   read — so [current] is cheap enough to consult on every record even
   when no request is in flight. *)

let key : string option ref Domain.DLS.key = Domain.DLS.new_key (fun () -> ref None)

let current () = !(Domain.DLS.get key)

let with_request id f =
  let slot = Domain.DLS.get key in
  let saved = !slot in
  slot := Some id;
  Fun.protect ~finally:(fun () -> slot := saved) f

(** Master telemetry switch (see {!Rsj_obs.enabled}). *)

val enabled : unit -> bool
(** One atomic read; the only cost every instrumentation hook pays when
    telemetry is off. Initialised from [RSJ_TRACE] ([""], ["0"] or
    unset = off; anything else = on). *)

val set_enabled : bool -> unit

val env_trace_path : unit -> string option
(** Where [RSJ_TRACE] asks the trace to be written: [None] when
    telemetry is off, ["trace.json"] for [RSJ_TRACE=1], the variable's
    value itself when it names a path. *)

(** The one clock in the tree.

    All wall-time reads go through this module — the [@clock-hygiene]
    dune rule (in the style of [@spawn-hygiene]) fails the build if
    [Unix.gettimeofday]/[Sys.time]/[Mtime]-style reads appear anywhere
    else — so seeded sampling can be audited to never consume a clock
    value, and traces can never perturb samples. *)

val now_s : unit -> float
(** Wall-clock seconds (Unix epoch); what the strategy results'
    [elapsed_seconds] and the harness' medians are measured with. *)

val now_us : unit -> float
(** Microseconds since process start — the span timestamp unit of the
    Chrome Trace Event format. Monotone in practice for the
    second-scale runs traced here (the stdlib exposes no true monotonic
    clock). *)

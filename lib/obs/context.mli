(** Ambient request context (Domain.DLS): the id of the request the
    current domain is serving, if any. Trace spans and request-log
    lines recorded while a context is set carry the id automatically.
    Domain-local — pool worker domains do not inherit the caller's
    context (see DESIGN.md §14). *)

val current : unit -> string option
(** The request id set by the nearest enclosing [with_request] on this
    domain, or [None]. Allocation-free on the [None] path. *)

val with_request : string -> (unit -> 'a) -> 'a
(** [with_request id f] runs [f] with [current () = Some id], restoring
    the previous context (supports nesting) even if [f] raises. *)

(** Structured NDJSON request log. One JSON object per line; armed via
    [set_path] (the server passes RSJ_LOG). Each line carries a
    wall-clock ["ts"] and, when an ambient {!Context} is set, the
    request id under ["req"]. *)

val set_path : string option -> unit
(** Arm the log to append to the given file ([None]/[""] disarms). *)

val path : unit -> string option
(** The armed path, if any. *)

val enabled : unit -> bool

val write : (string * Json.t) list -> unit
(** Append one line with the given fields (plus ts/req). No-op when
    disarmed. Flushes per line. *)

val close : unit -> unit

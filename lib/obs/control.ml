(* The master telemetry switch.

   One atomic bool read per instrumentation hook: with telemetry off,
   every hook in the runtime reduces to a single branch on this flag —
   no clock read, no allocation, no registry lookup. Spans and timed
   histogram observations are gated here; the always-on counters (the
   pool's spawn accounting) bypass the flag because they are plain
   atomic increments and pre-date the subsystem as public API. *)

let parse_env = function
  | None | Some "" | Some "0" -> false
  | Some _ -> true

let flag = Atomic.make (parse_env (Sys.getenv_opt "RSJ_TRACE"))
let enabled () = Atomic.get flag
let set_enabled b = Atomic.set flag b

let env_trace_path () =
  match Sys.getenv_opt "RSJ_TRACE" with
  | None | Some "" | Some "0" -> None
  | Some "1" -> Some "trace.json"
  | Some path -> Some path

(** Runtime (GC) telemetry built on [Gc.quick_stat] — never the
    heap-walking [Gc.stat]. *)

val allocated_words : unit -> float
(** Cumulative words allocated by this domain's program:
    minor + major - promoted. Take a delta around a request to get its
    allocation cost. *)

val publish_gc : unit -> unit
(** Refresh the [rsj_gc_*] gauges (minor/major/promoted words,
    minor/major collections, compactions, heap words) in the registry. *)

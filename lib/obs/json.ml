(* Minimal JSON: just enough for the telemetry exporters to build
   documents safely (escaping, number formatting) and for the tests to
   parse emitted artifacts back — no external dependency. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

(* ------------------------------------------------------------------ *)
(* Printing                                                            *)

let escape_to buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let float_to_string f =
  if Float.is_nan f then "null" (* JSON has no NaN *)
  else if Float.is_integer f && Float.abs f < 1e15 then Printf.sprintf "%.1f" f
  else Printf.sprintf "%.9g" f

let rec write buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (string_of_bool b)
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float f -> Buffer.add_string buf (float_to_string f)
  | Str s -> escape_to buf s
  | List items ->
      Buffer.add_char buf '[';
      List.iteri
        (fun i v ->
          if i > 0 then Buffer.add_char buf ',';
          write buf v)
        items;
      Buffer.add_char buf ']'
  | Obj fields ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char buf ',';
          escape_to buf k;
          Buffer.add_char buf ':';
          write buf v)
        fields;
      Buffer.add_char buf '}'

let to_string v =
  let buf = Buffer.create 256 in
  write buf v;
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Parsing (recursive descent)                                         *)

exception Bad of string

let parse (s : string) : (t, string) result =
  let n = String.length s in
  let pos = ref 0 in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let fail msg = raise (Bad (Printf.sprintf "%s at offset %d" msg !pos)) in
  let advance () = incr pos in
  let skip_ws () =
    while !pos < n && (match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false) do
      advance ()
    done
  in
  let expect c =
    match peek () with
    | Some d when d = c -> advance ()
    | _ -> fail (Printf.sprintf "expected %c" c)
  in
  let literal word v =
    let l = String.length word in
    if !pos + l <= n && String.sub s !pos l = word then begin
      pos := !pos + l;
      v
    end
    else fail (Printf.sprintf "expected %s" word)
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      if !pos >= n then fail "unterminated string"
      else
        match s.[!pos] with
        | '"' -> advance ()
        | '\\' ->
            advance ();
            (if !pos >= n then fail "unterminated escape"
             else
               match s.[!pos] with
               | '"' -> Buffer.add_char buf '"'; advance ()
               | '\\' -> Buffer.add_char buf '\\'; advance ()
               | '/' -> Buffer.add_char buf '/'; advance ()
               | 'b' -> Buffer.add_char buf '\b'; advance ()
               | 'f' -> Buffer.add_char buf '\012'; advance ()
               | 'n' -> Buffer.add_char buf '\n'; advance ()
               | 'r' -> Buffer.add_char buf '\r'; advance ()
               | 't' -> Buffer.add_char buf '\t'; advance ()
               | 'u' ->
                   advance ();
                   if !pos + 4 > n then fail "truncated \\u escape";
                   let hex = String.sub s !pos 4 in
                   let code =
                     match int_of_string_opt ("0x" ^ hex) with
                     | Some c -> c
                     | None -> fail "bad \\u escape"
                   in
                   pos := !pos + 4;
                   (* Encode the BMP code point as UTF-8. *)
                   if code < 0x80 then Buffer.add_char buf (Char.chr code)
                   else if code < 0x800 then begin
                     Buffer.add_char buf (Char.chr (0xC0 lor (code lsr 6)));
                     Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
                   end
                   else begin
                     Buffer.add_char buf (Char.chr (0xE0 lor (code lsr 12)));
                     Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
                     Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
                   end
               | c -> fail (Printf.sprintf "bad escape \\%c" c));
            go ()
        | c ->
            Buffer.add_char buf c;
            advance ();
            go ()
    in
    go ();
    Buffer.contents buf
  in
  let parse_number () =
    let start = !pos in
    let num_char c =
      match c with '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true | _ -> false
    in
    while !pos < n && num_char s.[!pos] do
      advance ()
    done;
    let lit = String.sub s start (!pos - start) in
    let is_float = String.exists (fun c -> c = '.' || c = 'e' || c = 'E') lit in
    if is_float then
      match float_of_string_opt lit with
      | Some f -> Float f
      | None -> fail (Printf.sprintf "bad number %S" lit)
    else
      match int_of_string_opt lit with
      | Some i -> Int i
      | None -> (
          match float_of_string_opt lit with
          | Some f -> Float f
          | None -> fail (Printf.sprintf "bad number %S" lit))
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some '"' -> Str (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then begin
          advance ();
          List []
        end
        else begin
          let items = ref [ parse_value () ] in
          skip_ws ();
          while peek () = Some ',' do
            advance ();
            items := parse_value () :: !items;
            skip_ws ()
          done;
          expect ']';
          List (List.rev !items)
        end
    | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then begin
          advance ();
          Obj []
        end
        else begin
          let field () =
            skip_ws ();
            let k = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            (k, v)
          in
          let fields = ref [ field () ] in
          skip_ws ();
          while peek () = Some ',' do
            advance ();
            fields := field () :: !fields;
            skip_ws ()
          done;
          expect '}';
          Obj (List.rev !fields)
        end
    | Some _ -> parse_number ()
  in
  match
    let v = parse_value () in
    skip_ws ();
    if !pos <> n then fail "trailing garbage";
    v
  with
  | v -> Ok v
  | exception Bad msg -> Error msg

let member key = function Obj fields -> List.assoc_opt key fields | _ -> None

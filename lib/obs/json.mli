(** Minimal JSON values: enough for the telemetry exporters to emit
    well-formed documents (escaping, number formatting) and for the
    test suite to parse the emitted artifacts back — deliberately not a
    general JSON library and not a new dependency. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

val to_string : t -> string
(** Compact rendering. [Float nan] prints as [null] (JSON has no NaN);
    integral floats keep a trailing [.0] so they stay floats on
    re-parse. *)

val parse : string -> (t, string) result
(** Recursive-descent parser for the subset this library emits plus
    standard escapes ([\uXXXX] decodes to UTF-8). Numbers without
    [./e/E] parse as [Int], others as [Float]. Rejects trailing
    garbage. *)

val member : string -> t -> t option
(** [member k (Obj fields)] is the field [k] if present; [None] on any
    other constructor. *)

(* Structured request log: newline-delimited JSON, one object per
   served request. Off by default; the server arms it from RSJ_LOG at
   startup (set_path). Every line gets a wall-clock timestamp and —
   when an ambient request context is set — the request id, so log
   lines, trace spans and RPC responses all share one id.

   Writes append under a mutex (the serve loop is single-threaded, but
   tests and the CLI may log from elsewhere). Flushing is time-bounded
   rather than per-line — a flush syscall on every request shows up
   directly in the served p99, so lines ride the channel buffer and
   are forced out at most [flush_interval_s] after they were written
   (and always on close, which the daemon's drain path runs). *)

let lock = Mutex.create ()
let dest : (string * out_channel) option ref = ref None
let flush_interval_s = 0.5
let last_flush = ref 0.

let close () =
  Mutex.lock lock;
  (match !dest with
  | Some (_, oc) -> ( try close_out oc with Sys_error _ -> ())
  | None -> ());
  dest := None;
  Mutex.unlock lock

let set_path = function
  | None | Some "" -> close ()
  | Some path ->
      close ();
      let oc = open_out_gen [ Open_append; Open_creat ] 0o644 path in
      Mutex.lock lock;
      dest := Some (path, oc);
      Mutex.unlock lock

let path () =
  Mutex.lock lock;
  let p = match !dest with Some (p, _) -> Some p | None -> None in
  Mutex.unlock lock;
  p

let enabled () = Option.is_some !dest

let write fields =
  Mutex.lock lock;
  (match !dest with
  | None -> ()
  | Some (_, oc) ->
      let now = Clock.now_s () in
      let base =
        [ ("ts", Json.Float now) ]
        @ (match Context.current () with
          | Some id when not (List.mem_assoc "req" fields) -> [ ("req", Json.Str id) ]
          | _ -> [])
      in
      output_string oc (Json.to_string (Json.Obj (base @ fields)));
      output_char oc '\n';
      if now -. !last_flush >= flush_interval_s then begin
        flush oc;
        last_flush := now
      end);
  Mutex.unlock lock

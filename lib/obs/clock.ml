(* The one clock in the tree.

   Every wall-time read in lib/, bin/, bench/, test/ and examples/
   funnels through this module; the @clock-hygiene dune rule greps the
   rest of the codebase to keep it that way. Confinement matters for
   reproducibility: seeded sampling must never consume a clock value,
   so one grep-auditable module is the difference between "the trace
   changed the sample" being impossible and being a code review
   question.

   OCaml 5.1's stdlib exposes no monotonic clock; we use
   Unix.gettimeofday offset from process start. For the second-scale
   spans traced here that is monotone in practice, and the offset keeps
   trace timestamps small enough that Perfetto's microsecond axis stays
   readable. *)

let epoch = Unix.gettimeofday ()
let now_s () = Unix.gettimeofday ()
let now_us () = (Unix.gettimeofday () -. epoch) *. 1e6

(* Span tracer: per-domain ring buffers flushed to Chrome Trace Event
   JSON (the format Perfetto and chrome://tracing open directly).

   One-writer discipline, mirroring Domain_pool's: each domain records
   only into its own ring, reached through domain-local storage, so the
   hot path takes no lock and performs no cross-domain write. The only
   shared state is the list of rings themselves, touched under a mutex
   once per domain (registration) and at flush time. Flush and clear
   are meant for quiescent moments — after a pool barrier, between
   runs — which is when every caller in this tree invokes them.

   A ring holds a fixed number of events (RSJ_TRACE_CAP, default 2^15
   per domain); once full, further events are counted as dropped rather
   than recorded, so a runaway trace degrades to a truncated file, never
   to unbounded memory. *)

type event = {
  name : string;
  cat : string;
  ph : char;  (* 'X' complete span, 'i' instant *)
  ts : float;  (* µs since process start (Clock.now_us) *)
  dur : float;  (* µs; 0 for instants *)
  tid : int;
  args : (string * Json.t) list;
}

let default_capacity = 1 lsl 15

let capacity =
  match Sys.getenv_opt "RSJ_TRACE_CAP" with
  | Some s when String.trim s <> "" -> (
      match int_of_string_opt (String.trim s) with
      | Some v when v > 0 -> v
      | _ -> invalid_arg (Printf.sprintf "RSJ_TRACE_CAP must be a positive integer, got %S" s))
  | _ -> default_capacity

let dummy = { name = ""; cat = ""; ph = 'X'; ts = 0.; dur = 0.; tid = 0; args = [] }

type ring = { tid : int; events : event array; mutable len : int; mutable dropped : int }

let rings : ring list ref = ref []
let rings_lock = Mutex.create ()

let ring_key =
  Domain.DLS.new_key (fun () ->
      let r =
        { tid = (Domain.self () :> int); events = Array.make capacity dummy; len = 0; dropped = 0 }
      in
      Mutex.lock rings_lock;
      rings := r :: !rings;
      Mutex.unlock rings_lock;
      r)

let record ev =
  let r = Domain.DLS.get ring_key in
  if r.len < Array.length r.events then begin
    r.events.(r.len) <- ev;
    r.len <- r.len + 1
  end
  else r.dropped <- r.dropped + 1

(* ------------------------------------------------------------------ *)
(* Recording API (all gated on Control.enabled)                        *)

(* Ambient request context: when the serving path has set a request id
   (Context.with_request), every span recorded underneath carries it as
   a "req" arg, so a whole request can be filtered out of a trace. *)
let tagged args =
  match Context.current () with
  | Some id when not (List.mem_assoc "req" args) -> ("req", Json.Str id) :: args
  | _ -> args

let complete ?(cat = "") ?(args = []) name ~ts ~dur =
  if Control.enabled () then
    record { name; cat; ph = 'X'; ts; dur; tid = (Domain.self () :> int); args = tagged args }

let instant ?(cat = "") ?(args = []) name =
  if Control.enabled () then
    record
      {
        name;
        cat;
        ph = 'i';
        ts = Clock.now_us ();
        dur = 0.;
        tid = (Domain.self () :> int);
        args = tagged args;
      }

let with_span ?(cat = "") ?(args = []) name f =
  if not (Control.enabled ()) then f ()
  else begin
    let t0 = Clock.now_us () in
    Fun.protect
      ~finally:(fun () ->
        let t1 = Clock.now_us () in
        record
          {
            name;
            cat;
            ph = 'X';
            ts = t0;
            dur = Float.max 0. (t1 -. t0);
            tid = (Domain.self () :> int);
            args = tagged args;
          })
      f
  end

(* ------------------------------------------------------------------ *)
(* Flush                                                               *)

let snapshot_rings () =
  Mutex.lock rings_lock;
  let rs = !rings in
  Mutex.unlock rings_lock;
  rs

let events () =
  let out =
    List.concat_map (fun r -> Array.to_list (Array.sub r.events 0 r.len)) (snapshot_rings ())
  in
  List.sort (fun a b -> compare a.ts b.ts) out

let dropped () = List.fold_left (fun acc r -> acc + r.dropped) 0 (snapshot_rings ())

let clear () =
  List.iter
    (fun r ->
      r.len <- 0;
      r.dropped <- 0)
    (snapshot_rings ())

let event_to_json pid e =
  Json.Obj
    ([
       ("name", Json.Str e.name);
       ("cat", Json.Str (if e.cat = "" then "rsj" else e.cat));
       ("ph", Json.Str (String.make 1 e.ph));
       ("ts", Json.Float e.ts);
       ("pid", Json.Int pid);
       ("tid", Json.Int e.tid);
     ]
    @ (if e.ph = 'X' then [ ("dur", Json.Float e.dur) ] else [])
    @ (if e.args = [] then [] else [ ("args", Json.Obj e.args) ])
    @ if e.ph = 'i' then [ ("s", Json.Str "t") ] else [])

let to_json () =
  let pid = Unix.getpid () in
  let thread_meta =
    List.filter_map
      (fun r ->
        if r.len = 0 then None
        else
          Some
            (Json.Obj
               [
                 ("name", Json.Str "thread_name");
                 ("ph", Json.Str "M");
                 ("pid", Json.Int pid);
                 ("tid", Json.Int r.tid);
                 ( "args",
                   Json.Obj
                     [
                       ( "name",
                         Json.Str
                           (if r.tid = 0 then "domain-0 (caller)"
                            else Printf.sprintf "domain-%d" r.tid) );
                     ] );
               ]))
      (snapshot_rings ())
  in
  Json.Obj
    [
      ("traceEvents", Json.List (thread_meta @ List.map (event_to_json pid) (events ())));
      ("displayTimeUnit", Json.Str "ms");
      ("otherData", Json.Obj [ ("dropped_events", Json.Int (dropped ())) ]);
    ]

let write_channel oc = output_string oc (Json.to_string (to_json ()))

let write_file path =
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> write_channel oc)

(* Runtime telemetry: OCaml GC quick-stat gauges and per-request
   allocation deltas. Everything here reads [Gc.quick_stat] only — the
   cheap counters-and-words view — never [Gc.stat], which walks the
   heap. [allocated_words] is the standard allocation meter
   (minor + major - promoted, so promoted words are not double
   counted); the server logs the delta across each request. *)

let allocated_words () =
  let s = Gc.quick_stat () in
  s.Gc.minor_words +. s.Gc.major_words -. s.Gc.promoted_words

let g name help = Registry.gauge ~help name

let publish_gc () =
  let s = Gc.quick_stat () in
  Registry.set_gauge
    (g "rsj_gc_minor_words" "Cumulative words allocated in the minor heap")
    s.Gc.minor_words;
  Registry.set_gauge
    (g "rsj_gc_major_words" "Cumulative words allocated in the major heap")
    s.Gc.major_words;
  Registry.set_gauge
    (g "rsj_gc_promoted_words" "Cumulative words promoted minor->major")
    s.Gc.promoted_words;
  Registry.set_gauge
    (g "rsj_gc_minor_collections" "Number of minor collections")
    (float_of_int s.Gc.minor_collections);
  Registry.set_gauge
    (g "rsj_gc_major_collections" "Number of major collection cycles")
    (float_of_int s.Gc.major_collections);
  Registry.set_gauge
    (g "rsj_gc_compactions" "Number of heap compactions")
    (float_of_int s.Gc.compactions);
  Registry.set_gauge
    (g "rsj_gc_heap_words" "Total size of the major heap, in words")
    (float_of_int s.Gc.heap_words)

(* Telemetry subsystem (the "Obs" of DESIGN.md §9): a span tracer over
   per-domain ring buffers with Chrome Trace Event export (Trace), a
   counter/gauge/histogram registry with Prometheus text and JSON
   exporters (Registry), the one clock module in the tree (Clock), and
   the master switch every hook branches on (enabled). Zero external
   dependencies. Consumers alias this as [module Obs = Rsj_obs]. *)

module Json = Json
module Clock = Clock
module Registry = Registry
module Trace = Trace
module Context = Context
module Reqlog = Reqlog
module Runtime = Runtime

let enabled = Control.enabled
let set_enabled = Control.set_enabled
let env_trace_path = Control.env_trace_path

(** Span tracer: monotone-timestamped spans in per-domain ring buffers,
    flushed to Chrome Trace Event JSON — a conformance or bench run's
    trace opens directly in Perfetto (ui.perfetto.dev) or
    [chrome://tracing].

    One-writer discipline (mirroring {!Domain_pool}): each domain
    appends only to its own ring, reached through domain-local storage,
    so recording takes no lock. Rings hold [RSJ_TRACE_CAP] events each
    (default 2^15); overflow increments a drop counter instead of
    growing, so tracing degrades to truncation, never to unbounded
    memory. {!events}, {!to_json}, {!clear} read/reset every ring and
    are meant for quiescent moments (after a pool barrier, between
    runs).

    Every recording entry point is gated on {!Control.enabled}: with
    telemetry off each hook costs one branch. *)

type event = {
  name : string;
  cat : string;
  ph : char;  (** ['X'] complete span, ['i'] instant. *)
  ts : float;  (** µs since process start ({!Clock.now_us}). *)
  dur : float;  (** µs; [0.] for instants. *)
  tid : int;  (** The recording domain's id; 0 is the main domain. *)
  args : (string * Json.t) list;
}

val with_span : ?cat:string -> ?args:(string * Json.t) list -> string -> (unit -> 'a) -> 'a
(** [with_span name f] runs [f] and records a complete span around it
    (also on exception, via [Fun.protect]). Disabled path: one branch,
    then [f ()]. *)

val complete : ?cat:string -> ?args:(string * Json.t) list -> string -> ts:float -> dur:float -> unit
(** Record an already-measured span (timestamps from
    {!Clock.now_us}) — for sites where a closure is inconvenient, e.g.
    the pool's park/wake measurements. *)

val instant : ?cat:string -> ?args:(string * Json.t) list -> string -> unit

val events : unit -> event list
(** Snapshot of every ring, sorted by timestamp. *)

val dropped : unit -> int
(** Events lost to ring overflow since the last {!clear}. *)

val clear : unit -> unit

val to_json : unit -> Json.t
(** The Chrome Trace Event document: [{"traceEvents": [...]}] with
    per-domain [thread_name] metadata and a [dropped_events] tally. *)

val write_channel : out_channel -> unit
val write_file : string -> unit

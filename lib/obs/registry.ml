(* Named counters, gauges and log-bucketed histograms.

   Metric handles are created (and memoized) under one mutex; the hot
   operations — incr/add/set/observe — are lock-free atomics so any
   domain may bump any metric concurrently. A metric is keyed by
   (name, sorted labels); family metadata (help text, type) is keyed by
   name alone, Prometheus-style.

   Histograms use one shared exponential bucket ladder (powers of two
   from 1 µs), sized for the quantities this runtime observes: pool
   wake latencies, chunk service times, whole-strategy runs. Quantiles
   are read back as the upper bound of the bucket where the cumulative
   count crosses the target — a factor-of-2 estimate, which is all a
   p50/p99 over a perf trajectory needs. *)

type labels = (string * string) list

(* Lock-free float accumulator: CAS on the boxed value (physical
   equality of the box makes the compare exact). *)
let atomic_add_float cell x =
  let rec go () =
    let old = Atomic.get cell in
    if not (Atomic.compare_and_set cell old (old +. x)) then go ()
  in
  go ()

(* ------------------------------------------------------------------ *)
(* Buckets                                                             *)

let default_buckets = Array.init 30 (fun i -> 1e-6 *. (2. ** float_of_int i))

let bucket_index ?(buckets = default_buckets) v =
  let n = Array.length buckets in
  let rec go i = if i >= n then n else if v <= buckets.(i) then i else go (i + 1) in
  go 0

(* ------------------------------------------------------------------ *)
(* Metric cells                                                        *)

type counter = int Atomic.t
type gauge = float Atomic.t

type histogram = {
  buckets : float array;  (* upper bounds; counts has one extra +Inf slot *)
  counts : int Atomic.t array;
  sum : float Atomic.t;
}

type metric = Counter of counter | Gauge of gauge | Histogram of histogram

type family = { help : string; kind : string }

let lock = Mutex.create ()
let metrics : (string * labels, metric) Hashtbl.t = Hashtbl.create 64
let families : (string, family) Hashtbl.t = Hashtbl.create 64
let registration_order : (string * labels) list ref = ref []

let with_lock f =
  Mutex.lock lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock lock) f

let canonical labels = List.sort compare labels

let register ~kind ~help name labels make =
  let labels = canonical labels in
  let key = (name, labels) in
  with_lock (fun () ->
      (match Hashtbl.find_opt families name with
      | Some fam ->
          if fam.kind <> kind then
            invalid_arg
              (Printf.sprintf "Obs.Registry: %s already registered as a %s" name fam.kind)
      | None -> Hashtbl.replace families name { help; kind });
      match Hashtbl.find_opt metrics key with
      | Some m -> m
      | None ->
          let m = make () in
          Hashtbl.replace metrics key m;
          registration_order := key :: !registration_order;
          m)

let counter ?(help = "") ?(labels = []) name =
  match register ~kind:"counter" ~help name labels (fun () -> Counter (Atomic.make 0)) with
  | Counter c -> c
  | _ -> invalid_arg (Printf.sprintf "Obs.Registry: %s is not a counter" name)

let gauge ?(help = "") ?(labels = []) name =
  match register ~kind:"gauge" ~help name labels (fun () -> Gauge (Atomic.make 0.)) with
  | Gauge g -> g
  | _ -> invalid_arg (Printf.sprintf "Obs.Registry: %s is not a gauge" name)

let histogram ?(help = "") ?(labels = []) ?(buckets = default_buckets) name =
  let make () =
    Histogram
      {
        buckets;
        counts = Array.init (Array.length buckets + 1) (fun _ -> Atomic.make 0);
        sum = Atomic.make 0.;
      }
  in
  match register ~kind:"histogram" ~help name labels make with
  | Histogram h -> h
  | _ -> invalid_arg (Printf.sprintf "Obs.Registry: %s is not a histogram" name)

let incr c = Atomic.incr c
let add c n = ignore (Atomic.fetch_and_add c n)
let value c = Atomic.get c
let set_gauge g v = Atomic.set g v
let gauge_value g = Atomic.get g

let observe h v =
  Atomic.incr h.counts.(bucket_index ~buckets:h.buckets v);
  atomic_add_float h.sum v

let observed_count h = Array.fold_left (fun acc c -> acc + Atomic.get c) 0 h.counts
let observed_sum h = Atomic.get h.sum

let quantile h q =
  let total = observed_count h in
  if total = 0 then nan
  else begin
    let target = Float.max 1. (Float.of_int total *. q) in
    let n = Array.length h.counts in
    let rec go i cum =
      if i >= n then h.buckets.(Array.length h.buckets - 1)
      else begin
        let cum = cum + Atomic.get h.counts.(i) in
        if float_of_int cum >= target then
          if i < Array.length h.buckets then h.buckets.(i)
          else h.buckets.(Array.length h.buckets - 1)
        else go (i + 1) cum
      end
    in
    go 0 0
  end

let reset () =
  with_lock (fun () ->
      Hashtbl.iter
        (fun _ m ->
          match m with
          | Counter c -> Atomic.set c 0
          | Gauge g -> Atomic.set g 0.
          | Histogram h ->
              Array.iter (fun c -> Atomic.set c 0) h.counts;
              Atomic.set h.sum 0.)
        metrics)

(* ------------------------------------------------------------------ *)
(* Export                                                              *)

(* Registration-order snapshot grouped by family name, families in
   name order so exports are stable across runs. *)
let snapshot () =
  with_lock (fun () ->
      let keys = List.rev !registration_order in
      let by_name = Hashtbl.create 16 in
      List.iter
        (fun (name, labels) ->
          let row = ((name, labels), Hashtbl.find metrics (name, labels)) in
          let rows = try Hashtbl.find by_name name with Not_found -> [] in
          Hashtbl.replace by_name name (row :: rows))
        keys;
      let names = List.sort_uniq compare (List.map fst keys) in
      List.map
        (fun name -> (name, Hashtbl.find families name, List.rev (Hashtbl.find by_name name)))
        names)

let escape_label_value s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '\\' -> Buffer.add_string buf "\\\\"
      | '"' -> Buffer.add_string buf "\\\""
      | '\n' -> Buffer.add_string buf "\\n"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let render_labels = function
  | [] -> ""
  | labels ->
      "{"
      ^ String.concat ","
          (List.map (fun (k, v) -> Printf.sprintf "%s=\"%s\"" k (escape_label_value v)) labels)
      ^ "}"

let float_repr f = if Float.is_integer f && Float.abs f < 1e15 then Printf.sprintf "%.0f" f else Printf.sprintf "%.9g" f

let to_prometheus ?(only = fun _ -> true) () =
  let buf = Buffer.create 1024 in
  List.iter
    (fun (name, fam, rows) ->
      if only name then begin
        if fam.help <> "" then Buffer.add_string buf (Printf.sprintf "# HELP %s %s\n" name fam.help);
        Buffer.add_string buf (Printf.sprintf "# TYPE %s %s\n" name fam.kind);
        List.iter
          (fun ((_, labels), metric) ->
            match metric with
            | Counter c ->
                Buffer.add_string buf
                  (Printf.sprintf "%s%s %d\n" name (render_labels labels) (Atomic.get c))
            | Gauge g ->
                Buffer.add_string buf
                  (Printf.sprintf "%s%s %s\n" name (render_labels labels)
                     (float_repr (Atomic.get g)))
            | Histogram h ->
                let cum = ref 0 in
                Array.iteri
                  (fun i count ->
                    cum := !cum + Atomic.get count;
                    let le =
                      if i < Array.length h.buckets then float_repr h.buckets.(i) else "+Inf"
                    in
                    Buffer.add_string buf
                      (Printf.sprintf "%s_bucket%s %d\n" name
                         (render_labels (labels @ [ ("le", le) ]))
                         !cum))
                  h.counts;
                Buffer.add_string buf
                  (Printf.sprintf "%s_sum%s %s\n" name (render_labels labels)
                     (float_repr (observed_sum h)));
                Buffer.add_string buf
                  (Printf.sprintf "%s_count%s %d\n" name (render_labels labels) !cum))
          rows
      end)
    (snapshot ());
  Buffer.contents buf

let to_json ?(only = fun _ -> true) () =
  let series labels rest = ("labels", Json.Obj (List.map (fun (k, v) -> (k, Json.Str v)) labels)) :: rest in
  Json.Obj
    (List.filter_map
       (fun (name, fam, rows) ->
         if not (only name) then None
         else
           Some
             ( name,
               Json.Obj
                 [
                   ("type", Json.Str fam.kind);
                   ("help", Json.Str fam.help);
                   ( "series",
                     Json.List
                       (List.map
                          (fun ((_, labels), metric) ->
                            match metric with
                            | Counter c -> Json.Obj (series labels [ ("value", Json.Int (Atomic.get c)) ])
                            | Gauge g ->
                                Json.Obj (series labels [ ("value", Json.Float (Atomic.get g)) ])
                            | Histogram h ->
                                Json.Obj
                                  (series labels
                                     [
                                       ( "buckets",
                                         Json.List
                                           (Array.to_list (Array.map (fun b -> Json.Float b) h.buckets))
                                       );
                                       ( "counts",
                                         Json.List
                                           (Array.to_list
                                              (Array.map (fun c -> Json.Int (Atomic.get c)) h.counts))
                                       );
                                       ("sum", Json.Float (observed_sum h));
                                       ("count", Json.Int (observed_count h));
                                       ("p50", Json.Float (quantile h 0.5));
                                       ("p99", Json.Float (quantile h 0.99));
                                     ]))
                          rows) );
                 ] ))
       (snapshot ()))

(* ------------------------------------------------------------------ *)
(* Bridging                                                            *)

let absorb_assoc ?(prefix = "") assoc =
  List.iter (fun (k, v) -> add (counter (prefix ^ k)) v) assoc

type t = {
  mutable tuples_scanned : int;
  mutable join_output_tuples : int;
  mutable index_probes : int;
  mutable hash_build_tuples : int;
  mutable sort_tuples : int;
  mutable output_tuples : int;
  mutable random_accesses : int;
  mutable rejected_samples : int;
  mutable stats_lookups : int;
}

(* Single field-spec table. Every per-field operation below is derived
   from it, so reset/copy/add/to_assoc/pp cannot drift apart when a
   counter is added: the compiler forces the new field into [create]'s
   record literal, and everything else reads this list. [output_tuples]
   is the one field excluded from [total_work] (delivering the sample
   is the caller's demand, not strategy work). *)
let fields : (string * (t -> int) * (t -> int -> unit)) list =
  [
    ("tuples_scanned", (fun m -> m.tuples_scanned), fun m v -> m.tuples_scanned <- v);
    ("join_output_tuples", (fun m -> m.join_output_tuples), fun m v -> m.join_output_tuples <- v);
    ("index_probes", (fun m -> m.index_probes), fun m v -> m.index_probes <- v);
    ("hash_build_tuples", (fun m -> m.hash_build_tuples), fun m v -> m.hash_build_tuples <- v);
    ("sort_tuples", (fun m -> m.sort_tuples), fun m v -> m.sort_tuples <- v);
    ("output_tuples", (fun m -> m.output_tuples), fun m v -> m.output_tuples <- v);
    ("random_accesses", (fun m -> m.random_accesses), fun m v -> m.random_accesses <- v);
    ("rejected_samples", (fun m -> m.rejected_samples), fun m v -> m.rejected_samples <- v);
    ("stats_lookups", (fun m -> m.stats_lookups), fun m v -> m.stats_lookups <- v);
  ]

let create () =
  {
    tuples_scanned = 0;
    join_output_tuples = 0;
    index_probes = 0;
    hash_build_tuples = 0;
    sort_tuples = 0;
    output_tuples = 0;
    random_accesses = 0;
    rejected_samples = 0;
    stats_lookups = 0;
  }

let reset m = List.iter (fun (_, _, set) -> set m 0) fields

let copy m =
  let c = create () in
  List.iter (fun (_, get, set) -> set c (get m)) fields;
  c

let add a b =
  let c = create () in
  List.iter (fun (_, get, set) -> set c (get a + get b)) fields;
  c

let to_assoc m = List.map (fun (name, get, _) -> (name, get m)) fields

let total_work m =
  List.fold_left
    (fun acc (name, get, _) -> if String.equal name "output_tuples" then acc else acc + get m)
    0 fields

let pp ppf m =
  Format.fprintf ppf "@[<v>";
  List.iter (fun (k, v) -> Format.fprintf ppf "%-20s %d@," k v) (to_assoc m);
  Format.fprintf ppf "%-20s %d@]" "total_work" (total_work m)

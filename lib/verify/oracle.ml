open Rsj_relation
module Strategy = Rsj_core.Strategy
module Chain_sample = Rsj_core.Chain_sample
module Hash_index = Rsj_index.Hash_index

type t = { universe : Tuple.t array; index : (Tuple.t, int) Hashtbl.t }

let of_universe universe =
  let n = Array.length universe in
  let index = Hashtbl.create (2 * max 1 n) in
  Array.iteri
    (fun i t ->
      if Hashtbl.mem index t then
        invalid_arg
          (Printf.sprintf "Oracle: duplicate tuple %s in the enumerated join"
             (Tuple.to_string t));
      Hashtbl.replace index t i)
    universe;
  { universe; index }

let of_relations ~left ~right ~left_key ~right_key =
  let plan =
    Rsj_exec.Plan.Join
      {
        Rsj_exec.Plan.algorithm = Rsj_exec.Plan.Hash;
        left = Rsj_exec.Plan.Scan left;
        right = Rsj_exec.Plan.Scan right;
        left_key;
        right_key;
      }
  in
  of_universe (Array.of_list (Rsj_exec.Plan.collect plan))

let of_env env =
  of_relations ~left:(Strategy.env_left env) ~right:(Strategy.env_right env)
    ~left_key:(Strategy.env_left_key env) ~right_key:(Strategy.env_right_key env)

let of_chain (spec : Chain_sample.spec) =
  let k = Array.length spec.relations in
  if k = 0 then invalid_arg "Oracle.of_chain: no relations";
  if Array.length spec.join_keys <> k - 1 then
    invalid_arg "Oracle.of_chain: join_keys length must be k-1";
  (* Nested-loop enumeration, each partial tuple remembering the last
     base tuple so join_keys address base-relation columns exactly as
     Chain_sample.spec documents. *)
  let acc =
    ref (Relation.fold spec.relations.(0) ~init:[] ~f:(fun l t -> (t, t) :: l) |> List.rev)
  in
  for i = 0 to k - 2 do
    let a, b = spec.join_keys.(i) in
    let idx = Hash_index.build spec.relations.(i + 1) ~key:b in
    acc :=
      List.concat_map
        (fun (joined, last) ->
          Array.to_list (Hash_index.matching_tuples idx (Tuple.attr last a))
          |> List.map (fun t' -> (Tuple.join joined t', t')))
        !acc
  done;
  of_universe (Array.of_list (List.map fst !acc))

let universe t = t.universe
let size t = Array.length t.universe
let cell t tuple = Hashtbl.find_opt t.index tuple

let counter t = Array.make (size t) 0

let observe t counts tuple =
  match Hashtbl.find_opt t.index tuple with
  | Some i -> counts.(i) <- counts.(i) + 1
  | None ->
      invalid_arg
        (Printf.sprintf "Oracle.observe: tuple %s is not in the join" (Tuple.to_string tuple))

let wr_expected t ~draws =
  let n = size t in
  if n = 0 then invalid_arg "Oracle.wr_expected: empty join";
  Array.make n (float_of_int draws /. float_of_int n)

let wor_inclusion t ~r =
  let n = size t in
  if n = 0 then invalid_arg "Oracle.wor_inclusion: empty join";
  float_of_int (min r n) /. float_of_int n

let wor_expected t ~trials ~r =
  Array.make (size t) (float_of_int trials *. wor_inclusion t ~r)

let cf_expected t ~trials ~f =
  if f < 0. || f > 1. then invalid_arg "Oracle.cf_expected: f outside [0,1]";
  Array.make (size t) (float_of_int trials *. f)

open Rsj_relation
module Strategy = Rsj_core.Strategy
module Semantics = Rsj_core.Semantics
module Convert = Rsj_core.Convert
module Negative = Rsj_core.Negative
module Chain_sample = Rsj_core.Chain_sample
module Zipf_tables = Rsj_workload.Zipf_tables
module Report = Rsj_harness.Report
module Prng = Rsj_util.Prng
module Dist = Rsj_util.Dist
module Stats_math = Rsj_util.Stats_math
module Obs = Rsj_obs

type skew = { label : string; z1 : float; z2 : float }

let default_skews =
  [ { label = "uniform"; z1 = 0.; z2 = 0. }; { label = "zipf(1,2)"; z1 = 1.; z2 = 2. } ]

type config = {
  trials : int;
  r : int;
  n1 : int;
  n2 : int;
  domain : int;
  seed : int;
  significance : float;
  retries : int;
}

let env_trials fallback =
  match Sys.getenv_opt "RSJ_CONF_TRIALS" with
  | None -> fallback
  | Some s when String.trim s = "" -> fallback
  | Some s -> (
      match int_of_string_opt (String.trim s) with
      | Some v when v > 0 -> v
      | _ -> invalid_arg (Printf.sprintf "RSJ_CONF_TRIALS must be a positive integer, got %S" s))

let default_config () =
  {
    trials = env_trials 60;
    r = 16;
    n1 = 40;
    n2 = 80;
    domain = 6;
    seed = 0x5EED;
    significance = 0.01;
    retries = 2;
  }

type cell = {
  strategy : Strategy.t;
  semantics : Semantics.t;
  skew : skew;
  domains : int;
}

type cell_result = {
  cell : cell;
  join_size : int;
  draws : int;
  outcome : Kernel.outcome;
}

let default_domain_counts = [ 1; 2; 4 ]

let matrix ?(strategies = Strategy.all) ?(semantics = Semantics.all) ?(skews = default_skews)
    ?(domain_counts = default_domain_counts) () =
  List.concat_map
    (fun strategy ->
      List.concat_map
        (fun sem ->
          List.concat_map
            (fun skew ->
              List.map (fun domains -> { strategy; semantics = sem; skew; domains }) domain_counts)
            skews)
        semantics)
    strategies

(* Deterministic seed mixing: every attempt of every cell draws from its
   own reproducible stream, so retries are independent and reruns are
   bit-identical. *)
let mix a b c = abs ((a * 0x9E3779B1) lxor (b * 0x85EBCA77) lxor (c * 0xC2B2AE35)) land 0x3FFFFFFF

(* ------------------------------------------------------------------ *)
(* Semantics-specific draws                                            *)

(* WoR through the runtime's own parallel path
   (Rsj_parallel.run_wor): Naive cells exercise the chunked Vitter
   reservoirs + Wor merge, every other strategy the pooled WR-batch §3
   conversion — so the domains > 1 WoR cells gate exactly what the CLI
   executes. *)
let draw_wor env strategy ~r ~domains =
  (Rsj_parallel.run_wor env strategy ~r ~domains).Strategy.sample

(* CF as Binomial(|J|, f) size + uniform WoR subset of that size — the
   exact law of independent per-tuple coin flips over the join. *)
let draw_cf rng env strategy ~f ~domains =
  let n = Strategy.env_join_size env in
  let k = Dist.binomial rng ~n ~p:f in
  if k = 0 then [||] else draw_wor env strategy ~r:k ~domains

(* ------------------------------------------------------------------ *)
(* Cell runner                                                         *)

let cf_fraction config ~join_size =
  Float.min 0.9 (float_of_int config.r /. float_of_int (max 1 join_size))

let run_cell kconfig config ~pair ~oracle ~cell_index cell =
  Obs.Trace.with_span ~cat:"verify"
    ~args:
      [
        ("strategy", Obs.Json.Str (Strategy.name cell.strategy));
        ("semantics", Obs.Json.Str (Semantics.to_string cell.semantics));
        ("skew", Obs.Json.Str cell.skew.label);
        ("domains", Obs.Json.Int cell.domains);
      ]
    "verify.cell"
  @@ fun () ->
  let join_size = Oracle.size oracle in
  (* Parallel cells cost ~domains× more per trial (every trial spawns
     that many domains), so scale their trial count down by the domain
     count, floored. The d=1 cell pins the strategy's law at full
     power; the d>1 cells check that the chunk-scheduled path agrees
     with it, and the bugs they exist to catch (lost chunks, double
     merges, biased ticketing) are gross, large-effect distortions. *)
  let trials = max 15 (config.trials / max 1 cell.domains) in
  let draws = ref 0 in
  let make_env attempt =
    Strategy.make_env
      ~seed:(mix config.seed (cell_index + 1) attempt)
      ~left:pair.Zipf_tables.outer ~right:pair.Zipf_tables.inner ~left_key:Zipf_tables.col2
      ~right_key:Zipf_tables.col2 ()
  in
  let tally env draw1 =
    let counts = Oracle.counter oracle in
    let total = ref 0 in
    for _ = 1 to trials do
      let s = draw1 env in
      total := !total + Array.length s;
      Array.iter (Oracle.observe oracle counts) s
    done;
    draws := !total;
    (counts, !total)
  in
  let outcome =
    match cell.semantics with
    | Semantics.WR ->
        Kernel.run kconfig Kernel.Chi_square ~sample:(fun ~attempt ->
            let counts, total =
              tally (make_env attempt) (fun env ->
                  (Rsj_parallel.run env cell.strategy ~r:config.r ~domains:cell.domains)
                    .Strategy.sample)
            in
            (Oracle.wr_expected oracle ~draws:total, counts))
    | Semantics.WoR ->
        Kernel.run kconfig Kernel.Chi_square ~sample:(fun ~attempt ->
            let counts, _ =
              tally (make_env attempt) (fun env ->
                  draw_wor env cell.strategy ~r:config.r ~domains:cell.domains)
            in
            (Oracle.wor_expected oracle ~trials ~r:config.r, counts))
    | Semantics.CF ->
        (* Two laws to satisfy: uniformity of the included tuples and
           the Binomial(|J|, f) size. Bonferroni within the cell: the
           combined p doubles the smaller sub-p. *)
        let f = cf_fraction config ~join_size in
        Kernel.run_custom kconfig ~name:"chi-square+size-z" ~attempt:(fun ~attempt ->
            let rng = Prng.create ~seed:(mix config.seed (cell_index + 1) (attempt + 0x11)) () in
            let counts, total =
              tally (make_env attempt) (fun env ->
                  draw_cf rng env cell.strategy ~f ~domains:cell.domains)
            in
            let unif =
              if total = 0 then None
              else
                Some
                  (Kernel.goodness_of_fit kconfig Kernel.Chi_square
                     ~expected:(Oracle.wr_expected oracle ~draws:total)
                     ~observed:counts)
            in
            let expected_total =
              float_of_int trials *. Semantics.expected_size Semantics.CF ~n:join_size ~f
            in
            let sd = sqrt (float_of_int (trials * join_size) *. f *. (1. -. f)) in
            let z = (float_of_int total -. expected_total) /. Float.max 1e-9 sd in
            let p_size = Kernel.z_p_value z in
            match unif with
            | None -> (z, 1, Float.min 1. (2. *. p_size))
            | Some u ->
                ( u.Stats_math.statistic,
                  u.Stats_math.dof,
                  Float.min 1. (2. *. Float.min u.Stats_math.p_value p_size) ))
  in
  { cell; join_size; draws = !draws; outcome }

(* ------------------------------------------------------------------ *)
(* Aggregate-estimate KS rows                                          *)

(* Across trials, each estimator computed over a WR sample is
   asymptotically normal with exactly computable mean and variance (the
   oracle knows the population); KS-test the standardized estimates
   against Φ. This gates the paper's §1 use case — approximate
   aggregates over the sample — not just per-tuple membership:

   - SUM: the Horvitz–Thompson estimate n/r · Σ g(t), sd n·√(σ²/r);
   - COUNT: the HT estimate n/r · #{t : pred(t)} of a selection count,
     sd n·√(p(1−p)/r) with p the predicate's selectivity over J;
   - AVG: the plain sample mean of g, sd √(σ²/r). *)
type estimator = Sum | Count | Avg

let all_estimators = [ Sum; Count; Avg ]
let estimator_label = function Sum -> "HT-sum" | Count -> "HT-count" | Avg -> "AVG"
let ks_sample_size = 48

let aggregate_ks kconfig config ~pair ~oracle ~row_index strategy est ~domains =
  Obs.Trace.with_span ~cat:"verify"
    ~args:
      [
        ("strategy", Obs.Json.Str (Strategy.name strategy));
        ("estimator", Obs.Json.Str (estimator_label est));
        ("domains", Obs.Json.Int domains);
      ]
    "verify.ks"
  @@ fun () ->
  (* Like the cells: the d > 1 rows re-test the same estimator law over
     the chunk-scheduled path with trial counts scaled down by the
     width — the d = 1 row pins the law at full power. *)
  let trials = max 15 (config.trials / max 1 domains) in
  let n = Oracle.size oracle in
  let fn = float_of_int n in
  let r = ks_sample_size in
  let fr = float_of_int r in
  let g t = match Tuple.get t 0 with Value.Int i -> float_of_int i | _ -> 0. in
  let pred t = match Tuple.get t 0 with Value.Int i -> i mod 2 = 0 | _ -> false in
  let universe = Oracle.universe oracle in
  let total = Array.fold_left (fun acc t -> acc +. g t) 0. universe in
  let mean = total /. fn in
  let var = Array.fold_left (fun acc t -> acc +. ((g t -. mean) ** 2.)) 0. universe /. fn in
  let sum_g s = Array.fold_left (fun acc t -> acc +. g t) 0. s in
  let count_pred s = Array.fold_left (fun acc t -> if pred t then acc +. 1. else acc) 0. s in
  let standardize =
    match est with
    | Sum ->
        let sd = fn *. sqrt (var /. fr) in
        if sd <= 0. then invalid_arg "Conformance.aggregate_ks: degenerate SUM column";
        fun s -> ((fn /. fr *. sum_g s) -. total) /. sd
    | Count ->
        let c = count_pred universe in
        let p = c /. fn in
        let sd = fn *. sqrt (p *. (1. -. p) /. fr) in
        if sd <= 0. then invalid_arg "Conformance.aggregate_ks: degenerate COUNT predicate";
        fun s -> ((fn /. fr *. count_pred s) -. c) /. sd
    | Avg ->
        let sd = sqrt (var /. fr) in
        if sd <= 0. then invalid_arg "Conformance.aggregate_ks: degenerate AVG column";
        fun s -> ((sum_g s /. fr) -. mean) /. sd
  in
  Kernel.run_ks kconfig
    ~name:(Strategy.name strategy ^ " " ^ estimator_label est)
    ~cdf:(fun x -> 1. -. Stats_math.normal_sf x)
    ~sample:(fun ~attempt ->
      let env =
        Strategy.make_env
          ~seed:(mix config.seed (0x5113 + row_index) attempt)
          ~left:pair.Zipf_tables.outer ~right:pair.Zipf_tables.inner ~left_key:Zipf_tables.col2
          ~right_key:Zipf_tables.col2 ()
      in
      Array.init trials (fun _ ->
          standardize (Rsj_parallel.run env strategy ~r ~domains).Strategy.sample))

(* ------------------------------------------------------------------ *)
(* Chain-join rows                                                     *)

(* The 3-relation chain walker (Chain_sample) held to the same policy
   as the 2-relation cells: chi-square of pooled WR draws against the
   uniform law over the exactly enumerated chain join, one row per
   skew. *)
let default_chain_skews = [ 0.5; 2.0 ]

let chain_spec ~seed ~z =
  let mk i rows =
    Zipf_tables.make ~seed:(seed + (31 * i)) ~name:(Printf.sprintf "chain%d" i) ~rows ~z
      ~domain:5 ()
  in
  {
    Chain_sample.relations = [| mk 0 24; mk 1 30; mk 2 36 |];
    join_keys = [| (Zipf_tables.col2, Zipf_tables.col2); (Zipf_tables.col2, Zipf_tables.col2) |];
  }

(* ------------------------------------------------------------------ *)
(* Picker-routed rows                                                  *)

(* The cost-based picker (Rsj_optimizer.Picker) is itself part of the
   sampling path now — a wrong choice that routes to a strategy whose
   requirements aren't really met, or a trace/execution mismatch, must
   fail the sweep. Each row snapshots a catalog under one availability
   profile, lets the picker choose, then holds the chosen strategy's
   WR law to the same chi-square gate as the per-strategy cells. *)

type picker_profile = {
  plabel : string;
  availability : Strategy.availability;
}

let default_picker_profiles =
  [
    { plabel = "full"; availability = Strategy.all_available };
    {
      plabel = "no-index";
      availability =
        {
          Strategy.left_index = false;
          right_index = false;
          right_stats = true;
          right_histogram = true;
        };
    };
    {
      plabel = "histogram-only";
      availability =
        {
          Strategy.left_index = false;
          right_index = false;
          right_stats = false;
          right_histogram = true;
        };
    };
    { plabel = "none"; availability = Strategy.nothing_available };
  ]

let picker_row kconfig config ~pair ~oracle ~row_index profile ~domains =
  Obs.Trace.with_span ~cat:"verify"
    ~args:
      [
        ("profile", Obs.Json.Str profile.plabel);
        ("domains", Obs.Json.Int domains);
      ]
    "verify.picker"
  @@ fun () ->
  let make_env attempt =
    Strategy.make_env
      ~seed:(mix config.seed (0x71C4 + row_index) attempt)
      ~left:pair.Zipf_tables.outer ~right:pair.Zipf_tables.inner ~left_key:Zipf_tables.col2
      ~right_key:Zipf_tables.col2 ()
  in
  (* The choice is a deterministic function of the catalog, which only
     depends on the (attempt-independent) workload pair: decide once. *)
  let chosen =
    fst
      (Rsj_optimizer.Picker.choose
         (Rsj_optimizer.Catalog.of_env ~availability:profile.availability (make_env 0))
         (Rsj_optimizer.Cost_model.shape ~r:config.r))
  in
  let trials = max 15 (config.trials / max 1 domains) in
  let outcome =
    Kernel.run kconfig Kernel.Chi_square ~sample:(fun ~attempt ->
        let env = make_env attempt in
        let counts = Oracle.counter oracle in
        let total = ref 0 in
        for _ = 1 to trials do
          let s = (Rsj_parallel.run env chosen ~r:config.r ~domains).Strategy.sample in
          total := !total + Array.length s;
          Array.iter (Oracle.observe oracle counts) s
        done;
        (Oracle.wr_expected oracle ~draws:!total, counts))
  in
  (Printf.sprintf "picker[%s->%s]" profile.plabel (Strategy.name chosen), domains, outcome)

(* ------------------------------------------------------------------ *)
(* Negative control                                                    *)

let negative_control kconfig config ~oracle =
  Obs.Trace.with_span ~cat:"verify" "verify.control" @@ fun () ->
  let trials = max 200 (4 * config.trials) in
  Kernel.run kconfig Kernel.Chi_square ~sample:(fun ~attempt ->
      let rng = Prng.create ~seed:(mix config.seed 0xBAD (attempt + 1)) () in
      let counts = Oracle.counter oracle in
      for _ = 1 to trials do
        Array.iter
          (Oracle.observe oracle counts)
          (Negative.biased_wr_draw rng ~universe:(Oracle.universe oracle) ~r:config.r)
      done;
      (Oracle.wr_expected oracle ~draws:(trials * config.r), counts))

(* ------------------------------------------------------------------ *)
(* Full run                                                            *)

type summary = {
  config : config;
  results : cell_result list;
  aggregates : (string * int * Kernel.outcome) list;
  chains : (string * Kernel.outcome) list;
  pickers : (string * int * Kernel.outcome) list;
  control : Kernel.outcome;
  comparisons : int;
  all_pass : bool;
}

let wr_uniformity ?(config = Kernel.default) ~trials ~universe ~draw () =
  let oracle = Oracle.of_universe universe in
  Kernel.run config Kernel.Chi_square ~sample:(fun ~attempt ->
      let draw1 = draw ~attempt in
      let counts = Oracle.counter oracle in
      let total = ref 0 in
      for _ = 1 to trials do
        let s = draw1 () in
        total := !total + Array.length s;
        Array.iter (Oracle.observe oracle counts) s
      done;
      (Oracle.wr_expected oracle ~draws:!total, counts))

let chain_row kconfig config ~row_index z =
  Obs.Trace.with_span ~cat:"verify"
    ~args:[ ("z", Obs.Json.Float z) ]
    "verify.chain"
  @@ fun () ->
  let spec = chain_spec ~seed:(mix config.seed 0xC4A1 row_index) ~z in
  let universe = Oracle.universe (Oracle.of_chain spec) in
  let prepared = Chain_sample.prepare spec in
  let outcome =
    wr_uniformity ~config:kconfig ~trials:config.trials ~universe
      ~draw:(fun ~attempt ->
        let rng = Prng.create ~seed:(mix config.seed (0xC4A1 + row_index) (attempt + 1)) () in
        fun () -> Chain_sample.sample prepared rng ~r:config.r ())
      ()
  in
  (Printf.sprintf "chain walk z=%g" z, outcome)

let run ?config ?cells ?(with_aggregates = true) ?(with_chains = true) ?(with_control = true)
    ?(with_pickers = true) ?(picker_profiles = default_picker_profiles) () =
  let config = match config with Some c -> c | None -> default_config () in
  if config.trials <= 0 then invalid_arg "Conformance.run: trials <= 0";
  if config.r <= 0 then invalid_arg "Conformance.run: r <= 0";
  let cells = match cells with Some c -> c | None -> matrix () in
  let skews =
    List.fold_left
      (fun acc cell -> if List.mem cell.skew acc then acc else cell.skew :: acc)
      [] cells
    |> List.rev
  in
  let ks_skew =
    match List.rev skews with [] -> List.hd default_skews | last :: _ -> last
  in
  let matrix_domains =
    match List.sort_uniq compare (List.map (fun c -> c.domains) cells) with
    | [] -> [ 1 ]
    | l -> l
  in
  let ks_rows =
    (* One estimator KS row per strategy × estimator × domain count in
       the matrix, so the aggregate laws are gated over the parallel
       path at the same widths as the per-tuple cells. *)
    if with_aggregates then
      List.concat_map
        (fun strategy ->
          List.concat_map
            (fun est -> List.map (fun domains -> (strategy, est, domains)) matrix_domains)
            all_estimators)
        (List.sort_uniq compare (List.map (fun c -> c.strategy) cells))
    else []
  in
  let chain_zs = if with_chains then default_chain_skews else [] in
  let picker_cells =
    if with_pickers then
      List.concat_map
        (fun profile -> List.map (fun domains -> (profile, domains)) matrix_domains)
        picker_profiles
    else []
  in
  let comparisons =
    List.length cells + List.length ks_rows + List.length chain_zs
    + List.length picker_cells
  in
  let kconfig =
    {
      Kernel.significance = config.significance;
      comparisons = max 1 comparisons;
      retries = config.retries;
      min_expected = 5.;
    }
  in
  let instances =
    List.mapi
      (fun i skew ->
        let pair =
          Zipf_tables.make_pair
            ~seed:(mix config.seed 0x7A1E i)
            ~n1:config.n1 ~n2:config.n2 ~z1:skew.z1 ~z2:skew.z2 ~domain:config.domain ()
        in
        let oracle =
          Oracle.of_relations ~left:pair.Zipf_tables.outer ~right:pair.Zipf_tables.inner
            ~left_key:Zipf_tables.col2 ~right_key:Zipf_tables.col2
        in
        (skew.label, (pair, oracle)))
      skews
  in
  let instance label = List.assoc label instances in
  let results =
    List.mapi
      (fun i cell ->
        let pair, oracle = instance cell.skew.label in
        run_cell kconfig config ~pair ~oracle ~cell_index:i cell)
      cells
  in
  let aggregates =
    List.mapi
      (fun i (strategy, est, domains) ->
        let pair, oracle = instance ks_skew.label in
        ( Strategy.name strategy ^ " " ^ estimator_label est,
          domains,
          aggregate_ks kconfig config ~pair ~oracle ~row_index:i strategy est ~domains ))
      ks_rows
  in
  let chains = List.mapi (fun i z -> chain_row kconfig config ~row_index:i z) chain_zs in
  let pickers =
    List.mapi
      (fun i (profile, domains) ->
        let pair, oracle = instance ks_skew.label in
        picker_row kconfig config ~pair ~oracle ~row_index:i profile ~domains)
      picker_cells
  in
  let control =
    if with_control then
      let _, oracle = instance ks_skew.label in
      negative_control kconfig config ~oracle
    else { Kernel.name = "disabled"; statistic = 0.; dof = 0; p_value = 1.; attempts = 0; passed = false }
  in
  let all_pass =
    List.for_all (fun r -> r.outcome.Kernel.passed) results
    && List.for_all (fun (_, _, o) -> o.Kernel.passed) aggregates
    && List.for_all (fun (_, o) -> o.Kernel.passed) chains
    && List.for_all (fun (_, _, o) -> o.Kernel.passed) pickers
    && (not with_control || not control.Kernel.passed)
  in
  { config; results; aggregates; chains; pickers; control; comparisons; all_pass }

(* ------------------------------------------------------------------ *)
(* Reporting                                                           *)

let p_cell p = Printf.sprintf "%.2e" p

let report summary =
  let rows =
    List.map
      (fun { cell; join_size; draws; outcome } ->
        [
          Strategy.name cell.strategy;
          Semantics.to_string cell.semantics;
          cell.skew.label;
          string_of_int cell.domains;
          string_of_int join_size;
          string_of_int draws;
          outcome.Kernel.name;
          p_cell outcome.Kernel.p_value;
          string_of_int outcome.Kernel.attempts;
          (if outcome.Kernel.passed then "PASS" else "FAIL");
        ])
      summary.results
    @ List.map
        (fun (name, domains, o) ->
          [
            name;
            "with-replacement";
            "aggregate";
            string_of_int domains;
            "-";
            string_of_int
              (max 15 (summary.config.trials / max 1 domains) * ks_sample_size);
            "KS";
            p_cell o.Kernel.p_value;
            string_of_int o.Kernel.attempts;
            (if o.Kernel.passed then "PASS" else "FAIL");
          ])
        summary.aggregates
    @ List.map
        (fun (name, (o : Kernel.outcome)) ->
          [
            name;
            "with-replacement";
            "chain";
            "1";
            "-";
            string_of_int (summary.config.trials * summary.config.r);
            o.Kernel.name;
            p_cell o.Kernel.p_value;
            string_of_int o.Kernel.attempts;
            (if o.Kernel.passed then "PASS" else "FAIL");
          ])
        summary.chains
    @ List.map
        (fun (name, domains, (o : Kernel.outcome)) ->
          [
            name;
            "with-replacement";
            "picker";
            string_of_int domains;
            "-";
            string_of_int
              (max 15 (summary.config.trials / max 1 domains) * summary.config.r);
            o.Kernel.name;
            p_cell o.Kernel.p_value;
            string_of_int o.Kernel.attempts;
            (if o.Kernel.passed then "PASS" else "FAIL");
          ])
        summary.pickers
    @ [
        [
          "biased control";
          "with-replacement";
          "negative";
          "1";
          "-";
          "-";
          summary.control.Kernel.name;
          p_cell summary.control.Kernel.p_value;
          string_of_int summary.control.Kernel.attempts;
          (if summary.control.Kernel.passed then "NOT REJECTED (BUG)" else "REJECTED (expected)");
        ];
      ]
  in
  {
    Report.title =
      Printf.sprintf
        "V7: statistical conformance (trials=%d r=%d alpha=%g Bonferroni m=%d retries=%d)"
        summary.config.trials summary.config.r summary.config.significance summary.comparisons
        summary.config.retries;
    header =
      [ "strategy"; "semantics"; "skew"; "domains"; "|J|"; "draws"; "test"; "p"; "att"; "verdict" ];
    rows;
  }

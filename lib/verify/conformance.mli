(** Conformance matrix runner.

    Sweeps every sampling strategy × semantics × workload skew ×
    parallel-domain count and holds each cell to the exact law derived
    by {!Oracle}, under the single statistical policy of {!Kernel}
    (Bonferroni across the whole matrix, seeded retries against
    flakes). Three kinds of rows:

    - {b Cells}: per-tuple goodness of fit. WR cells chi-square the
      pooled draws against uniform; WoR cells test the hypergeometric
      marginal inclusion counts; CF cells conjoin conditional
      uniformity with a z-test of the Binomial(|J|, f) total size.
    - {b Aggregates}: per strategy × estimator × domain count, a KS
      test of standardized estimates against the normal CDF — gating
      the paper's §1 use case (approximate aggregates over the
      sample), not just membership frequencies, over the pooled
      parallel path at every matrix width. Three estimators per
      strategy: the Horvitz–Thompson SUM, the Horvitz–Thompson COUNT
      of a selection predicate, and the sample-mean AVG.
    - {b Chains}: the 3-relation chain walker
      ({!Rsj_core.Chain_sample}) chi-squared against the uniform law
      over the exactly enumerated chain join, one row per chain skew.
    - {b Negative control}: a deliberately biased WR sampler
      ({!Rsj_core.Negative.biased_wr_draw}) run through the same
      kernel; the run only passes when the control is {e rejected},
      proving the tests have power at the configured sample sizes. *)

open Rsj_relation
module Strategy := Rsj_core.Strategy
module Semantics := Rsj_core.Semantics

type skew = { label : string; z1 : float; z2 : float }

val default_skews : skew list
(** Uniform (z=0) and the paper's skewed z1=1, z2=2 cell. *)

type config = {
  trials : int;  (** Independent samples pooled per cell attempt. *)
  r : int;  (** Requested sample size per trial. *)
  n1 : int;  (** Outer-table rows. *)
  n2 : int;  (** Inner-table rows. *)
  domain : int;  (** Join-attribute domain size. *)
  seed : int;  (** Root of every derived deterministic stream. *)
  significance : float;  (** Family-wise error budget. *)
  retries : int;  (** Kernel retries per outcome. *)
}

val default_config : unit -> config
(** Fast-tier defaults (trials=60, r=16, 40×80 tables, domain 6,
    alpha=0.01, 2 retries). [RSJ_CONF_TRIALS] overrides [trials];
    raises [Invalid_argument] if it is set but not a positive
    integer. *)

type cell = {
  strategy : Strategy.t;
  semantics : Semantics.t;
  skew : skew;
  domains : int;
}

type cell_result = {
  cell : cell;
  join_size : int;
  draws : int;  (** Total tuples drawn in the last attempt. *)
  outcome : Kernel.outcome;
}

val default_domain_counts : int list
(** [\[1; 2; 4\]] per the acceptance matrix. *)

val matrix :
  ?strategies:Strategy.t list ->
  ?semantics:Semantics.t list ->
  ?skews:skew list ->
  ?domain_counts:int list ->
  unit ->
  cell list
(** The full cross product (default: every strategy × {WR, WoR, CF} ×
    {!default_skews} × {!default_domain_counts} = 144 × |skews|
    cells). *)

type estimator = Sum | Count | Avg
(** Aggregate estimators KS-gated per strategy: Horvitz–Thompson SUM,
    Horvitz–Thompson COUNT of a selection predicate (even outer row
    id), and the sample-mean AVG. *)

val all_estimators : estimator list
val estimator_label : estimator -> string

val default_chain_skews : float list
(** Zipf parameters of the chain rows ([\[0.5; 2.0\]]). *)

type picker_profile = {
  plabel : string;  (** Row label, e.g. ["histogram-only"]. *)
  availability : Strategy.availability;
}
(** A declared catalog state handed to the cost-based picker
    ({!Rsj_optimizer.Picker}): the picker chooses a strategy under this
    profile and the chosen strategy's WR law is gated like any cell. *)

val default_picker_profiles : picker_profile list
(** Four states spanning Table 1's columns: ["full"] (everything),
    ["no-index"] (statistics + histogram), ["histogram-only"], and
    ["none"] (Naive territory). *)

type summary = {
  config : config;
  results : cell_result list;
  aggregates : (string * int * Kernel.outcome) list;
      (** Strategy × estimator × domain count → (label, domains, KS
          row): the estimator laws are gated over the parallel path at
          every domain count in the matrix, not just d = 1. *)
  chains : (string * Kernel.outcome) list;  (** Chain skew → chi-square row. *)
  pickers : (string * int * Kernel.outcome) list;
      (** Picker profile × domain count → (["picker[profile->chosen]"],
          domains, chi-square row): the strategy the picker chose under
          that catalog profile, held to the WR uniform law over the
          parallel path. *)
  control : Kernel.outcome;
  comparisons : int;  (** Bonferroni divisor actually applied. *)
  all_pass : bool;
      (** Every cell, aggregate, chain and picker row passed AND the
          control was rejected. *)
}

val run :
  ?config:config ->
  ?cells:cell list ->
  ?with_aggregates:bool ->
  ?with_chains:bool ->
  ?with_control:bool ->
  ?with_pickers:bool ->
  ?picker_profiles:picker_profile list ->
  unit ->
  summary
(** Execute the sweep. Workload pairs and oracles are built once per
    skew; every cell attempt re-derives its own seed from
    [config.seed], the cell index and the attempt number, so the whole
    run is reproducible and retries are independent. *)

val wr_uniformity :
  ?config:Kernel.config ->
  trials:int ->
  universe:Tuple.t array ->
  draw:(attempt:int -> unit -> Tuple.t array) ->
  unit ->
  Kernel.outcome
(** Reusable WR-uniformity check over an explicit universe: pools
    [trials] batches from [draw ~attempt ()] and chi-squares them
    against the uniform law, with the kernel's bucketing and retry
    policy. [draw ~attempt] must return a fresh deterministic sampler
    for that attempt. This is what {!run}'s WR cells use, exposed so
    tests (e.g. the parallel runtime's and the chain walker's) share
    the exact policy instead of hand-rolling thresholds. *)

val report : summary -> Rsj_harness.Report.t
(** Machine-readable table: one row per cell, per aggregate KS row,
    and the negative control last ([REJECTED (expected)] when the
    biased sampler was caught). Render with
    {!Rsj_harness.Report.print} or {!Rsj_harness.Report.to_csv}. *)

(** Online statistical-quality monitor for the serving path.

    Streams served join-attribute values into per-stream window
    counters and periodically chi-squares each window against the
    expected marginal P(A = v) = m1(v) m2(v) / |J| derived from the
    cached frequency tables. One stream per (fingerprint-pair,
    strategy, semantics) key. Alerts latch; the lifetime false-alert
    budget per stream is bounded by [significance] via alpha spending
    (window k tested at significance / (k (k+1))). Draws outside the
    join support alert immediately.

    Exports [rsj_quality_pvalue{stream}] /
    [rsj_quality_stream_alert{stream}] gauges plus the aggregate
    [rsj_quality_alert]. *)

open Rsj_relation

type t
type law

val create : ?window:int -> ?significance:float -> ?min_expected:float -> unit -> t
(** Defaults: window from RSJ_QUALITY_WINDOW (512 draws), significance
    from RSJ_QUALITY_ALPHA (0.01), min_expected 5.0. *)

val window : t -> int

val law_of_frequencies :
  left:Rsj_stats.Frequency.t -> right:Rsj_stats.Frequency.t -> law option
(** The WR join-value marginal from the two frequency tables; [None]
    when the join is empty (nothing to monitor). *)

val support_size : law -> int
val join_size : law -> float

val observe : t -> key:string -> law:law -> Value.t array -> unit
(** Fold one served sample's join-attribute values into stream [key],
    closing and testing windows as they fill. *)

val any_alert : t -> bool

type stream_stats = {
  st_key : string;
  st_seen : int;
  st_foreign : int;
  st_windows : int;
  st_last_p : float;  (** nan before the first completed window *)
  st_alert : bool;
}

val stats : t -> stream_stats list
(** Sorted by stream key. *)

val reset : t -> unit
(** Zero all streams and unlatch alerts (test hook). *)

(** Exact join-distribution oracle.

    Every strategy's correctness claim is distributional: its output
    must follow the law of [sample(R1 ⋈ R2, f)] under the chosen
    semantics (paper §3). The oracle enumerates the join result
    exactly — affordable at test scale — and derives the target
    per-tuple law for each semantics, giving the distribution-test
    kernel ({!Kernel}) its expected counts:

    - WR: [r] iid uniform draws per trial; every join tuple expects
      [draws/|J|] observations.
    - WoR: a uniform size-[min r |J|] subset per trial; every tuple is
      included with probability [min r |J| / |J|] (the hypergeometric
      marginal), so cell counts over [trials] trials expect
      [trials·min(r,|J|)/|J|].
    - CF: every tuple independently included with probability [f];
      cell counts expect [trials·f] and the total size is
      Binomial(|J|, f) per trial ({!Rsj_core.Semantics.expected_size}).

    Also enumerates k-relation chain joins ({!of_chain}) so the
    {!Rsj_core.Chain_sample} walker is held to the same gate. *)

open Rsj_relation

type t

val of_universe : Tuple.t array -> t
(** Oracle over an externally enumerated join result (e.g. a shard of a
    larger join, or a universe produced by a reference implementation).
    Raises [Invalid_argument] on duplicate tuples. *)

val of_relations : left:Relation.t -> right:Relation.t -> left_key:int -> right_key:int -> t
(** Enumerate [left ⋈ right] by hash join. Raises [Invalid_argument]
    when the join result contains duplicate tuples (cells must be
    distinguishable; the §8.1 tables' unique rid columns guarantee
    this). *)

val of_env : Rsj_core.Strategy.env -> t
(** {!of_relations} on a prepared strategy environment. *)

val of_chain : Rsj_core.Chain_sample.spec -> t
(** Enumerate a k-relation chain join by nested hash lookups, with the
    same column addressing as the spec ([join_keys.(i) = (a, b)]:
    column [a] of relation [i] equals column [b] of relation [i+1]). *)

val universe : t -> Tuple.t array
(** The enumerated join result; index = chi-square cell. *)

val size : t -> int
val cell : t -> Tuple.t -> int option

val counter : t -> int array
(** A fresh all-zero observation array, one slot per join tuple. *)

val observe : t -> int array -> Tuple.t -> unit
(** Classify one sampled tuple into its cell. Raises
    [Invalid_argument] when the tuple is not in the join — a
    correctness bug strictly worse than distributional bias. *)

val wr_expected : t -> draws:int -> float array
(** Expected cell counts after [draws] total WR draws. *)

val wor_inclusion : t -> r:int -> float
(** Per-tuple inclusion probability of a size-[min r |J|] WoR sample. *)

val wor_expected : t -> trials:int -> r:int -> float array
(** Expected cell counts after [trials] independent WoR samples. *)

val cf_expected : t -> trials:int -> f:float -> float array
(** Expected cell counts after [trials] independent CF passes. *)

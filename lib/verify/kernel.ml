module Stats_math = Rsj_util.Stats_math

type config = {
  significance : float;
  comparisons : int;
  retries : int;
  min_expected : float;
}

let default = { significance = 0.01; comparisons = 1; retries = 2; min_expected = 5. }

let threshold config =
  if config.significance <= 0. || config.significance >= 1. then
    invalid_arg "Kernel.threshold: significance outside (0,1)";
  if config.comparisons < 1 then invalid_arg "Kernel.threshold: comparisons < 1";
  config.significance /. float_of_int config.comparisons

type stat_test = Chi_square | G_test

let test_name = function Chi_square -> "chi-square" | G_test -> "G-test"

type outcome = {
  name : string;
  statistic : float;
  dof : int;
  p_value : float;
  attempts : int;
  passed : bool;
}

let bucket ~min_expected ~expected ~observed =
  let k = Array.length expected in
  if Array.length observed <> k then invalid_arg "Kernel.bucket: length mismatch";
  if k = 0 then invalid_arg "Kernel.bucket: no cells";
  (* Greedily coalesce adjacent cells until each bucket's expected
     count reaches the floor; a trailing underfull bucket is folded
     into its predecessor. Keeps the asymptotic chi-square/G null
     distribution honest when per-cell expectations are small. *)
  let exp_out = ref [] and obs_out = ref [] in
  let e_acc = ref 0. and o_acc = ref 0 in
  for i = 0 to k - 1 do
    e_acc := !e_acc +. expected.(i);
    o_acc := !o_acc + observed.(i);
    if !e_acc >= min_expected then begin
      exp_out := !e_acc :: !exp_out;
      obs_out := !o_acc :: !obs_out;
      e_acc := 0.;
      o_acc := 0
    end
  done;
  (match (!exp_out, !e_acc > 0. || !o_acc > 0) with
  | [], _ ->
      exp_out := [ !e_acc ];
      obs_out := [ !o_acc ]
  | e :: rest, true ->
      exp_out := (e +. !e_acc) :: rest;
      (match !obs_out with
      | o :: orest -> obs_out := (o + !o_acc) :: orest
      | [] -> assert false)
  | _, false -> ());
  (Array.of_list (List.rev !exp_out), Array.of_list (List.rev !obs_out))

let goodness_of_fit config test ~expected ~observed =
  let expected, observed = bucket ~min_expected:config.min_expected ~expected ~observed in
  match test with
  | Chi_square -> Stats_math.chi_square_test ~expected ~observed
  | G_test -> Stats_math.g_test ~expected ~observed

(* Seeded multi-trial repetition: under H0 an attempt rejects with
   probability [threshold], so requiring every one of [1 + retries]
   independent attempts to reject drives the false-failure rate to
   threshold^(1+retries) — a single unlucky draw cannot flake CI —
   while a genuinely biased sampler rejects every attempt. *)
let run_custom config ~name ~attempt =
  let thr = threshold config in
  let max_attempts = 1 + max 0 config.retries in
  let rec go i =
    let statistic, dof, p_value = attempt ~attempt:i in
    if p_value >= thr then { name; statistic; dof; p_value; attempts = i + 1; passed = true }
    else if i + 1 >= max_attempts then
      { name; statistic; dof; p_value; attempts = i + 1; passed = false }
    else go (i + 1)
  in
  go 0

let run config test ~sample =
  run_custom config ~name:(test_name test) ~attempt:(fun ~attempt ->
      let expected, observed = sample ~attempt in
      let r = goodness_of_fit config test ~expected ~observed in
      (r.Stats_math.statistic, r.Stats_math.dof, r.Stats_math.p_value))

let run_ks config ~name ~cdf ~sample =
  run_custom config ~name ~attempt:(fun ~attempt ->
      let samples = sample ~attempt in
      let r = Stats_math.ks_test ~cdf ~samples in
      (r.Stats_math.ks_statistic, r.Stats_math.n, r.Stats_math.ks_p_value))

let z_p_value z = 2. *. Stats_math.normal_sf (Float.abs z)

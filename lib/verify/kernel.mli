(** Distribution-test kernel.

    One statistical policy for every conformance check in the repo:

    - {b Tests}: Pearson chi-square and the likelihood-ratio G-test for
      cell counts against an oracle law, one-sample Kolmogorov–Smirnov
      for continuous aggregate estimates.
    - {b Bucketing}: adjacent cells are coalesced until each bucket's
      expected count reaches [min_expected], so the asymptotic null
      distributions stay valid even when trials × r is small relative
      to |J|.
    - {b Bonferroni}: a run evaluating [comparisons] outcomes tests each
      at [significance / comparisons], bounding the family-wise false
      failure rate by [significance].
    - {b Seeded repetition}: an outcome fails only when [1 + retries]
      independently seeded attempts all reject, driving the flake rate
      to [threshold^(1+retries)] while biased samplers still fail every
      attempt. The attempt index is passed to the caller so each retry
      draws fresh, deterministic randomness. *)

type config = {
  significance : float;  (** Family-wise error budget (default 0.01). *)
  comparisons : int;  (** Bonferroni divisor: outcomes in the family. *)
  retries : int;  (** Extra independently-seeded attempts (default 2). *)
  min_expected : float;  (** Bucketing floor for expected counts (5.0). *)
}

val default : config

val threshold : config -> float
(** Per-test significance [significance / comparisons]. Raises
    [Invalid_argument] on a degenerate config. *)

type stat_test = Chi_square | G_test

val test_name : stat_test -> string

type outcome = {
  name : string;  (** Which test produced the verdict. *)
  statistic : float;  (** Last attempt's statistic (KS: D_n). *)
  dof : int;  (** Last attempt's dof (KS: sample count). *)
  p_value : float;  (** Last attempt's p-value. *)
  attempts : int;  (** Attempts actually run (stops at first pass). *)
  passed : bool;  (** Whether any attempt failed to reject H0. *)
}

val bucket :
  min_expected:float -> expected:float array -> observed:int array -> float array * int array
(** Coalesce adjacent cells until every bucket expects at least
    [min_expected]; the trailing underfull remainder joins the last
    bucket. Totals are preserved. *)

val goodness_of_fit :
  config ->
  stat_test ->
  expected:float array ->
  observed:int array ->
  Rsj_util.Stats_math.chi_square_result
(** One bucketed chi-square / G test (no retry policy applied). *)

val run :
  config -> stat_test -> sample:(attempt:int -> float array * int array) -> outcome
(** Goodness-of-fit with the retry policy: [sample ~attempt] returns
    (expected, observed) cell counts for that attempt's fresh seed. *)

val run_custom :
  config -> name:string -> attempt:(attempt:int -> float * int * float) -> outcome
(** Generic retry harness: [attempt] returns
    (statistic, dof, p_value). Build composite per-cell verdicts (e.g.
    CF's uniformity × size-law conjunction) on top of this. *)

val run_ks :
  config -> name:string -> cdf:(float -> float) -> sample:(attempt:int -> float array) -> outcome
(** One-sample KS with the retry policy, for aggregate-estimate laws
    (e.g. standardized Horvitz–Thompson sums against the normal CDF). *)

val z_p_value : float -> float
(** Two-sided p-value of a standard-normal z statistic. *)

(* Online statistical-quality monitor for the serving path.

   The paper's guarantees are distributional: a served WR sample of the
   join is only correct if the join-attribute value of each drawn tuple
   follows the marginal law

       P(A = v) = m1(v) * m2(v) / |J|

   where m1/m2 are the relations' frequency tables and
   |J| = sum_v m1(v) m2(v). The daemon already keeps those tables warm
   in the structure cache, so the expected law is free; this module
   folds the *served* sample output into streaming per-stream counters
   and periodically runs the Kernel chi-square of observed window
   counts against that law.

   One stream per (fingerprint-pair, strategy, semantics): different
   strategies (and WoR/CF semantics) are monitored separately so a
   regression in one draw path cannot hide in another's traffic. WoR
   and CF windows are tested against the same WR marginal — exact for
   WR, and the per-draw expectation under WoR/CF for the r << |J|
   regime the daemon serves; the monitor is a drift detector, not a
   proof.

   Alert policy:
   - A join-attribute value outside the join support (m1*m2 = 0) is a
     correctness bug, not noise: the stream alerts immediately.
   - Chi-square windows use alpha spending over the unbounded window
     sequence: window k (1-based) is tested at
     significance / (k * (k + 1)), whose sum over all k is exactly
     [significance] — the lifetime false-alert budget per stream holds
     no matter how long the daemon runs.
   - Alerts latch: once tripped, a stream stays red until [reset]
     (operators should treat an alert as "drain and investigate", not
     as a transient). *)

open Rsj_relation
module Frequency = Rsj_stats.Frequency
module Obs = Rsj_obs

type law = {
  index : (Value.t, int) Hashtbl.t;  (* join value -> cell *)
  probs : float array;  (* P(A = v) per cell, sums to 1 *)
  join_size : float;  (* |J| = sum m1*m2 *)
}

let law_of_frequencies ~left ~right =
  let cells = ref [] in
  let total = ref 0. in
  Frequency.iter left (fun v m1 ->
      let m2 = Frequency.frequency right v in
      if m2 > 0 then begin
        let w = float_of_int m1 *. float_of_int m2 in
        cells := (v, w) :: !cells;
        total := !total +. w
      end);
  if !total <= 0. then None
  else begin
    let arr = Array.of_list (List.rev !cells) in
    let index = Hashtbl.create (Array.length arr) in
    let probs =
      Array.mapi
        (fun i (v, w) ->
          Hashtbl.replace index v i;
          w /. !total)
        arr
    in
    Some { index; probs; join_size = !total }
  end

let support_size law = Array.length law.probs
let join_size law = law.join_size

type stream = {
  key : string;
  law : law;
  counts : int array;  (* current window's observed cells *)
  mutable in_window : int;  (* draws accumulated in current window *)
  mutable seen : int;  (* lifetime draws *)
  mutable foreign : int;  (* lifetime draws outside the join support *)
  mutable windows : int;  (* chi-square windows completed *)
  mutable last_p : float;  (* p-value of the last completed window; nan before *)
  mutable alert : bool;  (* latched *)
  pvalue_g : Obs.Registry.gauge;
  alert_g : Obs.Registry.gauge;
}

type t = {
  window : int;  (* draws per chi-square window *)
  significance : float;  (* lifetime false-alert budget per stream *)
  min_expected : float;  (* Kernel bucketing floor *)
  streams : (string, stream) Hashtbl.t;
  any_alert_g : Obs.Registry.gauge;
}

let default_window = 512
let default_significance = 0.01

let env_int name default =
  match Sys.getenv_opt name with
  | Some s when String.trim s <> "" -> (
      match int_of_string_opt (String.trim s) with
      | Some v when v > 0 -> v
      | _ -> invalid_arg (Printf.sprintf "%s must be a positive integer, got %S" name s))
  | _ -> default

let env_float name default =
  match Sys.getenv_opt name with
  | Some s when String.trim s <> "" -> (
      match float_of_string_opt (String.trim s) with
      | Some v when v > 0. && v < 1. -> v
      | _ -> invalid_arg (Printf.sprintf "%s must be in (0,1), got %S" name s))
  | _ -> default

let create ?window ?significance ?(min_expected = 5.) () =
  let window =
    match window with Some w -> w | None -> env_int "RSJ_QUALITY_WINDOW" default_window
  in
  let significance =
    match significance with
    | Some s -> s
    | None -> env_float "RSJ_QUALITY_ALPHA" default_significance
  in
  {
    window;
    significance;
    min_expected;
    streams = Hashtbl.create 8;
    any_alert_g =
      Obs.Registry.gauge ~help:"1 when any quality stream has a latched alert" "rsj_quality_alert";
  }

let window t = t.window

let stream_for t ~key ~law =
  match Hashtbl.find_opt t.streams key with
  | Some s -> s
  | None ->
      let s =
        {
          key;
          law;
          counts = Array.make (Array.length law.probs) 0;
          in_window = 0;
          seen = 0;
          foreign = 0;
          windows = 0;
          last_p = Float.nan;
          alert = false;
          pvalue_g =
            Obs.Registry.gauge ~help:"Last window's chi-square p-value per quality stream"
              ~labels:[ ("stream", key) ] "rsj_quality_pvalue";
          alert_g =
            Obs.Registry.gauge ~help:"1 when the quality stream's alert is latched"
              ~labels:[ ("stream", key) ] "rsj_quality_stream_alert";
        }
      in
      Hashtbl.replace t.streams key s;
      s

let any_alert t = Hashtbl.fold (fun _ s acc -> acc || s.alert) t.streams false

let publish_any t =
  Obs.Registry.set_gauge t.any_alert_g (if any_alert t then 1. else 0.)

let trip s =
  s.alert <- true;
  Obs.Registry.set_gauge s.alert_g 1.

(* Alpha spending: window k (1-based) gets significance / (k*(k+1));
   sum over all k is exactly the lifetime budget. *)
let window_threshold t k = t.significance /. (float_of_int k *. float_of_int (k + 1))

let close_window t s =
  s.windows <- s.windows + 1;
  let total = s.in_window in
  let expected = Array.map (fun p -> p *. float_of_int total) s.law.probs in
  let cfg =
    {
      Kernel.significance = t.significance;
      comparisons = 1;
      retries = 0;
      min_expected = t.min_expected;
    }
  in
  let r = Kernel.goodness_of_fit cfg Kernel.Chi_square ~expected ~observed:s.counts in
  s.last_p <- r.Rsj_util.Stats_math.p_value;
  Obs.Registry.set_gauge s.pvalue_g s.last_p;
  if s.last_p < window_threshold t s.windows then trip s;
  Array.fill s.counts 0 (Array.length s.counts) 0;
  s.in_window <- 0

(* Fold one served sample's join-attribute values into the stream for
   [key], closing (and testing) windows as they fill. *)
let observe t ~key ~law values =
  let s = stream_for t ~key ~law in
  Array.iter
    (fun v ->
      s.seen <- s.seen + 1;
      match Hashtbl.find_opt s.law.index v with
      | Some cell ->
          s.counts.(cell) <- s.counts.(cell) + 1;
          s.in_window <- s.in_window + 1;
          if s.in_window >= t.window then close_window t s
      | None ->
          (* Outside the join support: cannot be produced by a correct
             sampler — alert immediately, don't wait for a window. *)
          s.foreign <- s.foreign + 1;
          trip s)
    values;
  publish_any t

type stream_stats = {
  st_key : string;
  st_seen : int;
  st_foreign : int;
  st_windows : int;
  st_last_p : float;
  st_alert : bool;
}

let stats t =
  Hashtbl.fold
    (fun _ s acc ->
      {
        st_key = s.key;
        st_seen = s.seen;
        st_foreign = s.foreign;
        st_windows = s.windows;
        st_last_p = s.last_p;
        st_alert = s.alert;
      }
      :: acc)
    t.streams []
  |> List.sort (fun a b -> compare a.st_key b.st_key)

let reset t =
  Hashtbl.iter
    (fun _ s ->
      Array.fill s.counts 0 (Array.length s.counts) 0;
      s.in_window <- 0;
      s.seen <- 0;
      s.foreign <- 0;
      s.windows <- 0;
      s.last_p <- Float.nan;
      s.alert <- false;
      Obs.Registry.set_gauge s.alert_g 0.)
    t.streams;
  publish_any t

(* Int-specialised hash index over a flat key column — the data-plane
   twin of Hash_index. Open addressing over flat int arrays: no Vtbl
   functor dispatch, no boxed keys, no per-bucket blocks. Buckets are a
   CSR layout (starts/rows) with row ids in storage order, which is the
   same in-bucket order Hash_index.build produces — a uniform pick from
   a bucket lands on the same row in both planes.

   This module is Value-free by design (enforced by the @box-hygiene
   alias): the Null sentinel is the literal min_int, shared with
   Column.null_key, and sentinel keys match nothing, mirroring the
   boxed plane's Null join semantics. *)

open Rsj_util

let sentinel = min_int (* = Column.null_key; literal keeps this module Value-free *)
let null_key = sentinel

(* 64-bit multiplicative mix, linear probing. The table never stores
   [sentinel], so an empty slot doubles as the miss marker. *)
let rec probe_from keys mask k i =
  let i = i land mask in
  let kk = Array.unsafe_get keys i in
  if kk = k || kk = sentinel then i else probe_from keys mask k (i + 1)

let slot_of keys mask k =
  let h = k * 0x2545F4914F6CDD1D in
  probe_from keys mask k ((h lxor (h lsr 31)) land mask)

let capacity_for n =
  let cap = ref 8 in
  while !cap < 2 * (n + 1) do
    cap := !cap * 2
  done;
  !cap

module Counter = struct
  type t = {
    mutable keys : int array; (* sentinel = empty slot *)
    mutable vals : int array;
    mutable mask : int;
    mutable count : int;
  }

  let create ?(capacity = 16) () =
    let cap = capacity_for capacity in
    { keys = Array.make cap sentinel; vals = Array.make cap 0; mask = cap - 1; count = 0 }

  let grow t =
    let old_keys = t.keys and old_vals = t.vals in
    let ncap = 2 * (t.mask + 1) in
    t.keys <- Array.make ncap sentinel;
    t.vals <- Array.make ncap 0;
    t.mask <- ncap - 1;
    for i = 0 to Array.length old_keys - 1 do
      let k = old_keys.(i) in
      if k <> sentinel then begin
        let s = slot_of t.keys t.mask k in
        t.keys.(s) <- k;
        t.vals.(s) <- old_vals.(i)
      end
    done

  let add t k d =
    if k = sentinel then invalid_arg "Int_index.Counter.add: sentinel key";
    let s = slot_of t.keys t.mask k in
    if Array.unsafe_get t.keys s = sentinel then begin
      t.keys.(s) <- k;
      t.vals.(s) <- d;
      t.count <- t.count + 1;
      if 2 * t.count > t.mask then grow t
    end
    else t.vals.(s) <- t.vals.(s) + d

  let get t k =
    if k = sentinel then 0
    else
      let s = slot_of t.keys t.mask k in
      if Array.unsafe_get t.keys s = sentinel then 0 else Array.unsafe_get t.vals s

  let cardinal t = t.count

  let iter f t =
    for i = 0 to t.mask do
      let k = Array.unsafe_get t.keys i in
      if k <> sentinel then f k (Array.unsafe_get t.vals i)
    done

  let fold f t init =
    let acc = ref init in
    iter (fun k v -> acc := f k v !acc) t;
    !acc
end

type t = {
  slot_keys : int array;
  slot_gid : int array;
  mask : int;
  starts : int array; (* length groups + 1; CSR offsets into rows *)
  rows : int array; (* row ids, storage order within each group *)
  groups : int;
  max_mult : int;
}

let build ?keep ~keys () =
  let n = Array.length keys in
  let cap = capacity_for n in
  let slot_keys = Array.make cap sentinel in
  let slot_gid = Array.make cap 0 in
  let mask = cap - 1 in
  let keep_key = match keep with None -> fun _ -> true | Some f -> f in
  (* Pass 1: assign gids in first-occurrence order, count group sizes. *)
  let counts = ref (Array.make 16 0) in
  let groups = ref 0 in
  let kept = ref 0 in
  for i = 0 to n - 1 do
    let k = Array.unsafe_get keys i in
    if k <> sentinel && keep_key k then begin
      incr kept;
      let s = slot_of slot_keys mask k in
      let g =
        if Array.unsafe_get slot_keys s = sentinel then begin
          slot_keys.(s) <- k;
          slot_gid.(s) <- !groups;
          if !groups >= Array.length !counts then begin
            let nc = Array.make (2 * Array.length !counts) 0 in
            Array.blit !counts 0 nc 0 (Array.length !counts);
            counts := nc
          end;
          incr groups;
          !groups - 1
        end
        else Array.unsafe_get slot_gid s
      in
      !counts.(g) <- !counts.(g) + 1
    end
  done;
  let g = !groups in
  let starts = Array.make (g + 1) 0 in
  let max_mult = ref 0 in
  for j = 0 to g - 1 do
    starts.(j + 1) <- starts.(j) + !counts.(j);
    if !counts.(j) > !max_mult then max_mult := !counts.(j)
  done;
  (* Pass 2: scatter row ids, preserving storage order per group. *)
  let rows = Array.make !kept 0 in
  let cursor = Array.copy starts in
  for i = 0 to n - 1 do
    let k = Array.unsafe_get keys i in
    if k <> sentinel && keep_key k then begin
      let gid = Array.unsafe_get slot_gid (slot_of slot_keys mask k) in
      rows.(cursor.(gid)) <- i;
      cursor.(gid) <- cursor.(gid) + 1
    end
  done;
  { slot_keys; slot_gid; mask; starts; rows; groups = g; max_mult = !max_mult }

let find_gid t k =
  if k = sentinel then -1
  else
    let s = slot_of t.slot_keys t.mask k in
    if Array.unsafe_get t.slot_keys s = sentinel then -1 else Array.unsafe_get t.slot_gid s

let gid_start t g = t.starts.(g)
let gid_multiplicity t g = t.starts.(g + 1) - t.starts.(g)
let row t j = t.rows.(j)
let multiplicity t k = match find_gid t k with -1 -> 0 | g -> gid_multiplicity t g

let random_row t rng k =
  (* Mirrors Hash_index.random_match: nothing drawn on a miss, one
     Prng.int on a hit (which itself draws nothing when the bucket is a
     singleton). *)
  match find_gid t k with
  | -1 -> -1
  | g ->
      let s = t.starts.(g) in
      t.rows.(s + Prng.int rng (t.starts.(g + 1) - s))

let group_count t = t.groups
let size t = Array.length t.rows
let max_multiplicity t = t.max_mult

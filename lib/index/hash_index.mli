(** Hash index from join-attribute value to row ids.

    This is the access structure Olken-Sample and Stream-Sample need on
    R2: given a value [v], enumerate or randomly pick one of the [m2(v)]
    matching tuples (paper §5.3, §6.1). NULL join values are excluded at
    build time, matching equi-join semantics. *)

open Rsj_relation

type t

val build : Relation.t -> key:int -> t
(** [build r ~key] indexes column [key] of [r] in one scan. *)

val build_parallel : Relation.t -> key:int -> domains:int -> t
(** [build_parallel r ~key ~domains] builds the identical index (same
    buckets, same row order) with both passes sharded across [domains]
    OCaml domains: per-shard multiplicity counts merge into per-shard
    bucket offsets, then each shard fills its own disjoint slice of the
    shared bucket arrays. [domains <= 1] falls back to {!build}. *)

val relation : t -> Relation.t
val key : t -> int

val lookup : t -> Value.t -> int array
(** Row ids of tuples whose key equals the probe value (shared array —
    do not mutate). Empty for misses and for [Null]. *)

val multiplicity : t -> Value.t -> int
(** [multiplicity t v] is m(v), the number of matching tuples. *)

val matching_tuples : t -> Value.t -> Tuple.t array
(** Freshly allocated array of the matching tuples — the paper's
    [Jt(R2)]. *)

val random_match : t -> Rsj_util.Prng.t -> Value.t -> Tuple.t option
(** [random_match t rng v] is a uniform random tuple among those with key
    [v] (one index probe plus one O(1) pick), or [None] when m(v) = 0.
    This is the Step 2(b) primitive of Stream-Sample and Olken-Sample. *)

val distinct_keys : t -> Value.t array
(** The distinct indexed values, in unspecified order. *)

val max_multiplicity : t -> int
(** Largest m(v) over the domain — the upper bound M of Olken-Sample. *)

val probe_count : t -> int
(** Number of probes served since construction ({!lookup},
    {!multiplicity}, {!matching_tuples}, {!random_match} each count 1);
    feeds the work model. *)

val int_plane : t -> Int_index.t option
(** The int-specialised twin of the bucket table, built whenever the
    key column admits a {!Column.int_view}. In-bucket row order matches
    the boxed buckets, so uniform picks agree between planes. *)

val note_probe : t -> unit
(** Count one probe served through the raw {!int_plane} (callers that
    walk the int-plane buckets directly still owe the work model a
    probe, like {!lookup} charges on the boxed side). *)

val multiplicity_key : t -> int -> int
(** {!multiplicity} through the int plane (one probe, like its boxed
    twin). Raises [Invalid_argument] when there is no int plane. *)

val random_match_row : t -> Rsj_util.Prng.t -> int -> int
(** {!random_match} through the int plane: a uniform matching row id,
    or -1 when m(v) = 0 — drawing from the generator exactly as the
    boxed twin does. Raises [Invalid_argument] when there is no int
    plane. *)

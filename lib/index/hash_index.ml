open Rsj_relation

module Vtbl = Hashtbl.Make (struct
  type t = Value.t

  let equal = Value.equal
  let hash = Value.hash
end)

(* One record per distinct value: the row ids plus the fill cursor used
   during construction. A single table serves both build passes, where
   the previous design kept separate counts/buckets/fill tables and paid
   three probes per row during the fill pass. *)
type bucket = { rows : int array; mutable fill : int }

type t = {
  relation : Relation.t;
  key : int;
  buckets : bucket Vtbl.t;  (* value -> row ids, in row order *)
  mutable max_mult : int;
  probes : int Atomic.t;  (* probed concurrently by the parallel runtime *)
  int_plane : Int_index.t option;  (* data-plane twin when the column is int-viewable *)
}

(* The int plane is built whenever the key column admits a flat int
   view, independently of the Column.mode switch: the mode gates which
   plane the strategies consult, and the bench toggles it on prebuilt
   indexes. In-bucket row order matches the boxed buckets (storage
   order), so uniform in-bucket picks agree between planes. *)
let build_int_plane relation ~key =
  match Column.int_view relation ~col:key with
  | Some keys -> Some (Int_index.build ~keys ())
  | None -> None

let count_range relation ~key ~lo ~hi () =
  let counts = Vtbl.create 1024 in
  for i = lo to hi - 1 do
    let v = Tuple.attr (Relation.get relation i) key in
    if not (Value.is_null v) then
      Vtbl.replace counts v (1 + Option.value ~default:0 (Vtbl.find_opt counts v))
  done;
  counts

let alloc_buckets counts =
  let buckets = Vtbl.create (Vtbl.length counts) in
  let max_mult = ref 0 in
  Vtbl.iter
    (fun v c ->
      Vtbl.replace buckets v { rows = Array.make c (-1); fill = 0 };
      if c > !max_mult then max_mult := c)
    counts;
  (buckets, !max_mult)

let build relation ~key =
  (* Two-pass build: count multiplicities, then fill fixed-size buckets.
     Avoids per-value list reversal and keeps row ids in storage order. *)
  let counts = count_range relation ~key ~lo:0 ~hi:(Relation.cardinality relation) () in
  let buckets, max_mult = alloc_buckets counts in
  Relation.iteri relation (fun i row ->
      let v = Tuple.attr row key in
      if not (Value.is_null v) then begin
        let b = Vtbl.find buckets v in
        b.rows.(b.fill) <- i;
        b.fill <- b.fill + 1
      end);
  { relation; key; buckets; max_mult; probes = Atomic.make 0;
    int_plane = build_int_plane relation ~key }

let build_parallel relation ~key ~domains =
  if domains <= 1 then build relation ~key
  else begin
    let n = Relation.cardinality relation in
    let bounds = Array.init (domains + 1) (fun k -> k * n / domains) in
    (* Pass 1, parallel: count each contiguous row shard separately,
       one pooled worker per shard. *)
    let parts =
      Domain_pool.run (Domain_pool.global ()) ~domains (fun k ->
          count_range relation ~key ~lo:bounds.(k) ~hi:bounds.(k + 1) ())
    in
    (* Merge the per-shard count tables into per-shard starting offsets
       (prefix sums in shard order); the running table ends up holding
       the global multiplicities. *)
    let running = Vtbl.create (Vtbl.length parts.(0)) in
    let cursors =
      Array.map
        (fun part ->
          let cur = Vtbl.create (Vtbl.length part) in
          Vtbl.iter
            (fun v c ->
              let base = Option.value ~default:0 (Vtbl.find_opt running v) in
              Vtbl.replace cur v (ref base);
              Vtbl.replace running v (base + c))
            part;
          cur)
        parts
    in
    let buckets, max_mult = alloc_buckets running in
    (* Pass 2, parallel: each shard writes its rows into its own offset
       range of the shared bucket arrays — disjoint slots, no locking.
       [buckets] is read-only from here on, so concurrent lookups into
       it are safe. *)
    let fill_range k lo hi () =
      let cur = cursors.(k) in
      for i = lo to hi - 1 do
        let v = Tuple.attr (Relation.get relation i) key in
        if not (Value.is_null v) then begin
          let b = Vtbl.find buckets v in
          let c = Vtbl.find cur v in
          b.rows.(!c) <- i;
          incr c
        end
      done
    in
    ignore
      (Domain_pool.run (Domain_pool.global ()) ~domains (fun k ->
           fill_range k bounds.(k) bounds.(k + 1) ()));
    Vtbl.iter (fun _ b -> b.fill <- Array.length b.rows) buckets;
    { relation; key; buckets; max_mult; probes = Atomic.make 0;
      int_plane = build_int_plane relation ~key }
  end

let relation t = t.relation
let key t = t.key

let empty_rows : int array = [||]

let lookup t v =
  Atomic.incr t.probes;
  if Value.is_null v then empty_rows
  else match Vtbl.find_opt t.buckets v with Some b -> b.rows | None -> empty_rows

let multiplicity t v = Array.length (lookup t v)

let matching_tuples t v = Array.map (Relation.get t.relation) (lookup t v)

let random_match t rng v =
  let ids = lookup t v in
  let m = Array.length ids in
  if m = 0 then None else Some (Relation.get t.relation ids.(Rsj_util.Prng.int rng m))

let distinct_keys t =
  let out = Array.make (Vtbl.length t.buckets) Value.Null in
  let i = ref 0 in
  Vtbl.iter
    (fun v _ ->
      out.(!i) <- v;
      incr i)
    t.buckets;
  out

let max_multiplicity t = t.max_mult
let probe_count t = Atomic.get t.probes

(* Data-plane accessors: same probe accounting as their boxed twins
   (lookup costs one probe regardless of plane). *)
let int_plane t = t.int_plane
let note_probe t = Atomic.incr t.probes

let multiplicity_key t k =
  Atomic.incr t.probes;
  match t.int_plane with
  | Some ip -> Int_index.multiplicity ip k
  | None -> invalid_arg "Hash_index.multiplicity_key: no int plane"

let random_match_row t rng k =
  Atomic.incr t.probes;
  match t.int_plane with
  | Some ip -> Int_index.random_row ip rng k
  | None -> invalid_arg "Hash_index.random_match_row: no int plane"

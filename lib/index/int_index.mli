(** Int-specialised hash structures over flat key columns — the
    data-plane twin of {!Hash_index}.

    Keys are raw ints from a {!Column.int_view} extraction; the [Null]
    sentinel ([min_int]) matches nothing. Buckets are CSR
    ([starts]/[rows]) with row ids in storage order — the same in-bucket
    order {!Hash_index.build} produces, so a uniform in-bucket pick
    lands on the same row in both planes. Value-free by construction
    (pinned by the [@box-hygiene] alias). *)

(** Growable open-addressing int→int accumulator (counts, or any small
    int payload). [get] of an absent or sentinel key is 0. *)
module Counter : sig
  type t

  val create : ?capacity:int -> unit -> t
  val add : t -> int -> int -> unit
  (** [add t k d] adds [d] to [k]'s value (insert at [d] when absent).
      Raises [Invalid_argument] on the sentinel key. *)

  val get : t -> int -> int
  val cardinal : t -> int
  val iter : (int -> int -> unit) -> t -> unit
  val fold : (int -> int -> 'a -> 'a) -> t -> 'a -> 'a
end

val null_key : int
(** The sentinel ([min_int] = [Column.null_key]): matches nothing. *)

type t

val build : ?keep:(int -> bool) -> keys:int array -> unit -> t
(** [build ~keys ()] indexes row ids [0 .. n)] by their key. Sentinel
    keys and rows whose key fails [keep] are excluded. O(n), two
    passes. *)

val find_gid : t -> int -> int
(** Dense group id of a key, or -1 (misses and the sentinel). *)

val gid_start : t -> int -> int
val gid_multiplicity : t -> int -> int
val row : t -> int -> int
(** CSR accessors: group [g]'s rows are [row t j] for
    [j ∈ \[gid_start t g, gid_start t g + gid_multiplicity t g)]. *)

val multiplicity : t -> int -> int
(** Bucket size by key; 0 on a miss. *)

val random_row : t -> Rsj_util.Prng.t -> int -> int
(** Uniform row id among the key's matches, or -1 on a miss — drawing
    from the generator exactly as {!Hash_index.random_match} does
    (nothing on a miss or singleton bucket). *)

val group_count : t -> int
val size : t -> int
(** Indexed (kept) row count. *)

val max_multiplicity : t -> int

open Rsj_relation
module Obs = Rsj_obs
module Frequency = Rsj_stats.Frequency
module Histogram = Rsj_stats.Histogram
module Hash_index = Rsj_index.Hash_index

(* What is stored. The histogram kind carries the threshold fraction
   (as its IEEE bits, so the key stays an immediate) — distinct
   fractions are distinct structures. The chain kind carries the
   member uids, the flattened join-key pairs and the draw plane
   (structural equality/hash apply), keyed under the root relation's
   uid; its entry fingerprint mixes every member's fingerprint, so a
   mutation of ANY member relation invalidates the chain. *)
type kind =
  | K_hash_index of int  (* key column *)
  | K_frequency of int
  | K_histogram of int * int  (* key column, fraction bits *)
  | K_int_view of int
  | K_chain of int array * int array * int  (* member uids, join keys, plane *)

let kind_name = function
  | K_hash_index _ -> "hash_index"
  | K_frequency _ -> "frequency"
  | K_histogram _ -> "histogram"
  | K_int_view _ -> "int_view"
  | K_chain _ -> "chain"

type packed =
  | P_hash_index of Hash_index.t
  | P_frequency of Frequency.t
  | P_histogram of Histogram.End_biased.t
  | P_int_view of int array option
  | P_chain of Rsj_core.Chain_sample.t

type entry = {
  fp : int;  (* Relation.fingerprint at build time *)
  bytes : int;
  value : packed;
  mutable tick : int;  (* LRU clock at last touch *)
}

type t = {
  budget : int option;
  table : (int * kind, entry) Hashtbl.t;  (* key: relation uid × kind *)
  kind_counts : (string, int ref * int ref) Hashtbl.t;  (* kind -> hits, misses *)
  mutable clock : int;
  mutable total_bytes : int;
  mutable hits : int;
  mutable misses : int;
  mutable evictions : int;
  mutable invalidations : int;
  lock : Mutex.t;
}

type stats = {
  hits : int;
  misses : int;
  evictions : int;
  invalidations : int;
  entries : int;
  bytes : int;
  by_kind : (string * (int * int)) list;
}

(* ------------------------------------------------------------------ *)
(* Registry metrics: one counter family per event, labelled by kind,
   plus footprint gauges and a build-time histogram. Handles are
   memoized by the registry itself; we memoize locally too so the hot
   path is a single atomic bump. *)

let metric_cache : (string * string, Obs.Registry.counter) Hashtbl.t = Hashtbl.create 16
let metric_lock = Mutex.create ()

let counter_for family kind =
  Mutex.lock metric_lock;
  let c =
    match Hashtbl.find_opt metric_cache (family, kind) with
    | Some c -> c
    | None ->
        let help =
          match family with
          | "rsj_structure_cache_hits_total" -> "Structure-cache lookups served warm."
          | "rsj_structure_cache_misses_total" -> "Structure-cache lookups that had to build."
          | "rsj_structure_cache_evictions_total" ->
              "Entries dropped by the LRU byte-budget."
          | _ -> "Entries dropped because their relation mutated or was invalidated."
        in
        let c = Obs.Registry.counter ~help ~labels:[ ("kind", kind) ] family in
        Hashtbl.replace metric_cache (family, kind) c;
        c
  in
  Mutex.unlock metric_lock;
  c

let build_seconds kind =
  Obs.Registry.histogram ~help:"Wall-clock seconds spent building cacheable structures."
    ~labels:[ ("kind", kind) ] "rsj_structure_cache_build_seconds"

let bytes_gauge = lazy (Obs.Registry.gauge ~help:"Structure-cache live footprint." "rsj_structure_cache_bytes")
let entries_gauge =
  lazy (Obs.Registry.gauge ~help:"Structure-cache live entries." "rsj_structure_cache_entries")

let publish_footprint t =
  Obs.Registry.set_gauge (Lazy.force bytes_gauge) (float_of_int t.total_bytes);
  Obs.Registry.set_gauge (Lazy.force entries_gauge) (float_of_int (Hashtbl.length t.table))

(* ------------------------------------------------------------------ *)

let create ?max_bytes () =
  let budget = match max_bytes with Some b when b > 0 -> Some b | _ -> None in
  {
    budget;
    table = Hashtbl.create 64;
    kind_counts = Hashtbl.create 8;
    clock = 0;
    total_bytes = 0;
    hits = 0;
    misses = 0;
    evictions = 0;
    invalidations = 0;
    lock = Mutex.create ();
  }

let shared_cell =
  lazy
    (let max_bytes =
       match Sys.getenv_opt "RSJ_CACHE_BYTES" with
       | Some s -> int_of_string_opt (String.trim s)
       | None -> None
     in
     create ?max_bytes ())

let shared () = Lazy.force shared_cell
let max_bytes t = t.budget

(* Per-kind hit/miss split for [stats], under [t.lock]. *)
let bump_kind t kind_s ~hit =
  let h, m =
    match Hashtbl.find_opt t.kind_counts kind_s with
    | Some cell -> cell
    | None ->
        let cell = (ref 0, ref 0) in
        Hashtbl.replace t.kind_counts kind_s cell;
        cell
  in
  if hit then incr h else incr m

(* Measured footprint of [v], excluding everything reachable from
   [base] (the relation(s), which the cache does not own): words
   reachable from the pair minus words reachable from the base alone,
   minus the pair block itself. *)
let bytes_excluding ~base v =
  let together = Obj.reachable_words (Obj.repr (v, base)) in
  let base_only = Obj.reachable_words (Obj.repr base) in
  max 0 (together - base_only - 3) * (Sys.word_size / 8)

let touch t (entry : entry) =
  t.clock <- t.clock + 1;
  entry.tick <- t.clock

let remove_entry t key (entry : entry) ~family =
  Hashtbl.remove t.table key;
  t.total_bytes <- t.total_bytes - entry.bytes;
  let kind = kind_name (snd key) in
  (match family with
  | `Eviction ->
      t.evictions <- t.evictions + 1;
      Obs.Registry.incr (counter_for "rsj_structure_cache_evictions_total" kind)
  | `Invalidation ->
      t.invalidations <- t.invalidations + 1;
      Obs.Registry.incr (counter_for "rsj_structure_cache_invalidations_total" kind))

(* Evict LRU entries until the budget holds. [keep] (the entry just
   inserted or served) is never the victim, so a single oversized
   structure still caches rather than thrashing. *)
let enforce_budget t ~keep =
  match t.budget with
  | None -> ()
  | Some budget ->
      while
        t.total_bytes > budget
        &&
        let victim =
          Hashtbl.fold
            (fun key (entry : entry) acc ->
              if entry == keep then acc
              else
                match acc with
                | Some (_, best) when best.tick <= entry.tick -> acc
                | _ -> Some (key, entry))
            t.table None
        in
        match victim with
        | Some (key, entry) ->
            remove_entry t key entry ~family:`Eviction;
            true
        | None -> false
      do
        ()
      done

(* [fp] defaults to the relation's own fingerprint; multi-relation
   structures (chains) pass a mix of every member's so a mutation of
   any member invalidates. [base] defaults to the relation; it is
   whatever the built structure references but the cache does not own
   (for chains, the whole member array). *)
let find t ?fp ?base rel kind ~build ~pack ~unpack =
  let key = (Relation.uid rel, kind) in
  let fp = match fp with Some f -> f | None -> Relation.fingerprint rel in
  let base = match base with Some b -> b | None -> Obj.repr rel in
  let kind_s = kind_name kind in
  Mutex.lock t.lock;
  match Hashtbl.find_opt t.table key with
  | Some entry when entry.fp = fp ->
      t.hits <- t.hits + 1;
      bump_kind t kind_s ~hit:true;
      Obs.Registry.incr (counter_for "rsj_structure_cache_hits_total" kind_s);
      touch t entry;
      Mutex.unlock t.lock;
      unpack entry.value
  | stale ->
      (* Stale (relation mutated since the build) or absent: drop the
         stale entry and build. The build runs outside the lock — a
         histogram build recursively consults the cache for its
         frequency table, and the mutex is not reentrant. A racing
         build of the same key is benign: the later insert wins and the
         earlier entry's bytes are released. *)
      (match stale with
      | Some entry -> remove_entry t key entry ~family:`Invalidation
      | None -> ());
      t.misses <- t.misses + 1;
      bump_kind t kind_s ~hit:false;
      Obs.Registry.incr (counter_for "rsj_structure_cache_misses_total" kind_s);
      Mutex.unlock t.lock;
      let t0 = Obs.Clock.now_s () in
      let v = build () in
      Obs.Registry.observe (build_seconds kind_s) (Obs.Clock.now_s () -. t0);
      let bytes = bytes_excluding ~base v in
      Mutex.lock t.lock;
      (match Hashtbl.find_opt t.table key with
      | Some racing -> t.total_bytes <- t.total_bytes - racing.bytes
      | None -> ());
      t.clock <- t.clock + 1;
      let entry = { fp; bytes; value = pack v; tick = t.clock } in
      Hashtbl.replace t.table key entry;
      t.total_bytes <- t.total_bytes + bytes;
      enforce_budget t ~keep:entry;
      publish_footprint t;
      Mutex.unlock t.lock;
      v

let hash_index t rel ~key =
  find t rel (K_hash_index key)
    ~build:(fun () -> Hash_index.build rel ~key)
    ~pack:(fun v -> P_hash_index v)
    ~unpack:(function P_hash_index v -> v | _ -> assert false)

let frequency t rel ~key =
  find t rel (K_frequency key)
    ~build:(fun () -> Frequency.of_relation rel ~key)
    ~pack:(fun v -> P_frequency v)
    ~unpack:(function P_frequency v -> v | _ -> assert false)

let histogram t rel ~key ~fraction =
  let bits = Int64.to_int (Int64.bits_of_float fraction) in
  find t rel
    (K_histogram (key, bits))
    ~build:(fun () ->
      Histogram.End_biased.build_fraction (frequency t rel ~key) ~fraction)
    ~pack:(fun v -> P_histogram v)
    ~unpack:(function P_histogram v -> v | _ -> assert false)

let int_view t rel ~col =
  find t rel (K_int_view col)
    ~build:(fun () -> Column.int_view rel ~col)
    ~pack:(fun v -> P_int_view v)
    ~unpack:(function P_int_view v -> v | _ -> assert false)

let chain t (spec : Rsj_core.Chain_sample.spec) =
  let k = Array.length spec.relations in
  if k = 0 then invalid_arg "Structure_cache.chain: empty chain";
  let uids = Array.map Relation.uid spec.relations in
  let keys = Array.make (max 1 (2 * (k - 1))) 0 in
  Array.iteri
    (fun i (a, b) ->
      keys.(2 * i) <- a;
      keys.((2 * i) + 1) <- b)
    spec.join_keys;
  let plane = match Rsj_util.Dist.draw_plane () with Rsj_util.Dist.Cdf -> 0 | Alias -> 1 in
  (* The entry lives under the root's uid; the fingerprint mixes every
     member's, so mutating ANY member relation invalidates on the next
     lookup. The plane is part of the key — draw tables are baked at
     prepare time, so a toggled [RSJ_DRAW] builds its own entry. *)
  let fp =
    Array.fold_left
      (fun acc rel -> (acc * 0x9E3779B1) lxor Relation.fingerprint rel)
      0 spec.relations
  in
  find t ~fp ~base:(Obj.repr spec.relations) spec.relations.(0)
    (K_chain (uids, keys, plane))
    ~build:(fun () -> Rsj_core.Chain_sample.prepare spec)
    ~pack:(fun v -> P_chain v)
    ~unpack:(function P_chain v -> v | _ -> assert false)

let env t ?seed ?(histogram_fraction = 0.05) ~left ~right ~left_key ~right_key () =
  let structures =
    {
      Rsj_core.Strategy.p_left_stats = Some (fun () -> frequency t left ~key:left_key);
      p_right_stats = Some (fun () -> frequency t right ~key:right_key);
      p_right_index = Some (fun () -> hash_index t right ~key:right_key);
      p_histogram =
        Some (fun () -> histogram t right ~key:right_key ~fraction:histogram_fraction);
      p_left_key_view = Some (fun () -> int_view t left ~col:left_key);
      p_right_key_view = Some (fun () -> int_view t right ~col:right_key);
    }
  in
  Rsj_core.Strategy.make_env ?seed ~histogram_fraction ~structures ~left ~right ~left_key
    ~right_key ()

let invalidate t rel =
  let uid = Relation.uid rel in
  Mutex.lock t.lock;
  let doomed =
    Hashtbl.fold
      (fun key (entry : entry) acc -> if fst key = uid then (key, entry) :: acc else acc)
      t.table []
  in
  List.iter (fun (key, entry) -> remove_entry t key entry ~family:`Invalidation) doomed;
  publish_footprint t;
  Mutex.unlock t.lock

let clear t =
  Mutex.lock t.lock;
  Hashtbl.reset t.table;
  t.total_bytes <- 0;
  publish_footprint t;
  Mutex.unlock t.lock

let stats t =
  Mutex.lock t.lock;
  let by_kind =
    Hashtbl.fold (fun kind_s (h, m) acc -> (kind_s, (!h, !m)) :: acc) t.kind_counts []
    |> List.sort (fun (a, _) (b, _) -> String.compare a b)
  in
  let s =
    {
      hits = t.hits;
      misses = t.misses;
      evictions = t.evictions;
      invalidations = t.invalidations;
      entries = Hashtbl.length t.table;
      bytes = t.total_bytes;
      by_kind;
    }
  in
  Mutex.unlock t.lock;
  s

(** Warm structure cache: per-(relation, column) memoization of the
    Table-1 auxiliary structures.

    Every sampling strategy needs some subset of {index on R2,
    frequency statistics, end-biased histogram, columnar key view}
    (paper Table 1); batch execution rebuilds them per query, paying
    the very costs the paper assumes are amortized across many
    queries. This cache makes the amortization real: structures are
    built once per relation {e snapshot} and reused until the relation
    mutates, the entry is explicitly invalidated, or the LRU
    byte-budget evicts it.

    Keying: entries are keyed by {!Rsj_relation.Relation.fingerprint}
    (uid × mutation version) plus the column and structure kind, so a
    mutated relation can never be served a stale structure — the old
    fingerprint simply never matches again (the stale entry is dropped
    on next touch or by eviction).

    Eviction: a byte budget (constructor argument, or the
    [RSJ_CACHE_BYTES] environment variable for {!shared}) bounds the
    cache's measured heap footprint (via [Obj.reachable_words],
    excluding the base relation, which the cache does not own).
    Least-recently-used entries are dropped until the total fits; the
    entry just inserted or touched is never the victim.

    Telemetry: hits/misses/evictions/invalidations are counted both
    locally (see {!stats}) and in {!Rsj_obs.Registry} as
    [rsj_structure_cache_hits_total], [..._misses_total],
    [..._evictions_total], [..._invalidations_total] (labelled by
    structure kind) plus the [rsj_structure_cache_build_seconds]
    histogram and [rsj_structure_cache_bytes] / [..._entries] gauges —
    all exported by the daemon's [GET /metrics]. *)

open Rsj_relation

type t

val create : ?max_bytes:int -> unit -> t
(** A fresh cache. [max_bytes] bounds the measured footprint (default:
    unbounded). [max_bytes <= 0] means unbounded. *)

val shared : unit -> t
(** The process-wide cache (the SQL engine and the daemon use it).
    Created on first use with the [RSJ_CACHE_BYTES] budget (bytes;
    absent or non-positive = unbounded). *)

val max_bytes : t -> int option
(** The configured budget, [None] when unbounded. *)

(* ------------------------------------------------------------------ *)
(** {1 Memoized builds}

    Each getter returns the cached structure for the relation's current
    snapshot, building (and charging a miss + build-seconds) when
    absent. A stale entry for an earlier version of the same relation
    is dropped as an invalidation. *)

val hash_index : t -> Relation.t -> key:int -> Rsj_index.Hash_index.t
val frequency : t -> Relation.t -> key:int -> Rsj_stats.Frequency.t

val histogram :
  t -> Relation.t -> key:int -> fraction:float -> Rsj_stats.Histogram.End_biased.t
(** End-biased histogram at the given threshold fraction; the fraction
    participates in the cache key (distinct fractions coexist). The
    build reuses the cached {!frequency} table. *)

val int_view : t -> Relation.t -> col:int -> int array option
(** The columnar key extraction ({!Column.int_view}); a [None] escape
    (non-int column) is cached too — it is a per-snapshot fact. *)

val chain : t -> Rsj_core.Chain_sample.spec -> Rsj_core.Chain_sample.t
(** The prepared chain walker (weight tables + per-value alias/CDF draw
    tables) for the whole spec, keyed under the root relation's uid with
    a fingerprint mixing {e every} member relation's — mutating any
    member invalidates on the next lookup. The current [RSJ_DRAW] plane
    participates in the key, since draw tables are baked at prepare
    time. This is what makes the alias plane pay off under [rsj serve]:
    the O(k·Σ|Ri|) build happens once, and every later request on the
    same chain pays only O(k) per drawn tuple. *)

val env :
  t ->
  ?seed:int ->
  ?histogram_fraction:float ->
  left:Relation.t ->
  right:Relation.t ->
  left_key:int ->
  right_key:int ->
  unit ->
  Rsj_core.Strategy.env
(** A strategy env whose auxiliary-structure thunks consult this cache
    instead of building privately — the drop-in warm replacement for
    {!Rsj_core.Strategy.make_env}. Nothing is built until a strategy
    forces it, exactly like the cold env. *)

(* ------------------------------------------------------------------ *)
(** {1 Invalidation and introspection} *)

val invalidate : t -> Relation.t -> unit
(** Drop every entry belonging to the relation (any version, any
    column, any kind). *)

val clear : t -> unit
(** Drop everything. Counters keep their totals. *)

type stats = {
  hits : int;
  misses : int;
  evictions : int;
  invalidations : int;
  entries : int;  (** live entries *)
  bytes : int;  (** measured footprint of live entries *)
  by_kind : (string * (int * int)) list;
      (** per-kind [(hits, misses)] split, sorted by kind name — the
          serve bench reads the ["chain"] row to show alias-structure
          reuse across requests *)
}

val stats : t -> stats

open Rsj_relation
module Json = Rsj_obs.Json
module P = Protocol

type t = {
  sock : Unix.file_descr;
  inbuf : Buffer.t;
  mutable next_id : int;
}

let connect (addr : Server.addr) =
  let domain, sockaddr =
    match addr with
    | Server.Unix_path path -> (Unix.PF_UNIX, Unix.ADDR_UNIX path)
    | Server.Tcp (host, port) ->
        let inet =
          try (Unix.gethostbyname host).Unix.h_addr_list.(0)
          with Not_found -> failwith (Printf.sprintf "cannot resolve host %S" host)
        in
        (Unix.PF_INET, Unix.ADDR_INET (inet, port))
  in
  let sock = Unix.socket domain Unix.SOCK_STREAM 0 in
  (try Unix.connect sock sockaddr
   with Unix.Unix_error (e, _, _) ->
     (try Unix.close sock with Unix.Unix_error (_, _, _) -> ());
     failwith
       (Printf.sprintf "cannot connect to %s: %s" (Server.addr_to_string addr)
          (Unix.error_message e)));
  { sock; inbuf = Buffer.create 1024; next_id = 0 }

let close t = try Unix.close t.sock with Unix.Unix_error (_, _, _) -> ()
let fd t = t.sock

let fresh_id t =
  let id = t.next_id in
  t.next_id <- id + 1;
  id

let send t req =
  let line = P.encode_request req ^ "\n" in
  let n = String.length line in
  let written = ref 0 in
  while !written < n do
    written := !written + Unix.write_substring t.sock line !written (n - !written)
  done

let rec read_line t =
  let s = Buffer.contents t.inbuf in
  match String.index_opt s '\n' with
  | Some i ->
      Buffer.clear t.inbuf;
      Buffer.add_string t.inbuf (String.sub s (i + 1) (String.length s - i - 1));
      let line = String.sub s 0 i in
      if line = "" then read_line t else line
  | None ->
      let buf = Bytes.create 65536 in
      let n = Unix.read t.sock buf 0 (Bytes.length buf) in
      if n = 0 then failwith "server closed the connection";
      Buffer.add_subbytes t.inbuf buf 0 n;
      read_line t

let next_response t =
  match P.decode_response (read_line t) with
  | Ok resp -> resp
  | Error msg -> failwith (Printf.sprintf "undecodable response frame: %s" msg)

type reply = { rows : Value.t list list; detail : (string * Json.t) list }

let collect t ~id =
  let rows = ref [] in
  let rec go () =
    match next_response t with
    | P.Rows r when r.id = id ->
        rows := List.rev_append r.rows !rows;
        go ()
    | P.Ack { id = rid; detail } when rid = id -> Ok { rows = List.rev !rows; detail }
    | P.Done { id = rid; detail } when rid = id -> Ok { rows = List.rev !rows; detail }
    | P.Failed { id = rid; code; message } when rid = id -> Error (code, message)
    | other ->
        failwith
          (Printf.sprintf "frame for request %d while waiting on %d" (P.response_id other) id)
  in
  go ()

let rpc t req =
  send t req;
  collect t ~id:(P.request_id req)

let simple t req =
  match rpc t req with
  | Ok reply -> Ok reply
  | Error (code, msg) -> Error (Printf.sprintf "%s: %s" (P.error_code_to_string code) msg)

let ping t = match simple t (P.Ping { id = fresh_id t }) with Ok _ -> true | Error _ -> false

let rows_detail = function
  | Ok reply -> (
      match List.assoc_opt "rows" reply.detail with Some (Json.Int n) -> Ok n | _ -> Ok 0)
  | Error e -> Error e

let register_path t ~name ~path =
  rows_detail (simple t (P.Register { id = fresh_id t; name; source = P.From_path path }))

let register_rows t ~name ~schema ~rows =
  rows_detail (simple t (P.Register { id = fresh_id t; name; source = P.Inline (schema, rows) }))

let sample t ~left ~right ~r ?strategy ?(seed = 0x5EED) ?(wor = false) ?(domains = 1)
    ?(on = "col2") ?deadline_ms ?rid () =
  rpc t
    (P.Sample
       { id = fresh_id t; left; right; r; strategy; seed; wor; domains; on; deadline_ms; rid })

let query t ~sql ?(seed = 0x5EED) ?deadline_ms ?rid () =
  rpc t (P.Query { id = fresh_id t; sql; seed; deadline_ms; rid })

let metrics t =
  match simple t (P.Metrics { id = fresh_id t }) with
  | Ok reply -> (
      match List.assoc_opt "prometheus" reply.detail with
      | Some (Json.Str text) -> Ok text
      | _ -> Error "metrics reply carried no prometheus field")
  | Error e -> Error e

let cache_stats t =
  match simple t (P.Stats { id = fresh_id t }) with
  | Ok reply -> Ok reply.detail
  | Error e -> Error e

let invalidate t ~name =
  match simple t (P.Invalidate { id = fresh_id t; name }) with
  | Ok _ -> Ok ()
  | Error e -> Error e

let shutdown t =
  match simple t (P.Shutdown { id = fresh_id t }) with Ok _ -> Ok () | Error e -> Error e

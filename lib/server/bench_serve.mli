(** Cold-vs-warm load harness for the sampling service.

    Measures what the warm structure cache buys end to end:

    - {b cold}: repeated one-shot [rsj sample] subprocesses (CSV load +
      structure build + sample, a fresh process each time) — the
      batch workflow the daemon replaces;
    - {b warm}: the same sample request over the daemon's socket from
      several concurrent pipelined connections, every structure served
      from the cache after the first hit.

    Reports p50/p99 request latency and throughput for the warm path,
    the cold mean/p50, and their ratio. A soak phase
    ([RSJ_SERVE_SOAK_SECONDS] or [soak_seconds]) keeps the warm load
    running for a wall-clock budget to surface leaks or drift. The
    workload is the §8.1 pair at {!Rsj_workload.Zipf_tables.Scale}
    (environment-overridable). *)

val run :
  ?clients:int ->
  ?requests_per_client:int ->
  ?r:int ->
  ?cold_runs:int ->
  ?strategy:string ->
  ?soak_seconds:float ->
  ?seed:int ->
  ?out:string ->
  unit ->
  Rsj_obs.Json.t
(** Runs the whole harness (generates tables in a temp dir, spawns
    the daemon, drives the load, shuts the daemon down) and returns the
    report; writes it to [out] when given. [clients] is the number of
    concurrent connections (default 4, min 1); [requests_per_client]
    the warm requests per connection (default 25); [r] the sample size
    per request (default 64); [cold_runs] the number of one-shot
    subprocess timings (default 5); [strategy] the strategy both sides
    run (default "stream"); [soak_seconds] the extra warm load
    duration (default 0, [RSJ_SERVE_SOAK_SECONDS] overrides); [out]
    where to write the JSON report (default: not written). Raises
    [Failure] when the daemon cannot be started or a request fails. *)

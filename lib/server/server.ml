open Rsj_relation
module Json = Rsj_obs.Json
module Registry = Rsj_obs.Registry
module Clock = Rsj_obs.Clock
module Strategy = Rsj_core.Strategy
module Cache = Rsj_cache.Structure_cache
module P = Protocol

type addr = Unix_path of string | Tcp of string * int

let addr_to_string = function
  | Unix_path p -> p
  | Tcp (host, port) -> Printf.sprintf "tcp:%s:%d" host port

let addr_of_string s =
  match String.split_on_char ':' s with
  | [ "tcp"; host; port ] -> (
      match int_of_string_opt port with
      | Some p when p > 0 && p < 65536 -> Ok (Tcp (host, p))
      | _ -> Error (Printf.sprintf "bad TCP port in %S" s))
  | "tcp" :: _ -> Error (Printf.sprintf "bad TCP address %S (want tcp:HOST:PORT)" s)
  | [ "unix"; path ] -> Ok (Unix_path path)
  | _ -> Ok (Unix_path s)

type config = {
  addr : addr;
  max_queued_work : int;
  frame_rows : int;
  snapshot_path : string option;
  drain_linger_ms : float;
  slow_ms : float;
  log_path : string option;
}

let env_int name default =
  match Sys.getenv_opt name with
  | Some s -> ( match int_of_string_opt s with Some v when v > 0 -> v | _ -> default)
  | None -> default

let env_float name default =
  match Sys.getenv_opt name with
  | Some s -> ( match float_of_string_opt s with Some v when v >= 0. -> v | _ -> default)
  | None -> default

let default_config addr =
  {
    addr;
    max_queued_work = env_int "RSJ_SERVE_QUEUE_BUDGET" 1_000_000;
    frame_rows = 256;
    snapshot_path = Sys.getenv_opt "RSJ_SERVE_SNAPSHOT";
    drain_linger_ms = env_float "RSJ_SERVE_DRAIN_LINGER_MS" 0.;
    slow_ms = env_float "RSJ_SLOW_MS" 100.;
    log_path = Sys.getenv_opt "RSJ_LOG";
  }

(* ------------------------------------------------------------------ *)
(* Telemetry                                                           *)

let m_requests op =
  Registry.counter ~help:"Requests received by the sampling service" ~labels:[ ("op", op) ]
    "rsj_serve_requests_total"

let m_errors code =
  Registry.counter ~help:"Request failures by typed error code"
    ~labels:[ ("code", P.error_code_to_string code) ]
    "rsj_serve_errors_total"

let m_connections =
  lazy (Registry.counter ~help:"Connections accepted" "rsj_serve_connections_total")

let m_request_seconds =
  lazy (Registry.histogram ~help:"Request execution latency" "rsj_serve_request_seconds")

(* Per-request latency broken out by operation kind, strategy actually
   run, and whether the warm cache served the request's structures.
   Label values are small closed sets (ops × 8 strategies × hit/miss/
   none), so the family stays scrapeable. *)
let m_request_kind ~kind ~strategy ~cache =
  Registry.histogram ~help:"Request execution latency by kind/strategy/cache outcome"
    ~labels:[ ("kind", kind); ("strategy", strategy); ("cache", cache) ]
    "rsj_request_seconds"

let m_slow_requests =
  lazy
    (Registry.counter ~help:"Requests slower than the RSJ_SLOW_MS exemplar threshold"
       "rsj_serve_slow_requests_total")

let m_queue_depth = lazy (Registry.gauge ~help:"Requests waiting in the FIFO" "rsj_serve_queue_depth")

let m_queued_work =
  lazy (Registry.gauge ~help:"Sample tuples requested by waiting requests" "rsj_serve_queued_work")

(* ------------------------------------------------------------------ *)
(* Connections                                                         *)

type mode = M_unknown | M_json | M_http

type conn = {
  fd : Unix.file_descr;
  inbuf : Buffer.t;
  out : string Queue.t;  (** Encoded frames (newline included) not yet fully written. *)
  mutable out_ofs : int;  (** Bytes of [Queue.peek out] already written. *)
  mutable mode : mode;
  mutable eof : bool;  (** Peer stopped sending; flush then close. *)
  mutable dead : bool;  (** Socket error; discard without flushing. *)
  mutable queued : int;  (** Requests from this connection still in the FIFO. *)
}

type pending = { p_conn : conn; p_req : P.request; p_enqueued_s : float; p_work : int }

(* Scratch the executors fill in so the request plane (run_pending) can
   label the latency histogram and the log line without re-deriving the
   decision. Reset per request. *)
type note = {
  mutable n_strategy : string;
  mutable n_reason : string;
  mutable n_sql : string option;
}

type state = {
  config : config;
  catalog : (string, Relation.t) Hashtbl.t;
  cache : Cache.t;
  queue : pending Queue.t;
  mutable queued_work : int;
  mutable stopping : bool;
  quality : Rsj_verify.Online.t;
  laws : (int * int, Rsj_verify.Online.law option) Hashtbl.t;
      (* join-value marginal per (left fp, right fp); None = empty join *)
  biased : bool;  (* RSJ_SERVE_BIAS: serve deliberately biased WR draws *)
  bias_universes : (int * int, Tuple.t array) Hashtbl.t;
  note : note;
  mutable rid_serial : int;
}

exception Reject of P.error_code * string

let rejectf code fmt = Printf.ksprintf (fun s -> raise (Reject (code, s))) fmt

let lookup st name =
  match Hashtbl.find_opt st.catalog name with
  | Some rel -> rel
  | None -> rejectf P.Unknown_relation "no relation %S registered (use the register op)" name

(* ------------------------------------------------------------------ *)
(* Request execution (runs on the loop thread, FIFO)                   *)

let frame_rows_of lst n =
  (* Split [lst] into chunks of [n]. *)
  let rec go acc cur k = function
    | [] -> List.rev (if cur = [] then acc else List.rev cur :: acc)
    | x :: tl ->
        if k = n then go (List.rev cur :: acc) [ x ] 1 tl else go acc (x :: cur) (k + 1) tl
  in
  go [] [] 0 lst

let stream_rows ~id ~frame_rows rows done_detail =
  let frames =
    List.map (fun chunk -> P.Rows { id; rows = chunk }) (frame_rows_of rows frame_rows)
  in
  frames @ [ P.Done { id; detail = done_detail } ]

let exec_register st ~id ~name ~source =
  let rel =
    match source with
    | P.From_path path ->
        if not (Sys.file_exists path) then rejectf P.Bad_request "no such file %S" path;
        (try Rsj_relation.Csv_io.load ~path Rsj_workload.Zipf_tables.schema
         with Failure msg -> rejectf P.Bad_request "cannot load %S: %s" path msg)
    | P.Inline (cols, rows) -> (
        if cols = [] then rejectf P.Bad_request "inline register needs a non-empty schema";
        try Relation.of_rows ~name (Schema.of_list cols) rows
        with Invalid_argument msg -> rejectf P.Bad_request "bad inline rows: %s" msg)
  in
  (match Hashtbl.find_opt st.catalog name with
  | Some old -> Cache.invalidate st.cache old
  | None -> ());
  Hashtbl.replace st.catalog name rel;
  [
    P.Ack
      {
        id;
        detail =
          [ ("name", Json.Str name); ("rows", Json.Int (Relation.cardinality rel)) ];
      };
  ]

(* The join-value marginal the quality monitor tests against, derived
   from the warm frequency tables and memoized per fingerprint pair
   (a mutation changes the fingerprint, so stale laws age out as new
   keys). *)
let quality_law st ~l ~rt ~left_key ~right_key =
  let fp = (Relation.fingerprint l, Relation.fingerprint rt) in
  match Hashtbl.find_opt st.laws fp with
  | Some law -> (fp, law)
  | None ->
      let law =
        Rsj_verify.Online.law_of_frequencies
          ~left:(Cache.frequency st.cache l ~key:left_key)
          ~right:(Cache.frequency st.cache rt ~key:right_key)
      in
      Hashtbl.replace st.laws fp law;
      (fp, law)

(* RSJ_SERVE_BIAS: replace the strategy's output with the negative
   control's deliberately biased WR draws (Negative.biased_wr_draw) —
   the daemon keeps claiming success while serving a wrong law. Exists
   so the quality monitor's true-positive cell exercises the real
   served path end to end. *)
let biased_sample st ~l ~rt ~left_key ~right_key ~seed ~r =
  let fp = (Relation.fingerprint l, Relation.fingerprint rt) in
  let universe =
    match Hashtbl.find_opt st.bias_universes fp with
    | Some u -> u
    | None ->
        let u =
          Array.copy
            (Rsj_verify.Oracle.universe
               (Rsj_verify.Oracle.of_relations ~left:l ~right:rt ~left_key ~right_key))
        in
        (* Sort by join value so the draw's positional 4:1 tilt (first
           half of the array) lands on whole value groups: the bias the
           monitor watches for is in the join-value marginal, and an
           enumeration-ordered universe would split each value's
           tuples evenly across both halves and hide it. *)
        Array.sort (fun a b -> Value.compare a.(left_key) b.(left_key)) u;
        Hashtbl.replace st.bias_universes fp u;
        u
  in
  if Array.length universe = 0 then [||]
  else Rsj_core.Negative.biased_wr_draw (Rsj_util.Prng.create ~seed ()) ~universe ~r

let exec_sample st ~id ~left ~right ~r ~strategy ~seed ~wor ~domains ~on =
  if r < 0 then rejectf P.Bad_request "r must be non-negative, got %d" r;
  if domains < 1 then rejectf P.Bad_request "domains must be at least 1, got %d" domains;
  let l = lookup st left and rt = lookup st right in
  let key_of rel =
    match Schema.column_index_opt (Relation.schema rel) on with
    | Some i -> i
    | None -> rejectf P.Bad_request "relation %S has no column %S" (Relation.name rel) on
  in
  let left_key = key_of l and right_key = key_of rt in
  let env =
    Rsj_obs.Trace.with_span ~cat:"serve" "cache.env" (fun () ->
        Cache.env st.cache ~seed ~left:l ~right:rt ~left_key ~right_key ())
  in
  let strategy, picked =
    match strategy with
    | Some name -> (
        match Strategy.of_name name with
        | Some s -> (s, None)
        | None ->
            rejectf P.Unknown_strategy "unknown strategy %S (try: %s)" name
              (String.concat ", " (List.map Strategy.name Strategy.all)))
    | None ->
        let catalog = Rsj_optimizer.Catalog.of_env ~availability:Strategy.all_available env in
        let s, d =
          Rsj_optimizer.Picker.choose_counted catalog (Rsj_optimizer.Cost_model.shape ~r)
        in
        (s, Some d)
  in
  st.note.n_strategy <- Strategy.name strategy;
  (match picked with
  | Some d -> st.note.n_reason <- Rsj_optimizer.Picker.reason_to_string d.Rsj_optimizer.Picker.reason
  | None -> st.note.n_reason <- "explicit");
  let result =
    try
      if wor then Rsj_parallel.run_wor env strategy ~r ~domains
      else Rsj_parallel.run env strategy ~r ~domains
    with Failure msg | Invalid_argument msg -> rejectf P.Engine_error "%s" msg
  in
  let sample =
    if st.biased then biased_sample st ~l ~rt ~left_key ~right_key ~seed ~r
    else result.Strategy.sample
  in
  (* Feed the served output — biased or not — to the quality monitor:
     the monitor watches what actually left the daemon. *)
  (let (fp_l, fp_r), law = quality_law st ~l ~rt ~left_key ~right_key in
   match law with
   | Some law when Array.length sample > 0 ->
       let key =
         Printf.sprintf "%x-%x/%s/%s" fp_l fp_r (Strategy.name strategy)
           (if wor then "wor" else "wr")
       in
       Rsj_verify.Online.observe st.quality ~key ~law
         (Array.map (fun t -> t.(left_key)) sample)
   | _ -> ());
  let rows = Array.to_list (Array.map Array.to_list sample) in
  let detail =
    [
      ("strategy", Json.Str (Strategy.name result.Strategy.strategy));
      ("tuples", Json.Int (Array.length sample));
      ("join_size", Json.Int (Strategy.env_join_size env));
      ("elapsed_s", Json.Float result.Strategy.elapsed_seconds);
    ]
    @
    match picked with
    | Some d ->
        [ ("picker_reason", Json.Str (Rsj_optimizer.Picker.reason_to_string d.Rsj_optimizer.Picker.reason)) ]
    | None -> []
  in
  stream_rows ~id ~frame_rows:st.config.frame_rows rows detail

let exec_query st ~id ~sql ~seed =
  st.note.n_sql <- Some sql;
  let catalog = Hashtbl.fold (fun name rel acc -> (name, rel) :: acc) st.catalog [] in
  match Rsj_sql.Engine.run ~seed catalog sql with
  | Error msg -> rejectf P.Engine_error "%s" msg
  | Ok result ->
      let open Rsj_sql in
      (match result.Engine.decision with
      | Some d ->
          st.note.n_strategy <- Strategy.name d.Rsj_optimizer.Picker.chosen;
          st.note.n_reason <- Rsj_optimizer.Picker.reason_to_string d.Rsj_optimizer.Picker.reason
      | None -> ());
      let rows = List.map Array.to_list result.Engine.rows in
      let columns =
        Array.to_list (Schema.columns result.Engine.schema)
        |> List.map (fun (c : Schema.column) -> Json.Str c.name)
      in
      let detail =
        [
          ("columns", Json.List columns);
          ("tuples", Json.Int (List.length rows));
          ("work", Json.Int (Rsj_exec.Metrics.total_work result.Engine.metrics));
          ("explained", Json.Bool result.Engine.explained);
        ]
        @ (if result.Engine.explained then
             [ ("plan", Json.Str (Format.asprintf "%a" Rsj_exec.Plan.explain result.Engine.plan)) ]
           else [])
        @
        match result.Engine.decision with
        | Some d ->
            [ ("picked", Json.Str (Strategy.name d.Rsj_optimizer.Picker.chosen)) ]
        | None -> []
      in
      stream_rows ~id ~frame_rows:st.config.frame_rows rows detail

let exec_stats st ~id =
  let s = Cache.stats st.cache in
  [
    P.Ack
      {
        id;
        detail =
          [
            ("hits", Json.Int s.Cache.hits);
            ("misses", Json.Int s.Cache.misses);
            ("evictions", Json.Int s.Cache.evictions);
            ("invalidations", Json.Int s.Cache.invalidations);
            ("entries", Json.Int s.Cache.entries);
            ("bytes", Json.Int s.Cache.bytes);
            ( "max_bytes",
              match Cache.max_bytes st.cache with Some b -> Json.Int b | None -> Json.Null );
            (* Per-kind hit/miss split, so clients can see which
               structures (chain walkers with their alias tables,
               indexes, statistics) the warm cache is actually
               serving. *)
            ( "by_kind",
              Json.Obj
                (List.map
                   (fun (kind, (h, m)) ->
                     (kind, Json.Obj [ ("hits", Json.Int h); ("misses", Json.Int m) ]))
                   s.Cache.by_kind) );
            (* The online quality monitor's verdicts: one entry per
               served (fingerprint-pair, strategy, semantics) stream,
               plus the latched aggregate alert. *)
            ("quality_alert", Json.Bool (Rsj_verify.Online.any_alert st.quality));
            ( "quality",
              Json.List
                (List.map
                   (fun (q : Rsj_verify.Online.stream_stats) ->
                     Json.Obj
                       [
                         ("stream", Json.Str q.Rsj_verify.Online.st_key);
                         ("seen", Json.Int q.st_seen);
                         ("foreign", Json.Int q.st_foreign);
                         ("windows", Json.Int q.st_windows);
                         ( "last_p",
                           if Float.is_nan q.st_last_p then Json.Null
                           else Json.Float q.st_last_p );
                         ("alert", Json.Bool q.st_alert);
                       ])
                   (Rsj_verify.Online.stats st.quality)) );
          ];
      };
  ]

let execute st (req : P.request) =
  match req with
  | P.Ping { id } -> [ P.Ack { id; detail = [ ("pong", Json.Bool true) ] } ]
  | P.Register { id; name; source } -> exec_register st ~id ~name ~source
  | P.Sample { id; left; right; r; strategy; seed; wor; domains; on; deadline_ms = _; rid = _ }
    ->
      exec_sample st ~id ~left ~right ~r ~strategy ~seed ~wor ~domains ~on
  | P.Query { id; sql; seed; deadline_ms = _; rid = _ } -> exec_query st ~id ~sql ~seed
  | P.Invalidate { id; name } ->
      Cache.invalidate st.cache (lookup st name);
      [ P.Ack { id; detail = [ ("name", Json.Str name) ] } ]
  | P.Metrics { id } ->
      Rsj_obs.Runtime.publish_gc ();
      [ P.Ack { id; detail = [ ("prometheus", Json.Str (Registry.to_prometheus ())) ] } ]
  | P.Stats { id } -> exec_stats st ~id
  | P.Shutdown { id } ->
      st.stopping <- true;
      [ P.Ack { id; detail = [ ("stopping", Json.Bool true) ] } ]

(* ------------------------------------------------------------------ *)
(* Wire plumbing                                                       *)

let send_frame conn resp = Queue.add (P.encode_response resp ^ "\n") conn.out

let send_raw conn s = Queue.add s conn.out

let try_flush conn =
  (* Write as much queued output as the socket accepts right now. *)
  let again = ref true in
  while !again && not (Queue.is_empty conn.out) && not conn.dead do
    let head = Queue.peek conn.out in
    let len = String.length head - conn.out_ofs in
    match Unix.write_substring conn.fd head conn.out_ofs len with
    | n ->
        if n = len then begin
          ignore (Queue.pop conn.out);
          conn.out_ofs <- 0
        end
        else begin
          conn.out_ofs <- conn.out_ofs + n;
          again := false
        end
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _) ->
        again := false
    | exception Unix.Unix_error (_, _, _) ->
        conn.dead <- true
  done

(* Pull complete lines off the connection's input buffer, leaving any
   trailing fragment in place. *)
let take_lines conn =
  let s = Buffer.contents conn.inbuf in
  match String.rindex_opt s '\n' with
  | None -> []
  | Some last ->
      Buffer.clear conn.inbuf;
      Buffer.add_string conn.inbuf (String.sub s (last + 1) (String.length s - last - 1));
      String.split_on_char '\n' (String.sub s 0 last)
      |> List.map (fun line ->
             let n = String.length line in
             if n > 0 && line.[n - 1] = '\r' then String.sub line 0 (n - 1) else line)
      |> List.filter (fun line -> line <> "")

let http_response ~status ~body =
  Printf.sprintf "HTTP/1.1 %s\r\nContent-Type: text/plain; version=0.0.4\r\nContent-Length: %d\r\nConnection: close\r\n\r\n%s"
    status (String.length body) body

(* One HTTP request per connection ("Connection: close"): answer
   GET /metrics with the Prometheus registry, GET /healthz with the
   load-balancer view of the drain state, 404 anything else. *)
let handle_http st conn =
  let s = Buffer.contents conn.inbuf in
  let complete =
    (* Headers end at a blank line; we never read a body. *)
    let rec find i =
      if i + 1 >= String.length s then false
      else if s.[i] = '\n' && (s.[i + 1] = '\n' || (s.[i + 1] = '\r' && i + 2 < String.length s && s.[i + 2] = '\n')) then true
      else find (i + 1)
    in
    find 0
  in
  if complete then begin
    let first_line =
      match String.index_opt s '\n' with
      | Some i ->
          let l = String.sub s 0 i in
          if l <> "" && l.[String.length l - 1] = '\r' then String.sub l 0 (String.length l - 1) else l
      | None -> s
    in
    let response =
      match String.split_on_char ' ' first_line with
      | "GET" :: path :: _ when path = "/metrics" || path = "/metrics/" ->
          Rsj_obs.Runtime.publish_gc ();
          http_response ~status:"200 OK" ~body:(Registry.to_prometheus ())
      | "GET" :: path :: _ when path = "/healthz" || path = "/healthz/" ->
          (* 503 the moment drain starts, so load balancers rotate the
             replica before the listener disappears. *)
          if st.stopping then http_response ~status:"503 Service Unavailable" ~body:"draining\n"
          else http_response ~status:"200 OK" ~body:"ok\n"
      | _ ->
          http_response ~status:"404 Not Found" ~body:"only GET /metrics and /healthz are served\n"
    in
    Buffer.clear conn.inbuf;
    send_raw conn response;
    conn.eof <- true (* flush, then close *)
  end

(* ------------------------------------------------------------------ *)
(* Admission and the FIFO                                              *)

let work_of (req : P.request) =
  match req with
  | P.Sample { r; _ } -> max r 1
  | P.Query _ -> 64 (* flat charge: the engine resolves its own r *)
  | _ -> 0

let publish_queue_gauges st =
  Registry.set_gauge (Lazy.force m_queue_depth) (float_of_int (Queue.length st.queue));
  Registry.set_gauge (Lazy.force m_queued_work) (float_of_int st.queued_work)

let fail_request conn ~id code message =
  Registry.incr (m_errors code);
  send_frame conn (P.Failed { id; code; message })

let admit st conn (req : P.request) =
  Registry.incr (m_requests (P.request_op req));
  let id = P.request_id req in
  if st.stopping then fail_request conn ~id P.Shutting_down "server is draining"
  else begin
    let w = work_of req in
    if w > 0 && not (Queue.is_empty st.queue) && st.queued_work + w > st.config.max_queued_work
    then
      fail_request conn ~id P.Overloaded
        (Printf.sprintf "queued sample work %d + %d exceeds budget %d" st.queued_work w
           st.config.max_queued_work)
    else begin
      conn.queued <- conn.queued + 1;
      st.queued_work <- st.queued_work + w;
      Queue.add { p_conn = conn; p_req = req; p_enqueued_s = Clock.now_s (); p_work = w } st.queue;
      publish_queue_gauges st
    end
  end

let deadline_of (req : P.request) =
  match req with
  | P.Sample { deadline_ms; _ } | P.Query { deadline_ms; _ } -> deadline_ms
  | _ -> None

(* Mint a server-side request id: unique per process, cheap, and
   greppable ("req-<pid>-<serial>"). A client-supplied rid wins, so
   callers can stitch daemon telemetry into their own traces. *)
let mint_rid st req =
  match P.request_rid req with
  | Some rid -> rid
  | None ->
      st.rid_serial <- st.rid_serial + 1;
      Printf.sprintf "req-%d-%d" (Unix.getpid ()) st.rid_serial

(* Echo the request id in terminal ok/done frames so the wire response
   carries the same id as the spans and the log line. *)
let tag_frames rid frames =
  List.map
    (function
      | P.Done { id; detail } ->
          P.Done { id; detail = detail @ [ ("request_id", Json.Str rid) ] }
      | P.Ack { id; detail } -> P.Ack { id; detail = detail @ [ ("request_id", Json.Str rid) ] }
      | f -> f)
    frames

let run_pending st =
  while not (Queue.is_empty st.queue) do
    let { p_conn = conn; p_req = req; p_enqueued_s; p_work } = Queue.pop st.queue in
    st.queued_work <- st.queued_work - p_work;
    conn.queued <- conn.queued - 1;
    publish_queue_gauges st;
    if not conn.dead then begin
      let id = P.request_id req in
      let op = P.request_op req in
      let rid = mint_rid st req in
      let late =
        match deadline_of req with
        | Some budget_ms -> (Clock.now_s () -. p_enqueued_s) *. 1000. > budget_ms
        | None -> false
      in
      st.note.n_strategy <- "none";
      st.note.n_reason <- "none";
      st.note.n_sql <- None;
      Rsj_obs.Context.with_request rid (fun () ->
          if late then begin
            fail_request conn ~id P.Deadline_exceeded
              (Printf.sprintf "request waited past its %.0fms deadline"
                 (Option.get (deadline_of req)));
            Rsj_obs.Reqlog.write
              [
                ("op", Json.Str op);
                ("client_id", Json.Int id);
                ("status", Json.Str "deadline_exceeded");
                ("deadline", Json.Str "late");
                ("queued_s", Json.Float (Clock.now_s () -. p_enqueued_s));
              ]
          end
          else begin
            let t0 = Clock.now_s () in
            let alloc0 = Rsj_obs.Runtime.allocated_words () in
            let cache0 = Cache.stats st.cache in
            let status = ref "ok" in
            Rsj_obs.Trace.with_span ~cat:"serve"
              ~args:[ ("op", Json.Str op); ("client_id", Json.Int id) ]
              "request"
              (fun () ->
                match execute st req with
                | frames -> List.iter (send_frame conn) (tag_frames rid frames)
                | exception Reject (code, msg) ->
                    status := P.error_code_to_string code;
                    fail_request conn ~id code msg
                | exception (Failure msg | Invalid_argument msg) ->
                    status := "engine_error";
                    fail_request conn ~id P.Engine_error msg);
            let dt = Clock.now_s () -. t0 in
            let alloc = Rsj_obs.Runtime.allocated_words () -. alloc0 in
            let cache1 = Cache.stats st.cache in
            let cache_label =
              if cache1.Cache.misses > cache0.Cache.misses then "miss"
              else if cache1.Cache.hits > cache0.Cache.hits then "hit"
              else "none"
            in
            Registry.observe (Lazy.force m_request_seconds) dt;
            Registry.observe
              (m_request_kind ~kind:op ~strategy:st.note.n_strategy ~cache:cache_label)
              dt;
            if dt *. 1000. > st.config.slow_ms then begin
              Registry.incr (Lazy.force m_slow_requests);
              (* Exemplar: the slow request's id and shape, as a trace
                 instant — jump from the histogram tail to the exact
                 request in the trace. *)
              Rsj_obs.Trace.instant ~cat:"serve"
                ~args:
                  [
                    ("op", Json.Str op);
                    ("strategy", Json.Str st.note.n_strategy);
                    ("latency_s", Json.Float dt);
                  ]
                "request.slow"
            end;
            Rsj_obs.Reqlog.write
              ([ ("op", Json.Str op); ("client_id", Json.Int id) ]
              @ (match st.note.n_sql with Some q -> [ ("sql", Json.Str q) ] | None -> [])
              @ [
                  ("strategy", Json.Str st.note.n_strategy);
                  ("picker_reason", Json.Str st.note.n_reason);
                  ("cache", Json.Str cache_label);
                  ( "deadline",
                    Json.Str (match deadline_of req with Some _ -> "met" | None -> "none") );
                  ("status", Json.Str !status);
                  ("latency_s", Json.Float dt);
                  ("alloc_words", Json.Float alloc);
                ])
          end);
      try_flush conn
    end
  done

(* ------------------------------------------------------------------ *)
(* Listener                                                            *)

let bind_listener addr =
  match addr with
  | Unix_path path ->
      if String.length path >= 100 then
        failwith
          (Printf.sprintf "socket path %S too long for a Unix socket (limit ~107 bytes)" path);
      (* A crashed daemon leaves its socket file behind; a live one is
         protected only by convention, like most Unix-socket servers. *)
      (try if (Unix.lstat path).Unix.st_kind = Unix.S_SOCK then Unix.unlink path
       with Unix.Unix_error (Unix.ENOENT, _, _) -> ());
      let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      (try Unix.bind fd (Unix.ADDR_UNIX path)
       with Unix.Unix_error (e, _, _) ->
         Unix.close fd;
         failwith (Printf.sprintf "cannot bind %s: %s" path (Unix.error_message e)));
      Unix.listen fd 64;
      fd
  | Tcp (host, port) ->
      let inet =
        try (Unix.gethostbyname host).Unix.h_addr_list.(0)
        with Not_found -> failwith (Printf.sprintf "cannot resolve host %S" host)
      in
      let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
      Unix.setsockopt fd Unix.SO_REUSEADDR true;
      (try Unix.bind fd (Unix.ADDR_INET (inet, port))
       with Unix.Unix_error (e, _, _) ->
         Unix.close fd;
         failwith (Printf.sprintf "cannot bind port %d: %s" port (Unix.error_message e)));
      Unix.listen fd 64;
      fd

let close_listener addr fd =
  (try Unix.close fd with Unix.Unix_error (_, _, _) -> ());
  match addr with
  | Unix_path path -> ( try Unix.unlink path with Unix.Unix_error (_, _, _) -> ())
  | Tcp _ -> ()

(* ------------------------------------------------------------------ *)
(* Event loop                                                          *)

let stop_requested = Atomic.make false

let install_signal_handlers () =
  let request_stop = Sys.Signal_handle (fun _ -> Atomic.set stop_requested true) in
  (try Sys.set_signal Sys.sigterm request_stop with Invalid_argument _ -> ());
  (try Sys.set_signal Sys.sigint request_stop with Invalid_argument _ -> ());
  (* A client vanishing mid-write must not kill the daemon. *)
  try Sys.set_signal Sys.sigpipe Sys.Signal_ignore with Invalid_argument _ -> ()

let write_snapshot config =
  let text = Registry.to_prometheus () in
  match config.snapshot_path with
  | Some path ->
      let oc = open_out path in
      output_string oc text;
      close_out oc
  | None ->
      prerr_string "# final metrics snapshot\n";
      prerr_string text

let handle_input st conn =
  (match conn.mode with
  | M_unknown ->
      let s = Buffer.contents conn.inbuf in
      if String.length s >= 4 then
        conn.mode <- (if String.sub s 0 4 = "GET " then M_http else M_json)
      else if String.length s > 0 && s.[0] <> 'G' then conn.mode <- M_json
  | M_json | M_http -> ());
  match conn.mode with
  | M_http -> handle_http st conn
  | M_json ->
      List.iter
        (fun line ->
          match P.decode_request line with
          | Ok req -> admit st conn req
          | Error msg ->
              Registry.incr (m_errors P.Bad_request);
              send_frame conn (P.Failed { id = -1; code = P.Bad_request; message = msg }))
        (take_lines conn)
  | M_unknown -> ()

let run ?(on_ready = fun () -> ()) config =
  Atomic.set stop_requested false;
  install_signal_handlers ();
  let listener = bind_listener config.addr in
  Unix.set_nonblock listener;
  Rsj_obs.Reqlog.set_path config.log_path;
  let st =
    {
      config;
      catalog = Hashtbl.create 16;
      cache = Cache.shared ();
      queue = Queue.create ();
      queued_work = 0;
      stopping = false;
      quality = Rsj_verify.Online.create ();
      laws = Hashtbl.create 8;
      biased =
        (match Sys.getenv_opt "RSJ_SERVE_BIAS" with
        | Some s when String.trim s <> "" && String.trim s <> "0" -> true
        | _ -> false);
      bias_universes = Hashtbl.create 8;
      note = { n_strategy = "none"; n_reason = "none"; n_sql = None };
      rid_serial = 0;
    }
  in
  let conns = ref [] in
  let listening = ref true in
  let buf = Bytes.create 65536 in
  on_ready ();
  let close_conn conn =
    (try Unix.close conn.fd with Unix.Unix_error (_, _, _) -> ());
    conns := List.filter (fun c -> c != conn) !conns
  in
  let accept_all () =
    let again = ref true in
    while !again do
      match Unix.accept listener with
      | fd, _ ->
          Unix.set_nonblock fd;
          Registry.incr (Lazy.force m_connections);
          conns :=
            {
              fd;
              inbuf = Buffer.create 256;
              out = Queue.create ();
              out_ofs = 0;
              mode = M_unknown;
              eof = false;
              dead = false;
              queued = 0;
            }
            :: !conns
      | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _) ->
          again := false
      | exception Unix.Unix_error (_, _, _) -> again := false
    done
  in
  let read_conn conn =
    match Unix.read conn.fd buf 0 (Bytes.length buf) with
    | 0 -> conn.eof <- true
    | n -> Buffer.add_subbytes conn.inbuf buf 0 n
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _) -> ()
    | exception Unix.Unix_error (_, _, _) -> conn.dead <- true
  in
  let finished = ref false in
  (* Drain linger: once stopping, keep the loop alive until this
     deadline so pre-existing connections can still observe the 503
     /healthz state (how a load balancer learns to rotate). Zero by
     default — drains exit as soon as the queue empties. *)
  let drain_deadline = ref None in
  while not !finished do
    if Atomic.get stop_requested then st.stopping <- true;
    (* Shutdown: release the address first so a replacement can bind,
       then drain below. *)
    if st.stopping && !listening then begin
      close_listener config.addr listener;
      listening := false
    end;
    if st.stopping && !drain_deadline = None then
      drain_deadline := Some (Clock.now_s () +. (config.drain_linger_ms /. 1000.));
    let reads =
      (if !listening then [ listener ] else [])
      @ List.filter_map
          (fun c -> if c.dead || c.eof then None else Some c.fd)
          !conns
    in
    let writes =
      List.filter_map (fun c -> if not c.dead && not (Queue.is_empty c.out) then Some c.fd else None) !conns
    in
    (match Unix.select reads writes [] 0.2 with
    | readable, writable, _ ->
        if !listening && List.mem listener readable then accept_all ();
        List.iter
          (fun c ->
            if List.mem c.fd readable then begin
              read_conn c;
              if not c.dead then handle_input st c
            end;
            if List.mem c.fd writable then try_flush c)
          !conns
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ());
    run_pending st;
    List.iter (fun c -> if not c.dead then try_flush c) !conns;
    (* Reap: errored connections immediately; EOF'd ones once their
       queued requests have answered and the output drained. *)
    List.iter
      (fun c ->
        if c.dead || (c.eof && c.queued = 0 && Queue.is_empty c.out) then close_conn c)
      (List.filter (fun c -> c.dead || c.eof) !conns);
    let linger_over =
      match !drain_deadline with Some d -> Clock.now_s () >= d | None -> true
    in
    if st.stopping && Queue.is_empty st.queue && linger_over then begin
      (* Drained. Give every connection one last flush, then leave. *)
      List.iter
        (fun c ->
          if not c.dead then try_flush c;
          close_conn c)
        !conns;
      finished := true
    end
  done;
  if !listening then close_listener config.addr listener;
  Rsj_obs.Runtime.publish_gc ();
  (* The daemon's spans go to the RSJ_TRACE destination at exit —
     the serve-path analogue of with_tracing in bin/rsj.ml. *)
  (if Rsj_obs.enabled () then
     match Rsj_obs.env_trace_path () with
     | Some path -> Rsj_obs.Trace.write_file path
     | None -> ());
  Rsj_obs.Reqlog.close ();
  write_snapshot config

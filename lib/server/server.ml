open Rsj_relation
module Json = Rsj_obs.Json
module Registry = Rsj_obs.Registry
module Clock = Rsj_obs.Clock
module Strategy = Rsj_core.Strategy
module Cache = Rsj_cache.Structure_cache
module P = Protocol

type addr = Unix_path of string | Tcp of string * int

let addr_to_string = function
  | Unix_path p -> p
  | Tcp (host, port) -> Printf.sprintf "tcp:%s:%d" host port

let addr_of_string s =
  match String.split_on_char ':' s with
  | [ "tcp"; host; port ] -> (
      match int_of_string_opt port with
      | Some p when p > 0 && p < 65536 -> Ok (Tcp (host, p))
      | _ -> Error (Printf.sprintf "bad TCP port in %S" s))
  | "tcp" :: _ -> Error (Printf.sprintf "bad TCP address %S (want tcp:HOST:PORT)" s)
  | [ "unix"; path ] -> Ok (Unix_path path)
  | _ -> Ok (Unix_path s)

type config = {
  addr : addr;
  max_queued_work : int;
  frame_rows : int;
  snapshot_path : string option;
}

let env_int name default =
  match Sys.getenv_opt name with
  | Some s -> ( match int_of_string_opt s with Some v when v > 0 -> v | _ -> default)
  | None -> default

let default_config addr =
  {
    addr;
    max_queued_work = env_int "RSJ_SERVE_QUEUE_BUDGET" 1_000_000;
    frame_rows = 256;
    snapshot_path = Sys.getenv_opt "RSJ_SERVE_SNAPSHOT";
  }

(* ------------------------------------------------------------------ *)
(* Telemetry                                                           *)

let m_requests op =
  Registry.counter ~help:"Requests received by the sampling service" ~labels:[ ("op", op) ]
    "rsj_serve_requests_total"

let m_errors code =
  Registry.counter ~help:"Request failures by typed error code"
    ~labels:[ ("code", P.error_code_to_string code) ]
    "rsj_serve_errors_total"

let m_connections =
  lazy (Registry.counter ~help:"Connections accepted" "rsj_serve_connections_total")

let m_request_seconds =
  lazy (Registry.histogram ~help:"Request execution latency" "rsj_serve_request_seconds")

let m_queue_depth = lazy (Registry.gauge ~help:"Requests waiting in the FIFO" "rsj_serve_queue_depth")

let m_queued_work =
  lazy (Registry.gauge ~help:"Sample tuples requested by waiting requests" "rsj_serve_queued_work")

(* ------------------------------------------------------------------ *)
(* Connections                                                         *)

type mode = M_unknown | M_json | M_http

type conn = {
  fd : Unix.file_descr;
  inbuf : Buffer.t;
  out : string Queue.t;  (** Encoded frames (newline included) not yet fully written. *)
  mutable out_ofs : int;  (** Bytes of [Queue.peek out] already written. *)
  mutable mode : mode;
  mutable eof : bool;  (** Peer stopped sending; flush then close. *)
  mutable dead : bool;  (** Socket error; discard without flushing. *)
  mutable queued : int;  (** Requests from this connection still in the FIFO. *)
}

type pending = { p_conn : conn; p_req : P.request; p_enqueued_s : float; p_work : int }

type state = {
  config : config;
  catalog : (string, Relation.t) Hashtbl.t;
  cache : Cache.t;
  queue : pending Queue.t;
  mutable queued_work : int;
  mutable stopping : bool;
}

exception Reject of P.error_code * string

let rejectf code fmt = Printf.ksprintf (fun s -> raise (Reject (code, s))) fmt

let lookup st name =
  match Hashtbl.find_opt st.catalog name with
  | Some rel -> rel
  | None -> rejectf P.Unknown_relation "no relation %S registered (use the register op)" name

(* ------------------------------------------------------------------ *)
(* Request execution (runs on the loop thread, FIFO)                   *)

let frame_rows_of lst n =
  (* Split [lst] into chunks of [n]. *)
  let rec go acc cur k = function
    | [] -> List.rev (if cur = [] then acc else List.rev cur :: acc)
    | x :: tl ->
        if k = n then go (List.rev cur :: acc) [ x ] 1 tl else go acc (x :: cur) (k + 1) tl
  in
  go [] [] 0 lst

let stream_rows ~id ~frame_rows rows done_detail =
  let frames =
    List.map (fun chunk -> P.Rows { id; rows = chunk }) (frame_rows_of rows frame_rows)
  in
  frames @ [ P.Done { id; detail = done_detail } ]

let exec_register st ~id ~name ~source =
  let rel =
    match source with
    | P.From_path path ->
        if not (Sys.file_exists path) then rejectf P.Bad_request "no such file %S" path;
        (try Rsj_relation.Csv_io.load ~path Rsj_workload.Zipf_tables.schema
         with Failure msg -> rejectf P.Bad_request "cannot load %S: %s" path msg)
    | P.Inline (cols, rows) -> (
        if cols = [] then rejectf P.Bad_request "inline register needs a non-empty schema";
        try Relation.of_rows ~name (Schema.of_list cols) rows
        with Invalid_argument msg -> rejectf P.Bad_request "bad inline rows: %s" msg)
  in
  (match Hashtbl.find_opt st.catalog name with
  | Some old -> Cache.invalidate st.cache old
  | None -> ());
  Hashtbl.replace st.catalog name rel;
  [
    P.Ack
      {
        id;
        detail =
          [ ("name", Json.Str name); ("rows", Json.Int (Relation.cardinality rel)) ];
      };
  ]

let exec_sample st ~id ~left ~right ~r ~strategy ~seed ~wor ~domains ~on =
  if r < 0 then rejectf P.Bad_request "r must be non-negative, got %d" r;
  if domains < 1 then rejectf P.Bad_request "domains must be at least 1, got %d" domains;
  let l = lookup st left and rt = lookup st right in
  let key_of rel =
    match Schema.column_index_opt (Relation.schema rel) on with
    | Some i -> i
    | None -> rejectf P.Bad_request "relation %S has no column %S" (Relation.name rel) on
  in
  let left_key = key_of l and right_key = key_of rt in
  let env = Cache.env st.cache ~seed ~left:l ~right:rt ~left_key ~right_key () in
  let strategy, picked =
    match strategy with
    | Some name -> (
        match Strategy.of_name name with
        | Some s -> (s, None)
        | None ->
            rejectf P.Unknown_strategy "unknown strategy %S (try: %s)" name
              (String.concat ", " (List.map Strategy.name Strategy.all)))
    | None ->
        let catalog = Rsj_optimizer.Catalog.of_env ~availability:Strategy.all_available env in
        let s, d =
          Rsj_optimizer.Picker.choose_counted catalog (Rsj_optimizer.Cost_model.shape ~r)
        in
        (s, Some d)
  in
  let result =
    try
      if wor then Rsj_parallel.run_wor env strategy ~r ~domains
      else Rsj_parallel.run env strategy ~r ~domains
    with Failure msg | Invalid_argument msg -> rejectf P.Engine_error "%s" msg
  in
  let rows = Array.to_list (Array.map Array.to_list result.Strategy.sample) in
  let detail =
    [
      ("strategy", Json.Str (Strategy.name result.Strategy.strategy));
      ("tuples", Json.Int (Array.length result.Strategy.sample));
      ("join_size", Json.Int (Strategy.env_join_size env));
      ("elapsed_s", Json.Float result.Strategy.elapsed_seconds);
    ]
    @
    match picked with
    | Some d ->
        [ ("picker_reason", Json.Str (Rsj_optimizer.Picker.reason_to_string d.Rsj_optimizer.Picker.reason)) ]
    | None -> []
  in
  stream_rows ~id ~frame_rows:st.config.frame_rows rows detail

let exec_query st ~id ~sql ~seed =
  let catalog = Hashtbl.fold (fun name rel acc -> (name, rel) :: acc) st.catalog [] in
  match Rsj_sql.Engine.run ~seed catalog sql with
  | Error msg -> rejectf P.Engine_error "%s" msg
  | Ok result ->
      let open Rsj_sql in
      let rows = List.map Array.to_list result.Engine.rows in
      let columns =
        Array.to_list (Schema.columns result.Engine.schema)
        |> List.map (fun (c : Schema.column) -> Json.Str c.name)
      in
      let detail =
        [
          ("columns", Json.List columns);
          ("tuples", Json.Int (List.length rows));
          ("work", Json.Int (Rsj_exec.Metrics.total_work result.Engine.metrics));
          ("explained", Json.Bool result.Engine.explained);
        ]
        @ (if result.Engine.explained then
             [ ("plan", Json.Str (Format.asprintf "%a" Rsj_exec.Plan.explain result.Engine.plan)) ]
           else [])
        @
        match result.Engine.decision with
        | Some d ->
            [ ("picked", Json.Str (Strategy.name d.Rsj_optimizer.Picker.chosen)) ]
        | None -> []
      in
      stream_rows ~id ~frame_rows:st.config.frame_rows rows detail

let exec_stats st ~id =
  let s = Cache.stats st.cache in
  [
    P.Ack
      {
        id;
        detail =
          [
            ("hits", Json.Int s.Cache.hits);
            ("misses", Json.Int s.Cache.misses);
            ("evictions", Json.Int s.Cache.evictions);
            ("invalidations", Json.Int s.Cache.invalidations);
            ("entries", Json.Int s.Cache.entries);
            ("bytes", Json.Int s.Cache.bytes);
            ( "max_bytes",
              match Cache.max_bytes st.cache with Some b -> Json.Int b | None -> Json.Null );
            (* Per-kind hit/miss split, so clients can see which
               structures (chain walkers with their alias tables,
               indexes, statistics) the warm cache is actually
               serving. *)
            ( "by_kind",
              Json.Obj
                (List.map
                   (fun (kind, (h, m)) ->
                     (kind, Json.Obj [ ("hits", Json.Int h); ("misses", Json.Int m) ]))
                   s.Cache.by_kind) );
          ];
      };
  ]

let execute st (req : P.request) =
  match req with
  | P.Ping { id } -> [ P.Ack { id; detail = [ ("pong", Json.Bool true) ] } ]
  | P.Register { id; name; source } -> exec_register st ~id ~name ~source
  | P.Sample { id; left; right; r; strategy; seed; wor; domains; on; deadline_ms = _ } ->
      exec_sample st ~id ~left ~right ~r ~strategy ~seed ~wor ~domains ~on
  | P.Query { id; sql; seed; deadline_ms = _ } -> exec_query st ~id ~sql ~seed
  | P.Invalidate { id; name } ->
      Cache.invalidate st.cache (lookup st name);
      [ P.Ack { id; detail = [ ("name", Json.Str name) ] } ]
  | P.Metrics { id } ->
      [ P.Ack { id; detail = [ ("prometheus", Json.Str (Registry.to_prometheus ())) ] } ]
  | P.Stats { id } -> exec_stats st ~id
  | P.Shutdown { id } ->
      st.stopping <- true;
      [ P.Ack { id; detail = [ ("stopping", Json.Bool true) ] } ]

(* ------------------------------------------------------------------ *)
(* Wire plumbing                                                       *)

let send_frame conn resp = Queue.add (P.encode_response resp ^ "\n") conn.out

let send_raw conn s = Queue.add s conn.out

let try_flush conn =
  (* Write as much queued output as the socket accepts right now. *)
  let again = ref true in
  while !again && not (Queue.is_empty conn.out) && not conn.dead do
    let head = Queue.peek conn.out in
    let len = String.length head - conn.out_ofs in
    match Unix.write_substring conn.fd head conn.out_ofs len with
    | n ->
        if n = len then begin
          ignore (Queue.pop conn.out);
          conn.out_ofs <- 0
        end
        else begin
          conn.out_ofs <- conn.out_ofs + n;
          again := false
        end
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _) ->
        again := false
    | exception Unix.Unix_error (_, _, _) ->
        conn.dead <- true
  done

(* Pull complete lines off the connection's input buffer, leaving any
   trailing fragment in place. *)
let take_lines conn =
  let s = Buffer.contents conn.inbuf in
  match String.rindex_opt s '\n' with
  | None -> []
  | Some last ->
      Buffer.clear conn.inbuf;
      Buffer.add_string conn.inbuf (String.sub s (last + 1) (String.length s - last - 1));
      String.split_on_char '\n' (String.sub s 0 last)
      |> List.map (fun line ->
             let n = String.length line in
             if n > 0 && line.[n - 1] = '\r' then String.sub line 0 (n - 1) else line)
      |> List.filter (fun line -> line <> "")

let http_response ~status ~body =
  Printf.sprintf "HTTP/1.1 %s\r\nContent-Type: text/plain; version=0.0.4\r\nContent-Length: %d\r\nConnection: close\r\n\r\n%s"
    status (String.length body) body

(* One HTTP request per connection ("Connection: close"): answer
   GET /metrics with the Prometheus registry, 404 anything else. *)
let handle_http conn =
  let s = Buffer.contents conn.inbuf in
  let complete =
    (* Headers end at a blank line; we never read a body. *)
    let rec find i =
      if i + 1 >= String.length s then false
      else if s.[i] = '\n' && (s.[i + 1] = '\n' || (s.[i + 1] = '\r' && i + 2 < String.length s && s.[i + 2] = '\n')) then true
      else find (i + 1)
    in
    find 0
  in
  if complete then begin
    let first_line =
      match String.index_opt s '\n' with
      | Some i ->
          let l = String.sub s 0 i in
          if l <> "" && l.[String.length l - 1] = '\r' then String.sub l 0 (String.length l - 1) else l
      | None -> s
    in
    let response =
      match String.split_on_char ' ' first_line with
      | "GET" :: path :: _ when path = "/metrics" || path = "/metrics/" ->
          http_response ~status:"200 OK" ~body:(Registry.to_prometheus ())
      | _ -> http_response ~status:"404 Not Found" ~body:"only GET /metrics is served\n"
    in
    Buffer.clear conn.inbuf;
    send_raw conn response;
    conn.eof <- true (* flush, then close *)
  end

(* ------------------------------------------------------------------ *)
(* Admission and the FIFO                                              *)

let work_of (req : P.request) =
  match req with
  | P.Sample { r; _ } -> max r 1
  | P.Query _ -> 64 (* flat charge: the engine resolves its own r *)
  | _ -> 0

let publish_queue_gauges st =
  Registry.set_gauge (Lazy.force m_queue_depth) (float_of_int (Queue.length st.queue));
  Registry.set_gauge (Lazy.force m_queued_work) (float_of_int st.queued_work)

let fail_request conn ~id code message =
  Registry.incr (m_errors code);
  send_frame conn (P.Failed { id; code; message })

let admit st conn (req : P.request) =
  Registry.incr (m_requests (P.request_op req));
  let id = P.request_id req in
  if st.stopping then fail_request conn ~id P.Shutting_down "server is draining"
  else begin
    let w = work_of req in
    if w > 0 && not (Queue.is_empty st.queue) && st.queued_work + w > st.config.max_queued_work
    then
      fail_request conn ~id P.Overloaded
        (Printf.sprintf "queued sample work %d + %d exceeds budget %d" st.queued_work w
           st.config.max_queued_work)
    else begin
      conn.queued <- conn.queued + 1;
      st.queued_work <- st.queued_work + w;
      Queue.add { p_conn = conn; p_req = req; p_enqueued_s = Clock.now_s (); p_work = w } st.queue;
      publish_queue_gauges st
    end
  end

let deadline_of (req : P.request) =
  match req with
  | P.Sample { deadline_ms; _ } | P.Query { deadline_ms; _ } -> deadline_ms
  | _ -> None

let run_pending st =
  while not (Queue.is_empty st.queue) do
    let { p_conn = conn; p_req = req; p_enqueued_s; p_work } = Queue.pop st.queue in
    st.queued_work <- st.queued_work - p_work;
    conn.queued <- conn.queued - 1;
    publish_queue_gauges st;
    if not conn.dead then begin
      let id = P.request_id req in
      let late =
        match deadline_of req with
        | Some budget_ms -> (Clock.now_s () -. p_enqueued_s) *. 1000. > budget_ms
        | None -> false
      in
      if late then
        fail_request conn ~id P.Deadline_exceeded
          (Printf.sprintf "request waited past its %.0fms deadline"
             (Option.get (deadline_of req)))
      else begin
        let t0 = Clock.now_s () in
        (match execute st req with
        | frames -> List.iter (send_frame conn) frames
        | exception Reject (code, msg) -> fail_request conn ~id code msg
        | exception (Failure msg | Invalid_argument msg) ->
            fail_request conn ~id P.Engine_error msg);
        Registry.observe (Lazy.force m_request_seconds) (Clock.now_s () -. t0)
      end;
      try_flush conn
    end
  done

(* ------------------------------------------------------------------ *)
(* Listener                                                            *)

let bind_listener addr =
  match addr with
  | Unix_path path ->
      if String.length path >= 100 then
        failwith
          (Printf.sprintf "socket path %S too long for a Unix socket (limit ~107 bytes)" path);
      (* A crashed daemon leaves its socket file behind; a live one is
         protected only by convention, like most Unix-socket servers. *)
      (try if (Unix.lstat path).Unix.st_kind = Unix.S_SOCK then Unix.unlink path
       with Unix.Unix_error (Unix.ENOENT, _, _) -> ());
      let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      (try Unix.bind fd (Unix.ADDR_UNIX path)
       with Unix.Unix_error (e, _, _) ->
         Unix.close fd;
         failwith (Printf.sprintf "cannot bind %s: %s" path (Unix.error_message e)));
      Unix.listen fd 64;
      fd
  | Tcp (host, port) ->
      let inet =
        try (Unix.gethostbyname host).Unix.h_addr_list.(0)
        with Not_found -> failwith (Printf.sprintf "cannot resolve host %S" host)
      in
      let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
      Unix.setsockopt fd Unix.SO_REUSEADDR true;
      (try Unix.bind fd (Unix.ADDR_INET (inet, port))
       with Unix.Unix_error (e, _, _) ->
         Unix.close fd;
         failwith (Printf.sprintf "cannot bind port %d: %s" port (Unix.error_message e)));
      Unix.listen fd 64;
      fd

let close_listener addr fd =
  (try Unix.close fd with Unix.Unix_error (_, _, _) -> ());
  match addr with
  | Unix_path path -> ( try Unix.unlink path with Unix.Unix_error (_, _, _) -> ())
  | Tcp _ -> ()

(* ------------------------------------------------------------------ *)
(* Event loop                                                          *)

let stop_requested = Atomic.make false

let install_signal_handlers () =
  let request_stop = Sys.Signal_handle (fun _ -> Atomic.set stop_requested true) in
  (try Sys.set_signal Sys.sigterm request_stop with Invalid_argument _ -> ());
  (try Sys.set_signal Sys.sigint request_stop with Invalid_argument _ -> ());
  (* A client vanishing mid-write must not kill the daemon. *)
  try Sys.set_signal Sys.sigpipe Sys.Signal_ignore with Invalid_argument _ -> ()

let write_snapshot config =
  let text = Registry.to_prometheus () in
  match config.snapshot_path with
  | Some path ->
      let oc = open_out path in
      output_string oc text;
      close_out oc
  | None ->
      prerr_string "# final metrics snapshot\n";
      prerr_string text

let handle_input st conn =
  (match conn.mode with
  | M_unknown ->
      let s = Buffer.contents conn.inbuf in
      if String.length s >= 4 then
        conn.mode <- (if String.sub s 0 4 = "GET " then M_http else M_json)
      else if String.length s > 0 && s.[0] <> 'G' then conn.mode <- M_json
  | M_json | M_http -> ());
  match conn.mode with
  | M_http -> handle_http conn
  | M_json ->
      List.iter
        (fun line ->
          match P.decode_request line with
          | Ok req -> admit st conn req
          | Error msg ->
              Registry.incr (m_errors P.Bad_request);
              send_frame conn (P.Failed { id = -1; code = P.Bad_request; message = msg }))
        (take_lines conn)
  | M_unknown -> ()

let run ?(on_ready = fun () -> ()) config =
  Atomic.set stop_requested false;
  install_signal_handlers ();
  let listener = bind_listener config.addr in
  Unix.set_nonblock listener;
  let st =
    {
      config;
      catalog = Hashtbl.create 16;
      cache = Cache.shared ();
      queue = Queue.create ();
      queued_work = 0;
      stopping = false;
    }
  in
  let conns = ref [] in
  let listening = ref true in
  let buf = Bytes.create 65536 in
  on_ready ();
  let close_conn conn =
    (try Unix.close conn.fd with Unix.Unix_error (_, _, _) -> ());
    conns := List.filter (fun c -> c != conn) !conns
  in
  let accept_all () =
    let again = ref true in
    while !again do
      match Unix.accept listener with
      | fd, _ ->
          Unix.set_nonblock fd;
          Registry.incr (Lazy.force m_connections);
          conns :=
            {
              fd;
              inbuf = Buffer.create 256;
              out = Queue.create ();
              out_ofs = 0;
              mode = M_unknown;
              eof = false;
              dead = false;
              queued = 0;
            }
            :: !conns
      | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _) ->
          again := false
      | exception Unix.Unix_error (_, _, _) -> again := false
    done
  in
  let read_conn conn =
    match Unix.read conn.fd buf 0 (Bytes.length buf) with
    | 0 -> conn.eof <- true
    | n -> Buffer.add_subbytes conn.inbuf buf 0 n
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _) -> ()
    | exception Unix.Unix_error (_, _, _) -> conn.dead <- true
  in
  let finished = ref false in
  while not !finished do
    if Atomic.get stop_requested then st.stopping <- true;
    (* Shutdown: release the address first so a replacement can bind,
       then drain below. *)
    if st.stopping && !listening then begin
      close_listener config.addr listener;
      listening := false
    end;
    let reads =
      (if !listening then [ listener ] else [])
      @ List.filter_map
          (fun c -> if c.dead || c.eof then None else Some c.fd)
          !conns
    in
    let writes =
      List.filter_map (fun c -> if not c.dead && not (Queue.is_empty c.out) then Some c.fd else None) !conns
    in
    (match Unix.select reads writes [] 0.2 with
    | readable, writable, _ ->
        if !listening && List.mem listener readable then accept_all ();
        List.iter
          (fun c ->
            if List.mem c.fd readable then begin
              read_conn c;
              if not c.dead then handle_input st c
            end;
            if List.mem c.fd writable then try_flush c)
          !conns
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ());
    run_pending st;
    List.iter (fun c -> if not c.dead then try_flush c) !conns;
    (* Reap: errored connections immediately; EOF'd ones once their
       queued requests have answered and the output drained. *)
    List.iter
      (fun c ->
        if c.dead || (c.eof && c.queued = 0 && Queue.is_empty c.out) then close_conn c)
      (List.filter (fun c -> c.dead || c.eof) !conns);
    if st.stopping && Queue.is_empty st.queue then begin
      (* Drained. Give every connection one last flush, then leave. *)
      List.iter
        (fun c ->
          if not c.dead then try_flush c;
          close_conn c)
        !conns;
      finished := true
    end
  done;
  if !listening then close_listener config.addr listener;
  write_snapshot config

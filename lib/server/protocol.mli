(** Wire protocol of the sampling service: newline-delimited JSON.

    One request per line, one or more response frames per request. A
    request carries a client-chosen [id]; every response frame echoes
    it, so clients may pipeline. Row-bearing operations stream their
    result as a sequence of [rows] frames (bounded rows per frame)
    terminated by one [done] frame; everything else answers with a
    single [ok] frame. Failures of any operation produce a single
    [error] frame with a typed code.

    The codec is symmetric (both encode and decode live here) so the
    server, the client library, and the conformance tests share one
    definition of the wire format. JSON values use {!Rsj_obs.Json} —
    no external JSON dependency. *)

open Rsj_relation

(** Where a registered relation's rows come from. *)
type source =
  | From_path of string  (** CSV on the server's filesystem (§8.1 schema by default). *)
  | Inline of (string * Value.ty) list * Value.t list list
      (** Schema (name, type) pairs plus the rows themselves. *)

type request =
  | Ping of { id : int }
  | Register of { id : int; name : string; source : source }
      (** Bind [name] in the server catalog; re-registering replaces
          the binding and invalidates the old relation's cache
          entries. *)
  | Sample of {
      id : int;
      left : string;
      right : string;
      r : int;
      strategy : string option;  (** [None] = cost-based picker. *)
      seed : int;
      wor : bool;
      domains : int;
      on : string;  (** Join column name (both sides); default "col2". *)
      deadline_ms : float option;
          (** Budget from receipt to start of execution; exceeded
              requests fail with [Deadline_exceeded] instead of
              running. Validated at decode: zero, negative or NaN
              budgets are rejected with [Bad_request]. *)
      rid : string option;
          (** Client-supplied request id for end-to-end tracing; the
              server mints one when absent, and either way echoes it in
              the [done] frame, every trace span and the request-log
              line. Optional on the wire — old clients still parse. *)
    }
  | Query of {
      id : int;
      sql : string;
      seed : int;
      deadline_ms : float option;
      rid : string option;
    }
  | Invalidate of { id : int; name : string }
      (** Drop the relation's warm-cache entries (keeps the catalog
          binding). *)
  | Metrics of { id : int }  (** Prometheus text of the whole registry. *)
  | Stats of { id : int }  (** Structure-cache counters. *)
  | Shutdown of { id : int }  (** Ack, then drain and exit. *)

type error_code =
  | Bad_request  (** Malformed JSON, unknown op, missing/ill-typed field. *)
  | Unknown_relation
  | Unknown_strategy
  | Engine_error  (** SQL parse/plan/execution failure. *)
  | Deadline_exceeded
  | Overloaded  (** Admission controller rejected: queued sample work over budget. *)
  | Shutting_down

type response =
  | Ack of { id : int; detail : (string * Rsj_obs.Json.t) list }
  | Rows of { id : int; rows : Value.t list list }
  | Done of { id : int; detail : (string * Rsj_obs.Json.t) list }
  | Failed of { id : int; code : error_code; message : string }

val request_id : request -> int
val response_id : response -> int
val request_op : request -> string
(** Stable operation name ("ping", "register", ... ) for metric labels. *)

val request_rid : request -> string option
(** The client-supplied request id, when the operation carries one. *)

val error_code_to_string : error_code -> string
val error_code_of_string : string -> error_code option

val value_to_json : Value.t -> Rsj_obs.Json.t
val value_of_json : Rsj_obs.Json.t -> (Value.t, string) result
(** Cell codec: [Null]/[Bool]→error/[Int]/[Float]/[Str] map onto
    {!Rsj_relation.Value.t} losslessly. *)

val tuple_to_json : Tuple.t -> Rsj_obs.Json.t

val encode_request : request -> string
(** One line, no trailing newline. *)

val decode_request : string -> (request, string) result

val encode_response : response -> string
val decode_response : string -> (response, string) result

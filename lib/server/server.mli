(** The [rsj serve] daemon: a long-running sampling service.

    One process holds the registered relations and the process-wide
    {!Rsj_cache.Structure_cache}, so the auxiliary structures every
    strategy needs (paper Table 1) are built once and reused across
    requests — the warm path. The event loop is a single-threaded
    [Unix.select] multiplexer: any number of clients connect and
    pipeline newline-delimited JSON requests ({!Protocol}); requests
    are executed FIFO on the loop thread, so for a fixed seed a served
    sample is byte-identical to the same in-process run
    ({!Rsj_parallel.run} at the requested domain count).

    Operational behavior:
    - {b Deadlines}: a request carrying [deadline_ms] fails with
      [Deadline_exceeded] if it is still queued when the budget
      elapses — it never starts late.
    - {b Admission control}: queued sample work (the sum of requested
      [r] over waiting requests) is capped; requests beyond the cap
      are rejected immediately with [Overloaded] rather than queued.
      A request is always admitted when the queue is empty, so the
      service keeps making progress whatever the cap.
    - {b Metrics}: [GET /metrics] on the same socket answers with the
      Prometheus text of {!Rsj_obs.Registry} (the listener sniffs the
      first bytes; JSON clients are unaffected), covering the
      [rsj_structure_cache_*] and [rsj_serve_*] families.
    - {b Graceful shutdown}: SIGINT/SIGTERM (or a [shutdown] request)
      stop the accept path, close and unlink the listening socket
      {e first} (so a replacement daemon can bind immediately), drain
      the queued requests, flush every connection, and write a final
      metrics snapshot. *)

type addr = Unix_path of string | Tcp of string * int

val addr_to_string : addr -> string

val addr_of_string : string -> (addr, string) result
(** ["tcp:HOST:PORT"] is TCP; anything else is a Unix-domain socket
    path (an explicit ["unix:"] prefix is stripped). *)

type config = {
  addr : addr;
  max_queued_work : int;
      (** Admission cap on queued sample tuples (default 1_000_000;
          [RSJ_SERVE_QUEUE_BUDGET] overrides). *)
  frame_rows : int;  (** Rows per streamed [rows] frame (default 256). *)
  snapshot_path : string option;
      (** Where the final metrics snapshot goes; [None] = stderr
          ([RSJ_SERVE_SNAPSHOT] overrides). *)
  drain_linger_ms : float;
      (** After SIGTERM/shutdown, keep the loop alive this long past
          the drain so pre-existing connections can observe the 503
          [GET /healthz] state (default 0;
          [RSJ_SERVE_DRAIN_LINGER_MS] overrides). *)
  slow_ms : float;
      (** Requests slower than this emit a [request.slow] trace
          exemplar and bump [rsj_serve_slow_requests_total] (default
          100; [RSJ_SLOW_MS] overrides). *)
  log_path : string option;
      (** NDJSON request log destination; [None] = disabled ([RSJ_LOG]
          overrides). One line per request: id, op, sql/strategy,
          picker reason, cache hit/miss, deadline verdict, latency,
          GC words allocated. *)
}

val default_config : addr -> config
(** Defaults with the environment overrides applied. *)

val run : ?on_ready:(unit -> unit) -> config -> unit
(** Bind, listen and serve until shutdown. [on_ready] fires once the
    socket is listening (an embedding can synchronize on it). A stale
    Unix socket file left by a crashed daemon is unlinked before
    binding. Raises [Failure] on bind/listen errors. *)

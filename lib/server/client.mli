(** Blocking client for the sampling service.

    Wraps one socket connection with line framing, request-id
    allocation and typed helpers for every {!Protocol} operation. The
    low-level {!send}/{!next_response} pair is exposed for pipelining
    (the bench harness keeps several requests in flight per
    connection); the helpers are strictly request/response. *)

open Rsj_relation

type t

val connect : Server.addr -> t
(** Raises [Failure] when the server is unreachable. *)

val close : t -> unit
val fd : t -> Unix.file_descr

val fresh_id : t -> int
(** Next request id on this connection (monotone). *)

val send : t -> Protocol.request -> unit
(** Write one request line (blocking). *)

val next_response : t -> Protocol.response
(** Read one response frame (blocking). Raises [Failure] on EOF or an
    undecodable frame. *)

type reply = {
  rows : Value.t list list;  (** Concatenation of the [rows] frames. *)
  detail : (string * Rsj_obs.Json.t) list;  (** The [ok]/[done] frame's payload. *)
}

val collect : t -> id:int -> (reply, Protocol.error_code * string) result
(** Read frames until the terminal frame for [id] arrives. Frames for
    other ids raise [Failure] (the blocking helpers never interleave). *)

val rpc : t -> Protocol.request -> (reply, Protocol.error_code * string) result
(** {!send} then {!collect}. *)

(** {1 Typed helpers} *)

val ping : t -> bool
val register_path : t -> name:string -> path:string -> (int, string) result
(** Rows loaded, or an error message. *)

val register_rows :
  t -> name:string -> schema:(string * Value.ty) list -> rows:Value.t list list ->
  (int, string) result

val sample :
  t ->
  left:string ->
  right:string ->
  r:int ->
  ?strategy:string ->
  ?seed:int ->
  ?wor:bool ->
  ?domains:int ->
  ?on:string ->
  ?deadline_ms:float ->
  ?rid:string ->
  unit ->
  (reply, Protocol.error_code * string) result

val query :
  t -> sql:string -> ?seed:int -> ?deadline_ms:float -> ?rid:string -> unit ->
  (reply, Protocol.error_code * string) result

val metrics : t -> (string, string) result
(** Prometheus text of the server's registry. *)

val cache_stats : t -> ((string * Rsj_obs.Json.t) list, string) result
val invalidate : t -> name:string -> (unit, string) result
val shutdown : t -> (unit, string) result

open Rsj_relation
module Json = Rsj_obs.Json

type source =
  | From_path of string
  | Inline of (string * Value.ty) list * Value.t list list

type request =
  | Ping of { id : int }
  | Register of { id : int; name : string; source : source }
  | Sample of {
      id : int;
      left : string;
      right : string;
      r : int;
      strategy : string option;
      seed : int;
      wor : bool;
      domains : int;
      on : string;
      deadline_ms : float option;
      rid : string option;
    }
  | Query of {
      id : int;
      sql : string;
      seed : int;
      deadline_ms : float option;
      rid : string option;
    }
  | Invalidate of { id : int; name : string }
  | Metrics of { id : int }
  | Stats of { id : int }
  | Shutdown of { id : int }

type error_code =
  | Bad_request
  | Unknown_relation
  | Unknown_strategy
  | Engine_error
  | Deadline_exceeded
  | Overloaded
  | Shutting_down

type response =
  | Ack of { id : int; detail : (string * Json.t) list }
  | Rows of { id : int; rows : Value.t list list }
  | Done of { id : int; detail : (string * Json.t) list }
  | Failed of { id : int; code : error_code; message : string }

let request_id = function
  | Ping { id }
  | Register { id; _ }
  | Sample { id; _ }
  | Query { id; _ }
  | Invalidate { id; _ }
  | Metrics { id }
  | Stats { id }
  | Shutdown { id } ->
      id

let response_id = function
  | Ack { id; _ } | Rows { id; _ } | Done { id; _ } | Failed { id; _ } -> id

let request_rid = function
  | Sample { rid; _ } | Query { rid; _ } -> rid
  | Ping _ | Register _ | Invalidate _ | Metrics _ | Stats _ | Shutdown _ -> None

let request_op = function
  | Ping _ -> "ping"
  | Register _ -> "register"
  | Sample _ -> "sample"
  | Query _ -> "query"
  | Invalidate _ -> "invalidate"
  | Metrics _ -> "metrics"
  | Stats _ -> "stats"
  | Shutdown _ -> "shutdown"

let error_code_to_string = function
  | Bad_request -> "bad_request"
  | Unknown_relation -> "unknown_relation"
  | Unknown_strategy -> "unknown_strategy"
  | Engine_error -> "engine_error"
  | Deadline_exceeded -> "deadline_exceeded"
  | Overloaded -> "overloaded"
  | Shutting_down -> "shutting_down"

let error_code_of_string = function
  | "bad_request" -> Some Bad_request
  | "unknown_relation" -> Some Unknown_relation
  | "unknown_strategy" -> Some Unknown_strategy
  | "engine_error" -> Some Engine_error
  | "deadline_exceeded" -> Some Deadline_exceeded
  | "overloaded" -> Some Overloaded
  | "shutting_down" -> Some Shutting_down
  | _ -> None

(* ------------------------------------------------------------------ *)
(* Cell / schema codecs                                                *)

let value_to_json = function
  | Value.Null -> Json.Null
  | Value.Int i -> Json.Int i
  | Value.Float f -> Json.Float f
  | Value.Str s -> Json.Str s

let value_of_json = function
  | Json.Null -> Ok Value.Null
  | Json.Int i -> Ok (Value.Int i)
  | Json.Float f -> Ok (Value.Float f)
  | Json.Str s -> Ok (Value.Str s)
  | Json.Bool _ | Json.List _ | Json.Obj _ -> Error "cell must be null, number or string"

let tuple_to_json t = Json.List (Array.to_list (Array.map value_to_json t))

let ty_to_wire = function Value.T_int -> "int" | Value.T_float -> "float" | Value.T_str -> "str"

let ty_of_wire = function
  | "int" -> Some Value.T_int
  | "float" -> Some Value.T_float
  | "str" -> Some Value.T_str
  | _ -> None

let schema_to_json cols =
  Json.List
    (List.map (fun (name, ty) -> Json.Obj [ ("name", Json.Str name); ("type", Json.Str (ty_to_wire ty)) ]) cols)

(* ------------------------------------------------------------------ *)
(* Field extraction helpers (decode side)                              *)

exception Bad of string

let failf fmt = Printf.ksprintf (fun s -> raise (Bad s)) fmt

let field name j = match Json.member name j with Some v -> v | None -> failf "missing field %S" name

let opt_field name j = Json.member name j

let as_int name = function Json.Int i -> i | _ -> failf "field %S must be an integer" name

let as_float name = function
  | Json.Int i -> float_of_int i
  | Json.Float f -> f
  | _ -> failf "field %S must be a number" name

let as_str name = function Json.Str s -> s | _ -> failf "field %S must be a string" name

let as_bool name = function Json.Bool b -> b | _ -> failf "field %S must be a boolean" name

let as_list name = function Json.List l -> l | _ -> failf "field %S must be a list" name

let int_field name j = as_int name (field name j)
let str_field name j = as_str name (field name j)

let opt_default name conv default j =
  match opt_field name j with Some Json.Null | None -> default | Some v -> conv name v

(* deadline_ms is validated at the protocol boundary: a zero, negative
   or NaN budget can never be met and must not reach admission control
   (where "elapsed > budget" arithmetic on NaN silently never fires). *)
let deadline_field j =
  match opt_field "deadline_ms" j with
  | None | Some Json.Null -> None
  | Some v ->
      let d = as_float "deadline_ms" v in
      if Float.is_nan d || d <= 0. then
        failf "field \"deadline_ms\" must be a positive number of milliseconds"
      else Some d

let rid_field j = Option.map (as_str "rid") (opt_field "rid" j)

(* ------------------------------------------------------------------ *)
(* Requests                                                            *)

let encode_request req =
  let base id op rest = Json.Obj (("op", Json.Str op) :: ("id", Json.Int id) :: rest) in
  let j =
    match req with
    | Ping { id } -> base id "ping" []
    | Register { id; name; source } ->
        let src =
          match source with
          | From_path p -> [ ("path", Json.Str p) ]
          | Inline (cols, rows) ->
              [
                ("schema", schema_to_json cols);
                ("rows", Json.List (List.map (fun row -> Json.List (List.map value_to_json row)) rows));
              ]
        in
        base id "register" (("name", Json.Str name) :: src)
    | Sample { id; left; right; r; strategy; seed; wor; domains; on; deadline_ms; rid } ->
        base id "sample"
          ([
             ("left", Json.Str left);
             ("right", Json.Str right);
             ("r", Json.Int r);
             ("seed", Json.Int seed);
             ("wor", Json.Bool wor);
             ("domains", Json.Int domains);
             ("on", Json.Str on);
           ]
          @ (match strategy with Some s -> [ ("strategy", Json.Str s) ] | None -> [])
          @ (match deadline_ms with Some d -> [ ("deadline_ms", Json.Float d) ] | None -> [])
          @ match rid with Some r -> [ ("rid", Json.Str r) ] | None -> [])
    | Query { id; sql; seed; deadline_ms; rid } ->
        base id "query"
          ([ ("sql", Json.Str sql); ("seed", Json.Int seed) ]
          @ (match deadline_ms with Some d -> [ ("deadline_ms", Json.Float d) ] | None -> [])
          @ match rid with Some r -> [ ("rid", Json.Str r) ] | None -> [])
    | Invalidate { id; name } -> base id "invalidate" [ ("name", Json.Str name) ]
    | Metrics { id } -> base id "metrics" []
    | Stats { id } -> base id "stats" []
    | Shutdown { id } -> base id "shutdown" []
  in
  Json.to_string j

let decode_row name j =
  List.map
    (fun cell -> match value_of_json cell with Ok v -> v | Error e -> failf "field %S: %s" name e)
    (as_list name j)

let decode_schema j =
  List.map
    (fun col ->
      let name = str_field "name" col in
      let ty = str_field "type" col in
      match ty_of_wire ty with
      | Some ty -> (name, ty)
      | None -> failf "unknown column type %S (want int|float|str)" ty)
    (as_list "schema" j)

let decode_request line =
  match Json.parse line with
  | Error e -> Error (Printf.sprintf "bad JSON: %s" e)
  | Ok j -> (
      try
        let id = int_field "id" j in
        match str_field "op" j with
        | "ping" -> Ok (Ping { id })
        | "register" ->
            let name = str_field "name" j in
            let source =
              match (opt_field "path" j, opt_field "rows" j) with
              | Some p, None -> From_path (as_str "path" p)
              | None, Some rows ->
                  Inline (decode_schema (field "schema" j), List.map (decode_row "row") (as_list "rows" rows))
              | Some _, Some _ -> failf "register takes path or rows, not both"
              | None, None -> failf "register needs a path or inline rows"
            in
            Ok (Register { id; name; source })
        | "sample" ->
            Ok
              (Sample
                 {
                   id;
                   left = str_field "left" j;
                   right = str_field "right" j;
                   r = int_field "r" j;
                   strategy = Option.map (as_str "strategy") (opt_field "strategy" j);
                   seed = opt_default "seed" as_int 0x5EED j;
                   wor = opt_default "wor" as_bool false j;
                   domains = opt_default "domains" as_int 1 j;
                   on = opt_default "on" as_str "col2" j;
                   deadline_ms = deadline_field j;
                   rid = rid_field j;
                 })
        | "query" ->
            Ok
              (Query
                 {
                   id;
                   sql = str_field "sql" j;
                   seed = opt_default "seed" as_int 0x5EED j;
                   deadline_ms = deadline_field j;
                   rid = rid_field j;
                 })
        | "invalidate" -> Ok (Invalidate { id; name = str_field "name" j })
        | "metrics" -> Ok (Metrics { id })
        | "stats" -> Ok (Stats { id })
        | "shutdown" -> Ok (Shutdown { id })
        | op -> Error (Printf.sprintf "unknown op %S" op)
      with Bad msg -> Error msg)

(* ------------------------------------------------------------------ *)
(* Responses                                                           *)

let encode_response resp =
  let j =
    match resp with
    | Ack { id; detail } -> Json.Obj (("id", Json.Int id) :: ("type", Json.Str "ok") :: detail)
    | Rows { id; rows } ->
        Json.Obj
          [
            ("id", Json.Int id);
            ("type", Json.Str "rows");
            ("rows", Json.List (List.map (fun row -> Json.List (List.map value_to_json row)) rows));
          ]
    | Done { id; detail } -> Json.Obj (("id", Json.Int id) :: ("type", Json.Str "done") :: detail)
    | Failed { id; code; message } ->
        Json.Obj
          [
            ("id", Json.Int id);
            ("type", Json.Str "error");
            ("code", Json.Str (error_code_to_string code));
            ("message", Json.Str message);
          ]
  in
  Json.to_string j

let decode_response line =
  match Json.parse line with
  | Error e -> Error (Printf.sprintf "bad JSON: %s" e)
  | Ok j -> (
      try
        let id = int_field "id" j in
        let detail_of j =
          match j with
          | Json.Obj fields -> List.filter (fun (k, _) -> k <> "id" && k <> "type") fields
          | _ -> []
        in
        match str_field "type" j with
        | "ok" -> Ok (Ack { id; detail = detail_of j })
        | "done" -> Ok (Done { id; detail = detail_of j })
        | "rows" ->
            let rows = List.map (decode_row "rows") (as_list "rows" (field "rows" j)) in
            Ok (Rows { id; rows })
        | "error" ->
            let code_s = str_field "code" j in
            let code =
              match error_code_of_string code_s with
              | Some c -> c
              | None -> failf "unknown error code %S" code_s
            in
            Ok (Failed { id; code; message = str_field "message" j })
        | ty -> Error (Printf.sprintf "unknown response type %S" ty)
      with Bad msg -> Error msg)

module Json = Rsj_obs.Json
module Clock = Rsj_obs.Clock
module Zipf_tables = Rsj_workload.Zipf_tables

let percentile sorted q =
  let n = Array.length sorted in
  if n = 0 then nan else sorted.(min (n - 1) (int_of_float (q *. float_of_int (n - 1) +. 0.5)))

let summarize latencies =
  let a = Array.of_list latencies in
  Array.sort compare a;
  let mean = Array.fold_left ( +. ) 0. a /. float_of_int (max 1 (Array.length a)) in
  (a, mean)

let rm_rf_dir dir files =
  List.iter (fun f -> try Sys.remove (Filename.concat dir f) with Sys_error _ -> ()) files;
  try Unix.rmdir dir with Unix.Unix_error (_, _, _) -> ()

let devnull_out f =
  let fd = Unix.openfile "/dev/null" [ Unix.O_WRONLY ] 0 in
  Fun.protect (fun () -> f fd) ~finally:(fun () -> Unix.close fd)

(* One cold end-to-end run: a fresh [rsj sample] process paying CSV
   load and structure construction before it can draw a single tuple. *)
let cold_run ~left_csv ~right_csv ~strategy ~r ~seed =
  devnull_out @@ fun devnull ->
  let argv =
    [|
      Sys.executable_name; "sample"; left_csv; right_csv; "--strategy"; strategy; "-r";
      string_of_int r; "--seed"; string_of_int seed;
    |]
  in
  let t0 = Clock.now_s () in
  let pid = Unix.create_process Sys.executable_name argv Unix.stdin devnull devnull in
  let _, status = Unix.waitpid [] pid in
  let dt = Clock.now_s () -. t0 in
  match status with
  | Unix.WEXITED 0 -> dt
  | Unix.WEXITED c -> failwith (Printf.sprintf "cold rsj sample exited %d" c)
  | Unix.WSIGNALED s | Unix.WSTOPPED s -> failwith (Printf.sprintf "cold rsj sample killed by signal %d" s)

let connect_with_retry addr =
  let rec go attempts =
    match Client.connect addr with
    | client -> client
    | exception Failure _ when attempts > 0 ->
        Unix.sleepf 0.05;
        go (attempts - 1)
  in
  go 100

(* Spawn an [rsj serve] daemon on [sock], optionally with extra
   environment entries ("KEY=VALUE") overriding the inherited ones. *)
let spawn_daemon ?(extra_env = []) sock =
  devnull_out @@ fun devnull ->
  let keys =
    List.filter_map
      (fun kv -> Option.map (fun i -> String.sub kv 0 i) (String.index_opt kv '='))
      extra_env
  in
  let inherited =
    List.filter
      (fun kv ->
        match String.index_opt kv '=' with
        | Some i -> not (List.mem (String.sub kv 0 i) keys)
        | None -> true)
      (Array.to_list (Unix.environment ()))
  in
  Unix.create_process_env Sys.executable_name
    [| Sys.executable_name; "serve"; "--socket"; sock |]
    (Array.of_list (inherited @ extra_env))
    Unix.stdin devnull devnull

let kill_daemon pid =
  (try Unix.kill pid Sys.sigterm with Unix.Unix_error (_, _, _) -> ());
  try ignore (Unix.waitpid [] pid) with Unix.Unix_error (_, _, _) -> ()

let run ?(clients = 4) ?(requests_per_client = 25) ?(r = 64) ?(cold_runs = 5)
    ?(strategy = "stream") ?soak_seconds ?(seed = 0x5EED) ?out () =
  (if Rsj_core.Strategy.of_name strategy = None then
     failwith (Printf.sprintf "unknown bench strategy %S" strategy));
  let clients = max 1 clients in
  let soak_seconds =
    match soak_seconds with
    | Some s -> s
    | None -> (
        match Sys.getenv_opt "RSJ_SERVE_SOAK_SECONDS" with
        | Some s -> ( match float_of_string_opt s with Some v when v >= 0. -> v | _ -> 0.)
        | None -> 0.)
  in
  let scale = Zipf_tables.Scale.from_env () in
  let dir =
    Filename.concat (Filename.get_temp_dir_name ()) (Printf.sprintf "rsj-serve-%d" (Unix.getpid ()))
  in
  (try Unix.mkdir dir 0o700 with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
  let left_csv = Filename.concat dir "t1.csv" and right_csv = Filename.concat dir "t2.csv" in
  let sock = Filename.concat dir "rsj.sock" in
  let pair =
    Zipf_tables.make_pair ~seed ~n1:scale.Zipf_tables.Scale.n1 ~n2:scale.Zipf_tables.Scale.n2
      ~z1:1. ~z2:1. ~domain:scale.Zipf_tables.Scale.domain ()
  in
  Rsj_relation.Csv_io.save ~path:left_csv pair.Zipf_tables.outer;
  Rsj_relation.Csv_io.save ~path:right_csv pair.Zipf_tables.inner;
  (* Third table for the chain phase: same shape, joined through col2,
     so t1 ⋈ t2 ⋈ t3 is a 3-level linear chain for the walker. *)
  let chain_csv = Filename.concat dir "t3.csv" in
  let t3 =
    Zipf_tables.make ~seed:(seed + 0xC4A1) ~name:"t3" ~rows:scale.Zipf_tables.Scale.n2 ~z:1.
      ~domain:scale.Zipf_tables.Scale.domain ()
  in
  Rsj_relation.Csv_io.save ~path:chain_csv t3;
  Fun.protect
    ~finally:(fun () ->
      rm_rf_dir dir
        [
          "t1.csv"; "t2.csv"; "t3.csv"; "rsj.sock"; "rsj-off.sock"; "rsj-on.sock";
          "trace-serve.json"; "requests.ndjson";
        ])
  @@ fun () ->
  (* Cold baseline first: no daemon running, nothing shared. *)
  let cold =
    List.init cold_runs (fun i -> cold_run ~left_csv ~right_csv ~strategy ~r ~seed:(seed + i))
  in
  (* Daemon: a fresh [rsj serve] process on the bench socket. Exec'd,
     not forked — OCaml 5 forbids fork in a process that has ever
     spawned a domain, and a real deployment execs the daemon anyway.
     Its startup banner goes to /dev/null to keep bench output clean. *)
  let server_pid = spawn_daemon sock in
  Fun.protect ~finally:(fun () -> kill_daemon server_pid)
  @@ fun () ->
  let admin = connect_with_retry (Server.Unix_path sock) in
  let must what = function
    | Ok v -> v
    | Error msg -> failwith (Printf.sprintf "%s failed: %s" what msg)
  in
  ignore (must "register t1" (Client.register_path admin ~name:"t1" ~path:left_csv));
  ignore (must "register t2" (Client.register_path admin ~name:"t2" ~path:right_csv));
  (* First request pays the builds and fills the cache. *)
  let warmup =
    match Client.sample admin ~left:"t1" ~right:"t2" ~r ~strategy ~seed () with
    | Ok _ -> ()
    | Error (code, msg) ->
        failwith (Printf.sprintf "warmup sample failed (%s): %s" (Protocol.error_code_to_string code) msg)
  in
  warmup;
  (* Phase 1 — unloaded warm latency: one blocking request at a time on
     one connection. This is the like-for-like counterpart of a cold
     one-shot run (same request, no queueing), so the headline speedup
     is cold mean over this p50. *)
  let single = ref [] in
  for k = 0 to requests_per_client - 1 do
    let t0 = Clock.now_s () in
    match Client.sample admin ~left:"t1" ~right:"t2" ~r ~strategy ~seed:(seed + 7000 + k) () with
    | Ok _ -> single := (Clock.now_s () -. t0) :: !single
    | Error (code, msg) ->
        failwith
          (Printf.sprintf "warm sample failed (%s): %s" (Protocol.error_code_to_string code) msg)
  done;
  (* Phase 2 — concurrent load: pipelined rounds across the client
     pool; latencies here include FIFO queueing behind the round. *)
  let pool = Array.init clients (fun _ -> connect_with_retry (Server.Unix_path sock)) in
  Fun.protect ~finally:(fun () -> Array.iter Client.close pool)
  @@ fun () ->
  let latencies = ref [] in
  let total = ref 0 in
  (* One round = one pipelined request per connection: send all, then
     collect all, measuring each from its own send. *)
  let round k =
    let sent =
      Array.mapi
        (fun i client ->
          let id = Client.fresh_id client in
          Client.send client
            (Protocol.Sample
               {
                 id;
                 left = "t1";
                 right = "t2";
                 r;
                 strategy = Some strategy;
                 seed = seed + (1000 * k) + i;
                 wor = false;
                 domains = 1;
                 on = "col2";
                 deadline_ms = None;
                 rid = None;
               });
          (id, Clock.now_s ()))
        pool
    in
    Array.iteri
      (fun i client ->
        let id, t0 = sent.(i) in
        match Client.collect client ~id with
        | Ok _ ->
            latencies := (Clock.now_s () -. t0) :: !latencies;
            incr total
        | Error (code, msg) ->
            failwith
              (Printf.sprintf "warm sample failed (%s): %s" (Protocol.error_code_to_string code) msg))
      pool
  in
  let t_start = Clock.now_s () in
  for k = 0 to requests_per_client - 1 do
    round k
  done;
  let soak_rounds = ref 0 in
  while Clock.now_s () -. t_start < soak_seconds do
    round (requests_per_client + !soak_rounds);
    incr soak_rounds
  done;
  let warm_wall = Clock.now_s () -. t_start in
  (* Phase 3 — chain reuse: a 3-table linear-chain SAMPLE routed into
     the cached chain walker. The first query pays the prepare (one
     "chain" miss in the cache block below); every later request draws
     through the memoized alias structures — the cache block's
     by_kind.chain row is the direct evidence of that reuse. *)
  ignore (must "register t3" (Client.register_path admin ~name:"t3" ~path:chain_csv));
  let chain_sql =
    Printf.sprintf
      "SELECT * FROM t1, t2, t3 WHERE t1.col2 = t2.col2 AND t2.col2 = t3.col2 SAMPLE %d" r
  in
  let chain_query k =
    let t0 = Clock.now_s () in
    match Client.query admin ~sql:chain_sql ~seed:(seed + 9000 + k) () with
    | Ok _ -> Clock.now_s () -. t0
    | Error (code, msg) ->
        failwith
          (Printf.sprintf "chain query failed (%s): %s" (Protocol.error_code_to_string code) msg)
  in
  let chain_first = chain_query (-1) in
  let chain_warm = List.init requests_per_client chain_query in
  let stats = must "cache stats" (Client.cache_stats admin) in
  must "shutdown" (Client.shutdown admin);
  Client.close admin;
  (try ignore (Unix.waitpid [] server_pid) with Unix.Unix_error (_, _, _) -> ());
  (* Phase 4 — request-telemetry overhead: the same warm
     single-connection request with the full request observability
     plane off vs on (RSJ_TRACE spans + request ids + RSJ_LOG NDJSON
     per request). Both daemons run at once and the timed requests
     alternate between them: a sequential off-phase-then-on-phase run
     measures host drift as much as telemetry (back-to-back identical
     phases on this class of host disagree by >10%), while
     interleaving puts every drift epoch on both sides of the ratio.
     The p99 ratio is the number the <3% envelope from PR 5 is checked
     against on the serve path. *)
  let telemetry_requests = 400 in
  let trace_path = Filename.concat dir "trace-serve.json" in
  let log_path = Filename.concat dir "requests.ndjson" in
  let telemetry_daemon ~extra_env ~sock f =
    let pid = spawn_daemon ~extra_env sock in
    Fun.protect ~finally:(fun () -> kill_daemon pid)
    @@ fun () ->
    let c = connect_with_retry (Server.Unix_path sock) in
    Fun.protect ~finally:(fun () -> Client.close c)
    @@ fun () ->
    ignore (must "register t1" (Client.register_path c ~name:"t1" ~path:left_csv));
    ignore (must "register t2" (Client.register_path c ~name:"t2" ~path:right_csv));
    f c
  in
  let timed_sample c k =
    let t0 = Clock.now_s () in
    match Client.sample c ~left:"t1" ~right:"t2" ~r ~strategy ~seed:(seed + 20000 + k) () with
    | Ok _ -> Clock.now_s () -. t0
    | Error (code, msg) ->
        failwith
          (Printf.sprintf "telemetry sample failed (%s): %s"
             (Protocol.error_code_to_string code) msg)
  in
  let obs_off, obs_on =
    telemetry_daemon ~extra_env:[] ~sock:(Filename.concat dir "rsj-off.sock")
    @@ fun c_off ->
    telemetry_daemon
      ~extra_env:[ "RSJ_TRACE=" ^ trace_path; "RSJ_LOG=" ^ log_path ]
      ~sock:(Filename.concat dir "rsj-on.sock")
    @@ fun c_on ->
    ignore (timed_sample c_off (-1));
    ignore (timed_sample c_on (-2));
    (* warmups: pay the builds on both daemons *)
    let off = ref [] and on = ref [] in
    for k = 0 to telemetry_requests - 1 do
      off := timed_sample c_off (2 * k) :: !off;
      on := timed_sample c_on ((2 * k) + 1) :: !on
    done;
    must "shutdown off" (Client.shutdown c_off);
    must "shutdown on" (Client.shutdown c_on);
    (!off, !on)
  in
  let cold_sorted, cold_mean = summarize cold in
  let single_sorted, single_mean = summarize !single in
  let warm_sorted, warm_mean = summarize !latencies in
  let chain_sorted, chain_mean = summarize chain_warm in
  let off_sorted, off_mean = summarize obs_off in
  let on_sorted, on_mean = summarize obs_on in
  let report =
    Json.Obj
      [
        ( "workload",
          Json.Obj
            [
              ("n1", Json.Int scale.Zipf_tables.Scale.n1);
              ("n2", Json.Int scale.Zipf_tables.Scale.n2);
              ("domain", Json.Int scale.Zipf_tables.Scale.domain);
              ("r", Json.Int r);
              ("strategy", Json.Str strategy);
              ("seed", Json.Int seed);
            ] );
        ( "cold",
          Json.Obj
            [
              ("runs", Json.Int (List.length cold));
              ("mean_s", Json.Float cold_mean);
              ("p50_s", Json.Float (percentile cold_sorted 0.5));
            ] );
        ( "warm_single",
          Json.Obj
            [
              ("requests", Json.Int (List.length !single));
              ("mean_s", Json.Float single_mean);
              ("p50_s", Json.Float (percentile single_sorted 0.5));
              ("p99_s", Json.Float (percentile single_sorted 0.99));
            ] );
        ( "warm_concurrent",
          Json.Obj
            [
              ("clients", Json.Int clients);
              ("requests", Json.Int !total);
              ("mean_s", Json.Float warm_mean);
              ("p50_s", Json.Float (percentile warm_sorted 0.5));
              ("p99_s", Json.Float (percentile warm_sorted 0.99));
              ("qps", Json.Float (float_of_int !total /. warm_wall));
              ("soak_seconds", Json.Float soak_seconds);
              ("soak_rounds", Json.Int !soak_rounds);
            ] );
        ( "speedup_cold_mean_over_warm_p50",
          Json.Float (cold_mean /. percentile single_sorted 0.5) );
        ( "chain",
          Json.Obj
            [
              ("requests", Json.Int (List.length chain_warm));
              ("first_s", Json.Float chain_first);
              ("warm_mean_s", Json.Float chain_mean);
              ("warm_p50_s", Json.Float (percentile chain_sorted 0.5));
              ( "speedup_first_over_warm_p50",
                Json.Float (chain_first /. percentile chain_sorted 0.5) );
            ] );
        ("cache", Json.Obj stats);
        ( "request_telemetry",
          Json.Obj
            [
              ("requests_each", Json.Int telemetry_requests);
              ( "obs_off",
                Json.Obj
                  [
                    ("mean_s", Json.Float off_mean);
                    ("p50_s", Json.Float (percentile off_sorted 0.5));
                    ("p99_s", Json.Float (percentile off_sorted 0.99));
                  ] );
              ( "obs_on",
                Json.Obj
                  [
                    ("mean_s", Json.Float on_mean);
                    ("p50_s", Json.Float (percentile on_sorted 0.5));
                    ("p99_s", Json.Float (percentile on_sorted 0.99));
                  ] );
              ( "p50_overhead_ratio",
                Json.Float (percentile on_sorted 0.5 /. percentile off_sorted 0.5) );
              ( "p99_overhead_ratio",
                Json.Float (percentile on_sorted 0.99 /. percentile off_sorted 0.99) );
            ] );
      ]
  in
  (match out with
  | Some path ->
      let oc = open_out path in
      output_string oc (Json.to_string report);
      output_string oc "\n";
      close_out oc
  | None -> ());
  report

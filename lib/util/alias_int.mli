(** Allocation-free Walker/Vose alias table over flat arrays — the
    int-plane twin of [Dist.Alias_table] and the O(1) half of the
    [RSJ_DRAW] draw plane.

    Construction is O(k) (Vose's worklist pairing over a scaled weight
    vector); a draw is one uniform cell pick plus one threshold
    compare, independent of [k] — against O(log k) per draw for the
    CDF binary search. The table is immutable and safe to share across
    domains.

    [draw] and [draw_many] consume the generator identically: a
    fixed-seed batch equals the same-length sequence of single draws
    element for element (pinned by test/test_alias.ml). *)

type t

val of_weights : ?total:float -> float array -> t
(** Build from non-negative weights with positive sum. [total], when
    given, must be their exact sum (callers that already validated —
    [Dist.validate_weights] — pass it to skip the defensive pass).
    Raises [Invalid_argument] on an empty array, a negative or NaN
    weight, or a non-positive sum. *)

val support : t -> int
(** Number of categories. *)

val draw : t -> Prng.t -> int
(** Draw an index with probability proportional to its weight. O(1). *)

val draw_packed : t -> Bytes.t -> int
(** {!draw} against a packed state buffer ([Prng.dump_state], >= 40
    bytes), stream-identical to {!draw}. For kernels that keep the
    state packed across many picks — nothing boxes per draw. *)

val draw_many : t -> Prng.t -> into:int array -> n:int -> unit
(** [draw_many t rng ~into ~n] fills [into.(0 .. n-1)] with [n]
    independent draws, stepping a packed copy of [rng]'s state for the
    whole batch (Wr_int's kernel discipline: nothing boxes in the
    loop; the only allocation is the 40-byte state buffer). [rng] is
    advanced exactly as [n] single {!draw}s would advance it. Raises
    [Invalid_argument] when [n < 0] or [into] is shorter than [n]. *)

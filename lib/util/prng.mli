(** Deterministic, splittable pseudo-random number generation.

    All randomized components of the library draw their randomness from a
    {!t} value so that every experiment is reproducible from a single seed.
    The generator is xoshiro256** seeded through splitmix64, which is fast,
    has a 256-bit state, and passes BigCrush; splitmix64 is also used to
    derive independent child generators ({!split}) so that parallel
    pipelines do not share streams. *)

type t
(** Mutable generator state. Not thread-safe; use {!split} to hand a
    private generator to each concurrent consumer. *)

val create : ?seed:int -> unit -> t
(** [create ~seed ()] builds a generator from [seed] (default [0x5EED]).
    Two generators built from equal seeds produce equal streams. *)

val copy : t -> t
(** [copy t] is an independent generator duplicating [t]'s current state:
    it will produce exactly the stream [t] would have produced. *)

val split : t -> t
(** [split t] advances [t] and returns a fresh generator whose stream is
    statistically independent of [t]'s subsequent output. *)

val split_n : t -> int -> t array
(** [split_n t n] advances [t] once and returns [n] fresh generators,
    mutually independent and independent of [t]'s subsequent output —
    the per-shard streams of the parallel runtime. Children are derived
    through a splitmix64 chain, so the result is a deterministic
    function of [t]'s state at the call: equal states give equal child
    arrays for every [n]. Raises [Invalid_argument] if [n < 0]. *)

val bits64 : t -> int64
(** [bits64 t] is the next raw 64-bit output word. *)

val int : t -> int -> int
(** [int t bound] is uniform on [\[0, bound)]. Raises [Invalid_argument]
    if [bound <= 0]. Uses rejection to avoid modulo bias. *)

val int_in_range : t -> lo:int -> hi:int -> int
(** [int_in_range t ~lo ~hi] is uniform on [\[lo, hi\]] inclusive.
    Raises [Invalid_argument] if [hi < lo]. *)

val float : t -> float -> float
(** [float t bound] is uniform on [\[0, bound)], with 53 bits of
    precision. *)

val unit_float : t -> float
(** [unit_float t] is uniform on [\[0, 1)]. *)

val unit_float_pos : t -> float
(** [unit_float_pos t] is uniform on [(0, 1)] — never returns [0.],
    convenient for logarithms. *)

val bool : t -> bool
(** [bool t] is a fair coin flip. *)

val bernoulli : t -> float -> bool
(** [bernoulli t p] is [true] with probability [p] (clamped to
    [\[0, 1\]]). *)

val shuffle_in_place : t -> 'a array -> unit
(** [shuffle_in_place t a] applies a uniform Fisher–Yates shuffle. *)

val pick : t -> 'a array -> 'a
(** [pick t a] is a uniformly random element of [a]. Raises
    [Invalid_argument] on an empty array. *)

val sample_distinct : t -> k:int -> n:int -> int array
(** [sample_distinct t ~k ~n] draws [k] distinct integers from
    [\[0, n)] uniformly (Floyd's algorithm), in random order. Raises
    [Invalid_argument] if [k > n] or [k < 0]. *)

val dump_state : t -> Bytes.t -> unit
(** [dump_state t buf] writes the four state words into [buf] (little
    endian at offsets 0, 8, 16, 24; [buf] must hold at least 32 bytes).
    Raw state transport for the allocation-free data-plane kernel
    ({!Wr_int}), which steps the generator inside a [Bytes] buffer so
    its inner loop never stores into boxed int64 fields. While a dumped
    state is live the owning [t] must not be drawn from; {!load_state}
    hands the stream back. *)

val load_state : t -> Bytes.t -> unit
(** [load_state t buf] overwrites [t]'s state from a buffer written by
    {!dump_state} (and possibly advanced by the kernel since). *)

val step_packed : Bytes.t -> unit
(** One xoshiro256** step on a packed state buffer; the output word is
    written little-endian at offset 32 ([buf] must hold at least 40
    bytes). Bit-for-bit the step {!bits64} performs — the single copy
    of the packed stepping code, shared by the allocation-free kernels
    ({!Wr_int}, {!Alias_int}). *)

val rand_int_packed : Bytes.t -> int -> int
(** {!int}'s rejection sampling on a packed state. Callers guarantee
    [bound >= 2]: {!int} returns 0 without drawing when the bound is 1,
    so a packed caller must skip the call to stay stream-identical. *)

val unit_float_packed : Bytes.t -> float
(** {!unit_float}'s 53-bit extraction on a packed state: one step, one
    scale, stream-identical to the unpacked call. The result travels in
    a register, so a caller that compares it immediately never boxes. *)

val state_fingerprint : t -> int64
(** [state_fingerprint t] is a hash of the current state, used by tests to
    check that [copy] and [split] detach state as documented. *)

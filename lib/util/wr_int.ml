(* Allocation-free weighted-WR reservoir over int elements — the inner
   loop of the compact data plane.

   Reservoir.Wr.feed is law-correct but allocates on every fed element:
   the float weight boxes across the call, Dist.binomial's draw stores
   boxed int64s back into the Prng.t record, and Prng.sample_distinct
   builds a Hashtbl. None of that work is algorithmically necessary for
   an int element stream, so this module re-implements the feed with
   every loop-carried value held in unboxed storage:

   - the xoshiro256** state lives in a Bytes buffer ([step] loads and
     stores the four words with Bytes.{get,set}_int64_le, which the
     compiler keeps in registers);
   - loop-carried floats (total weight, the inversion deviate and pmf,
     the pmf ratio) live in a float array, whose elements are stored
     flat;
   - Floyd's distinct sampling uses a preallocated scratch array with a
     generation-stamped mark array for the membership test instead of a
     Hashtbl. The stamp keeps each feed's membership O(1); a linear scan
     here would make a feed with f displacements O(f²), which dominates
     whole chunks right after a reservoir restart (f ≈ r/fed).

   The draw sequence is bit-for-bit the one Reservoir.Wr.feed performs
   (same generator steps, same branch structure), which the conformance
   toggle RSJ_DATAPLANE and test/test_dataplane.ml's kernel-equivalence
   check both pin. Rare regimes (p > 1/2, r·p above Dist's small-mean
   threshold, pmf underflow) sync the packed state back into the Prng.t
   and defer to Dist.binomial itself, so there is exactly one copy of
   the non-trivial sampling math. *)

type t = {
  rng : Prng.t;  (* owner; stale while the packed state is live *)
  st : Bytes.t;  (* s0..s3 at 0,8,16,24; last output word at 32 *)
  freg : float array;  (* 0: total weight; 1: deviate; 2: pmf; 3: ratio *)
  r : int;
  slots : int array;  (* meaningful once fed > 0 *)
  scratch : int array;  (* Floyd workspace, length r *)
  mark : int array;  (* membership stamps: mark.(v) = gen iff v chosen this feed *)
  mutable gen : int;  (* current stamp; bumped at each displacement round *)
  mutable fed : int;
  mutable ireg : int;  (* loop-carried int register *)
  on_displace : int -> unit;
}

let create ?(on_displace = ignore) rng ~r =
  if r < 0 then invalid_arg "Wr_int.create: r < 0";
  let st = Bytes.create 40 in
  Prng.dump_state rng st;
  {
    rng;
    st;
    freg = Array.make 4 0.;
    r;
    slots = Array.make r 0;
    scratch = Array.make r 0;
    mark = Array.make r 0;
    gen = 0;
    fed = 0;
    ireg = 0;
    on_displace;
  }

(* A second reservoir drawing from the SAME packed stream: shares the
   owner Prng.t and the state buffer, so two kernels fed interleaved
   (the partition route's s1/jlo pair) consume one generator stream
   exactly like two Reservoir.Wr.feed call sites sharing one rng.
   [finish] on either kernel releases the shared state. *)
let create_linked ?(on_displace = ignore) t ~r =
  if r < 0 then invalid_arg "Wr_int.create_linked: r < 0";
  {
    rng = t.rng;
    st = t.st;
    freg = Array.make 4 0.;
    r;
    slots = Array.make r 0;
    scratch = Array.make r 0;
    mark = Array.make r 0;
    gen = 0;
    fed = 0;
    ireg = 0;
    on_displace;
  }

(* The packed xoshiro step and rejection draw live in Prng (the owner
   of the state layout), shared with Alias_int's batched draw loop. *)
let step = Prng.step_packed
let rand_int = Prng.rand_int_packed

(* Rare-regime fallback: hand the stream back to the Prng.t, let
   Dist.binomial do the work, re-pack. *)
let slow_binomial t p =
  Prng.load_state t.rng t.st;
  let k = Dist.binomial t.rng ~n:t.r ~p in
  Prng.dump_state t.rng t.st;
  k

let feed t ~weight row =
  if weight < 0 then invalid_arg "Wr_int.feed: negative weight";
  if weight > 0 && t.r > 0 then begin
    t.fed <- t.fed + 1;
    t.freg.(0) <- t.freg.(0) +. float_of_int weight;
    if t.fed = 1 then Array.fill t.slots 0 t.r row
    else begin
      let p = float_of_int weight /. t.freg.(0) in
      let flips =
        if p > 0.5 || float_of_int t.r *. p > 30. then slow_binomial t p
        else begin
          (* Dist.binomial's small-mean branch: sequential inversion
             from k = 0 on the pmf recurrence, one uniform deviate. *)
          let q = 1. -. p in
          let pmf0 = q ** float_of_int t.r in
          if pmf0 = 0. then slow_binomial t p
          else begin
            t.freg.(3) <- p /. q;
            step t.st;
            t.freg.(1) <-
              float_of_int (Int64.to_int (Int64.shift_right_logical (Bytes.get_int64_le t.st 32) 11))
              *. 0x1.0p-53;
            t.freg.(2) <- pmf0;
            t.ireg <- 0;
            while t.freg.(1) >= t.freg.(2) && t.ireg < t.r do
              t.freg.(1) <- t.freg.(1) -. t.freg.(2);
              t.freg.(2) <-
                t.freg.(2)
                *. (float_of_int (t.r - t.ireg) /. float_of_int (t.ireg + 1))
                *. t.freg.(3);
              t.ireg <- t.ireg + 1
            done;
            t.ireg
          end
        end
      in
      if flips > 0 then begin
        t.on_displace flips;
        (* Prng.sample_distinct ~k:flips ~n:r, draw for draw: Floyd's
           loop then a Fisher–Yates shuffle of the chosen positions.
           The shuffle only permutes positions that all receive the
           same row, but its draws are part of the pinned stream. *)
        t.gen <- t.gen + 1;
        t.ireg <- 0;
        for j = t.r - flips to t.r - 1 do
          let v = if j = 0 then 0 else rand_int t.st (j + 1) in
          (* j itself is always fresh: earlier rounds drew from [0, j),
             so stamping the chosen position keeps membership exact. *)
          let v = if Array.unsafe_get t.mark v = t.gen then j else v in
          Array.unsafe_set t.mark v t.gen;
          t.scratch.(t.ireg) <- v;
          t.ireg <- t.ireg + 1
        done;
        for i = flips - 1 downto 1 do
          let j = rand_int t.st (i + 1) in
          let tmp = t.scratch.(i) in
          t.scratch.(i) <- t.scratch.(j);
          t.scratch.(j) <- tmp
        done;
        for s = 0 to flips - 1 do
          t.slots.(t.scratch.(s)) <- row
        done
      end
    end
  end
  else if weight > 0 then begin
    (* r = 0: track mass only, as Reservoir.Wr.feed does. *)
    t.fed <- t.fed + 1;
    t.freg.(0) <- t.freg.(0) +. float_of_int weight
  end

let finish t = Prng.load_state t.rng t.st
let fed_count t = t.fed
let total_weight t = t.freg.(0)
let size t = t.r
let contents t = if t.fed = 0 then [||] else Array.sub t.slots 0 t.r

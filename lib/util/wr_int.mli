(** Allocation-free weighted-WR reservoir over int elements.

    The push-style twin of [Reservoir.Wr] specialised to int elements
    and int weights — the inner loop of the compact data plane. The
    draw sequence is bit-for-bit the one [Reservoir.Wr.feed] performs
    from the same generator state: the xoshiro step, the small-mean
    binomial inversion and Floyd's distinct sampling are inlined over
    unboxed storage (state words in [Bytes], loop-carried floats in a
    float array), and the rare regimes defer to [Dist.binomial]. Feeding
    n elements allocates nothing beyond the [create]-time buffers.

    Ownership contract: between [create] and [finish] the live generator
    state is inside the kernel, and the [Prng.t] handed to [create] must
    not be drawn from. [finish] writes the advanced state back, after
    which the [Prng.t] continues the stream exactly where a
    [Reservoir.Wr]-fed generator would be. *)

type t

val create : ?on_displace:(int -> unit) -> Prng.t -> r:int -> t
(** [create rng ~r] captures [rng]'s state and allocates the fixed
    buffers. [on_displace] mirrors the reservoir displacement telemetry
    hook (called with the flip count whenever occupied slots are
    overwritten). Raises [Invalid_argument] when [r < 0]. *)

val create_linked : ?on_displace:(int -> unit) -> t -> r:int -> t
(** [create_linked t ~r] is a second reservoir drawing from [t]'s
    packed stream — for call sites that interleave feeds into two
    reservoirs from one generator (the partition route). One [finish]
    on either kernel releases the shared state. *)

val feed : t -> weight:int -> int -> unit
(** [feed t ~weight row]: weight 0 is ignored, negative raises
    [Invalid_argument] — exactly [Reservoir.Wr.feed] with
    [~weight:(float_of_int weight)]. *)

val finish : t -> unit
(** Write the advanced generator state back into the owning [Prng.t].
    Call exactly once, after the last [feed]. *)

val fed_count : t -> int
val total_weight : t -> float
val size : t -> int

val contents : t -> int array
(** The r draws; [[||]] when nothing with positive weight was fed.
    Fresh array. *)

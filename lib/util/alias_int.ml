(* Walker/Vose alias table over flat arrays — the O(1) weighted-draw
   kernel of the draw plane.

   A CDF table answers a categorical draw in O(log k) binary-search
   steps, each a data-dependent load into a k-sized float array; an
   alias table answers it with one uniform cell pick and one threshold
   compare — two loads, independent of k. Construction is the classic
   Vose pairing: scale weights to mean 1, then repeatedly move mass
   from an overfull cell onto an underfull one, recording the donor as
   the cell's alias. O(k) time, 2k words.

   The batched [draw_many] mirrors Wr_int's inner-loop discipline: the
   xoshiro256** state is packed into a Bytes buffer for the whole
   batch (Prng.step_packed / Prng.rand_int_packed are the single copy
   of the packed stepping code), floats stay in compare position so
   nothing boxes, and the owner Prng.t is resynced once at the end.
   A batch of n draws allocates nothing beyond the 40-byte buffer. *)

type t = {
  k : int;
  data : float array;
      (* Interleaved cell pairs: [data.(2i)] is the keep threshold in
         [0, 1], [data.(2i+1)] the donor index encoded as a float
         (exact: indexes are far below 2^53). A draw reads both slots
         of one 16-byte pair — always a single cache line — where a
         threshold array and a donor array would cost two misses on
         tables past L2. *)
}

let of_weights ?total weights =
  let k = Array.length weights in
  if k = 0 then invalid_arg "Alias_int.of_weights: empty";
  let total =
    match total with
    | Some t -> t
    | None ->
        let s = ref 0. in
        Array.iter
          (fun w ->
            if not (w >= 0.) then invalid_arg "Alias_int.of_weights: negative weight";
            s := !s +. w)
          weights;
        !s
  in
  if not (total > 0.) then invalid_arg "Alias_int.of_weights: weights must have positive sum";
  let scale = float_of_int k /. total in
  let p = Array.map (fun w -> w *. scale) weights in
  let prob = Array.make k 1. in
  let alias = Array.init k Fun.id in
  (* Worklists as preallocated stacks: every index enters exactly once. *)
  let small = Array.make k 0 and large = Array.make k 0 in
  let ns = ref 0 and nl = ref 0 in
  for i = 0 to k - 1 do
    if p.(i) < 1. then begin
      small.(!ns) <- i;
      incr ns
    end
    else begin
      large.(!nl) <- i;
      incr nl
    end
  done;
  while !ns > 0 && !nl > 0 do
    decr ns;
    let s = small.(!ns) in
    let l = large.(!nl - 1) in
    prob.(s) <- p.(s);
    alias.(s) <- l;
    (* The donor keeps what the underfull cell did not need. *)
    p.(l) <- p.(l) -. (1. -. p.(s));
    if p.(l) < 1. then begin
      decr nl;
      small.(!ns) <- l;
      incr ns
    end
  done;
  (* Leftovers on either list hold exactly mass 1 up to rounding (the
     pairing conserves total mass k), so their threshold is 1. A true
     zero-weight cell can never be left over: its mass deficit would
     have to be carried by peers each strictly below 1, which cannot
     sum to the remaining cell count. *)
  while !nl > 0 do
    decr nl;
    prob.(large.(!nl)) <- 1.
  done;
  while !ns > 0 do
    decr ns;
    prob.(small.(!ns)) <- 1.
  done;
  let data = Array.make (2 * k) 0. in
  for i = 0 to k - 1 do
    data.(2 * i) <- prob.(i);
    data.((2 * i) + 1) <- float_of_int alias.(i)
  done;
  { k; data }

let support t = t.k

(* One draw via the owner Prng: a uniform cell, then the threshold.
   Mirrors one [draw_many] iteration draw for draw (Prng.int consumes
   nothing when k = 1, exactly like the packed kernel's skip). *)
let draw t rng =
  let i = Prng.int rng t.k in
  if Prng.unit_float rng < Array.unsafe_get t.data (2 * i) then i
  else int_of_float (Array.unsafe_get t.data ((2 * i) + 1))

(* One draw on a packed state, stream-identical to [draw]: a kernel
   that holds the state packed across many picks (the chain walker)
   never touches the boxed int64 fields. The unit-float extraction of
   Prng.unit_float is spelled out in compare position — returned from
   a call it would box (no flambda), costing two words per draw. *)
let draw_packed t st =
  let i = if t.k = 1 then 0 else Prng.rand_int_packed st t.k in
  Prng.step_packed st;
  if
    float_of_int (Int64.to_int (Int64.shift_right_logical (Bytes.get_int64_le st 32) 11))
    *. 0x1.0p-53
    < Array.unsafe_get t.data (2 * i)
  then i
  else int_of_float (Array.unsafe_get t.data ((2 * i) + 1))

let draw_many t rng ~into ~n =
  if n < 0 || n > Array.length into then invalid_arg "Alias_int.draw_many: bad n";
  if n > 0 then begin
    let st = Bytes.create 40 in
    Prng.dump_state rng st;
    for j = 0 to n - 1 do
      Array.unsafe_set into j (draw_packed t st)
    done;
    Prng.load_state rng st
  end

(* Special functions (Lanczos log-gamma, incomplete gamma) and the
   Pearson chi-square machinery used throughout the test-suite to check
   that samplers realize the distributions the paper specifies. *)

let lanczos_g = 7.0

let lanczos_coefficients =
  [|
    0.99999999999980993;
    676.5203681218851;
    -1259.1392167224028;
    771.32342877765313;
    -176.61502916214059;
    12.507343278686905;
    -0.13857109526572012;
    9.9843695780195716e-6;
    1.5056327351493116e-7;
  |]

let rec log_gamma x =
  if x <= 0. then invalid_arg "Stats_math.log_gamma: requires x > 0"
  else if x < 0.5 then
    (* Reflection formula keeps the Lanczos sum in its accurate range. *)
    log (Float.pi /. sin (Float.pi *. x)) -. log_gamma (1. -. x)
  else begin
    let x = x -. 1. in
    let acc = ref lanczos_coefficients.(0) in
    for i = 1 to Array.length lanczos_coefficients - 1 do
      acc := !acc +. (lanczos_coefficients.(i) /. (x +. float_of_int i))
    done;
    let t = x +. lanczos_g +. 0.5 in
    (0.5 *. log (2. *. Float.pi)) +. ((x +. 0.5) *. log t) -. t +. log !acc
  end

let log_choose n k =
  if k < 0 || k > n then neg_infinity
  else if k = 0 || k = n then 0.
  else
    log_gamma (float_of_int (n + 1))
    -. log_gamma (float_of_int (k + 1))
    -. log_gamma (float_of_int (n - k + 1))

let log_binomial_pmf ~n ~p k =
  if k < 0 || k > n then neg_infinity
  else if p <= 0. then if k = 0 then 0. else neg_infinity
  else if p >= 1. then if k = n then 0. else neg_infinity
  else
    log_choose n k
    +. (float_of_int k *. log p)
    +. (float_of_int (n - k) *. log (1. -. p))

(* Regularized incomplete gamma: series expansion for x < a + 1, Lentz
   continued fraction otherwise (Numerical Recipes 6.2). *)

let gamma_p_series ~a ~x =
  let eps = 1e-15 in
  let max_iter = 10_000 in
  let ap = ref a in
  let sum = ref (1. /. a) in
  let del = ref !sum in
  let rec loop i =
    if i > max_iter then !sum
    else begin
      ap := !ap +. 1.;
      del := !del *. x /. !ap;
      sum := !sum +. !del;
      if Float.abs !del < Float.abs !sum *. eps then !sum else loop (i + 1)
    end
  in
  let s = loop 1 in
  s *. exp ((a *. log x) -. x -. log_gamma a)

let gamma_q_continued_fraction ~a ~x =
  let eps = 1e-15 in
  let fpmin = 1e-300 in
  let max_iter = 10_000 in
  let b = ref (x +. 1. -. a) in
  let c = ref (1. /. fpmin) in
  let d = ref (1. /. !b) in
  let h = ref !d in
  let i = ref 1 in
  let continue = ref true in
  while !continue && !i <= max_iter do
    let an = -.float_of_int !i *. (float_of_int !i -. a) in
    b := !b +. 2.;
    d := (an *. !d) +. !b;
    if Float.abs !d < fpmin then d := fpmin;
    c := !b +. (an /. !c);
    if Float.abs !c < fpmin then c := fpmin;
    d := 1. /. !d;
    let del = !d *. !c in
    h := !h *. del;
    if Float.abs (del -. 1.) < eps then continue := false;
    incr i
  done;
  !h *. exp ((a *. log x) -. x -. log_gamma a)

let regularized_gamma_p ~a ~x =
  if a <= 0. then invalid_arg "Stats_math.regularized_gamma_p: a <= 0";
  if x < 0. then invalid_arg "Stats_math.regularized_gamma_p: x < 0";
  if x = 0. then 0.
  else if x < a +. 1. then gamma_p_series ~a ~x
  else 1. -. gamma_q_continued_fraction ~a ~x

let regularized_gamma_q ~a ~x =
  if a <= 0. then invalid_arg "Stats_math.regularized_gamma_q: a <= 0";
  if x < 0. then invalid_arg "Stats_math.regularized_gamma_q: x < 0";
  if x = 0. then 1.
  else if x < a +. 1. then 1. -. gamma_p_series ~a ~x
  else gamma_q_continued_fraction ~a ~x

let chi_square_cdf ~dof x =
  if dof <= 0 then invalid_arg "Stats_math.chi_square_cdf: dof <= 0";
  if x <= 0. then 0. else regularized_gamma_p ~a:(float_of_int dof /. 2.) ~x:(x /. 2.)

let chi_square_sf ~dof x =
  if dof <= 0 then invalid_arg "Stats_math.chi_square_sf: dof <= 0";
  if x <= 0. then 1. else regularized_gamma_q ~a:(float_of_int dof /. 2.) ~x:(x /. 2.)

type chi_square_result = { statistic : float; dof : int; p_value : float }

let chi_square_test ~expected ~observed =
  let k = Array.length expected in
  if Array.length observed <> k then
    invalid_arg "Stats_math.chi_square_test: length mismatch";
  let statistic = ref 0. in
  let live_cells = ref 0 in
  for i = 0 to k - 1 do
    let e = expected.(i) in
    let o = float_of_int observed.(i) in
    if e <= 0. then begin
      if observed.(i) <> 0 then
        invalid_arg "Stats_math.chi_square_test: observation in a zero-probability cell"
    end
    else begin
      incr live_cells;
      let d = o -. e in
      statistic := !statistic +. (d *. d /. e)
    end
  done;
  let dof = max 1 (!live_cells - 1) in
  { statistic = !statistic; dof; p_value = chi_square_sf ~dof !statistic }

let chi_square_uniform ~observed =
  let k = Array.length observed in
  if k = 0 then invalid_arg "Stats_math.chi_square_uniform: no cells";
  let total = Array.fold_left ( + ) 0 observed in
  let expected = Array.make k (float_of_int total /. float_of_int k) in
  chi_square_test ~expected ~observed

let g_test ~expected ~observed =
  let k = Array.length expected in
  if Array.length observed <> k then invalid_arg "Stats_math.g_test: length mismatch";
  let statistic = ref 0. in
  let live_cells = ref 0 in
  for i = 0 to k - 1 do
    let e = expected.(i) in
    let o = float_of_int observed.(i) in
    if e <= 0. then begin
      if observed.(i) <> 0 then
        invalid_arg "Stats_math.g_test: observation in a zero-probability cell"
    end
    else begin
      incr live_cells;
      if observed.(i) > 0 then statistic := !statistic +. (o *. log (o /. e))
    end
  done;
  let statistic = 2. *. !statistic in
  let dof = max 1 (!live_cells - 1) in
  (* G is asymptotically chi-square(dof) under H0, like Pearson's X². *)
  { statistic; dof; p_value = chi_square_sf ~dof (Float.max 0. statistic) }

let normal_sf x =
  (* Upper tail of N(0,1) via the incomplete gamma: erfc(y) = Q(1/2, y²). *)
  if x >= 0. then 0.5 *. regularized_gamma_q ~a:0.5 ~x:(x *. x /. 2.)
  else 1. -. (0.5 *. regularized_gamma_q ~a:0.5 ~x:(x *. x /. 2.))

let normal_quantile p =
  if not (p > 0. && p < 1.) then
    invalid_arg (Printf.sprintf "Stats_math.normal_quantile: p=%g outside (0,1)" p);
  (* normal_sf is strictly decreasing: bisect for normal_sf x = 1 - p.
     [-40, 40] covers every representable tail; 120 halvings take the
     bracket far below float precision. *)
  let target = 1. -. p in
  let lo = ref (-40.) and hi = ref 40. in
  for _ = 1 to 120 do
    let mid = 0.5 *. (!lo +. !hi) in
    if normal_sf mid > target then lo := mid else hi := mid
  done;
  0.5 *. (!lo +. !hi)

let kolmogorov_sf lambda =
  (* Q_KS(λ) = 2 Σ_{j≥1} (-1)^{j-1} exp(-2 j² λ²); the series converges
     in a handful of terms for λ of interest. *)
  if lambda <= 0. then 1.
  else begin
    let acc = ref 0. in
    let term = ref infinity in
    let j = ref 1 in
    while !j <= 100 && Float.abs !term > 1e-12 *. Float.abs !acc +. 1e-300 do
      let fj = float_of_int !j in
      term := (if !j mod 2 = 1 then 2. else -2.) *. exp (-2. *. fj *. fj *. lambda *. lambda);
      acc := !acc +. !term;
      incr j
    done;
    Float.min 1. (Float.max 0. !acc)
  end

type ks_result = { ks_statistic : float; n : int; ks_p_value : float }

let ks_test ~cdf ~samples =
  let n = Array.length samples in
  if n = 0 then invalid_arg "Stats_math.ks_test: no samples";
  let sorted = Array.copy samples in
  Array.sort compare sorted;
  let d = ref 0. in
  for i = 0 to n - 1 do
    let f = cdf sorted.(i) in
    if f < -1e-9 || f > 1. +. 1e-9 then invalid_arg "Stats_math.ks_test: cdf outside [0,1]";
    let lo = float_of_int i /. float_of_int n in
    let hi = float_of_int (i + 1) /. float_of_int n in
    d := Float.max !d (Float.max (Float.abs (hi -. f)) (Float.abs (f -. lo)))
  done;
  let sn = sqrt (float_of_int n) in
  (* Stephens' finite-n correction before the asymptotic tail. *)
  let lambda = (sn +. 0.12 +. (0.11 /. sn)) *. !d in
  { ks_statistic = !d; n; ks_p_value = kolmogorov_sf lambda }

let mean a =
  let n = Array.length a in
  if n = 0 then nan else Array.fold_left ( +. ) 0. a /. float_of_int n

let variance a =
  let n = Array.length a in
  if n < 2 then nan
  else begin
    let m = mean a in
    let acc = Array.fold_left (fun acc x -> acc +. ((x -. m) *. (x -. m))) 0. a in
    acc /. float_of_int (n - 1)
  end

let stddev a = sqrt (variance a)

let percentile a q =
  let n = Array.length a in
  if n = 0 then nan
  else if q < 0. || q > 100. then invalid_arg "Stats_math.percentile: q outside [0,100]"
  else begin
    let sorted = Array.copy a in
    Array.sort compare sorted;
    let rank = q /. 100. *. float_of_int (n - 1) in
    let lo = int_of_float (Float.floor rank) in
    let hi = int_of_float (Float.ceil rank) in
    if lo = hi then sorted.(lo)
    else begin
      let w = rank -. float_of_int lo in
      ((1. -. w) *. sorted.(lo)) +. (w *. sorted.(hi))
    end
  end

let median a = percentile a 50.

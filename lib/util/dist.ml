(* Exact random variates. The binomial sampler is the inner loop of the
   paper's black boxes U1/WR1 (one draw per streamed tuple), so it is
   written for the regime that dominates there: tiny mean, where
   sequential inversion costs O(1 + np). Large means (exercised by tests
   and by U1 near the end of a stream with many samples outstanding) use
   mode-centered inversion whose expected cost is one standard
   deviation's worth of pmf evaluations. *)

let small_mean_threshold = 30.

(* Sequential inversion from k = 0 using the pmf recurrence
   pmf(k+1) = pmf(k) * (n-k)/(k+1) * p/(1-p). Exact and allocation-free. *)
let binomial_inversion rng ~n ~p =
  let q = 1. -. p in
  let ratio = p /. q in
  let pmf0 = q ** float_of_int n in
  if pmf0 = 0. then
    (* n log q underflowed; fall back on counting Bernoulli successes.
       Only reachable for huge n with p not small, where callers use the
       mode-centered path instead; kept for safety. *)
    let count = ref 0 in
    for _ = 1 to n do
      if Prng.unit_float rng < p then incr count
    done;
    !count
  else begin
    let u = ref (Prng.unit_float rng) in
    let pmf = ref pmf0 in
    let k = ref 0 in
    while !u >= !pmf && !k < n do
      u := !u -. !pmf;
      pmf := !pmf *. (float_of_int (n - !k) /. float_of_int (!k + 1)) *. ratio;
      incr k
    done;
    !k
  end

(* Mode-centered inversion: evaluate the pmf at the mode with log-gamma,
   then consume the uniform deviate by alternating outward steps. The
   probability mass within c standard deviations of the mode is
   1 - O(exp(-c^2/2)), so the expected number of steps is O(sigma). *)
let binomial_mode_centered rng ~n ~p =
  let mode =
    let m = int_of_float (float_of_int (n + 1) *. p) in
    if m > n then n else m
  in
  let log_pmf_mode = Stats_math.log_binomial_pmf ~n ~p mode in
  let pmf_mode = exp log_pmf_mode in
  let q = 1. -. p in
  let ratio = p /. q in
  let u = ref (Prng.unit_float rng) in
  (* Step factors: going up from k consumes pmf(k+1) = pmf(k)*up(k);
     going down consumes pmf(k-1) = pmf(k)*down(k). *)
  let up k pmf = pmf *. (float_of_int (n - k) /. float_of_int (k + 1)) *. ratio in
  let down k pmf = pmf *. (float_of_int k /. float_of_int (n - k + 1)) /. ratio in
  let lo = ref mode and hi = ref mode in
  let pmf_lo = ref pmf_mode and pmf_hi = ref pmf_mode in
  let result = ref (-1) in
  if !u < pmf_mode then result := mode else u := !u -. pmf_mode;
  while !result < 0 do
    let can_up = !hi < n and can_down = !lo > 0 in
    if (not can_up) && not can_down then
      (* Floating-point slack exhausted the deviate; return the mode. *)
      result := mode
    else begin
      if can_up then begin
        pmf_hi := up !hi !pmf_hi;
        incr hi;
        if !result < 0 && !u < !pmf_hi then result := !hi else u := !u -. !pmf_hi
      end;
      if !result < 0 && can_down then begin
        pmf_lo := down !lo !pmf_lo;
        decr lo;
        if !u < !pmf_lo then result := !lo else u := !u -. !pmf_lo
      end
    end
  done;
  !result

let rec binomial rng ~n ~p =
  if n < 0 then invalid_arg "Dist.binomial: n < 0";
  let p = if p < 0. then 0. else if p > 1. then 1. else p in
  if n = 0 || p = 0. then 0
  else if p = 1. then n
  else if p > 0.5 then n - binomial rng ~n ~p:(1. -. p)
  else if float_of_int n *. p <= small_mean_threshold then binomial_inversion rng ~n ~p
  else binomial_mode_centered rng ~n ~p

let geometric rng ~p =
  if p <= 0. || p > 1. then invalid_arg "Dist.geometric: need 0 < p <= 1";
  if p = 1. then 0
  else begin
    let u = Prng.unit_float_pos rng in
    int_of_float (Float.floor (log u /. log (1. -. p)))
  end

let exponential rng ~rate =
  if rate <= 0. then invalid_arg "Dist.exponential: rate <= 0";
  -.log (Prng.unit_float_pos rng) /. rate

(* One validation pass shared by every weighted-draw entry point
   (categorical, Cdf_table, Alias_table): non-negative, non-NaN,
   positive sum. Returns the exact sum so builders never rescan. *)
let validate_weights ~who weights =
  let total = ref 0. in
  Array.iter
    (fun w ->
      if not (w >= 0.) then invalid_arg (who ^ ": negative weight");
      total := !total +. w)
    weights;
  if not (!total > 0.) then invalid_arg (who ^ ": weights must have positive sum");
  !total

let categorical rng ~weights =
  let total = validate_weights ~who:"Dist.categorical" weights in
  let target = Prng.unit_float rng *. total in
  let acc = ref 0. in
  let result = ref (Array.length weights - 1) in
  (try
     Array.iteri
       (fun i w ->
         acc := !acc +. w;
         if target < !acc then begin
           result := i;
           raise Exit
         end)
       weights
   with Exit -> ());
  !result

module Cdf_table = struct
  type t = { cdf : float array; probs : float array }

  let of_weights weights =
    let k = Array.length weights in
    if k = 0 then invalid_arg "Dist.Cdf_table.of_weights: empty";
    let total = validate_weights ~who:"Dist.Cdf_table.of_weights" weights in
    let cdf = Array.make k 0. in
    let probs = Array.make k 0. in
    let acc = ref 0. in
    for i = 0 to k - 1 do
      acc := !acc +. (weights.(i) /. total);
      cdf.(i) <- !acc;
      probs.(i) <- weights.(i) /. total
    done;
    cdf.(k - 1) <- 1.;
    { cdf; probs }

  let search t u =
    (* Binary search for the first index with cdf >= u. *)
    let lo = ref 0 and hi = ref (Array.length t.cdf - 1) in
    while !lo < !hi do
      let mid = (!lo + !hi) / 2 in
      if Array.unsafe_get t.cdf mid < u then lo := mid + 1 else hi := mid
    done;
    !lo

  let draw t rng = search t (Prng.unit_float rng)

  (* The unit-float extraction inlined in argument position ([search]
     takes the float unboxed with flambda off only when the producer
     is in the same compilation unit). *)
  let draw_packed t st =
    Prng.step_packed st;
    search t
      (float_of_int (Int64.to_int (Int64.shift_right_logical (Bytes.get_int64_le st 32) 11))
      *. 0x1.0p-53)
  let prob t i = t.probs.(i)
  let support t = Array.length t.cdf
end

module Alias_table = struct
  type t = { core : Alias_int.t; probs : float array }

  let of_weights weights =
    let total = validate_weights ~who:"Dist.Alias_table.of_weights" weights in
    {
      core = Alias_int.of_weights ~total weights;
      probs = Array.map (fun w -> w /. total) weights;
    }

  let draw t rng = Alias_int.draw t.core rng
  let draw_packed t st = Alias_int.draw_packed t.core st
  let draw_many t rng ~into ~n = Alias_int.draw_many t.core rng ~into ~n
  let prob t i = t.probs.(i)
  let support t = Array.length t.probs
  let expected_counts t ~n = Array.map (fun p -> float_of_int n *. p) t.probs
end

(* ------------------------------------------------------------------ *)
(* The draw plane: which table repeated-draw call sites build. Same
   contract as Column's RSJ_DATAPLANE toggle — read once from the
   environment, overridable in-process by tests and benches. The two
   planes are distribution-identical, not draw-for-draw identical (an
   alias draw consumes cell + threshold randomness, a CDF draw one
   deviate), so equivalence is gated statistically (@drawplane). *)

type draw_plane = Cdf | Alias

let plane_of_env () =
  match Sys.getenv_opt "RSJ_DRAW" with
  | Some "cdf" -> Cdf
  | Some "alias" | None -> Alias
  | Some other ->
      invalid_arg (Printf.sprintf "RSJ_DRAW: expected \"cdf\" or \"alias\", got %S" other)

let current_plane = ref (plane_of_env ())
let draw_plane () = !current_plane
let set_draw_plane p = current_plane := p
let draw_plane_name () = match !current_plane with Cdf -> "cdf" | Alias -> "alias"

module Draw_table = struct
  type t = T_cdf of Cdf_table.t | T_alias of Alias_table.t

  let of_weights weights =
    match !current_plane with
    | Cdf -> T_cdf (Cdf_table.of_weights weights)
    | Alias -> T_alias (Alias_table.of_weights weights)

  let draw t rng =
    match t with T_cdf c -> Cdf_table.draw c rng | T_alias a -> Alias_table.draw a rng

  let draw_packed t st =
    match t with
    | T_cdf c -> Cdf_table.draw_packed c st
    | T_alias a -> Alias_table.draw_packed a st

  let draw_many t rng ~into ~n =
    match t with
    | T_alias a -> Alias_table.draw_many a rng ~into ~n
    | T_cdf c ->
        if n < 0 || n > Array.length into then
          invalid_arg "Dist.Draw_table.draw_many: bad n";
        if n > 0 then begin
          (* Same packed-state discipline as the alias batch: the
             binary searches run off a dumped state, stream-identical
             to n single draws. *)
          let st = Bytes.create 40 in
          Prng.dump_state rng st;
          for j = 0 to n - 1 do
            into.(j) <- Cdf_table.draw_packed c st
          done;
          Prng.load_state rng st
        end

  let prob t i = match t with T_cdf c -> Cdf_table.prob c i | T_alias a -> Alias_table.prob a i

  let support t =
    match t with T_cdf c -> Cdf_table.support c | T_alias a -> Alias_table.support a

  let plane t = match t with T_cdf _ -> Cdf | T_alias _ -> Alias
end

(* Zipf stays on Cdf_table unconditionally: it is the *workload
   generator*, and its draw stream is pinned by every fixed-seed
   experiment and golden table. Keeping it off the RSJ_DRAW toggle
   means the two planes sample the byte-identical relations, so any
   delta between RSJ_DRAW runs is the draw plane alone. *)
module Zipf = struct
  type t = { z : float; support : int; table : Cdf_table.t }

  let create ~z ~support =
    if support <= 0 then invalid_arg "Dist.Zipf.create: support <= 0";
    if z < 0. then invalid_arg "Dist.Zipf.create: z < 0";
    let weights = Array.init support (fun i -> (1. /. float_of_int (i + 1)) ** z) in
    { z; support; table = Cdf_table.of_weights weights }

  let draw t rng = 1 + Cdf_table.draw t.table rng
  let prob t rank =
    if rank < 1 || rank > t.support then 0. else Cdf_table.prob t.table (rank - 1)

  let expected_counts t ~n =
    Array.init t.support (fun i -> float_of_int n *. Cdf_table.prob t.table i)

  let z t = t.z
  let support t = t.support
end

(* xoshiro256** with splitmix64 seeding.

   The state is four int64 words. xoshiro256** is the recommended
   general-purpose member of the xoshiro family (Blackman & Vigna, 2018);
   splitmix64 is the seeding/splitting function recommended by its
   authors because consecutive splitmix64 outputs are equidistributed and
   decorrelated from the xoshiro stream. *)

type t = {
  mutable s0 : int64;
  mutable s1 : int64;
  mutable s2 : int64;
  mutable s3 : int64;
}

let golden_gamma = 0x9E3779B97F4A7C15L

let splitmix64_next state =
  let z = Int64.add !state golden_gamma in
  state := z;
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let of_seed64 seed =
  let st = ref seed in
  let s0 = splitmix64_next st in
  let s1 = splitmix64_next st in
  let s2 = splitmix64_next st in
  let s3 = splitmix64_next st in
  (* xoshiro must not start from the all-zero state; splitmix64 outputs
     are zero only for one specific input, so perturb defensively. *)
  if Int64.logor (Int64.logor s0 s1) (Int64.logor s2 s3) = 0L then
    { s0 = 1L; s1 = golden_gamma; s2 = 3L; s3 = 7L }
  else { s0; s1; s2; s3 }

let create ?(seed = 0x5EED) () = of_seed64 (Int64.of_int seed)
let copy t = { s0 = t.s0; s1 = t.s1; s2 = t.s2; s3 = t.s3 }

let rotl x k = Int64.logor (Int64.shift_left x k) (Int64.shift_right_logical x (64 - k))

let bits64 t =
  let result = Int64.mul (rotl (Int64.mul t.s1 5L) 7) 9L in
  let tt = Int64.shift_left t.s1 17 in
  t.s2 <- Int64.logxor t.s2 t.s0;
  t.s3 <- Int64.logxor t.s3 t.s1;
  t.s1 <- Int64.logxor t.s1 t.s2;
  t.s0 <- Int64.logxor t.s0 t.s3;
  t.s2 <- Int64.logxor t.s2 tt;
  t.s3 <- rotl t.s3 45;
  result

let split t = of_seed64 (bits64 t)

let split_n t n =
  if n < 0 then invalid_arg "Prng.split_n: n < 0";
  (* One splitmix64 stream seeded from the parent, one output word per
     child: consecutive splitmix64 outputs are equidistributed and
     decorrelated, so the children are mutually independent and the
     parent advances exactly once regardless of [n]. *)
  let st = ref (bits64 t) in
  Array.init n (fun _ -> of_seed64 (splitmix64_next st))

let int t bound =
  if bound <= 0 then invalid_arg "Prng.int: bound must be positive";
  if bound = 1 then 0
  else begin
    (* Rejection sampling on the top 62 bits avoids modulo bias while
       staying within OCaml's native int range. *)
    let mask = 0x3FFF_FFFF_FFFF_FFFFL in
    let rec draw () =
      let raw = Int64.to_int (Int64.logand (bits64 t) mask) in
      let v = raw mod bound in
      (* Reject draws from the final incomplete block. *)
      if raw - v > Int64.to_int mask - bound + 1 then draw () else v
    in
    draw ()
  end

let int_in_range t ~lo ~hi =
  if hi < lo then invalid_arg "Prng.int_in_range: hi < lo";
  lo + int t (hi - lo + 1)

let unit_float t =
  (* 53 random bits scaled into [0,1). *)
  let bits = Int64.to_int (Int64.shift_right_logical (bits64 t) 11) in
  float_of_int bits *. 0x1.0p-53

let rec unit_float_pos t =
  let u = unit_float t in
  if u > 0. then u else unit_float_pos t

let float t bound = bound *. unit_float t
let bool t = Int64.logand (bits64 t) 1L = 1L

let bernoulli t p =
  if p <= 0. then false else if p >= 1. then true else unit_float t < p

let shuffle_in_place t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

let pick t a =
  if Array.length a = 0 then invalid_arg "Prng.pick: empty array";
  a.(int t (Array.length a))

let sample_distinct t ~k ~n =
  if k < 0 || k > n then invalid_arg "Prng.sample_distinct: need 0 <= k <= n";
  (* Floyd's algorithm: O(k) expected time, O(k) space. *)
  let seen = Hashtbl.create (2 * k) in
  let out = Array.make k 0 in
  let idx = ref 0 in
  for j = n - k to n - 1 do
    let v = int t (j + 1) in
    let v = if Hashtbl.mem seen v then j else v in
    Hashtbl.replace seen v ();
    out.(!idx) <- v;
    incr idx
  done;
  shuffle_in_place t out;
  out

(* Raw state transport for the data-plane kernel (Wr_int): the kernel
   keeps the four state words in a Bytes buffer so its inner loop can
   step the generator without touching this module's mutable int64
   fields (stores into which would box). Layout: s0..s3 little-endian
   at offsets 0, 8, 16, 24; callers provide a buffer of >= 32 bytes. *)
let dump_state t buf =
  Bytes.set_int64_le buf 0 t.s0;
  Bytes.set_int64_le buf 8 t.s1;
  Bytes.set_int64_le buf 16 t.s2;
  Bytes.set_int64_le buf 24 t.s3

let load_state t buf =
  t.s0 <- Bytes.get_int64_le buf 0;
  t.s1 <- Bytes.get_int64_le buf 8;
  t.s2 <- Bytes.get_int64_le buf 16;
  t.s3 <- Bytes.get_int64_le buf 24

(* One xoshiro256** step on the packed state; the output word lands at
   offset 32. Mirrors bits64 exactly, rotl inlined. The single copy of
   the packed stepping code — the kernels (Wr_int, Alias_int) run
   whole inner loops on a dumped state without touching the mutable
   int64 fields above (stores into which would box). *)
let step_packed st =
  let s0 = Bytes.get_int64_le st 0 in
  let s1 = Bytes.get_int64_le st 8 in
  let s2 = Bytes.get_int64_le st 16 in
  let s3 = Bytes.get_int64_le st 24 in
  let r5 = Int64.mul s1 5L in
  Bytes.set_int64_le st 32
    (Int64.mul (Int64.logor (Int64.shift_left r5 7) (Int64.shift_right_logical r5 57)) 9L);
  let tt = Int64.shift_left s1 17 in
  let s2 = Int64.logxor s2 s0 in
  let s3 = Int64.logxor s3 s1 in
  let s1 = Int64.logxor s1 s2 in
  let s0 = Int64.logxor s0 s3 in
  let s2 = Int64.logxor s2 tt in
  let s3 = Int64.logor (Int64.shift_left s3 45) (Int64.shift_right_logical s3 19) in
  Bytes.set_int64_le st 0 s0;
  Bytes.set_int64_le st 8 s1;
  Bytes.set_int64_le st 16 s2;
  Bytes.set_int64_le st 24 s3

let packed_mask62 = 0x3FFF_FFFF_FFFF_FFFFL
let packed_max62 = Int64.to_int packed_mask62

(* [int]'s rejection sampling on the packed state; callers guarantee
   bound >= 2 ([int] returns 0 without drawing when bound = 1, so a
   packed caller must skip the call to stay stream-identical). *)
let rec rand_int_packed st bound =
  step_packed st;
  let raw = Int64.to_int (Int64.logand (Bytes.get_int64_le st 32) packed_mask62) in
  let v = raw mod bound in
  if raw - v > packed_max62 - bound + 1 then rand_int_packed st bound else v

(* [unit_float]'s 53-bit extraction on the packed state: one step, one
   scale. The float travels in a register — callers that compare it
   immediately (the draw kernels) never box it. *)
let unit_float_packed st =
  step_packed st;
  float_of_int (Int64.to_int (Int64.shift_right_logical (Bytes.get_int64_le st 32) 11))
  *. 0x1.0p-53

let state_fingerprint t =
  let mix acc x = Int64.add (Int64.mul acc 0x100000001B3L) x in
  mix (mix (mix (mix 0xCBF29CE484222325L t.s0) t.s1) t.s2) t.s3

(** Numerical special functions and statistical tests.

    These routines back the exact binomial sampler ({!Dist.binomial}) and
    the chi-square uniformity tests that validate every join-sampling
    strategy against the paper's semantics. *)

val log_gamma : float -> float
(** [log_gamma x] is [ln (Gamma x)] for [x > 0] (Lanczos approximation,
    accurate to ~1e-13 relative error). *)

val log_choose : int -> int -> float
(** [log_choose n k] is [ln (n choose k)]; [neg_infinity] when the
    coefficient is zero ([k < 0] or [k > n]). *)

val log_binomial_pmf : n:int -> p:float -> int -> float
(** [log_binomial_pmf ~n ~p k] is the log of the Binomial(n, p) probability
    mass at [k]. *)

val regularized_gamma_p : a:float -> x:float -> float
(** [regularized_gamma_p ~a ~x] is the regularized lower incomplete gamma
    function P(a, x), for [a > 0], [x >= 0]. *)

val regularized_gamma_q : a:float -> x:float -> float
(** Complement Q(a, x) = 1 - P(a, x). *)

val chi_square_cdf : dof:int -> float -> float
(** [chi_square_cdf ~dof x] is the CDF of the chi-square distribution with
    [dof] degrees of freedom at [x]. *)

val chi_square_sf : dof:int -> float -> float
(** Survival function (upper tail, i.e. the p-value of a statistic). *)

type chi_square_result = {
  statistic : float;  (** Pearson X² statistic. *)
  dof : int;  (** Degrees of freedom used. *)
  p_value : float;  (** Upper-tail probability under H0. *)
}

val chi_square_test : expected:float array -> observed:int array -> chi_square_result
(** [chi_square_test ~expected ~observed] performs Pearson's goodness-of-fit
    test. Cells with expected count 0 must have observed count 0 and are
    dropped from the statistic. Raises [Invalid_argument] on length
    mismatch or an impossible observation in a zero cell. *)

val chi_square_uniform : observed:int array -> chi_square_result
(** Goodness-of-fit against the uniform distribution over the cells. *)

val g_test : expected:float array -> observed:int array -> chi_square_result
(** Likelihood-ratio goodness-of-fit test (G-test): G = 2 Σ O ln(O/E),
    asymptotically chi-square like Pearson's X² but more sensitive to
    cells where O and E diverge multiplicatively. Zero-expectation cells
    follow the {!chi_square_test} rules. *)

val normal_sf : float -> float
(** Upper-tail probability of the standard normal (via the regularized
    incomplete gamma; no erfc in the stdlib). *)

val normal_quantile : float -> float
(** Inverse standard-normal CDF: the [x] with [1 - normal_sf x = p]
    (bisection on {!normal_sf}, accurate to ~1e-10). Backbone of the
    confidence-parameterized CLT intervals in the optimizer's error
    reports. Raises [Invalid_argument] unless [0 < p < 1]. *)

val kolmogorov_sf : float -> float
(** Asymptotic Kolmogorov distribution upper tail Q_KS(λ), the p-value
    backbone of {!ks_test}. *)

type ks_result = {
  ks_statistic : float;  (** Sup-norm distance D_n. *)
  n : int;  (** Sample count. *)
  ks_p_value : float;  (** Q_KS with Stephens' finite-n correction. *)
}

val ks_test : cdf:(float -> float) -> samples:float array -> ks_result
(** One-sample Kolmogorov–Smirnov test of [samples] against the
    continuous CDF [cdf]. Raises [Invalid_argument] on an empty sample
    or a cdf value outside [0,1]. *)

val mean : float array -> float
(** Arithmetic mean; [nan] on the empty array. *)

val variance : float array -> float
(** Unbiased sample variance; [nan] when fewer than two observations. *)

val stddev : float array -> float
(** Square root of {!variance}. *)

val median : float array -> float
(** Median (averages the two central order statistics for even lengths);
    [nan] on the empty array. Does not mutate its argument. *)

val percentile : float array -> float -> float
(** [percentile a q] for [q] in [\[0,100\]], linear interpolation between
    order statistics. *)

(** Random variate generation for the distributions the paper relies on.

    The sequential black boxes U1 and WR1 (paper §4) consume one
    Binomial(x, p) draw per input tuple, so {!binomial} must be exact (the
    correctness proofs of Theorems 1 and 3 depend on it) and fast for the
    small-mean case that dominates streaming use. {!Zipf} reproduces the
    data generator of §8.1. *)

val binomial : Prng.t -> n:int -> p:float -> int
(** [binomial rng ~n ~p] draws from Binomial(n, p) exactly.

    Implementation: for small mean, sequential inversion from 0 (expected
    O(np) work); for large mean, inversion started at the mode and
    expanded outwards (expected O(sqrt(np(1-p))) work). [p] outside
    [\[0,1\]] is clamped. Raises [Invalid_argument] if [n < 0]. *)

val geometric : Prng.t -> p:float -> int
(** [geometric rng ~p] is the number of failures before the first success
    of a Bernoulli(p) sequence (support 0, 1, 2, ...). Requires
    [0 < p <= 1]. Used for skip-ahead sampling (Vitter-style). *)

val exponential : Prng.t -> rate:float -> float
(** [exponential rng ~rate] draws from Exp(rate), [rate > 0]. *)

val validate_weights : who:string -> float array -> float
(** One-pass weight validation shared by {!categorical},
    {!Cdf_table.of_weights} and {!Alias_table.of_weights}: every weight
    must be non-negative (NaN rejected) and the sum positive. Returns
    the sum; raises [Invalid_argument] tagged with [who] otherwise. *)

val categorical : Prng.t -> weights:float array -> int
(** [categorical rng ~weights] draws index [i] with probability
    proportional to [weights.(i)] (single draw, linear scan). Weights must
    be non-negative with a positive sum. One-shot sites only — repeated
    draws from fixed weights belong on {!Draw_table} (the [@draw-hygiene]
    rule holds strategy code to that). *)

(** Precomputed discrete distribution supporting O(log k) draws by binary
    search on the CDF — one half of the draw plane (see {!Draw_table}). *)
module Cdf_table : sig
  type t

  val of_weights : float array -> t
  (** Build from non-negative weights with positive sum. *)

  val draw : t -> Prng.t -> int
  (** Draw an index with probability proportional to its weight. *)

  val draw_packed : t -> Bytes.t -> int
  (** {!draw} against a packed state buffer ([Prng.dump_state]),
      stream-identical to {!draw}. *)

  val prob : t -> int -> float
  (** [prob t i] is the normalized probability of index [i]. *)

  val support : t -> int
  (** Number of categories. *)
end

(** Walker/Vose alias table: O(k) construction, O(1) draws — the other
    half of the draw plane. Wraps {!Alias_int} (the flat-array kernel)
    with the exact accessors {!Cdf_table} exposes, plus expected counts
    for chi-square cells. Draws are distribution-identical to
    {!Cdf_table} over the same weights, not draw-for-draw identical. *)
module Alias_table : sig
  type t

  val of_weights : float array -> t
  (** Build from non-negative weights with positive sum (one validation
      pass, shared with {!Cdf_table.of_weights}). *)

  val draw : t -> Prng.t -> int
  (** Draw an index with probability proportional to its weight. O(1). *)

  val draw_packed : t -> Bytes.t -> int
  (** {!draw} against a packed state buffer ({!Alias_int.draw_packed}),
      stream-identical to {!draw}. *)

  val draw_many : t -> Prng.t -> into:int array -> n:int -> unit
  (** Batched draws on a packed generator state ({!Alias_int.draw_many}):
      fills [into.(0 .. n-1)], allocation-free beyond the 40-byte state
      buffer, equal element-for-element to [n] single {!draw}s from the
      same state. *)

  val prob : t -> int -> float
  (** [prob t i] is the normalized probability of index [i] — exact, not
      reconstructed from the alias cells. *)

  val support : t -> int
  (** Number of categories. *)

  val expected_counts : t -> n:int -> float array
  (** Expected frequency of each index in [n] draws. *)
end

(** {1 The draw plane}

    [RSJ_DRAW=cdf|alias] selects which table repeated-draw call sites
    build (default [alias]). Mirrors [Column]'s [RSJ_DATAPLANE]
    contract: read once at startup, overridable in-process. *)

type draw_plane = Cdf | Alias

val draw_plane : unit -> draw_plane
val set_draw_plane : draw_plane -> unit

val draw_plane_name : unit -> string
(** ["cdf"] or ["alias"], for logs and bench output. *)

(** The plane-dispatched table: built on whichever plane is current at
    construction, drawn through a uniform interface. Repeated-draw
    strategy code ([Chain_sample], [Negative]) builds these instead of
    naming a concrete table, so the [RSJ_DRAW] toggle reaches every hot
    path at once. *)
module Draw_table : sig
  type t

  val of_weights : float array -> t
  (** Build on the current plane ({!draw_plane}). *)

  val draw : t -> Prng.t -> int

  val draw_packed : t -> Bytes.t -> int
  (** {!draw} against a packed state buffer ([Prng.dump_state], >= 40
      bytes), stream-identical to {!draw} on either plane. Kernels that
      make many picks per request (the chain walker) dump the state
      once and draw packed, so no pick ever touches the boxed int64
      generator fields. *)

  val draw_many : t -> Prng.t -> into:int array -> n:int -> unit
  val prob : t -> int -> float
  val support : t -> int

  val plane : t -> draw_plane
  (** The plane this table was built on. *)
end

(** The Zipfian data distribution of the paper's experimental setup
    (§8.1): value of rank [i] (1-based) has probability proportional to
    [1 / i^z] over a domain of [support] distinct values. [z = 0] is the
    uniform distribution; the paper uses z in {0, 1, 2, 3}. *)
module Zipf : sig
  type t

  val create : z:float -> support:int -> t
  (** [create ~z ~support] precomputes the CDF. Raises [Invalid_argument]
      if [support <= 0] or [z < 0]. *)

  val draw : t -> Prng.t -> int
  (** [draw t rng] returns a rank in [\[1, support\]]; rank 1 is the most
      frequent. The paper generates both join columns with the same rank
      order so that hot values collide ({i "the most frequent value was
      picked in the same order in each case"}). *)

  val prob : t -> int -> float
  (** [prob t rank] is the probability of [rank]. *)

  val expected_counts : t -> n:int -> float array
  (** [expected_counts t ~n] is the expected frequency of each rank in a
      sample of [n] draws, index 0 holding rank 1. *)

  val z : t -> float
  val support : t -> int
end

module Stats_math = Rsj_util.Stats_math
module Tuple = Rsj_relation.Tuple
module Value = Rsj_relation.Value

type interval = { lo : float; hi : float }

let contains i x = i.lo <= x && x <= i.hi
let width i = i.hi -. i.lo
let everything = { lo = neg_infinity; hi = infinity }

type line = {
  aggregate : string;
  estimate : float;
  clt : interval;
  hoeffding : interval;
}

type t = {
  r : int;
  n : int;
  confidence : float;
  range_assumed : bool;
  lines : line list;
}

let numeric v =
  match v with Value.Int i -> float_of_int i | Value.Float f -> f | _ -> 0.

let sample_sd xs =
  let r = Array.length xs in
  if r < 2 then 0.
  else begin
    let m = Array.fold_left ( +. ) 0. xs /. float_of_int r in
    let acc = Array.fold_left (fun acc x -> acc +. ((x -. m) *. (x -. m))) 0. xs in
    sqrt (acc /. float_of_int (r - 1))
  end

(* CLT interval for the mean of iid draws: mean ± z_{1-δ/2}·s/√r. *)
let clt_interval ~confidence xs =
  let r = Array.length xs in
  let mean = Array.fold_left ( +. ) 0. xs /. float_of_int r in
  let z = Stats_math.normal_quantile (1. -. ((1. -. confidence) /. 2.)) in
  let half = z *. sample_sd xs /. sqrt (float_of_int r) in
  (mean, { lo = mean -. half; hi = mean +. half })

(* Hoeffding for the mean of iid draws bounded in [a, b]:
   half-width (b−a)·√(ln(2/δ)/2r). Distribution-free, hence wider than
   CLT whenever the draws don't exhaust their range. *)
let hoeffding_interval ~confidence ~bounds:(a, b) mean r =
  let delta = 1. -. confidence in
  let half = (b -. a) *. sqrt (log (2. /. delta) /. (2. *. float_of_int r)) in
  { lo = mean -. half; hi = mean +. half }

let make ?(confidence = 0.95) ?range ?(pred = fun (_ : Tuple.t) -> true) ~sample ~n ~col
    () =
  let r = Array.length sample in
  if r = 0 then invalid_arg "Error_report.make: empty sample";
  if n < 0 then invalid_arg "Error_report.make: negative join size";
  if not (confidence > 0. && confidence < 1.) then
    invalid_arg "Error_report.make: confidence outside (0,1)";
  let nf = float_of_int n in
  let g = Array.map (fun t -> numeric (Tuple.get t col)) sample in
  let keep = Array.map pred sample in
  let a, b =
    match range with
    | Some (a, b) ->
        if a > b then invalid_arg "Error_report.make: empty range";
        (a, b)
    | None ->
        (* Fallback bounds read off the sample itself — fine for CLT
           sanity but not a rigorous Hoeffding premise; the report
           flags it via [range_assumed]. *)
        Array.fold_left
          (fun (a, b) x -> (Float.min a x, Float.max b x))
          (g.(0), g.(0)) g
  in
  let range_assumed = range = None in
  (* Horvitz–Thompson per-draw variables: each uniform WR draw t
     contributes n·g(t)·1[pred t] (SUM) or n·1[pred t] (COUNT); the
     mean of r such draws is unbiased for the aggregate over the full
     join (§4's scale-up, with n = |J|). *)
  let ht_sum = Array.init r (fun i -> if keep.(i) then nf *. g.(i) else 0.) in
  let ht_count = Array.init r (fun i -> if keep.(i) then nf else 0.) in
  let sum_line =
    let estimate, clt = clt_interval ~confidence ht_sum in
    let bounds = (nf *. Float.min 0. a, nf *. Float.max 0. b) in
    {
      aggregate = "sum";
      estimate;
      clt;
      hoeffding = hoeffding_interval ~confidence ~bounds estimate r;
    }
  in
  let count_line =
    let estimate, clt = clt_interval ~confidence ht_count in
    {
      aggregate = "count";
      estimate;
      clt;
      hoeffding = hoeffding_interval ~confidence ~bounds:(0., nf) estimate r;
    }
  in
  let avg_line =
    (* AVG over the qualifying rows: the qualifying draws are uniform
       over the qualifying join tuples, so their g-mean estimates the
       population mean directly (no n scale-up). *)
    let qualifying =
      let acc = ref [] in
      for i = r - 1 downto 0 do
        if keep.(i) then acc := g.(i) :: !acc
      done;
      Array.of_list !acc
    in
    match Array.length qualifying with
    | 0 -> { aggregate = "avg"; estimate = nan; clt = everything; hoeffding = everything }
    | k ->
        let estimate, clt = clt_interval ~confidence qualifying in
        {
          aggregate = "avg";
          estimate;
          clt;
          hoeffding = hoeffding_interval ~confidence ~bounds:(a, b) estimate k;
        }
  in
  { r; n; confidence; range_assumed; lines = [ sum_line; count_line; avg_line ] }

let line t aggregate = List.find_opt (fun l -> l.aggregate = aggregate) t.lines

let pp ppf t =
  Format.fprintf ppf "error report: r=%d |J|=%d confidence=%.0f%%%s@," t.r t.n
    (100. *. t.confidence)
    (if t.range_assumed then " (value range read off the sample)" else "");
  List.iter
    (fun l ->
      Format.fprintf ppf "  %-5s %14.3f  clt [%g, %g]  hoeffding [%g, %g]@," l.aggregate
        l.estimate l.clt.lo l.clt.hi l.hoeffding.lo l.hoeffding.hi)
    t.lines

let to_string t =
  let buf = Buffer.create 256 in
  let ppf = Format.formatter_of_buffer buf in
  Format.fprintf ppf "@[<v>%a@]@?" pp t;
  Buffer.contents buf

(** Cost-based strategy selection with an explainable decision trace.

    Given a {!Catalog.t} snapshot and a query shape, pick the feasible
    strategy with the lowest expected cost ({!Cost_model.cost}),
    breaking exact ties by a fixed preference order (Stream, Count,
    Hybrid, Index, Frequency-Partition, Group, Olken, Naive). Every
    decision carries the full candidate table so callers can render
    [EXPLAIN SAMPLE] output without recomputation. *)

type reason =
  | Cheapest  (** Won the cost comparison among ≥ 2 feasible strategies. *)
  | Only_feasible  (** No other strategy's requirements were met. *)

val reason_to_string : reason -> string
(** ["cheapest"] / ["only-feasible"] — the metric label values. *)

type decision = {
  chosen : Rsj_core.Strategy.t;
  reason : reason;
  shape : Cost_model.query_shape;
  candidates : Cost_model.costing list;
      (** All strategies in {!Rsj_core.Strategy.all} order, feasible or
          not, with rendered formulas. *)
  catalog_summary : string;  (** {!Catalog.describe} of the input. *)
}

val choose : Catalog.t -> Cost_model.query_shape -> Rsj_core.Strategy.t * decision
(** Pure: no metrics side effects (for tests and batch sweeps). Always
    succeeds — Naive requires nothing, so at least one candidate is
    feasible. *)

val choose_counted : Catalog.t -> Cost_model.query_shape -> Rsj_core.Strategy.t * decision
(** {!choose}, then bump
    [rsj_picker_choice_total{strategy,reason}] in {!Rsj_obs.Registry}.
    The engine and CLI route through this one. *)

val rank : Rsj_core.Strategy.t -> int
(** The tie-break preference order (lower wins). Exposed so tests can
    pin it. *)

val pp : Format.formatter -> decision -> unit
val to_string : decision -> string
(** Multi-line trace: header with choice and reason, catalog summary,
    then one row per candidate ([*] marks the winner). *)

module Frequency = Rsj_stats.Frequency
module Histogram = Rsj_stats.Histogram
module Join_estimate = Rsj_stats.Join_estimate
module Strategy = Rsj_core.Strategy
module Prng = Rsj_util.Prng

type t = {
  availability : Strategy.availability;
  n1 : int;
  n2 : int;
  left_stats : Frequency.t option;
  right_stats : Frequency.t option;
  histogram : Histogram.End_biased.t option;
  join_size : float;
  join_size_exact : bool;
  join_size_stderr : float;
}

let make ?left_stats ?right_stats ?histogram ?(join_size_exact = false)
    ?(join_size_stderr = 0.) ~availability ~n1 ~n2 ~join_size () =
  if n1 < 0 || n2 < 0 then invalid_arg "Catalog.make: negative cardinality";
  if join_size < 0. then invalid_arg "Catalog.make: negative join size";
  {
    availability;
    n1;
    n2;
    left_stats;
    right_stats;
    histogram;
    join_size;
    join_size_exact;
    join_size_stderr;
  }

(* Estimation budget when the join size cannot be read off statistics:
   a few hundred draws keeps the picker's own cost negligible next to
   the n1-tuple scan every strategy pays anyway. *)
let default_estimate_draws = 256

let of_env ?(estimate_seed = 0x0CA7) ?(estimate_draws = default_estimate_draws)
    ~availability env =
  let open Rsj_relation in
  let left = Strategy.env_left env and right = Strategy.env_right env in
  let n1 = Relation.cardinality left and n2 = Relation.cardinality right in
  let a = availability in
  (* Statistics maintenance is per-database in this model: when the
     catalog declares frequency statistics it has them for both
     operands, which is what lets the second-moment formulas (Thms 7-9)
     be evaluated exactly. *)
  let left_stats =
    if a.Strategy.right_stats then
      Some (Frequency.of_relation left ~key:(Strategy.env_left_key env))
    else None
  in
  let right_stats = if a.Strategy.right_stats then Some (Strategy.env_right_stats env) else None in
  let histogram = if a.Strategy.right_histogram then Some (Strategy.env_histogram env) else None in
  let join_size, join_size_exact, join_size_stderr =
    match (left_stats, right_stats) with
    | Some m1, Some m2 -> (float_of_int (Frequency.join_size m1 m2), true, 0.)
    | _ ->
        (* No statistics: fall back to the sampling estimators of
           join_estimate.ml, preferring the lowest-variance one the
           available structures admit. The estimator draws from its own
           seeded generator so catalog construction never perturbs the
           env's sampling stream. *)
        let rng = Prng.create ~seed:estimate_seed () in
        let left_key = Strategy.env_left_key env and right_key = Strategy.env_right_key env in
        let est =
          if a.Strategy.right_index then
            Join_estimate.index_assisted rng ~left
              ~right_index:(Strategy.env_right_index env)
              ~left_key
              ~draws:(max 1 estimate_draws)
          else
            match histogram with
            | Some histogram ->
                Join_estimate.bifocal rng ~left ~right ~left_key ~right_key ~histogram
                  ~draws:(max 1 estimate_draws)
            | None ->
                Join_estimate.cross_product rng ~left ~right ~left_key ~right_key
                  ~r1:(max 1 (min estimate_draws n1))
                  ~r2:(max 1 (min estimate_draws n2))
        in
        (Float.max 0. est.Join_estimate.value, false, est.Join_estimate.stderr)
  in
  {
    availability;
    n1;
    n2;
    left_stats;
    right_stats;
    histogram;
    join_size;
    join_size_exact;
    join_size_stderr;
  }

let skew c =
  match c.histogram with
  | Some h when c.n2 > 0 ->
      float_of_int (Histogram.End_biased.tracked_mass h) /. float_of_int c.n2
  | _ -> (
      match c.right_stats with
      | Some m2 when Frequency.total m2 > 0 ->
          float_of_int (Frequency.max_frequency m2) /. float_of_int (Frequency.total m2)
      | _ -> 0.)

let max_multiplicity c =
  match c.right_stats with
  | Some m2 -> Some (float_of_int (Frequency.max_frequency m2))
  | None -> (
      match c.histogram with
      | Some h -> (
          match Histogram.End_biased.high_values h with
          | (_, m) :: _ -> Some (float_of_int m)
          | [] ->
              (* Nothing tracked: every multiplicity is below the
                 threshold, which is therefore a usable upper bound. *)
              Some (float_of_int (Histogram.End_biased.threshold h)))
      | None -> None)

let describe c =
  let a = c.availability in
  let flag b s = if b then Some s else None in
  let structures =
    List.filter_map Fun.id
      [
        flag a.Strategy.left_index "index(R1)";
        flag a.Strategy.right_index "index(R2)";
        flag a.Strategy.right_stats "stats(R2)";
        flag a.Strategy.right_histogram "histogram(R2)";
      ]
  in
  Printf.sprintf "n1=%d n2=%d |J|%s%.0f%s [%s] skew=%.3f" c.n1 c.n2
    (if c.join_size_exact then "=" else "~")
    c.join_size
    (if c.join_size_exact then "" else Printf.sprintf " (±%.0f)" c.join_size_stderr)
    (match structures with [] -> "no structures" | l -> String.concat " " l)
    (skew c)

(** Per-query error guarantees for aggregates over a join sample.

    A uniform WR sample of [r] tuples from a join of known (or
    estimated) size [n] supports Horvitz–Thompson estimates of
    [SUM(g)], [COUNT], and [AVG(g)] over the join, each with two
    confidence intervals:

    - CLT: estimate ± z·s/√r using the per-draw sample variance —
      asymptotically exact, the paper's §4 accuracy story;
    - Hoeffding: distribution-free, from the declared value range —
      valid at any r, wider in exchange.

    The coverage harness (test/test_coverage.ml) checks empirically
    that both reach at least the nominal confidence. *)

type interval = { lo : float; hi : float }

val contains : interval -> float -> bool
val width : interval -> float

type line = {
  aggregate : string;  (** ["sum"], ["count"], or ["avg"]. *)
  estimate : float;
  clt : interval;
  hoeffding : interval;
}

type t = {
  r : int;  (** Sample size. *)
  n : int;  (** Join size used for the HT scale-up. *)
  confidence : float;
  range_assumed : bool;
      (** True when no [range] was supplied and the Hoeffding bounds
          were read off the sample — indicative, not rigorous. *)
  lines : line list;  (** sum, count, avg — in that order. *)
}

val make :
  ?confidence:float ->
  ?range:float * float ->
  ?pred:(Rsj_relation.Tuple.t -> bool) ->
  sample:Rsj_relation.Tuple.t array ->
  n:int ->
  col:int ->
  unit ->
  t
(** [make ~sample ~n ~col ()] reports on aggregates of column [col]
    (Int/Float read numerically; Null/Str as 0) over join rows
    satisfying [pred] (default: all). [confidence] defaults to 0.95.
    [range] is the a-priori bound on the column's values required for a
    rigorous Hoeffding interval. The avg line restricts to qualifying
    draws; with none, its estimate is [nan] with infinite intervals.
    Raises [Invalid_argument] on an empty sample, negative [n],
    confidence outside (0,1), or an inverted range. *)

val line : t -> string -> line option
(** Look up a line by aggregate name. *)

val pp : Format.formatter -> t -> unit
val to_string : t -> string

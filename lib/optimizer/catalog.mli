(** The optimizer's view of one join instance: which auxiliary
    structures exist (Table 1's columns), the operand cardinalities, and
    a join-size figure — exact when full statistics are declared,
    otherwise estimated through the best structure available
    ({!Rsj_stats.Join_estimate}).

    A catalog is a plain value: {!make} builds synthetic states for the
    golden decision tables, {!of_env} derives one from a prepared
    {!Rsj_core.Strategy.env} under a declared availability mask. *)

type t = {
  availability : Rsj_core.Strategy.availability;
  n1 : int;  (** |R1|. *)
  n2 : int;  (** |R2|. *)
  left_stats : Rsj_stats.Frequency.t option;
      (** m1, present iff [availability.right_stats] (statistics are
          maintained database-wide, not per operand). *)
  right_stats : Rsj_stats.Frequency.t option;  (** m2. *)
  histogram : Rsj_stats.Histogram.End_biased.t option;
      (** End-biased histogram of R2's join attribute. *)
  join_size : float;  (** |R1 ⋈ R2|, exact or estimated. *)
  join_size_exact : bool;
  join_size_stderr : float;  (** 0 when exact. *)
}

val make :
  ?left_stats:Rsj_stats.Frequency.t ->
  ?right_stats:Rsj_stats.Frequency.t ->
  ?histogram:Rsj_stats.Histogram.End_biased.t ->
  ?join_size_exact:bool ->
  ?join_size_stderr:float ->
  availability:Rsj_core.Strategy.availability ->
  n1:int ->
  n2:int ->
  join_size:float ->
  unit ->
  t
(** Assemble a catalog state directly. Raises [Invalid_argument] on a
    negative cardinality or join size. *)

val of_env :
  ?estimate_seed:int ->
  ?estimate_draws:int ->
  availability:Rsj_core.Strategy.availability ->
  Rsj_core.Strategy.env ->
  t
(** Snapshot a prepared join instance under an availability mask. Only
    structures the mask declares are consulted; when full statistics are
    absent the join size is estimated with [estimate_draws] draws
    (default 256) from a private generator seeded by [estimate_seed], so
    catalog construction never perturbs the env's sampling streams. The
    estimator is chosen by the fallback chain: index-assisted when an
    R2 index exists, else bifocal over the histogram, else the
    cross-product estimator. *)

val skew : t -> float
(** Fraction of R2's tuples concentrated in heavy values: tracked mass
    of the histogram over n2 when a histogram exists, else
    max-frequency over total from statistics, else 0 (unknown). *)

val max_multiplicity : t -> float option
(** M = max_v m2(v) from statistics; from a histogram, the top tracked
    frequency (or the threshold as an upper bound when nothing is
    tracked); [None] when neither structure exists. *)

val describe : t -> string
(** One-line summary for decision traces, e.g.
    ["n1=40 n2=80 |J|=400 [index(R1) index(R2) stats(R2) histogram(R2)] skew=0.625"]. *)

module Registry = Rsj_obs.Registry
module Strategy = Rsj_core.Strategy

type reason = Cheapest | Only_feasible

let reason_to_string = function
  | Cheapest -> "cheapest"
  | Only_feasible -> "only-feasible"

type decision = {
  chosen : Strategy.t;
  reason : reason;
  shape : Cost_model.query_shape;
  candidates : Cost_model.costing list;
  catalog_summary : string;
}

(* Tie-break order among equal-cost feasible strategies: prefer the one
   with the weakest runtime assumptions and the best constants in
   practice (Stream's single pass beats Count's two passes beats the
   index-dependent and rejection-prone strategies; Naive last). *)
let rank = function
  | Strategy.Stream -> 0
  | Strategy.Count_sample -> 1
  | Strategy.Hybrid_count -> 2
  | Strategy.Index_sample -> 3
  | Strategy.Frequency_partition -> 4
  | Strategy.Group -> 5
  | Strategy.Olken -> 6
  | Strategy.Naive -> 7

let count_choice decision =
  Registry.incr
    (Registry.counter "rsj_picker_choice_total"
       ~help:"Strategy-picker decisions by chosen strategy and reason"
       ~labels:
         [
           ("strategy", Strategy.name decision.chosen);
           ("reason", reason_to_string decision.reason);
         ])

let choose catalog shape =
  let candidates = Cost_model.all_costs catalog shape in
  let feasible =
    List.filter_map
      (fun (c : Cost_model.costing) ->
        match c.verdict with
        | Cost_model.Feasible cost -> Some (c.strategy, cost)
        | Cost_model.Infeasible _ -> None)
      candidates
  in
  let decision =
    match feasible with
    | [] ->
        (* Unreachable: Naive requires nothing, so it is always
           feasible. Keep a defensive arm rather than an assert so a
           future Table-1 change degrades gracefully. *)
        {
          chosen = Strategy.Naive;
          reason = Only_feasible;
          shape;
          candidates;
          catalog_summary = Catalog.describe catalog;
        }
    | [ (only, _) ] ->
        {
          chosen = only;
          reason = Only_feasible;
          shape;
          candidates;
          catalog_summary = Catalog.describe catalog;
        }
    | _ :: _ :: _ ->
        let best =
          List.fold_left
            (fun best (s, cost) ->
              match best with
              | None -> Some (s, cost)
              | Some (bs, bc) ->
                  if cost < bc || (cost = bc && rank s < rank bs) then Some (s, cost)
                  else best)
            None feasible
        in
        let chosen, _ = Option.get best in
        {
          chosen;
          reason = Cheapest;
          shape;
          candidates;
          catalog_summary = Catalog.describe catalog;
        }
  in
  (decision.chosen, decision)

let choose_counted catalog shape =
  Rsj_obs.Trace.with_span ~cat:"picker" "picker.choose" (fun () ->
      let chosen, decision = choose catalog shape in
      count_choice decision;
      Rsj_obs.Trace.instant ~cat:"picker"
        ~args:
          [
            ("strategy", Rsj_obs.Json.Str (Strategy.name chosen));
            ("reason", Rsj_obs.Json.Str (reason_to_string decision.reason));
          ]
        "picker.decision";
      (chosen, decision))

let pp ppf d =
  Format.fprintf ppf "picker: %s (%s), r=%d@," (Strategy.name d.chosen)
    (reason_to_string d.reason) d.shape.Cost_model.r;
  Format.fprintf ppf "catalog: %s@," d.catalog_summary;
  List.iter
    (fun (c : Cost_model.costing) ->
      let marker = if c.strategy = d.chosen then "*" else " " in
      match c.verdict with
      | Cost_model.Feasible cost ->
          Format.fprintf ppf "%s %-20s %12.1f  %s@," marker (Strategy.name c.strategy)
            cost c.formula
      | Cost_model.Infeasible _ ->
          Format.fprintf ppf "%s %-20s %12s  %s@," marker (Strategy.name c.strategy)
            "infeasible" c.formula)
    d.candidates

let to_string d =
  let buf = Buffer.create 256 in
  let ppf = Format.formatter_of_buffer buf in
  Format.fprintf ppf "@[<v>%a@]@?" pp d;
  Buffer.contents buf

module Frequency = Rsj_stats.Frequency
module Histogram = Rsj_stats.Histogram
module Join_size = Rsj_stats.Join_size
module Strategy = Rsj_core.Strategy

type query_shape = { r : int }

let shape ~r =
  if r < 0 then invalid_arg "Cost_model.shape: negative sample size";
  { r }

type verdict = Feasible of float | Infeasible of string list
type costing = { strategy : Strategy.t; verdict : verdict; formula : string }

let fi = float_of_int

(* Distinct-count guess when only a histogram exists: the histogram
   names its tracked (heavy) values; doubling that count is a crude but
   serviceable stand-in for the low-frequency tail. Exposed for tests. *)
let distinct_guess (c : Catalog.t) =
  match c.right_stats with
  | Some m2 -> max 1 (Frequency.distinct_count m2)
  | None -> (
      match c.histogram with
      | Some h -> max 1 (2 * Histogram.End_biased.tracked_count h)
      | None -> 1)

(* Σ_v m1(v)·m2(v)² restricted to [keep], together with the matching
   Σ m1·m2, using exact m1 when statistics exist and the uniform
   m1 ≈ n1/d approximation otherwise. *)
let hi_sums (c : Catalog.t) h =
  let is_high = Histogram.End_biased.is_high h in
  match (c.left_stats, c.right_stats) with
  | Some m1, Some m2 ->
      Frequency.fold m2 ~init:(0., 0.) ~f:(fun (mm, mmsq) v m2v ->
          if is_high v then begin
            let m1v = fi (Frequency.frequency m1 v) in
            let m2v = fi m2v in
            (mm +. (m1v *. m2v), mmsq +. (m1v *. m2v *. m2v))
          end
          else (mm, mmsq))
  | _ ->
      let m1_hat = fi c.n1 /. fi (distinct_guess c) in
      List.fold_left
        (fun (mm, mmsq) (_, m2v) ->
          let m2v = fi m2v in
          (mm +. (m1_hat *. m2v), mmsq +. (m1_hat *. m2v *. m2v)))
        (0., 0.)
        (Histogram.End_biased.high_values h)

(* Expected low-side join mass Σ_lo m1·m2 = |J| − Σ_hi m1·m2, clamped
   because an estimated |J| can undershoot the hi-side sum. *)
let lo_mass (c : Catalog.t) hi_mm = Float.max 0. (c.join_size -. hi_mm)

let cost (c : Catalog.t) ({ r } : query_shape) strategy =
  let n1 = fi c.n1 and n2 = fi c.n2 and n = c.join_size and r = fi r in
  match Strategy.missing_structures c.availability strategy with
  | _ :: _ as missing ->
      {
        strategy;
        verdict = Infeasible missing;
        formula = Printf.sprintf "requires %s" (String.concat ", " missing);
      }
  | [] ->
      let feasible value formula = { strategy; verdict = Feasible value; formula } in
      (match strategy with
      | Strategy.Naive ->
          feasible (n1 +. n2 +. n)
            (Printf.sprintf "n1 + n2 + |J| = %.0f + %.0f + %.0f" n1 n2 n)
      | Strategy.Stream ->
          (* Theorem 6: one pass over R1 plus r output lookups. *)
          feasible (n1 +. r) (Printf.sprintf "n1 + r = %.0f + %.0f" n1 r)
      | Strategy.Olken ->
          (* Theorem 5: r accepted tuples at M·n1/|J| trials each. *)
          if r = 0. then feasible 0. "r = 0"
          else if n <= 0. then
            feasible infinity "M*n1*r/|J| with |J| = 0 (never accepts)"
          else begin
            let m, m_note =
              match Catalog.max_multiplicity c with
              | Some m -> (m, Printf.sprintf "M = %.0f" m)
              | None -> (n2, "M unknown, bounded by n2")
            in
            feasible
              (r *. m *. n1 /. n)
              (Printf.sprintf "r*M*n1/|J| = %.0f*%.0f*%.0f/%.0f (%s)" r m n1 n m_note)
          end
      | Strategy.Group ->
          (* Theorem 7: α = r·Σm1m2²/|J|², work ≈ n1 + α·|J|. *)
          let moment, note =
            match (c.left_stats, c.right_stats) with
            | Some m1, Some m2 -> (Join_size.self_join_moment m1 m2, "exact moment")
            | _, Some m2 ->
                let m1_hat = n1 /. fi (distinct_guess c) in
                let sq =
                  Frequency.fold m2 ~init:0. ~f:(fun acc _ m2v -> acc +. (fi m2v *. fi m2v))
                in
                (m1_hat *. sq, "uniform-m1 moment")
            | _, None -> (0., "no statistics")
          in
          let term = if n <= 0. then 0. else r *. moment /. n in
          feasible (n1 +. term)
            (Printf.sprintf "n1 + r*Sum(m1*m2^2)/|J| = %.0f + %.1f (%s)" n1 term note)
      | Strategy.Frequency_partition -> (
          (* Theorem 8: scan R1, materialize the low side, sample the
             high side at Σ_hi m1m2²/Σ_hi m1m2 tuples per draw. *)
          match c.histogram with
          | None -> feasible (n1 +. n) "no histogram (degenerate: all low)"
          | Some h ->
              let hi_mm, hi_mmsq = hi_sums c h in
              let lo = lo_mass c hi_mm in
              let per_draw = if hi_mm > 0. then hi_mmsq /. hi_mm else 0. in
              feasible
                (n1 +. lo +. (r *. per_draw))
                (Printf.sprintf
                   "n1 + lo + r*Sum_hi(m1*m2^2)/Sum_hi(m1*m2) = %.0f + %.1f + %.0f*%.1f" n1
                   lo r per_draw))
      | Strategy.Index_sample -> (
          (* Theorem 9: scan R1, materialize the low side, r indexed
             probes on the high side. *)
          match c.histogram with
          | None -> feasible (n1 +. n +. r) "no histogram (degenerate: all low)"
          | Some h ->
              let hi_mm, _ = hi_sums c h in
              let lo = lo_mass c hi_mm in
              feasible
                (n1 +. r +. lo)
                (Printf.sprintf "n1 + r + lo = %.0f + %.0f + %.1f" n1 r lo))
      | Strategy.Count_sample | Strategy.Hybrid_count ->
          (* §6.4: one counting pass over each operand, then r draws. *)
          feasible (n1 +. n2 +. r)
            (Printf.sprintf "n1 + n2 + r = %.0f + %.0f + %.0f" n1 n2 r))

let all_costs c shape = List.map (cost c shape) Strategy.all

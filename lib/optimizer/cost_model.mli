(** Per-strategy expected-work formulas (Theorems 5–9, §6.4),
    parameterized by a {!Catalog.t} snapshot.

    Costs are in tuples touched: every strategy pays its operand scans
    plus the strategy-specific sampling work the paper analyzes. When
    the catalog lacks the statistics a formula reads, the model
    substitutes documented approximations (M bounded by n2, uniform
    m1 ≈ n1/d) rather than refusing — feasibility is a separate,
    structural question answered by
    {!Rsj_core.Strategy.missing_structures}. *)

type query_shape = { r : int  (** Requested sample size. *) }

val shape : r:int -> query_shape
(** Raises [Invalid_argument] when [r < 0]. *)

type verdict =
  | Feasible of float  (** Expected tuples touched. *)
  | Infeasible of string list
      (** The absent structures, in {!Rsj_core.Strategy.missing_structures}
          order. *)

type costing = {
  strategy : Rsj_core.Strategy.t;
  verdict : verdict;
  formula : string;  (** Rendered formula with substituted values. *)
}

val cost : Catalog.t -> query_shape -> Rsj_core.Strategy.t -> costing
(** The paper's formulas: Naive [n1+n2+|J|]; Olken [r·M·n1/|J|]
    (Thm 5; [infinity] when the join is empty and [r > 0]); Stream
    [n1+r] (Thm 6); Group [n1 + r·Σm1m2²/|J|] (Thm 7);
    Frequency-Partition [n1 + Σ_lo m1m2 + r·Σ_hi m1m2²/Σ_hi m1m2]
    (Thm 8); Index-Sample [n1 + r + Σ_lo m1m2] (Thm 9); Count/Hybrid
    [n1+n2+r] (§6.4). *)

val all_costs : Catalog.t -> query_shape -> costing list
(** One costing per strategy, in {!Rsj_core.Strategy.all} order. *)

val distinct_guess : Catalog.t -> int
(** The d used by the uniform-m1 approximation: exact distinct count
    when statistics exist, else twice the histogram's tracked count,
    else 1. Exposed for the golden decision tests. *)

(* Parallel sampling runtime on OCaml 5 domains.

   The Case-B strategies are single-pass over R1, so the hot loop
   shards cleanly: each domain feeds a private reservoir over a
   contiguous shard of the input against the shared read-only
   Hash_index / Frequency structures, then the per-shard reservoirs
   merge on the calling domain (Reservoir.*.merge), which is
   distribution-identical to one sequential pass. Metrics are
   per-domain and summed at the end, so no counter is ever written
   from two domains. *)

open Rsj_relation
open Rsj_exec
module Strategy = Rsj_core.Strategy
module Reservoir = Rsj_core.Reservoir
module Internals = Rsj_core.Internals
module Frequency = Rsj_stats.Frequency
module Hash_index = Rsj_index.Hash_index
module Prng = Rsj_util.Prng

let default_domains () = Domain.recommended_domain_count ()

let is_parallelizable = function
  | Strategy.Naive | Strategy.Stream | Strategy.Group | Strategy.Count_sample -> true
  | Strategy.Olken | Strategy.Frequency_partition | Strategy.Index_sample
  | Strategy.Hybrid_count ->
      (* Olken is a sequence of dependent rejection rounds; the
         partition strategies interleave two samplers over one pass
         with a shared histogram split — both inherently sequential
         in this runtime. *)
      false

(* Run [f k] for k in 0..domains-1, one domain each, shard 0 on the
   calling domain so [domains] domains run in total. *)
let fan_out ~domains f =
  let handles = Array.init (domains - 1) (fun i -> Domain.spawn (fun () -> f (i + 1))) in
  let first = f 0 in
  let out = Array.make domains first in
  Array.iteri (fun i h -> out.(i + 1) <- Domain.join h) handles;
  out

let sum_metrics parts =
  Array.fold_left (fun acc (_, m) -> Metrics.add acc m) (Metrics.create ()) parts

(* One weighted-WR reservoir pass over [relation], sharded. [feed]
   receives the shard's private metrics, rng and reservoir plus one
   tuple; it decides weights and does its own counting. *)
let sharded_wr_pass ~domains ~rngs ~r ~feed relation =
  let shards = Relation.shards relation ~n:domains in
  fan_out ~domains (fun k ->
      let metrics = Metrics.create () in
      let res = Reservoir.Wr.create ~r in
      Stream0.iter (fun t -> feed metrics rngs.(k) res t) shards.(k);
      (res, metrics))

let merge_wr rng parts =
  let acc = ref (fst parts.(0)) in
  Array.iteri (fun i (res, _) -> if i > 0 then acc := Reservoir.Wr.merge rng !acc res) parts;
  !acc

(* Weighted WR sample of R1 with weights m2(t.A) from the frequency
   statistics — the shared first step of Stream-, Group- and
   Count-Sample. Returns the merged sample and the summed scan
   metrics. *)
let parallel_s1 env ~r ~domains ~rngs rng =
  let stats = Strategy.env_right_stats env in
  let left_key = Strategy.env_left_key env in
  let feed metrics shard_rng res t =
    let open Metrics in
    metrics.tuples_scanned <- metrics.tuples_scanned + 1;
    metrics.stats_lookups <- metrics.stats_lookups + 1;
    let w = float_of_int (Frequency.frequency stats (Tuple.attr t left_key)) in
    Reservoir.Wr.feed shard_rng res ~weight:w t
  in
  let parts = sharded_wr_pass ~domains ~rngs ~r ~feed (Strategy.env_left env) in
  (Reservoir.Wr.contents (merge_wr rng parts), sum_metrics parts)

let run_stream env ~r ~domains rng =
  let open Metrics in
  let rngs = Prng.split_n rng domains in
  let s1, metrics = parallel_s1 env ~r ~domains ~rngs rng in
  let index = Strategy.env_right_index env in
  let out =
    Array.map
      (fun t1 ->
        let v = Tuple.attr t1 (Strategy.env_left_key env) in
        metrics.index_probes <- metrics.index_probes + 1;
        match Hash_index.random_match index rng v with
        | Some t2 ->
            metrics.join_output_tuples <- metrics.join_output_tuples + 1;
            Tuple.join t1 t2
        | None ->
            failwith "Rsj_parallel.run(Stream): sampled tuple has no match in R2")
      s1
  in
  metrics.output_tuples <- metrics.output_tuples + Array.length out;
  (out, metrics)

let run_group env ~r ~domains rng =
  let open Metrics in
  let rngs = Prng.split_n rng domains in
  let s1, metrics = parallel_s1 env ~r ~domains ~rngs rng in
  if Array.length s1 = 0 then ([||], metrics)
  else begin
    let left_key = Strategy.env_left_key env in
    let right_key = Strategy.env_right_key env in
    (* Group the S1 entries by join value; the table is read-only
       during the R2 scan, so every domain may probe it. *)
    let groups : int list ref Internals.Vtbl.t = Internals.Vtbl.create (2 * r) in
    Array.iteri
      (fun i t1 ->
        let v = Tuple.attr t1 left_key in
        match Internals.Vtbl.find_opt groups v with
        | Some cell -> cell := i :: !cell
        | None -> Internals.Vtbl.replace groups v (ref [ i ]))
      s1;
    (* Sharded R2 scan: each domain keeps one unit reservoir per S1
       entry; merging element-wise reproduces the per-group uniform
       pick of Group-Sample step 3. *)
    let scan_rngs = Prng.split_n rng domains in
    let shards = Relation.shards (Strategy.env_right env) ~n:domains in
    let parts =
      fan_out ~domains (fun k ->
          let m = Metrics.create () in
          let reservoirs = Array.init (Array.length s1) (fun _ -> Reservoir.Unit.create ()) in
          Stream0.iter
            (fun t2 ->
              m.tuples_scanned <- m.tuples_scanned + 1;
              let v = Tuple.attr t2 right_key in
              if not (Value.is_null v) then
                match Internals.Vtbl.find_opt groups v with
                | None -> ()
                | Some cell ->
                    List.iter
                      (fun i ->
                        m.join_output_tuples <- m.join_output_tuples + 1;
                        Reservoir.Unit.feed scan_rngs.(k) reservoirs.(i) t2)
                      !cell)
            shards.(k);
          (reservoirs, m))
    in
    let metrics = ref metrics in
    Array.iter (fun (_, m) -> metrics := Metrics.add !metrics m) parts;
    let metrics = !metrics in
    let merged =
      Array.init (Array.length s1) (fun i ->
          let acc = ref (fst parts.(0)).(i) in
          for k = 1 to domains - 1 do
            acc := Reservoir.Unit.merge rng !acc (fst parts.(k)).(i)
          done;
          !acc)
    in
    let out =
      Array.mapi
        (fun i res ->
          match Reservoir.Unit.get res with
          | Some t2 -> Tuple.join s1.(i) t2
          | None -> failwith "Rsj_parallel.run(Group): sampled tuple has no match in R2")
        merged
    in
    metrics.output_tuples <- metrics.output_tuples + Array.length out;
    (out, metrics)
  end

let run_count env ~r ~domains rng =
  let open Metrics in
  let rngs = Prng.split_n rng domains in
  let s1, metrics = parallel_s1 env ~r ~domains ~rngs rng in
  let stats = Strategy.env_right_stats env in
  (* The R2 scan runs one sequential U1 per sampled value (each needs
     the value's tuples in a single stream), so it stays on the
     calling domain. *)
  let out =
    Internals.count_sample_scan rng metrics ~strategy:"Rsj_parallel.run(Count)" ~s1
      ~left_key:(Strategy.env_left_key env)
      ~right:(Strategy.env_right env)
      ~right_key:(Strategy.env_right_key env)
      ~population:(fun v -> Frequency.frequency stats v)
  in
  metrics.output_tuples <- metrics.output_tuples + Array.length out;
  (out, metrics)

let run_naive env ~r ~domains rng =
  let open Metrics in
  let main_metrics = Metrics.create () in
  let tbl =
    Internals.build_join_hash main_metrics (Strategy.env_right env)
      ~right_key:(Strategy.env_right_key env)
  in
  let left_key = Strategy.env_left_key env in
  let rngs = Prng.split_n rng domains in
  let feed metrics shard_rng res t1 =
    metrics.tuples_scanned <- metrics.tuples_scanned + 1;
    Array.iter
      (fun t2 ->
        metrics.join_output_tuples <- metrics.join_output_tuples + 1;
        Reservoir.Wr.feed shard_rng res ~weight:1. (Tuple.join t1 t2))
      (Internals.hash_matches tbl (Tuple.attr t1 left_key))
  in
  let parts = sharded_wr_pass ~domains ~rngs ~r ~feed (Strategy.env_left env) in
  let out = Reservoir.Wr.contents (merge_wr rng parts) in
  let metrics = Metrics.add main_metrics (sum_metrics parts) in
  metrics.output_tuples <- metrics.output_tuples + Array.length out;
  (out, metrics)

let run env strategy ~r ~domains =
  if domains < 0 then invalid_arg "Rsj_parallel.run: domains < 0";
  if r < 0 then invalid_arg "Rsj_parallel.run: r < 0";
  if domains <= 1 || not (is_parallelizable strategy) then Strategy.run env strategy ~r
  else begin
    Strategy.prepare env strategy;
    let rng = Prng.split (Strategy.env_rng env) in
    let t0 = Unix.gettimeofday () in
    let sample, metrics =
      match strategy with
      | Strategy.Stream -> run_stream env ~r ~domains rng
      | Strategy.Group -> run_group env ~r ~domains rng
      | Strategy.Count_sample -> run_count env ~r ~domains rng
      | Strategy.Naive -> run_naive env ~r ~domains rng
      | Strategy.Olken | Strategy.Frequency_partition | Strategy.Index_sample
      | Strategy.Hybrid_count ->
          assert false
    in
    let elapsed_seconds = Unix.gettimeofday () -. t0 in
    { Strategy.strategy; sample; metrics; elapsed_seconds }
  end

(* Parallel sampling runtime on OCaml 5 domains — full strategy
   coverage.

   Scans are distributed by the chunk-queue scheduler
   (Chunk_scheduler): the relation is cut into fixed-size chunks that
   sit behind one atomic cursor, and each domain claims the next chunk
   with a fetch-and-add, so skewed chunks cannot strand work on one
   domain the way the old static `Relation.shards` split could. Each
   chunk carries its own split generator, metrics and mergeable state
   (Reservoir.Wr / Reservoir.Unit / Internals.Partition); the results
   land in per-chunk slots and merge on the calling domain in chunk
   order. Because chunk state depends only on the chunk index — never
   on which domain ran it — every chunked strategy is deterministic
   for a fixed seed and distribution-identical to one sequential pass
   (the reservoir merges preserve the slot laws).

   Olken-Sample is the one strategy that is not a scan: it is a
   sequence of iid accept/reject rounds. It parallelizes
   speculatively: every domain runs independent rounds with its own
   split generator into a private buffer, a shared atomic ticket
   counter hands out acceptance slots, and domains stop once r tickets
   are gone. Accepted pairs are iid uniform on the join no matter
   which domain produced them or when, and ticketing/stopping look
   only at the counter — never at the sampled values — so discarding
   post-r acceptances keeps the output law exactly Olken's. The
   trade-off: which rounds land is timing-dependent, so Olken at
   domains > 1 is distribution-identical but not bit-reproducible.

   Auxiliary structures (hash index, frequency statistics, histogram)
   are shared read-only; work counters are per-chunk Metrics.t values
   summed at the end (the index's probe counter is atomic), so no
   mutable state crosses domains unsynchronized. *)

open Rsj_relation
open Rsj_exec
module Strategy = Rsj_core.Strategy
module Reservoir = Rsj_core.Reservoir
module Internals = Rsj_core.Internals
module Olken_sample = Rsj_core.Olken_sample
module Frequency = Rsj_stats.Frequency
module End_biased = Rsj_stats.Histogram.End_biased
module Hash_index = Rsj_index.Hash_index
module Prng = Rsj_util.Prng
module Chunk_scheduler = Chunk_scheduler

let default_domains () = Domain.recommended_domain_count ()

let is_parallelizable = function
  | Strategy.Naive | Strategy.Olken | Strategy.Stream | Strategy.Group
  | Strategy.Frequency_partition | Strategy.Index_sample | Strategy.Count_sample
  | Strategy.Hybrid_count ->
      true

(* Run [f k] for k in 0..domains-1, one domain each, k = 0 on the
   calling domain so [domains] domains run in total. *)
let fan_out ~domains f =
  let handles = Array.init (domains - 1) (fun i -> Domain.spawn (fun () -> f (i + 1))) in
  let first = f 0 in
  let out = Array.make domains first in
  Array.iteri (fun i h -> out.(i + 1) <- Domain.join h) handles;
  out

(* One chunk-scheduled pass over [relation]. [make ()] builds a chunk's
   private accumulator, [feed metrics rng state t] consumes one tuple;
   each chunk gets its own generator (split by chunk index, so the
   result is independent of which domain claims it) and its own
   metrics, with the scan itself counted here. Results come back in
   chunk order. *)
let chunked_pass ~domains ~chunk_size ~rng ~make ~feed relation =
  let chunks = Relation.chunk_count relation ~chunk_size in
  let rngs = Prng.split_n rng chunks in
  let task i =
    let metrics = Metrics.create () in
    let state = make () in
    Stream0.iter
      (fun t ->
        metrics.Metrics.tuples_scanned <- metrics.Metrics.tuples_scanned + 1;
        feed metrics rngs.(i) state t)
      (Relation.chunk relation ~chunk_size i);
    (state, metrics)
  in
  Chunk_scheduler.run ~domains ~chunks ~task

(* Fold (state, metrics) chunk results in chunk order. [merge_rng] is
   consumed sequentially on the calling domain, so the fold is as
   deterministic as the parts. *)
let fold_parts ~merge_rng ~merge ~empty (parts : _ array) =
  if Array.length parts = 0 then (empty (), Metrics.create ())
  else begin
    let state = ref (fst parts.(0)) in
    let metrics = ref (snd parts.(0)) in
    for i = 1 to Array.length parts - 1 do
      state := merge merge_rng !state (fst parts.(i));
      metrics := Metrics.add !metrics (snd parts.(i))
    done;
    (!state, !metrics)
  end

(* Weighted WR sample of R1 with weights m2(t.A) from the frequency
   statistics — the shared first step of Stream-, Group- and
   Count-Sample. Returns the merged sample and the summed scan
   metrics. *)
let parallel_s1 env ~r ~domains ~chunk_size rng =
  let stats = Strategy.env_right_stats env in
  let left_key = Strategy.env_left_key env in
  let scan_rng = Prng.split rng in
  let merge_rng = Prng.split rng in
  let parts, _ =
    chunked_pass ~domains ~chunk_size ~rng:scan_rng
      ~make:(fun () -> Reservoir.Wr.create ~r)
      ~feed:(fun metrics chunk_rng res t ->
        metrics.Metrics.stats_lookups <- metrics.Metrics.stats_lookups + 1;
        let w = float_of_int (Frequency.frequency stats (Tuple.attr t left_key)) in
        Reservoir.Wr.feed chunk_rng res ~weight:w t)
      (Strategy.env_left env)
  in
  let res, metrics =
    fold_parts ~merge_rng ~merge:Reservoir.Wr.merge ~empty:(fun () -> Reservoir.Wr.create ~r)
      parts
  in
  (Reservoir.Wr.contents res, metrics)

let run_stream env ~r ~domains ~chunk_size rng =
  let open Metrics in
  let s1, metrics = parallel_s1 env ~r ~domains ~chunk_size rng in
  let index = Strategy.env_right_index env in
  let out =
    Array.map
      (fun t1 ->
        let v = Tuple.attr t1 (Strategy.env_left_key env) in
        metrics.index_probes <- metrics.index_probes + 1;
        match Hash_index.random_match index rng v with
        | Some t2 ->
            metrics.join_output_tuples <- metrics.join_output_tuples + 1;
            Tuple.join t1 t2
        | None -> failwith "Rsj_parallel.run(Stream): sampled tuple has no match in R2")
      s1
  in
  metrics.output_tuples <- metrics.output_tuples + Array.length out;
  (out, metrics)

let run_group env ~r ~domains ~chunk_for rng =
  let open Metrics in
  let n1 = Relation.cardinality (Strategy.env_left env) in
  let s1, metrics = parallel_s1 env ~r ~domains ~chunk_size:(chunk_for n1) rng in
  if Array.length s1 = 0 then ([||], metrics)
  else begin
    let left_key = Strategy.env_left_key env in
    let right_key = Strategy.env_right_key env in
    (* Group the S1 entries by join value; the table is read-only
       during the R2 scan, so every domain may probe it. *)
    let groups : int list ref Internals.Vtbl.t = Internals.Vtbl.create (2 * r) in
    Array.iteri
      (fun i t1 ->
        let v = Tuple.attr t1 left_key in
        match Internals.Vtbl.find_opt groups v with
        | Some cell -> cell := i :: !cell
        | None -> Internals.Vtbl.replace groups v (ref [ i ]))
      s1;
    (* Chunk-scheduled R2 scan: each chunk keeps one unit reservoir per
       S1 entry; merging element-wise in chunk order reproduces the
       per-group uniform pick of Group-Sample step 3. *)
    let right = Strategy.env_right env in
    let n2 = Relation.cardinality right in
    let scan_rng = Prng.split rng in
    let merge_rng = Prng.split rng in
    let parts, _ =
      chunked_pass ~domains ~chunk_size:(chunk_for n2) ~rng:scan_rng
        ~make:(fun () -> Array.init (Array.length s1) (fun _ -> Reservoir.Unit.create ()))
        ~feed:(fun m chunk_rng reservoirs t2 ->
          let v = Tuple.attr t2 right_key in
          if not (Value.is_null v) then
            match Internals.Vtbl.find_opt groups v with
            | None -> ()
            | Some cell ->
                List.iter
                  (fun i ->
                    m.join_output_tuples <- m.join_output_tuples + 1;
                    Reservoir.Unit.feed chunk_rng reservoirs.(i) t2)
                  !cell)
        right
    in
    let merge_unit_arrays mrng a b =
      Array.init (Array.length a) (fun i -> Reservoir.Unit.merge mrng a.(i) b.(i))
    in
    let merged, scan_metrics =
      fold_parts ~merge_rng ~merge:merge_unit_arrays
        ~empty:(fun () -> Array.init (Array.length s1) (fun _ -> Reservoir.Unit.create ()))
        parts
    in
    let metrics = Metrics.add metrics scan_metrics in
    let out =
      Array.mapi
        (fun i res ->
          match Reservoir.Unit.get res with
          | Some t2 -> Tuple.join s1.(i) t2
          | None -> failwith "Rsj_parallel.run(Group): sampled tuple has no match in R2")
        merged
    in
    metrics.output_tuples <- metrics.output_tuples + Array.length out;
    (out, metrics)
  end

let run_count env ~r ~domains ~chunk_size rng =
  let open Metrics in
  let s1, metrics = parallel_s1 env ~r ~domains ~chunk_size rng in
  let stats = Strategy.env_right_stats env in
  (* The R2 scan runs one sequential U1 per sampled value (each needs
     the value's tuples in a single stream), so it stays on the
     calling domain. *)
  let out =
    Internals.count_sample_scan rng metrics ~strategy:"Rsj_parallel.run(Count)" ~s1
      ~left_key:(Strategy.env_left_key env)
      ~right:(Strategy.env_right env)
      ~right_key:(Strategy.env_right_key env)
      ~population:(fun v -> Frequency.frequency stats v)
  in
  metrics.output_tuples <- metrics.output_tuples + Array.length out;
  (out, metrics)

let run_naive env ~r ~domains ~chunk_size rng =
  let open Metrics in
  let main_metrics = Metrics.create () in
  let tbl =
    Internals.build_join_hash main_metrics (Strategy.env_right env)
      ~right_key:(Strategy.env_right_key env)
  in
  let left_key = Strategy.env_left_key env in
  let scan_rng = Prng.split rng in
  let merge_rng = Prng.split rng in
  let parts, _ =
    chunked_pass ~domains ~chunk_size ~rng:scan_rng
      ~make:(fun () -> Reservoir.Wr.create ~r)
      ~feed:(fun metrics chunk_rng res t1 ->
        Array.iter
          (fun t2 ->
            metrics.join_output_tuples <- metrics.join_output_tuples + 1;
            Reservoir.Wr.feed chunk_rng res ~weight:1. (Tuple.join t1 t2))
          (Internals.hash_matches tbl (Tuple.attr t1 left_key)))
      (Strategy.env_left env)
  in
  let res, scan_metrics =
    fold_parts ~merge_rng ~merge:Reservoir.Wr.merge ~empty:(fun () -> Reservoir.Wr.create ~r)
      parts
  in
  let out = Reservoir.Wr.contents res in
  let metrics = Metrics.add main_metrics scan_metrics in
  metrics.output_tuples <- metrics.output_tuples + Array.length out;
  (out, metrics)

(* Speculative Olken: every domain runs independent accept/reject
   rounds (Olken_sample.attempt — iid, uniform on the join conditional
   on acceptance) into a private buffer. A shared atomic counter hands
   out acceptance tickets; a domain keeps a pair only for tickets
   below r and stops once the tickets are gone, so exactly r pairs
   survive in total. Ticketing, stopping and the domain-order
   concatenation below depend only on counters and timing — never on
   the sampled values — so the surviving pairs are r iid uniform draws
   from the join, exactly the sequential Olken law. The global
   iteration budget is divided evenly across domains. *)
let run_olken env ~r ~domains rng =
  let open Metrics in
  if r = 0 then ([||], Metrics.create ())
  else begin
    let left = Strategy.env_left env in
    if Relation.cardinality left = 0 then
      invalid_arg "Rsj_parallel.run(Olken): empty R1 with r > 0";
    let left_key = Strategy.env_left_key env in
    let right_index = Strategy.env_right_index env in
    let m = Hash_index.max_multiplicity right_index in
    if m = 0 then failwith "Rsj_parallel.run(Olken): R2 has no joinable tuples";
    let budget = max 1 (Olken_sample.default_max_iterations / domains) in
    let rngs = Prng.split_n rng domains in
    let tickets = Atomic.make 0 in
    let parts =
      fan_out ~domains (fun k ->
          let metrics = Metrics.create () in
          let buf = ref [] in
          let iterations = ref 0 in
          let exhausted = ref false in
          let finished = ref false in
          while (not !finished) && not !exhausted do
            if Atomic.get tickets >= r then finished := true
            else begin
              incr iterations;
              if !iterations > budget then exhausted := true
              else
                match
                  Olken_sample.attempt rngs.(k) ~metrics ~left ~left_key ~right_index ~m
                with
                | Some t -> if Atomic.fetch_and_add tickets 1 < r then buf := t :: !buf
                | None -> ()
            end
          done;
          (Array.of_list (List.rev !buf), metrics))
    in
    let out = Array.concat (Array.to_list (Array.map fst parts)) in
    let metrics =
      Array.fold_left (fun acc (_, m) -> Metrics.add acc m) (Metrics.create ()) parts
    in
    if Array.length out < r then
      failwith
        "Rsj_parallel.run(Olken): iteration budget exhausted (join empty or near-empty?)";
    metrics.output_tuples <- metrics.output_tuples + r;
    (out, metrics)
  end

(* The shared hi/lo routing pass of the partition strategies
   (Internals.Partition), chunk-scheduled over R1. [lo_matches]
   resolves a low-frequency value's R2 matches against the shared
   read-only structure (hash table or index). *)
let partition_pass env ~r ~domains ~chunk_size rng ~lo_matches =
  let left_key = Strategy.env_left_key env in
  let frequency = End_biased.frequency (Strategy.env_histogram env) in
  let scan_rng = Prng.split rng in
  let merge_rng = Prng.split rng in
  let parts, _ =
    chunked_pass ~domains ~chunk_size ~rng:scan_rng
      ~make:(fun () -> Internals.Partition.create ~r)
      ~feed:(fun metrics chunk_rng acc t1 ->
        Internals.Partition.route chunk_rng metrics acc ~left_key ~frequency ~lo_matches t1)
      (Strategy.env_left env)
  in
  fold_parts ~merge_rng ~merge:Internals.Partition.merge
    ~empty:(fun () -> Internals.Partition.create ~r)
    parts

(* Combine a merged partition accumulator into the final sample:
   exact |Jhi| from the tallies, the strategy-specific hi pool, the
   binomial hi/lo split. Runs on the calling domain — the pools have
   size r. *)
let partition_finish env ~r rng metrics acc ~hi_pool =
  let open Metrics in
  let frequency = End_biased.frequency (Strategy.env_histogram env) in
  let n_hi = Internals.Partition.n_hi acc ~frequency in
  let n_lo = Internals.Partition.n_lo acc in
  let hi_pool = hi_pool metrics (Internals.Partition.s1 acc) in
  let lo_pool = Internals.Partition.lo_pool acc in
  let out, _r_hi, _r_lo = Internals.binomial_combine rng ~r ~n_hi ~n_lo ~hi_pool ~lo_pool in
  metrics.output_tuples <- metrics.output_tuples + Array.length out;
  (out, metrics)

let run_frequency_partition env ~r ~domains ~chunk_size rng =
  let main_metrics = Metrics.create () in
  let tbl =
    Internals.build_join_hash main_metrics (Strategy.env_right env)
      ~right_key:(Strategy.env_right_key env)
  in
  let lo_matches _metrics v = Internals.hash_matches tbl v in
  let acc, scan_metrics = partition_pass env ~r ~domains ~chunk_size rng ~lo_matches in
  let metrics = Metrics.add main_metrics scan_metrics in
  partition_finish env ~r rng metrics acc ~hi_pool:(fun m s1 ->
      Internals.fps_hi_pick rng m
        ~matches:(Internals.hash_matches tbl)
        ~left_key:(Strategy.env_left_key env) s1)

let run_hybrid_count env ~r ~domains ~chunk_size rng =
  let main_metrics = Metrics.create () in
  let frequency = End_biased.frequency (Strategy.env_histogram env) in
  let is_low v = Option.is_none (frequency v) in
  let tbl =
    Internals.build_join_hash ~keep:is_low main_metrics (Strategy.env_right env)
      ~right_key:(Strategy.env_right_key env)
  in
  let lo_matches _metrics v = Internals.hash_matches tbl v in
  let acc, scan_metrics = partition_pass env ~r ~domains ~chunk_size rng ~lo_matches in
  let metrics = Metrics.add main_metrics scan_metrics in
  partition_finish env ~r rng metrics acc ~hi_pool:(fun m s1 ->
      (* Count-Sample's R2 scan runs one sequential U1 per sampled
         value, so the hi finish stays on the calling domain. *)
      Internals.count_sample_scan rng m ~strategy:"Rsj_parallel.run(Hybrid)" ~s1
        ~left_key:(Strategy.env_left_key env)
        ~right:(Strategy.env_right env)
        ~right_key:(Strategy.env_right_key env)
        ~population:(fun v -> match frequency v with Some m2v -> m2v | None -> 0))

let run_index_sample env ~r ~domains ~chunk_size rng =
  let right_index = Strategy.env_right_index env in
  let lo_matches (m : Metrics.t) v =
    m.Metrics.index_probes <- m.Metrics.index_probes + 1;
    Hash_index.matching_tuples right_index v
  in
  let acc, metrics = partition_pass env ~r ~domains ~chunk_size rng ~lo_matches in
  partition_finish env ~r rng metrics acc ~hi_pool:(fun m s1 ->
      Internals.index_hi_pick rng m ~right_index ~left_key:(Strategy.env_left_key env) s1)

let run ?chunk_size env strategy ~r ~domains =
  if domains < 0 then invalid_arg "Rsj_parallel.run: domains < 0";
  if r < 0 then invalid_arg "Rsj_parallel.run: r < 0";
  (match chunk_size with
  | Some c when c <= 0 -> invalid_arg "Rsj_parallel.run: chunk_size <= 0"
  | _ -> ());
  if domains <= 1 then Strategy.run env strategy ~r
  else begin
    Strategy.prepare env strategy;
    let chunk_for n =
      match chunk_size with
      | Some c -> c
      | None -> Chunk_scheduler.default_chunk_size ~n ~domains
    in
    let c1 = chunk_for (Relation.cardinality (Strategy.env_left env)) in
    let rng = Prng.split (Strategy.env_rng env) in
    let t0 = Unix.gettimeofday () in
    let sample, metrics =
      match strategy with
      | Strategy.Stream -> run_stream env ~r ~domains ~chunk_size:c1 rng
      | Strategy.Group -> run_group env ~r ~domains ~chunk_for rng
      | Strategy.Count_sample -> run_count env ~r ~domains ~chunk_size:c1 rng
      | Strategy.Naive -> run_naive env ~r ~domains ~chunk_size:c1 rng
      | Strategy.Olken -> run_olken env ~r ~domains rng
      | Strategy.Frequency_partition ->
          run_frequency_partition env ~r ~domains ~chunk_size:c1 rng
      | Strategy.Index_sample -> run_index_sample env ~r ~domains ~chunk_size:c1 rng
      | Strategy.Hybrid_count -> run_hybrid_count env ~r ~domains ~chunk_size:c1 rng
    in
    let elapsed_seconds = Unix.gettimeofday () -. t0 in
    { Strategy.strategy; sample; metrics; elapsed_seconds }
  end

(* Parallel sampling runtime on OCaml 5 domains — full strategy
   coverage, WR and WoR, on the persistent worker pool.

   Scans are distributed by the chunk-queue scheduler
   (Chunk_scheduler): the relation is cut into fixed-size chunks that
   sit behind one atomic cursor, and each domain claims the next chunk
   with a fetch-and-add, so skewed chunks cannot strand work on one
   domain the way the old static `Relation.shards` split could. Each
   chunk carries its own split generator, metrics and mergeable state
   (Reservoir.Wr / Reservoir.Unit / Reservoir.Wor /
   Internals.Partition); the results land in per-chunk slots and merge
   on the calling domain in chunk order. Because chunk state depends
   only on the chunk index — never on which domain ran it — and the
   chunk cut never depends on the domain count, every chunked strategy
   is bit-deterministic for a fixed seed at any domain count, and
   distribution-identical to one sequential pass (the reservoir merges
   preserve the slot laws).

   Worker domains come from the persistent Domain_pool: spawned once,
   parked between calls, woken per scan — so a conformance sweep of
   thousands of parallel calls pays a handful of spawns instead of
   thousands.

   Count-Sample and Hybrid-Count's R2 matching step runs through the
   same machinery: one unit reservoir per sampled S1 entry per chunk,
   merged element-wise with the U1 merge law. In the sequential engine
   each S1 entry's pick is an independent uniform draw from its
   value's R2 tuples (the binomial assignment gives every outstanding
   entry the current tuple with probability 1/(population - seen));
   an entry's merged unit reservoir is exactly such a draw, so the
   parallel scan keeps the law while auditing the reservoirs' fed
   counts against the claimed populations for staleness.

   Olken-Sample is the one strategy that is not a scan: it is a
   sequence of iid accept/reject rounds. It parallelizes
   speculatively: every domain runs independent rounds with its own
   split generator into a private buffer, a shared atomic ticket
   counter hands out acceptance slots, and domains stop once r tickets
   are gone. Accepted pairs are iid uniform on the join no matter
   which domain produced them or when, and ticketing/stopping look
   only at the counter — never at the sampled values — so discarding
   post-r acceptances keeps the output law exactly Olken's. The
   trade-off: which rounds land is timing-dependent, so Olken at
   domains > 1 is distribution-identical but not bit-reproducible.

   Auxiliary structures (hash index, frequency statistics, histogram)
   are shared read-only; work counters are per-chunk Metrics.t values
   summed at the end (the index's probe counter is atomic), so no
   mutable state crosses domains unsynchronized. *)

open Rsj_relation
open Rsj_exec
module Strategy = Rsj_core.Strategy
module Reservoir = Rsj_core.Reservoir
module Internals = Rsj_core.Internals
module Convert = Rsj_core.Convert
module Olken_sample = Rsj_core.Olken_sample
module Frequency = Rsj_stats.Frequency
module End_biased = Rsj_stats.Histogram.End_biased
module Hash_index = Rsj_index.Hash_index
module Prng = Rsj_util.Prng
module Chunk_scheduler = Chunk_scheduler
module Obs = Rsj_obs

let default_domains () = Domain.recommended_domain_count ()

(* Telemetry around a whole strategy run: a "strategy.<name>" span
   (cat "strategy") encloses the scan/merge work — pool.run, pool.job
   and chunk spans nest temporally inside it — and, after the run, the
   work counters fold into the registry (the rsj_metrics_ family) and
   the wall-time into a per-strategy histogram. One branch when off. *)
let strategy_seconds strategy ~domains =
  Obs.Registry.histogram ~help:"Whole-strategy sampling run wall time, seconds"
    ~labels:[ ("strategy", Strategy.name strategy); ("domains", string_of_int domains) ]
    "rsj_strategy_run_seconds"

let observed ?(absorb = true) ~semantics strategy ~r ~domains body =
  if not (Obs.enabled ()) then body ()
  else
    Obs.Trace.with_span ~cat:"strategy"
      ~args:
        [
          ("strategy", Obs.Json.Str (Strategy.name strategy));
          ("semantics", Obs.Json.Str semantics);
          ("r", Obs.Json.Int r);
          ("domains", Obs.Json.Int domains);
        ]
      ("strategy." ^ Strategy.name strategy)
      (fun () ->
        let result = body () in
        (* WoR batch conversion re-enters [run] per batch, which already
           absorbs each batch's counters — the outer wrapper must not
           absorb the summed record again. *)
        if absorb then
          Obs.Registry.absorb_assoc ~prefix:"rsj_metrics_"
            (Metrics.to_assoc result.Strategy.metrics);
        Obs.Registry.observe (strategy_seconds strategy ~domains) result.Strategy.elapsed_seconds;
        result)

let is_parallelizable = function
  | Strategy.Naive | Strategy.Olken | Strategy.Stream | Strategy.Group
  | Strategy.Frequency_partition | Strategy.Index_sample | Strategy.Count_sample
  | Strategy.Hybrid_count ->
      true

(* One chunk-scheduled pass over [relation]. [make ()] builds a chunk's
   private accumulator, [feed metrics rng state t] consumes one tuple;
   each chunk gets its own generator (split by chunk index, so the
   result is independent of which domain claims it) and its own
   metrics, with the scan itself counted here. Results come back in
   chunk order. *)
let chunked_pass ~domains ~chunk_size ~rng ~make ~feed relation =
  let chunks = Relation.chunk_count relation ~chunk_size in
  let rngs = Prng.split_n rng chunks in
  let task i =
    let metrics = Metrics.create () in
    let state = make () in
    Stream0.iter
      (fun t ->
        metrics.Metrics.tuples_scanned <- metrics.Metrics.tuples_scanned + 1;
        feed metrics rngs.(i) state t)
      (Relation.chunk relation ~chunk_size i);
    (state, metrics)
  in
  Chunk_scheduler.run ~domains ~chunks ~task ()

(* Fold (state, metrics) chunk results in chunk order. [merge_rng] is
   consumed sequentially on the calling domain, so the fold is as
   deterministic as the parts. *)
let fold_parts ~merge_rng ~merge ~empty (parts : _ array) =
  if Array.length parts = 0 then (empty (), Metrics.create ())
  else begin
    let state = ref (fst parts.(0)) in
    let metrics = ref (snd parts.(0)) in
    for i = 1 to Array.length parts - 1 do
      state := merge merge_rng !state (fst parts.(i));
      metrics := Metrics.add !metrics (snd parts.(i))
    done;
    (!state, !metrics)
  end

(* In-place Metrics accumulation, for call sites that thread a shared
   mutable record (the partition finish) rather than folding fresh
   ones. *)
let absorb_metrics (dst : Metrics.t) (src : Metrics.t) =
  let open Metrics in
  dst.tuples_scanned <- dst.tuples_scanned + src.tuples_scanned;
  dst.join_output_tuples <- dst.join_output_tuples + src.join_output_tuples;
  dst.index_probes <- dst.index_probes + src.index_probes;
  dst.hash_build_tuples <- dst.hash_build_tuples + src.hash_build_tuples;
  dst.sort_tuples <- dst.sort_tuples + src.sort_tuples;
  dst.output_tuples <- dst.output_tuples + src.output_tuples;
  dst.random_accesses <- dst.random_accesses + src.random_accesses;
  dst.rejected_samples <- dst.rejected_samples + src.rejected_samples;
  dst.stats_lookups <- dst.stats_lookups + src.stats_lookups

(* Weighted WR sample of R1 with weights m2(t.A) from the frequency
   statistics — the shared first step of Stream-, Group- and
   Count-Sample. Returns the merged sample and the summed scan
   metrics. *)
let parallel_s1 env ~r ~domains ~chunk_size rng =
  let stats = Strategy.env_right_stats env in
  let left_key = Strategy.env_left_key env in
  let scan_rng = Prng.split rng in
  let merge_rng = Prng.split rng in
  let parts, _ =
    chunked_pass ~domains ~chunk_size ~rng:scan_rng
      ~make:(fun () -> Reservoir.Wr.create ~r)
      ~feed:(fun metrics chunk_rng res t ->
        metrics.Metrics.stats_lookups <- metrics.Metrics.stats_lookups + 1;
        let w = float_of_int (Frequency.frequency stats (Tuple.attr t left_key)) in
        Reservoir.Wr.feed chunk_rng res ~weight:w t)
      (Strategy.env_left env)
  in
  let res, metrics =
    fold_parts ~merge_rng ~merge:Reservoir.Wr.merge ~empty:(fun () -> Reservoir.Wr.create ~r)
      parts
  in
  (Reservoir.Wr.contents res, metrics)

let run_stream env ~r ~domains ~chunk_size rng =
  let open Metrics in
  let s1, metrics = parallel_s1 env ~r ~domains ~chunk_size rng in
  let index = Strategy.env_right_index env in
  let out =
    Array.map
      (fun t1 ->
        let v = Tuple.attr t1 (Strategy.env_left_key env) in
        metrics.index_probes <- metrics.index_probes + 1;
        match Hash_index.random_match index rng v with
        | Some t2 ->
            metrics.join_output_tuples <- metrics.join_output_tuples + 1;
            Tuple.join t1 t2
        | None -> failwith "Rsj_parallel.run(Stream): sampled tuple has no match in R2")
      s1
  in
  metrics.output_tuples <- metrics.output_tuples + Array.length out;
  (out, metrics)

(* Chunk-scheduled R2 matching shared by Group-Sample's step 3 and the
   Count-Sample scans. Each S1 entry needs an independent uniform pick
   over its value's R2 tuples (the per-group U1 of the sequential
   engines); feeding one unit reservoir per entry would cost the full
   S1 ⋈ R2 output, so each join value instead owns one Multi
   reservoir per chunk — k iid unit picks fed with a single binomial
   draw per matching R2 tuple, the same thinning
   Internals.count_sample_scan uses. Per-value reservoirs are merged
   in chunk order with the slot-wise U1 coin law; values and group
   members keep their S1 first-occurrence order, so the whole scan is
   deterministic at any pool width. Returns, per group in that order,
   (join value, member indices into s1, merged reservoir), plus the
   scan metrics. *)
let per_group_r2_scan env ~domains ~chunk_size rng ~(s1 : Tuple.t array) =
  let left_key = Strategy.env_left_key env in
  let right_key = Strategy.env_right_key env in
  (* Group the S1 entries by join value; the table is read-only
     during the R2 scan, so every domain may probe it. *)
  let gids : (int * int list ref) Internals.Vtbl.t =
    Internals.Vtbl.create (2 * max 1 (Array.length s1))
  in
  let next = ref 0 in
  let order = ref [] in
  Array.iteri
    (fun i t1 ->
      let v = Tuple.attr t1 left_key in
      match Internals.Vtbl.find_opt gids v with
      | Some (_, cell) -> cell := i :: !cell
      | None ->
          Internals.Vtbl.replace gids v (!next, ref [ i ]);
          order := v :: !order;
          incr next)
    s1;
  let values = Array.of_list (List.rev !order) in
  let members =
    Array.map
      (fun v ->
        let _, cell = Internals.Vtbl.find gids v in
        Array.of_list (List.rev !cell))
      values
  in
  let fresh_multis () =
    Array.map (fun mem -> Reservoir.Multi.create ~k:(Array.length mem)) members
  in
  let right = Strategy.env_right env in
  let scan_rng = Prng.split rng in
  let merge_rng = Prng.split rng in
  let parts, _ =
    chunked_pass ~domains ~chunk_size ~rng:scan_rng ~make:fresh_multis
      ~feed:(fun _m chunk_rng multis t2 ->
        let v = Tuple.attr t2 right_key in
        if not (Value.is_null v) then
          match Internals.Vtbl.find_opt gids v with
          | None -> ()
          | Some (g, _) -> Reservoir.Multi.feed chunk_rng multis.(g) t2)
      right
  in
  let merge_multi_arrays mrng a b =
    let n = Array.length a in
    if n = 0 then [||]
    else begin
      let out = Array.make n a.(0) in
      for g = 0 to n - 1 do
        out.(g) <- Reservoir.Multi.merge mrng a.(g) b.(g)
      done;
      out
    end
  in
  let merged, metrics = fold_parts ~merge_rng ~merge:merge_multi_arrays ~empty:fresh_multis parts in
  ((values, members, merged), metrics)

let run_group env ~r ~domains ~chunk_for rng =
  let open Metrics in
  let n1 = Relation.cardinality (Strategy.env_left env) in
  let s1, metrics = parallel_s1 env ~r ~domains ~chunk_size:(chunk_for n1) rng in
  if Array.length s1 = 0 then ([||], metrics)
  else begin
    let n2 = Relation.cardinality (Strategy.env_right env) in
    let (_values, members, merged), scan_metrics =
      per_group_r2_scan env ~domains ~chunk_size:(chunk_for n2) rng ~s1
    in
    let metrics = Metrics.add metrics scan_metrics in
    let out = Array.make (Array.length s1) s1.(0) in
    Array.iteri
      (fun g mem ->
        Array.iteri
          (fun j i ->
            match Reservoir.Multi.get merged.(g) j with
            | Some t2 ->
                metrics.join_output_tuples <- metrics.join_output_tuples + 1;
                out.(i) <- Tuple.join s1.(i) t2
            | None -> failwith "Rsj_parallel.run(Group): sampled tuple has no match in R2")
          mem)
      members;
    metrics.output_tuples <- metrics.output_tuples + Array.length out;
    (out, metrics)
  end

(* Count-Sample's R2 matching, parallelized: the per-group Multi
   reservoirs above replace the sequential per-group U1 scan, and the
   fed counts are audited against the claimed populations afterwards
   so stale statistics fail with the same diagnostics as the
   sequential engine (Internals.count_sample_scan). *)
let parallel_count_scan env ~domains ~chunk_size rng ~strategy ~(s1 : Tuple.t array)
    ~population =
  if Array.length s1 = 0 then ([||], Metrics.create ())
  else begin
    let open Metrics in
    let left_key = Strategy.env_left_key env in
    Array.iter
      (fun t1 ->
        if population (Tuple.attr t1 left_key) <= 0 then
          failwith (strategy ^ ": sampled value has no frequency in the statistics"))
      s1;
    let (values, members, merged), metrics =
      per_group_r2_scan env ~domains ~chunk_size rng ~s1
    in
    let out = Array.make (Array.length s1) s1.(0) in
    Array.iteri
      (fun g mem ->
        let pop = population values.(g) in
        let fed = Reservoir.Multi.fed_count merged.(g) in
        if fed > pop then
          failwith (strategy ^ ": R2 holds more tuples of a value than the statistics claim");
        if fed < pop then
          failwith (strategy ^ ": statistics overstate a value's frequency (stale statistics?)");
        Array.iteri
          (fun j i ->
            match Reservoir.Multi.get merged.(g) j with
            | Some t2 ->
                metrics.join_output_tuples <- metrics.join_output_tuples + 1;
                out.(i) <- Tuple.join s1.(i) t2
            | None ->
                (* fed = pop > 0 guarantees every slot holds a pick. *)
                assert false)
          mem)
      members;
    (out, metrics)
  end

let run_count env ~r ~domains ~chunk_for rng =
  let open Metrics in
  let n1 = Relation.cardinality (Strategy.env_left env) in
  let s1, metrics = parallel_s1 env ~r ~domains ~chunk_size:(chunk_for n1) rng in
  let stats = Strategy.env_right_stats env in
  let n2 = Relation.cardinality (Strategy.env_right env) in
  let out, scan_metrics =
    parallel_count_scan env ~domains ~chunk_size:(chunk_for n2) rng
      ~strategy:"Rsj_parallel.run(Count)" ~s1
      ~population:(fun v -> Frequency.frequency stats v)
  in
  let metrics = Metrics.add metrics scan_metrics in
  metrics.output_tuples <- metrics.output_tuples + Array.length out;
  (out, metrics)

let run_naive env ~r ~domains ~chunk_size rng =
  let open Metrics in
  let main_metrics = Metrics.create () in
  let tbl =
    Internals.build_join_hash main_metrics (Strategy.env_right env)
      ~right_key:(Strategy.env_right_key env)
  in
  let left_key = Strategy.env_left_key env in
  let scan_rng = Prng.split rng in
  let merge_rng = Prng.split rng in
  let parts, _ =
    chunked_pass ~domains ~chunk_size ~rng:scan_rng
      ~make:(fun () -> Reservoir.Wr.create ~r)
      ~feed:(fun metrics chunk_rng res t1 ->
        Array.iter
          (fun t2 ->
            metrics.join_output_tuples <- metrics.join_output_tuples + 1;
            Reservoir.Wr.feed chunk_rng res ~weight:1. (Tuple.join t1 t2))
          (Internals.hash_matches tbl (Tuple.attr t1 left_key)))
      (Strategy.env_left env)
  in
  let res, scan_metrics =
    fold_parts ~merge_rng ~merge:Reservoir.Wr.merge ~empty:(fun () -> Reservoir.Wr.create ~r)
      parts
  in
  let out = Reservoir.Wr.contents res in
  let metrics = Metrics.add main_metrics scan_metrics in
  metrics.output_tuples <- metrics.output_tuples + Array.length out;
  (out, metrics)

(* Speculative Olken: every domain runs independent accept/reject
   rounds (Olken_sample.attempt — iid, uniform on the join conditional
   on acceptance) into a private buffer. A shared atomic counter hands
   out acceptance tickets; a domain keeps a pair only for tickets
   below r and stops once the tickets are gone, so exactly r pairs
   survive in total. Ticketing, stopping and the domain-order
   concatenation below depend only on counters and timing — never on
   the sampled values — so the surviving pairs are r iid uniform draws
   from the join, exactly the sequential Olken law. The global
   iteration budget is divided evenly across domains. *)
let run_olken env ~r ~domains rng =
  let open Metrics in
  if r = 0 then ([||], Metrics.create ())
  else begin
    let left = Strategy.env_left env in
    if Relation.cardinality left = 0 then
      invalid_arg "Rsj_parallel.run(Olken): empty R1 with r > 0";
    let left_key = Strategy.env_left_key env in
    let right_index = Strategy.env_right_index env in
    let m = Hash_index.max_multiplicity right_index in
    if m = 0 then failwith "Rsj_parallel.run(Olken): R2 has no joinable tuples";
    let budget = max 1 (Olken_sample.default_max_iterations / domains) in
    let rngs = Prng.split_n rng domains in
    let tickets = Atomic.make 0 in
    let parts =
      Domain_pool.run (Domain_pool.global ()) ~domains (fun k ->
          let metrics = Metrics.create () in
          let buf = ref [] in
          let iterations = ref 0 in
          let exhausted = ref false in
          let finished = ref false in
          while (not !finished) && not !exhausted do
            if Atomic.get tickets >= r then finished := true
            else begin
              incr iterations;
              if !iterations > budget then exhausted := true
              else
                match
                  Olken_sample.attempt rngs.(k) ~metrics ~left ~left_key ~right_index ~m
                with
                | Some t -> if Atomic.fetch_and_add tickets 1 < r then buf := t :: !buf
                | None -> ()
            end
          done;
          (Array.of_list (List.rev !buf), metrics))
    in
    let out = Array.concat (Array.to_list (Array.map fst parts)) in
    let metrics =
      Array.fold_left (fun acc (_, m) -> Metrics.add acc m) (Metrics.create ()) parts
    in
    if Array.length out < r then
      failwith
        "Rsj_parallel.run(Olken): iteration budget exhausted (join empty or near-empty?)";
    metrics.output_tuples <- metrics.output_tuples + r;
    (* Acceptance/rejection tallies as first-class registry counters, so
       the rejection-rate churn Olken trades for its index probes is
       readable off `rsj metrics` without diffing work records. *)
    if Obs.enabled () then begin
      Obs.Registry.add
        (Obs.Registry.counter ~help:"Olken rounds rejected by the m2(v)/m ceiling coin"
           "rsj_olken_rejections_total")
        metrics.rejected_samples;
      Obs.Registry.add
        (Obs.Registry.counter ~help:"Olken rounds accepted" "rsj_olken_acceptances_total")
        r
    end;
    (out, metrics)
  end

(* The shared hi/lo routing pass of the partition strategies
   (Internals.Partition), chunk-scheduled over R1. [lo_matches]
   resolves a low-frequency value's R2 matches against the shared
   read-only structure (hash table or index). *)
let partition_pass env ~r ~domains ~chunk_size rng ~lo_matches =
  let left_key = Strategy.env_left_key env in
  let frequency = End_biased.frequency (Strategy.env_histogram env) in
  let scan_rng = Prng.split rng in
  let merge_rng = Prng.split rng in
  let parts, _ =
    chunked_pass ~domains ~chunk_size ~rng:scan_rng
      ~make:(fun () -> Internals.Partition.create ~r)
      ~feed:(fun metrics chunk_rng acc t1 ->
        Internals.Partition.route chunk_rng metrics acc ~left_key ~frequency ~lo_matches t1)
      (Strategy.env_left env)
  in
  fold_parts ~merge_rng ~merge:Internals.Partition.merge
    ~empty:(fun () -> Internals.Partition.create ~r)
    parts

(* Combine a merged partition accumulator into the final sample:
   exact |Jhi| from the tallies, the strategy-specific hi pool, the
   binomial hi/lo split. Runs on the calling domain — the pools have
   size r. *)
let partition_finish env ~r rng metrics acc ~hi_pool =
  let open Metrics in
  let frequency = End_biased.frequency (Strategy.env_histogram env) in
  let n_hi = Internals.Partition.n_hi acc ~frequency in
  let n_lo = Internals.Partition.n_lo acc in
  let hi_pool = hi_pool metrics (Internals.Partition.s1 acc) in
  let lo_pool = Internals.Partition.lo_pool acc in
  let out, _r_hi, _r_lo = Internals.binomial_combine rng ~r ~n_hi ~n_lo ~hi_pool ~lo_pool in
  metrics.output_tuples <- metrics.output_tuples + Array.length out;
  (out, metrics)

let run_frequency_partition env ~r ~domains ~chunk_size rng =
  let main_metrics = Metrics.create () in
  let tbl =
    Internals.build_join_hash main_metrics (Strategy.env_right env)
      ~right_key:(Strategy.env_right_key env)
  in
  let lo_matches _metrics v = Internals.hash_matches tbl v in
  let acc, scan_metrics = partition_pass env ~r ~domains ~chunk_size rng ~lo_matches in
  let metrics = Metrics.add main_metrics scan_metrics in
  partition_finish env ~r rng metrics acc ~hi_pool:(fun m s1 ->
      Internals.fps_hi_pick rng m
        ~matches:(Internals.hash_matches tbl)
        ~left_key:(Strategy.env_left_key env) s1)

let run_hybrid_count env ~r ~domains ~chunk_for rng =
  let n1 = Relation.cardinality (Strategy.env_left env) in
  let n2 = Relation.cardinality (Strategy.env_right env) in
  let main_metrics = Metrics.create () in
  let frequency = End_biased.frequency (Strategy.env_histogram env) in
  let is_low v = Option.is_none (frequency v) in
  let tbl =
    Internals.build_join_hash ~keep:is_low main_metrics (Strategy.env_right env)
      ~right_key:(Strategy.env_right_key env)
  in
  let lo_matches _metrics v = Internals.hash_matches tbl v in
  let acc, scan_metrics =
    partition_pass env ~r ~domains ~chunk_size:(chunk_for n1) rng ~lo_matches
  in
  let metrics = Metrics.add main_metrics scan_metrics in
  partition_finish env ~r rng metrics acc ~hi_pool:(fun m s1 ->
      (* The hi pool is Count-Sample on the high-frequency values: the
         chunk-scheduled per-entry R2 scan replaces the sequential U1
         pass here too. *)
      let out, hi_metrics =
        parallel_count_scan env ~domains ~chunk_size:(chunk_for n2) rng
          ~strategy:"Rsj_parallel.run(Hybrid)" ~s1
          ~population:(fun v -> match frequency v with Some m2v -> m2v | None -> 0)
      in
      absorb_metrics m hi_metrics;
      out)

let run_index_sample env ~r ~domains ~chunk_size rng =
  let right_index = Strategy.env_right_index env in
  let lo_matches (m : Metrics.t) v =
    m.Metrics.index_probes <- m.Metrics.index_probes + 1;
    Hash_index.matching_tuples right_index v
  in
  let acc, metrics = partition_pass env ~r ~domains ~chunk_size rng ~lo_matches in
  partition_finish env ~r rng metrics acc ~hi_pool:(fun m s1 ->
      Internals.index_hi_pick rng m ~right_index ~left_key:(Strategy.env_left_key env) s1)

(* ------------------------------------------------------------------ *)
(* Compact data plane: columnar int twins of the chunked strategies.

   When Column.mode is Int_keys and every structure a strategy needs
   has an int plane (flat key views, int-keyed statistics/histogram
   counters, the index's Int_index twin), the chunk workers below scan
   flat [lo, hi) ranges of the shared key columns instead of pulling
   Stream0 cursors over boxed tuples, feed allocation-free Wr_int
   kernels (or plain reservoirs of row ids / packed row pairs), and
   rehydrate only the accepted winners through Relation.get. Every
   twin consumes the generator draw-for-draw like its boxed
   counterpart — same chunk cut, same split order, same per-chunk and
   merge draws — so a fixed seed yields bit-identical samples on
   either plane (pinned by test/test_dataplane.ml). Anything without
   an int plane falls back to the boxed path. *)

module Internals_int = Rsj_core.Internals_int
module Int_index = Rsj_index.Int_index
module Counter = Int_index.Counter
module Wr_int = Rsj_util.Wr_int

let int_mode () = Column.mode () = Column.Int_keys

let rehydrate env pairs =
  let left = Strategy.env_left env in
  let right = Strategy.env_right env in
  Array.map
    (fun p ->
      Tuple.join
        (Relation.get left (Internals_int.unpack_left p))
        (Relation.get right (Internals_int.unpack_right p)))
    pairs

(* Int twin of [chunked_pass]: the same chunk cut and per-chunk
   generator split, but [feed] consumes a whole [lo, hi) row range in
   one call so the call sites can write flat loops over the shared key
   column. [make] receives the chunk's generator (the Wr_int kernels
   capture its state); [seal] converts the chunk state for merging
   (and releases any captured generator state). *)
let chunked_pass_int ~domains ~chunk_size ~rng ~make ~feed ~seal relation =
  let chunks = Relation.chunk_count relation ~chunk_size in
  let n = Relation.cardinality relation in
  let rngs = Prng.split_n rng chunks in
  let task i =
    let metrics = Metrics.create () in
    let state = make rngs.(i) in
    let lo = i * chunk_size in
    let hi = min ((i + 1) * chunk_size) n in
    feed metrics rngs.(i) state ~lo ~hi;
    metrics.Metrics.tuples_scanned <- metrics.Metrics.tuples_scanned + (hi - lo);
    (seal state, metrics)
  in
  Chunk_scheduler.run ~domains ~chunks ~task ()

let parallel_s1_int env ~r ~domains ~chunk_size rng ~(keys1 : int array) ~freq =
  let scan_rng = Prng.split rng in
  let merge_rng = Prng.split rng in
  let parts, _ =
    chunked_pass_int ~domains ~chunk_size ~rng:scan_rng
      ~make:(fun crng -> Wr_int.create ~on_displace:Reservoir.note_displacements crng ~r)
      ~feed:(fun metrics _crng ker ~lo ~hi ->
        metrics.Metrics.stats_lookups <- metrics.Metrics.stats_lookups + (hi - lo);
        for row = lo to hi - 1 do
          Wr_int.feed ker ~weight:(Counter.get freq (Array.unsafe_get keys1 row)) row
        done)
      ~seal:(fun ker ->
        Wr_int.finish ker;
        Reservoir.Wr.of_parts ~r ~slots:(Wr_int.contents ker) ~fed:(Wr_int.fed_count ker)
          ~total:(Wr_int.total_weight ker))
      (Strategy.env_left env)
  in
  let res, metrics =
    fold_parts ~merge_rng ~merge:Reservoir.Wr.merge ~empty:(fun () -> Reservoir.Wr.create ~r)
      parts
  in
  (Reservoir.Wr.contents res, metrics)

let run_stream_int env ~r ~domains ~chunk_size rng ~keys1 ~freq =
  let open Metrics in
  let s1, metrics = parallel_s1_int env ~r ~domains ~chunk_size rng ~keys1 ~freq in
  let index = Strategy.env_right_index env in
  let left = Strategy.env_left env in
  let right = Strategy.env_right env in
  let out =
    Array.map
      (fun row ->
        metrics.index_probes <- metrics.index_probes + 1;
        match Hash_index.random_match_row index rng keys1.(row) with
        | -1 -> failwith "Rsj_parallel.run(Stream): sampled tuple has no match in R2"
        | r2 ->
            metrics.join_output_tuples <- metrics.join_output_tuples + 1;
            Tuple.join (Relation.get left row) (Relation.get right r2))
      s1
  in
  metrics.output_tuples <- metrics.output_tuples + Array.length out;
  (out, metrics)

let run_naive_int env ~r ~domains ~chunk_size rng ~(keys1 : int array) ~keys2 =
  let open Metrics in
  let main_metrics = Metrics.create () in
  let tbl = Internals_int.build_join_index main_metrics ~keys:keys2 in
  let scan_rng = Prng.split rng in
  let merge_rng = Prng.split rng in
  let parts, _ =
    chunked_pass_int ~domains ~chunk_size ~rng:scan_rng
      ~make:(fun crng -> Wr_int.create ~on_displace:Reservoir.note_displacements crng ~r)
      ~feed:(fun metrics _crng ker ~lo ~hi ->
        let matched = ref 0 in
        for row = lo to hi - 1 do
          match Int_index.find_gid tbl (Array.unsafe_get keys1 row) with
          | -1 -> ()
          | g ->
              let s = Int_index.gid_start tbl g in
              let m = Int_index.gid_multiplicity tbl g in
              for j = s to s + m - 1 do
                Wr_int.feed ker ~weight:1 (Internals_int.pack row (Int_index.row tbl j))
              done;
              matched := !matched + m
        done;
        metrics.join_output_tuples <- metrics.join_output_tuples + !matched)
      ~seal:(fun ker ->
        Wr_int.finish ker;
        Reservoir.Wr.of_parts ~r ~slots:(Wr_int.contents ker) ~fed:(Wr_int.fed_count ker)
          ~total:(Wr_int.total_weight ker))
      (Strategy.env_left env)
  in
  let res, scan_metrics =
    fold_parts ~merge_rng ~merge:Reservoir.Wr.merge ~empty:(fun () -> Reservoir.Wr.create ~r)
      parts
  in
  let out = rehydrate env (Reservoir.Wr.contents res) in
  let metrics = Metrics.add main_metrics scan_metrics in
  metrics.output_tuples <- metrics.output_tuples + Array.length out;
  (out, metrics)

(* Int twin of [per_group_r2_scan]: groups keyed by raw int through a
   Counter (gid+1, so 0 means absent), members as s1 indices in the
   same first-occurrence order, Multi reservoirs over R2 row ids. *)
let per_group_r2_scan_int env ~domains ~chunk_size rng ~(s1 : int array) ~(keys1 : int array)
    ~(keys2 : int array) =
  let n1 = Array.length s1 in
  let gids = Counter.create ~capacity:(2 * max 1 n1) () in
  let order = Array.make (max 1 n1) 0 in
  let cells = Array.make (max 1 n1) [] in
  let ngroups = ref 0 in
  Array.iteri
    (fun i row ->
      let k = keys1.(row) in
      match Counter.get gids k with
      | 0 ->
          incr ngroups;
          Counter.add gids k !ngroups;
          order.(!ngroups - 1) <- k;
          cells.(!ngroups - 1) <- [ i ]
      | g -> cells.(g - 1) <- i :: cells.(g - 1))
    s1;
  let group_keys = Array.sub order 0 !ngroups in
  let members = Array.init !ngroups (fun g -> Array.of_list (List.rev cells.(g))) in
  let fresh_multis () =
    Array.map (fun mem -> Reservoir.Multi.create ~k:(Array.length mem)) members
  in
  let scan_rng = Prng.split rng in
  let merge_rng = Prng.split rng in
  let parts, _ =
    chunked_pass_int ~domains ~chunk_size ~rng:scan_rng
      ~make:(fun _crng -> fresh_multis ())
      ~feed:(fun _m crng multis ~lo ~hi ->
        for row = lo to hi - 1 do
          let k = Array.unsafe_get keys2 row in
          let g = Counter.get gids k in
          if g > 0 then Reservoir.Multi.feed crng multis.(g - 1) row
        done)
      ~seal:(fun s -> s)
      (Strategy.env_right env)
  in
  let merge_multi_arrays mrng a b =
    let n = Array.length a in
    if n = 0 then [||]
    else begin
      let out = Array.make n a.(0) in
      for g = 0 to n - 1 do
        out.(g) <- Reservoir.Multi.merge mrng a.(g) b.(g)
      done;
      out
    end
  in
  let merged, metrics = fold_parts ~merge_rng ~merge:merge_multi_arrays ~empty:fresh_multis parts in
  ((group_keys, members, merged), metrics)

let run_group_int env ~r ~domains ~chunk_for rng ~keys1 ~keys2 ~freq =
  let open Metrics in
  let n1 = Relation.cardinality (Strategy.env_left env) in
  let s1, metrics = parallel_s1_int env ~r ~domains ~chunk_size:(chunk_for n1) rng ~keys1 ~freq in
  if Array.length s1 = 0 then ([||], metrics)
  else begin
    let n2 = Relation.cardinality (Strategy.env_right env) in
    let (_group_keys, members, merged), scan_metrics =
      per_group_r2_scan_int env ~domains ~chunk_size:(chunk_for n2) rng ~s1 ~keys1 ~keys2
    in
    let metrics = Metrics.add metrics scan_metrics in
    let pairs = Array.make (Array.length s1) 0 in
    Array.iteri
      (fun g mem ->
        Array.iteri
          (fun j i ->
            match Reservoir.Multi.get merged.(g) j with
            | Some r2 ->
                metrics.join_output_tuples <- metrics.join_output_tuples + 1;
                pairs.(i) <- Internals_int.pack s1.(i) r2
            | None -> failwith "Rsj_parallel.run(Group): sampled tuple has no match in R2")
          mem)
      members;
    let out = rehydrate env pairs in
    metrics.output_tuples <- metrics.output_tuples + Array.length out;
    (out, metrics)
  end

let parallel_count_scan_int env ~domains ~chunk_size rng ~strategy ~(s1 : int array) ~keys1
    ~keys2 ~(population : int -> int) =
  if Array.length s1 = 0 then ([||], Metrics.create ())
  else begin
    let open Metrics in
    Array.iter
      (fun row ->
        if population keys1.(row) <= 0 then
          failwith (strategy ^ ": sampled value has no frequency in the statistics"))
      s1;
    let (group_keys, members, merged), metrics =
      per_group_r2_scan_int env ~domains ~chunk_size rng ~s1 ~keys1 ~keys2
    in
    let pairs = Array.make (Array.length s1) 0 in
    Array.iteri
      (fun g mem ->
        let pop = population group_keys.(g) in
        let fed = Reservoir.Multi.fed_count merged.(g) in
        if fed > pop then
          failwith (strategy ^ ": R2 holds more tuples of a value than the statistics claim");
        if fed < pop then
          failwith (strategy ^ ": statistics overstate a value's frequency (stale statistics?)");
        Array.iteri
          (fun j i ->
            match Reservoir.Multi.get merged.(g) j with
            | Some r2 ->
                metrics.join_output_tuples <- metrics.join_output_tuples + 1;
                pairs.(i) <- Internals_int.pack s1.(i) r2
            | None ->
                (* fed = pop > 0 guarantees every slot holds a pick. *)
                assert false)
          mem)
      members;
    (pairs, metrics)
  end

let run_count_int env ~r ~domains ~chunk_for rng ~keys1 ~keys2 ~freq =
  let open Metrics in
  let n1 = Relation.cardinality (Strategy.env_left env) in
  let s1, metrics = parallel_s1_int env ~r ~domains ~chunk_size:(chunk_for n1) rng ~keys1 ~freq in
  let n2 = Relation.cardinality (Strategy.env_right env) in
  let pairs, scan_metrics =
    parallel_count_scan_int env ~domains ~chunk_size:(chunk_for n2) rng
      ~strategy:"Rsj_parallel.run(Count)" ~s1 ~keys1 ~keys2
      ~population:(fun k -> Counter.get freq k)
  in
  let metrics = Metrics.add metrics scan_metrics in
  let out = rehydrate env pairs in
  metrics.output_tuples <- metrics.output_tuples + Array.length out;
  (out, metrics)

let run_olken_int env ~r ~domains rng ~keys1 =
  let open Metrics in
  if r = 0 then ([||], Metrics.create ())
  else begin
    let left = Strategy.env_left env in
    if Relation.cardinality left = 0 then
      invalid_arg "Rsj_parallel.run(Olken): empty R1 with r > 0";
    let left_n = Relation.cardinality left in
    let right_index = Strategy.env_right_index env in
    let m = Hash_index.max_multiplicity right_index in
    if m = 0 then failwith "Rsj_parallel.run(Olken): R2 has no joinable tuples";
    let budget = max 1 (Olken_sample.default_max_iterations / domains) in
    let rngs = Prng.split_n rng domains in
    let tickets = Atomic.make 0 in
    let parts =
      Domain_pool.run (Domain_pool.global ()) ~domains (fun k ->
          let metrics = Metrics.create () in
          let buf = ref [] in
          let iterations = ref 0 in
          let exhausted = ref false in
          let finished = ref false in
          while (not !finished) && not !exhausted do
            if Atomic.get tickets >= r then finished := true
            else begin
              incr iterations;
              if !iterations > budget then exhausted := true
              else begin
                let p =
                  Olken_sample.attempt_int rngs.(k) ~metrics ~left_n ~keys1 ~right_index ~m
                in
                if p >= 0 then
                  if Atomic.fetch_and_add tickets 1 < r then buf := p :: !buf
              end
            end
          done;
          (Array.of_list (List.rev !buf), metrics))
    in
    let pairs = Array.concat (Array.to_list (Array.map fst parts)) in
    let metrics =
      Array.fold_left (fun acc (_, m) -> Metrics.add acc m) (Metrics.create ()) parts
    in
    if Array.length pairs < r then
      failwith
        "Rsj_parallel.run(Olken): iteration budget exhausted (join empty or near-empty?)";
    let out = rehydrate env pairs in
    metrics.output_tuples <- metrics.output_tuples + r;
    if Obs.enabled () then begin
      Obs.Registry.add
        (Obs.Registry.counter ~help:"Olken rounds rejected by the m2(v)/m ceiling coin"
           "rsj_olken_rejections_total")
        metrics.rejected_samples;
      Obs.Registry.add
        (Obs.Registry.counter ~help:"Olken rounds accepted" "rsj_olken_acceptances_total")
        r
    end;
    (out, metrics)
  end

let partition_pass_int env ~r ~domains ~chunk_size rng ~(keys1 : int array) ~tracked ~lo_tbl
    ~on_lo_probe =
  let scan_rng = Prng.split rng in
  let merge_rng = Prng.split rng in
  let parts, _ =
    chunked_pass_int ~domains ~chunk_size ~rng:scan_rng
      ~make:(fun crng -> Internals_int.Partition.create_kernels crng ~r)
      ~feed:(fun metrics _crng kers ~lo ~hi ->
        for row = lo to hi - 1 do
          Internals_int.Partition.route metrics kers ~tracked ~lo_tbl ~on_lo_probe row
            (Array.unsafe_get keys1 row)
        done)
      ~seal:(Internals_int.Partition.seal ~r)
      (Strategy.env_left env)
  in
  fold_parts ~merge_rng ~merge:Internals_int.Partition.merge
    ~empty:(fun () -> Internals_int.Partition.create ~r)
    parts

let partition_finish_int env ~r rng metrics acc ~tracked ~hi_pool =
  let open Metrics in
  let n_hi = Internals_int.Partition.n_hi acc ~tracked in
  let n_lo = Internals_int.Partition.n_lo acc in
  let hi_pool = hi_pool metrics (Internals_int.Partition.s1 acc) in
  let lo_pool = Internals_int.Partition.lo_pool acc in
  let pairs, _r_hi, _r_lo = Internals.binomial_combine rng ~r ~n_hi ~n_lo ~hi_pool ~lo_pool in
  let out = rehydrate env pairs in
  metrics.output_tuples <- metrics.output_tuples + Array.length out;
  (out, metrics)

let run_frequency_partition_int env ~r ~domains ~chunk_size rng ~keys1 ~keys2 ~tracked =
  let main_metrics = Metrics.create () in
  let tbl = Internals_int.build_join_index main_metrics ~keys:keys2 in
  let acc, scan_metrics =
    partition_pass_int env ~r ~domains ~chunk_size rng ~keys1 ~tracked ~lo_tbl:tbl
      ~on_lo_probe:(fun _ -> ())
  in
  let metrics = Metrics.add main_metrics scan_metrics in
  partition_finish_int env ~r rng metrics acc ~tracked ~hi_pool:(fun m s1 ->
      Internals_int.fps_hi_pick rng m ~tbl ~keys1 s1)

let run_hybrid_count_int env ~r ~domains ~chunk_for rng ~keys1 ~keys2 ~tracked =
  let n1 = Relation.cardinality (Strategy.env_left env) in
  let n2 = Relation.cardinality (Strategy.env_right env) in
  let main_metrics = Metrics.create () in
  let is_low k = Counter.get tracked k = 0 in
  let tbl = Internals_int.build_join_index ~keep:is_low main_metrics ~keys:keys2 in
  let acc, scan_metrics =
    partition_pass_int env ~r ~domains ~chunk_size:(chunk_for n1) rng ~keys1 ~tracked
      ~lo_tbl:tbl
      ~on_lo_probe:(fun _ -> ())
  in
  let metrics = Metrics.add main_metrics scan_metrics in
  partition_finish_int env ~r rng metrics acc ~tracked ~hi_pool:(fun m s1 ->
      let pairs, hi_metrics =
        parallel_count_scan_int env ~domains ~chunk_size:(chunk_for n2) rng
          ~strategy:"Rsj_parallel.run(Hybrid)" ~s1 ~keys1 ~keys2
          ~population:(fun k -> Counter.get tracked k)
      in
      absorb_metrics m hi_metrics;
      pairs)

let run_index_sample_int env ~r ~domains ~chunk_size rng ~keys1 ~tracked ~lo_tbl =
  let right_index = Strategy.env_right_index env in
  let on_lo_probe (m : Metrics.t) =
    m.Metrics.index_probes <- m.Metrics.index_probes + 1;
    Hash_index.note_probe right_index
  in
  let acc, metrics =
    partition_pass_int env ~r ~domains ~chunk_size rng ~keys1 ~tracked ~lo_tbl ~on_lo_probe
  in
  partition_finish_int env ~r rng metrics acc ~tracked ~hi_pool:(fun m s1 ->
      Internals_int.index_hi_pick rng m ~right_index ~keys1 s1)

let run_wor_naive_int env ~r ~domains ~chunk_size rng ~(keys1 : int array) ~keys2 =
  let open Metrics in
  let main_metrics = Metrics.create () in
  let tbl = Internals_int.build_join_index main_metrics ~keys:keys2 in
  let scan_rng = Prng.split rng in
  let merge_rng = Prng.split rng in
  let parts, _ =
    chunked_pass_int ~domains ~chunk_size ~rng:scan_rng
      ~make:(fun _crng -> Reservoir.Wor.create ~r)
      ~feed:(fun metrics crng res ~lo ~hi ->
        let matched = ref 0 in
        for row = lo to hi - 1 do
          match Int_index.find_gid tbl (Array.unsafe_get keys1 row) with
          | -1 -> ()
          | g ->
              let s = Int_index.gid_start tbl g in
              let m = Int_index.gid_multiplicity tbl g in
              for j = s to s + m - 1 do
                Reservoir.Wor.feed crng res (Internals_int.pack row (Int_index.row tbl j))
              done;
              matched := !matched + m
        done;
        metrics.join_output_tuples <- metrics.join_output_tuples + !matched)
      ~seal:(fun s -> s)
      (Strategy.env_left env)
  in
  let res, scan_metrics =
    fold_parts ~merge_rng ~merge:Reservoir.Wor.merge
      ~empty:(fun () -> Reservoir.Wor.create ~r)
      parts
  in
  let out = rehydrate env (Reservoir.Wor.contents res) in
  let metrics = Metrics.add main_metrics scan_metrics in
  metrics.output_tuples <- metrics.output_tuples + Array.length out;
  (out, metrics)

(* Per-strategy data-plane gates: the int twin runs only when every
   structure it consults has an int plane. The gates only force
   structures the strategy is entitled to (prepare has already forced
   them). *)
let stream_int_ctx env =
  if not (int_mode ()) then None
  else
    match
      ( Strategy.env_left_key_view env,
        Frequency.int_counter (Strategy.env_right_stats env),
        Hash_index.int_plane (Strategy.env_right_index env) )
    with
    | Some keys1, Some freq, Some _ -> Some (keys1, freq)
    | _ -> None

let s1_scan_int_ctx env =
  if not (int_mode ()) then None
  else
    match
      ( Strategy.env_left_key_view env,
        Strategy.env_right_key_view env,
        Frequency.int_counter (Strategy.env_right_stats env) )
    with
    | Some keys1, Some keys2, Some freq -> Some (keys1, keys2, freq)
    | _ -> None

let naive_int_ctx env =
  if not (int_mode ()) then None
  else
    match (Strategy.env_left_key_view env, Strategy.env_right_key_view env) with
    | Some keys1, Some keys2 -> Some (keys1, keys2)
    | _ -> None

let olken_int_ctx env =
  if not (int_mode ()) then None
  else
    match
      (Strategy.env_left_key_view env, Hash_index.int_plane (Strategy.env_right_index env))
    with
    | Some keys1, Some _ -> Some keys1
    | _ -> None

let partition_int_ctx env =
  if not (int_mode ()) then None
  else
    match
      ( Strategy.env_left_key_view env,
        Strategy.env_right_key_view env,
        End_biased.int_tracked (Strategy.env_histogram env) )
    with
    | Some keys1, Some keys2, Some tracked -> Some (keys1, keys2, tracked)
    | _ -> None

let index_int_ctx env =
  if not (int_mode ()) then None
  else
    match
      ( Strategy.env_left_key_view env,
        End_biased.int_tracked (Strategy.env_histogram env),
        Hash_index.int_plane (Strategy.env_right_index env) )
    with
    | Some keys1, Some tracked, Some lo_tbl -> Some (keys1, tracked, lo_tbl)
    | _ -> None

let validate ~caller ?chunk_size ~r ~domains () =
  if domains < 0 then invalid_arg (caller ^ ": domains < 0");
  if r < 0 then invalid_arg (caller ^ ": r < 0");
  match chunk_size with
  | Some c when c <= 0 -> invalid_arg (caller ^ ": chunk_size <= 0")
  | _ -> ()

let run ?chunk_size env strategy ~r ~domains =
  validate ~caller:"Rsj_parallel.run" ?chunk_size ~r ~domains ();
  if domains = 0 then Strategy.run env strategy ~r
  else begin
    Strategy.prepare env strategy;
    observed ~semantics:"WR" strategy ~r ~domains (fun () ->
        let chunk_for n =
          match chunk_size with
          | Some c -> c
          | None -> Chunk_scheduler.default_chunk_size ~n
        in
        let c1 = chunk_for (Relation.cardinality (Strategy.env_left env)) in
        let rng = Prng.split (Strategy.env_rng env) in
        let t0 = Obs.Clock.now_s () in
        let sample, metrics =
          match strategy with
          | Strategy.Stream -> (
              match stream_int_ctx env with
              | Some (keys1, freq) ->
                  run_stream_int env ~r ~domains ~chunk_size:c1 rng ~keys1 ~freq
              | None -> run_stream env ~r ~domains ~chunk_size:c1 rng)
          | Strategy.Group -> (
              match s1_scan_int_ctx env with
              | Some (keys1, keys2, freq) ->
                  run_group_int env ~r ~domains ~chunk_for rng ~keys1 ~keys2 ~freq
              | None -> run_group env ~r ~domains ~chunk_for rng)
          | Strategy.Count_sample -> (
              match s1_scan_int_ctx env with
              | Some (keys1, keys2, freq) ->
                  run_count_int env ~r ~domains ~chunk_for rng ~keys1 ~keys2 ~freq
              | None -> run_count env ~r ~domains ~chunk_for rng)
          | Strategy.Naive -> (
              match naive_int_ctx env with
              | Some (keys1, keys2) ->
                  run_naive_int env ~r ~domains ~chunk_size:c1 rng ~keys1 ~keys2
              | None -> run_naive env ~r ~domains ~chunk_size:c1 rng)
          | Strategy.Olken -> (
              match olken_int_ctx env with
              | Some keys1 -> run_olken_int env ~r ~domains rng ~keys1
              | None -> run_olken env ~r ~domains rng)
          | Strategy.Frequency_partition -> (
              match partition_int_ctx env with
              | Some (keys1, keys2, tracked) ->
                  run_frequency_partition_int env ~r ~domains ~chunk_size:c1 rng ~keys1
                    ~keys2 ~tracked
              | None -> run_frequency_partition env ~r ~domains ~chunk_size:c1 rng)
          | Strategy.Index_sample -> (
              match index_int_ctx env with
              | Some (keys1, tracked, lo_tbl) ->
                  run_index_sample_int env ~r ~domains ~chunk_size:c1 rng ~keys1 ~tracked
                    ~lo_tbl
              | None -> run_index_sample env ~r ~domains ~chunk_size:c1 rng)
          | Strategy.Hybrid_count -> (
              match partition_int_ctx env with
              | Some (keys1, keys2, tracked) ->
                  run_hybrid_count_int env ~r ~domains ~chunk_for rng ~keys1 ~keys2 ~tracked
              | None -> run_hybrid_count env ~r ~domains ~chunk_for rng)
        in
        let elapsed_seconds = Obs.Clock.now_s () -. t0 in
        { Strategy.strategy; sample; metrics; elapsed_seconds })
  end

(* Parallel WoR, Naive path: the join is enumerated by the chunked R1
   scan and every join tuple is fed into the chunk's Wor (Vitter
   Algorithm R) reservoir; the chunk-order merge applies the Wor merge
   law, so the merged reservoir holds a uniform without-replacement
   sample of min (r, |J|) join positions — the same law as one
   sequential Algorithm R pass over the join stream. *)
let run_wor_naive env ~r ~domains ~chunk_size rng =
  let open Metrics in
  let main_metrics = Metrics.create () in
  let tbl =
    Internals.build_join_hash main_metrics (Strategy.env_right env)
      ~right_key:(Strategy.env_right_key env)
  in
  let left_key = Strategy.env_left_key env in
  let scan_rng = Prng.split rng in
  let merge_rng = Prng.split rng in
  let parts, _ =
    chunked_pass ~domains ~chunk_size ~rng:scan_rng
      ~make:(fun () -> Reservoir.Wor.create ~r)
      ~feed:(fun metrics chunk_rng res t1 ->
        Array.iter
          (fun t2 ->
            metrics.join_output_tuples <- metrics.join_output_tuples + 1;
            Reservoir.Wor.feed chunk_rng res (Tuple.join t1 t2))
          (Internals.hash_matches tbl (Tuple.attr t1 left_key)))
      (Strategy.env_left env)
  in
  let res, scan_metrics =
    fold_parts ~merge_rng ~merge:Reservoir.Wor.merge
      ~empty:(fun () -> Reservoir.Wor.create ~r)
      parts
  in
  let out = Reservoir.Wor.contents res in
  let metrics = Metrics.add main_metrics scan_metrics in
  metrics.output_tuples <- metrics.output_tuples + Array.length out;
  (out, metrics)

(* Parallel WoR, every other strategy: the §3 conversion — draw WR
   batches through the chunk-scheduled runtime and reject duplicates
   (Convert.wr_to_wor) until [target] distinct join tuples have
   accumulated. Identical to Strategy.run_wor except each batch is a
   pooled parallel draw. *)
let run_wor_batches ?chunk_size env strategy ~domains ~target =
  let dedup_rng = Prng.split (Strategy.env_rng env) in
  let metrics = ref (Metrics.create ()) in
  let collected = Hashtbl.create (2 * max 1 target) in
  let out = ref [] in
  let count = ref 0 in
  let rounds = ref 0 in
  while !count < target && !rounds < 64 do
    incr rounds;
    let batch = run ?chunk_size env strategy ~r:target ~domains in
    metrics := Metrics.add !metrics batch.Strategy.metrics;
    let deduped =
      Convert.wr_to_wor dedup_rng ~key:Tuple.hash ~r:(target - !count)
        batch.Strategy.sample
    in
    Array.iter
      (fun t ->
        let k = Tuple.hash t in
        if not (Hashtbl.mem collected k) then begin
          Hashtbl.replace collected k ();
          out := t :: !out;
          incr count
        end)
      deduped
  done;
  if !count < target then
    failwith "Rsj_parallel.run_wor: failed to accumulate distinct samples (very small join?)";
  (Array.of_list (List.rev !out), !metrics)

let run_wor ?chunk_size env strategy ~r ~domains =
  validate ~caller:"Rsj_parallel.run_wor" ?chunk_size ~r ~domains ();
  if domains = 0 then Strategy.run_wor env strategy ~r
  else begin
    Strategy.prepare env strategy;
    (* Only the direct chunked-Vitter path (Naive) absorbs its counters
       here; the batch-conversion path re-enters [run], which absorbs
       per batch. *)
    let absorb = match strategy with Strategy.Naive -> true | _ -> false in
    observed ~absorb ~semantics:"WoR" strategy ~r ~domains (fun () ->
        let target = min r (Strategy.env_join_size env) in
        let t0 = Obs.Clock.now_s () in
        let sample, metrics =
          if target = 0 then ([||], Metrics.create ())
          else
            match strategy with
            | Strategy.Naive ->
                let n1 = Relation.cardinality (Strategy.env_left env) in
                let chunk_size =
                  match chunk_size with
                  | Some c -> c
                  | None -> Chunk_scheduler.default_chunk_size ~n:n1
                in
                let rng = Prng.split (Strategy.env_rng env) in
                (match naive_int_ctx env with
                | Some (keys1, keys2) ->
                    run_wor_naive_int env ~r:target ~domains ~chunk_size rng ~keys1 ~keys2
                | None -> run_wor_naive env ~r:target ~domains ~chunk_size rng)
            | _ -> run_wor_batches ?chunk_size env strategy ~domains ~target
        in
        let elapsed_seconds = Obs.Clock.now_s () -. t0 in
        { Strategy.strategy; sample; metrics; elapsed_seconds })
  end

(** Parallel sampling runtime on OCaml 5 domains.

    The Case-B strategies (paper §5–6) consume R1 in a single pass, so
    their hot loop shards: {!run} splits R1 into contiguous shards
    ({!Rsj_relation.Relation.shards}), gives each shard a private
    domain, generator ({!Rsj_util.Prng.split_n}) and reservoir, and
    combines the per-shard reservoirs with the weighted merges of
    {!Rsj_core.Reservoir} — a sample distribution-identical to the
    sequential pass. Auxiliary structures (hash index, frequency
    statistics) are shared read-only; work counters are per-domain
    {!Rsj_exec.Metrics.t} values summed at the end, so no mutable state
    crosses domains.

    Parallel construction of the auxiliary structures themselves lives
    with them: {!Rsj_index.Hash_index.build_parallel} and
    {!Rsj_stats.Frequency.of_relation_parallel}. *)

module Strategy = Rsj_core.Strategy

val default_domains : unit -> int
(** [Domain.recommended_domain_count ()] — a sensible [~domains] for
    the current machine. *)

val is_parallelizable : Strategy.t -> bool
(** Whether {!run} has a sharded execution for the strategy. True for
    Naive-, Stream-, Group- and Count-Sample (single-pass over R1);
    false for Olken (dependent rejection rounds) and the partition
    strategies (two interleaved samplers over one pass), which fall
    back to the sequential runner. *)

val run : Strategy.env -> Strategy.t -> r:int -> domains:int -> Strategy.result
(** [run env strategy ~r ~domains] draws a WR sample of size [r] like
    {!Strategy.run}, executing the strategy across [domains] domains
    when it is parallelizable and [domains > 1]; otherwise it behaves
    exactly as {!Strategy.run}. The sample's distribution does not
    depend on [domains] (the per-shard reservoirs merge into the same
    law); the particular tuples drawn for a given seed do. As in
    {!Strategy.run}, auxiliary structures are forced before the clock
    starts, and a fresh child generator is split off the env per run.
    Raises [Invalid_argument] when [r] or [domains] is negative. *)

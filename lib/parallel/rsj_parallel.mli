(** Parallel sampling runtime on OCaml 5 domains — all eight
    strategies, WR and WoR.

    Worker domains come from the persistent {!Domain_pool}: spawned
    once, parked on a condition variable between calls, reused by
    every parallel entry point in the tree, so a sweep of thousands of
    parallel calls pays O(max domains) spawns rather than
    O(calls × domains).

    Scans (everything except Olken) are distributed by the chunk-queue
    scheduler {!Chunk_scheduler}: R1 — and R2, for the Group-Sample
    and Count-Sample matching passes — is cut into fixed-size chunks
    ({!Rsj_relation.Relation.chunk}) behind one atomic cursor, and
    domains claim chunks with a fetch-and-add, so a skew-heavy range
    cannot strand work on one domain the way a static contiguous split
    can. Every chunk carries its own split generator
    ({!Rsj_util.Prng.split_n}), metrics and mergeable accumulator
    (weighted/unit/without-replacement reservoirs, the hi/lo partition
    state); results land in per-chunk slots and merge on the calling
    domain in chunk order. Chunk state depends only on the chunk index
    — never on the claiming domain — and the chunk cut never depends
    on the domain count, so chunked strategies are bit-deterministic
    for a fixed seed {e at every domain count} and
    distribution-identical to a sequential pass.

    Olken-Sample parallelizes {e speculatively}: each domain runs
    independent accept/reject rounds ({!Rsj_core.Olken_sample.attempt})
    into a private buffer, and a shared atomic counter hands out the r
    acceptance tickets — ticketing and stopping never look at the
    sampled values, so the surviving pairs keep Olken's law, but which
    rounds land is timing-dependent: distribution-identical, not
    bit-reproducible, at [domains > 1].

    Auxiliary structures (hash index, frequency statistics, histogram)
    are shared read-only across domains; their parallel construction
    lives with them ({!Rsj_index.Hash_index.build_parallel},
    {!Rsj_stats.Frequency.of_relation_parallel}) and draws workers
    from the same pool. *)

module Strategy = Rsj_core.Strategy

module Chunk_scheduler : module type of Chunk_scheduler
(** The chunk-queue scheduler, exposed for tests and benchmarks. *)

val default_domains : unit -> int
(** [Domain.recommended_domain_count ()] — a sensible [~domains] for
    the current machine. *)

val is_parallelizable : Strategy.t -> bool
(** Whether {!run} has a parallel execution for the strategy. True for
    all eight strategies: the single-pass scans are chunk-scheduled,
    the partition strategies route hi/lo per chunk through mergeable
    accumulators, Count-Sample/Hybrid-Count's R2 matching runs
    per-entry unit reservoirs, and Olken runs speculative rejection
    rounds on every domain. *)

val run :
  ?chunk_size:int -> Strategy.env -> Strategy.t -> r:int -> domains:int -> Strategy.result
(** [run env strategy ~r ~domains] draws a WR sample of size [r] like
    {!Strategy.run}, executed through the chunk-scheduled pooled
    runtime for every [domains >= 1] ([domains - 1] pool workers plus
    the caller; at [domains = 1] the caller runs every chunk itself).
    [domains = 0] is the explicit sequential escape: exactly
    {!Strategy.run}, no chunking. The sample's distribution never
    depends on [domains] or [chunk_size]; for a fixed seed the drawn
    tuples are bit-identical across all [domains >= 1] for every
    strategy except Olken at [domains > 1] (speculative ticketing —
    see above). As in {!Strategy.run}, auxiliary structures are forced
    before the clock starts and a fresh child generator is split off
    the env per run.

    [chunk_size] overrides the scheduler's
    {!Chunk_scheduler.default_chunk_size} (setting it to
    [ceil (n / domains)] reproduces the old static one-shard-per-domain
    split, which is how the benchmarks compare static sharding against
    the chunk queue). Raises [Invalid_argument] when [r] or [domains]
    is negative or [chunk_size <= 0]. *)

val run_wor :
  ?chunk_size:int -> Strategy.env -> Strategy.t -> r:int -> domains:int -> Strategy.result
(** [run_wor env strategy ~r ~domains] draws a without-replacement
    sample of [min r |J|] distinct join tuples like
    {!Strategy.run_wor}, executed on the pooled runtime for
    [domains >= 1] ([domains = 0] falls back to {!Strategy.run_wor}).

    Naive-Sample gets a direct parallel path: every chunk of the R1
    scan feeds its enumerated join tuples into a private
    without-replacement reservoir (Vitter's Algorithm R,
    {!Rsj_core.Reservoir.Wor}), and the chunk-order merge applies the
    Wor merge law — the merged reservoir is distributed exactly as one
    sequential Algorithm R pass over the join stream. Every other
    strategy keeps the §3 conversion of {!Strategy.run_wor} — WR
    batches deduplicated by {!Rsj_core.Convert.wr_to_wor} until the
    target is reached — with each batch drawn through {!run}, so the
    batches themselves are parallel.

    Deterministic for a fixed seed across all [domains >= 1] (Olken
    excepted, as for {!run}). Raises [Failure] when 64 batch rounds
    cannot accumulate the target (degenerate joins), like
    {!Strategy.run_wor}; raises [Invalid_argument] on negative [r] or
    [domains] or non-positive [chunk_size]. *)

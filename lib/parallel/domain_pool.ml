(* Persistent pool of worker domains.

   Each worker is spawned once and then parked on its own
   Mutex/Condition pair: the worker loop waits until a job is
   installed (or the stop flag is raised), runs the job outside the
   lock, clears its busy flag and signals completion. The caller's
   side of the same condition is the completion barrier — it waits
   until every claimed worker reports idle. One condition per worker
   serves both directions because the two parties never wait at the
   same time: the worker waits only while it has no job, the caller
   only while the worker is busy.

   Exceptions raised by a job are caught in the wrapper installed by
   [run], carried back in a per-index slot, and re-raised on the
   calling domain after the barrier — a raising job must not kill the
   worker (the pool would silently lose capacity) nor skip the
   barrier (the caller would race the other workers' writes).

   This is the only module in the tree that calls the domain spawn
   primitive; a dune rule greps the rest of the codebase to keep it
   that way.

   Telemetry: the spawn/job counters live in Obs.Registry (the one
   counter-export path; Domain_pool.counters reads them back for the
   legacy record API), and when tracing is enabled the pool emits
   spawn/park/job spans plus a submit→start wake-latency histogram —
   the park/wake cost that motivated the pool becomes visible per
   worker in Perfetto. All timed hooks gate on Obs.enabled. *)

module Obs = Rsj_obs

type worker = {
  mutex : Mutex.t;
  cond : Condition.t;
  mutable job : (unit -> unit) option;
  mutable busy : bool;
  mutable stop : bool;
}

type t = {
  lock : Mutex.t;  (* guards the pool record itself *)
  mutable workers : worker array;
  mutable handles : unit Domain.t list;
  mutable closed : bool;
  mutable in_use : bool;
}

let spawned_total =
  Obs.Registry.counter ~help:"Worker domains ever spawned by any pool"
    "rsj_pool_workers_spawned_total"

let jobs_total =
  Obs.Registry.counter ~help:"Domain_pool.run calls with domains > 1" "rsj_pool_parallel_jobs_total"

let legacy_total =
  Obs.Registry.counter
    ~help:"Spawns a pool-less spawn-per-call runtime would have performed for the same jobs"
    "rsj_pool_unpooled_spawn_equivalent_total"

let wake_latency =
  Obs.Registry.histogram ~help:"Pool job submit-to-start latency (condvar wake), seconds"
    "rsj_pool_wake_latency_seconds"

(* Utilization gauges: how many worker domains are parked alive, and
   how many are claimed by an in-flight run. With the single-claimant
   pool, busy is 0 or (domains - 1) — still enough for a scrape to tell
   an idle daemon from a saturated one. *)
let workers_live_g =
  Obs.Registry.gauge ~help:"Worker domains currently alive in the pool" "rsj_pool_workers_live"

let workers_busy_g =
  Obs.Registry.gauge ~help:"Worker domains claimed by an in-flight parallel job"
    "rsj_pool_workers_busy"

type counters = {
  spawned : int;
  parallel_jobs : int;
  unpooled_spawn_equivalent : int;
}

let counters () =
  {
    spawned = Obs.Registry.value spawned_total;
    parallel_jobs = Obs.Registry.value jobs_total;
    unpooled_spawn_equivalent = Obs.Registry.value legacy_total;
  }

let worker_loop w =
  Mutex.lock w.mutex;
  let rec loop () =
    match w.job with
    | Some f ->
        w.job <- None;
        Mutex.unlock w.mutex;
        (* [f] is the wrapper from [run]; it never raises. *)
        f ();
        Mutex.lock w.mutex;
        w.busy <- false;
        Condition.signal w.cond;
        loop ()
    | None ->
        if w.stop then Mutex.unlock w.mutex
        else begin
          (* Park span: one per Condition.wait, so a worker's idle gaps
             between jobs are visible next to the jobs themselves. *)
          let t0 = if Obs.enabled () then Obs.Clock.now_us () else 0. in
          Condition.wait w.cond w.mutex;
          if Obs.enabled () && t0 > 0. then
            Obs.Trace.complete ~cat:"pool" "pool.park" ~ts:t0
              ~dur:(Float.max 0. (Obs.Clock.now_us () -. t0));
          loop ()
        end
  in
  loop ()

let spawn_worker () =
  let w =
    {
      mutex = Mutex.create ();
      cond = Condition.create ();
      job = None;
      busy = false;
      stop = false;
    }
  in
  Obs.Registry.incr spawned_total;
  let handle =
    Obs.Trace.with_span ~cat:"pool" "pool.spawn" (fun () -> Domain.spawn (fun () -> worker_loop w))
  in
  (w, handle)

(* Grow to [n] workers. Caller holds [t.lock]. *)
let ensure t n =
  let have = Array.length t.workers in
  if n > have then begin
    let fresh = Array.init (n - have) (fun _ -> spawn_worker ()) in
    t.workers <- Array.append t.workers (Array.map fst fresh);
    t.handles <- t.handles @ Array.to_list (Array.map snd fresh);
    Obs.Registry.set_gauge workers_live_g (float_of_int (Array.length t.workers))
  end

let submit w f =
  Mutex.lock w.mutex;
  (* [run] serializes jobs per worker and waited for idle, so no job
     can be pending here. *)
  w.job <- Some f;
  w.busy <- true;
  Condition.signal w.cond;
  Mutex.unlock w.mutex

let await w =
  Mutex.lock w.mutex;
  while w.busy do
    Condition.wait w.cond w.mutex
  done;
  Mutex.unlock w.mutex

let create () =
  { lock = Mutex.create (); workers = [||]; handles = []; closed = false; in_use = false }

let live_workers t =
  Mutex.lock t.lock;
  let n = Array.length t.workers in
  Mutex.unlock t.lock;
  n

(* Sequential fallback: same results as the parallel path whenever f
   depends only on its index, which is the pool's usage contract. The
   explicit loop fixes the evaluation order (Array.init's is
   unspecified), so index-claiming tasks still see indices in order. *)
let run_on_caller domains f =
  let first = f 0 in
  let out = Array.make domains first in
  for k = 1 to domains - 1 do
    out.(k) <- f k
  done;
  out

(* Wrap a worker-bound task so its submit→start wake latency and its
   execution span are recorded on the worker's own ring. The closure is
   only built when telemetry is on; otherwise the task passes through
   untouched. *)
let instrument k task =
  if not (Obs.enabled ()) then task
  else begin
    let submitted = Obs.Clock.now_us () in
    fun () ->
      let started = Obs.Clock.now_us () in
      Obs.Registry.observe wake_latency (Float.max 0. (started -. submitted) /. 1e6);
      Obs.Trace.with_span ~cat:"pool" ~args:[ ("worker", Rsj_obs.Json.Int k) ] "pool.job" task
  end

let run t ~domains f =
  if domains < 0 then invalid_arg "Domain_pool.run: domains < 0";
  if domains = 0 then [||]
  else if domains = 1 then [| f 0 |]
  else begin
    Obs.Registry.incr jobs_total;
    Obs.Registry.add legacy_total (domains - 1);
    let claimed =
      Mutex.lock t.lock;
      Fun.protect
        ~finally:(fun () -> Mutex.unlock t.lock)
        (fun () ->
          if t.closed || t.in_use then None
          else begin
            ensure t (domains - 1);
            t.in_use <- true;
            Obs.Registry.set_gauge workers_busy_g (float_of_int (domains - 1));
            Some (Array.sub t.workers 0 (domains - 1))
          end)
    in
    match claimed with
    | None -> run_on_caller domains f
    | Some ws ->
        let results = Array.make domains None in
        let errors = Array.make domains None in
        let task k () =
          match f k with
          | v -> results.(k) <- Some v
          | exception e -> errors.(k) <- Some (e, Printexc.get_raw_backtrace ())
        in
        Fun.protect
          ~finally:(fun () ->
            Mutex.lock t.lock;
            t.in_use <- false;
            Obs.Registry.set_gauge workers_busy_g 0.;
            Mutex.unlock t.lock)
          (fun () ->
            Obs.Trace.with_span ~cat:"pool"
              ~args:[ ("domains", Rsj_obs.Json.Int domains) ]
              "pool.run"
              (fun () ->
                Array.iteri (fun i w -> submit w (instrument (i + 1) (task (i + 1)))) ws;
                Obs.Trace.with_span ~cat:"pool"
                  ~args:[ ("worker", Rsj_obs.Json.Int 0) ]
                  "pool.job" (task 0);
                (* Barrier: every claimed worker back to idle before any
                   result or error slot is read. *)
                Array.iter await ws));
        Array.iter
          (function
            | Some (e, bt) -> Printexc.raise_with_backtrace e bt
            | None -> ())
          errors;
        Array.map (function Some v -> v | None -> assert false) results
  end

let shutdown t =
  Mutex.lock t.lock;
  if t.closed then Mutex.unlock t.lock
  else begin
    t.closed <- true;
    let ws = t.workers and hs = t.handles in
    t.workers <- [||];
    t.handles <- [];
    Obs.Registry.set_gauge workers_live_g 0.;
    Mutex.unlock t.lock;
    Array.iter
      (fun w ->
        Mutex.lock w.mutex;
        w.stop <- true;
        Condition.signal w.cond;
        Mutex.unlock w.mutex)
      ws;
    List.iter Domain.join hs
  end

let global_pool : t option ref = ref None

let global () =
  match !global_pool with
  | Some t when not t.closed -> t
  | _ ->
      let t = create () in
      global_pool := Some t;
      at_exit (fun () -> shutdown t);
      t

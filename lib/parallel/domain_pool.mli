(** Persistent pool of worker domains.

    Spawning a domain costs far more than the work most of our parallel
    calls hand it — the conformance sweep alone used to spin up and
    join domains thousands of times per run. The pool spawns each
    worker once, parks it on a condition variable between jobs, and
    reuses it for every subsequent parallel call, so a whole process
    pays O(max domains requested) spawns instead of O(calls × domains).

    Workers start lazily: a fresh pool holds none, and {!run} grows it
    to [domains - 1] workers on demand (the calling domain always
    executes index 0). Requests are sized by whatever the caller asks
    for — the CLI's [--domains], the [RSJ_DOMAINS] test knob — so the
    pool never holds more workers than the largest request seen.

    Park/wake protocol: each worker owns a [Mutex.t]/[Condition.t]
    pair and blocks in [Condition.wait] while it has no job; the
    caller installs a job and signals, the worker runs it, clears its
    busy flag and signals back, and the caller waits on the same
    condition until every claimed worker is idle again. A worker that
    raises does not die: the exception (with its backtrace) is caught
    in the job wrapper, carried back to the caller, and re-raised
    there after the barrier — the pool stays usable.

    Determinism: {!run} only decides {e where} [f k] executes, never
    with what arguments; as long as [f] depends only on [k] (the
    chunk-queue discipline), results are identical whether a task ran
    on the caller, a pooled worker, or the sequential fallback. *)

type t
(** A pool handle. Use from one domain at a time: {!run} holds the
    pool for the duration of the call, and a reentrant or concurrent
    {!run} on the same pool falls back to running all indices on the
    calling domain (same results, no parallelism) rather than
    deadlocking. *)

val create : unit -> t
(** A fresh pool with no workers; {!run} grows it on demand. *)

val global : unit -> t
(** The process-wide pool shared by the whole runtime
    ({!Chunk_scheduler}, [Rsj_parallel], the parallel statistics and
    index builders). Created on first use; an [at_exit] hook shuts it
    down so no worker domain outlives the process' main flow. *)

val run : t -> domains:int -> (int -> 'a) -> 'a array
(** [run t ~domains f] evaluates [f k] for every [k ∈ [0, domains)] —
    [f 0] on the calling domain, each other index on a parked worker
    (spawning workers only if the pool holds fewer than
    [domains - 1]) — and returns the results in index order. Blocks
    until all indices finish. If any [f k] raised, the first such
    exception (lowest [k]) is re-raised with its backtrace after every
    worker has returned to idle; the pool remains usable. On a closed
    or busy pool the indices all run sequentially on the caller.
    Raises [Invalid_argument] if [domains < 0]. *)

val live_workers : t -> int
(** Number of worker domains currently parked in or running for the
    pool (excludes the caller). *)

val shutdown : t -> unit
(** Wake every worker with a stop flag and join them all; afterwards
    {!live_workers} is [0] and subsequent {!run}s execute sequentially
    on the caller. Idempotent. The {!global} pool registers this via
    [at_exit]. *)

(** {2 Spawn accounting}

    Process-wide counters over every pool, used by the benchmarks and
    EXPERIMENTS.md V9 to show the amortisation: [spawned] is what the
    pooled runtime actually paid, [unpooled_spawn_equivalent] is what
    the old spawn-per-call design would have paid for the same jobs.

    Since the telemetry subsystem (DESIGN.md §9) these counters live in
    [Obs.Registry] ([rsj_pool_workers_spawned_total],
    [rsj_pool_parallel_jobs_total],
    [rsj_pool_unpooled_spawn_equivalent_total]) — the registry is the
    single counter-export path — and {!counters} merely reads them back
    into the record shape. When tracing is enabled the pool also emits
    spawn/park/job spans and a submit→start wake-latency histogram
    ([rsj_pool_wake_latency_seconds]). *)

type counters = {
  spawned : int;  (** Worker domains ever spawned by any pool. *)
  parallel_jobs : int;  (** {!run} calls with [domains > 1]. *)
  unpooled_spawn_equivalent : int;
      (** Σ (domains - 1) over those calls — the spawns a
          pool-less runtime would have performed. *)
}

val counters : unit -> counters

(** Chunk-queue scheduler: dynamic work distribution over a fixed set
    of chunks.

    Replaces the static one-contiguous-shard-per-domain split for the
    parallel runtime's scans: all chunk indices sit behind one atomic
    cursor and every domain claims the next index with a
    fetch-and-add, so domains that draw cheap chunks steal the
    remaining ones instead of idling — the residual imbalance is at
    most one chunk of work per domain, whatever the skew. Worker
    domains come from the persistent {!Domain_pool}, so each scan
    costs a condvar wake per worker rather than a spawn and join.

    Only the chunk→domain assignment is racy. [task i] must depend
    only on [i] (derive per-chunk generators with
    {!Rsj_util.Prng.split_n}, not per-domain ones); then the result
    array — one slot per chunk, each written exactly once — is a
    deterministic, schedule-independent function of the input, and
    combining it in chunk order gives reproducible samples at any
    domain count. *)

type stats = {
  chunks : int;  (** Chunks handed out in total. *)
  claims : int array;  (** Chunks claimed per domain; index 0 is the calling domain. *)
}

val default_chunk_size : n:int -> int
(** Fixed chunk size for an [n]-row scan: [n / 16] clamped to
    [\[1, 4096\]] — about sixteen claims per scan, so stealing has
    slack to act on at any realistic domain count. Independent of the
    domain count on purpose: the chunk cut fixes the per-chunk split
    generators, so the same seed yields bit-identical samples at every
    pool width. The [RSJ_CHUNK_SIZE] environment variable overrides
    it; raises [Invalid_argument] when set to anything but a positive
    integer. *)

val run :
  ?pool:Domain_pool.t ->
  domains:int ->
  chunks:int ->
  task:(int -> 'a) ->
  unit ->
  'a array * stats
(** [run ~domains ~chunks ~task ()] evaluates [task i] for every
    [i ∈ \[0, chunks)] across [domains] domains (the caller runs as
    domain 0; [domains - 1] workers come from [pool], defaulting to
    {!Domain_pool.global}), claiming indices off the shared cursor.
    Returns the results in chunk order plus the per-domain claim
    counts. If some [task i] raised, the exception propagates after
    all domains have drained the cursor. Raises [Invalid_argument]
    when [domains <= 0] or [chunks < 0]. *)

(** Chunk-queue scheduler: dynamic work distribution over a fixed set
    of chunks.

    Replaces the static one-contiguous-shard-per-domain split for the
    parallel runtime's scans: all chunk indices sit behind one atomic
    cursor and every domain claims the next index with a
    fetch-and-add, so domains that draw cheap chunks steal the
    remaining ones instead of idling — the residual imbalance is at
    most one chunk of work per domain, whatever the skew.

    Only the chunk→domain assignment is racy. [task i] must depend
    only on [i] (derive per-chunk generators with
    {!Rsj_util.Prng.split_n}, not per-domain ones); then the result
    array — one slot per chunk, each written exactly once — is a
    deterministic, schedule-independent function of the input, and
    combining it in chunk order gives reproducible samples. *)

type stats = {
  chunks : int;  (** Chunks handed out in total. *)
  claims : int array;  (** Chunks claimed per domain; index 0 is the calling domain. *)
}

val default_chunk_size : n:int -> domains:int -> int
(** Fixed chunk size for an [n]-row scan: [n / (4·domains)] clamped to
    [\[1, 4096\]] — about four claims per domain, so stealing has
    slack to act on. The [RSJ_CHUNK_SIZE] environment variable
    overrides it; raises [Invalid_argument] when set to anything but
    a positive integer. *)

val run : domains:int -> chunks:int -> task:(int -> 'a) -> 'a array * stats
(** [run ~domains ~chunks ~task] evaluates [task i] for every
    [i ∈ \[0, chunks)] across [domains] domains (the caller runs as
    domain 0, [domains - 1] are spawned), claiming indices off the
    shared cursor. Returns the results in chunk order plus the
    per-domain claim counts. Raises [Invalid_argument] when [domains
    <= 0] or [chunks < 0]. *)

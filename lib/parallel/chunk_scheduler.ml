(* Chunk-queue scheduler: dynamic work distribution over a fixed set
   of chunks.

   The static `Relation.shards` split gives every domain exactly one
   contiguous range up front; under skew (a Zipf-clustered R1, a hot
   hash bucket) one shard can carry most of the work while the other
   domains sit idle. Here the chunks sit behind a single atomic
   cursor instead: each domain claims the next unclaimed chunk with a
   fetch-and-add, so a domain that finishes cheap chunks immediately
   steals the remaining ones and the imbalance is bounded by one
   chunk's worth of work per domain.

   Domains come from the persistent pool (Domain_pool), so a scan pays
   a condvar wake per worker instead of a spawn+join per worker.

   Determinism: the racy part is only *which domain* runs a chunk.
   Each chunk's result lands in its own slot of the result array (the
   fetch-and-add hands out each index exactly once), so as long as
   [task i] depends only on [i] — per-chunk split generators, not
   per-domain ones — the result array is a deterministic function of
   the inputs, and callers that combine results in chunk order get
   schedule-independent output. The chunk size itself never depends on
   the domain count, so the chunk cut — and with it every split
   generator — is identical at any pool size.

   Telemetry: with tracing on and more than one domain, every chunk
   claim→merge becomes a span tagged with the claiming domain — in
   Perfetto a skewed scan shows up directly as one domain's lane
   filling with long chunk spans while the others' stay short, the
   static-vs-chunk-queue rebalancing evidence ROADMAP defers to a
   multi-core host for wall-clock. The registry gets a per-chunk
   service-time histogram and per-domain claim counters. Single-domain
   scans record only the whole-scan span: their chunks run inline and
   back to back, so per-chunk spans would add two clock reads per
   chunk to the serving path's latency without showing any
   interleaving. Disabled cost: one branch per scan. *)

module Obs = Rsj_obs

let chunk_service =
  Obs.Registry.histogram ~help:"Per-chunk claim-to-merge service time, seconds"
    "rsj_chunk_service_seconds"

type stats = {
  chunks : int;  (* chunks handed out in total *)
  claims : int array;  (* chunks claimed by each domain, index 0 = caller *)
}

let default_chunk_size ~n =
  match Sys.getenv_opt "RSJ_CHUNK_SIZE" with
  | Some s when String.trim s <> "" -> (
      match int_of_string_opt (String.trim s) with
      | Some v when v > 0 -> v
      | _ -> invalid_arg (Printf.sprintf "RSJ_CHUNK_SIZE must be a positive integer, got %S" s))
  | _ ->
      (* ~16 chunks per scan so stealing has slack to act on at any
         realistic domain count, capped so huge relations still get
         cache-friendly chunks. Deliberately independent of the domain
         count: the chunk cut fixes the per-chunk generators, so a
         domain-count-dependent size would break bit-identity across
         pool widths. *)
      max 1 (min 4096 (n / 16))

let run ?pool ~domains ~chunks ~task () =
  if domains <= 0 then invalid_arg "Chunk_scheduler.run: domains <= 0";
  if chunks < 0 then invalid_arg "Chunk_scheduler.run: chunks < 0";
  let results = Array.make chunks None in
  let cursor = Atomic.make 0 in
  (* One enabled check per scan; the traced worker pays its clock reads
     per chunk, the untraced one stays the bare claim loop. *)
  let traced = Obs.enabled () && domains > 1 in
  let claim_counters =
    if traced then
      Array.init domains (fun k ->
          Obs.Registry.counter ~help:"Chunks claimed, by claiming domain"
            ~labels:[ ("domain", string_of_int k) ]
            "rsj_chunk_claims_total")
    else [||]
  in
  let worker k =
    let mine = ref 0 in
    let continue = ref true in
    while !continue do
      let i = Atomic.fetch_and_add cursor 1 in
      if i < chunks then begin
        (if not traced then results.(i) <- Some (task i)
         else begin
           let t0 = Obs.Clock.now_us () in
           results.(i) <- Some (task i);
           let dur = Float.max 0. (Obs.Clock.now_us () -. t0) in
           Obs.Trace.complete ~cat:"chunk"
             ~args:[ ("chunk", Rsj_obs.Json.Int i); ("domain", Rsj_obs.Json.Int k) ]
             "chunk" ~ts:t0 ~dur;
           Obs.Registry.observe chunk_service (dur /. 1e6);
           Obs.Registry.incr claim_counters.(k)
         end);
        incr mine
      end
      else continue := false
    done;
    !mine
  in
  let pool = match pool with Some p -> p | None -> Domain_pool.global () in
  let claims =
    Obs.Trace.with_span ~cat:"chunk"
      ~args:[ ("chunks", Rsj_obs.Json.Int chunks); ("domains", Rsj_obs.Json.Int domains) ]
      "chunk_scheduler.run"
      (fun () -> Domain_pool.run pool ~domains worker)
  in
  let out =
    Array.map
      (function Some r -> r | None -> assert false (* every index was handed out *))
      results
  in
  (out, { chunks; claims })

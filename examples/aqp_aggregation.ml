(* Approximate query processing over a skewed join: how estimate error
   and cost scale with the sample size.

   The workload is the paper's own (§8.1): a 1%-skewed outer table
   joined with a heavily skewed inner table. We answer

     SELECT AVG(t1.rid), COUNT of even t1.rid
     FROM t1 JOIN t2 ON t1.col2 = t2.col2

   from Stream-Sample samples of growing size and compare against the
   exact answers, reporting the work saved.

   Run with: dune exec examples/aqp_aggregation.exe *)

open Rsj_relation
module Strategy = Rsj_core.Strategy
module Aqp = Rsj_core.Aqp
module Metrics = Rsj_exec.Metrics
module Zipf_tables = Rsj_workload.Zipf_tables

let () =
  let pair = Zipf_tables.make_pair ~seed:1999 ~n1:2_000 ~n2:10_000 ~z1:1. ~z2:2. ~domain:500 () in
  let env =
    Strategy.make_env ~seed:1999 ~left:pair.outer ~right:pair.inner ~left_key:Zipf_tables.col2
      ~right_key:Zipf_tables.col2 ()
  in
  let n = Strategy.env_join_size env in
  Printf.printf "workload: %d x %d tuples, z = (1, 2), |J| = %d\n\n"
    (Relation.cardinality pair.outer)
    (Relation.cardinality pair.inner)
    n;

  (* Exact answers via the full join (the cost AQP avoids). *)
  let metrics = Metrics.create () in
  let exact_sum = ref 0. and exact_count = ref 0 and exact_even = ref 0 in
  let t0 = Rsj_obs.Clock.now_s () in
  let naive = Strategy.run env Strategy.Naive ~r:1 in
  ignore naive;
  (* run the actual exact aggregation over a fresh full join stream *)
  let plan =
    Rsj_exec.Plan.Join
      {
        Rsj_exec.Plan.algorithm = Rsj_exec.Plan.Hash;
        left = Rsj_exec.Plan.Scan pair.outer;
        right = Rsj_exec.Plan.Scan pair.inner;
        left_key = Zipf_tables.col2;
        right_key = Zipf_tables.col2;
      }
  in
  Stream0.iter
    (fun t ->
      let rid = Value.to_int_exn (Tuple.get t 0) in
      exact_sum := !exact_sum +. float_of_int rid;
      incr exact_count;
      if rid mod 2 = 0 then incr exact_even)
    (Rsj_exec.Plan.run ~metrics plan);
  let exact_time = Rsj_obs.Clock.now_s () -. t0 in
  let exact_avg = !exact_sum /. float_of_int !exact_count in
  Printf.printf "exact: AVG = %.2f, COUNT(even) = %d  (%.3fs, %d tuples processed)\n\n"
    exact_avg !exact_even exact_time (Metrics.total_work metrics);

  Printf.printf "%8s  %12s  %18s  %10s  %8s\n" "r" "AVG (CI)" "COUNT even (CI)" "work" "time";
  List.iter
    (fun r ->
      let res = Strategy.run env Strategy.Stream ~r in
      let sample = res.Strategy.sample in
      let avg = Aqp.avg ~sample ~col:0 in
      let count =
        Aqp.count_where ~sample ~n ~pred:(fun t ->
            Value.to_int_exn (Tuple.get t 0) mod 2 = 0)
      in
      Printf.printf "%8d  %6.2f ±%5.2f  %10.0f ±%7.0f  %10d  %.4fs\n" r avg.Aqp.value
        (avg.Aqp.ci_high -. avg.Aqp.value)
        count.Aqp.value
        (count.Aqp.ci_high -. count.Aqp.value)
        (Metrics.total_work res.Strategy.metrics)
        res.Strategy.elapsed_seconds;
      (* sanity: the truth should usually be inside the interval *)
      if Float.abs (avg.Aqp.value -. exact_avg) > 4. *. Float.max (avg.Aqp.ci_high -. avg.Aqp.value) 1e-9
      then Printf.printf "          (AVG estimate unusually far off)\n")
    [ 100; 400; 1_600; 6_400; 25_600 ];

  Printf.printf
    "\nThe estimate tightens as sqrt(r) while the sampling work grows only linearly in r\n\
     and never approaches the %d tuples of the full join.\n"
    n

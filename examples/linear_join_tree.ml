(* Sampling from a linear join tree (paper §7.2).

   A three-level chain orders ⋈ customers ⋈ regions is sampled three
   ways:
     1. naive        — compute the whole tree, reservoir-sample the root;
     2. pushdown     — paper §7.2: the top join is never computed; the
                       prefix pipeline streams into a Stream-Sample
                       biased by the statistics of the last relation;
     3. exact chain  — the full-pushdown extension: no join at all,
                       weights propagated right-to-left.

   All three must agree in distribution; they differ in work.

   Run with: dune exec examples/linear_join_tree.exe *)

open Rsj_relation
module Join_tree = Rsj_core.Join_tree
module Chain_sample = Rsj_core.Chain_sample
module Metrics = Rsj_exec.Metrics

let () =
  let rng = Rsj_util.Prng.create ~seed:31 () in
  let orders_schema = Schema.of_list [ ("order_id", Value.T_int); ("customer_id", Value.T_int) ] in
  let customers_schema =
    Schema.of_list [ ("customer_id", Value.T_int); ("region_id", Value.T_int) ]
  in
  let promos_schema = Schema.of_list [ ("region_id", Value.T_int); ("promo_id", Value.T_int) ] in

  let orders = Relation.create ~name:"orders" ~capacity:30_000 orders_schema in
  for o = 1 to 30_000 do
    Relation.append orders [| Value.Int o; Value.Int (1 + Rsj_util.Prng.int rng 2_000) |]
  done;
  let customers = Relation.create ~name:"customers" ~capacity:2_000 customers_schema in
  for c = 1 to 2_000 do
    (* regions are skewed: region r gets ~ 1/r of the customers *)
    let region = 1 + (Rsj_util.Prng.int rng 40 * Rsj_util.Prng.int rng 40 / 40) in
    Relation.append customers [| Value.Int c; Value.Int (min region 40) |]
  done;
  (* every region runs ~25 promotions: the top join is expansive, which
     is exactly when pushing the sample below it pays off *)
  let promos = Relation.create ~name:"promotions" ~capacity:1_000 promos_schema in
  for p = 1 to 1_000 do
    Relation.append promos [| Value.Int (1 + ((p - 1) mod 40)); Value.Int p |]
  done;

  let tree =
    {
      Join_tree.base = orders;
      steps =
        [
          { Join_tree.left_col = 1; right = customers; right_key = 0 };
          { Join_tree.left_col = 3; right = promos; right_key = 0 };
        ];
    }
  in
  (match Join_tree.validate tree with
  | Ok () -> ()
  | Error msg -> failwith msg);

  Format.printf "plan of the full tree:@.%a@." Rsj_exec.Plan.explain (Join_tree.to_plan tree);

  let r = 1_000 in
  let time f =
    let t0 = Rsj_obs.Clock.now_s () in
    let x = f () in
    (x, Rsj_obs.Clock.now_s () -. t0)
  in

  let m_naive = Metrics.create () in
  let (naive, t_naive) = time (fun () -> Join_tree.naive_sample rng ~metrics:m_naive ~r tree) in

  let m_push = Metrics.create () in
  let (push, t_push) = time (fun () -> Join_tree.pushdown_sample rng ~metrics:m_push ~r tree) in

  let spec =
    { Chain_sample.relations = [| orders; customers; promos |]; join_keys = [| (1, 0); (1, 0) |] }
  in
  let m_chain = Metrics.create () in
  let (chain, t_chain) =
    time (fun () ->
        let prepared = Chain_sample.prepare ~metrics:m_chain spec in
        Chain_sample.sample prepared rng ~metrics:m_chain ~r ())
  in

  Printf.printf "\n%-22s %8s %12s %12s\n" "method" "samples" "work" "seconds";
  let row name sample metrics seconds =
    Printf.printf "%-22s %8d %12d %12.4f\n" name (Array.length sample)
      (Metrics.total_work metrics) seconds
  in
  row "naive (full tree)" naive m_naive t_naive;
  row "pushdown (§7.2)" push m_push t_push;
  row "exact chain walk" chain m_chain t_chain;

  (* All three sample the same join: spot-check the mean region id. *)
  let mean_region sample =
    Array.fold_left (fun acc t -> acc +. float_of_int (Value.to_int_exn (Tuple.get t 4))) 0. sample
    /. float_of_int (Array.length sample)
  in
  Printf.printf "\nmean region id per method (should agree within noise): %.2f / %.2f / %.2f\n"
    (mean_region naive) (mean_region push) (mean_region chain)

(* The paper's §1 motivating OLAP scenario: "find total sales for all
   products in the North-West region between 1/1/98 and 1/15/98" — a
   star join between date, product and sales answered approximately
   from a sample of the query result.

   The star join date ⋈ sales ⋈ product is a linear chain with the
   fact table in the middle, so the exact chain sampler (the §7.2
   full-pushdown extension) draws uniform join tuples without ever
   computing the join; the AQP layer then turns the sample into
   estimates with confidence intervals.

   Run with: dune exec examples/olap_star_join.exe *)

open Rsj_relation
module Chain_sample = Rsj_core.Chain_sample
module Aqp = Rsj_core.Aqp

let () =
  let rng = Rsj_util.Prng.create ~seed:98 () in

  (* date(date_id, month): 360 days. *)
  let date_schema = Schema.of_list [ ("date_id", Value.T_int); ("month", Value.T_int) ] in
  let date = Relation.create ~name:"date" date_schema in
  for d = 1 to 360 do
    Relation.append date [| Value.Int d; Value.Int (1 + ((d - 1) / 30)) |]
  done;

  (* sales(date_id, product_id, amount): 200k facts, seasonal volume,
     skewed product popularity. *)
  let sales_schema =
    Schema.of_list
      [ ("date_id", Value.T_int); ("product_id", Value.T_int); ("amount", Value.T_float) ]
  in
  let product_popularity = Rsj_util.Dist.Zipf.create ~z:1. ~support:200 in
  let sales = Relation.create ~name:"sales" ~capacity:200_000 sales_schema in
  for _ = 1 to 200_000 do
    let d = 1 + Rsj_util.Prng.int rng 360 in
    let p = Rsj_util.Dist.Zipf.draw product_popularity rng in
    let amount = 5. +. Rsj_util.Prng.float rng 95. in
    Relation.append sales [| Value.Int d; Value.Int p; Value.Float amount |]
  done;

  (* product(product_id, category): 200 products in 8 categories. *)
  let product_schema = Schema.of_list [ ("product_id", Value.T_int); ("category", Value.T_int) ] in
  let product = Relation.create ~name:"product" product_schema in
  for p = 1 to 200 do
    Relation.append product [| Value.Int p; Value.Int (p mod 8) |]
  done;

  (* Chain: date.date_id = sales.date_id (cols 0, 0), then
     sales.product_id = product.product_id (cols 1, 0). *)
  let spec =
    { Chain_sample.relations = [| date; sales; product |]; join_keys = [| (0, 0); (1, 0) |] }
  in
  let prepared = Chain_sample.prepare spec in
  let n = int_of_float (Chain_sample.join_size prepared) in
  Printf.printf "star join |date ⋈ sales ⋈ product| = %d (never materialized)\n\n" n;

  (* The join row layout is date ++ sales ++ product:
     0:date_id 1:month 2:date_id 3:product_id 4:amount 5:product_id 6:category *)
  let col_month = 1 and col_amount = 4 and col_category = 6 in

  let r = 20_000 in
  let t0 = Rsj_obs.Clock.now_s () in
  let sample = Chain_sample.sample prepared rng ~r () in
  let sampling_time = Rsj_obs.Clock.now_s () -. t0 in

  (* Q1: total january sales (the paper's dashboard aggregate). *)
  let january t = Value.to_int_exn (Tuple.get t col_month) = 1 in
  let est = Aqp.sum_where ~sample ~n ~col:col_amount ~pred:january in

  (* Exact answer for comparison (this computes the join; the point of
     the library is that production queries would skip this). *)
  let t1 = Rsj_obs.Clock.now_s () in
  let exact = ref 0. in
  Relation.iter sales (fun row ->
      let d = Value.to_int_exn (Tuple.get row 0) in
      if d <= 30 then exact := !exact +. Value.to_float_exn (Tuple.get row 2));
  let exact_time = Rsj_obs.Clock.now_s () -. t1 in

  Printf.printf "Q1  SUM(amount) WHERE month = 1\n";
  Printf.printf "    estimate : %.0f   (95%% CI [%.0f, %.0f])\n" est.Aqp.value est.Aqp.ci_low
    est.Aqp.ci_high;
  Printf.printf "    exact    : %.0f\n" !exact;
  Printf.printf "    sample: %.3fs for %d draws vs %.3fs exact scan\n\n" sampling_time r exact_time;

  (* Q2: sales by category — the grouped estimate. *)
  Printf.printf "Q2  SUM(amount) GROUP BY category (top 5 of 8)\n";
  let groups = Aqp.group_sum ~sample ~n ~group_col:col_category ~value_col:col_amount in
  List.iteri
    (fun i (cat, (e : Aqp.estimate)) ->
      if i < 5 then
        Printf.printf "    category %s: %.0f ± %.0f\n" (Value.to_string cat) e.Aqp.value
          (e.Aqp.ci_high -. e.Aqp.value))
    groups

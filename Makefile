# Convenience targets around dune. Everything is reproducible from a
# seed; scale and repetitions come from environment knobs:
#
#   RSJ_N1, RSJ_N2     outer/inner relation sizes of the paper harness
#                      (defaults 10_000 / 40_000)
#   RSJ_DOMAIN         distinct join values (default 1_000)
#   RSJ_SCALE          multiplies n1/n2/domain (default 1)
#   RSJ_SEED           workload seed (default 0x5EED)
#   RSJ_REPS           median-of-k wall-clock repetitions (default 1)
#   RSJ_BENCH_QUOTA    seconds per bechamel micro-test (default 0.5)
#   RSJ_PAR_N1         outer size of the parallel/* benches
#                      (default 1_000_000)
#   RSJ_SKIP_MICRO=1   skip the bechamel micro-benchmarks
#   RSJ_SKIP_PAPER=1   skip the paper-harness figures
#   RSJ_ONLY_PARALLEL=1  run only the parallel/* benches
#   RSJ_CONF_TRIALS    samples per conformance cell (default 60;
#                      raise for a deep statistical sweep)
#   RSJ_DOMAINS        comma list of domain counts the parallel test
#                      suite exercises (default 1,2,4)
#   RSJ_CHUNK_SIZE     chunk-queue scheduler chunk size override
#   RSJ_TRACE          telemetry switch: RSJ_TRACE=1 (or =path.json)
#                      makes any rsj command record spans and write a
#                      Chrome Trace Event JSON on exit
#   RSJ_TRACE_CAP      per-domain trace ring capacity in events
#                      (default 32768; overflow counts as dropped)
#   RSJ_LOG            daemon request log: RSJ_LOG=path.ndjson appends
#                      one JSON line per served request (id, strategy,
#                      picker reason, cache hit/miss, deadline verdict,
#                      latency, allocated words)
#   RSJ_SLOW_MS        slow-request threshold for the exemplar counter
#                      and trace instants (default 100)
#   RSJ_QUALITY_WINDOW draws per online quality chi-square window
#                      (default 512)
#   RSJ_QUALITY_ALPHA  lifetime false-alert budget per quality stream
#                      (default 0.01, alpha-spending across windows)
#   RSJ_SERVE_BIAS=1   serve deliberately biased draws (negative
#                      control: the quality monitor must catch it)
#   RSJ_SERVE_DRAIN_LINGER_MS  keep the drain loop alive this long
#                      after SIGTERM so probes can see the 503
#                      /healthz verdict (default 0)

.PHONY: all build check test smoke bench bench-parallel bench-json pool conformance obs quality trace serve serve-test serve-bench clean

all: build

build:
	dune build

test:
	dune runtest

# check = the tier-1 gate: full build + unit tests.
check:
	dune build && dune runtest

# smoke = check + a tiny paper-harness run (seconds, not minutes).
smoke:
	dune build @smoke

# conformance = the statistical sweep: every strategy × semantics ×
# skew × domains against the exact join-distribution oracle. Fast by
# default; RSJ_CONF_TRIALS=500 (etc.) for a deep run.
conformance:
	dune build @conformance

# bench = the full harness: paper figures + bechamel micro-benchmarks
# (including the parallel/* speedup benches). Expect minutes; scale
# with the knobs above.
bench:
	dune exec bench/main.exe

# bench-parallel = the parallel runtime on its own: the equivalence
# tests at RSJ_DOMAINS ∈ {1, 2, 4} (@parallel-equiv), then only the
# parallel/* bechamel benches — per-strategy runs at d ∈ {1, 2, 4}
# plus the static-shards-vs-chunk-queue skew comparison. Speedups
# need real spare cores; on a single-core host expect overhead.
bench-parallel:
	dune build @parallel-equiv
	RSJ_ONLY_PARALLEL=1 dune exec bench/main.exe

# bench-json = machine-readable perf trajectory: strategy × domains
# median wall-times over the pooled runtime plus the domain-pool spawn
# counters, the dataplane (RSJ_DATAPLANE boxed-vs-int) section and the
# draw_plane (RSJ_DRAW cdf-vs-alias chain-walker kernel + allocation
# bound) section, written to BENCH_parallel.json. CI-friendly scale
# (RSJ_PAR_N1 default 100_000; RSJ_REPS medians, default 3).
bench-json:
	dune exec bench/main.exe -- --json

# pool = the Domain_pool lifecycle + bit-identity suite on its own
# (also runs inside `make test`).
pool:
	dune build @pool

# obs = the telemetry subsystem end to end: unit suite + CLI artifact
# round-trip (trace JSON and Prometheus text parsed back). Also runs
# inside `make test`.
obs:
	dune build @obs

# quality = the online statistical-quality monitor: unit FP/TP cells
# plus the served biased/unbiased verdicts (also runs inside
# `make test`).
quality:
	dune build @quality

# trace = record a parallel run and write trace.json for Perfetto
# (ui.perfetto.dev) or chrome://tracing. Pick the strategy with
# TRACE_STRATEGY (default naive); rsj trace --help for more knobs.
TRACE_STRATEGY ?= naive
trace:
	dune exec bin/rsj.exe -- trace $(TRACE_STRATEGY) --out trace.json --domains 4

# serve = run the sampling daemon on a local socket (SERVE_SOCKET to
# move it; ctrl-C drains, unlinks the socket and snapshots metrics).
SERVE_SOCKET ?= /tmp/rsj.sock
serve:
	dune exec bin/rsj.exe -- serve --socket $(SERVE_SOCKET)

# serve-test = the service tier on its own: the warm-cache unit suite
# plus the live-daemon round trip (also runs inside `make test`).
serve-test:
	dune build @serve @serve-hygiene

# serve-bench = the cold-vs-warm load harness: one-shot `rsj sample`
# subprocesses vs the same requests against a warm daemon, written to
# BENCH_serve.json (p50/p99/qps; RSJ_SERVE_SOAK_SECONDS adds a soak
# phase; SERVE_CLIENTS concurrent connections, default 4).
SERVE_CLIENTS ?= 4
serve-bench:
	dune exec bin/rsj.exe -- bench-serve --clients $(SERVE_CLIENTS) --out BENCH_serve.json

clean:
	dune clean

examples/sql_repl.ml: Array Format List Printf Rsj_exec Rsj_relation Rsj_sql Rsj_workload String Unix

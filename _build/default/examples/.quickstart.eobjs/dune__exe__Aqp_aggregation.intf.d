examples/aqp_aggregation.mli:

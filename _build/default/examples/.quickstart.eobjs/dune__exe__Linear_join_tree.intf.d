examples/linear_join_tree.mli:

examples/disk_sampling.mli:

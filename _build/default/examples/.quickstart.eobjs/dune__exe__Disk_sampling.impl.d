examples/disk_sampling.ml: Array Filename Fun Printf Relation Rsj_core Rsj_exec Rsj_index Rsj_relation Rsj_stats Rsj_storage Rsj_util Rsj_workload Schema Sys Value

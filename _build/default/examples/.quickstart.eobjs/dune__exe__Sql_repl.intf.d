examples/sql_repl.mli:

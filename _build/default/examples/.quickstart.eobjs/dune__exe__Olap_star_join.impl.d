examples/olap_star_join.ml: List Printf Relation Rsj_core Rsj_relation Rsj_util Schema Tuple Unix Value

examples/quickstart.mli:

examples/olap_star_join.mli:

examples/quickstart.ml: Array List Printf Relation Rsj_core Rsj_exec Rsj_relation Rsj_util Schema Tuple Value

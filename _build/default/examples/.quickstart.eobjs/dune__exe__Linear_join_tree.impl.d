examples/linear_join_tree.ml: Array Format Printf Relation Rsj_core Rsj_exec Rsj_relation Rsj_util Schema Tuple Unix Value

examples/aqp_aggregation.ml: Float List Printf Relation Rsj_core Rsj_exec Rsj_relation Rsj_workload Stream0 Tuple Unix Value

(* Sampling economics on real disk pages.

   Writes a Zipfian table to an on-disk heap file, then compares three
   ways of drawing 200 tuples with-replacement, counting buffer-pool
   misses (actual page reads):

     1. full scan + reservoir (what Naive does to its input);
     2. position-based block sampling (the paper's §4.1 skipping
        remark: draw the positions first, read only their pages);
     3. Stream-Sample over the scanned file joined against an in-memory
        dimension — showing the sampling operators run unchanged over
        disk-resident inputs.

   Run with: dune exec examples/disk_sampling.exe *)

open Rsj_relation
module Heap_file = Rsj_storage.Heap_file
module Buffer_pool = Rsj_storage.Buffer_pool
module Zipf_tables = Rsj_workload.Zipf_tables

let () =
  let rng = Rsj_util.Prng.create ~seed:77 () in
  let rel = Zipf_tables.make ~seed:77 ~name:"facts" ~rows:50_000 ~z:1. ~domain:2_000 () in
  let path = Filename.temp_file "rsj_disk_demo" ".heap" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () ->
      let hf = Heap_file.of_relation ~path ~page_size:8192 rel in
      Printf.printf "heap file: %d tuples in %d pages of %d bytes (%s)\n\n"
        (Heap_file.tuple_count hf)
        (Heap_file.data_page_count hf)
        (Heap_file.page_size hf) path;

      let r = 200 in

      (* 1. scan + reservoir *)
      let pool = Buffer_pool.create ~capacity:4096 in
      let s1 = Rsj_core.Black_box.u2 rng ~r (Heap_file.scan hf pool) in
      Printf.printf "%-34s %4d tuples, %5d page reads\n" "scan + reservoir (U2)"
        (Array.length s1)
        (Buffer_pool.stats pool).Buffer_pool.misses;

      (* 2. block sampling: draw positions, then touch only their pages.
         The page directory is built once with a throwaway pool so the
         measurement pool is cold. *)
      ignore (Heap_file.fetch hf (Buffer_pool.create ~capacity:4096) 0);
      let pool2 = Buffer_pool.create ~capacity:4096 in
      let n = Heap_file.tuple_count hf in
      let positions = Rsj_core.Block_sample.wr_positions rng ~n ~r in
      let s2 = Array.map (Heap_file.fetch hf pool2) positions in
      Printf.printf "%-34s %4d tuples, %5d page reads\n" "block sampling (positions first)"
        (Array.length s2)
        (Buffer_pool.stats pool2).Buffer_pool.misses;

      (* 3. Stream-Sample with the heap file as the streaming R1 *)
      let dim_schema = Schema.of_list [ ("col2", Value.T_int); ("label", Value.T_str) ] in
      let dim = Relation.create ~name:"dim" ~capacity:2_000 dim_schema in
      for v = 1 to 2_000 do
        Relation.append dim [| Value.Int v; Value.str (Printf.sprintf "v%d" v) |]
      done;
      let idx = Rsj_index.Hash_index.build dim ~key:0 in
      let stats = Rsj_stats.Frequency.of_relation dim ~key:0 in
      let pool3 = Buffer_pool.create ~capacity:4096 in
      let metrics = Rsj_exec.Metrics.create () in
      let sample =
        Rsj_core.Stream_sample.sample rng ~metrics ~r
          ~left:(Heap_file.scan hf pool3)
          ~left_key:Zipf_tables.col2 ~right_index:idx ~right_stats:stats ()
      in
      Printf.printf "%-34s %4d tuples, %5d page reads, %d index probes\n\n"
        "stream-sample of disk ⋈ dim" (Array.length sample)
        (Buffer_pool.stats pool3).Buffer_pool.misses
        metrics.Rsj_exec.Metrics.index_probes;

      Printf.printf
        "Block sampling touches ~%d of %d pages; joining and sampling never needed the\n\
         relation in memory.\n"
        (Buffer_pool.stats pool2).Buffer_pool.misses
        (Heap_file.data_page_count hf);
      Heap_file.close hf)

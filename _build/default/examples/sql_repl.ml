(* A miniature SQL shell over generated Zipfian tables, demonstrating
   the paper's proposal of SAMPLE as a language primitive.

   Two tables (t1: 5 000 rows z=1, t2: 20 000 rows z=2, domain 500) are
   generated at startup. Reads one query per line; `\q` quits;
   `\explain <query>` shows the plan. When run non-interactively
   (stdin closed), it executes a scripted demo session instead.

   Run with:  dune exec examples/sql_repl.exe
   Try:       select * from t1, t2 where t1.col2 = t2.col2 sample 5 using stream
              select t1.col2, count(rid) from t1, t2
                where t1.col2 = t2.col2 sample 2000 using fps group by t1.col2 limit 5 *)

module Zipf_tables = Rsj_workload.Zipf_tables
module Engine = Rsj_sql.Engine

let catalog () =
  [
    ("t1", Zipf_tables.make ~seed:11 ~name:"t1" ~rows:5_000 ~z:1. ~domain:500 ());
    ("t2", Zipf_tables.make ~seed:12 ~name:"t2" ~rows:20_000 ~z:2. ~domain:500 ());
  ]

let print_result (r : Engine.query_result) =
  let cols =
    Array.to_list (Rsj_relation.Schema.columns r.Engine.schema)
    |> List.map (fun (c : Rsj_relation.Schema.column) -> c.name)
  in
  print_endline (String.concat " | " cols);
  let shown = ref 0 in
  List.iter
    (fun row ->
      if !shown < 20 then begin
        print_endline (Rsj_relation.Tuple.to_string row);
        incr shown
      end)
    r.Engine.rows;
  let total = List.length r.Engine.rows in
  if total > 20 then Printf.printf "... (%d more rows)\n" (total - 20);
  Printf.printf "-- %d rows, work=%d\n%!" total
    (Rsj_exec.Metrics.total_work r.Engine.metrics)

let execute catalog line =
  let line = String.trim line in
  if line = "" then ()
  else if line = "\\q" then raise Exit
  else begin
    let explain, query_text =
      if String.length line > 9 && String.sub line 0 9 = "\\explain " then
        (true, String.sub line 9 (String.length line - 9))
      else (false, line)
    in
    match Engine.run catalog query_text with
    | Error msg -> Printf.printf "error: %s\n%!" msg
    | Ok r ->
        if explain then Format.printf "%a@." Rsj_exec.Plan.explain r.Engine.plan
        else print_result r
  end

let demo_session =
  [
    "select count(*) from t1";
    "select * from t1, t2 where t1.col2 = t2.col2 sample 5 using stream";
    "select t1.col2, count(*) from t1, t2 where t1.col2 = t2.col2 sample 2000 using fps \
     group by t1.col2 limit 5";
    "\\explain select * from t1, t2 where t1.col2 = t2.col2 sample 3";
    "select max(col2) from t1 where col2 < 100";
  ]

let () =
  let catalog = catalog () in
  print_endline "rsj SQL shell — tables t1 (5k rows, z=1) and t2 (20k rows, z=2) are loaded.";
  print_endline "Enter a query per line; \\explain <query> shows the plan; \\q quits.";
  let interactive = Unix.isatty Unix.stdin in
  try
    if interactive then
      while true do
        print_string "rsj> ";
        execute catalog (input_line stdin)
      done
    else begin
      (* Scripted demo: run stdin lines if any, else the canned session. *)
      let ran = ref false in
      (try
         while true do
           let line = input_line stdin in
           ran := true;
           Printf.printf "rsj> %s\n" line;
           execute catalog line
         done
       with End_of_file -> ());
      if not !ran then
        List.iter
          (fun q ->
            Printf.printf "rsj> %s\n" q;
            execute catalog q)
          demo_session
    end
  with Exit | End_of_file -> print_endline "bye"

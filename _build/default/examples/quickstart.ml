(* Quickstart: sample the result of a join without computing the join.

   Build two relations, ask for a 10-tuple with-replacement sample of
   their equi-join with three different strategies, and show what each
   strategy had to touch to produce it.

   Run with: dune exec examples/quickstart.exe *)

open Rsj_relation
module Strategy = Rsj_core.Strategy
module Metrics = Rsj_exec.Metrics

let () =
  (* orders(order_id, customer_id); customers(customer_id, city) —
     customer_id is the join attribute in both. *)
  let orders_schema = Schema.of_list [ ("order_id", Value.T_int); ("customer_id", Value.T_int) ] in
  let customers_schema = Schema.of_list [ ("customer_id", Value.T_int); ("city", Value.T_str) ] in
  let rng = Rsj_util.Prng.create ~seed:2026 () in
  let orders = Relation.create ~name:"orders" orders_schema in
  for order_id = 1 to 5_000 do
    (* a few customers place most orders — the skew that makes naive
       join sampling wasteful *)
    let customer_id = 1 + (Rsj_util.Prng.int rng 40 * Rsj_util.Prng.int rng 25 / 24) in
    Relation.append orders [| Value.Int order_id; Value.Int customer_id |]
  done;
  let customers = Relation.create ~name:"customers" customers_schema in
  for customer_id = 1 to 1_000 do
    let city = Printf.sprintf "city-%d" (customer_id mod 17) in
    Relation.append customers [| Value.Int customer_id; Value.str city |]
  done;

  let env =
    Strategy.make_env ~seed:7
      ~left:orders ~right:customers
      ~left_key:(Schema.column_index orders_schema "customer_id")
      ~right_key:(Schema.column_index customers_schema "customer_id")
      ()
  in
  Printf.printf "join size |orders ⋈ customers| = %d\n\n" (Strategy.env_join_size env);

  List.iter
    (fun strategy ->
      let result = Strategy.run env strategy ~r:10 in
      Printf.printf "%s (%.4fs, %d intermediate join tuples, %d index probes):\n"
        (Strategy.name strategy) result.Strategy.elapsed_seconds
        result.Strategy.metrics.Metrics.join_output_tuples
        result.Strategy.metrics.Metrics.index_probes;
      Array.iter
        (fun t -> Printf.printf "  %s\n" (Tuple.to_string t))
        result.Strategy.sample;
      print_newline ())
    [ Strategy.Naive; Strategy.Stream; Strategy.Frequency_partition ]

module Report = Rsj_harness.Report
module Experiments = Rsj_harness.Experiments

let render t = Format.asprintf "%a" Report.render t

let contains ~needle haystack =
  let nl = String.length needle and hl = String.length haystack in
  let rec go i = i + nl <= hl && (String.sub haystack i nl = needle || go (i + 1)) in
  nl = 0 || go 0

let test_report_renders () =
  let t =
    {
      Report.title = "demo";
      header = [ "x"; "value" ];
      rows = [ [ "a"; "1" ]; [ "long-label"; "2" ] ];
    }
  in
  let s = render t in
  Alcotest.(check bool) "title" true (contains ~needle:"== demo ==" s);
  Alcotest.(check bool) "cells" true (contains ~needle:"long-label" s);
  Alcotest.(check bool) "aligned header" true (contains ~needle:"| x " s)

let test_report_rejects_ragged_rows () =
  let t = { Report.title = "bad"; header = [ "a"; "b" ]; rows = [ [ "only-one" ] ] } in
  Alcotest.(check bool) "raises" true
    (try
       ignore (render t);
       false
     with Invalid_argument _ -> true)

let test_cells () =
  Alcotest.(check string) "pct" "42.5%" (Report.pct 42.5);
  Alcotest.(check string) "pct nan" "-" (Report.pct nan);
  Alcotest.(check string) "float nan" "-" (Report.float_cell nan);
  Alcotest.(check string) "float large" "12345" (Report.float_cell 12345.2)

let test_table1_report () =
  let t = Experiments.table1 () in
  Alcotest.(check int) "8 strategies" 8 (List.length t.Report.rows);
  let s = render t in
  Alcotest.(check bool) "mentions stream" true (contains ~needle:"Stream-Sample" s)

let tiny_config =
  {
    Experiments.scale = { Rsj_workload.Zipf_tables.Scale.n1 = 150; n2 = 600; domain = 40; seed = 3 };
    repetitions = 1;
  }

let test_figure_a_structure () =
  let fig = Experiments.figure_a tiny_config in
  Alcotest.(check string) "id" "A" fig.Experiments.id;
  Alcotest.(check int) "five fractions" 5 (List.length fig.Experiments.points);
  List.iter
    (fun (p : Experiments.sweep_point) ->
      Alcotest.(check int) "three strategies" 3 (List.length p.Experiments.cells);
      Alcotest.(check bool) "naive work positive" true (p.Experiments.naive_work > 0);
      List.iter
        (fun (c : Experiments.cell) ->
          Alcotest.(check bool) "work pct positive" true (c.Experiments.work_pct > 0.);
          Alcotest.(check bool) "sample size positive" true (c.Experiments.sample_size > 0))
        p.Experiments.cells)
    fig.Experiments.points

let test_figure_renders () =
  let fig = Experiments.figure_c tiny_config in
  let s = Format.asprintf "%a" Experiments.render_figure fig in
  Alcotest.(check bool) "two tables" true
    (contains ~needle:"running time vs Naive" s && contains ~needle:"work model vs Naive" s);
  Alcotest.(check bool) "x axis labels" true (contains ~needle:"z2=3" s)

let test_figure_f_columns () =
  let fig = Experiments.figure_f tiny_config in
  Alcotest.(check int) "seven thresholds" 7 (List.length fig.Experiments.points);
  let first = List.hd fig.Experiments.points in
  Alcotest.(check int) "three z pairs" 3 (List.length first.Experiments.cells)

let test_stream_beats_naive_work_on_tiny () =
  (* The core claim at a glance: Stream-Sample's work is below Naive
     on every figure-A point at small fractions. *)
  let fig = Experiments.figure_a tiny_config in
  let first_point = List.hd fig.Experiments.points in
  let stream =
    List.find (fun (c : Experiments.cell) -> c.Experiments.label = "Stream-Sample")
      first_point.Experiments.cells
  in
  Alcotest.(check bool)
    (Printf.sprintf "stream work %.1f%% < 100%%" stream.Experiments.work_pct)
    true
    (stream.Experiments.work_pct < 100.)

let test_validate_uniformity_report () =
  let t = Experiments.validate_uniformity ~trials:40 () in
  Alcotest.(check int) "8 rows" 8 (List.length t.Report.rows);
  List.iter
    (fun row ->
      match List.rev row with
      | verdict :: _ -> Alcotest.(check string) "all pass" "PASS" verdict
      | [] -> Alcotest.fail "empty row")
    t.Report.rows

let test_negative_demo_report () =
  let t = Experiments.negative_demo () in
  let s = render t in
  Alcotest.(check bool) "thm10 rows" true (contains ~needle:"Thm 10" s);
  Alcotest.(check bool) "thm12 rows" true (contains ~needle:"infeasible" s)

let test_config_from_env () =
  let cfg = Experiments.config_from_env () in
  Alcotest.(check bool) "reps >= 1" true (cfg.Experiments.repetitions >= 1)

let suite =
  [
    Alcotest.test_case "report renders" `Quick test_report_renders;
    Alcotest.test_case "report rejects ragged rows" `Quick test_report_rejects_ragged_rows;
    Alcotest.test_case "cell formatting" `Quick test_cells;
    Alcotest.test_case "table 1 report" `Quick test_table1_report;
    Alcotest.test_case "figure A structure" `Slow test_figure_a_structure;
    Alcotest.test_case "figure rendering" `Slow test_figure_renders;
    Alcotest.test_case "figure F columns" `Slow test_figure_f_columns;
    Alcotest.test_case "stream-sample beats naive (work)" `Slow test_stream_beats_naive_work_on_tiny;
    Alcotest.test_case "uniformity validation report" `Slow test_validate_uniformity_report;
    Alcotest.test_case "negative-results report" `Quick test_negative_demo_report;
    Alcotest.test_case "config from env" `Quick test_config_from_env;
  ]

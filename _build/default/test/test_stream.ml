open Rsj_relation

let il = Alcotest.(list int)

let test_of_list_roundtrip () =
  Alcotest.(check il) "roundtrip" [ 1; 2; 3 ] (Stream0.to_list (Stream0.of_list [ 1; 2; 3 ]));
  Alcotest.(check il) "empty" [] (Stream0.to_list (Stream0.empty ()))

let test_single_pass () =
  let s = Stream0.of_list [ 1; 2 ] in
  ignore (Stream0.to_list s);
  Alcotest.(check bool) "drained stays drained" true (Stream0.next s = None)

let test_close_is_permanent_and_idempotent () =
  let closed = ref 0 in
  let s = Stream0.make ~next:(fun () -> Some 1) ~close:(fun () -> incr closed) () in
  Alcotest.(check bool) "produces" true (Stream0.next s = Some 1);
  Stream0.close s;
  Stream0.close s;
  Alcotest.(check int) "close ran once" 1 !closed;
  Alcotest.(check bool) "closed yields None" true (Stream0.next s = None)

let test_close_runs_on_natural_exhaustion () =
  let closed = ref false in
  let items = ref [ 1 ] in
  let s =
    Stream0.make
      ~next:(fun () ->
        match !items with
        | [] -> None
        | x :: tl ->
            items := tl;
            Some x)
      ~close:(fun () -> closed := true)
      ()
  in
  ignore (Stream0.to_list s);
  Alcotest.(check bool) "closed" true !closed

let test_map_filter () =
  let s = Stream0.of_list [ 1; 2; 3; 4 ] in
  let out = Stream0.to_list (Stream0.map (( * ) 10) (Stream0.filter (fun x -> x mod 2 = 0) s)) in
  Alcotest.(check il) "filter then map" [ 20; 40 ] out

let test_filter_map () =
  let out =
    Stream0.to_list
      (Stream0.filter_map
         (fun x -> if x > 2 then Some (x + 100) else None)
         (Stream0.of_list [ 1; 2; 3; 4 ]))
  in
  Alcotest.(check il) "filter_map" [ 103; 104 ] out

let test_concat_map () =
  let out =
    Stream0.to_list
      (Stream0.concat_map (fun x -> Stream0.of_list [ x; x * 10 ]) (Stream0.of_list [ 1; 2 ]))
  in
  Alcotest.(check il) "flattened in order" [ 1; 10; 2; 20 ] out

let test_concat_map_empty_inner () =
  let out =
    Stream0.to_list
      (Stream0.concat_map
         (fun x -> if x = 2 then Stream0.of_list [ 9 ] else Stream0.empty ())
         (Stream0.of_list [ 1; 2; 3 ]))
  in
  Alcotest.(check il) "skips empty inners" [ 9 ] out

let test_append () =
  let out = Stream0.to_list (Stream0.append (Stream0.of_list [ 1 ]) (Stream0.of_list [ 2; 3 ])) in
  Alcotest.(check il) "append" [ 1; 2; 3 ] out

let test_take () =
  Alcotest.(check il) "take 2" [ 1; 2 ] (Stream0.to_list (Stream0.take 2 (Stream0.of_list [ 1; 2; 3 ])));
  Alcotest.(check il) "take more than available" [ 1 ]
    (Stream0.to_list (Stream0.take 5 (Stream0.of_list [ 1 ])));
  Alcotest.(check il) "take 0" [] (Stream0.to_list (Stream0.take 0 (Stream0.of_list [ 1 ])))

let test_take_closes_source () =
  let closed = ref false in
  let i = ref 0 in
  let src =
    Stream0.make
      ~next:(fun () ->
        incr i;
        Some !i)
      ~close:(fun () -> closed := true)
      ()
  in
  ignore (Stream0.to_list (Stream0.take 3 src));
  Alcotest.(check bool) "source closed after take" true !closed

let test_fold_iter_length () =
  Alcotest.(check int) "fold sum" 6 (Stream0.fold ( + ) 0 (Stream0.of_list [ 1; 2; 3 ]));
  Alcotest.(check int) "length" 4 (Stream0.length (Stream0.of_array [| 0; 0; 0; 0 |]));
  let acc = ref [] in
  Stream0.iter (fun x -> acc := x :: !acc) (Stream0.of_list [ 1; 2 ]);
  Alcotest.(check il) "iter order" [ 2; 1 ] !acc

let test_of_seq () =
  let out = Stream0.to_list (Stream0.of_seq (Seq.init 4 Fun.id)) in
  Alcotest.(check il) "of_seq" [ 0; 1; 2; 3 ] out

let test_tee_count () =
  let s, count = Stream0.tee_count (Stream0.of_list [ 1; 2; 3 ]) in
  Alcotest.(check int) "before" 0 (count ());
  ignore (Stream0.next s);
  Alcotest.(check int) "after one" 1 (count ());
  ignore (Stream0.to_list s);
  Alcotest.(check int) "after drain" 3 (count ())

let test_on_element () =
  let seen = ref [] in
  let s = Stream0.on_element (fun x -> seen := x :: !seen) (Stream0.of_list [ 1; 2 ]) in
  ignore (Stream0.to_list s);
  Alcotest.(check il) "taps every element" [ 2; 1 ] !seen

let suite =
  [
    Alcotest.test_case "of_list / to_list" `Quick test_of_list_roundtrip;
    Alcotest.test_case "single pass semantics" `Quick test_single_pass;
    Alcotest.test_case "close permanent and idempotent" `Quick test_close_is_permanent_and_idempotent;
    Alcotest.test_case "close on natural exhaustion" `Quick test_close_runs_on_natural_exhaustion;
    Alcotest.test_case "map / filter" `Quick test_map_filter;
    Alcotest.test_case "filter_map" `Quick test_filter_map;
    Alcotest.test_case "concat_map order" `Quick test_concat_map;
    Alcotest.test_case "concat_map with empty inners" `Quick test_concat_map_empty_inner;
    Alcotest.test_case "append" `Quick test_append;
    Alcotest.test_case "take" `Quick test_take;
    Alcotest.test_case "take closes its source" `Quick test_take_closes_source;
    Alcotest.test_case "fold / iter / length" `Quick test_fold_iter_length;
    Alcotest.test_case "of_seq" `Quick test_of_seq;
    Alcotest.test_case "tee_count" `Quick test_tee_count;
    Alcotest.test_case "on_element tap" `Quick test_on_element;
  ]

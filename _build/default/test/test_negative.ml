open Rsj_relation
open Rsj_core
module Frequency = Rsj_stats.Frequency
module Zipf_tables = Rsj_workload.Zipf_tables

let test_example1_shape () =
  let r1, r2 = Negative.example1 ~k:10 in
  Alcotest.(check int) "|R1| = k+1" 11 (Relation.cardinality r1);
  Alcotest.(check int) "|R2| = k+1" 11 (Relation.cardinality r2);
  let m1 = Frequency.of_relation r1 ~key:0 in
  let m2 = Frequency.of_relation r2 ~key:0 in
  Alcotest.(check int) "m1(a1) = 1" 1 (Frequency.frequency m1 (Value.Int 1));
  Alcotest.(check int) "m1(a2) = k" 10 (Frequency.frequency m1 (Value.Int 2));
  Alcotest.(check int) "m2(a1) = k" 10 (Frequency.frequency m2 (Value.Int 1));
  Alcotest.(check int) "m2(a2) = 1" 1 (Frequency.frequency m2 (Value.Int 2));
  Alcotest.(check int) "|J| = 2k" 20 (Frequency.join_size m1 m2)

let test_example1_oblivious_sampling_fails () =
  (* Monte-Carlo demonstration of Theorem 10: at f1 = f2 = 5% the join
     of the samples is empty most of the time although |J| = 2k. *)
  let rng = Rsj_util.Prng.create ~seed:0xE1 () in
  let trials = 400 in
  let empty = ref 0 in
  for _ = 1 to trials do
    if Negative.oblivious_join_trial rng ~k:50 ~f1:0.05 ~f2:0.05 = 0 then incr empty
  done;
  let rate = float_of_int !empty /. float_of_int trials in
  let predicted = Negative.oblivious_join_empty_prob ~f1:0.05 ~f2:0.05 in
  Alcotest.(check bool)
    (Printf.sprintf "empty rate %.3f ~ %.3f" rate predicted)
    true
    (Float.abs (rate -. predicted) < 0.06);
  Alcotest.(check bool) "mostly empty" true (rate > 0.8)

let test_example1_stream_sample_succeeds () =
  (* The same adversarial instance is easy for the non-oblivious
     strategies: Stream-Sample samples it uniformly. *)
  let r1, r2 = Negative.example1 ~k:8 in
  let env = Strategy.make_env ~left:r1 ~right:r2 ~left_key:0 ~right_key:0 () in
  let plan =
    Rsj_exec.Plan.Join
      {
        Rsj_exec.Plan.algorithm = Rsj_exec.Plan.Hash;
        left = Rsj_exec.Plan.Scan r1;
        right = Rsj_exec.Plan.Scan r2;
        left_key = 0;
        right_key = 0;
      }
  in
  let universe = Array.of_list (Rsj_exec.Plan.collect plan) in
  Alcotest.(check int) "universe 2k" 16 (Array.length universe);
  let report =
    Negative.uniformity_check ~trials:300 ~universe ~draw:(fun () ->
        (Strategy.run env Strategy.Stream ~r:8).sample)
  in
  Alcotest.(check bool)
    (Printf.sprintf "stream-sample handles example 1 (p=%.5f)" report.chi_square.p_value)
    true
    (report.chi_square.p_value > 0.001)

let test_thm11 () =
  (* Uniform case m1 = m2 = 10; low f regime: f <= 1/10. *)
  Alcotest.(check bool) "satisfies" true
    (Negative.thm11_feasible ~m1:10 ~m2:10 ~f:0.05 ~f1:0.5 ~f2:0.5);
  Alcotest.(check bool) "f1 too small" false
    (Negative.thm11_feasible ~m1:10 ~m2:10 ~f:0.05 ~f1:0.1 ~f2:0.5);
  (* High f regime: f >= 1/m' forces both halves. *)
  Alcotest.(check bool) "needs 1/2" false
    (Negative.thm11_feasible ~m1:2 ~m2:2 ~f:0.9 ~f1:0.4 ~f2:0.9);
  Alcotest.(check bool) "1/2 suffices for that clause" true
    (Negative.thm11_feasible ~m1:2 ~m2:2 ~f:0.9 ~f1:0.95 ~f2:0.95)

let test_thm12 () =
  Alcotest.(check bool) "feasible" true (Negative.thm12_feasible ~f:0.01 ~f1:0.1 ~f2:0.1);
  Alcotest.(check bool) "infeasible" false
    (Negative.thm12_feasible ~f:0.01 ~f1:0.05 ~f2:0.1);
  Alcotest.(check (float 1e-9)) "symmetric minimum" 0.1
    (Negative.min_symmetric_fraction ~f:0.01)

let test_uniformity_check_rejects_alien_tuples () =
  let universe = [| Tuple.of_ints [ 1 ]; Tuple.of_ints [ 2 ] |] in
  Alcotest.(check bool) "alien tuple detected" true
    (try
       ignore
         (Negative.uniformity_check ~trials:1 ~universe ~draw:(fun () ->
              [| Tuple.of_ints [ 99 ] |]));
       false
     with Invalid_argument _ -> true)

let test_uniformity_check_detects_bias () =
  (* A deliberately biased sampler must fail the chi-square. *)
  let universe = Array.init 10 (fun i -> Tuple.of_ints [ i ]) in
  let rng = Rsj_util.Prng.create ~seed:0xBAD () in
  let report =
    Negative.uniformity_check ~trials:300 ~universe ~draw:(fun () ->
        (* 90% of draws land on cell 0. *)
        Array.init 5 (fun _ ->
            if Rsj_util.Prng.bernoulli rng 0.9 then universe.(0)
            else universe.(Rsj_util.Prng.int rng 10)))
  in
  Alcotest.(check bool) "bias detected" true (report.chi_square.p_value < 1e-6)

let test_example1_invalid_k () =
  Alcotest.check_raises "k < 1" (Invalid_argument "Negative.example1: k < 1") (fun () ->
      ignore (Negative.example1 ~k:0))

let suite =
  [
    Alcotest.test_case "example 1 construction" `Quick test_example1_shape;
    Alcotest.test_case "theorem 10: oblivious sampling fails" `Slow
      test_example1_oblivious_sampling_fails;
    Alcotest.test_case "non-oblivious sampling handles example 1" `Slow
      test_example1_stream_sample_succeeds;
    Alcotest.test_case "theorem 11 bounds" `Quick test_thm11;
    Alcotest.test_case "theorem 12 bound" `Quick test_thm12;
    Alcotest.test_case "uniformity check rejects non-join tuples" `Quick
      test_uniformity_check_rejects_alien_tuples;
    Alcotest.test_case "uniformity check detects bias" `Quick test_uniformity_check_detects_bias;
    Alcotest.test_case "example 1 validates k" `Quick test_example1_invalid_k;
  ]

open Rsj_relation
module Zipf_tables = Rsj_workload.Zipf_tables
module Frequency = Rsj_stats.Frequency

let test_table_shape () =
  let t = Zipf_tables.make ~seed:1 ~name:"t" ~rows:500 ~z:1. ~domain:50 () in
  Alcotest.(check int) "rows" 500 (Relation.cardinality t);
  Alcotest.(check bool) "schema" true (Schema.equal (Relation.schema t) Zipf_tables.schema);
  Relation.iter t (fun row ->
      let rid = Value.to_int_exn (Tuple.get row Zipf_tables.col_rid) in
      let v = Value.to_int_exn (Tuple.get row Zipf_tables.col2) in
      let pad = Value.to_str_exn (Tuple.get row Zipf_tables.col_pad) in
      Alcotest.(check bool) "rid in range" true (rid >= 1 && rid <= 500);
      Alcotest.(check bool) "col2 in domain" true (v >= 1 && v <= 50);
      Alcotest.(check int) "pad is 32 bytes" 32 (String.length pad))

let test_rids_unique () =
  let t = Zipf_tables.make ~seed:2 ~name:"t" ~rows:1000 ~z:0. ~domain:10 () in
  let seen = Hashtbl.create 1024 in
  Relation.iter t (fun row ->
      let rid = Value.to_int_exn (Tuple.get row Zipf_tables.col_rid) in
      Alcotest.(check bool) "unique rid" false (Hashtbl.mem seen rid);
      Hashtbl.replace seen rid ())

let test_skew_increases_with_z () =
  let max_freq z =
    let t = Zipf_tables.make ~seed:3 ~name:"t" ~rows:2000 ~z ~domain:100 () in
    Frequency.max_frequency (Frequency.of_relation t ~key:Zipf_tables.col2)
  in
  let f0 = max_freq 0. and f1 = max_freq 1. and f3 = max_freq 3. in
  Alcotest.(check bool) "z=1 more skewed than z=0" true (f1 > f0);
  Alcotest.(check bool) "z=3 more skewed than z=1" true (f3 > f1);
  Alcotest.(check bool) "z=3 dominated by top value" true (f3 > 1500)

let test_hot_values_aligned () =
  (* Rank order is shared: the most frequent value must be value 1 in
     every skewed table (the paper's alignment requirement). *)
  List.iter
    (fun seed ->
      let t = Zipf_tables.make ~seed ~name:"t" ~rows:3000 ~z:2. ~domain:50 () in
      let f = Frequency.of_relation t ~key:Zipf_tables.col2 in
      match Frequency.to_assoc f with
      | (v, _) :: _ -> Alcotest.(check int) "hottest value is 1" 1 (Value.to_int_exn v)
      | [] -> Alcotest.fail "empty table")
    [ 1; 2; 3 ]

let test_make_pair () =
  let p = Zipf_tables.make_pair ~seed:4 ~n1:100 ~n2:300 ~z1:0. ~z2:2. ~domain:20 () in
  Alcotest.(check int) "outer rows" 100 (Relation.cardinality p.outer);
  Alcotest.(check int) "inner rows" 300 (Relation.cardinality p.inner);
  Alcotest.(check bool) "join nonempty" true (Zipf_tables.join_size p > 0)

let test_pair_reproducible_and_decorrelated () =
  let p1 = Zipf_tables.make_pair ~seed:5 ~n1:50 ~n2:50 ~z1:1. ~z2:1. ~domain:10 () in
  let p2 = Zipf_tables.make_pair ~seed:5 ~n1:50 ~n2:50 ~z1:1. ~z2:1. ~domain:10 () in
  Relation.iteri p1.outer (fun i t ->
      Alcotest.(check bool) "reproducible" true (Tuple.equal t (Relation.get p2.outer i)));
  (* outer and inner differ (different derived seeds) *)
  let same = ref true in
  Relation.iteri p1.outer (fun i t ->
      if i < 50 && not (Tuple.equal t (Relation.get p1.inner i)) then same := false);
  Alcotest.(check bool) "outer and inner decorrelated" false !same

let test_generator_matches_zipf_pmf () =
  let t = Zipf_tables.make ~seed:6 ~name:"t" ~rows:20_000 ~z:1. ~domain:10 () in
  let f = Frequency.of_relation t ~key:Zipf_tables.col2 in
  let zipf = Rsj_util.Dist.Zipf.create ~z:1. ~support:10 in
  let observed = Array.init 10 (fun i -> Frequency.frequency f (Value.Int (i + 1))) in
  let expected = Rsj_util.Dist.Zipf.expected_counts zipf ~n:20_000 in
  let res = Rsj_util.Stats_math.chi_square_test ~expected ~observed in
  Alcotest.(check bool)
    (Printf.sprintf "zipf generator p=%.5f" res.p_value)
    true (res.p_value > 0.001)

let test_scale_defaults () =
  let s = Zipf_tables.Scale.default in
  Alcotest.(check int) "n1" 3_000 s.n1;
  Alcotest.(check int) "n2" 12_000 s.n2;
  Alcotest.(check bool) "from_env without overrides" true
    (try
       ignore (Zipf_tables.Scale.from_env ());
       true
     with _ -> false)

let test_invalid_args () =
  Alcotest.(check bool) "rows 0" true
    (try
       ignore (Zipf_tables.make ~name:"t" ~rows:0 ~z:1. ~domain:5 ());
       false
     with Invalid_argument _ -> true);
  Alcotest.(check bool) "neg z" true
    (try
       ignore (Zipf_tables.make ~name:"t" ~rows:5 ~z:(-1.) ~domain:5 ());
       false
     with Invalid_argument _ -> true)

let suite =
  [
    Alcotest.test_case "table shape per §8.1" `Quick test_table_shape;
    Alcotest.test_case "RIDs unique" `Quick test_rids_unique;
    Alcotest.test_case "skew grows with z" `Quick test_skew_increases_with_z;
    Alcotest.test_case "hot values aligned across tables" `Quick test_hot_values_aligned;
    Alcotest.test_case "pair construction" `Quick test_make_pair;
    Alcotest.test_case "pair reproducible, decorrelated" `Quick test_pair_reproducible_and_decorrelated;
    Alcotest.test_case "generator matches zipf pmf" `Slow test_generator_matches_zipf_pmf;
    Alcotest.test_case "scale config" `Quick test_scale_defaults;
    Alcotest.test_case "argument validation" `Quick test_invalid_args;
  ]

open Rsj_util

let test_determinism () =
  let a = Prng.create ~seed:42 () in
  let b = Prng.create ~seed:42 () in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Prng.bits64 a) (Prng.bits64 b)
  done

let test_seed_sensitivity () =
  let a = Prng.create ~seed:1 () in
  let b = Prng.create ~seed:2 () in
  let differs = ref false in
  for _ = 1 to 16 do
    if Prng.bits64 a <> Prng.bits64 b then differs := true
  done;
  Alcotest.(check bool) "different seeds differ" true !differs

let test_copy_detaches () =
  let a = Prng.create ~seed:7 () in
  ignore (Prng.bits64 a);
  let b = Prng.copy a in
  Alcotest.(check int64) "copy replays" (Prng.bits64 a) (Prng.bits64 b);
  (* advancing one does not advance the other *)
  ignore (Prng.bits64 a);
  ignore (Prng.bits64 a);
  let fa = Prng.state_fingerprint a and fb = Prng.state_fingerprint b in
  Alcotest.(check bool) "states diverge" true (fa <> fb)

let test_split_independence () =
  let a = Prng.create ~seed:9 () in
  let child = Prng.split a in
  Alcotest.(check bool) "child has distinct state" true
    (Prng.state_fingerprint a <> Prng.state_fingerprint child)

let test_int_bounds () =
  let rng = Prng.create ~seed:3 () in
  for _ = 1 to 10_000 do
    let v = Prng.int rng 17 in
    Alcotest.(check bool) "0 <= v < 17" true (v >= 0 && v < 17)
  done

let test_int_rejects_bad_bound () =
  let rng = Prng.create () in
  Alcotest.check_raises "zero bound" (Invalid_argument "Prng.int: bound must be positive")
    (fun () -> ignore (Prng.int rng 0))

let test_int_in_range () =
  let rng = Prng.create ~seed:4 () in
  for _ = 1 to 1_000 do
    let v = Prng.int_in_range rng ~lo:(-5) ~hi:5 in
    Alcotest.(check bool) "in [-5,5]" true (v >= -5 && v <= 5)
  done;
  Alcotest.(check int) "degenerate range" 3 (Prng.int_in_range rng ~lo:3 ~hi:3)

let test_int_uniformity () =
  let rng = Prng.create ~seed:5 () in
  let k = 10 in
  let observed = Array.make k 0 in
  for _ = 1 to 100_000 do
    let v = Prng.int rng k in
    observed.(v) <- observed.(v) + 1
  done;
  let res = Stats_math.chi_square_uniform ~observed in
  Alcotest.(check bool)
    (Printf.sprintf "chi2 p-value %.4f not tiny" res.p_value)
    true (res.p_value > 0.001)

let test_unit_float_range () =
  let rng = Prng.create ~seed:6 () in
  for _ = 1 to 10_000 do
    let u = Prng.unit_float rng in
    Alcotest.(check bool) "[0,1)" true (u >= 0. && u < 1.)
  done

let test_unit_float_pos () =
  let rng = Prng.create ~seed:8 () in
  for _ = 1 to 10_000 do
    Alcotest.(check bool) "(0,1)" true (Prng.unit_float_pos rng > 0.)
  done

let test_bernoulli_edges () =
  let rng = Prng.create ~seed:10 () in
  Alcotest.(check bool) "p=0 never" false (Prng.bernoulli rng 0.);
  Alcotest.(check bool) "p=1 always" true (Prng.bernoulli rng 1.);
  Alcotest.(check bool) "p<0 clamps" false (Prng.bernoulli rng (-1.));
  Alcotest.(check bool) "p>1 clamps" true (Prng.bernoulli rng 2.)

let test_bernoulli_mean () =
  let rng = Prng.create ~seed:11 () in
  let n = 100_000 in
  let hits = ref 0 in
  for _ = 1 to n do
    if Prng.bernoulli rng 0.3 then incr hits
  done;
  let mean = float_of_int !hits /. float_of_int n in
  Alcotest.(check bool)
    (Printf.sprintf "mean %.4f close to 0.3" mean)
    true
    (Float.abs (mean -. 0.3) < 0.01)

let test_shuffle_permutes () =
  let rng = Prng.create ~seed:12 () in
  let a = Array.init 100 Fun.id in
  let b = Array.copy a in
  Prng.shuffle_in_place rng b;
  let sb = Array.copy b in
  Array.sort compare sb;
  Alcotest.(check (array int)) "same multiset" a sb;
  Alcotest.(check bool) "actually moved" true (b <> a)

let test_shuffle_uniform_positions () =
  (* Element 0's final position should be uniform. *)
  let rng = Prng.create ~seed:13 () in
  let k = 6 in
  let observed = Array.make k 0 in
  for _ = 1 to 60_000 do
    let a = Array.init k Fun.id in
    Prng.shuffle_in_place rng a;
    let pos = ref 0 in
    Array.iteri (fun i x -> if x = 0 then pos := i) a;
    observed.(!pos) <- observed.(!pos) + 1
  done;
  let res = Stats_math.chi_square_uniform ~observed in
  Alcotest.(check bool) "uniform positions" true (res.p_value > 0.001)

let test_pick () =
  let rng = Prng.create ~seed:14 () in
  let a = [| 10; 20; 30 |] in
  for _ = 1 to 100 do
    Alcotest.(check bool) "member" true (Array.mem (Prng.pick rng a) a)
  done;
  Alcotest.check_raises "empty" (Invalid_argument "Prng.pick: empty array") (fun () ->
      ignore (Prng.pick rng [||]))

let test_sample_distinct_properties () =
  let rng = Prng.create ~seed:15 () in
  for _ = 1 to 500 do
    let n = 1 + Prng.int rng 50 in
    let k = Prng.int rng (n + 1) in
    let s = Prng.sample_distinct rng ~k ~n in
    Alcotest.(check int) "size k" k (Array.length s);
    let seen = Hashtbl.create 16 in
    Array.iter
      (fun v ->
        Alcotest.(check bool) "range" true (v >= 0 && v < n);
        Alcotest.(check bool) "distinct" false (Hashtbl.mem seen v);
        Hashtbl.replace seen v ())
      s
  done

let test_sample_distinct_full () =
  let rng = Prng.create ~seed:16 () in
  let s = Prng.sample_distinct rng ~k:10 ~n:10 in
  let sorted = Array.copy s in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "k=n returns everything" (Array.init 10 Fun.id) sorted

let test_sample_distinct_uniform () =
  let rng = Prng.create ~seed:17 () in
  let observed = Array.make 5 0 in
  for _ = 1 to 50_000 do
    Array.iter (fun v -> observed.(v) <- observed.(v) + 1) (Prng.sample_distinct rng ~k:2 ~n:5)
  done;
  let res = Stats_math.chi_square_uniform ~observed in
  Alcotest.(check bool) "membership uniform" true (res.p_value > 0.001)

let test_sample_distinct_invalid () =
  let rng = Prng.create () in
  Alcotest.check_raises "k > n"
    (Invalid_argument "Prng.sample_distinct: need 0 <= k <= n") (fun () ->
      ignore (Prng.sample_distinct rng ~k:5 ~n:3))

let suite =
  [
    Alcotest.test_case "determinism from seed" `Quick test_determinism;
    Alcotest.test_case "seed sensitivity" `Quick test_seed_sensitivity;
    Alcotest.test_case "copy replays then detaches" `Quick test_copy_detaches;
    Alcotest.test_case "split yields distinct state" `Quick test_split_independence;
    Alcotest.test_case "int respects bounds" `Quick test_int_bounds;
    Alcotest.test_case "int rejects non-positive bound" `Quick test_int_rejects_bad_bound;
    Alcotest.test_case "int_in_range inclusive" `Quick test_int_in_range;
    Alcotest.test_case "int is uniform (chi-square)" `Slow test_int_uniformity;
    Alcotest.test_case "unit_float in [0,1)" `Quick test_unit_float_range;
    Alcotest.test_case "unit_float_pos never 0" `Quick test_unit_float_pos;
    Alcotest.test_case "bernoulli edge probabilities" `Quick test_bernoulli_edges;
    Alcotest.test_case "bernoulli empirical mean" `Slow test_bernoulli_mean;
    Alcotest.test_case "shuffle is a permutation" `Quick test_shuffle_permutes;
    Alcotest.test_case "shuffle position uniformity" `Slow test_shuffle_uniform_positions;
    Alcotest.test_case "pick membership and empty" `Quick test_pick;
    Alcotest.test_case "sample_distinct invariants" `Quick test_sample_distinct_properties;
    Alcotest.test_case "sample_distinct k = n" `Quick test_sample_distinct_full;
    Alcotest.test_case "sample_distinct uniform membership" `Slow test_sample_distinct_uniform;
    Alcotest.test_case "sample_distinct rejects k > n" `Quick test_sample_distinct_invalid;
  ]

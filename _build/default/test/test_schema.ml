open Rsj_relation

let s2 () = Schema.of_list [ ("a", Value.T_int); ("b", Value.T_str) ]

let test_basics () =
  let s = s2 () in
  Alcotest.(check int) "arity" 2 (Schema.arity s);
  Alcotest.(check int) "index of a" 0 (Schema.column_index s "a");
  Alcotest.(check int) "index of b" 1 (Schema.column_index s "b");
  Alcotest.(check string) "name of 0" "a" (Schema.column_name s 0);
  Alcotest.(check bool) "mem" true (Schema.mem s "a");
  Alcotest.(check bool) "not mem" false (Schema.mem s "z");
  Alcotest.(check bool) "missing raises Not_found" true
    (try
       ignore (Schema.column_index s "z");
       false
     with Not_found -> true)

let test_duplicate_rejected () =
  Alcotest.(check bool) "dup rejected" true
    (try
       ignore (Schema.of_list [ ("a", Value.T_int); ("a", Value.T_str) ]);
       false
     with Invalid_argument _ -> true)

let test_empty_rejected () =
  Alcotest.check_raises "empty" (Invalid_argument "Schema.create: empty column list") (fun () ->
      ignore (Schema.create []))

let test_concat_no_collision () =
  let a = Schema.of_list [ ("x", Value.T_int) ] in
  let b = Schema.of_list [ ("y", Value.T_int) ] in
  let c = Schema.concat a b in
  Alcotest.(check int) "arity" 2 (Schema.arity c);
  Alcotest.(check string) "x kept" "x" (Schema.column_name c 0);
  Alcotest.(check string) "y kept" "y" (Schema.column_name c 1)

let test_concat_collision_prefixes () =
  let a = Schema.of_list [ ("id", Value.T_int); ("x", Value.T_int) ] in
  let b = Schema.of_list [ ("id", Value.T_int); ("y", Value.T_int) ] in
  let c = Schema.concat a b in
  Alcotest.(check string) "left prefixed" "l.id" (Schema.column_name c 0);
  Alcotest.(check string) "non-colliding untouched" "x" (Schema.column_name c 1);
  Alcotest.(check string) "right prefixed" "r.id" (Schema.column_name c 2)

let test_project () =
  let s = s2 () in
  let p = Schema.project s [ 1 ] in
  Alcotest.(check int) "arity 1" 1 (Schema.arity p);
  Alcotest.(check string) "kept b" "b" (Schema.column_name p 0);
  Alcotest.(check bool) "out of range" true
    (try
       ignore (Schema.project s [ 5 ]);
       false
     with Invalid_argument _ -> true)

let test_rename () =
  let s = s2 () in
  let r = Schema.rename s [ ("a", "alpha") ] in
  Alcotest.(check string) "renamed" "alpha" (Schema.column_name r 0);
  Alcotest.(check bool) "unknown source raises" true
    (try
       ignore (Schema.rename s [ ("zz", "q") ]);
       false
     with Not_found -> true)

let test_validate () =
  let s = s2 () in
  Alcotest.(check bool) "good row" true
    (Result.is_ok (Schema.validate s [| Value.Int 1; Value.str "x" |]));
  Alcotest.(check bool) "null anywhere ok" true
    (Result.is_ok (Schema.validate s [| Value.Null; Value.Null |]));
  Alcotest.(check bool) "arity mismatch" true
    (Result.is_error (Schema.validate s [| Value.Int 1 |]));
  Alcotest.(check bool) "type mismatch" true
    (Result.is_error (Schema.validate s [| Value.str "no"; Value.str "x" |]))

let test_equal () =
  Alcotest.(check bool) "equal" true (Schema.equal (s2 ()) (s2 ()));
  Alcotest.(check bool) "different" false
    (Schema.equal (s2 ()) (Schema.of_list [ ("a", Value.T_int) ]))

let suite =
  [
    Alcotest.test_case "lookup basics" `Quick test_basics;
    Alcotest.test_case "duplicate names rejected" `Quick test_duplicate_rejected;
    Alcotest.test_case "empty schema rejected" `Quick test_empty_rejected;
    Alcotest.test_case "concat without collisions" `Quick test_concat_no_collision;
    Alcotest.test_case "concat prefixes collisions" `Quick test_concat_collision_prefixes;
    Alcotest.test_case "project" `Quick test_project;
    Alcotest.test_case "rename" `Quick test_rename;
    Alcotest.test_case "validate" `Quick test_validate;
    Alcotest.test_case "equality" `Quick test_equal;
  ]

open Rsj_relation
open Rsj_core
module Metrics = Rsj_exec.Metrics

let schema_ab = Schema.of_list [ ("a", Value.T_int); ("b", Value.T_int) ]

let rel name rows =
  Relation.of_tuples ~name schema_ab
    (List.map (fun (a, b) -> [| Value.Int a; Value.Int b |]) rows)

(* R1(a,b) join R2 on b=R2.a, join R3 on R2.b=R3.a — a 3-relation chain. *)
let r1 () = rel "r1" [ (1, 10); (2, 10); (3, 20) ]
let r2 () = rel "r2" [ (10, 100); (10, 200); (20, 100) ]
let r3 () = rel "r3" [ (100, 0); (100, 1); (200, 2) ]

(* Expected join:
   r1 rows with b=10 (two) x r2 rows with a=10 (two) x r3 matches:
     (10,100)->2 r3 rows; (10,200)->1 r3 row => each of 2 r1 rows gives 3
   r1 row (3,20) x (20,100) x 2 r3 rows = 2
   total = 2*3 + 2 = 8. *)
let expected_size = 8

let tree () =
  {
    Join_tree.base = r1 ();
    steps =
      [
        { Join_tree.left_col = 1; right = r2 (); right_key = 0 };
        { Join_tree.left_col = 3; right = r3 (); right_key = 0 };
      ];
  }

let chain_spec () =
  {
    Chain_sample.relations = [| r1 (); r2 (); r3 () |];
    join_keys = [| (1, 0); (1, 0) |];
  }

let test_tree_validate_and_schema () =
  let t = tree () in
  Alcotest.(check bool) "valid" true (Result.is_ok (Join_tree.validate t));
  Alcotest.(check int) "schema arity" 6 (Schema.arity (Join_tree.output_schema t));
  let bad = { t with steps = [ { Join_tree.left_col = 9; right = r2 (); right_key = 0 } ] } in
  Alcotest.(check bool) "bad col detected" true (Result.is_error (Join_tree.validate bad))

let test_tree_cardinality () =
  Alcotest.(check int) "full join size" expected_size (Join_tree.cardinality (tree ()))

let test_tree_naive_sample () =
  let rng = Rsj_util.Prng.create ~seed:1 () in
  let out = Join_tree.naive_sample rng ~metrics:(Metrics.create ()) ~r:5 (tree ()) in
  Alcotest.(check int) "r samples" 5 (Array.length out);
  Array.iter (fun t -> Alcotest.(check int) "arity 6" 6 (Tuple.arity t)) out

let test_tree_pushdown_sample () =
  let rng = Rsj_util.Prng.create ~seed:2 () in
  let metrics = Metrics.create () in
  let out = Join_tree.pushdown_sample rng ~metrics ~r:5 (tree ()) in
  Alcotest.(check int) "r samples" 5 (Array.length out);
  Array.iter (fun t -> Alcotest.(check int) "arity 6" 6 (Tuple.arity t)) out

let full_join_universe () =
  Array.of_list (Rsj_exec.Plan.collect (Join_tree.to_plan (tree ())))

let test_tree_samplers_uniform () =
  let universe = full_join_universe () in
  Alcotest.(check int) "universe size" expected_size (Array.length universe);
  let rng = Rsj_util.Prng.create ~seed:3 () in
  let check name draw =
    let report = Negative.uniformity_check ~trials:400 ~universe ~draw in
    Alcotest.(check bool)
      (Printf.sprintf "%s uniform p=%.5f" name report.chi_square.p_value)
      true
      (report.chi_square.p_value > 0.001)
  in
  check "naive tree" (fun () ->
      Join_tree.naive_sample rng ~metrics:(Metrics.create ()) ~r:8 (tree ()));
  check "pushdown tree" (fun () ->
      Join_tree.pushdown_sample rng ~metrics:(Metrics.create ()) ~r:8 (tree ()))

let test_chain_join_size () =
  let c = Chain_sample.prepare (chain_spec ()) in
  Alcotest.(check (float 1e-9)) "exact size without joining" (float_of_int expected_size)
    (Chain_sample.join_size c)

let test_chain_draw_membership_and_uniformity () =
  let c = Chain_sample.prepare (chain_spec ()) in
  let universe = full_join_universe () in
  let rng = Rsj_util.Prng.create ~seed:4 () in
  let report =
    Negative.uniformity_check ~trials:400 ~universe ~draw:(fun () ->
        Chain_sample.sample c rng ~r:8 ())
  in
  Alcotest.(check bool)
    (Printf.sprintf "chain sampler uniform p=%.5f" report.chi_square.p_value)
    true
    (report.chi_square.p_value > 0.001)

let test_chain_empty_join () =
  let spec =
    {
      Chain_sample.relations = [| r1 (); rel "dead" [ (999, 0) ] |];
      join_keys = [| (1, 0) |];
    }
  in
  let c = Chain_sample.prepare spec in
  Alcotest.(check (float 0.)) "size 0" 0. (Chain_sample.join_size c);
  let rng = Rsj_util.Prng.create () in
  Alcotest.(check bool) "draw None" true (Chain_sample.draw c rng () = None);
  Alcotest.(check (array (of_pp Tuple.pp))) "sample empty" [||] (Chain_sample.sample c rng ~r:3 ())

let test_chain_single_relation () =
  let spec = { Chain_sample.relations = [| r1 () |]; join_keys = [||] } in
  let c = Chain_sample.prepare spec in
  Alcotest.(check (float 0.)) "size = n1" 3. (Chain_sample.join_size c);
  let rng = Rsj_util.Prng.create ~seed:5 () in
  let out = Chain_sample.sample c rng ~r:4 () in
  Alcotest.(check int) "samples" 4 (Array.length out)

let test_chain_validation () =
  Alcotest.(check bool) "empty chain" true
    (try
       ignore (Chain_sample.prepare { Chain_sample.relations = [||]; join_keys = [||] });
       false
     with Invalid_argument _ -> true);
  Alcotest.(check bool) "wrong key count" true
    (try
       ignore (Chain_sample.prepare { Chain_sample.relations = [| r1 () |]; join_keys = [| (0, 0) |] });
       false
     with Invalid_argument _ -> true);
  Alcotest.(check bool) "column out of range" true
    (try
       ignore
         (Chain_sample.prepare
            { Chain_sample.relations = [| r1 (); r2 () |]; join_keys = [| (9, 0) |] });
       false
     with Invalid_argument _ -> true)

let test_chain_long () =
  (* 4-relation chain with fan-out; verify exact size against the plan. *)
  let a = rel "a" (List.init 20 (fun i -> (i, i mod 4))) in
  let b = rel "b" (List.init 20 (fun i -> (i mod 4, i mod 5))) in
  let c = rel "c" (List.init 20 (fun i -> (i mod 5, i mod 3))) in
  let d = rel "d" (List.init 20 (fun i -> (i mod 3, i))) in
  let spec =
    { Chain_sample.relations = [| a; b; c; d |]; join_keys = [| (1, 0); (1, 0); (1, 0) |] }
  in
  let tree =
    {
      Join_tree.base = a;
      steps =
        [
          { Join_tree.left_col = 1; right = b; right_key = 0 };
          { Join_tree.left_col = 3; right = c; right_key = 0 };
          { Join_tree.left_col = 5; right = d; right_key = 0 };
        ];
    }
  in
  let prepared = Chain_sample.prepare spec in
  Alcotest.(check (float 1e-6)) "size matches materialized join"
    (float_of_int (Join_tree.cardinality tree))
    (Chain_sample.join_size prepared);
  let rng = Rsj_util.Prng.create ~seed:6 () in
  let out = Chain_sample.sample prepared rng ~r:10 () in
  Alcotest.(check int) "10 samples of arity 8" 10 (Array.length out);
  Array.iter (fun t -> Alcotest.(check int) "arity" 8 (Tuple.arity t)) out

let suite =
  [
    Alcotest.test_case "tree validation and schema" `Quick test_tree_validate_and_schema;
    Alcotest.test_case "tree cardinality" `Quick test_tree_cardinality;
    Alcotest.test_case "tree naive sampling" `Quick test_tree_naive_sample;
    Alcotest.test_case "tree pushdown sampling" `Quick test_tree_pushdown_sample;
    Alcotest.test_case "tree samplers uniform" `Slow test_tree_samplers_uniform;
    Alcotest.test_case "chain exact join size" `Quick test_chain_join_size;
    Alcotest.test_case "chain sampler uniform" `Slow test_chain_draw_membership_and_uniformity;
    Alcotest.test_case "chain empty join" `Quick test_chain_empty_join;
    Alcotest.test_case "chain of one relation" `Quick test_chain_single_relation;
    Alcotest.test_case "chain spec validation" `Quick test_chain_validation;
    Alcotest.test_case "4-relation chain vs materialized join" `Quick test_chain_long;
  ]

open Rsj_relation
module Page = Rsj_storage.Page
module Buffer_pool = Rsj_storage.Buffer_pool
module Heap_file = Rsj_storage.Heap_file

let schema =
  Schema.of_list [ ("id", Value.T_int); ("x", Value.T_float); ("name", Value.T_str) ]

let row i = [| Value.Int i; Value.Float (float_of_int i /. 2.); Value.str (Printf.sprintf "name-%d" i) |]

let with_temp_file f =
  let path = Filename.temp_file "rsj_heap" ".dat" in
  Fun.protect ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ()) (fun () -> f path)

(* ---------- page codec ---------- *)

let test_page_roundtrip () =
  let p = Page.create ~page_size:512 in
  Alcotest.(check int) "empty" 0 (Page.tuple_count p);
  let rows = [ row 1; [| Value.Null; Value.Null; Value.Null |]; row 42 ] in
  List.iter (fun r -> Alcotest.(check bool) "fits" true (Page.add_tuple p r)) rows;
  Alcotest.(check int) "count" 3 (Page.tuple_count p);
  List.iteri
    (fun i r -> Alcotest.(check bool) "roundtrip" true (Tuple.equal r (Page.get_tuple p i)))
    rows

let test_page_fills_up () =
  let p = Page.create ~page_size:128 in
  let added = ref 0 in
  while Page.add_tuple p (row !added) do
    incr added
  done;
  Alcotest.(check bool) "some fit" true (!added > 0);
  Alcotest.(check int) "count matches" !added (Page.tuple_count p);
  (* a smaller tuple may still fit after a big one is rejected *)
  Alcotest.(check bool) "free space consistent" true (Page.free_space p >= 0)

let test_page_oversized_tuple () =
  let p = Page.create ~page_size:64 in
  Alcotest.(check bool) "oversized raises" true
    (try
       ignore (Page.add_tuple p [| Value.Str (String.make 500 'x') |]);
       false
     with Invalid_argument _ -> true)

let test_page_bytes_roundtrip () =
  let p = Page.create ~page_size:256 in
  ignore (Page.add_tuple p (row 7));
  let q = Page.of_bytes (Page.to_bytes p) in
  Alcotest.(check int) "count preserved" 1 (Page.tuple_count q);
  Alcotest.(check bool) "tuple preserved" true (Tuple.equal (row 7) (Page.get_tuple q 0));
  Alcotest.(check bool) "corrupt image rejected" true
    (try
       ignore (Page.of_bytes (Bytes.make 16 'Z'));
       false
     with Failure _ -> true)

let test_page_bounds () =
  let p = Page.create ~page_size:256 in
  ignore (Page.add_tuple p (row 1));
  Alcotest.(check bool) "slot bound" true
    (try
       ignore (Page.get_tuple p 1);
       false
     with Invalid_argument _ -> true)

(* ---------- buffer pool ---------- *)

let test_pool_hits_misses_evictions () =
  with_temp_file (fun path ->
      let hf = Heap_file.of_relation ~path ~page_size:256 (Relation.of_tuples schema (List.init 100 row)) in
      let pages = Heap_file.data_page_count hf in
      Alcotest.(check bool) "several pages" true (pages >= 3);
      let pool = Buffer_pool.create ~capacity:2 in
      ignore (Heap_file.read_data_page hf pool 0);
      ignore (Heap_file.read_data_page hf pool 0);
      let s = Buffer_pool.stats pool in
      Alcotest.(check int) "one miss" 1 s.Buffer_pool.misses;
      Alcotest.(check int) "one hit" 1 s.Buffer_pool.hits;
      ignore (Heap_file.read_data_page hf pool 1);
      ignore (Heap_file.read_data_page hf pool 2);
      (* capacity 2: page 0 evicted *)
      let s = Buffer_pool.stats pool in
      Alcotest.(check int) "eviction" 1 s.Buffer_pool.evictions;
      ignore (Heap_file.read_data_page hf pool 0);
      let s = Buffer_pool.stats pool in
      (* misses so far: p0, p1, p2, and p0 again after its eviction *)
      Alcotest.(check int) "page 0 missed again" 4 s.Buffer_pool.misses;
      Heap_file.close hf)

let test_pool_lru_order () =
  with_temp_file (fun path ->
      let hf = Heap_file.of_relation ~path ~page_size:256 (Relation.of_tuples schema (List.init 100 row)) in
      let pool = Buffer_pool.create ~capacity:2 in
      ignore (Heap_file.read_data_page hf pool 0);
      ignore (Heap_file.read_data_page hf pool 1);
      (* touch 0 so that 1 is the LRU victim *)
      ignore (Heap_file.read_data_page hf pool 0);
      ignore (Heap_file.read_data_page hf pool 2);
      Buffer_pool.reset_stats pool;
      ignore (Heap_file.read_data_page hf pool 0);
      let s = Buffer_pool.stats pool in
      Alcotest.(check int) "0 still resident (hit)" 1 s.Buffer_pool.hits;
      ignore (Heap_file.read_data_page hf pool 1);
      let s = Buffer_pool.stats pool in
      Alcotest.(check int) "1 was evicted (miss)" 1 s.Buffer_pool.misses;
      Heap_file.close hf)

(* ---------- heap file ---------- *)

let test_heap_roundtrip () =
  with_temp_file (fun path ->
      let rel = Relation.of_tuples schema (List.init 500 row) in
      let hf = Heap_file.of_relation ~path ~page_size:512 rel in
      Alcotest.(check int) "tuple count" 500 (Heap_file.tuple_count hf);
      let pool = Buffer_pool.create ~capacity:16 in
      let back = Heap_file.to_relation hf pool in
      Alcotest.(check int) "all back" 500 (Relation.cardinality back);
      Relation.iteri back (fun i t ->
          Alcotest.(check bool) "row preserved in order" true (Tuple.equal t (Relation.get rel i)));
      Heap_file.close hf)

let test_heap_reopen () =
  with_temp_file (fun path ->
      let hf = Heap_file.of_relation ~path ~page_size:512 (Relation.of_tuples schema (List.init 50 row)) in
      Heap_file.close hf;
      let hf2 = Heap_file.open_existing ~path schema in
      Alcotest.(check int) "count after reopen" 50 (Heap_file.tuple_count hf2);
      let pool = Buffer_pool.create ~capacity:4 in
      Alcotest.(check int) "scan finds all" 50 (Stream0.length (Heap_file.scan hf2 pool));
      (* append more after reopen *)
      Heap_file.append hf2 (row 50);
      Heap_file.flush hf2;
      Alcotest.(check int) "append after reopen" 51 (Heap_file.tuple_count hf2);
      Heap_file.close hf2)

let test_heap_fetch () =
  with_temp_file (fun path ->
      let hf = Heap_file.of_relation ~path ~page_size:256 (Relation.of_tuples schema (List.init 200 row)) in
      let pool = Buffer_pool.create ~capacity:8 in
      List.iter
        (fun i ->
          let t = Heap_file.fetch hf pool i in
          Alcotest.(check int) "fetch by index" i (Value.to_int_exn (Tuple.get t 0)))
        [ 0; 1; 57; 123; 199 ];
      Alcotest.(check bool) "out of range" true
        (try
           ignore (Heap_file.fetch hf pool 200);
           false
         with Invalid_argument _ -> true);
      Heap_file.close hf)

let test_heap_schema_validation () =
  with_temp_file (fun path ->
      let hf = Heap_file.create ~path schema in
      Alcotest.(check bool) "bad arity rejected" true
        (try
           Heap_file.append hf [| Value.Int 1 |];
           false
         with Invalid_argument _ -> true);
      Heap_file.close hf)

let test_heap_closed_use () =
  with_temp_file (fun path ->
      let hf = Heap_file.create ~path schema in
      Heap_file.close hf;
      Heap_file.close hf;
      Alcotest.(check bool) "append after close fails" true
        (try
           Heap_file.append hf (row 1);
           false
         with Failure _ -> true))

let test_heap_bad_magic () =
  with_temp_file (fun path ->
      let oc = open_out path in
      output_string oc "not a heap file at all, definitely not";
      close_out oc;
      Alcotest.(check bool) "bad magic rejected" true
        (try
           ignore (Heap_file.open_existing ~path schema);
           false
         with Failure _ -> true))

(* ---------- block sampling economics on real pages ---------- *)

let test_block_sampling_io_on_disk () =
  with_temp_file (fun path ->
      let n = 2_000 in
      let hf = Heap_file.of_relation ~path ~page_size:512 (Relation.of_tuples schema (List.init n row)) in
      let pool = Buffer_pool.create ~capacity:1_000 in
      let rng = Rsj_util.Prng.create ~seed:5 () in
      (* Full scan: misses ~ page count. *)
      Buffer_pool.reset_stats pool;
      ignore (Stream0.length (Heap_file.scan hf pool));
      let scan_misses = (Buffer_pool.stats pool).Buffer_pool.misses in
      Alcotest.(check int) "scan reads each page once" (Heap_file.data_page_count hf) scan_misses;
      (* Random fetches of r=10 positions: misses <= 10 + directory build. *)
      let pool2 = Buffer_pool.create ~capacity:1_000 in
      let positions = Rsj_util.Prng.sample_distinct rng ~k:10 ~n in
      Array.sort compare positions;
      ignore (Heap_file.fetch hf pool2 positions.(0));
      let after_directory = (Buffer_pool.stats pool2).Buffer_pool.misses in
      Buffer_pool.reset_stats pool2;
      Array.iter (fun i -> ignore (Heap_file.fetch hf pool2 i)) positions;
      let fetch_misses = (Buffer_pool.stats pool2).Buffer_pool.misses in
      ignore after_directory;
      Alcotest.(check bool)
        (Printf.sprintf "10 fetches miss at most 10 pages (%d)" fetch_misses)
        true (fetch_misses <= 10);
      Heap_file.close hf)

let suite =
  [
    Alcotest.test_case "page: tuple roundtrip incl. NULLs" `Quick test_page_roundtrip;
    Alcotest.test_case "page: fills until full" `Quick test_page_fills_up;
    Alcotest.test_case "page: oversized tuple rejected" `Quick test_page_oversized_tuple;
    Alcotest.test_case "page: bytes roundtrip + corruption" `Quick test_page_bytes_roundtrip;
    Alcotest.test_case "page: slot bounds" `Quick test_page_bounds;
    Alcotest.test_case "pool: hits/misses/evictions" `Quick test_pool_hits_misses_evictions;
    Alcotest.test_case "pool: LRU victim selection" `Quick test_pool_lru_order;
    Alcotest.test_case "heap: write/scan roundtrip" `Quick test_heap_roundtrip;
    Alcotest.test_case "heap: reopen and append" `Quick test_heap_reopen;
    Alcotest.test_case "heap: fetch by global index" `Quick test_heap_fetch;
    Alcotest.test_case "heap: schema validation" `Quick test_heap_schema_validation;
    Alcotest.test_case "heap: use after close" `Quick test_heap_closed_use;
    Alcotest.test_case "heap: bad magic" `Quick test_heap_bad_magic;
    Alcotest.test_case "block sampling I/O economics on disk" `Quick test_block_sampling_io_on_disk;
  ]

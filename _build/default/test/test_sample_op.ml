open Rsj_relation
open Rsj_core
module Plan = Rsj_exec.Plan
module Metrics = Rsj_exec.Metrics

let schema = Schema.of_list [ ("k", Value.T_int); ("payload", Value.T_int) ]

let rel n =
  Relation.of_tuples ~name:"src" schema
    (List.init n (fun i -> [| Value.Int (i mod 7); Value.Int i |]))

let rng () = Rsj_util.Prng.create ~seed:0x0b ()

let test_u1_node () =
  let r = rel 100 in
  let plan = Sample_op.u1 (rng ()) ~n:100 ~r:10 (Plan.Scan r) in
  let out = Plan.collect plan in
  Alcotest.(check int) "10 rows" 10 (List.length out);
  (* order preserved: payloads non-decreasing *)
  let payloads = List.map (fun t -> Value.to_int_exn (Tuple.get t 1)) out in
  Alcotest.(check (list int)) "stream order" (List.sort compare payloads) payloads

let test_u2_node () =
  let plan = Sample_op.u2 (rng ()) ~r:5 (Plan.Scan (rel 50)) in
  Alcotest.(check int) "5 rows" 5 (Plan.count plan)

let test_wr2_node_zero_weights () =
  let weight t = if Value.to_int_exn (Tuple.get t 0) = 0 then 1. else 0. in
  let plan = Sample_op.wr2 (rng ()) ~r:8 ~weight (Plan.Scan (rel 70)) in
  let out = Plan.collect plan in
  Alcotest.(check int) "8 rows" 8 (List.length out);
  List.iter
    (fun t -> Alcotest.(check int) "only weight>0 rows" 0 (Value.to_int_exn (Tuple.get t 0)))
    out

let test_wr1_node () =
  let r = rel 70 in
  let weight _ = 1. in
  let plan = Sample_op.wr1 (rng ()) ~total_weight:70. ~r:6 ~weight (Plan.Scan r) in
  Alcotest.(check int) "6 rows" 6 (Plan.count plan)

let test_coin_flip_node () =
  let metrics = Metrics.create () in
  let plan = Sample_op.coin_flip (rng ()) ~f:0.2 (Plan.Scan (rel 1000)) in
  let n = List.length (Plan.collect ~metrics plan) in
  Alcotest.(check bool) (Printf.sprintf "~200 rows, got %d" n) true (n > 100 && n < 330)

let test_wor_node () =
  let plan = Sample_op.wor (rng ()) ~n:50 ~r:20 (Plan.Scan (rel 50)) in
  let out = Plan.collect plan in
  Alcotest.(check int) "20 rows" 20 (List.length out);
  let payloads = List.map (fun t -> Value.to_int_exn (Tuple.get t 1)) out in
  Alcotest.(check int) "distinct" 20 (List.length (List.sort_uniq compare payloads))

let test_explain_shows_sampling () =
  let plan = Sample_op.u2 (rng ()) ~r:5 (Plan.Scan (rel 10)) in
  let s = Format.asprintf "%a" Plan.explain plan in
  let contains needle =
    let nl = String.length needle and hl = String.length s in
    let rec go i = i + nl <= hl && (String.sub s i nl = needle || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "operator named in explain" true (contains "Sample-U2")

let test_naive_plan_matches_strategy () =
  let left = rel 60 and right = rel 90 in
  let plan =
    Sample_op.naive_sample_plan (rng ()) ~r:12 ~left:(Plan.Scan left) ~right:(Plan.Scan right)
      ~left_key:0 ~right_key:0
  in
  let metrics = Metrics.create () in
  let out = Plan.collect ~metrics plan in
  Alcotest.(check int) "12 rows" 12 (List.length out);
  (* naive computes the whole join *)
  let m1 = Rsj_stats.Frequency.of_relation left ~key:0 in
  let m2 = Rsj_stats.Frequency.of_relation right ~key:0 in
  Alcotest.(check int) "full join computed" (Rsj_stats.Frequency.join_size m1 m2)
    metrics.Metrics.join_output_tuples

let test_stream_plan () =
  let left = rel 60 and right = rel 90 in
  let idx = Rsj_index.Hash_index.build right ~key:0 in
  let stats = Rsj_stats.Frequency.of_relation right ~key:0 in
  let plan =
    Sample_op.stream_sample_plan (rng ()) ~r:15 ~left:(Plan.Scan left) ~left_key:0
      ~right_index:idx ~right_stats:stats
  in
  let metrics = Metrics.create () in
  let out = Plan.collect ~metrics plan in
  Alcotest.(check int) "15 rows" 15 (List.length out);
  Alcotest.(check int) "join work = r" 15 metrics.Metrics.join_output_tuples;
  Alcotest.(check int) "joined arity" 4 (Tuple.arity (List.hd out));
  (* every output is a genuine join row: key columns match *)
  List.iter
    (fun t ->
      Alcotest.(check bool) "keys equal" true (Value.equal (Tuple.get t 0) (Tuple.get t 2)))
    out

let test_plan_uniformity () =
  (* The operator-tree version of Stream-Sample must sample the join
     uniformly, like the direct implementation. *)
  let left = rel 12 and right = rel 20 in
  let idx = Rsj_index.Hash_index.build right ~key:0 in
  let stats = Rsj_stats.Frequency.of_relation right ~key:0 in
  let universe =
    Array.of_list
      (Plan.collect
         (Plan.Join
            {
              Plan.algorithm = Plan.Hash;
              left = Plan.Scan left;
              right = Plan.Scan right;
              left_key = 0;
              right_key = 0;
            }))
  in
  let rng = rng () in
  let report =
    Negative.uniformity_check ~trials:600 ~universe ~draw:(fun () ->
        let plan =
          Sample_op.stream_sample_plan rng ~r:6 ~left:(Plan.Scan left) ~left_key:0
            ~right_index:idx ~right_stats:stats
        in
        Array.of_list (Plan.collect plan))
  in
  Alcotest.(check bool)
    (Printf.sprintf "plan-level stream-sample uniform p=%.5f" report.Negative.chi_square.p_value)
    true
    (report.Negative.chi_square.p_value > 0.001)

let suite =
  [
    Alcotest.test_case "U1 node" `Quick test_u1_node;
    Alcotest.test_case "U2 node" `Quick test_u2_node;
    Alcotest.test_case "WR1 node" `Quick test_wr1_node;
    Alcotest.test_case "WR2 node skips zero weights" `Quick test_wr2_node_zero_weights;
    Alcotest.test_case "CF node" `Quick test_coin_flip_node;
    Alcotest.test_case "WoR node" `Quick test_wor_node;
    Alcotest.test_case "explain shows sampling operators" `Quick test_explain_shows_sampling;
    Alcotest.test_case "naive plan = full join + reservoir" `Quick test_naive_plan_matches_strategy;
    Alcotest.test_case "stream plan: r join outputs" `Quick test_stream_plan;
    Alcotest.test_case "stream plan uniformity" `Slow test_plan_uniformity;
  ]

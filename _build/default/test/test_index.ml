open Rsj_relation
module Hash_index = Rsj_index.Hash_index
module Btree = Rsj_index.Btree

let schema = Schema.of_list [ ("k", Value.T_int); ("payload", Value.T_int) ]

let relation_of_keys keys =
  Relation.of_tuples ~name:"idx_test" schema
    (List.mapi (fun i k -> [| k; Value.Int i |]) keys)

let ints l = List.map Value.int l

(* ---------- hash index ---------- *)

let test_hash_lookup () =
  let r = relation_of_keys (ints [ 1; 2; 1; 3; 1 ]) in
  let idx = Hash_index.build r ~key:0 in
  Alcotest.(check int) "m(1)" 3 (Hash_index.multiplicity idx (Value.Int 1));
  Alcotest.(check int) "m(2)" 1 (Hash_index.multiplicity idx (Value.Int 2));
  Alcotest.(check int) "m(99)" 0 (Hash_index.multiplicity idx (Value.Int 99));
  Alcotest.(check (array int)) "row ids in order" [| 0; 2; 4 |] (Hash_index.lookup idx (Value.Int 1));
  Alcotest.(check int) "max multiplicity" 3 (Hash_index.max_multiplicity idx)

let test_hash_excludes_null () =
  let r = relation_of_keys [ Value.Int 1; Value.Null; Value.Int 1 ] in
  let idx = Hash_index.build r ~key:0 in
  Alcotest.(check int) "nulls not indexed" 0 (Hash_index.multiplicity idx Value.Null);
  Alcotest.(check int) "distinct" 1 (Array.length (Hash_index.distinct_keys idx))

let test_hash_matching_tuples () =
  let r = relation_of_keys (ints [ 5; 6; 5 ]) in
  let idx = Hash_index.build r ~key:0 in
  let ms = Hash_index.matching_tuples idx (Value.Int 5) in
  Alcotest.(check int) "two matches" 2 (Array.length ms);
  Array.iter
    (fun t -> Alcotest.(check int) "key matches" 5 (Value.to_int_exn (Tuple.get t 0)))
    ms

let test_hash_random_match_uniform () =
  let r = relation_of_keys (ints [ 7; 7; 7; 7; 8 ]) in
  let idx = Hash_index.build r ~key:0 in
  let rng = Rsj_util.Prng.create ~seed:2 () in
  let counts = Array.make 4 0 in
  for _ = 1 to 40_000 do
    match Hash_index.random_match idx rng (Value.Int 7) with
    | Some t -> counts.(Value.to_int_exn (Tuple.get t 1)) <- counts.(Value.to_int_exn (Tuple.get t 1)) + 1
    | None -> Alcotest.fail "expected a match"
  done;
  let res = Rsj_util.Stats_math.chi_square_uniform ~observed:counts in
  Alcotest.(check bool) "uniform over matches" true (res.p_value > 0.001);
  Alcotest.(check bool) "no match for absent key" true
    (Hash_index.random_match idx rng (Value.Int 0) = None)

let test_hash_probe_count () =
  let r = relation_of_keys (ints [ 1 ]) in
  let idx = Hash_index.build r ~key:0 in
  Alcotest.(check int) "zero initially" 0 (Hash_index.probe_count idx);
  ignore (Hash_index.lookup idx (Value.Int 1));
  ignore (Hash_index.multiplicity idx (Value.Int 1));
  Alcotest.(check int) "two probes" 2 (Hash_index.probe_count idx)

let test_hash_empty_relation () =
  let r = Relation.create schema in
  let idx = Hash_index.build r ~key:0 in
  Alcotest.(check int) "max mult 0" 0 (Hash_index.max_multiplicity idx);
  Alcotest.(check int) "no keys" 0 (Array.length (Hash_index.distinct_keys idx))

(* ---------- btree ---------- *)

let test_btree_lookup () =
  let r = relation_of_keys (ints [ 10; 20; 10; 30 ]) in
  let t = Btree.build ~order:4 r ~key:0 in
  Alcotest.(check int) "m(10)" 2 (Btree.multiplicity t (Value.Int 10));
  Alcotest.(check int) "m(30)" 1 (Btree.multiplicity t (Value.Int 30));
  Alcotest.(check int) "m(5)" 0 (Btree.multiplicity t (Value.Int 5));
  let ids = Btree.lookup t (Value.Int 10) in
  Array.sort compare ids;
  Alcotest.(check (array int)) "posting list" [| 0; 2 |] ids

let test_btree_order_and_range () =
  let keys = [ 5; 1; 9; 3; 7; 2; 8; 4; 6; 0 ] in
  let r = relation_of_keys (ints keys) in
  let t = Btree.build ~order:4 r ~key:0 in
  let in_order = ref [] in
  Btree.iter t (fun k _ -> in_order := Value.to_int_exn k :: !in_order);
  Alcotest.(check (list int)) "iter sorted" (List.init 10 Fun.id) (List.rev !in_order);
  Alcotest.(check bool) "min" true (Btree.min_key t = Some (Value.Int 0));
  Alcotest.(check bool) "max" true (Btree.max_key t = Some (Value.Int 9));
  let range = Btree.range t ~lo:(Some (Value.Int 3)) ~hi:(Some (Value.Int 6)) in
  Alcotest.(check (list int)) "range [3,6]" [ 3; 4; 5; 6 ]
    (List.map (fun (k, _) -> Value.to_int_exn k) range);
  let open_range = Btree.range t ~lo:None ~hi:(Some (Value.Int 2)) in
  Alcotest.(check (list int)) "range (-inf,2]" [ 0; 1; 2 ]
    (List.map (fun (k, _) -> Value.to_int_exn k) open_range)

let test_btree_many_inserts_invariants () =
  let rng = Rsj_util.Prng.create ~seed:3 () in
  let t = Btree.create ~order:4 () in
  for i = 0 to 2_000 do
    Btree.insert t (Value.Int (Rsj_util.Prng.int rng 500)) i
  done;
  (match Btree.check_invariants t with
  | Ok () -> ()
  | Error msg -> Alcotest.fail ("invariants violated: " ^ msg));
  Alcotest.(check int) "entries" 2_001 (Btree.entry_count t);
  Alcotest.(check bool) "height grew" true (Btree.height t > 1)

let test_btree_duplicates_random_match () =
  let r = relation_of_keys (ints [ 1; 1; 1; 2 ]) in
  let t = Btree.build ~order:4 r ~key:0 in
  let rng = Rsj_util.Prng.create ~seed:4 () in
  for _ = 1 to 100 do
    match Btree.random_match t rng (Value.Int 1) with
    | Some id -> Alcotest.(check bool) "valid id" true (List.mem id [ 0; 1; 2 ])
    | None -> Alcotest.fail "expected match"
  done;
  Alcotest.(check bool) "absent key" true (Btree.random_match t rng (Value.Int 9) = None)

let test_btree_ignores_null () =
  let t = Btree.create () in
  Btree.insert t Value.Null 0;
  Alcotest.(check int) "null not stored" 0 (Btree.entry_count t)

let test_btree_agrees_with_hash_index () =
  let rng = Rsj_util.Prng.create ~seed:5 () in
  let keys = List.init 3_000 (fun _ -> Value.Int (Rsj_util.Prng.int rng 200)) in
  let r = relation_of_keys keys in
  let h = Hash_index.build r ~key:0 in
  let b = Btree.build ~order:8 r ~key:0 in
  for v = 0 to 199 do
    let hv = Hash_index.lookup h (Value.Int v) in
    let bv = Btree.lookup b (Value.Int v) in
    let sorted a =
      let c = Array.copy a in
      Array.sort compare c;
      c
    in
    Alcotest.(check (array int))
      (Printf.sprintf "postings agree for %d" v)
      (sorted hv) (sorted bv)
  done;
  Alcotest.(check int) "distinct agree"
    (Array.length (Hash_index.distinct_keys h))
    (Btree.distinct_key_count b)

(* ---------- btree deletion ---------- *)

let test_btree_delete_basic () =
  let r = relation_of_keys (ints [ 1; 2; 1; 3 ]) in
  let t = Btree.build ~order:4 r ~key:0 in
  Alcotest.(check bool) "delete existing" true (Btree.delete t (Value.Int 1) 0);
  Alcotest.(check int) "m(1) now 1" 1 (Btree.multiplicity t (Value.Int 1));
  Alcotest.(check bool) "delete absent id" false (Btree.delete t (Value.Int 1) 99);
  Alcotest.(check bool) "delete absent key" false (Btree.delete t (Value.Int 42) 0);
  Alcotest.(check bool) "delete last occurrence" true (Btree.delete t (Value.Int 1) 2);
  Alcotest.(check int) "key gone" 0 (Btree.multiplicity t (Value.Int 1));
  Alcotest.(check int) "entries" 2 (Btree.entry_count t);
  Alcotest.(check int) "distinct" 2 (Btree.distinct_key_count t);
  match Btree.check_invariants t with
  | Ok () -> ()
  | Error msg -> Alcotest.fail msg

let test_btree_delete_key () =
  let r = relation_of_keys (ints [ 5; 5; 5; 6 ]) in
  let t = Btree.build ~order:4 r ~key:0 in
  Alcotest.(check int) "dropped 3" 3 (Btree.delete_key t (Value.Int 5));
  Alcotest.(check int) "absent drops 0" 0 (Btree.delete_key t (Value.Int 5));
  Alcotest.(check int) "entries" 1 (Btree.entry_count t)

let test_btree_delete_everything () =
  let rng = Rsj_util.Prng.create ~seed:21 () in
  let keys = List.init 500 (fun i -> Value.Int ((i * 7) mod 311)) in
  let r = relation_of_keys keys in
  let t = Btree.build ~order:4 r ~key:0 in
  (* Delete in random order, checking invariants periodically. *)
  let pairs = Array.of_list (List.mapi (fun i k -> (k, i)) keys) in
  Rsj_util.Prng.shuffle_in_place rng pairs;
  Array.iteri
    (fun step (k, id) ->
      Alcotest.(check bool) "every delete succeeds" true (Btree.delete t k id);
      if step mod 50 = 0 then
        match Btree.check_invariants t with
        | Ok () -> ()
        | Error msg -> Alcotest.failf "invariants after %d deletes: %s" step msg)
    pairs;
  Alcotest.(check int) "empty" 0 (Btree.entry_count t);
  Alcotest.(check int) "no keys" 0 (Btree.distinct_key_count t);
  Alcotest.(check int) "height collapsed" 1 (Btree.height t);
  match Btree.check_invariants t with
  | Ok () -> ()
  | Error msg -> Alcotest.fail msg

let btree_delete_model_prop =
  QCheck.Test.make ~name:"btree deletion matches assoc model" ~count:150
    QCheck.(pair (list (pair (int_bound 40) (int_bound 20))) (list (pair (int_bound 40) (int_bound 20))))
    (fun (inserts, deletes) ->
      let t = Btree.create ~order:4 () in
      let model : (int, int list) Hashtbl.t = Hashtbl.create 16 in
      List.iter
        (fun (k, id) ->
          Btree.insert t (Value.Int k) id;
          Hashtbl.replace model k (id :: Option.value ~default:[] (Hashtbl.find_opt model k)))
        inserts;
      List.iter
        (fun (k, id) ->
          let present =
            match Hashtbl.find_opt model k with Some ids -> List.mem id ids | None -> false
          in
          let deleted = Btree.delete t (Value.Int k) id in
          if deleted <> present then QCheck.Test.fail_report "delete result mismatch";
          if present then begin
            let rec remove_one = function
              | [] -> []
              | x :: tl -> if x = id then tl else x :: remove_one tl
            in
            let remaining = remove_one (Hashtbl.find model k) in
            if remaining = [] then Hashtbl.remove model k else Hashtbl.replace model k remaining
          end)
        deletes;
      (match Btree.check_invariants t with
      | Ok () -> ()
      | Error msg -> QCheck.Test.fail_report ("invariants: " ^ msg));
      Hashtbl.fold
        (fun k ids acc ->
          let got = List.sort compare (Array.to_list (Btree.lookup t (Value.Int k))) in
          acc && got = List.sort compare ids)
        model true)

(* qcheck property: btree invariants hold under arbitrary insert
   sequences and lookups agree with a model. *)
let btree_model_prop =
  QCheck.Test.make ~name:"btree matches assoc model" ~count:200
    QCheck.(list (pair small_int small_int))
    (fun pairs ->
      let t = Btree.create ~order:4 () in
      let model = Hashtbl.create 16 in
      List.iteri
        (fun i (k, _) ->
          Btree.insert t (Value.Int k) i;
          Hashtbl.replace model k (i :: Option.value ~default:[] (Hashtbl.find_opt model k)))
        pairs;
      (match Btree.check_invariants t with
      | Ok () -> ()
      | Error msg -> QCheck.Test.fail_report ("invariants: " ^ msg));
      Hashtbl.fold
        (fun k ids acc ->
          let got = Btree.lookup t (Value.Int k) in
          let got = Array.to_list got |> List.sort compare in
          let want = List.sort compare ids in
          acc && got = want)
        model true)

let suite =
  [
    Alcotest.test_case "hash: lookup and multiplicity" `Quick test_hash_lookup;
    Alcotest.test_case "hash: NULL keys excluded" `Quick test_hash_excludes_null;
    Alcotest.test_case "hash: matching tuples" `Quick test_hash_matching_tuples;
    Alcotest.test_case "hash: random_match uniform" `Slow test_hash_random_match_uniform;
    Alcotest.test_case "hash: probe counting" `Quick test_hash_probe_count;
    Alcotest.test_case "hash: empty relation" `Quick test_hash_empty_relation;
    Alcotest.test_case "btree: lookup" `Quick test_btree_lookup;
    Alcotest.test_case "btree: ordered iteration and range" `Quick test_btree_order_and_range;
    Alcotest.test_case "btree: invariants after 2k inserts" `Quick test_btree_many_inserts_invariants;
    Alcotest.test_case "btree: duplicate postings" `Quick test_btree_duplicates_random_match;
    Alcotest.test_case "btree: null ignored" `Quick test_btree_ignores_null;
    Alcotest.test_case "btree: agrees with hash index" `Quick test_btree_agrees_with_hash_index;
    QCheck_alcotest.to_alcotest btree_model_prop;
    Alcotest.test_case "btree: delete basics" `Quick test_btree_delete_basic;
    Alcotest.test_case "btree: delete_key" `Quick test_btree_delete_key;
    Alcotest.test_case "btree: delete everything" `Quick test_btree_delete_everything;
    QCheck_alcotest.to_alcotest btree_delete_model_prop;
  ]

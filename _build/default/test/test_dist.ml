open Rsj_util

let rng () = Prng.create ~seed:0xD157 ()

(* Exact chi-square check of Dist.binomial against the analytic pmf. *)
let check_binomial_distribution ~n ~p ~trials =
  let r = rng () in
  let observed = Array.make (n + 1) 0 in
  for _ = 1 to trials do
    let k = Dist.binomial r ~n ~p in
    Alcotest.(check bool) "in support" true (k >= 0 && k <= n);
    observed.(k) <- observed.(k) + 1
  done;
  (* Merge tail cells with tiny expectation to keep the test valid. *)
  let expected = Array.init (n + 1) (fun k -> float_of_int trials *. exp (Stats_math.log_binomial_pmf ~n ~p k)) in
  let obs = ref [] and exp_ = ref [] in
  let acc_o = ref 0 and acc_e = ref 0. in
  for k = 0 to n do
    acc_o := !acc_o + observed.(k);
    acc_e := !acc_e +. expected.(k);
    if !acc_e >= 10. then begin
      obs := !acc_o :: !obs;
      exp_ := !acc_e :: !exp_;
      acc_o := 0;
      acc_e := 0.
    end
  done;
  if !acc_e > 0. then begin
    match (!obs, !exp_) with
    | o :: os, e :: es ->
        obs := (o + !acc_o) :: os;
        exp_ := (e +. !acc_e) :: es
    | [], [] ->
        obs := [ !acc_o ];
        exp_ := [ !acc_e ]
    | _ -> assert false
  end;
  let observed = Array.of_list (List.rev !obs) in
  let expected = Array.of_list (List.rev !exp_) in
  let res = Stats_math.chi_square_test ~expected ~observed in
  Alcotest.(check bool)
    (Printf.sprintf "binomial(%d,%.3f) chi2 p=%.5f" n p res.p_value)
    true (res.p_value > 0.001)

let test_binomial_edges () =
  let r = rng () in
  Alcotest.(check int) "n=0" 0 (Dist.binomial r ~n:0 ~p:0.5);
  Alcotest.(check int) "p=0" 0 (Dist.binomial r ~n:100 ~p:0.);
  Alcotest.(check int) "p=1" 100 (Dist.binomial r ~n:100 ~p:1.);
  Alcotest.(check int) "p clamped below" 0 (Dist.binomial r ~n:10 ~p:(-0.5));
  Alcotest.(check int) "p clamped above" 10 (Dist.binomial r ~n:10 ~p:1.5);
  Alcotest.check_raises "n < 0" (Invalid_argument "Dist.binomial: n < 0") (fun () ->
      ignore (Dist.binomial r ~n:(-1) ~p:0.5))

let test_binomial_small_mean () = check_binomial_distribution ~n:40 ~p:0.05 ~trials:40_000
let test_binomial_half () = check_binomial_distribution ~n:30 ~p:0.5 ~trials:40_000
let test_binomial_high_p () = check_binomial_distribution ~n:25 ~p:0.9 ~trials:40_000
let test_binomial_large_mean () = check_binomial_distribution ~n:5_000 ~p:0.4 ~trials:20_000

let test_binomial_mean_variance_large () =
  let r = rng () in
  let n = 100_000 and p = 0.37 in
  let trials = 5_000 in
  let xs = Array.init trials (fun _ -> float_of_int (Dist.binomial r ~n ~p)) in
  let mean = Stats_math.mean xs in
  let expected_mean = float_of_int n *. p in
  let sd = sqrt (float_of_int n *. p *. (1. -. p)) in
  (* Sample mean of `trials` draws has sd = sd/sqrt(trials). *)
  let tolerance = 5. *. sd /. sqrt (float_of_int trials) in
  Alcotest.(check bool)
    (Printf.sprintf "mean %.1f ~ %.1f" mean expected_mean)
    true
    (Float.abs (mean -. expected_mean) < tolerance);
  let var = Stats_math.variance xs in
  Alcotest.(check bool)
    (Printf.sprintf "variance %.1f ~ %.1f" var (sd *. sd))
    true
    (Float.abs (var -. (sd *. sd)) < 0.1 *. sd *. sd)

let test_geometric () =
  let r = rng () in
  Alcotest.(check int) "p=1 is 0" 0 (Dist.geometric r ~p:1.);
  let n = 50_000 in
  let acc = ref 0 in
  for _ = 1 to n do
    let g = Dist.geometric r ~p:0.25 in
    Alcotest.(check bool) "non-negative" true (g >= 0);
    acc := !acc + g
  done;
  let mean = float_of_int !acc /. float_of_int n in
  (* E = (1-p)/p = 3 *)
  Alcotest.(check bool) (Printf.sprintf "mean %.3f ~ 3" mean) true (Float.abs (mean -. 3.) < 0.1);
  Alcotest.check_raises "p=0 invalid" (Invalid_argument "Dist.geometric: need 0 < p <= 1")
    (fun () -> ignore (Dist.geometric r ~p:0.))

let test_exponential () =
  let r = rng () in
  let n = 50_000 in
  let acc = ref 0. in
  for _ = 1 to n do
    let x = Dist.exponential r ~rate:2. in
    Alcotest.(check bool) "positive" true (x > 0.);
    acc := !acc +. x
  done;
  let mean = !acc /. float_of_int n in
  Alcotest.(check bool) (Printf.sprintf "mean %.3f ~ 0.5" mean) true (Float.abs (mean -. 0.5) < 0.02)

let test_categorical () =
  let r = rng () in
  let weights = [| 1.; 0.; 3. |] in
  let counts = Array.make 3 0 in
  for _ = 1 to 40_000 do
    let i = Dist.categorical r ~weights in
    counts.(i) <- counts.(i) + 1
  done;
  Alcotest.(check int) "zero weight never drawn" 0 counts.(1);
  let frac0 = float_of_int counts.(0) /. 40_000. in
  Alcotest.(check bool) "proportions" true (Float.abs (frac0 -. 0.25) < 0.02);
  Alcotest.check_raises "all zero"
    (Invalid_argument "Dist.categorical: weights must have positive sum") (fun () ->
      ignore (Dist.categorical r ~weights:[| 0.; 0. |]))

let test_cdf_table () =
  let r = rng () in
  let t = Dist.Cdf_table.of_weights [| 2.; 2.; 6. |] in
  Alcotest.(check int) "support" 3 (Dist.Cdf_table.support t);
  Alcotest.(check (float 1e-9)) "prob" 0.2 (Dist.Cdf_table.prob t 0);
  let counts = Array.make 3 0 in
  for _ = 1 to 50_000 do
    let i = Dist.Cdf_table.draw t r in
    counts.(i) <- counts.(i) + 1
  done;
  let expected = [| 10_000.; 10_000.; 30_000. |] in
  let res = Stats_math.chi_square_test ~expected ~observed:counts in
  Alcotest.(check bool) "cdf draw matches weights" true (res.p_value > 0.001)

let test_zipf_z0_uniform () =
  let r = rng () in
  let z = Dist.Zipf.create ~z:0. ~support:8 in
  let observed = Array.make 8 0 in
  for _ = 1 to 40_000 do
    let v = Dist.Zipf.draw z r in
    Alcotest.(check bool) "rank in [1,8]" true (v >= 1 && v <= 8);
    observed.(v - 1) <- observed.(v - 1) + 1
  done;
  let res = Stats_math.chi_square_uniform ~observed in
  Alcotest.(check bool) "z=0 uniform" true (res.p_value > 0.001)

let test_zipf_probabilities () =
  let z = Dist.Zipf.create ~z:1. ~support:4 in
  let h = 1. +. (1. /. 2.) +. (1. /. 3.) +. (1. /. 4.) in
  Alcotest.(check (float 1e-9)) "rank 1" (1. /. h) (Dist.Zipf.prob z 1);
  Alcotest.(check (float 1e-9)) "rank 4" (1. /. 4. /. h) (Dist.Zipf.prob z 4);
  Alcotest.(check (float 1e-9)) "rank 0 out of domain" 0. (Dist.Zipf.prob z 0);
  Alcotest.(check (float 1e-9)) "rank 5 out of domain" 0. (Dist.Zipf.prob z 5)

let test_zipf_skew_ordering () =
  (* Higher z concentrates more mass on rank 1. *)
  let p_at z = Dist.Zipf.prob (Dist.Zipf.create ~z ~support:100) 1 in
  Alcotest.(check bool) "z=1 > z=0" true (p_at 1. > p_at 0.);
  Alcotest.(check bool) "z=2 > z=1" true (p_at 2. > p_at 1.);
  Alcotest.(check bool) "z=3 > z=2" true (p_at 3. > p_at 2.);
  Alcotest.(check bool) "z=3 rank1 > 0.8" true (p_at 3. > 0.8)

let test_zipf_distribution () =
  let r = rng () in
  let z = Dist.Zipf.create ~z:2. ~support:10 in
  let n = 50_000 in
  let observed = Array.make 10 0 in
  for _ = 1 to n do
    let v = Dist.Zipf.draw z r in
    observed.(v - 1) <- observed.(v - 1) + 1
  done;
  let expected = Dist.Zipf.expected_counts z ~n in
  (* Merge the tiny tail into one cell. *)
  let cut = 5 in
  let obs = Array.make (cut + 1) 0 and exp_ = Array.make (cut + 1) 0. in
  for i = 0 to 9 do
    let j = min i cut in
    obs.(j) <- obs.(j) + observed.(i);
    exp_.(j) <- exp_.(j) +. expected.(i)
  done;
  let res = Stats_math.chi_square_test ~expected:exp_ ~observed:obs in
  Alcotest.(check bool)
    (Printf.sprintf "zipf(2) chi2 p=%.5f" res.p_value)
    true (res.p_value > 0.001)

let test_zipf_invalid () =
  Alcotest.check_raises "support 0" (Invalid_argument "Dist.Zipf.create: support <= 0")
    (fun () -> ignore (Dist.Zipf.create ~z:1. ~support:0));
  Alcotest.check_raises "negative z" (Invalid_argument "Dist.Zipf.create: z < 0") (fun () ->
      ignore (Dist.Zipf.create ~z:(-1.) ~support:10))

let suite =
  [
    Alcotest.test_case "binomial edge cases" `Quick test_binomial_edges;
    Alcotest.test_case "binomial chi2: small mean" `Slow test_binomial_small_mean;
    Alcotest.test_case "binomial chi2: p=0.5" `Slow test_binomial_half;
    Alcotest.test_case "binomial chi2: high p" `Slow test_binomial_high_p;
    Alcotest.test_case "binomial chi2: large mean (mode-centered)" `Slow test_binomial_large_mean;
    Alcotest.test_case "binomial moments at n=100k" `Slow test_binomial_mean_variance_large;
    Alcotest.test_case "geometric mean and edges" `Slow test_geometric;
    Alcotest.test_case "exponential mean" `Slow test_exponential;
    Alcotest.test_case "categorical weights" `Slow test_categorical;
    Alcotest.test_case "cdf table draws" `Slow test_cdf_table;
    Alcotest.test_case "zipf z=0 is uniform" `Slow test_zipf_z0_uniform;
    Alcotest.test_case "zipf analytic probabilities" `Quick test_zipf_probabilities;
    Alcotest.test_case "zipf skew ordering in z" `Quick test_zipf_skew_ordering;
    Alcotest.test_case "zipf z=2 matches pmf" `Slow test_zipf_distribution;
    Alcotest.test_case "zipf rejects bad parameters" `Quick test_zipf_invalid;
  ]

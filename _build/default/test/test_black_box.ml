open Rsj_relation
open Rsj_util
open Rsj_core

let rng () = Prng.create ~seed:0xB1ACB0 ()

(* For WR samplers: each of the r draws must be marginally distributed
   according to the weights; aggregate counts over many runs and
   chi-square against the expected proportions. *)
let check_wr_marginals ~name ~runs ~elements ~weights ~draw =
  let k = Array.length elements in
  let observed = Array.make k 0 in
  let total_draws = ref 0 in
  for _ = 1 to runs do
    Array.iter
      (fun x ->
        observed.(x) <- observed.(x) + 1;
        incr total_draws)
      (draw ())
  done;
  let wsum = Array.fold_left ( +. ) 0. weights in
  let expected =
    Array.map (fun w -> float_of_int !total_draws *. w /. wsum) weights
  in
  let res = Stats_math.chi_square_test ~expected ~observed in
  Alcotest.(check bool)
    (Printf.sprintf "%s marginals chi2 p=%.5f" name res.p_value)
    true (res.p_value > 0.001)

let test_u1_exact_size_and_uniform () =
  let r = rng () in
  let n = 20 in
  let elements = Array.init n Fun.id in
  check_wr_marginals ~name:"U1" ~runs:4_000 ~elements ~weights:(Array.make n 1.)
    ~draw:(fun () ->
      let out = Stream0.to_array (Black_box.u1 r ~n ~r:5 (Stream0.of_array elements)) in
      Alcotest.(check int) "exactly r" 5 (Array.length out);
      out)

let test_u1_order_preserved () =
  let r = rng () in
  let out = Stream0.to_list (Black_box.u1 r ~n:100 ~r:20 (Stream0.of_list (List.init 100 Fun.id))) in
  let sorted = List.sort compare out in
  Alcotest.(check (list int)) "output in stream order" sorted out

let test_u1_r_zero_and_edge () =
  let r = rng () in
  Alcotest.(check (list int)) "r=0 empty" []
    (Stream0.to_list (Black_box.u1 r ~n:5 ~r:0 (Stream0.of_list [ 1; 2; 3; 4; 5 ])));
  Alcotest.(check int) "r=n possible" 10
    (List.length (Stream0.to_list (Black_box.u1 r ~n:10 ~r:10 (Stream0.of_list (List.init 10 Fun.id)))));
  Alcotest.(check bool) "n=0 with r>0 invalid" true
    (try
       ignore (Black_box.u1 r ~n:0 ~r:1 (Stream0.empty ()));
       false
     with Invalid_argument _ -> true)

let test_u1_short_stream_fails () =
  let r = rng () in
  let s = Black_box.u1 r ~n:10 ~r:10 (Stream0.of_list [ 1; 2 ]) in
  Alcotest.(check bool) "declared n too large fails" true
    (try
       ignore (Stream0.to_list s);
       false
     with Failure _ -> true)

let test_u2_size_and_uniform () =
  let r = rng () in
  let n = 15 in
  let elements = Array.init n Fun.id in
  check_wr_marginals ~name:"U2" ~runs:4_000 ~elements ~weights:(Array.make n 1.)
    ~draw:(fun () ->
      let out = Black_box.u2 r ~r:4 (Stream0.of_array elements) in
      Alcotest.(check int) "exactly r slots" 4 (Array.length out);
      out)

let test_u2_small_stream () =
  let r = rng () in
  (* Stream smaller than r: still r WR draws (duplicates expected). *)
  let out = Black_box.u2 r ~r:10 (Stream0.of_list [ 42 ]) in
  Alcotest.(check (array int)) "all the single element" (Array.make 10 42) out;
  Alcotest.(check (array int)) "empty stream" [||] (Black_box.u2 r ~r:5 (Stream0.empty ()));
  Alcotest.(check (array int)) "r=0" [||] (Black_box.u2 r ~r:0 (Stream0.of_list [ 1 ]))

let test_wr1_weighted_marginals () =
  let r = rng () in
  let weights = [| 1.; 2.; 3.; 4. |] in
  let elements = [| 0; 1; 2; 3 |] in
  check_wr_marginals ~name:"WR1" ~runs:5_000 ~elements ~weights ~draw:(fun () ->
      Stream0.to_array
        (Black_box.wr1 r ~total_weight:10. ~r:4
           ~weight:(fun i -> weights.(i))
           (Stream0.of_array elements)))

let test_wr1_zero_weight_never_sampled () =
  let r = rng () in
  for _ = 1 to 200 do
    let out =
      Stream0.to_list
        (Black_box.wr1 r ~total_weight:5. ~r:3
           ~weight:(fun i -> if i = 1 then 0. else 2.5)
           (Stream0.of_list [ 0; 1; 2 ]))
    in
    Alcotest.(check bool) "never the zero-weight element" false (List.mem 1 out)
  done

let test_wr1_exhaustion_failure () =
  let r = rng () in
  let s =
    Black_box.wr1 r ~total_weight:100. ~r:2 ~weight:(fun _ -> 1.) (Stream0.of_list [ 0; 1 ])
  in
  Alcotest.(check bool) "overstated W fails" true
    (try
       ignore (Stream0.to_list s);
       false
     with Failure _ -> true)

let test_wr2_weighted_marginals () =
  let r = rng () in
  let weights = [| 5.; 1.; 1.; 3. |] in
  let elements = [| 0; 1; 2; 3 |] in
  check_wr_marginals ~name:"WR2" ~runs:5_000 ~elements ~weights ~draw:(fun () ->
      Black_box.wr2 r ~r:4 ~weight:(fun i -> weights.(i)) (Stream0.of_array elements))

let test_wr2_all_zero_weights () =
  let r = rng () in
  Alcotest.(check (array int)) "no positive weight -> empty" [||]
    (Black_box.wr2 r ~r:3 ~weight:(fun _ -> 0.) (Stream0.of_list [ 1; 2; 3 ]))

let test_coin_flip_distribution () =
  let r = rng () in
  let n = 2_000 and f = 0.25 in
  let sizes =
    Array.init 300 (fun _ ->
        float_of_int
          (List.length (Stream0.to_list (Black_box.coin_flip r ~f (Stream0.of_list (List.init n Fun.id))))))
  in
  let mean = Stats_math.mean sizes in
  let expected = float_of_int n *. f in
  let sd = sqrt (float_of_int n *. f *. (1. -. f)) in
  Alcotest.(check bool)
    (Printf.sprintf "CF mean %.1f ~ %.1f" mean expected)
    true
    (Float.abs (mean -. expected) < 5. *. sd /. sqrt 300.)

let test_coin_flip_skip_matches_coin_flip () =
  let r1 = Prng.create ~seed:77 () in
  let r2 = Prng.create ~seed:78 () in
  let n = 5_000 and f = 0.1 in
  let runs = 200 in
  let mean_of sampler rgen =
    let acc = ref 0 in
    for _ = 1 to runs do
      acc := !acc + List.length (Stream0.to_list (sampler rgen (Stream0.of_list (List.init n Fun.id))))
    done;
    float_of_int !acc /. float_of_int runs
  in
  let m1 = mean_of (fun g s -> Black_box.coin_flip g ~f s) r1 in
  let m2 = mean_of (fun g s -> Black_box.coin_flip_skip g ~f s) r2 in
  Alcotest.(check bool)
    (Printf.sprintf "skip %.1f ~ flip %.1f" m2 m1)
    true
    (Float.abs (m1 -. m2) < 30.);
  (* edge fractions *)
  let r = rng () in
  Alcotest.(check (list int)) "f=0" []
    (Stream0.to_list (Black_box.coin_flip_skip r ~f:0. (Stream0.of_list [ 1; 2 ])));
  Alcotest.(check (list int)) "f=1" [ 1; 2 ]
    (Stream0.to_list (Black_box.coin_flip_skip r ~f:1. (Stream0.of_list [ 1; 2 ])))

let test_wor_sequential () =
  let r = rng () in
  let n = 30 in
  for _ = 1 to 300 do
    let out = Stream0.to_list (Black_box.wor_sequential r ~n ~r:7 (Stream0.of_list (List.init n Fun.id))) in
    Alcotest.(check int) "exactly r" 7 (List.length out);
    Alcotest.(check bool) "distinct" true (List.length (List.sort_uniq compare out) = 7);
    Alcotest.(check (list int)) "order preserved" (List.sort compare out) out
  done;
  (* marginal uniformity: each element in ~ r/n of samples *)
  let counts = Array.make n 0 in
  let runs = 20_000 in
  for _ = 1 to runs do
    List.iter
      (fun x -> counts.(x) <- counts.(x) + 1)
      (Stream0.to_list (Black_box.wor_sequential r ~n ~r:3 (Stream0.of_list (List.init n Fun.id))))
  done;
  let res = Stats_math.chi_square_uniform ~observed:counts in
  Alcotest.(check bool) "WoR inclusion uniform" true (res.p_value > 0.001);
  Alcotest.(check bool) "r > n rejected" true
    (try
       ignore (Black_box.wor_sequential r ~n:3 ~r:5 (Stream0.of_list [ 1; 2; 3 ]));
       false
     with Invalid_argument _ -> true)

let test_reservoir_wor () =
  let r = rng () in
  let out = Black_box.reservoir_wor r ~r:5 (Stream0.of_list (List.init 50 Fun.id)) in
  Alcotest.(check int) "size" 5 (Array.length out);
  Alcotest.(check bool) "distinct" true
    (List.length (List.sort_uniq compare (Array.to_list out)) = 5);
  (* fewer than r elements: returns all *)
  let small = Black_box.reservoir_wor r ~r:5 (Stream0.of_list [ 1; 2 ]) in
  Alcotest.(check int) "short stream" 2 (Array.length small);
  (* uniform membership *)
  let n = 20 in
  let counts = Array.make n 0 in
  for _ = 1 to 20_000 do
    Array.iter
      (fun x -> counts.(x) <- counts.(x) + 1)
      (Black_box.reservoir_wor r ~r:4 (Stream0.of_list (List.init n Fun.id)))
  done;
  let res = Stats_math.chi_square_uniform ~observed:counts in
  Alcotest.(check bool) "algorithm R uniform" true (res.p_value > 0.001)

let test_weighted_wor () =
  let r = rng () in
  (* First-draw marginal of weighted WoR with r=1 equals weighted WR. *)
  let weights = [| 1.; 4.; 5. |] in
  let counts = Array.make 3 0 in
  let runs = 30_000 in
  for _ = 1 to runs do
    let out = Black_box.weighted_wor r ~r:1 ~weight:(fun i -> weights.(i)) (Stream0.of_list [ 0; 1; 2 ]) in
    counts.(out.(0)) <- counts.(out.(0)) + 1
  done;
  let expected = Array.map (fun w -> float_of_int runs *. w /. 10.) weights in
  let res = Stats_math.chi_square_test ~expected ~observed:counts in
  Alcotest.(check bool) "A-Res first draw matches weights" true (res.p_value > 0.001);
  (* distinctness and zero weights *)
  let out = Black_box.weighted_wor r ~r:2 ~weight:(fun i -> if i = 0 then 0. else 1.) (Stream0.of_list [ 0; 1; 2 ]) in
  Alcotest.(check bool) "zero weight excluded" false (Array.mem 0 out);
  Alcotest.(check int) "size 2" 2 (Array.length out)

let test_weighted_coin_flip () =
  let r = rng () in
  let n = 1_000 in
  let weight i = if i < 100 then 9. else 1. in
  let total_weight = (100. *. 9.) +. 900. in
  let heavy = ref 0 and light = ref 0 in
  for _ = 1 to 100 do
    Stream0.iter
      (fun i -> if i < 100 then incr heavy else incr light)
      (Black_box.weighted_coin_flip r ~f:0.1 ~total_weight ~n ~weight
         (Stream0.of_list (List.init n Fun.id)))
  done;
  (* heavy inclusion prob = min(1, 0.1*1000*9/1800) = 0.5; light = 1/18 *)
  let heavy_rate = float_of_int !heavy /. (100. *. 100.) in
  let light_rate = float_of_int !light /. (100. *. 900.) in
  Alcotest.(check bool) (Printf.sprintf "heavy %.3f ~ 0.5" heavy_rate) true
    (Float.abs (heavy_rate -. 0.5) < 0.03);
  Alcotest.(check bool) (Printf.sprintf "light %.3f ~ 0.0556" light_rate) true
    (Float.abs (light_rate -. (1. /. 18.)) < 0.01)

let suite =
  [
    Alcotest.test_case "U1: size and uniformity" `Slow test_u1_exact_size_and_uniform;
    Alcotest.test_case "U1: order preserved" `Quick test_u1_order_preserved;
    Alcotest.test_case "U1: r=0 / r=n / n=0" `Quick test_u1_r_zero_and_edge;
    Alcotest.test_case "U1: short stream fails loudly" `Quick test_u1_short_stream_fails;
    Alcotest.test_case "U2: size and uniformity" `Slow test_u2_size_and_uniform;
    Alcotest.test_case "U2: stream smaller than r" `Quick test_u2_small_stream;
    Alcotest.test_case "WR1: weighted marginals" `Slow test_wr1_weighted_marginals;
    Alcotest.test_case "WR1: zero weights never sampled" `Quick test_wr1_zero_weight_never_sampled;
    Alcotest.test_case "WR1: overstated total weight fails" `Quick test_wr1_exhaustion_failure;
    Alcotest.test_case "WR2: weighted marginals" `Slow test_wr2_weighted_marginals;
    Alcotest.test_case "WR2: all-zero weights" `Quick test_wr2_all_zero_weights;
    Alcotest.test_case "CF: binomial sample size" `Slow test_coin_flip_distribution;
    Alcotest.test_case "CF skip variant matches" `Slow test_coin_flip_skip_matches_coin_flip;
    Alcotest.test_case "WoR sequential (Algorithm S)" `Slow test_wor_sequential;
    Alcotest.test_case "WoR reservoir (Algorithm R)" `Slow test_reservoir_wor;
    Alcotest.test_case "weighted WoR (A-Res)" `Slow test_weighted_wor;
    Alcotest.test_case "weighted CF inclusion rates" `Slow test_weighted_coin_flip;
  ]

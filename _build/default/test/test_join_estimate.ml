open Rsj_relation
module Join_estimate = Rsj_stats.Join_estimate
module Frequency = Rsj_stats.Frequency
module Histogram = Rsj_stats.Histogram
module Zipf_tables = Rsj_workload.Zipf_tables

let instance ~z1 ~z2 =
  let pair = Zipf_tables.make_pair ~seed:0x1E ~n1:1_500 ~n2:6_000 ~z1 ~z2 ~domain:150 () in
  let truth =
    Frequency.join_size
      (Frequency.of_relation pair.outer ~key:Zipf_tables.col2)
      (Frequency.of_relation pair.inner ~key:Zipf_tables.col2)
  in
  (pair, float_of_int truth)

let within_sigmas ~sigmas (est : Join_estimate.estimate) truth =
  Float.abs (est.value -. truth) <= (sigmas *. est.stderr) +. (0.02 *. truth)

let test_cross_product () =
  let pair, truth = instance ~z1:0. ~z2:1. in
  let rng = Rsj_util.Prng.create ~seed:1 () in
  let est =
    Join_estimate.cross_product rng ~left:pair.outer ~right:pair.inner
      ~left_key:Zipf_tables.col2 ~right_key:Zipf_tables.col2 ~r1:800 ~r2:800
  in
  Alcotest.(check int) "draw accounting" 1_600 est.draws;
  Alcotest.(check bool)
    (Printf.sprintf "estimate %.0f ± %.0f vs truth %.0f" est.value est.stderr truth)
    true
    (within_sigmas ~sigmas:4. est truth)

let test_index_assisted () =
  let pair, truth = instance ~z1:1. ~z2:2. in
  let idx = Rsj_index.Hash_index.build pair.inner ~key:Zipf_tables.col2 in
  let rng = Rsj_util.Prng.create ~seed:2 () in
  let est =
    Join_estimate.index_assisted rng ~left:pair.outer ~right_index:idx
      ~left_key:Zipf_tables.col2 ~draws:1_000
  in
  Alcotest.(check bool)
    (Printf.sprintf "estimate %.0f ± %.0f vs truth %.0f" est.value est.stderr truth)
    true
    (within_sigmas ~sigmas:4. est truth)

let test_bifocal () =
  let pair, truth = instance ~z1:1. ~z2:2. in
  let stats = Frequency.of_relation pair.inner ~key:Zipf_tables.col2 in
  let histogram = Histogram.End_biased.build_fraction stats ~fraction:0.02 in
  let rng = Rsj_util.Prng.create ~seed:3 () in
  let est =
    Join_estimate.bifocal rng ~left:pair.outer ~right:pair.inner ~left_key:Zipf_tables.col2
      ~right_key:Zipf_tables.col2 ~histogram ~draws:1_000
  in
  Alcotest.(check bool)
    (Printf.sprintf "estimate %.0f ± %.0f vs truth %.0f" est.value est.stderr truth)
    true
    (within_sigmas ~sigmas:4. est truth)

let test_bifocal_beats_index_assisted_variance_under_skew () =
  (* The hot values are counted exactly, so bifocal's stderr should be
     well below index-assisted's on skewed data at equal draws. *)
  let pair, _ = instance ~z1:2. ~z2:3. in
  let idx = Rsj_index.Hash_index.build pair.inner ~key:Zipf_tables.col2 in
  let stats = Frequency.of_relation pair.inner ~key:Zipf_tables.col2 in
  let histogram = Histogram.End_biased.build_fraction stats ~fraction:0.02 in
  let rng = Rsj_util.Prng.create ~seed:4 () in
  let ia =
    Join_estimate.index_assisted rng ~left:pair.outer ~right_index:idx
      ~left_key:Zipf_tables.col2 ~draws:400
  in
  let bf =
    Join_estimate.bifocal rng ~left:pair.outer ~right:pair.inner ~left_key:Zipf_tables.col2
      ~right_key:Zipf_tables.col2 ~histogram ~draws:400
  in
  Alcotest.(check bool)
    (Printf.sprintf "bifocal stderr %.0f << index-assisted %.0f" bf.stderr ia.stderr)
    true
    (bf.stderr < ia.stderr /. 4.)

let test_empty_inputs () =
  let schema = Zipf_tables.schema in
  let empty = Relation.create ~name:"empty" schema in
  let nonempty =
    Relation.of_tuples ~name:"ne" schema [ [| Value.Int 1; Value.Int 1; Value.str "p" |] ]
  in
  let rng = Rsj_util.Prng.create () in
  let est =
    Join_estimate.cross_product rng ~left:empty ~right:nonempty ~left_key:1 ~right_key:1
      ~r1:10 ~r2:10
  in
  Alcotest.(check (float 0.)) "empty left" 0. est.value;
  let idx = Rsj_index.Hash_index.build nonempty ~key:1 in
  let est2 = Join_estimate.index_assisted rng ~left:empty ~right_index:idx ~left_key:1 ~draws:5 in
  Alcotest.(check (float 0.)) "empty left (index)" 0. est2.value;
  Alcotest.(check bool) "bad draws" true
    (try
       ignore (Join_estimate.index_assisted rng ~left:nonempty ~right_index:idx ~left_key:1 ~draws:0);
       false
     with Invalid_argument _ -> true)

let test_disjoint_join_estimates_zero () =
  let schema = Zipf_tables.schema in
  let mk name v =
    Relation.of_tuples ~name schema
      (List.init 50 (fun i -> [| Value.Int i; Value.Int v; Value.str "p" |]))
  in
  let rng = Rsj_util.Prng.create ~seed:5 () in
  let est =
    Join_estimate.cross_product rng ~left:(mk "a" 1) ~right:(mk "b" 2) ~left_key:1 ~right_key:1
      ~r1:50 ~r2:50
  in
  Alcotest.(check (float 0.)) "no matches" 0. est.value

let suite =
  [
    Alcotest.test_case "cross-product estimator" `Quick test_cross_product;
    Alcotest.test_case "index-assisted estimator" `Quick test_index_assisted;
    Alcotest.test_case "bifocal estimator" `Quick test_bifocal;
    Alcotest.test_case "bifocal variance advantage under skew" `Quick
      test_bifocal_beats_index_assisted_variance_under_skew;
    Alcotest.test_case "empty inputs" `Quick test_empty_inputs;
    Alcotest.test_case "disjoint join" `Quick test_disjoint_join_estimates_zero;
  ]

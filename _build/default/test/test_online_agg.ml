open Rsj_relation
open Rsj_core

let schema = Schema.of_list [ ("a", Value.T_int); ("b", Value.T_int) ]

let rel rows =
  Relation.of_tuples ~name:"oa" schema
    (List.map (fun (a, b) -> [| Value.Int a; Value.Int b |]) rows)

(* A 2-relation chain whose join tuples carry a known-mean value. *)
let chain () =
  let r1 = rel (List.init 50 (fun i -> (i mod 5, i))) in
  let r2 = rel (List.init 100 (fun i -> (i mod 5, i))) in
  let spec = { Chain_sample.relations = [| r1; r2 |]; join_keys = [| (0, 0) |] } in
  Chain_sample.prepare spec

let test_fixed_draws () =
  let c = chain () in
  let rng = Rsj_util.Prng.create ~seed:1 () in
  let p =
    Online_agg.estimate_mean
      ~draw:(fun () -> Chain_sample.draw c rng ())
      ~value:(fun t -> Value.to_float_exn (Tuple.get t 1))
      (Online_agg.Draws 500)
  in
  Alcotest.(check int) "exactly 500 draws" 500 p.Online_agg.draws;
  (* True mean of r1.b over the join: b uniform over 0..49 weighted by
     matches (each r1 row matches 20 r2 rows uniformly) -> mean 24.5 *)
  Alcotest.(check bool)
    (Printf.sprintf "estimate %.2f near 24.5" p.Online_agg.estimate.Aqp.value)
    true
    (Float.abs (p.Online_agg.estimate.Aqp.value -. 24.5) < 3.)

let test_relative_ci_stops () =
  let c = chain () in
  let rng = Rsj_util.Prng.create ~seed:2 () in
  let p =
    Online_agg.estimate_mean
      ~draw:(fun () -> Chain_sample.draw c rng ())
      ~value:(fun t -> 10. +. Value.to_float_exn (Tuple.get t 1))
      (Online_agg.Relative_ci 0.05)
  in
  let e = p.Online_agg.estimate in
  let half = e.Aqp.ci_high -. e.Aqp.value in
  Alcotest.(check bool) "stopped past CLT minimum" true (p.Online_agg.draws >= 30);
  Alcotest.(check bool)
    (Printf.sprintf "ci tight: %.3f <= 5%% of %.2f" half e.Aqp.value)
    true
    (half <= 0.05 *. e.Aqp.value +. 1e-9)

let test_absolute_ci_stops () =
  let c = chain () in
  let rng = Rsj_util.Prng.create ~seed:3 () in
  let p =
    Online_agg.estimate_mean
      ~draw:(fun () -> Chain_sample.draw c rng ())
      ~value:(fun t -> Value.to_float_exn (Tuple.get t 1))
      (Online_agg.Absolute_ci 1.0)
  in
  let e = p.Online_agg.estimate in
  Alcotest.(check bool) "half-width <= 1" true (e.Aqp.ci_high -. e.Aqp.value <= 1.0 +. 1e-9)

let test_count_where_scaled () =
  let c = chain () in
  let n = int_of_float (Chain_sample.join_size c) in
  Alcotest.(check int) "join size" 1000 n;
  let rng = Rsj_util.Prng.create ~seed:4 () in
  let p =
    Online_agg.estimate_count_where
      ~draw:(fun () -> Chain_sample.draw c rng ())
      ~pred:(fun t -> Value.to_int_exn (Tuple.get t 0) = 0)
      ~join_size:n (Online_agg.Draws 2_000)
  in
  (* Value 0 holds 10 of 50 r1 rows and 20 of 100 r2 rows: 200 of 1000
     join tuples. *)
  Alcotest.(check bool)
    (Printf.sprintf "count %.0f near 200" p.Online_agg.estimate.Aqp.value)
    true
    (Float.abs (p.Online_agg.estimate.Aqp.value -. 200.) < 60.)

let test_empty_join () =
  let p =
    Online_agg.estimate_mean ~draw:(fun () -> None) ~value:(fun _ -> 1.) (Online_agg.Draws 100)
  in
  Alcotest.(check int) "no draws" 0 p.Online_agg.draws

let test_max_draws_cap () =
  let c = chain () in
  let rng = Rsj_util.Prng.create ~seed:5 () in
  let p =
    Online_agg.estimate_mean
      ~draw:(fun () -> Chain_sample.draw c rng ())
      ~value:(fun t -> Value.to_float_exn (Tuple.get t 1))
      ~max_draws:64
      (Online_agg.Absolute_ci 0.000001)
  in
  Alcotest.(check int) "cap respected" 64 p.Online_agg.draws

let test_progress_callback () =
  let c = chain () in
  let rng = Rsj_util.Prng.create ~seed:6 () in
  let reports = ref [] in
  ignore
    (Online_agg.estimate_mean
       ~draw:(fun () -> Chain_sample.draw c rng ())
       ~value:(fun t -> Value.to_float_exn (Tuple.get t 1))
       ~on_progress:(fun p -> reports := p.Online_agg.draws :: !reports)
       (Online_agg.Draws 100));
  Alcotest.(check (list int)) "doubling schedule" [ 1; 2; 4; 8; 16; 32; 64 ]
    (List.rev !reports)

let suite =
  [
    Alcotest.test_case "fixed draw budget" `Quick test_fixed_draws;
    Alcotest.test_case "relative CI target" `Quick test_relative_ci_stops;
    Alcotest.test_case "absolute CI target" `Quick test_absolute_ci_stops;
    Alcotest.test_case "count-where scaling" `Quick test_count_where_scaled;
    Alcotest.test_case "empty join" `Quick test_empty_join;
    Alcotest.test_case "max draws cap" `Quick test_max_draws_cap;
    Alcotest.test_case "progress doubling" `Quick test_progress_callback;
  ]

open Rsj_relation
open Rsj_core

let schema = Schema.of_list [ ("i", Value.T_int) ]

let rel n = Relation.of_tuples ~name:"paged_src" schema (List.init n (fun i -> [| Value.Int i |]))

let test_geometry () =
  let p = Paged.create ~tuples_per_page:10 (rel 95) in
  Alcotest.(check int) "pages" 10 (Paged.page_count p);
  Alcotest.(check int) "cardinality" 95 (Paged.cardinality p);
  Alcotest.(check int) "page of 0" 0 (Paged.page_of_tuple p 0);
  Alcotest.(check int) "page of 10" 1 (Paged.page_of_tuple p 10);
  Alcotest.(check int) "page of 94" 9 (Paged.page_of_tuple p 94);
  Alcotest.(check int) "last page short" 5 (Array.length (Paged.read_page p 9))

let test_invalid () =
  Alcotest.(check bool) "bad page size" true
    (try
       ignore (Paged.create ~tuples_per_page:0 (rel 5));
       false
     with Invalid_argument _ -> true);
  let p = Paged.create ~tuples_per_page:10 (rel 20) in
  Alcotest.(check bool) "page out of range" true
    (try
       ignore (Paged.read_page p 2);
       false
     with Invalid_argument _ -> true);
  Alcotest.(check bool) "tuple out of range" true
    (try
       ignore (Paged.fetch p 20);
       false
     with Invalid_argument _ -> true)

let test_io_counting_and_cache () =
  let p = Paged.create ~tuples_per_page:10 (rel 100) in
  Alcotest.(check int) "fresh" 0 (Paged.pages_read p);
  ignore (Paged.read_page p 3);
  ignore (Paged.read_page p 3);
  Alcotest.(check int) "cached re-read is free" 1 (Paged.pages_read p);
  ignore (Paged.read_page p 4);
  ignore (Paged.read_page p 3);
  Alcotest.(check int) "cache holds one page" 3 (Paged.pages_read p);
  Paged.reset_io p;
  Alcotest.(check int) "reset" 0 (Paged.pages_read p)

let test_scan_matches_relation () =
  let r = rel 42 in
  let p = Paged.create ~tuples_per_page:10 r in
  let scanned = Stream0.to_list (Paged.scan p) in
  Alcotest.(check int) "all tuples" 42 (List.length scanned);
  List.iteri
    (fun i t -> Alcotest.(check int) "order" i (Value.to_int_exn (Tuple.get t 0)))
    scanned;
  Alcotest.(check int) "5 pages read" 5 (Paged.pages_read p)

let test_fetch_value () =
  let p = Paged.create ~tuples_per_page:7 (rel 50) in
  Alcotest.(check int) "fetch 33" 33 (Value.to_int_exn (Tuple.get (Paged.fetch p 33) 0))

let test_block_sampling_cost () =
  let p = Paged.create ~tuples_per_page:10 (rel 1_000) in
  let rng = Rsj_util.Prng.create ~seed:1 () in
  (* Full-scan baseline: all 100 pages. *)
  Paged.reset_io p;
  let s1 = Block_sample.scan_sample rng ~r:5 p in
  Alcotest.(check int) "scan reads every page" 100 (Paged.pages_read p);
  Alcotest.(check int) "sample size" 5 (Array.length s1);
  (* Position-based: at most r pages. *)
  Paged.reset_io p;
  let s2 = Block_sample.u1_paged rng ~r:5 p in
  Alcotest.(check bool)
    (Printf.sprintf "few pages (%d)" (Paged.pages_read p))
    true
    (Paged.pages_read p <= 5);
  Alcotest.(check int) "sample size" 5 (Array.length s2)

let test_u1_paged_uniform () =
  let p = Paged.create ~tuples_per_page:4 (rel 20) in
  let rng = Rsj_util.Prng.create ~seed:2 () in
  let counts = Array.make 20 0 in
  for _ = 1 to 8_000 do
    Array.iter
      (fun t -> counts.(Value.to_int_exn (Tuple.get t 0)) <- counts.(Value.to_int_exn (Tuple.get t 0)) + 1)
      (Block_sample.u1_paged rng ~r:3 p)
  done;
  let res = Rsj_util.Stats_math.chi_square_uniform ~observed:counts in
  Alcotest.(check bool)
    (Printf.sprintf "paged WR uniform p=%.5f" res.p_value)
    true (res.p_value > 0.001)

let test_wor_skip () =
  let p = Paged.create ~tuples_per_page:10 (rel 200) in
  let rng = Rsj_util.Prng.create ~seed:3 () in
  Paged.reset_io p;
  let s = Block_sample.wor_skip rng ~n:200 ~r:8 p in
  Alcotest.(check int) "8 draws" 8 (Array.length s);
  let vals = Array.to_list (Array.map (fun t -> Value.to_int_exn (Tuple.get t 0)) s) in
  Alcotest.(check int) "distinct" 8 (List.length (List.sort_uniq compare vals));
  Alcotest.(check bool) "skips pages" true (Paged.pages_read p <= 8);
  Alcotest.(check bool) "n mismatch detected" true
    (try
       ignore (Block_sample.wor_skip rng ~n:100 ~r:2 p);
       false
     with Invalid_argument _ -> true)

let test_positions_sorted () =
  let rng = Rsj_util.Prng.create ~seed:4 () in
  let pos = Block_sample.wr_positions rng ~n:1_000 ~r:50 in
  Alcotest.(check int) "50 positions" 50 (Array.length pos);
  for i = 1 to 49 do
    Alcotest.(check bool) "ascending" true (pos.(i) >= pos.(i - 1))
  done;
  Array.iter (fun x -> Alcotest.(check bool) "in range" true (x >= 0 && x < 1_000)) pos

let suite =
  [
    Alcotest.test_case "page geometry" `Quick test_geometry;
    Alcotest.test_case "argument validation" `Quick test_invalid;
    Alcotest.test_case "I/O counting and pin cache" `Quick test_io_counting_and_cache;
    Alcotest.test_case "paged scan matches relation" `Quick test_scan_matches_relation;
    Alcotest.test_case "fetch by global index" `Quick test_fetch_value;
    Alcotest.test_case "block sampling page cost" `Quick test_block_sampling_cost;
    Alcotest.test_case "paged WR sampling uniform" `Slow test_u1_paged_uniform;
    Alcotest.test_case "WoR skip sampling" `Quick test_wor_skip;
    Alcotest.test_case "sorted position plan" `Quick test_positions_sorted;
  ]

open Rsj_util
open Rsj_core

let rng () = Prng.create ~seed:0xC0 ()

let test_semantics_conversions_table () =
  let open Semantics in
  Alcotest.(check bool) "WR->WoR" true (convertible ~from:WR ~into:WoR);
  Alcotest.(check bool) "CF->WoR" true (convertible ~from:CF ~into:WoR);
  Alcotest.(check bool) "WoR->WR" true (convertible ~from:WoR ~into:WR);
  Alcotest.(check bool) "WR->CF impossible" false (convertible ~from:WR ~into:CF);
  Alcotest.(check bool) "WoR->CF impossible" false (convertible ~from:WoR ~into:CF);
  Alcotest.(check bool) "identity" true (convertible ~from:CF ~into:CF);
  Alcotest.(check int) "three semantics" 3 (List.length all);
  Alcotest.(check string) "naming" "with-replacement" (to_string WR);
  Alcotest.(check (float 1e-9)) "expected size" 12. (expected_size WR ~n:120 ~f:0.1)

let test_wr_to_wor_distinct () =
  let r = rng () in
  let wr = [| 1; 1; 2; 3; 3; 3; 4 |] in
  let wor = Convert.wr_to_wor r ~r:10 wr in
  let sorted = List.sort compare (Array.to_list wor) in
  Alcotest.(check (list int)) "all distinct values kept" [ 1; 2; 3; 4 ] sorted

let test_wr_to_wor_truncates () =
  let r = rng () in
  let wor = Convert.wr_to_wor r ~r:2 [| 1; 2; 3; 4 |] in
  Alcotest.(check int) "truncated to r" 2 (Array.length wor);
  Alcotest.(check bool) "distinct" true (wor.(0) <> wor.(1))

let test_wr_to_wor_unbiased_under_duplicates () =
  (* With WR sample [x; x; y], the kept singleton should not favour x
     because of its duplicate given both appear... it will keep both x
     and y when r >= 2; with r = 1 positions are scanned in random
     order so x (2 slots) is kept 2/3 of the time — matching a uniform
     draw over WR sample positions. *)
  let r = rng () in
  let x_kept = ref 0 in
  let runs = 30_000 in
  for _ = 1 to runs do
    let out = Convert.wr_to_wor r ~r:1 [| 1; 1; 2 |] in
    if out.(0) = 1 then incr x_kept
  done;
  let rate = float_of_int !x_kept /. float_of_int runs in
  Alcotest.(check bool) (Printf.sprintf "rate %.3f ~ 2/3" rate) true
    (Float.abs (rate -. (2. /. 3.)) < 0.02)

let test_cf_to_wor () =
  let r = rng () in
  (match Convert.cf_to_wor r ~r:3 [| 10; 20; 30; 40; 50 |] with
  | None -> Alcotest.fail "expected a sample"
  | Some s ->
      Alcotest.(check int) "size" 3 (Array.length s);
      Alcotest.(check bool) "distinct positions" true
        (List.length (List.sort_uniq compare (Array.to_list s)) = 3));
  Alcotest.(check bool) "too small CF sample" true (Convert.cf_to_wor r ~r:3 [| 1; 2 |] = None)

let test_cf_oversample_fraction () =
  let f' = Convert.cf_oversample_fraction ~f:0.01 ~n:100_000 () in
  Alcotest.(check bool) "inflated" true (f' > 0.01);
  Alcotest.(check bool) "sane" true (f' < 0.05);
  Alcotest.(check (float 0.)) "f=0" 0. (Convert.cf_oversample_fraction ~f:0. ~n:100 ());
  (* The inflated fraction actually delivers >= fn with high prob. *)
  let r = rng () in
  let n = 50_000 in
  let f = 0.01 in
  let f2 = Convert.cf_oversample_fraction ~f ~n () in
  let failures = ref 0 in
  for _ = 1 to 50 do
    let size = Dist.binomial r ~n ~p:f2 in
    if size < int_of_float (f *. float_of_int n) then incr failures
  done;
  Alcotest.(check int) "no shortfalls in 50 runs" 0 !failures

let test_wor_to_wr () =
  let r = rng () in
  let wr = Convert.wor_to_wr r ~r:100 [| 1; 2; 3 |] in
  Alcotest.(check int) "size" 100 (Array.length wr);
  Array.iter (fun x -> Alcotest.(check bool) "members" true (List.mem x [ 1; 2; 3 ])) wr;
  Alcotest.(check (array int)) "r=0 from empty" [||] (Convert.wor_to_wr r ~r:0 [||]);
  Alcotest.(check bool) "empty source with r>0 rejected" true
    (try
       ignore (Convert.wor_to_wr r ~r:1 [||]);
       false
     with Invalid_argument _ -> true)

(* ---------- reservoirs ---------- *)

let test_wr_reservoir_marginals () =
  let r = rng () in
  let weights = [| 1.; 2.; 7. |] in
  let counts = Array.make 3 0 in
  let runs = 8_000 in
  for _ = 1 to runs do
    let res = Reservoir.Wr.create ~r:3 in
    Array.iteri (fun i w -> Reservoir.Wr.feed r res ~weight:w i) weights;
    Array.iter (fun x -> counts.(x) <- counts.(x) + 1) (Reservoir.Wr.contents res)
  done;
  let total = float_of_int (3 * runs) in
  let expected = Array.map (fun w -> total *. w /. 10.) weights in
  let res = Stats_math.chi_square_test ~expected ~observed:counts in
  Alcotest.(check bool) "weighted slots" true (res.p_value > 0.001)

let test_wr_reservoir_bookkeeping () =
  let r = rng () in
  let res = Reservoir.Wr.create ~r:2 in
  Alcotest.(check (array int)) "empty" [||] (Reservoir.Wr.contents res);
  Reservoir.Wr.feed r res ~weight:0. 1;
  Alcotest.(check int) "zero weight not fed" 0 (Reservoir.Wr.fed_count res);
  Reservoir.Wr.feed r res ~weight:2.5 2;
  Alcotest.(check int) "fed" 1 (Reservoir.Wr.fed_count res);
  Alcotest.(check (float 1e-9)) "total weight" 2.5 (Reservoir.Wr.total_weight res);
  Alcotest.(check bool) "negative weight rejected" true
    (try
       Reservoir.Wr.feed r res ~weight:(-1.) 3;
       false
     with Invalid_argument _ -> true);
  (* r = 0 still tracks mass *)
  let res0 = Reservoir.Wr.create ~r:0 in
  Reservoir.Wr.feed r res0 ~weight:4. 9;
  Alcotest.(check (float 1e-9)) "mass tracked at r=0" 4. (Reservoir.Wr.total_weight res0);
  Alcotest.(check (array int)) "no contents at r=0" [||] (Reservoir.Wr.contents res0)

let test_unit_reservoir_uniform () =
  let r = rng () in
  let counts = Array.make 5 0 in
  for _ = 1 to 50_000 do
    let res = Reservoir.Unit.create () in
    for i = 0 to 4 do
      Reservoir.Unit.feed r res i
    done;
    match Reservoir.Unit.get res with
    | Some x -> counts.(x) <- counts.(x) + 1
    | None -> Alcotest.fail "fed reservoir must hold something"
  done;
  let res = Stats_math.chi_square_uniform ~observed:counts in
  Alcotest.(check bool) "uniform pick" true (res.p_value > 0.001);
  Alcotest.(check bool) "empty reservoir" true (Reservoir.Unit.get (Reservoir.Unit.create ()) = None)

let test_wor_reservoir () =
  let r = rng () in
  let res = Reservoir.Wor.create ~r:3 in
  for i = 0 to 9 do
    Reservoir.Wor.feed r res i
  done;
  let out = Reservoir.Wor.contents res in
  Alcotest.(check int) "size" 3 (Array.length out);
  Alcotest.(check int) "fed count" 10 (Reservoir.Wor.fed_count res);
  Alcotest.(check bool) "distinct" true
    (List.length (List.sort_uniq compare (Array.to_list out)) = 3)

let suite =
  [
    Alcotest.test_case "semantics conversion table (§3)" `Quick test_semantics_conversions_table;
    Alcotest.test_case "WR->WoR keeps distinct" `Quick test_wr_to_wor_distinct;
    Alcotest.test_case "WR->WoR truncates to r" `Quick test_wr_to_wor_truncates;
    Alcotest.test_case "WR->WoR position uniformity" `Slow test_wr_to_wor_unbiased_under_duplicates;
    Alcotest.test_case "CF->WoR" `Quick test_cf_to_wor;
    Alcotest.test_case "CF oversample fraction (Chernoff)" `Slow test_cf_oversample_fraction;
    Alcotest.test_case "WoR->WR" `Quick test_wor_to_wr;
    Alcotest.test_case "Wr reservoir weighted marginals" `Slow test_wr_reservoir_marginals;
    Alcotest.test_case "Wr reservoir bookkeeping" `Quick test_wr_reservoir_bookkeeping;
    Alcotest.test_case "Unit reservoir uniform" `Slow test_unit_reservoir_uniform;
    Alcotest.test_case "WoR reservoir" `Quick test_wor_reservoir;
  ]

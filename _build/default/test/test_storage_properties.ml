(* qcheck properties for the storage substrate: arbitrary tuples survive
   the page codec and heap-file roundtrips byte-exactly. *)

open Rsj_relation
module Page = Rsj_storage.Page
module Heap_file = Rsj_storage.Heap_file
module Buffer_pool = Rsj_storage.Buffer_pool

let value_gen =
  QCheck.Gen.(
    frequency
      [
        (1, return Value.Null);
        (4, map (fun i -> Value.Int i) int);
        (3, map (fun f -> Value.Float f) float);
        (3, map (fun s -> Value.Str s) (string_size (int_range 0 40)));
      ])

let tuple_gen arity = QCheck.Gen.(map Array.of_list (list_repeat arity value_gen))

let tuples_arb =
  QCheck.make
    ~print:(fun ts -> String.concat "; " (List.map Tuple.to_string ts))
    QCheck.Gen.(int_range 1 5 >>= fun arity -> list_size (int_range 0 60) (tuple_gen arity))

let prop_page_roundtrip =
  QCheck.Test.make ~name:"page codec roundtrips arbitrary tuples" ~count:200 tuples_arb
    (fun tuples ->
      let page = Page.create ~page_size:8192 in
      let accepted =
        List.filter
          (fun t -> Page.encoded_size t + 2 < 8100 && Page.add_tuple page t)
          tuples
      in
      let back = ref [] in
      Page.iter page (fun t -> back := t :: !back);
      let back = List.rev !back in
      List.length back = List.length accepted
      && List.for_all2 Tuple.equal accepted back)

let prop_page_bytes_roundtrip =
  QCheck.Test.make ~name:"page image survives to_bytes/of_bytes" ~count:200 tuples_arb
    (fun tuples ->
      let page = Page.create ~page_size:4096 in
      List.iter
        (fun t -> if Page.encoded_size t + 2 < 4000 then ignore (Page.add_tuple page t))
        tuples;
      let clone = Page.of_bytes (Bytes.copy (Page.to_bytes page)) in
      Page.tuple_count clone = Page.tuple_count page
      &&
      let ok = ref true in
      for i = 0 to Page.tuple_count page - 1 do
        if not (Tuple.equal (Page.get_tuple page i) (Page.get_tuple clone i)) then ok := false
      done;
      !ok)

let schema4 =
  Schema.of_list
    [ ("a", Value.T_int); ("b", Value.T_float); ("c", Value.T_str); ("d", Value.T_int) ]

let row_gen =
  QCheck.Gen.(
    map
      (fun (a, (b, (c, d))) ->
        [|
          (match a with None -> Value.Null | Some x -> Value.Int x);
          (match b with None -> Value.Null | Some x -> Value.Float x);
          (match c with None -> Value.Null | Some s -> Value.Str s);
          (match d with None -> Value.Null | Some x -> Value.Int x);
        |])
      (pair (opt int) (pair (opt float) (pair (opt (string_size (int_range 0 30))) (opt int)))))

let rows_arb =
  QCheck.make
    ~print:(fun ts -> String.concat "; " (List.map Tuple.to_string ts))
    QCheck.Gen.(list_size (int_range 0 300) row_gen)

let prop_heap_roundtrip =
  QCheck.Test.make ~name:"heap file roundtrips arbitrary relations" ~count:40 rows_arb
    (fun rows ->
      let rel = Relation.of_tuples schema4 rows in
      let path = Filename.temp_file "rsj_prop" ".heap" in
      Fun.protect
        ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
        (fun () ->
          let hf = Heap_file.of_relation ~path ~page_size:512 rel in
          let pool = Buffer_pool.create ~capacity:8 in
          let back = Heap_file.to_relation hf pool in
          Heap_file.close hf;
          Relation.cardinality back = List.length rows
          &&
          let ok = ref true in
          Relation.iteri back (fun i t ->
              if not (Tuple.equal t (Relation.get rel i)) then ok := false);
          !ok))

let suite =
  List.map QCheck_alcotest.to_alcotest
    [ prop_page_roundtrip; prop_page_bytes_roundtrip; prop_heap_roundtrip ]

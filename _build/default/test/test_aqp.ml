open Rsj_relation
open Rsj_core
module Zipf_tables = Rsj_workload.Zipf_tables

(* Ground truth on a fully-enumerable join, estimates from strategy
   samples: the AQP layer should land inside its own confidence
   intervals almost always. *)

let env () =
  let pair = Rsj_workload.Zipf_tables.make_pair ~seed:0xA9 ~n1:60 ~n2:120 ~z1:1. ~z2:1. ~domain:8 () in
  Strategy.make_env ~seed:0xA9 ~left:pair.outer ~right:pair.inner ~left_key:Zipf_tables.col2
    ~right_key:Zipf_tables.col2 ()

let full_join e =
  Rsj_exec.Plan.collect
    (Rsj_exec.Plan.Join
       {
         Rsj_exec.Plan.algorithm = Rsj_exec.Plan.Hash;
         left = Rsj_exec.Plan.Scan (Strategy.env_left e);
         right = Rsj_exec.Plan.Scan (Strategy.env_right e);
         left_key = Zipf_tables.col2;
         right_key = Zipf_tables.col2;
       })

(* Column 0 of the join output is the outer rid (an int). *)
let pred t = Value.to_int_exn (Tuple.get t 0) mod 2 = 0

let test_count_estimate_converges () =
  let e = env () in
  let j = full_join e in
  let n = List.length j in
  let truth = float_of_int (List.length (List.filter pred j)) in
  let sample = (Strategy.run e Strategy.Stream ~r:3_000).sample in
  let est = Aqp.count_where ~sample ~n ~pred in
  Alcotest.(check bool)
    (Printf.sprintf "count %.0f in [%.0f, %.0f] (truth %.0f)" est.value est.ci_low est.ci_high truth)
    true
    (truth >= est.ci_low -. 1e-9 && truth <= est.ci_high +. 1e-9)

let test_sum_estimate_converges () =
  let e = env () in
  let j = full_join e in
  let n = List.length j in
  let truth =
    List.fold_left (fun acc t -> acc +. float_of_int (Value.to_int_exn (Tuple.get t 0))) 0. j
  in
  let sample = (Strategy.run e Strategy.Frequency_partition ~r:3_000).sample in
  let est = Aqp.sum ~sample ~n ~col:0 in
  (* CI is random; accept truth within 2 CI half-widths. *)
  let half = est.ci_high -. est.value in
  Alcotest.(check bool)
    (Printf.sprintf "sum %.0f ~ %.0f (+-%.0f)" est.value truth half)
    true
    (Float.abs (est.value -. truth) < 2. *. half +. 1e-9)

let test_avg_estimate () =
  let e = env () in
  let j = full_join e in
  let truth =
    List.fold_left (fun acc t -> acc +. float_of_int (Value.to_int_exn (Tuple.get t 0))) 0. j
    /. float_of_int (List.length j)
  in
  let sample = (Strategy.run e Strategy.Naive ~r:3_000).sample in
  let est = Aqp.avg ~sample ~col:0 in
  let half = Float.max (est.ci_high -. est.value) 1e-6 in
  Alcotest.(check bool)
    (Printf.sprintf "avg %.2f ~ %.2f" est.value truth)
    true
    (Float.abs (est.value -. truth) < 3. *. half)

let test_sum_where () =
  let e = env () in
  let j = full_join e in
  let n = List.length j in
  let truth =
    List.fold_left
      (fun acc t -> if pred t then acc +. float_of_int (Value.to_int_exn (Tuple.get t 0)) else acc)
      0. j
  in
  let sample = (Strategy.run e Strategy.Stream ~r:4_000).sample in
  let est = Aqp.sum_where ~sample ~n ~col:0 ~pred in
  let half = Float.max (est.ci_high -. est.value) 1e-6 in
  Alcotest.(check bool) "sum_where within 3 half-widths" true
    (Float.abs (est.value -. truth) < 3. *. half)

let test_group_count_sums_to_n () =
  let e = env () in
  let n = Strategy.env_join_size e in
  let sample = (Strategy.run e Strategy.Stream ~r:2_000).sample in
  (* Group on the join attribute (column 1 of the join output). *)
  let groups = Aqp.group_count ~sample ~n ~group_col:1 in
  let total = List.fold_left (fun acc (_, (est : Aqp.estimate)) -> acc +. est.value) 0. groups in
  Alcotest.(check (float 1e-6)) "group estimates sum to n" (float_of_int n) total;
  (* sorted descending *)
  let values = List.map (fun (_, (e : Aqp.estimate)) -> e.value) groups in
  Alcotest.(check (list (float 1e-9))) "descending" (List.sort (fun a b -> compare b a) values) values

let test_group_sum_accuracy () =
  let e = env () in
  let j = full_join e in
  let n = List.length j in
  let truth_tbl = Hashtbl.create 16 in
  List.iter
    (fun t ->
      let g = Value.to_int_exn (Tuple.get t 1) in
      let x = float_of_int (Value.to_int_exn (Tuple.get t 0)) in
      Hashtbl.replace truth_tbl g (x +. Option.value ~default:0. (Hashtbl.find_opt truth_tbl g)))
    j;
  let sample = (Strategy.run e Strategy.Stream ~r:5_000).sample in
  let groups = Aqp.group_sum ~sample ~n ~group_col:1 ~value_col:0 in
  (* Check the largest group lands near the truth. *)
  match groups with
  | [] -> Alcotest.fail "no groups"
  | (g, est) :: _ ->
      let truth = Hashtbl.find truth_tbl (Value.to_int_exn g) in
      Alcotest.(check bool)
        (Printf.sprintf "top group %.0f ~ %.0f" est.value truth)
        true
        (Float.abs (est.value -. truth) /. truth < 0.25)

let test_empty_sample () =
  let est = Aqp.count_where ~sample:[||] ~n:100 ~pred:(fun _ -> true) in
  Alcotest.(check (float 0.)) "zero estimate" 0. est.value;
  let a = Aqp.avg ~sample:[||] ~col:0 in
  Alcotest.(check bool) "avg of nothing is nan" true (Float.is_nan a.value)

let test_nulls_in_aggregates () =
  let sample = [| [| Value.Null |]; [| Value.Int 10 |] |] in
  let s = Aqp.sum ~sample ~n:2 ~col:0 in
  Alcotest.(check (float 1e-9)) "null contributes 0 to sum" 10. s.value;
  let a = Aqp.avg ~sample ~col:0 in
  Alcotest.(check (float 1e-9)) "null excluded from avg" 10. a.value

let suite =
  [
    Alcotest.test_case "COUNT converges with CI" `Slow test_count_estimate_converges;
    Alcotest.test_case "SUM converges" `Slow test_sum_estimate_converges;
    Alcotest.test_case "AVG converges" `Slow test_avg_estimate;
    Alcotest.test_case "SUM WHERE converges" `Slow test_sum_where;
    Alcotest.test_case "group counts sum to n" `Slow test_group_count_sums_to_n;
    Alcotest.test_case "group sums accurate" `Slow test_group_sum_accuracy;
    Alcotest.test_case "empty sample" `Quick test_empty_sample;
    Alcotest.test_case "NULL handling" `Quick test_nulls_in_aggregates;
  ]

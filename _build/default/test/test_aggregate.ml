open Rsj_relation
module Aggregate = Rsj_exec.Aggregate
module Plan = Rsj_exec.Plan

let schema =
  Schema.of_list [ ("g", Value.T_int); ("x", Value.T_float); ("s", Value.T_str) ]

let rel rows =
  Relation.of_tuples ~name:"agg_src" schema
    (List.map (fun (g, x, s) -> [| g; x; s |]) rows)

let sample_rel () =
  rel
    [
      (Value.Int 1, Value.Float 10., Value.str "a");
      (Value.Int 1, Value.Float 20., Value.str "b");
      (Value.Int 2, Value.Float 5., Value.str "c");
      (Value.Int 2, Value.Null, Value.str "d");
      (Value.Int 1, Value.Float 30., Value.Null);
    ]

let run spec r = Plan.collect (Aggregate.plan spec (Plan.Scan r))

let find_group rows g =
  List.find (fun row -> Value.equal (Tuple.get row 0) (Value.Int g)) rows

let test_count_and_sum () =
  let spec =
    { Aggregate.group_by = [ 0 ]; aggregates = [ ("n", Aggregate.Count); ("sum_x", Aggregate.Sum 1) ] }
  in
  let rows = run spec (sample_rel ()) in
  Alcotest.(check int) "two groups" 2 (List.length rows);
  let g1 = find_group rows 1 in
  Alcotest.(check int) "count g1" 3 (Value.to_int_exn (Tuple.get g1 1));
  Alcotest.(check (float 1e-9)) "sum g1" 60. (Value.to_float_exn (Tuple.get g1 2));
  let g2 = find_group rows 2 in
  Alcotest.(check int) "count g2 includes NULL row" 2 (Value.to_int_exn (Tuple.get g2 1));
  Alcotest.(check (float 1e-9)) "sum g2 skips NULL" 5. (Value.to_float_exn (Tuple.get g2 2))

let test_count_col_vs_count () =
  let spec =
    {
      Aggregate.group_by = [ 0 ];
      aggregates = [ ("all", Aggregate.Count); ("nonnull_s", Aggregate.Count_col 2) ];
    }
  in
  let rows = run spec (sample_rel ()) in
  let g1 = find_group rows 1 in
  Alcotest.(check int) "count(*) g1" 3 (Value.to_int_exn (Tuple.get g1 1));
  Alcotest.(check int) "count(s) g1 skips NULL" 2 (Value.to_int_exn (Tuple.get g1 2))

let test_avg_min_max () =
  let spec =
    {
      Aggregate.group_by = [ 0 ];
      aggregates =
        [ ("avg_x", Aggregate.Avg 1); ("min_x", Aggregate.Min 1); ("max_x", Aggregate.Max 1) ];
    }
  in
  let rows = run spec (sample_rel ()) in
  let g1 = find_group rows 1 in
  Alcotest.(check (float 1e-9)) "avg" 20. (Value.to_float_exn (Tuple.get g1 1));
  Alcotest.(check (float 0.)) "min" 10. (Value.to_float_exn (Tuple.get g1 2));
  Alcotest.(check (float 0.)) "max" 30. (Value.to_float_exn (Tuple.get g1 3))

let test_avg_all_null_is_null () =
  let r = rel [ (Value.Int 9, Value.Null, Value.Null) ] in
  let spec = { Aggregate.group_by = [ 0 ]; aggregates = [ ("avg_x", Aggregate.Avg 1) ] } in
  match run spec r with
  | [ row ] -> Alcotest.(check bool) "NULL avg" true (Value.is_null (Tuple.get row 1))
  | _ -> Alcotest.fail "one group expected"

let test_global_group () =
  let spec = { Aggregate.group_by = []; aggregates = [ ("n", Aggregate.Count) ] } in
  match run spec (sample_rel ()) with
  | [ row ] -> Alcotest.(check int) "global count" 5 (Value.to_int_exn (Tuple.get row 0))
  | _ -> Alcotest.fail "one global group expected"

let test_empty_input () =
  let spec = { Aggregate.group_by = [ 0 ]; aggregates = [ ("n", Aggregate.Count) ] } in
  Alcotest.(check int) "no groups on empty input" 0 (List.length (run spec (rel [])))

let test_output_schema () =
  let spec =
    { Aggregate.group_by = [ 0 ]; aggregates = [ ("n", Aggregate.Count); ("m", Aggregate.Min 1) ] }
  in
  let out = Aggregate.output_schema ~input:schema spec in
  Alcotest.(check int) "arity" 3 (Schema.arity out);
  Alcotest.(check string) "group col name" "g" (Schema.column_name out 0);
  Alcotest.(check bool) "count is int" true (Schema.column_ty out 1 = Value.T_int);
  Alcotest.(check bool) "min keeps input type" true (Schema.column_ty out 2 = Value.T_float)

let test_column_validation () =
  let spec = { Aggregate.group_by = [ 99 ]; aggregates = [] } in
  Alcotest.(check bool) "out of range rejected" true
    (try
       ignore (Aggregate.output_schema ~input:schema spec);
       false
     with Invalid_argument _ -> true)

let test_grouping_by_multiple_columns () =
  let r =
    rel
      [
        (Value.Int 1, Value.Float 1., Value.str "a");
        (Value.Int 1, Value.Float 1., Value.str "a");
        (Value.Int 1, Value.Float 1., Value.str "b");
      ]
  in
  let spec = { Aggregate.group_by = [ 0; 2 ]; aggregates = [ ("n", Aggregate.Count) ] } in
  Alcotest.(check int) "two (g,s) groups" 2 (List.length (run spec r))

let test_sql_clause_order () =
  (* SAMPLE before GROUP BY and after both parse. *)
  List.iter
    (fun q ->
      match Rsj_sql.Parser.parse q with
      | Ok ast ->
          Alcotest.(check bool) "has sample" true (ast.Rsj_sql.Ast.sample <> None);
          Alcotest.(check int) "has group" 1 (List.length ast.Rsj_sql.Ast.group_by)
      | Error e -> Alcotest.fail (q ^ ": " ^ e))
    [
      "select g, count(*) from t sample 10 group by g";
      "select g, count(*) from t group by g sample 10";
      "select g, count(*) from t limit 5 group by g sample 10";
    ];
  match Rsj_sql.Parser.parse "select * from t sample 1 sample 2" with
  | Ok _ -> Alcotest.fail "duplicate sample should fail"
  | Error _ -> ()

let suite =
  [
    Alcotest.test_case "count and sum" `Quick test_count_and_sum;
    Alcotest.test_case "count(col) vs count" `Quick test_count_col_vs_count;
    Alcotest.test_case "avg/min/max" `Quick test_avg_min_max;
    Alcotest.test_case "avg of all NULLs" `Quick test_avg_all_null_is_null;
    Alcotest.test_case "global group" `Quick test_global_group;
    Alcotest.test_case "empty input" `Quick test_empty_input;
    Alcotest.test_case "output schema" `Quick test_output_schema;
    Alcotest.test_case "column validation" `Quick test_column_validation;
    Alcotest.test_case "multi-column grouping" `Quick test_grouping_by_multiple_columns;
    Alcotest.test_case "SQL clause ordering" `Quick test_sql_clause_order;
  ]

test/test_join_estimate.ml: Alcotest Float List Printf Relation Rsj_index Rsj_relation Rsj_stats Rsj_util Rsj_workload Value

test/test_index.ml: Alcotest Array Fun Hashtbl List Option Printf QCheck QCheck_alcotest Relation Rsj_index Rsj_relation Rsj_util Schema Tuple Value

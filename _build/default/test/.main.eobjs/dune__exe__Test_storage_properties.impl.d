test/test_storage_properties.ml: Array Bytes Filename Fun List QCheck QCheck_alcotest Relation Rsj_relation Rsj_storage Schema String Sys Tuple Value

test/test_stats_math.ml: Alcotest Float Rsj_util Stats_math

test/test_stats.ml: Alcotest Array List Printf Relation Rsj_relation Rsj_stats Rsj_util Schema Value

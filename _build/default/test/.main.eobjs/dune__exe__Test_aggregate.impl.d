test/test_aggregate.ml: Alcotest List Relation Rsj_exec Rsj_relation Rsj_sql Schema Tuple Value

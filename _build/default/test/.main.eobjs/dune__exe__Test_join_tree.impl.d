test/test_join_tree.ml: Alcotest Array Chain_sample Join_tree List Negative Printf Relation Result Rsj_core Rsj_exec Rsj_relation Rsj_util Schema Tuple Value

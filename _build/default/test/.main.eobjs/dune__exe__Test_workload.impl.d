test/test_workload.ml: Alcotest Array Hashtbl List Printf Relation Rsj_relation Rsj_stats Rsj_util Rsj_workload Schema String Tuple Value

test/test_prng.ml: Alcotest Array Float Fun Hashtbl Printf Prng Rsj_util Stats_math

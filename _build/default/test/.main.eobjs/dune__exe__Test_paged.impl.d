test/test_paged.ml: Alcotest Array Block_sample List Paged Printf Relation Rsj_core Rsj_relation Rsj_util Schema Stream0 Tuple Value

test/test_dist.ml: Alcotest Array Dist Float List Printf Prng Rsj_util Stats_math

test/test_relation.ml: Alcotest Array Csv_io Filename Fun List Relation Rsj_relation Rsj_util Schema Stream0 Sys Tuple Value

test/test_aqp.ml: Alcotest Aqp Float Hashtbl List Option Printf Rsj_core Rsj_exec Rsj_relation Rsj_workload Strategy Tuple Value

test/test_online_agg.ml: Alcotest Aqp Chain_sample Float List Online_agg Printf Relation Rsj_core Rsj_relation Rsj_util Schema Tuple Value

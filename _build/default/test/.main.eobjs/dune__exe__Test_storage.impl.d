test/test_storage.ml: Alcotest Array Bytes Filename Fun List Printf Relation Rsj_relation Rsj_storage Rsj_util Schema Stream0 String Sys Tuple Value

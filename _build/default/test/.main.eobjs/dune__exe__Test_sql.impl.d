test/test_sql.ml: Alcotest Format List Relation Rsj_exec Rsj_relation Rsj_sql Schema String Tuple Value

test/test_black_box.ml: Alcotest Array Black_box Float Fun List Printf Prng Rsj_core Rsj_relation Rsj_util Stats_math Stream0

test/test_convert.ml: Alcotest Array Convert Dist Float List Printf Prng Reservoir Rsj_core Rsj_util Semantics Stats_math

test/main.mli:

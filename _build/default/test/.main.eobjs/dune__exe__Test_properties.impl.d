test/test_properties.ml: Array Black_box Convert Format Fun Gen Hashtbl List Printf QCheck QCheck_alcotest Relation Rsj_core Rsj_relation Rsj_sql Rsj_stats Rsj_util Schema Strategy Stream0 Value

test/test_harness.ml: Alcotest Format List Printf Rsj_harness Rsj_workload String

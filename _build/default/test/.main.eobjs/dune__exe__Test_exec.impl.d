test/test_exec.ml: Alcotest Array Format Io_model List Metrics Plan Predicate Relation Rsj_exec Rsj_index Rsj_relation Schema Stream0 String Tuple Value

test/test_stream.ml: Alcotest Fun Rsj_relation Seq Stream0

test/test_sample_op.ml: Alcotest Array Format List Negative Printf Relation Rsj_core Rsj_exec Rsj_index Rsj_relation Rsj_stats Rsj_util Sample_op Schema String Tuple Value

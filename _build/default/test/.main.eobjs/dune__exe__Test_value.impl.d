test/test_value.ml: Alcotest List Rsj_relation Value

test/test_negative.ml: Alcotest Array Float Negative Printf Relation Rsj_core Rsj_exec Rsj_relation Rsj_stats Rsj_util Rsj_workload Strategy Tuple Value

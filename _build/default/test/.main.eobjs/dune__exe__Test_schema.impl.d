test/test_schema.ml: Alcotest Result Rsj_relation Schema Value

open Rsj_relation
module Frequency = Rsj_stats.Frequency
module Histogram = Rsj_stats.Histogram
module Join_size = Rsj_stats.Join_size

let schema = Schema.of_list [ ("k", Value.T_int) ]
let rel keys = Relation.of_tuples schema (List.map (fun k -> [| Value.Int k |]) keys)
let freq keys = Frequency.of_relation (rel keys) ~key:0

let test_frequency_basics () =
  let f = freq [ 1; 1; 2; 3; 3; 3 ] in
  Alcotest.(check int) "m(1)" 2 (Frequency.frequency f (Value.Int 1));
  Alcotest.(check int) "m(3)" 3 (Frequency.frequency f (Value.Int 3));
  Alcotest.(check int) "m(9)" 0 (Frequency.frequency f (Value.Int 9));
  Alcotest.(check int) "total" 6 (Frequency.total f);
  Alcotest.(check int) "distinct" 3 (Frequency.distinct_count f);
  Alcotest.(check int) "max" 3 (Frequency.max_frequency f)

let test_frequency_null_excluded () =
  let r =
    Relation.of_tuples schema [ [| Value.Int 1 |]; [| Value.Null |]; [| Value.Int 1 |] ]
  in
  let f = Frequency.of_relation r ~key:0 in
  Alcotest.(check int) "total skips null" 2 (Frequency.total f);
  Alcotest.(check int) "distinct" 1 (Frequency.distinct_count f)

let test_frequency_of_stream_matches () =
  let r = rel [ 4; 4; 5 ] in
  let a = Frequency.of_relation r ~key:0 in
  let b = Frequency.of_stream (Relation.to_stream r) ~key:0 in
  Alcotest.(check int) "same m(4)" (Frequency.frequency a (Value.Int 4))
    (Frequency.frequency b (Value.Int 4));
  Alcotest.(check int) "same total" (Frequency.total a) (Frequency.total b)

let test_frequency_to_assoc_sorted () =
  let f = freq [ 1; 2; 2; 3; 3; 3 ] in
  let assoc = Frequency.to_assoc f in
  Alcotest.(check (list int)) "descending frequency" [ 3; 2; 1 ]
    (List.map (fun (_, c) -> c) assoc);
  Alcotest.(check (list int)) "values above 2" [ 3; 2 ]
    (List.map (fun (v, _) -> Value.to_int_exn v) (Frequency.values_above f ~threshold:2))

let test_frequency_of_assoc_validation () =
  Alcotest.(check bool) "non-positive rejected" true
    (try
       ignore (Frequency.of_assoc [ (Value.Int 1, 0) ]);
       false
     with Invalid_argument _ -> true);
  Alcotest.(check bool) "duplicate rejected" true
    (try
       ignore (Frequency.of_assoc [ (Value.Int 1, 2); (Value.Int 1, 3) ]);
       false
     with Invalid_argument _ -> true)

let test_join_size () =
  (* m1 = {a:2, b:1}; m2 = {a:3, c:5} -> |J| = 2*3 = 6 *)
  let m1 = Frequency.of_assoc [ (Value.Int 1, 2); (Value.Int 2, 1) ] in
  let m2 = Frequency.of_assoc [ (Value.Int 1, 3); (Value.Int 3, 5) ] in
  Alcotest.(check int) "join size" 6 (Frequency.join_size m1 m2);
  Alcotest.(check int) "symmetric" 6 (Frequency.join_size m2 m1);
  Alcotest.(check int) "empty join" 0
    (Frequency.join_size m1 (Frequency.of_assoc [ (Value.Int 99, 1) ]))

let test_join_size_against_real_join () =
  (* Cross-check the formula against an actual nested-loop count. *)
  let rng = Rsj_util.Prng.create ~seed:6 () in
  let keys n = List.init n (fun _ -> Rsj_util.Prng.int rng 10) in
  let k1 = keys 200 and k2 = keys 300 in
  let brute =
    List.fold_left
      (fun acc a -> acc + List.length (List.filter (fun b -> a = b) k2))
      0 k1
  in
  Alcotest.(check int) "formula = brute force" brute
    (Frequency.join_size (freq k1) (freq k2))

let test_restrict () =
  let f = freq [ 1; 1; 2; 3 ] in
  let hi = Frequency.restrict f ~keep:(fun v -> Value.to_int_exn v = 1) in
  Alcotest.(check int) "kept" 2 (Frequency.frequency hi (Value.Int 1));
  Alcotest.(check int) "dropped" 0 (Frequency.frequency hi (Value.Int 2));
  Alcotest.(check int) "total" 2 (Frequency.total hi)

let test_end_biased () =
  let f = freq [ 1; 1; 1; 1; 2; 2; 3 ] in
  let h = Histogram.End_biased.build f ~threshold:2 in
  Alcotest.(check bool) "1 is high" true (Histogram.End_biased.is_high h (Value.Int 1));
  Alcotest.(check bool) "2 is high" true (Histogram.End_biased.is_high h (Value.Int 2));
  Alcotest.(check bool) "3 is low" false (Histogram.End_biased.is_high h (Value.Int 3));
  Alcotest.(check bool) "unknown is low" false (Histogram.End_biased.is_high h (Value.Int 9));
  Alcotest.(check bool) "tracked freq exact" true
    (Histogram.End_biased.frequency h (Value.Int 1) = Some 4);
  Alcotest.(check bool) "untracked hidden" true
    (Histogram.End_biased.frequency h (Value.Int 3) = None);
  Alcotest.(check int) "tracked count" 2 (Histogram.End_biased.tracked_count h);
  Alcotest.(check int) "tracked mass" 6 (Histogram.End_biased.tracked_mass h)

let test_end_biased_fraction () =
  let f = freq (List.concat [ List.init 50 (fun _ -> 1); List.init 5 (fun _ -> 2) ]) in
  (* n = 55; fraction 0.5 -> threshold 28: only value 1 *)
  let h = Histogram.End_biased.build_fraction f ~fraction:0.5 in
  Alcotest.(check int) "only the head" 1 (Histogram.End_biased.tracked_count h);
  (* fraction 0 -> threshold 1: everything *)
  let h0 = Histogram.End_biased.build_fraction f ~fraction:0. in
  Alcotest.(check int) "everything" 2 (Histogram.End_biased.tracked_count h0);
  Alcotest.(check bool) "bad fraction" true
    (try
       ignore (Histogram.End_biased.build_fraction f ~fraction:1.5);
       false
     with Invalid_argument _ -> true)

let test_equi_depth () =
  let r = rel (List.init 100 (fun i -> i)) in
  let h = Histogram.Equi_depth.build r ~key:0 ~buckets:4 in
  let buckets = Histogram.Equi_depth.buckets h in
  Alcotest.(check int) "4 buckets" 4 (Array.length buckets);
  Array.iter
    (fun (b : Histogram.Equi_depth.bucket) ->
      Alcotest.(check int) "25 per bucket" 25 b.count)
    buckets;
  Alcotest.(check int) "total" 100 (Histogram.Equi_depth.total h);
  Alcotest.(check (float 0.01)) "frequency estimate" 1.
    (Histogram.Equi_depth.estimate_frequency h (Value.Int 50))

let test_equi_depth_join_estimate () =
  (* Uniform 0..99 in both relations, 1000 and 2000 rows: true join size
     = sum over v of m1(v)*m2(v) = 100 * 10 * 20 = 20_000. *)
  let rng = Rsj_util.Prng.create ~seed:7 () in
  let mk n = rel (List.init n (fun _ -> Rsj_util.Prng.int rng 100)) in
  let r1 = mk 1_000 and r2 = mk 2_000 in
  let h1 = Histogram.Equi_depth.build r1 ~key:0 ~buckets:10 in
  let h2 = Histogram.Equi_depth.build r2 ~key:0 ~buckets:10 in
  let est = Histogram.Equi_depth.estimate_join_size h1 h2 in
  let truth =
    float_of_int
      (Frequency.join_size
         (Frequency.of_relation r1 ~key:0)
         (Frequency.of_relation r2 ~key:0))
  in
  Alcotest.(check bool)
    (Printf.sprintf "estimate %.0f within 2x of %.0f" est truth)
    true
    (est > truth /. 2. && est < truth *. 2.)

let test_theorem5_olken_iterations () =
  (* Uniform case: every value frequency m in both relations over d
     values: n = d m^2, M = m, n1 = d m, iterations = M n1 / n = 1. *)
  let m1 = Frequency.of_assoc (List.init 10 (fun i -> (Value.Int i, 5))) in
  let m2 = Frequency.of_assoc (List.init 10 (fun i -> (Value.Int i, 5))) in
  Alcotest.(check (float 1e-9)) "uniform case needs 1 iteration" 1.
    (Join_size.olken_expected_iterations ~m1 ~m2);
  (* Empty join: infinite. *)
  let m3 = Frequency.of_assoc [ (Value.Int 99, 1) ] in
  Alcotest.(check bool) "empty join infinite" true
    (Join_size.olken_expected_iterations ~m1 ~m2:m3 = infinity)

let test_theorem7_alpha_uniform_case () =
  (* No-skew corollary: alpha = r / (m d). *)
  let d = 20 and m = 10 and r = 50 in
  let m1 = Frequency.of_assoc (List.init d (fun i -> (Value.Int i, 3))) in
  let m2 = Frequency.of_assoc (List.init d (fun i -> (Value.Int i, m))) in
  (* General formula: r * sum(m1 m2^2) / (sum m1 m2)^2
     = r * (d * 3 * m^2) / (d * 3 * m)^2 = r / (3 d). *)
  let alpha = Join_size.alpha_group_sample ~m1 ~m2 ~r in
  let expected = float_of_int r /. float_of_int (3 * d) in
  Alcotest.(check (float 1e-9)) "thm 7 closed form" expected alpha;
  (* The paper's no-skew corollary (frequency m in BOTH relations over d
     common values): alpha = r / (m d); cross-check against the general
     formula with m1 = m2 = m. *)
  let mm = Frequency.of_assoc (List.init d (fun i -> (Value.Int i, m))) in
  Alcotest.(check (float 1e-9)) "corollary = general formula"
    (Join_size.alpha_group_sample ~m1:mm ~m2:mm ~r)
    (Join_size.alpha_group_sample_uniform ~m ~d ~r)

let test_theorem8_theorem9_alpha () =
  (* Two values: hi with m1=10, m2=100; lo with m1=5, m2=2.
     n = 1000 + 10 = 1010.
     Thm 8: (10 + r*100_000/1000)/1010 = (10 + 100r)/1010.
     Thm 9: (r + 10)/1010. *)
  let m1 = Frequency.of_assoc [ (Value.Int 1, 10); (Value.Int 2, 5) ] in
  let m2 = Frequency.of_assoc [ (Value.Int 1, 100); (Value.Int 2, 2) ] in
  let is_high v = Value.to_int_exn v = 1 in
  let r = 7 in
  Alcotest.(check (float 1e-9)) "thm 8"
    ((10. +. (100. *. 7.)) /. 1010.)
    (Join_size.alpha_frequency_partition ~m1 ~m2 ~is_high ~r);
  Alcotest.(check (float 1e-9)) "thm 9" ((7. +. 10.) /. 1010.)
    (Join_size.alpha_index_sample ~m1 ~m2 ~is_high ~r);
  (* All-low degenerates to naive fraction 1... for thm8 with no hi values:
     alpha = sum_lo / n = 1. *)
  Alcotest.(check (float 1e-9)) "no hi values -> naive" 1.
    (Join_size.alpha_frequency_partition ~m1 ~m2 ~is_high:(fun _ -> false) ~r)

let suite =
  [
    Alcotest.test_case "frequency basics" `Quick test_frequency_basics;
    Alcotest.test_case "frequency excludes NULL" `Quick test_frequency_null_excluded;
    Alcotest.test_case "frequency from stream" `Quick test_frequency_of_stream_matches;
    Alcotest.test_case "frequency sorted assoc" `Quick test_frequency_to_assoc_sorted;
    Alcotest.test_case "frequency of_assoc validation" `Quick test_frequency_of_assoc_validation;
    Alcotest.test_case "join size formula" `Quick test_join_size;
    Alcotest.test_case "join size vs brute force" `Quick test_join_size_against_real_join;
    Alcotest.test_case "restrict" `Quick test_restrict;
    Alcotest.test_case "end-biased histogram" `Quick test_end_biased;
    Alcotest.test_case "end-biased fraction threshold" `Quick test_end_biased_fraction;
    Alcotest.test_case "equi-depth buckets" `Quick test_equi_depth;
    Alcotest.test_case "equi-depth join estimate" `Quick test_equi_depth_join_estimate;
    Alcotest.test_case "theorem 5: Olken iterations" `Quick test_theorem5_olken_iterations;
    Alcotest.test_case "theorem 7: alpha closed forms" `Quick test_theorem7_alpha_uniform_case;
    Alcotest.test_case "theorems 8 & 9: hybrid alphas" `Quick test_theorem8_theorem9_alpha;
  ]

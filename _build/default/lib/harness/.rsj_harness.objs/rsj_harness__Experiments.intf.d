lib/harness/experiments.mli: Format Report Rsj_workload

lib/harness/experiments.ml: Array Float Format Hashtbl List Negative Printf Report Rsj_core Rsj_exec Rsj_stats Rsj_util Rsj_workload Strategy Sys

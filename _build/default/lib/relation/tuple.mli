(** Tuples (rows) as immutable-by-convention value arrays.

    A tuple is a bare [Value.t array] for speed; helpers here cover the
    access patterns of the sampling strategies: reading the join
    attribute, concatenating two tuples to form a join output row, and
    projecting. Callers must not mutate tuples that have been handed to a
    relation or an operator. *)

type t = Value.t array

val create : Value.t list -> t
val of_ints : int list -> t

val get : t -> int -> Value.t
(** [get t i] with bounds checking; raises [Invalid_argument]. *)

val attr : t -> int -> Value.t
(** Alias of {!get}: [attr t key] reads the join attribute at position
    [key] — the paper's [t.A]. *)

val join : t -> t -> t
(** [join t1 t2] is the concatenated join output row [t1 ⋈ t2]. *)

val project : t -> int list -> t
val arity : t -> int
val equal : t -> t -> bool
val compare : t -> t -> int
val hash : t -> int
val pp : Format.formatter -> t -> unit
val to_string : t -> string

lib/relation/paged.mli: Relation Stream0 Tuple

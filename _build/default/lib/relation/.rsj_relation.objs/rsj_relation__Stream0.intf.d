lib/relation/stream0.mli: Seq

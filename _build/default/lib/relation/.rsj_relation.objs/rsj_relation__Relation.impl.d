lib/relation/relation.ml: Array Format List Printf Rsj_util Schema Stream0 Tuple

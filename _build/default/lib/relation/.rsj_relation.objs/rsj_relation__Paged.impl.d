lib/relation/paged.ml: Array Printf Relation Stream0

lib/relation/csv_io.ml: Array Buffer Filename Fun List Printf Relation Schema String Value

lib/relation/tuple.ml: Array Format List Value

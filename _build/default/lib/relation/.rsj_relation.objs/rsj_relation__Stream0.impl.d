lib/relation/stream0.ml: Array List Option Seq

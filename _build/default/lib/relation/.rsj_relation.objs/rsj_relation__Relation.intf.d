lib/relation/relation.mli: Format Rsj_util Schema Stream0 Tuple Value

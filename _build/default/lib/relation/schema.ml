type column = { name : string; ty : Value.ty }

type t = { cols : column array; by_name : (string, int) Hashtbl.t }

let build cols =
  let by_name = Hashtbl.create (Array.length cols) in
  Array.iteri
    (fun i c ->
      if Hashtbl.mem by_name c.name then
        invalid_arg (Printf.sprintf "Schema.create: duplicate column %S" c.name);
      Hashtbl.replace by_name c.name i)
    cols;
  { cols; by_name }

let create = function
  | [] -> invalid_arg "Schema.create: empty column list"
  | cols -> build (Array.of_list cols)

let of_list l = create (List.map (fun (name, ty) -> { name; ty }) l)

let columns t = Array.copy t.cols
let arity t = Array.length t.cols

let column_index t name =
  match Hashtbl.find_opt t.by_name name with
  | Some i -> i
  | None -> raise Not_found

let column_index_opt t name = Hashtbl.find_opt t.by_name name
let column_name t i = t.cols.(i).name
let column_ty t i = t.cols.(i).ty
let mem t name = Hashtbl.mem t.by_name name

let concat ?(left_prefix = "l.") ?(right_prefix = "r.") a b =
  let collides name = mem a name && mem b name in
  let fix prefix c = if collides c.name then { c with name = prefix ^ c.name } else c in
  let cols =
    Array.append (Array.map (fix left_prefix) a.cols) (Array.map (fix right_prefix) b.cols)
  in
  build cols

let project t idxs =
  let n = arity t in
  let cols =
    List.map
      (fun i ->
        if i < 0 || i >= n then invalid_arg "Schema.project: index out of range";
        t.cols.(i))
      idxs
  in
  create cols

let rename t mapping =
  let cols =
    Array.map
      (fun c ->
        match List.assoc_opt c.name mapping with
        | Some fresh -> { c with name = fresh }
        | None -> c)
      t.cols
  in
  List.iter (fun (src, _) -> if not (mem t src) then raise Not_found) mapping;
  build cols

let validate t row =
  if Array.length row <> arity t then
    Error
      (Printf.sprintf "arity mismatch: schema has %d columns, row has %d" (arity t)
         (Array.length row))
  else begin
    let bad = ref None in
    Array.iteri
      (fun i v ->
        if !bad = None && not (Value.conforms v t.cols.(i).ty) then
          bad :=
            Some
              (Printf.sprintf "column %S expects %s, got %s" t.cols.(i).name
                 (Value.ty_to_string t.cols.(i).ty)
                 (Value.to_string v)))
      row;
    match !bad with None -> Ok () | Some msg -> Error msg
  end

let equal a b =
  arity a = arity b
  && Array.for_all2 (fun x y -> String.equal x.name y.name && x.ty = y.ty) a.cols b.cols

let pp ppf t =
  Format.fprintf ppf "(%a)"
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
       (fun ppf c -> Format.fprintf ppf "%s:%s" c.name (Value.ty_to_string c.ty)))
    (Array.to_list t.cols)

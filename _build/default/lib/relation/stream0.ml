type 'a t = {
  mutable producer : (unit -> 'a option) option;  (* None once exhausted/closed *)
  mutable on_close : (unit -> unit) option;
}

let make ~next ?(close = fun () -> ()) () = { producer = Some next; on_close = Some close }

let run_close t =
  match t.on_close with
  | None -> ()
  | Some f ->
      t.on_close <- None;
      f ()

let close t =
  t.producer <- None;
  run_close t

let next t =
  match t.producer with
  | None -> None
  | Some produce -> (
      match produce () with
      | Some _ as r -> r
      | None ->
          close t;
          None)

let of_array a =
  let i = ref 0 in
  make
    ~next:(fun () ->
      if !i >= Array.length a then None
      else begin
        let v = a.(!i) in
        incr i;
        Some v
      end)
    ()

let of_list l =
  let rest = ref l in
  make
    ~next:(fun () ->
      match !rest with
      | [] -> None
      | x :: tl ->
          rest := tl;
          Some x)
    ()

let of_seq seq =
  let state = ref seq in
  make
    ~next:(fun () ->
      match Seq.uncons !state with
      | None -> None
      | Some (x, tl) ->
          state := tl;
          Some x)
    ()

let empty () = make ~next:(fun () -> None) ()

let iter f t =
  let rec go () =
    match next t with
    | None -> ()
    | Some x ->
        f x;
        go ()
  in
  go ()

let fold f init t =
  let acc = ref init in
  iter (fun x -> acc := f !acc x) t;
  !acc

let map f t = make ~next:(fun () -> Option.map f (next t)) ~close:(fun () -> close t) ()

let filter p t =
  let rec pull () =
    match next t with
    | None -> None
    | Some x -> if p x then Some x else pull ()
  in
  make ~next:pull ~close:(fun () -> close t) ()

let filter_map f t =
  let rec pull () =
    match next t with
    | None -> None
    | Some x -> ( match f x with Some _ as r -> r | None -> pull ())
  in
  make ~next:pull ~close:(fun () -> close t) ()

let concat_map f t =
  let current = ref (empty ()) in
  let rec pull () =
    match next !current with
    | Some _ as r -> r
    | None -> (
        match next t with
        | None -> None
        | Some x ->
            current := f x;
            pull ())
  in
  make ~next:pull
    ~close:(fun () ->
      close !current;
      close t)
    ()

let append a b =
  let first = ref true in
  let rec pull () =
    if !first then
      match next a with
      | Some _ as r -> r
      | None ->
          first := false;
          pull ()
    else next b
  in
  make ~next:pull
    ~close:(fun () ->
      close a;
      close b)
    ()

let take n t =
  let remaining = ref n in
  make
    ~next:(fun () ->
      if !remaining <= 0 then begin
        close t;
        None
      end
      else
        match next t with
        | None -> None
        | Some _ as r ->
            decr remaining;
            r)
    ~close:(fun () -> close t)
    ()

let length t = fold (fun n _ -> n + 1) 0 t

let to_list t = List.rev (fold (fun acc x -> x :: acc) [] t)
let to_array t = Array.of_list (to_list t)

let on_element f t =
  make
    ~next:(fun () ->
      match next t with
      | None -> None
      | Some x as r ->
          f x;
          r)
    ~close:(fun () -> close t)
    ()

let tee_count t =
  let count = ref 0 in
  (on_element (fun _ -> incr count) t, fun () -> !count)

(** Single-pass pull cursors ("streaming by", paper §4).

    A stream yields elements one at a time and can be consumed exactly
    once — the model under which the sequential black boxes and all
    Case A/B strategies must operate. Combinators are strict about this:
    a stream whose [next] has returned [None] keeps returning [None].

    Named [Stream0] to avoid clashing with the historical stdlib
    [Stream]. *)

type 'a t

val make : next:(unit -> 'a option) -> ?close:(unit -> unit) -> unit -> 'a t
(** Wrap a producer. [close] is called exactly once, either when the
    stream is drained or when {!close} is invoked early. *)

val next : 'a t -> 'a option
(** Pull the next element; [None] signals (permanent) exhaustion. *)

val close : 'a t -> unit
(** Release the producer early. Subsequent {!next} returns [None].
    Idempotent. *)

val of_list : 'a list -> 'a t
val of_array : 'a array -> 'a t
val of_seq : 'a Seq.t -> 'a t
val empty : unit -> 'a t

val iter : ('a -> unit) -> 'a t -> unit
(** Drain the stream, applying [f] to every element. *)

val fold : ('acc -> 'a -> 'acc) -> 'acc -> 'a t -> 'acc
val map : ('a -> 'b) -> 'a t -> 'b t
val filter : ('a -> bool) -> 'a t -> 'a t
val filter_map : ('a -> 'b option) -> 'a t -> 'b t

val concat_map : ('a -> 'b t) -> 'a t -> 'b t
(** Flatten: used to expand one input tuple into its join matches. *)

val append : 'a t -> 'a t -> 'a t
(** Sequential composition: drain the first, then the second. *)

val take : int -> 'a t -> 'a t
(** At most [n] elements; closes the source once satisfied. *)

val length : 'a t -> int
(** Drains the stream and counts — destructive, like every consumer. *)

val to_list : 'a t -> 'a list
val to_array : 'a t -> 'a array

val tee_count : 'a t -> 'a t * (unit -> int)
(** [tee_count s] is a stream observing [s] plus a counter of elements
    that have passed through — how Frequency-Partition-Sample measures
    nlo/nhi while the join "is being produced" (§6.3 step 3). *)

val on_element : ('a -> unit) -> 'a t -> 'a t
(** Side-effecting tap, applied to each element as it streams by. *)

(** Relation schemas: ordered, named, typed columns.

    Schemas resolve attribute names to positions (so strategies can be
    written against positions, as in the paper's operator-level
    implementation) and validate tuples on insert. *)

type column = { name : string; ty : Value.ty }

type t

val create : column list -> t
(** Raises [Invalid_argument] on duplicate column names or an empty
    column list. *)

val of_list : (string * Value.ty) list -> t
(** Convenience constructor. *)

val columns : t -> column array
val arity : t -> int

val column_index : t -> string -> int
(** [column_index t name] resolves [name]; raises [Not_found] if the
    schema has no such column. *)

val column_index_opt : t -> string -> int option
val column_name : t -> int -> string
val column_ty : t -> int -> Value.ty

val mem : t -> string -> bool

val concat : ?left_prefix:string -> ?right_prefix:string -> t -> t -> t
(** [concat a b] is the schema of a join output: [a]'s columns followed by
    [b]'s. Name collisions are resolved by the optional prefixes (default
    ["l."] / ["r."]) applied only to colliding names. *)

val project : t -> int list -> t
(** [project t idxs] keeps columns [idxs] in the given order. Raises
    [Invalid_argument] on an out-of-range index. *)

val rename : t -> (string * string) list -> t
(** [rename t mapping] renames columns; unknown source names raise
    [Not_found]. *)

val validate : t -> Value.t array -> (unit, string) result
(** [validate t row] checks arity and per-column type conformance. *)

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit

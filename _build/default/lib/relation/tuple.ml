type t = Value.t array

let create = Array.of_list
let of_ints l = Array.of_list (List.map Value.int l)

let get t i =
  if i < 0 || i >= Array.length t then invalid_arg "Tuple.get: index out of range";
  t.(i)

let attr = get
let join t1 t2 = Array.append t1 t2
let project t idxs = Array.of_list (List.map (get t) idxs)
let arity = Array.length

let equal a b = Array.length a = Array.length b && Array.for_all2 Value.equal a b

let compare a b =
  let la = Array.length a and lb = Array.length b in
  let rec go i =
    if i >= la && i >= lb then 0
    else if i >= la then -1
    else if i >= lb then 1
    else
      let c = Value.compare a.(i) b.(i) in
      if c <> 0 then c else go (i + 1)
  in
  go 0

let hash t = Array.fold_left (fun acc v -> (acc * 31) + Value.hash v) 17 t

let pp ppf t =
  Format.fprintf ppf "(%a)"
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
       Value.pp)
    (Array.to_list t)

let to_string t = Format.asprintf "%a" pp t

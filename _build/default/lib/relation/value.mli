(** Typed attribute values.

    The engine is dynamically typed at the tuple level (like the paper's
    SQL Server substrate at the operator interface): every cell carries a
    {!t}. Join attributes in the paper's experiments are integers, but
    strings and floats are supported so the examples can model realistic
    star-schema columns (product names, sale amounts, dates). *)

type t =
  | Null
  | Int of int
  | Float of float
  | Str of string

type ty = T_int | T_float | T_str
(** Column types for schema declarations. [Null] inhabits every type. *)

val ty_of : t -> ty option
(** [ty_of v] is the type of [v], or [None] for [Null]. *)

val conforms : t -> ty -> bool
(** [conforms v ty] holds when [v] may appear in a column of type [ty]
    ([Null] conforms to every type). *)

val equal : t -> t -> bool
(** Structural equality. [Null] is equal only to [Null] (the engine's
    joins treat [Null] as non-matching separately; see
    {!Rsj_exec.Join_hash}). *)

val compare : t -> t -> int
(** Total order: [Null] < [Int] < [Float] < [Str]; within a numeric kind,
    numeric order; strings lexicographic. Cross-kind numeric comparison
    ([Int] vs [Float]) compares by numeric value. *)

val hash : t -> int
(** Hash consistent with {!equal}. *)

val int : int -> t
val float : float -> t
val str : string -> t

val to_int_exn : t -> int
(** Raises [Invalid_argument] unless the value is [Int]. *)

val to_float_exn : t -> float
(** Accepts [Int] (widened) and [Float]; raises otherwise. *)

val to_str_exn : t -> string
(** Raises [Invalid_argument] unless the value is [Str]. *)

val is_null : t -> bool
val pp : Format.formatter -> t -> unit
val to_string : t -> string
val ty_to_string : ty -> string

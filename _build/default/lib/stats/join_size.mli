(** The paper's analytic cost formulas (Theorems 5, 7, 8, 9).

    Each [alpha_*] function returns the expected fraction of the full
    join J = R1 ⋈ R2 that a strategy materializes as intermediate
    result; the validation benches compare these predictions against
    measured work. All formulas are written over frequency statistics
    m1, m2 of the two operand relations. *)

open Rsj_relation

val join_cardinality : Frequency.t -> Frequency.t -> int
(** n = |R1 ⋈ R2| = Σ_v m1(v)·m2(v). *)

val self_join_moment : Frequency.t -> Frequency.t -> float
(** Σ_v m1(v)·m2(v)² — the second-moment term of Theorem 7. *)

val olken_expected_iterations : m1:Frequency.t -> m2:Frequency.t -> float
(** Theorem 5: expected iterations of Olken-Sample per output tuple,
    M·n1 / n, where M = max_v m2(v). [infinity] when the join is
    empty. *)

val alpha_group_sample : m1:Frequency.t -> m2:Frequency.t -> r:int -> float
(** Theorem 7: Group-Sample computes an expected α-fraction of J with
    α = r · Σ m1 m2² / (Σ m1 m2)². *)

val alpha_group_sample_uniform : m:int -> d:int -> r:int -> float
(** The no-skew corollary: α = r / (m·d) when every common value has
    frequency [m] in R2 and there are [d] common distinct values. *)

val alpha_frequency_partition :
  m1:Frequency.t -> m2:Frequency.t -> is_high:(Value.t -> bool) -> r:int -> float
(** Theorem 8: the hybrid strategy computes
    (Σ_lo m1 m2 + r·Σ_hi m1 m2² / Σ_hi m1 m2) / Σ m1 m2. The [is_high]
    predicate is Dhi membership (from the end-biased histogram). When
    the hi-side join is empty the second term is 0. *)

val alpha_index_sample :
  m1:Frequency.t -> m2:Frequency.t -> is_high:(Value.t -> bool) -> r:int -> float
(** Theorem 9: α = (r + Σ_lo m1 m2) / Σ m1 m2. *)

val naive_work : m1:Frequency.t -> m2:Frequency.t -> int
(** Tuples the naive strategy materializes: all of J. *)

val pp_summary : Format.formatter -> m1:Frequency.t -> m2:Frequency.t -> r:int -> unit
(** Human-readable report of the formulas for one join instance. *)

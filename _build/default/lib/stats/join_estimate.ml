open Rsj_relation
module Prng = Rsj_util.Prng

type estimate = { value : float; stderr : float; draws : int }

let mean_stderr xs =
  let n = Array.length xs in
  if n = 0 then (0., 0.)
  else begin
    let mean = Rsj_util.Stats_math.mean xs in
    let stderr =
      if n < 2 then 0. else Rsj_util.Stats_math.stddev xs /. sqrt (float_of_int n)
    in
    (mean, stderr)
  end

let cross_product rng ~left ~right ~left_key ~right_key ~r1 ~r2 =
  if r1 <= 0 || r2 <= 0 then invalid_arg "Join_estimate.cross_product: r1, r2 must be positive";
  let n1 = Relation.cardinality left and n2 = Relation.cardinality right in
  if n1 = 0 || n2 = 0 then { value = 0.; stderr = 0.; draws = 0 }
  else begin
    let s1 = Array.init r1 (fun _ -> Tuple.attr (Relation.random_row left rng) left_key) in
    let s2 = Array.init r2 (fun _ -> Tuple.attr (Relation.random_row right rng) right_key) in
    (* Count matches via a small frequency map over s2. *)
    let counts = Hashtbl.create (2 * r2) in
    Array.iter
      (fun v ->
        if not (Value.is_null v) then
          Hashtbl.replace counts v (1 + Option.value ~default:0 (Hashtbl.find_opt counts v)))
      s2;
    (* Per-s1-draw matching fraction, for a CLT interval over r1. *)
    let per_draw =
      Array.map
        (fun v ->
          let m = Option.value ~default:0 (Hashtbl.find_opt counts v) in
          float_of_int m /. float_of_int r2)
        s1
    in
    let mean, stderr = mean_stderr per_draw in
    let scale = float_of_int n1 *. float_of_int n2 in
    { value = scale *. mean; stderr = scale *. stderr; draws = r1 + r2 }
  end

let index_assisted rng ~left ~right_index ~left_key ~draws =
  if draws <= 0 then invalid_arg "Join_estimate.index_assisted: draws must be positive";
  let n1 = Relation.cardinality left in
  if n1 = 0 then { value = 0.; stderr = 0.; draws = 0 }
  else begin
    let xs =
      Array.init draws (fun _ ->
          let t = Relation.random_row left rng in
          float_of_int (Rsj_index.Hash_index.multiplicity right_index (Tuple.attr t left_key)))
    in
    let mean, stderr = mean_stderr xs in
    let scale = float_of_int n1 in
    { value = scale *. mean; stderr = scale *. stderr; draws }
  end

let bifocal rng ~left ~right ~left_key ~right_key ~histogram ~draws =
  if draws <= 0 then invalid_arg "Join_estimate.bifocal: draws must be positive";
  let n1 = Relation.cardinality left in
  (* Exact hot part: m1 over Dhi from one scan of R1; m2 from the
     histogram. *)
  let hot_m1 : (Value.t, int) Hashtbl.t = Hashtbl.create 64 in
  Relation.iter left (fun row ->
      let v = Tuple.attr row left_key in
      if (not (Value.is_null v)) && Histogram.End_biased.is_high histogram v then
        Hashtbl.replace hot_m1 v (1 + Option.value ~default:0 (Hashtbl.find_opt hot_m1 v)));
  let hot =
    Hashtbl.fold
      (fun v m1v acc ->
        match Histogram.End_biased.frequency histogram v with
        | Some m2v -> acc +. (float_of_int m1v *. float_of_int m2v)
        | None -> acc)
      hot_m1 0.
  in
  (* Sampled cold part: frequencies of the low-frequency side of R2. *)
  let cold_m2 : (Value.t, int) Hashtbl.t = Hashtbl.create 256 in
  Relation.iter right (fun row ->
      let v = Tuple.attr row right_key in
      if (not (Value.is_null v)) && not (Histogram.End_biased.is_high histogram v) then
        Hashtbl.replace cold_m2 v (1 + Option.value ~default:0 (Hashtbl.find_opt cold_m2 v)));
  if n1 = 0 then { value = hot; stderr = 0.; draws = 0 }
  else begin
    let xs =
      Array.init draws (fun _ ->
          let t = Relation.random_row left rng in
          let v = Tuple.attr t left_key in
          if Value.is_null v || Histogram.End_biased.is_high histogram v then 0.
          else float_of_int (Option.value ~default:0 (Hashtbl.find_opt cold_m2 v)))
    in
    let mean, stderr = mean_stderr xs in
    let scale = float_of_int n1 in
    { value = hot +. (scale *. mean); stderr = scale *. stderr; draws }
  end

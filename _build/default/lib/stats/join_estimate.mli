(** Sampling-based estimation of |R1 ⋈ R2|.

    The paper is emphatic that join {e sampling} is not join-size
    {e estimation} — "our goal is to create a sample of the join ...
    the earlier estimation techniques apply to determining an
    approximation to the size of the join" — but the strategies consume
    join sizes (the binomial split of Frequency-Partition-Sample, the
    AQP scale factors), so the estimation side is provided too, in the
    three classical flavours the paper cites:

    - {!cross_product}: sample both relations, count matching pairs in
      the sample cross product, scale (Hou/Ozsoyoglu-style);
    - {!index_assisted}: sample R1 tuples, read each exact m2 through
      an index (Lipton/Naughton/Schneider adaptive-style, fixed draw
      budget with a CLT interval);
    - {!bifocal}: exact counting for values that are frequent on both
      sides, sampling for the sparse remainder (Ganguly, Gibbons,
      Matias & Silberschatz — the same hybrid insight as
      Frequency-Partition-Sample; see the paper's footnote 3). *)

open Rsj_relation

type estimate = {
  value : float;  (** Estimated |J|. *)
  stderr : float;  (** CLT standard error (0 when exact). *)
  draws : int;  (** Sampling draws spent. *)
}

val cross_product :
  Rsj_util.Prng.t ->
  left:Relation.t ->
  right:Relation.t ->
  left_key:int ->
  right_key:int ->
  r1:int ->
  r2:int ->
  estimate
(** Draw [r1] and [r2] WR tuples, count joining pairs among the r1·r2
    combinations, scale by n1·n2/(r1·r2). Unbiased; high variance on
    sparse joins (often 0 matches — the known weakness). *)

val index_assisted :
  Rsj_util.Prng.t ->
  left:Relation.t ->
  right_index:Rsj_index.Hash_index.t ->
  left_key:int ->
  draws:int ->
  estimate
(** E[|J|] = n1 · E[m2(t.A)] for uniform t from R1: average [draws]
    exact multiplicities through the index. Unbiased, variance driven
    by the skew of m2. *)

val bifocal :
  Rsj_util.Prng.t ->
  left:Relation.t ->
  right:Relation.t ->
  left_key:int ->
  right_key:int ->
  histogram:Histogram.End_biased.t ->
  draws:int ->
  estimate
(** Exact Σ m1·m2 over the histogram's high-frequency values (one scan
    of R1 for the m1 counts) plus an {!index_assisted}-style sampled
    estimate of the low-frequency remainder computed against a hash of
    R2's low side. The sampled part's variance excludes the hot values,
    which is the entire trick. *)

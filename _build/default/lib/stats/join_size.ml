let join_cardinality m1 m2 = Frequency.join_size m1 m2

let self_join_moment m1 m2 =
  Frequency.fold m1 ~init:0. ~f:(fun acc v c1 ->
      let c2 = float_of_int (Frequency.frequency m2 v) in
      acc +. (float_of_int c1 *. c2 *. c2))

let olken_expected_iterations ~m1 ~m2 =
  let n = join_cardinality m1 m2 in
  if n = 0 then infinity
  else
    let m = float_of_int (Frequency.max_frequency m2) in
    let n1 = float_of_int (Frequency.total m1) in
    m *. n1 /. float_of_int n

let alpha_group_sample ~m1 ~m2 ~r =
  let n = float_of_int (join_cardinality m1 m2) in
  if n = 0. then 0. else float_of_int r *. self_join_moment m1 m2 /. (n *. n)

let alpha_group_sample_uniform ~m ~d ~r =
  if m <= 0 || d <= 0 then invalid_arg "alpha_group_sample_uniform: m, d must be positive";
  float_of_int r /. float_of_int (m * d)

let partition_sums ~m1 ~m2 ~is_high =
  Frequency.fold m1 ~init:(0., 0., 0.) ~f:(fun (lo, hi, hi2) v c1 ->
      let c1 = float_of_int c1 in
      let c2 = float_of_int (Frequency.frequency m2 v) in
      if c2 = 0. then (lo, hi, hi2)
      else if is_high v then (lo, hi +. (c1 *. c2), hi2 +. (c1 *. c2 *. c2))
      else (lo +. (c1 *. c2), hi, hi2))

let alpha_frequency_partition ~m1 ~m2 ~is_high ~r =
  let lo, hi, hi2 = partition_sums ~m1 ~m2 ~is_high in
  let n = lo +. hi in
  if n = 0. then 0.
  else begin
    let hi_term = if hi = 0. then 0. else float_of_int r *. hi2 /. hi in
    (lo +. hi_term) /. n
  end

let alpha_index_sample ~m1 ~m2 ~is_high ~r =
  let lo, hi, _ = partition_sums ~m1 ~m2 ~is_high in
  let n = lo +. hi in
  if n = 0. then 0. else (float_of_int r +. lo) /. n

let naive_work ~m1 ~m2 = join_cardinality m1 m2

let pp_summary ppf ~m1 ~m2 ~r =
  let n = join_cardinality m1 m2 in
  Format.fprintf ppf
    "@[<v>join size n = %d@,n1 = %d, n2 = %d, M = max m2 = %d@,\
     Olken iterations/tuple (Thm 5): %.3f@,\
     Group-Sample alpha (Thm 7):     %.6f@,\
     naive work: %d tuples@]"
    n (Frequency.total m1) (Frequency.total m2) (Frequency.max_frequency m2)
    (olken_expected_iterations ~m1 ~m2)
    (alpha_group_sample ~m1 ~m2 ~r)
    (naive_work ~m1 ~m2)

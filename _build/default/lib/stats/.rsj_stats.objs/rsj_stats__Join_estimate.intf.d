lib/stats/join_estimate.mli: Histogram Relation Rsj_index Rsj_relation Rsj_util

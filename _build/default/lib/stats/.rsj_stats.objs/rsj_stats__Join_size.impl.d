lib/stats/join_size.ml: Format Frequency

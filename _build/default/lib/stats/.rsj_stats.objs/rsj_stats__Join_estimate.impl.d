lib/stats/join_estimate.ml: Array Hashtbl Histogram Option Relation Rsj_index Rsj_relation Rsj_util Tuple Value

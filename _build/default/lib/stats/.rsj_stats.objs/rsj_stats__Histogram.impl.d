lib/stats/histogram.ml: Array Float Frequency Hashtbl Int List Relation Rsj_relation Tuple Value

lib/stats/histogram.mli: Frequency Relation Rsj_relation Value

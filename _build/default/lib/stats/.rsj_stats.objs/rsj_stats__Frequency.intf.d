lib/stats/frequency.mli: Relation Rsj_relation Stream0 Tuple Value

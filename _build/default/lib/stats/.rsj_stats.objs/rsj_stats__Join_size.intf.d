lib/stats/join_size.mli: Format Frequency Rsj_relation Value

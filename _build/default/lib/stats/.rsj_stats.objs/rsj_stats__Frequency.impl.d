lib/stats/frequency.ml: Hashtbl Int List Option Relation Rsj_relation Stream0 Tuple Value

open Rsj_relation
open Rsj_util

let schema =
  Schema.of_list [ ("rid", Value.T_int); ("col2", Value.T_int); ("pad", Value.T_str) ]

let col_rid = 0
let col2 = 1
let col_pad = 2

(* The paper pads records to a realistic size with a 32-byte character
   field; sharing one string per table keeps memory sane at scale while
   preserving the record shape. *)
let padding = String.make 32 'x'

let make ?(seed = 0x5EED) ~name ~rows ~z ~domain () =
  if rows <= 0 then invalid_arg "Zipf_tables.make: rows <= 0";
  if domain <= 0 then invalid_arg "Zipf_tables.make: domain <= 0";
  if z < 0. then invalid_arg "Zipf_tables.make: z < 0";
  let rng = Prng.create ~seed () in
  let zipf = Dist.Zipf.create ~z ~support:domain in
  (* Unique randomly-ordered RIDs: a shuffled 1..n. *)
  let rids = Array.init rows (fun i -> i + 1) in
  Prng.shuffle_in_place rng rids;
  let rel = Relation.create ~name ~capacity:rows schema in
  for i = 0 to rows - 1 do
    let v = Dist.Zipf.draw zipf rng in
    Relation.append_unchecked rel [| Value.Int rids.(i); Value.Int v; Value.Str padding |]
  done;
  rel

type pair = {
  outer : Relation.t;
  inner : Relation.t;
  z_outer : float;
  z_inner : float;
  domain : int;
}

let make_pair ?(seed = 0x5EED) ~n1 ~n2 ~z1 ~z2 ~domain () =
  let root = Prng.create ~seed () in
  let seed_of rng = Int64.to_int (Int64.logand (Prng.bits64 rng) 0x3FFFFFFFL) in
  let s1 = seed_of root in
  let s2 = seed_of root in
  {
    outer = make ~seed:s1 ~name:(Printf.sprintf "t1_z%g" z1) ~rows:n1 ~z:z1 ~domain ();
    inner = make ~seed:s2 ~name:(Printf.sprintf "t2_z%g" z2) ~rows:n2 ~z:z2 ~domain ();
    z_outer = z1;
    z_inner = z2;
    domain;
  }

let join_size pair =
  let m1 = Rsj_stats.Frequency.of_relation pair.outer ~key:col2 in
  let m2 = Rsj_stats.Frequency.of_relation pair.inner ~key:col2 in
  Rsj_stats.Frequency.join_size m1 m2

module Scale = struct
  type t = { n1 : int; n2 : int; domain : int; seed : int }

  let default = { n1 = 3_000; n2 = 12_000; domain = 600; seed = 0x5EED }

  let env_int name fallback =
    match Sys.getenv_opt name with
    | Some s -> (
        match int_of_string_opt (String.trim s) with
        | Some v when v > 0 -> v
        | _ -> invalid_arg (Printf.sprintf "%s must be a positive integer, got %S" name s))
    | None -> fallback

  let from_env () =
    let scale = env_int "RSJ_SCALE" 1 in
    {
      n1 = scale * env_int "RSJ_N1" default.n1;
      n2 = scale * env_int "RSJ_N2" default.n2;
      domain = env_int "RSJ_DOMAIN" default.domain;
      seed = env_int "RSJ_SEED" default.seed;
    }

  let pp ppf t =
    Format.fprintf ppf "n1=%d n2=%d domain=%d seed=%#x" t.n1 t.n2 t.domain t.seed
end

(** The experimental tables of paper §8.1.

    Each table has three columns:
    - [rid]: a unique randomly-permuted identifier in [\[1, n\]];
    - [col2]: an integer drawn from a Zipfian distribution with
      parameter z over a fixed domain, with {e the same rank order in
      every table} (rank 1 is value 1 everywhere) so that frequent
      values collide across tables, as the paper specifies;
    - [pad]: a 32-byte character field "to ensure a reasonable record
      size".

    The paper's queries are [SELECT * FROM t1, t2 WHERE t1.col2 =
    t2.col2] with t1 the smaller (outer) table. *)

open Rsj_relation

val schema : Schema.t
(** (rid int, col2 int, pad string). *)

val col_rid : int
val col2 : int
(** Column index of the join attribute (1). *)

val col_pad : int

val make : ?seed:int -> name:string -> rows:int -> z:float -> domain:int -> unit -> Relation.t
(** Generate one table. Reproducible from [seed]. Raises
    [Invalid_argument] for non-positive [rows] or [domain] or negative
    [z]. *)

type pair = {
  outer : Relation.t;  (** t1 — the paper's 100K-tuple table. *)
  inner : Relation.t;  (** t2 — the paper's 1M-tuple table. *)
  z_outer : float;
  z_inner : float;
  domain : int;
}

val make_pair :
  ?seed:int -> n1:int -> n2:int -> z1:float -> z2:float -> domain:int -> unit -> pair
(** The joinable pair for one experimental cell; outer and inner use
    decorrelated seeds derived from [seed]. *)

val join_size : pair -> int
(** Exact |outer ⋈ inner| on col2. *)

(** Experiment scale, overridable via environment variables so the
    benches can be rerun at the paper's full scale:
    [RSJ_N1] (default 3000), [RSJ_N2] (default 12000),
    [RSJ_DOMAIN] (default 600), [RSJ_SCALE] (multiplies n1 and n2),
    [RSJ_SEED]. *)
module Scale : sig
  type t = { n1 : int; n2 : int; domain : int; seed : int }

  val default : t
  val from_env : unit -> t
  val pp : Format.formatter -> t -> unit
end

lib/workload/zipf_tables.mli: Format Relation Rsj_relation Schema

lib/workload/zipf_tables.ml: Array Dist Format Int64 Printf Prng Relation Rsj_relation Rsj_stats Rsj_util Schema String Sys Value

open Rsj_relation

module Vtbl = Hashtbl.Make (struct
  type t = Value.t

  let equal = Value.equal
  let hash = Value.hash
end)

type t = {
  relation : Relation.t;
  key : int;
  buckets : int array Vtbl.t;  (* value -> row ids, in row order *)
  mutable max_mult : int;
  mutable probes : int;
}

let build relation ~key =
  (* Two-pass build: count multiplicities, then fill fixed-size buckets.
     Avoids per-value list reversal and keeps row ids in storage order. *)
  let counts = Vtbl.create 1024 in
  Relation.iter relation (fun row ->
      let v = Tuple.attr row key in
      if not (Value.is_null v) then
        Vtbl.replace counts v (1 + Option.value ~default:0 (Vtbl.find_opt counts v)));
  let buckets = Vtbl.create (Vtbl.length counts) in
  let fill = Vtbl.create (Vtbl.length counts) in
  let max_mult = ref 0 in
  Vtbl.iter
    (fun v c ->
      Vtbl.replace buckets v (Array.make c (-1));
      Vtbl.replace fill v 0;
      if c > !max_mult then max_mult := c)
    counts;
  Relation.iteri relation (fun i row ->
      let v = Tuple.attr row key in
      if not (Value.is_null v) then begin
        let slot = Vtbl.find fill v in
        (Vtbl.find buckets v).(slot) <- i;
        Vtbl.replace fill v (slot + 1)
      end);
  { relation; key; buckets; max_mult = !max_mult; probes = 0 }

let relation t = t.relation
let key t = t.key

let empty_rows : int array = [||]

let lookup t v =
  t.probes <- t.probes + 1;
  if Value.is_null v then empty_rows
  else match Vtbl.find_opt t.buckets v with Some ids -> ids | None -> empty_rows

let multiplicity t v = Array.length (lookup t v)

let matching_tuples t v = Array.map (Relation.get t.relation) (lookup t v)

let random_match t rng v =
  let ids = lookup t v in
  let m = Array.length ids in
  if m = 0 then None else Some (Relation.get t.relation ids.(Rsj_util.Prng.int rng m))

let distinct_keys t =
  let out = Array.make (Vtbl.length t.buckets) Value.Null in
  let i = ref 0 in
  Vtbl.iter
    (fun v _ ->
      out.(!i) <- v;
      incr i)
    t.buckets;
  out

let max_multiplicity t = t.max_mult
let probe_count t = t.probes

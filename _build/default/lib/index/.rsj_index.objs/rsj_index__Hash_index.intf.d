lib/index/hash_index.mli: Relation Rsj_relation Rsj_util Tuple Value

lib/index/btree.mli: Relation Rsj_relation Rsj_util Value

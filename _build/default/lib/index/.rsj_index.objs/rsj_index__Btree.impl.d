lib/index/btree.ml: Array List Printf Relation Rsj_relation Rsj_util Tuple Value

lib/index/hash_index.ml: Array Hashtbl Option Relation Rsj_relation Rsj_util Tuple Value

open Rsj_relation

(* A textbook in-memory B+tree with posting lists.

   Nodes store keys in sorted arrays with an explicit live count, so
   splits are array blits. Leaves are chained for ordered scans. The
   tree maps each distinct key to a growable posting list of row ids;
   duplicates therefore never split nodes, which keeps the worst case
   O(log d) for d distinct keys. *)

type posting = { mutable ids : int array; mutable len : int }

let posting_create id = { ids = Array.make 4 id; len = 1 }

let posting_add p id =
  if p.len >= Array.length p.ids then begin
    let fresh = Array.make (2 * Array.length p.ids) 0 in
    Array.blit p.ids 0 fresh 0 p.len;
    p.ids <- fresh
  end;
  p.ids.(p.len) <- id;
  p.len <- p.len + 1

let posting_to_array p = Array.sub p.ids 0 p.len

type node =
  | Leaf of leaf
  | Internal of internal

and leaf = {
  mutable keys : Value.t array;
  mutable postings : posting array;
  mutable nkeys : int;
  mutable next : leaf option;
}

and internal = {
  mutable ikeys : Value.t array;  (* separator keys; child i holds keys < ikeys.(i) *)
  mutable children : node array;
  mutable nseps : int;  (* live separators; live children = nseps + 1 *)
}

type t = {
  order : int;
  mutable root : node;
  mutable distinct : int;
  mutable entries : int;
}

let new_leaf order =
  { keys = Array.make order Value.Null; postings = Array.make order (posting_create 0); nkeys = 0; next = None }

let create ?(order = 32) () =
  let order = max order 4 in
  { order; root = Leaf (new_leaf order); distinct = 0; entries = 0 }

(* Find the first position in keys[0..n) with keys.(pos) >= key. *)
let lower_bound keys n key =
  let lo = ref 0 and hi = ref n in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if Value.compare keys.(mid) key < 0 then lo := mid + 1 else hi := mid
  done;
  !lo

(* Child index to descend into: first separator strictly greater than key
   determines the child; keys equal to a separator go right. *)
let child_index node key =
  let lo = ref 0 and hi = ref node.nseps in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if Value.compare node.ikeys.(mid) key <= 0 then lo := mid + 1 else hi := mid
  done;
  !lo

let rec find_leaf node key =
  match node with
  | Leaf l -> l
  | Internal n -> find_leaf n.children.(child_index n key) key

let find_posting t key =
  let l = find_leaf t.root key in
  let pos = lower_bound l.keys l.nkeys key in
  if pos < l.nkeys && Value.equal l.keys.(pos) key then Some l.postings.(pos) else None

(* Insertion: returns (separator, right-node) when the child split. *)
type split = (Value.t * node) option

let insert_into_leaf t l key id : split =
  let pos = lower_bound l.keys l.nkeys key in
  if pos < l.nkeys && Value.equal l.keys.(pos) key then begin
    posting_add l.postings.(pos) id;
    None
  end
  else begin
    t.distinct <- t.distinct + 1;
    if l.nkeys < t.order then begin
      Array.blit l.keys pos l.keys (pos + 1) (l.nkeys - pos);
      Array.blit l.postings pos l.postings (pos + 1) (l.nkeys - pos);
      l.keys.(pos) <- key;
      l.postings.(pos) <- posting_create id;
      l.nkeys <- l.nkeys + 1;
      None
    end
    else begin
      (* Split: build an oversized temporary, cut at the midpoint. *)
      let total = l.nkeys + 1 in
      let keys = Array.make total Value.Null in
      let postings = Array.make total (posting_create 0) in
      Array.blit l.keys 0 keys 0 pos;
      Array.blit l.postings 0 postings 0 pos;
      keys.(pos) <- key;
      postings.(pos) <- posting_create id;
      Array.blit l.keys pos keys (pos + 1) (l.nkeys - pos);
      Array.blit l.postings pos postings (pos + 1) (l.nkeys - pos);
      let left_n = total / 2 in
      let right_n = total - left_n in
      let right = new_leaf t.order in
      Array.blit keys left_n right.keys 0 right_n;
      Array.blit postings left_n right.postings 0 right_n;
      right.nkeys <- right_n;
      right.next <- l.next;
      Array.blit keys 0 l.keys 0 left_n;
      Array.blit postings 0 l.postings 0 left_n;
      (* Clear stale slots so dropped postings can be collected. *)
      for i = left_n to t.order - 1 do
        l.keys.(i) <- Value.Null
      done;
      l.nkeys <- left_n;
      l.next <- Some right;
      Some (right.keys.(0), Leaf right)
    end
  end

let insert_into_internal t n pos sep child : split =
  if n.nseps < t.order then begin
    Array.blit n.ikeys pos n.ikeys (pos + 1) (n.nseps - pos);
    Array.blit n.children (pos + 1) n.children (pos + 2) (n.nseps - pos);
    n.ikeys.(pos) <- sep;
    n.children.(pos + 1) <- child;
    n.nseps <- n.nseps + 1;
    None
  end
  else begin
    let total = n.nseps + 1 in
    let keys = Array.make total Value.Null in
    let children = Array.make (total + 1) n.children.(0) in
    Array.blit n.ikeys 0 keys 0 pos;
    Array.blit n.children 0 children 0 (pos + 1);
    keys.(pos) <- sep;
    children.(pos + 1) <- child;
    Array.blit n.ikeys pos keys (pos + 1) (n.nseps - pos);
    Array.blit n.children (pos + 1) children (pos + 2) (n.nseps - pos);
    let mid = total / 2 in
    let up_key = keys.(mid) in
    let right =
      {
        ikeys = Array.make (t.order + 1) Value.Null;
        children = Array.make (t.order + 2) children.(0);
        nseps = total - mid - 1;
      }
    in
    Array.blit keys (mid + 1) right.ikeys 0 right.nseps;
    Array.blit children (mid + 1) right.children 0 (right.nseps + 1);
    n.nseps <- mid;
    Array.blit keys 0 n.ikeys 0 mid;
    Array.blit children 0 n.children 0 (mid + 1);
    Some (up_key, Internal right)
  end

let rec insert_rec t node key id : split =
  match node with
  | Leaf l -> insert_into_leaf t l key id
  | Internal n -> (
      let ci = child_index n key in
      match insert_rec t n.children.(ci) key id with
      | None -> None
      | Some (sep, child) -> insert_into_internal t n ci sep child)

let insert t key id =
  if not (Value.is_null key) then begin
    t.entries <- t.entries + 1;
    match insert_rec t t.root key id with
    | None -> ()
    | Some (sep, right) ->
        let fresh =
          {
            ikeys = Array.make (t.order + 1) Value.Null;
            children = Array.make (t.order + 2) t.root;
            nseps = 1;
          }
        in
        fresh.ikeys.(0) <- sep;
        fresh.children.(0) <- t.root;
        fresh.children.(1) <- right;
        t.root <- Internal fresh
  end

let build ?order rel ~key =
  let t = create ?order () in
  Relation.iteri rel (fun i row -> insert t (Tuple.attr row key) i);
  t

let lookup t key =
  match find_posting t key with Some p -> posting_to_array p | None -> [||]

(* ---------------- deletion ---------------- *)

(* Minimum live keys for a non-root node, matching check_invariants. *)
let min_keys t = max 1 ((t.order / 2) - 1)

let leaf_remove_at l pos =
  Array.blit l.keys (pos + 1) l.keys pos (l.nkeys - pos - 1);
  Array.blit l.postings (pos + 1) l.postings pos (l.nkeys - pos - 1);
  l.nkeys <- l.nkeys - 1;
  l.keys.(l.nkeys) <- Value.Null

(* Rebalance parent n's child at index ci after it underflowed.
   Preconditions: n has live children 0..nseps. *)
let rebalance_child t n ci =
  let child = n.children.(ci) in
  let left_sibling = if ci > 0 then Some n.children.(ci - 1) else None in
  let right_sibling = if ci < n.nseps then Some n.children.(ci + 1) else None in
  let minimum = min_keys t in
  match (child, left_sibling, right_sibling) with
  | Leaf c, Some (Leaf l), _ when l.nkeys > minimum ->
      (* Borrow the left sibling's last key. *)
      Array.blit c.keys 0 c.keys 1 c.nkeys;
      Array.blit c.postings 0 c.postings 1 c.nkeys;
      c.keys.(0) <- l.keys.(l.nkeys - 1);
      c.postings.(0) <- l.postings.(l.nkeys - 1);
      c.nkeys <- c.nkeys + 1;
      l.nkeys <- l.nkeys - 1;
      l.keys.(l.nkeys) <- Value.Null;
      n.ikeys.(ci - 1) <- c.keys.(0)
  | Leaf c, _, Some (Leaf r) when r.nkeys > minimum ->
      (* Borrow the right sibling's first key. *)
      c.keys.(c.nkeys) <- r.keys.(0);
      c.postings.(c.nkeys) <- r.postings.(0);
      c.nkeys <- c.nkeys + 1;
      leaf_remove_at r 0;
      n.ikeys.(ci) <- r.keys.(0)
  | Leaf c, Some (Leaf l), _ ->
      (* Merge child into its left sibling. *)
      Array.blit c.keys 0 l.keys l.nkeys c.nkeys;
      Array.blit c.postings 0 l.postings l.nkeys c.nkeys;
      l.nkeys <- l.nkeys + c.nkeys;
      l.next <- c.next;
      (* Drop separator ci-1 and child ci from the parent. *)
      Array.blit n.ikeys ci n.ikeys (ci - 1) (n.nseps - ci);
      Array.blit n.children (ci + 1) n.children ci (n.nseps - ci);
      n.nseps <- n.nseps - 1
  | Leaf c, None, Some (Leaf r) ->
      (* Merge the right sibling into the child. *)
      Array.blit r.keys 0 c.keys c.nkeys r.nkeys;
      Array.blit r.postings 0 c.postings c.nkeys r.nkeys;
      c.nkeys <- c.nkeys + r.nkeys;
      c.next <- r.next;
      Array.blit n.ikeys (ci + 1) n.ikeys ci (n.nseps - ci - 1);
      Array.blit n.children (ci + 2) n.children (ci + 1) (n.nseps - ci - 1);
      n.nseps <- n.nseps - 1
  | Internal c, Some (Internal l), _ when l.nseps > minimum ->
      (* Rotate right through the parent separator. *)
      Array.blit c.ikeys 0 c.ikeys 1 c.nseps;
      Array.blit c.children 0 c.children 1 (c.nseps + 1);
      c.ikeys.(0) <- n.ikeys.(ci - 1);
      c.children.(0) <- l.children.(l.nseps);
      c.nseps <- c.nseps + 1;
      n.ikeys.(ci - 1) <- l.ikeys.(l.nseps - 1);
      l.nseps <- l.nseps - 1
  | Internal c, _, Some (Internal r) when r.nseps > minimum ->
      (* Rotate left through the parent separator. *)
      c.ikeys.(c.nseps) <- n.ikeys.(ci);
      c.children.(c.nseps + 1) <- r.children.(0);
      c.nseps <- c.nseps + 1;
      n.ikeys.(ci) <- r.ikeys.(0);
      Array.blit r.ikeys 1 r.ikeys 0 (r.nseps - 1);
      Array.blit r.children 1 r.children 0 r.nseps;
      r.nseps <- r.nseps - 1
  | Internal c, Some (Internal l), _ ->
      (* Merge child into left sibling, pulling the separator down. *)
      l.ikeys.(l.nseps) <- n.ikeys.(ci - 1);
      Array.blit c.ikeys 0 l.ikeys (l.nseps + 1) c.nseps;
      Array.blit c.children 0 l.children (l.nseps + 1) (c.nseps + 1);
      l.nseps <- l.nseps + 1 + c.nseps;
      Array.blit n.ikeys ci n.ikeys (ci - 1) (n.nseps - ci);
      Array.blit n.children (ci + 1) n.children ci (n.nseps - ci);
      n.nseps <- n.nseps - 1
  | Internal c, None, Some (Internal r) ->
      (* Merge right sibling into child. *)
      c.ikeys.(c.nseps) <- n.ikeys.(ci);
      Array.blit r.ikeys 0 c.ikeys (c.nseps + 1) r.nseps;
      Array.blit r.children 0 c.children (c.nseps + 1) (r.nseps + 1);
      c.nseps <- c.nseps + 1 + r.nseps;
      Array.blit n.ikeys (ci + 1) n.ikeys ci (n.nseps - ci - 1);
      Array.blit n.children (ci + 2) n.children (ci + 1) (n.nseps - ci - 1);
      n.nseps <- n.nseps - 1
  | Leaf _, None, None | Internal _, None, None ->
      (* Only possible for the root's single child, which the caller
         handles by collapsing the root. *)
      ()
  | Leaf _, Some (Internal _), _
  | Leaf _, _, Some (Internal _)
  | Internal _, Some (Leaf _), _
  | Internal _, _, Some (Leaf _) ->
      assert false (* siblings share the child's depth *)

(* Remove the key entirely (used once its posting list is empty).
   Returns true when this subtree's node underflowed. *)
let rec remove_key_rec t node key =
  match node with
  | Leaf l ->
      let pos = lower_bound l.keys l.nkeys key in
      if pos < l.nkeys && Value.equal l.keys.(pos) key then begin
        leaf_remove_at l pos;
        l.nkeys < min_keys t
      end
      else false
  | Internal n ->
      let ci = child_index n key in
      let child_underflow = remove_key_rec t n.children.(ci) key in
      if child_underflow then begin
        rebalance_child t n ci;
        n.nseps < min_keys t
      end
      else false

let collapse_root t =
  match t.root with
  | Internal n when n.nseps = 0 -> t.root <- n.children.(0)
  | Internal _ | Leaf _ -> ()

let delete t key id =
  match find_posting t key with
  | None -> false
  | Some p -> (
      (* Swap-remove the row id from the posting list. *)
      let rec find i = if i >= p.len then None else if p.ids.(i) = id then Some i else find (i + 1) in
      match find 0 with
      | None -> false
      | Some i ->
          p.ids.(i) <- p.ids.(p.len - 1);
          p.len <- p.len - 1;
          t.entries <- t.entries - 1;
          if p.len = 0 then begin
            t.distinct <- t.distinct - 1;
            ignore (remove_key_rec t t.root key);
            collapse_root t
          end;
          true)

let delete_key t key =
  match find_posting t key with
  | None -> 0
  | Some p ->
      let dropped = p.len in
      p.len <- 0;
      t.entries <- t.entries - dropped;
      t.distinct <- t.distinct - 1;
      ignore (remove_key_rec t t.root key);
      collapse_root t;
      dropped

let multiplicity t key =
  match find_posting t key with Some p -> p.len | None -> 0

let random_match t rng key =
  match find_posting t key with
  | None -> None
  | Some p -> Some p.ids.(Rsj_util.Prng.int rng p.len)

let rec leftmost_leaf = function
  | Leaf l -> l
  | Internal n -> leftmost_leaf n.children.(0)

let iter t f =
  let rec walk = function
    | None -> ()
    | Some l ->
        for i = 0 to l.nkeys - 1 do
          f l.keys.(i) (posting_to_array l.postings.(i))
        done;
        walk l.next
  in
  walk (Some (leftmost_leaf t.root))

let range t ~lo ~hi =
  let out = ref [] in
  let start =
    match lo with
    | None -> leftmost_leaf t.root
    | Some v -> find_leaf t.root v
  in
  let above_hi key = match hi with None -> false | Some v -> Value.compare key v > 0 in
  let below_lo key = match lo with None -> false | Some v -> Value.compare key v < 0 in
  let rec walk = function
    | None -> ()
    | Some l ->
        let stop = ref false in
        for i = 0 to l.nkeys - 1 do
          let k = l.keys.(i) in
          if not (below_lo k) then
            if above_hi k then stop := true
            else out := (k, posting_to_array l.postings.(i)) :: !out
        done;
        if not !stop then walk l.next
  in
  walk (Some start);
  List.rev !out

let min_key t =
  let l = leftmost_leaf t.root in
  if l.nkeys = 0 then None else Some l.keys.(0)

let max_key t =
  let rec rightmost = function
    | Leaf l -> l
    | Internal n -> rightmost n.children.(n.nseps)
  in
  let l = rightmost t.root in
  if l.nkeys = 0 then None else Some l.keys.(l.nkeys - 1)

let distinct_key_count t = t.distinct
let entry_count t = t.entries

let height t =
  let rec go acc = function Leaf _ -> acc | Internal n -> go (acc + 1) n.children.(0) in
  go 1 t.root

let check_invariants t =
  let err fmt = Printf.ksprintf (fun s -> Error s) fmt in
  let min_keys = (t.order / 2) - 1 in
  let exception Bad of string in
  let fail fmt = Printf.ksprintf (fun s -> raise (Bad s)) fmt in
  (* Returns (depth, min_key, max_key) of the subtree. *)
  let rec check ~is_root node =
    match node with
    | Leaf l ->
        if (not is_root) && l.nkeys < max 1 min_keys then
          fail "leaf underflow: %d keys (min %d)" l.nkeys min_keys;
        if l.nkeys > t.order then fail "leaf overflow: %d keys" l.nkeys;
        for i = 1 to l.nkeys - 1 do
          if Value.compare l.keys.(i - 1) l.keys.(i) >= 0 then fail "leaf keys not strictly sorted"
        done;
        if l.nkeys = 0 then (1, None, None)
        else (1, Some l.keys.(0), Some l.keys.(l.nkeys - 1))
    | Internal n ->
        if n.nseps < 1 then fail "internal node without separators";
        if n.nseps > t.order then fail "internal overflow: %d separators" n.nseps;
        for i = 1 to n.nseps - 1 do
          if Value.compare n.ikeys.(i - 1) n.ikeys.(i) >= 0 then
            fail "separators not strictly sorted"
        done;
        let depth = ref 0 in
        let lo = ref None and hi = ref None in
        for i = 0 to n.nseps do
          let d, cmin, cmax = check ~is_root:false n.children.(i) in
          if !depth = 0 then depth := d
          else if d <> !depth then fail "leaves at differing depths";
          if i = 0 then lo := cmin;
          if i = n.nseps then hi := cmax;
          (* Child i must lie in [sep(i-1), sep(i)) — keys equal to a
             separator live in the right child. *)
          (match (cmin, if i = 0 then None else Some n.ikeys.(i - 1)) with
          | Some k, Some sep when Value.compare k sep < 0 ->
              fail "child key below left separator"
          | _ -> ());
          match (cmax, if i = n.nseps then None else Some n.ikeys.(i)) with
          | Some k, Some sep when Value.compare k sep >= 0 ->
              fail "child key at or above right separator"
          | _ -> ()
        done;
        (!depth + 1, !lo, !hi)
  in
  match check ~is_root:true t.root with
  | (_ : int * Value.t option * Value.t option) ->
      (* Cross-check entry accounting. *)
      let d = ref 0 and e = ref 0 in
      iter t (fun _ ids ->
          incr d;
          e := !e + Array.length ids);
      if !d <> t.distinct then err "distinct count drift: stored %d, counted %d" t.distinct !d
      else if !e <> t.entries then err "entry count drift: stored %d, counted %d" t.entries !e
      else Ok ()
  | exception Bad msg -> Error msg

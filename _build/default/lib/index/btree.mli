(** B+tree index on an attribute, standing in for the SQL Server B-tree
    indexes of the paper's experimental setup.

    Keys are {!Rsj_relation.Value.t}; each key maps to the list of row
    ids holding it. The tree supports point probes (what the sampling
    strategies need), ordered iteration and range scans (what a real
    engine additionally provides — exercised by the merge-join path and
    by tests), and exposes an invariant checker for property-based
    testing. Duplicate keys are stored once with a growing posting list,
    so multiplicity queries are O(log n). *)

open Rsj_relation

type t

val create : ?order:int -> unit -> t
(** [create ~order ()] builds an empty tree; [order] is the maximum
    number of keys per node (default 32, minimum 4). *)

val build : ?order:int -> Relation.t -> key:int -> t
(** Index column [key] of the relation (NULLs excluded, as in
    {!Hash_index.build}). *)

val insert : t -> Value.t -> int -> unit
(** [insert t v row_id] appends [row_id] to the posting list of [v].
    [Null] keys are ignored. *)

val lookup : t -> Value.t -> int array
(** Row ids for an exact key match (copy; callers may mutate). *)

val delete : t -> Value.t -> int -> bool
(** [delete t v row_id] removes one occurrence of [row_id] from [v]'s
    posting list; when the posting list empties the key is removed and
    the tree rebalanced (borrow from a sibling, else merge, collapsing
    the root as needed). Returns [false] when the (key, row id) pair is
    not present. Posting-list order is not preserved. *)

val delete_key : t -> Value.t -> int
(** [delete_key t v] removes [v] entirely; returns how many row ids
    were dropped (0 when absent). *)

val multiplicity : t -> Value.t -> int
val random_match : t -> Rsj_util.Prng.t -> Value.t -> int option
(** Uniform random row id among the matches, or [None] if absent. *)

val range : t -> lo:Value.t option -> hi:Value.t option -> (Value.t * int array) list
(** Inclusive range scan in key order; [None] bounds are open-ended. *)

val iter : t -> (Value.t -> int array -> unit) -> unit
(** In-order traversal over (key, posting list). *)

val min_key : t -> Value.t option
val max_key : t -> Value.t option
val distinct_key_count : t -> int
val entry_count : t -> int
(** Total row ids stored (sum of posting-list lengths). *)

val height : t -> int
val check_invariants : t -> (unit, string) result
(** Structural check: sorted keys, node occupancy in [ceil(order/2)-1,
    order] except the root, uniform leaf depth, separator consistency.
    Used by qcheck properties. *)

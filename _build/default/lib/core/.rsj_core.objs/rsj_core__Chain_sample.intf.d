lib/core/chain_sample.mli: Metrics Relation Rsj_exec Rsj_relation Rsj_util Tuple

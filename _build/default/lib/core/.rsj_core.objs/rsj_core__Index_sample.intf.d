lib/core/index_sample.mli: Frequency_partition Metrics Rsj_exec Rsj_index Rsj_relation Rsj_stats Rsj_util Stream0 Tuple

lib/core/black_box.mli: Prng Rsj_relation Rsj_util Stream0

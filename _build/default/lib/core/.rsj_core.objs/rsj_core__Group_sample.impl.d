lib/core/group_sample.ml: Array Black_box Internals List Metrics Relation Reservoir Rsj_exec Rsj_relation Rsj_stats Tuple Value

lib/core/strategy.mli: Metrics Relation Rsj_exec Rsj_index Rsj_relation Rsj_stats Tuple

lib/core/sample_op.mli: Plan Rsj_exec Rsj_index Rsj_relation Rsj_stats Rsj_util Tuple

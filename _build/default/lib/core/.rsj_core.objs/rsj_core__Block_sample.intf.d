lib/core/block_sample.mli: Paged Prng Rsj_relation Rsj_util Tuple

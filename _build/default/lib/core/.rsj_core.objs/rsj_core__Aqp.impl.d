lib/core/aqp.ml: Array Float Hashtbl List Rsj_relation Rsj_util Tuple Value

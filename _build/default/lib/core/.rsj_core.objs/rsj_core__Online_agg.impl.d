lib/core/online_agg.ml: Aqp Float

lib/core/count_sample.ml: Array Black_box Internals Metrics Rsj_exec Rsj_relation Rsj_stats Tuple

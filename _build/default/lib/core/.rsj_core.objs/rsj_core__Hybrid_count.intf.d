lib/core/hybrid_count.mli: Frequency_partition Metrics Relation Rsj_exec Rsj_relation Rsj_stats Rsj_util Stream0 Tuple

lib/core/negative.mli: Prng Relation Rsj_relation Rsj_util Tuple

lib/core/sample_op.ml: Black_box Metrics Plan Printf Relation Rsj_exec Rsj_index Rsj_relation Rsj_stats Rsj_util Stream0 Tuple

lib/core/stream_sample.ml: Array Black_box Metrics Rsj_exec Rsj_index Rsj_relation Rsj_stats Stream0 Tuple

lib/core/chain_sample.ml: Array Internals List Metrics Option Printf Relation Rsj_exec Rsj_relation Rsj_util Schema Tuple Value

lib/core/convert.ml: Array Float Fun Hashtbl List Prng Rsj_util

lib/core/reservoir.mli: Prng Rsj_util

lib/core/black_box.ml: Array Dist Float Prng Reservoir Rsj_relation Rsj_util Stream0

lib/core/internals.ml: Array Hashtbl List Metrics Relation Rsj_exec Rsj_relation Rsj_util Tuple Value

lib/core/index_sample.ml: Array Frequency_partition Internals Metrics Reservoir Rsj_exec Rsj_index Rsj_relation Rsj_stats Stream0 Tuple Value

lib/core/naive_sample.ml: Array Black_box Internals Metrics Rsj_exec Rsj_relation Stream0 Tuple

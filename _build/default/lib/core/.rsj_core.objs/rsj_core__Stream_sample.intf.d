lib/core/stream_sample.mli: Metrics Rsj_exec Rsj_index Rsj_relation Rsj_stats Rsj_util Stream0 Tuple

lib/core/reservoir.ml: Array Dist Prng Rsj_util

lib/core/frequency_partition.mli: Metrics Relation Rsj_exec Rsj_relation Rsj_stats Rsj_util Stream0 Tuple

lib/core/count_sample.mli: Metrics Relation Rsj_exec Rsj_relation Rsj_stats Rsj_util Stream0 Tuple

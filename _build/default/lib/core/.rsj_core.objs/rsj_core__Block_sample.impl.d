lib/core/block_sample.ml: Array Black_box Paged Prng Rsj_relation Rsj_util

lib/core/olken_sample.mli: Metrics Relation Rsj_exec Rsj_index Rsj_relation Rsj_util Tuple

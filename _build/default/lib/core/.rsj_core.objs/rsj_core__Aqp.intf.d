lib/core/aqp.mli: Rsj_relation Tuple Value

lib/core/convert.mli: Prng Rsj_util

lib/core/negative.ml: Array Hashtbl List Printf Prng Relation Rsj_relation Rsj_util Schema Stats_math Tuple Value

lib/core/hybrid_count.ml: Array Frequency_partition Internals Metrics Option Reservoir Rsj_exec Rsj_relation Rsj_stats Stream0 Tuple Value

lib/core/online_agg.mli: Aqp Rsj_relation Tuple

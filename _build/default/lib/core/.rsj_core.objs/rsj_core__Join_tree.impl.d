lib/core/join_tree.ml: Black_box List Plan Printf Relation Rsj_exec Rsj_index Rsj_relation Rsj_stats Schema Stream_sample

lib/core/olken_sample.ml: Array Metrics Relation Rsj_exec Rsj_index Rsj_relation Rsj_util Tuple

lib/core/frequency_partition.ml: Array Internals Metrics Reservoir Rsj_exec Rsj_relation Rsj_stats Rsj_util Stream0 Tuple Value

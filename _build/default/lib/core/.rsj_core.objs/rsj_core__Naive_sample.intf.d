lib/core/naive_sample.mli: Metrics Relation Rsj_exec Rsj_relation Rsj_util Stream0 Tuple

lib/core/join_tree.mli: Metrics Plan Relation Rsj_exec Rsj_relation Rsj_util Schema Tuple

open Rsj_relation
open Rsj_util

(* Sequential samplers over single-pass streams (paper §4). Each online
   sampler is built as a Stream0 whose producer pulls from the source on
   demand, so pipelines never materialize their inputs. *)

let u1 rng ~n ~r stream =
  if n < 0 then invalid_arg "Black_box.u1: n < 0";
  if r < 0 then invalid_arg "Black_box.u1: r < 0";
  if n = 0 && r > 0 then invalid_arg "Black_box.u1: r > 0 with empty relation";
  let x = ref r in
  let i = ref 0 in
  (* Copies of the current element still owed to the consumer. *)
  let pending = ref None in
  let pending_count = ref 0 in
  let rec next () =
    if !pending_count > 0 then begin
      decr pending_count;
      !pending
    end
    else if !x <= 0 || !i >= n then begin
      Stream0.close stream;
      None
    end
    else
      match Stream0.next stream with
      | None -> failwith "Black_box.u1: stream ended before the declared n elements"
      | Some t ->
          let p = 1. /. float_of_int (n - !i) in
          let copies = Dist.binomial rng ~n:!x ~p in
          incr i;
          x := !x - copies;
          if copies > 0 then begin
            pending := Some t;
            pending_count := copies;
            next ()
          end
          else next ()
  in
  Stream0.make ~next ~close:(fun () -> Stream0.close stream) ()

let u2 rng ~r stream =
  if r < 0 then invalid_arg "Black_box.u2: r < 0";
  let res = Reservoir.Wr.create ~r in
  Stream0.iter (fun t -> Reservoir.Wr.feed rng res ~weight:1. t) stream;
  Reservoir.Wr.contents res

let wr1 rng ~total_weight ~r ~weight stream =
  if r < 0 then invalid_arg "Black_box.wr1: r < 0";
  if total_weight < 0. then invalid_arg "Black_box.wr1: negative total weight";
  let x = ref r in
  let consumed = ref 0. in
  let pending = ref None in
  let pending_count = ref 0 in
  let slack = 1e-9 *. Float.max total_weight 1. in
  let rec next () =
    if !pending_count > 0 then begin
      decr pending_count;
      !pending
    end
    else if !x <= 0 then begin
      Stream0.close stream;
      None
    end
    else
      match Stream0.next stream with
      | None ->
          if !x > 0 then
            failwith "Black_box.wr1: stream weight exhausted with samples outstanding"
          else None
      | Some t ->
          let w = weight t in
          if w < 0. then failwith "Black_box.wr1: negative weight";
          let remaining = total_weight -. !consumed in
          if remaining <= slack then
            failwith "Black_box.wr1: total weight overstated (remaining mass ~ 0)"
          else begin
            let p = Float.min 1. (w /. remaining) in
            let copies = Dist.binomial rng ~n:!x ~p in
            consumed := !consumed +. w;
            x := !x - copies;
            if copies > 0 then begin
              pending := Some t;
              pending_count := copies;
              next ()
            end
            else next ()
          end
  in
  Stream0.make ~next ~close:(fun () -> Stream0.close stream) ()

let wr2 rng ~r ~weight stream =
  if r < 0 then invalid_arg "Black_box.wr2: r < 0";
  let res = Reservoir.Wr.create ~r in
  Stream0.iter (fun t -> Reservoir.Wr.feed rng res ~weight:(weight t) t) stream;
  Reservoir.Wr.contents res

let coin_flip rng ~f stream =
  if f < 0. || f > 1. then invalid_arg "Black_box.coin_flip: f outside [0,1]";
  Stream0.filter (fun _ -> Prng.bernoulli rng f) stream

let coin_flip_skip rng ~f stream =
  if f < 0. || f > 1. then invalid_arg "Black_box.coin_flip_skip: f outside [0,1]";
  if f = 0. then begin
    Stream0.close stream;
    Stream0.empty ()
  end
  else if f = 1. then stream
  else begin
    (* Gap to the next selected element is Geometric(f). *)
    let pull () =
      let gap = Dist.geometric rng ~p:f in
      let rec skip k =
        if k <= 0 then Stream0.next stream
        else match Stream0.next stream with None -> None | Some _ -> skip (k - 1)
      in
      skip gap
    in
    Stream0.make ~next:pull ~close:(fun () -> Stream0.close stream) ()
  end

let wor_sequential rng ~n ~r stream =
  if r < 0 || n < 0 then invalid_arg "Black_box.wor_sequential: negative argument";
  if r > n then invalid_arg "Black_box.wor_sequential: r > n";
  let needed = ref r in
  let remaining = ref n in
  let rec pull () =
    if !needed <= 0 then begin
      Stream0.close stream;
      None
    end
    else
      match Stream0.next stream with
      | None ->
          if !needed > 0 then
            failwith "Black_box.wor_sequential: stream ended before the declared n elements"
          else None
      | Some t ->
          let take =
            Prng.unit_float rng *. float_of_int !remaining < float_of_int !needed
          in
          decr remaining;
          if take then begin
            decr needed;
            Some t
          end
          else pull ()
  in
  Stream0.make ~next:pull ~close:(fun () -> Stream0.close stream) ()

let reservoir_wor rng ~r stream =
  if r < 0 then invalid_arg "Black_box.reservoir_wor: r < 0";
  let res = Reservoir.Wor.create ~r in
  Stream0.iter (fun t -> Reservoir.Wor.feed rng res t) stream;
  Reservoir.Wor.contents res

let weighted_wor rng ~r ~weight stream =
  if r < 0 then invalid_arg "Black_box.weighted_wor: r < 0";
  if r = 0 then begin
    Stream0.close stream;
    [||]
  end
  else begin
    (* A-Res: keep the r elements with the largest keys u^(1/w). A
       simple array-based min-heap tracks the threshold. *)
    let heap_keys = Array.make r infinity in
    let heap_vals = ref [||] in
    let size = ref 0 in
    let swap i j =
      let k = heap_keys.(i) in
      heap_keys.(i) <- heap_keys.(j);
      heap_keys.(j) <- k;
      let v = !heap_vals.(i) in
      !heap_vals.(i) <- !heap_vals.(j);
      !heap_vals.(j) <- v
    in
    let rec sift_up i =
      if i > 0 then begin
        let parent = (i - 1) / 2 in
        if heap_keys.(parent) > heap_keys.(i) then begin
          swap parent i;
          sift_up parent
        end
      end
    in
    let rec sift_down i =
      let l = (2 * i) + 1 and rch = (2 * i) + 2 in
      let smallest = ref i in
      if l < !size && heap_keys.(l) < heap_keys.(!smallest) then smallest := l;
      if rch < !size && heap_keys.(rch) < heap_keys.(!smallest) then smallest := rch;
      if !smallest <> i then begin
        swap i !smallest;
        sift_down !smallest
      end
    in
    Stream0.iter
      (fun t ->
        let w = weight t in
        if w < 0. then failwith "Black_box.weighted_wor: negative weight";
        if w > 0. then begin
          let key = Prng.unit_float_pos rng ** (1. /. w) in
          if !size < r then begin
            if Array.length !heap_vals = 0 then heap_vals := Array.make r t;
            heap_keys.(!size) <- key;
            !heap_vals.(!size) <- t;
            incr size;
            sift_up (!size - 1)
          end
          else if key > heap_keys.(0) then begin
            heap_keys.(0) <- key;
            !heap_vals.(0) <- t;
            sift_down 0
          end
        end)
      stream;
    if !size = 0 then [||] else Array.sub !heap_vals 0 !size
  end

let weighted_coin_flip rng ~f ~total_weight ~n ~weight stream =
  if f < 0. || f > 1. then invalid_arg "Black_box.weighted_coin_flip: f outside [0,1]";
  if total_weight <= 0. then invalid_arg "Black_box.weighted_coin_flip: total_weight <= 0";
  let scale = f *. float_of_int n /. total_weight in
  Stream0.filter
    (fun t ->
      let w = weight t in
      if w < 0. then failwith "Black_box.weighted_coin_flip: negative weight";
      Prng.bernoulli rng (Float.min 1. (scale *. w)))
    stream

(** Block-level sampling over paged storage (paper §4.1 remarks).

    When the input sits on disk and its size is known, a WR sample does
    not require touching every tuple: draw the r target positions up
    front, sort them, and fetch only the pages that contain them. The
    result is distributed identically to Black-Box U1 over the same
    relation; the cost drops from reading every page to reading at most
    min(r, #pages) pages. The skipping variant of WoR reservoir
    sampling (Vitter-style random gaps) is provided for comparison. *)

open Rsj_relation
open Rsj_util

val wr_positions : Prng.t -> n:int -> r:int -> int array
(** [r] iid uniform positions in [\[0, n)], sorted ascending — the
    page-friendly access plan of a WR sample. Raises [Invalid_argument]
    if [n <= 0] with [r > 0]. *)

val u1_paged : Prng.t -> r:int -> Paged.t -> Tuple.t array
(** WR sample of size [r] fetching only the pages containing the drawn
    positions (ascending order, so each needed page is read exactly
    once). Check [Paged.pages_read] for the cost. *)

val wor_skip : Prng.t -> n:int -> r:int -> Paged.t -> Tuple.t array
(** WoR sample of size [r <= n] by Floyd's distinct-position draw plus
    sorted paged fetches — the "generating random intervals of records
    to be skipped" effect: untouched pages are never read. *)

val scan_sample : Prng.t -> r:int -> Paged.t -> Tuple.t array
(** Baseline for the ablation bench: reservoir (U2) over a full paged
    scan — reads every page regardless of [r]. *)

open Rsj_relation
open Rsj_exec

let transform ~name ~apply child =
  Plan.Transform { Plan.transform_name = name; child; out_schema = None; apply }

let u1 rng ~n ~r child =
  let rng = Rsj_util.Prng.split rng in
  transform
    ~name:(Printf.sprintf "Sample-U1 (WR, r=%d, n=%d)" r n)
    ~apply:(fun _metrics stream -> Black_box.u1 rng ~n ~r stream)
    child

let u2 rng ~r child =
  let rng = Rsj_util.Prng.split rng in
  transform
    ~name:(Printf.sprintf "Sample-U2 (WR reservoir, r=%d)" r)
    ~apply:(fun _metrics stream -> Stream0.of_array (Black_box.u2 rng ~r stream))
    child

let wr1 rng ~total_weight ~r ~weight child =
  let rng = Rsj_util.Prng.split rng in
  transform
    ~name:(Printf.sprintf "Sample-WR1 (weighted WR, r=%d, W=%g)" r total_weight)
    ~apply:(fun metrics stream ->
      let weigh t =
        metrics.Metrics.stats_lookups <- metrics.Metrics.stats_lookups + 1;
        weight t
      in
      Black_box.wr1 rng ~total_weight ~r ~weight:weigh stream)
    child

let wr2 rng ~r ~weight child =
  let rng = Rsj_util.Prng.split rng in
  transform
    ~name:(Printf.sprintf "Sample-WR2 (weighted WR reservoir, r=%d)" r)
    ~apply:(fun metrics stream ->
      let weigh t =
        metrics.Metrics.stats_lookups <- metrics.Metrics.stats_lookups + 1;
        weight t
      in
      Stream0.of_array (Black_box.wr2 rng ~r ~weight:weigh stream))
    child

let coin_flip rng ~f child =
  let rng = Rsj_util.Prng.split rng in
  transform
    ~name:(Printf.sprintf "Sample-CF (f=%g)" f)
    ~apply:(fun _metrics stream -> Black_box.coin_flip rng ~f stream)
    child

let wor rng ~n ~r child =
  let rng = Rsj_util.Prng.split rng in
  transform
    ~name:(Printf.sprintf "Sample-WoR (r=%d, n=%d)" r n)
    ~apply:(fun _metrics stream -> Black_box.wor_sequential rng ~n ~r stream)
    child

let naive_sample_plan rng ~r ~left ~right ~left_key ~right_key =
  u2 rng ~r
    (Plan.Join { Plan.algorithm = Plan.Hash; left; right; left_key; right_key })

let stream_sample_plan rng ~r ~left ~left_key ~right_index ~right_stats =
  let rng = Rsj_util.Prng.split rng in
  let weight t =
    float_of_int (Rsj_stats.Frequency.frequency right_stats (Tuple.attr t left_key))
  in
  let sampled_outer = wr2 rng ~r ~weight left in
  (* "We modified the join operator so that for each tuple sampled from
     R1, we output exactly one tuple at random from among all the tuples
     that join with R2." *)
  let join_schema =
    Rsj_relation.Schema.concat (Plan.schema_of left)
      (Relation.schema (Rsj_index.Hash_index.relation right_index))
  in
  Plan.Transform
    {
      Plan.transform_name = "Join-one-random-match (Stream-Sample)";
      child = sampled_outer;
      out_schema = Some join_schema;
      apply =
        (fun metrics stream ->
          Stream0.filter_map
            (fun t1 ->
              metrics.Metrics.index_probes <- metrics.Metrics.index_probes + 1;
              match
                Rsj_index.Hash_index.random_match right_index rng (Tuple.attr t1 left_key)
              with
              | Some t2 ->
                  metrics.Metrics.join_output_tuples <-
                    metrics.Metrics.join_output_tuples + 1;
                  Some (Tuple.join t1 t2)
              | None -> None)
            stream);
    }

(** Strategy Olken-Sample (paper §5.3; Olken & Rotem / Olken's thesis) —
    the pre-existing Case C baseline.

    Repeatedly: draw a uniform random tuple t1 from R1 (random access —
    hence the index/materialization requirement on R1), draw a uniform
    random matching tuple t2 from R2 (index), and {e accept} the pair
    with probability m2(t1.A) / M where M bounds m2; otherwise reject
    and retry. Theorem 5: expected M·n1/n iterations per output tuple.
    The rejection step is the inefficiency Stream-Sample eliminates. *)

open Rsj_relation
open Rsj_exec

val sample :
  Rsj_util.Prng.t ->
  metrics:Metrics.t ->
  r:int ->
  left:Relation.t ->
  left_key:int ->
  right_index:Rsj_index.Hash_index.t ->
  ?m_bound:int ->
  ?max_iterations:int ->
  unit ->
  Tuple.t array
(** WR sample of size [r] from R1 ⋈ R2.

    [m_bound] is the upper bound M on m2(v) (default: the exact maximum
    from the index, the most favourable choice for Olken — a looser
    bound only increases rejections). [max_iterations] (default
    [500_000_000]) guards against an empty join, where the loop would
    never accept: exceeding it raises [Failure]. Raises
    [Invalid_argument] if [left] is empty with [r > 0]. *)

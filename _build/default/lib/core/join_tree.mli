(** Sampling from linear (left-deep) join trees (paper §7.2).

    A linear tree joins R1 ⋈ R2, the result ⋈ R3, and so on. The
    paper's positive result is that sampling can be pushed down to
    {e one} operand of the topmost join: the left subtree stays a
    pipeline (never materialized) and the sampling operator biases its
    draw by the statistics of the right base relation — Stream-Sample
    with the whole prefix pipeline as its streaming R1. The negative
    results (§7.1) rule out pushing sampling into both operands.

    For exact full push-down over a whole chain (the "sample from R1
    using statistics for both R2 and R3" future-work direction), see
    {!Chain_sample}. *)

open Rsj_relation
open Rsj_exec

type step = {
  left_col : int;
      (** Join column as an index into the {e accumulated} (concatenated)
          schema of everything to the left. *)
  right : Relation.t;
  right_key : int;
}

type t = { base : Relation.t; steps : step list }
(** [base] is R1; each step joins the accumulated result with the next
    base relation. *)

val output_schema : t -> Schema.t
val validate : t -> (unit, string) result
(** Checks that every join column index is in range for the schema it
    addresses. *)

val to_plan : t -> Plan.t
(** The full left-deep hash-join plan (no sampling). *)

val cardinality : t -> int
(** Exact |J| by counting the full join — used by tests; expensive. *)

val naive_sample :
  Rsj_util.Prng.t -> metrics:Metrics.t -> r:int -> t -> Tuple.t array
(** Baseline: run the full tree, reservoir-sample the root output. *)

val pushdown_sample :
  Rsj_util.Prng.t -> metrics:Metrics.t -> r:int -> t -> Tuple.t array
(** Push the sample operator through the topmost join: the prefix tree
    streams by as R1 of a Stream-Sample whose R2 is the last relation
    (index and statistics built here and counted as preparation, since
    the last operand of a linear tree is a base relation). The prefix
    join is still computed (pipelined) — the saving is never computing
    the {e top} join — so for trees with two or more joins this wins
    exactly when the top join is the expensive one. Falls back to the
    naive baseline when the tree has no joins. *)

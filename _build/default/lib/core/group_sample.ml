open Rsj_relation
open Rsj_exec
module Frequency = Rsj_stats.Frequency
module Vtbl = Internals.Vtbl

let sample rng ~metrics ~r ~left ~left_key ~right ~right_key ~right_stats =
  let open Metrics in
  let weight t1 =
    metrics.stats_lookups <- metrics.stats_lookups + 1;
    float_of_int (Frequency.frequency right_stats (Tuple.attr t1 left_key))
  in
  let s1 = Black_box.wr2 rng ~r ~weight left in
  if Array.length s1 = 0 then [||]
  else begin
    (* Group the r S1 entries by join value so one scan of R2 feeds all
       unit reservoirs. Each S1 entry is its own group even when two
       entries are the same tuple. *)
    let groups : int list ref Vtbl.t = Vtbl.create (2 * r) in
    Array.iteri
      (fun i t1 ->
        let v = Tuple.attr t1 left_key in
        match Vtbl.find_opt groups v with
        | Some cell -> cell := i :: !cell
        | None -> Vtbl.replace groups v (ref [ i ]))
      s1;
    let reservoirs = Array.init (Array.length s1) (fun _ -> Reservoir.Unit.create ()) in
    Relation.iter right (fun t2 ->
        metrics.tuples_scanned <- metrics.tuples_scanned + 1;
        let v = Tuple.attr t2 right_key in
        if not (Value.is_null v) then
          match Vtbl.find_opt groups v with
          | None -> ()
          | Some cell ->
              List.iter
                (fun i ->
                  (* Producing the pair (s_i, t2) is one intermediate
                     join tuple of S1 ⋈ R2 — the α·|J| work of Thm 7. *)
                  metrics.join_output_tuples <- metrics.join_output_tuples + 1;
                  Reservoir.Unit.feed rng reservoirs.(i) t2)
                !cell);
    let out =
      Array.mapi
        (fun i res ->
          match Reservoir.Unit.get res with
          | Some t2 -> Tuple.join s1.(i) t2
          | None ->
              failwith
                "Group_sample.sample: sampled tuple has no match in R2 (stale statistics?)")
        reservoirs
    in
    metrics.output_tuples <- metrics.output_tuples + Array.length out;
    out
  end

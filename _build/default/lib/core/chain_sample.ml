open Rsj_relation
open Rsj_exec
module Vtbl = Internals.Vtbl

type spec = { relations : Relation.t array; join_keys : (int * int) array }

(* For relation i (i >= 1), tuples are reachable through their join-in
   value (column b of join i-1). bucket: per join-in value, the
   matching rows with their downstream weights as a cumulative array
   for O(log) weighted choice. *)
type bucket = { rows : int array; cum : float array }

type level = {
  relation : Relation.t;
  out_key : int option;  (* column a joining towards the next level *)
  buckets : bucket Vtbl.t option;  (* None for level 0 (entered directly) *)
}

type t = {
  levels : level array;
  root_rows : int array;
  root_cum : float array;  (* cumulative weights over all of R1 *)
  total : float;
}

let prepare ?(metrics = Metrics.create ()) spec =
  let k = Array.length spec.relations in
  if k = 0 then invalid_arg "Chain_sample.prepare: empty chain";
  if Array.length spec.join_keys <> k - 1 then
    invalid_arg "Chain_sample.prepare: need exactly k-1 join key pairs";
  Array.iteri
    (fun i (a, b) ->
      let arity_l = Schema.arity (Relation.schema spec.relations.(i)) in
      let arity_r = Schema.arity (Relation.schema spec.relations.(i + 1)) in
      if a < 0 || a >= arity_l then
        invalid_arg (Printf.sprintf "Chain_sample.prepare: join %d left column out of range" i);
      if b < 0 || b >= arity_r then
        invalid_arg (Printf.sprintf "Chain_sample.prepare: join %d right column out of range" i))
    spec.join_keys;
  (* weights.(i) : per-row weight for relation i; computed right to
     left. value_weight.(i) : join-in-value -> summed weight table used
     by level i-1 to compute its own weights. *)
  let weights = Array.make k [||] in
  let value_tables : float Vtbl.t array = Array.make k (Vtbl.create 0) in
  for i = k - 1 downto 0 do
    let rel = spec.relations.(i) in
    let n = Relation.cardinality rel in
    let w = Array.make n 0. in
    (if i = k - 1 then Array.fill w 0 n 1.
     else begin
       let a, _ = spec.join_keys.(i) in
       let downstream = value_tables.(i + 1) in
       Relation.iteri rel (fun row_id row ->
           metrics.Metrics.tuples_scanned <- metrics.Metrics.tuples_scanned + 1;
           let v = Tuple.attr row a in
           if not (Value.is_null v) then
             w.(row_id) <- Option.value ~default:0. (Vtbl.find_opt downstream v))
     end);
    weights.(i) <- w;
    if i > 0 then begin
      let _, b = spec.join_keys.(i - 1) in
      let table = Vtbl.create 1024 in
      Relation.iteri rel (fun row_id row ->
          metrics.Metrics.tuples_scanned <- metrics.Metrics.tuples_scanned + 1;
          let v = Tuple.attr row b in
          if (not (Value.is_null v)) && w.(row_id) > 0. then
            Vtbl.replace table v (w.(row_id) +. Option.value ~default:0. (Vtbl.find_opt table v)));
      value_tables.(i) <- table
    end
  done;
  (* Build per-value buckets with cumulative weights for levels 1..k-1. *)
  let levels =
    Array.init k (fun i ->
        let rel = spec.relations.(i) in
        let out_key = if i < k - 1 then Some (fst spec.join_keys.(i)) else None in
        if i = 0 then { relation = rel; out_key; buckets = None }
        else begin
          let _, b = spec.join_keys.(i - 1) in
          let lists : int list ref Vtbl.t = Vtbl.create 1024 in
          Relation.iteri rel (fun row_id row ->
              let v = Tuple.attr row b in
              if (not (Value.is_null v)) && weights.(i).(row_id) > 0. then
                match Vtbl.find_opt lists v with
                | Some cell -> cell := row_id :: !cell
                | None -> Vtbl.replace lists v (ref [ row_id ]));
          let buckets = Vtbl.create (Vtbl.length lists) in
          Vtbl.iter
            (fun v cell ->
              let rows = Array.of_list (List.rev !cell) in
              let cum = Array.make (Array.length rows) 0. in
              let acc = ref 0. in
              Array.iteri
                (fun j row_id ->
                  acc := !acc +. weights.(i).(row_id);
                  cum.(j) <- !acc)
                rows;
              Vtbl.replace buckets v { rows; cum })
            lists;
          { relation = rel; out_key; buckets = Some buckets }
        end)
  in
  (* Root cumulative over all rows of R1 with positive weight. *)
  let root_rows = ref [] in
  let root_weights = ref [] in
  Relation.iteri spec.relations.(0) (fun row_id _ ->
      if weights.(0).(row_id) > 0. then begin
        root_rows := row_id :: !root_rows;
        root_weights := weights.(0).(row_id) :: !root_weights
      end);
  let root_rows = Array.of_list (List.rev !root_rows) in
  let root_w = Array.of_list (List.rev !root_weights) in
  let root_cum = Array.make (Array.length root_w) 0. in
  let acc = ref 0. in
  Array.iteri
    (fun j w ->
      acc := !acc +. w;
      root_cum.(j) <- !acc)
    root_w;
  { levels; root_rows; root_cum; total = !acc }

let join_size t = t.total

(* First index with cum.(i) >= target. *)
let search_cum cum target =
  let lo = ref 0 and hi = ref (Array.length cum - 1) in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if cum.(mid) < target then lo := mid + 1 else hi := mid
  done;
  !lo

let draw t rng ?(metrics = Metrics.create ()) () =
  if t.total <= 0. || Array.length t.root_rows = 0 then None
  else begin
    let target = Rsj_util.Prng.unit_float rng *. t.total in
    let idx = search_cum t.root_cum target in
    let row0 = Relation.get t.levels.(0).relation t.root_rows.(idx) in
    metrics.Metrics.random_accesses <- metrics.Metrics.random_accesses + 1;
    let rec walk acc level_idx current =
      match t.levels.(level_idx).out_key with
      | None -> Some acc
      | Some a -> (
          let v = Tuple.attr current a in
          let next_level = t.levels.(level_idx + 1) in
          metrics.Metrics.index_probes <- metrics.Metrics.index_probes + 1;
          match next_level.buckets with
          | None -> assert false
          | Some buckets -> (
              match Vtbl.find_opt buckets v with
              | None ->
                  (* Positive weight guarantees a match; unreachable
                     unless the relations changed after prepare. *)
                  failwith "Chain_sample.draw: weight table inconsistent with relation contents"
              | Some bucket ->
                  let total = bucket.cum.(Array.length bucket.cum - 1) in
                  let target = Rsj_util.Prng.unit_float rng *. total in
                  let j = search_cum bucket.cum target in
                  let row = Relation.get next_level.relation bucket.rows.(j) in
                  walk (Tuple.join acc row) (level_idx + 1) row))
    in
    walk row0 0 row0
  end

let sample t rng ?(metrics = Metrics.create ()) ~r () =
  if t.total <= 0. then [||]
  else
    Array.init r (fun _ ->
        match draw t rng ~metrics () with
        | Some row -> row
        | None -> assert false)

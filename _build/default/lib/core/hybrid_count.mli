(** Strategy Hybrid-Count-Sample (paper §6.4) — Frequency-Partition with
    Count-Sample substituted for the high-frequency side.

    The partition, low-frequency naive sampling and binomial combine are
    those of {!Frequency_partition}; the high-frequency sample is
    produced by the Count-Sample mechanism (per-value U1 black boxes
    over a scan of R2hi) instead of a join of S1 with R2hi. The result
    needs {e neither} an index on R2 nor the S1 ⋈ R2hi intermediate —
    only the end-biased histogram — at the cost of a second scan of R2.

    Work: the join-hash build over R2lo, Σ_lo m1·m2 low-side join
    outputs, one extra scan of R2, and exactly r high-side outputs. *)

open Rsj_relation
open Rsj_exec

val sample :
  Rsj_util.Prng.t ->
  metrics:Metrics.t ->
  r:int ->
  left:Tuple.t Stream0.t ->
  left_key:int ->
  right:Relation.t ->
  right_key:int ->
  histogram:Rsj_stats.Histogram.End_biased.t ->
  Tuple.t array * Frequency_partition.detail
(** WR sample of size [r] of R1 ⋈ R2 ([[||]] when empty). Raises
    [Failure] on histogram/relation disagreement, as in
    {!Count_sample.sample}. *)

(** The sequential sampling black boxes of paper §4.

    All samplers are polymorphic over the element type and consume a
    single-pass {!Rsj_relation.Stream0} — the "streaming by" model. The
    paper's names are kept: [u1]/[u2] are the unweighted WR black boxes
    (Theorems 1 and 2), [wr1]/[wr2] their weighted generalizations
    (Theorems 3 and 4). The remaining samplers round out the three
    semantics: coin-flip (CF), Vitter's reservoir and sequential
    selection for WoR, and weighted WoR/CF variants whose details the
    paper omits ("We omit the definitions ... to the case of weighted
    sequential sampling for WoR and CF semantics").

    Online samplers return streams that preserve input order (copies of
    a repeated element are adjacent); blocking samplers return arrays
    when no output can be produced before the input is exhausted. *)

open Rsj_relation
open Rsj_util

val u1 : Prng.t -> n:int -> r:int -> 'a Stream0.t -> 'a Stream0.t
(** Black-Box U1 (Theorem 1): unweighted WR sample of size [r] from a
    stream of {b exactly} [n] elements, online, O(1) auxiliary memory.
    Per element, the number of sample slots it fills is
    Binomial(x, 1/(n-i)) where [x] slots remain and [i] elements have
    passed. The output stream raises [Failure] if the input ends before
    [n] elements; extra input beyond [n] is not consumed. Requires
    [r >= 0] and [n >= 0]; if [n = 0] then [r] must be 0. *)

val u2 : Prng.t -> r:int -> 'a Stream0.t -> 'a array
(** Black-Box U2 (Theorem 2): unweighted WR reservoir of size [r]; does
    not need [n]; O(r) memory; produces nothing until the stream ends.
    Returns [r] independent uniform draws, or [[||]] when the input is
    empty. Slot updates are batched with one Binomial(r, 1/N) draw per
    element instead of [r] coin flips. *)

val wr1 :
  Prng.t -> total_weight:float -> r:int -> weight:('a -> float) -> 'a Stream0.t -> 'a Stream0.t
(** Black-Box WR1 (Theorem 3): weighted WR sample of size [r], online,
    O(1) memory, requiring the total weight [W] in advance. Element [t]
    fills Binomial(x, w(t)/(W-D)) slots where [D] is the weight already
    passed. Negative weights raise [Failure] on the stream; the stream
    raises [Failure] if weights exhaust [W] before [x] reaches 0 (total
    weight overstated) — numerical slack up to 1e-9·W is tolerated. *)

val wr2 : Prng.t -> r:int -> weight:('a -> float) -> 'a Stream0.t -> 'a array
(** Black-Box WR2 (Theorem 4): weighted WR reservoir; no advance
    knowledge of [W]; O(r) memory. Zero-weight elements are never
    sampled; returns [[||]] if the stream carries no positive weight. *)

val coin_flip : Prng.t -> f:float -> 'a Stream0.t -> 'a Stream0.t
(** CF semantics: include each element independently with probability
    [f]. Online, order-preserving, O(1) memory. *)

val coin_flip_skip : Prng.t -> f:float -> 'a Stream0.t -> 'a Stream0.t
(** Distribution-identical to {!coin_flip} but advances by
    geometric-distributed gaps instead of per-element flips — the
    Vitter-style skipping the paper notes "improves efficiency" when
    reading from disk. Exposed separately for the ablation bench. *)

val wor_sequential : Prng.t -> n:int -> r:int -> 'a Stream0.t -> 'a Stream0.t
(** WoR selection sampling (Fan/Muller/Rezucha; Knuth's Algorithm S):
    draws exactly [r] distinct elements from a stream of exactly [n],
    online, O(1) memory, order-preserving. Requires [r <= n]. *)

val reservoir_wor : Prng.t -> r:int -> 'a Stream0.t -> 'a array
(** Vitter's Algorithm R: WoR reservoir of size [min r n] without
    knowing [n]. Result order is unspecified. *)

val weighted_wor : Prng.t -> r:int -> weight:('a -> float) -> 'a Stream0.t -> 'a array
(** Weighted WoR reservoir (Efraimidis–Spirakis A-Res): each element
    gets key u^(1/w); the [r] largest keys are kept. Inclusion
    probabilities follow successive weighted draws without replacement.
    Zero-weight elements are never sampled. *)

val weighted_coin_flip :
  Prng.t -> f:float -> total_weight:float -> n:int -> weight:('a -> float) -> 'a Stream0.t -> 'a Stream0.t
(** Weighted CF: element [t] is included independently with probability
    min(1, f·n·w(t)/W) — the weighting that makes the expected sample
    size [f·n] while biasing inclusion ∝ w. *)

(** Strategy Frequency-Partition-Sample (paper §6.3) — the hybrid that
    needs only an end-biased histogram on R2.

    The join-attribute domain is split by a frequency threshold into Dhi
    (values the histogram tracks, i.e. frequent in R2) and Dlo. The
    expensive part of the join — precisely the high-frequency values —
    is sampled with Group-Sample, while the cheap low-frequency part is
    sampled naively; r samples are taken from each side, the relative
    join sizes nhi and nlo are measured along the way, and a Binomial(r,
    nhi/(nhi+nlo)) coin split decides how many samples each side
    contributes (steps 5–7), realized as WoR draws over sample
    positions.

    Theorem 8: WR sample of J; expected intermediate join fraction
    α = (Σ_lo m1 m2 + r·Σ_hi m1 m2²/Σ_hi m1 m2) / Σ m1 m2. *)

open Rsj_relation
open Rsj_exec

type detail = {
  n_hi : int;  (** Exact |Jhi| computed from collected Rhi1 statistics. *)
  n_lo : int;  (** Exact |Jlo| counted while J* streams by. *)
  r_hi : int;  (** Samples contributed by the high-frequency side. *)
  r_lo : int;  (** Samples contributed by the low-frequency side. *)
}

val sample :
  Rsj_util.Prng.t ->
  metrics:Metrics.t ->
  r:int ->
  left:Tuple.t Stream0.t ->
  left_key:int ->
  right:Relation.t ->
  right_key:int ->
  histogram:Rsj_stats.Histogram.End_biased.t ->
  Tuple.t array * detail
(** WR sample of size [r] of R1 ⋈ R2 ([[||]] when empty), plus the
    partition bookkeeping for validation. One pass over R1, one scan of
    R2 to build the join hash (the same scan Naive-Sample performs), and
    intermediate join work per Theorem 8 instead of |J|. *)

open Rsj_relation
open Rsj_exec
module Frequency = Rsj_stats.Frequency

let sample rng ~metrics ~r ~left ~left_key ~right ~right_key ~right_stats =
  let open Metrics in
  let weight t1 =
    metrics.stats_lookups <- metrics.stats_lookups + 1;
    float_of_int (Frequency.frequency right_stats (Tuple.attr t1 left_key))
  in
  let s1 = Black_box.wr2 rng ~r ~weight left in
  let out =
    Internals.count_sample_scan rng metrics ~strategy:"Count_sample.sample" ~s1 ~left_key ~right
      ~right_key
      ~population:(fun v -> Frequency.frequency right_stats v)
  in
  metrics.output_tuples <- metrics.output_tuples + Array.length out;
  out

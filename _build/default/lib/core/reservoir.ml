open Rsj_util

module Wr = struct
  type 'a t = {
    r : int;
    mutable slots : 'a array;  (* length r once first element arrives *)
    mutable fed : int;
    mutable total : float;
  }

  let create ~r =
    if r < 0 then invalid_arg "Reservoir.Wr.create: r < 0";
    { r; slots = [||]; fed = 0; total = 0. }

  let feed rng t ~weight x =
    if weight < 0. then invalid_arg "Reservoir.Wr.feed: negative weight";
    if weight > 0. && t.r > 0 then begin
      t.fed <- t.fed + 1;
      t.total <- t.total +. weight;
      if Array.length t.slots = 0 then t.slots <- Array.make t.r x
      else begin
        let p = weight /. t.total in
        let flips = Dist.binomial rng ~n:t.r ~p in
        if flips > 0 then begin
          let slots = Prng.sample_distinct rng ~k:flips ~n:t.r in
          Array.iter (fun s -> t.slots.(s) <- x) slots
        end
      end
    end
    else if weight > 0. then begin
      (* r = 0: still track mass so callers can read totals. *)
      t.fed <- t.fed + 1;
      t.total <- t.total +. weight
    end

  let fed_count t = t.fed
  let total_weight t = t.total
  let contents t = Array.copy t.slots
end

module Unit = struct
  type 'a t = { mutable kept : 'a option; mutable fed : int }

  let create () = { kept = None; fed = 0 }

  let feed rng t x =
    t.fed <- t.fed + 1;
    if t.fed = 1 then t.kept <- Some x
    else if Prng.int rng t.fed = 0 then t.kept <- Some x

  let fed_count t = t.fed
  let get t = t.kept
end

module Wor = struct
  type 'a t = { r : int; mutable slots : 'a array; mutable filled : int; mutable fed : int }

  let create ~r =
    if r < 0 then invalid_arg "Reservoir.Wor.create: r < 0";
    { r; slots = [||]; filled = 0; fed = 0 }

  let feed rng t x =
    if t.r > 0 then begin
      t.fed <- t.fed + 1;
      if t.filled < t.r then begin
        if Array.length t.slots = 0 then t.slots <- Array.make t.r x;
        t.slots.(t.filled) <- x;
        t.filled <- t.filled + 1
      end
      else begin
        let j = Prng.int rng t.fed in
        if j < t.r then t.slots.(j) <- x
      end
    end
    else t.fed <- t.fed + 1

  let fed_count t = t.fed

  let contents t =
    if t.filled = 0 then [||]
    else if t.filled < t.r then Array.sub t.slots 0 t.filled
    else Array.copy t.slots
end

open Rsj_relation
open Rsj_exec
module End_biased = Rsj_stats.Histogram.End_biased
module Vtbl = Internals.Vtbl

let sample rng ~metrics ~r ~left ~left_key ~right ~right_key ~histogram =
  let open Metrics in
  (* Scan 1 of R2: hash only the low-frequency tuples (the high side
     never joins through the hash). *)
  let is_low v = Option.is_none (End_biased.frequency histogram v) in
  let tbl = Internals.build_join_hash ~keep:is_low metrics right ~right_key in
  (* Pass over R1: route by the histogram, as in Frequency-Partition. *)
  let s1_res = Reservoir.Wr.create ~r in
  let m1_hi : int ref Vtbl.t = Vtbl.create 64 in
  let jlo_res = Reservoir.Wr.create ~r in
  let n_lo = ref 0 in
  Stream0.iter
    (fun t1 ->
      let v = Tuple.attr t1 left_key in
      if Value.is_null v then ()
      else begin
        metrics.stats_lookups <- metrics.stats_lookups + 1;
        match End_biased.frequency histogram v with
        | Some m2v ->
            Reservoir.Wr.feed rng s1_res ~weight:(float_of_int m2v) t1;
            (match Vtbl.find_opt m1_hi v with
            | Some cell -> incr cell
            | None -> Vtbl.replace m1_hi v (ref 1))
        | None ->
            let matches = Internals.hash_matches tbl v in
            Array.iter
              (fun t2 ->
                metrics.join_output_tuples <- metrics.join_output_tuples + 1;
                incr n_lo;
                Reservoir.Wr.feed rng jlo_res ~weight:1. (Tuple.join t1 t2))
              matches
      end)
    left;
  let n_hi =
    Vtbl.fold
      (fun v m1v acc ->
        match End_biased.frequency histogram v with
        | Some m2v -> acc + (!m1v * m2v)
        | None -> acc)
      m1_hi 0
  in
  (* Scan 2 of R2: Count-Sample the high side (populations from the
     histogram; low values are absent from the S1 groups so the engine
     skips them). *)
  let s1 = Reservoir.Wr.contents s1_res in
  let hi_pool =
    Internals.count_sample_scan rng metrics ~strategy:"Hybrid_count.sample" ~s1 ~left_key ~right
      ~right_key
      ~population:(fun v ->
        match End_biased.frequency histogram v with Some m2v -> m2v | None -> 0)
  in
  let lo_pool = Reservoir.Wr.contents jlo_res in
  let out, r_hi, r_lo = Internals.binomial_combine rng ~r ~n_hi ~n_lo:!n_lo ~hi_pool ~lo_pool in
  metrics.output_tuples <- metrics.output_tuples + Array.length out;
  (out, { Frequency_partition.n_hi; n_lo = !n_lo; r_hi; r_lo })

open Rsj_relation
open Rsj_exec
module Hash_index = Rsj_index.Hash_index

let sample rng ~metrics ~r ~left ~left_key ~right_index ?m_bound
    ?(max_iterations = 500_000_000) () =
  if r > 0 && Relation.cardinality left = 0 then
    invalid_arg "Olken_sample.sample: empty R1 with r > 0";
  let m =
    match m_bound with
    | Some m ->
        if m < Hash_index.max_multiplicity right_index then
          invalid_arg "Olken_sample.sample: m_bound below the true maximum multiplicity";
        m
    | None -> Hash_index.max_multiplicity right_index
  in
  if r > 0 && m = 0 then failwith "Olken_sample.sample: R2 has no joinable tuples";
  let out = Array.make (max r 0) [||] in
  let produced = ref 0 in
  let iterations = ref 0 in
  let open Metrics in
  while !produced < r do
    incr iterations;
    if !iterations > max_iterations then
      failwith "Olken_sample.sample: iteration budget exhausted (join empty or near-empty?)";
    metrics.random_accesses <- metrics.random_accesses + 1;
    let t1 = Relation.random_row left rng in
    let v = Tuple.attr t1 left_key in
    metrics.index_probes <- metrics.index_probes + 1;
    match Hash_index.random_match right_index rng v with
    | None -> metrics.rejected_samples <- metrics.rejected_samples + 1
    | Some t2 ->
        (* The acceptance probability reads m2(v) from the statistics
           (the paper's Olken assumes full statistics for R2), not
           through another index traversal. *)
        let m2v = Hash_index.multiplicity right_index v in
        metrics.stats_lookups <- metrics.stats_lookups + 1;
        let accept_p = float_of_int m2v /. float_of_int m in
        if Rsj_util.Prng.bernoulli rng accept_p then begin
          metrics.join_output_tuples <- metrics.join_output_tuples + 1;
          out.(!produced) <- Tuple.join t1 t2;
          incr produced
        end
        else metrics.rejected_samples <- metrics.rejected_samples + 1
  done;
  metrics.output_tuples <- metrics.output_tuples + r;
  out

(** Strategy Index-Sample (paper §6.4) — the Frequency-Partition variant
    for when an index exists (or is quickly built) on the
    high-frequency part of R2.

    Identical partition and combine steps to
    {!Frequency_partition.sample}, but the high-frequency side does not
    compute S1 ⋈ R2hi: each sampled s_i is joined with a single random
    matching tuple fetched through the index, as in Stream-Sample.

    Theorem 9: WR sample of J with expected intermediate fraction
    α = (r + Σ_lo m1 m2) / Σ m1 m2. *)

open Rsj_relation
open Rsj_exec

val sample :
  Rsj_util.Prng.t ->
  metrics:Metrics.t ->
  r:int ->
  left:Tuple.t Stream0.t ->
  left_key:int ->
  right_index:Rsj_index.Hash_index.t ->
  histogram:Rsj_stats.Histogram.End_biased.t ->
  Tuple.t array * Frequency_partition.detail
(** WR sample of size [r]. The low-frequency side joins through the
    index (index nested loops) rather than a hash build, so R2 is never
    scanned by this strategy at all — the work is Σ_lo m1·m2 probes
    plus r high-side probes. *)

open Rsj_relation
open Rsj_exec

type step = { left_col : int; right : Relation.t; right_key : int }
type t = { base : Relation.t; steps : step list }

let output_schema t =
  List.fold_left
    (fun acc step -> Schema.concat acc (Relation.schema step.right))
    (Relation.schema t.base) t.steps

let validate t =
  let rec go acc_arity = function
    | [] -> Ok ()
    | step :: rest ->
        if step.left_col < 0 || step.left_col >= acc_arity then
          Error
            (Printf.sprintf "join step: left column %d out of range for accumulated arity %d"
               step.left_col acc_arity)
        else if step.right_key < 0 || step.right_key >= Schema.arity (Relation.schema step.right)
        then
          Error
            (Printf.sprintf "join step: right key %d out of range for %s" step.right_key
               (Relation.name step.right))
        else go (acc_arity + Schema.arity (Relation.schema step.right)) rest
  in
  go (Schema.arity (Relation.schema t.base)) t.steps

let to_plan t =
  List.fold_left
    (fun acc step ->
      Plan.Join
        {
          Plan.algorithm = Plan.Hash;
          left = acc;
          right = Plan.Scan step.right;
          left_key = step.left_col;
          right_key = step.right_key;
        })
    (Plan.Scan t.base) t.steps

let cardinality t = Plan.count (to_plan t)

let naive_sample rng ~metrics ~r t =
  let out = Black_box.u2 rng ~r (Plan.run ~metrics (to_plan t)) in
  out

(* Split the tree into (prefix, last step); None when there are no joins. *)
let split_last t =
  match List.rev t.steps with
  | [] -> None
  | last :: rev_prefix -> Some ({ t with steps = List.rev rev_prefix }, last)

let pushdown_sample rng ~metrics ~r t =
  match split_last t with
  | None -> Black_box.u2 rng ~r (Plan.run ~metrics (Scan t.base))
  | Some (prefix, last) ->
      (* The last operand is a base relation: its index and statistics
         can pre-exist (built here, outside the strategy's work
         model, matching the paper's setup). *)
      let right_index = Rsj_index.Hash_index.build last.right ~key:last.right_key in
      let right_stats = Rsj_stats.Frequency.of_relation last.right ~key:last.right_key in
      let prefix_stream = Plan.run ~metrics (to_plan prefix) in
      Stream_sample.sample rng ~metrics ~r ~left:prefix_stream ~left_key:last.left_col
        ~right_index ~right_stats ()

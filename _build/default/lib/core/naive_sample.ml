open Rsj_relation
open Rsj_exec

let join_stream (metrics : Metrics.t) ~left ~right ~left_key ~right_key =
  let tbl = Internals.build_join_hash metrics right ~right_key in
  Stream0.concat_map
    (fun t1 ->
      let matches = Internals.hash_matches tbl (Tuple.attr t1 left_key) in
      Stream0.map
        (fun t2 ->
          metrics.join_output_tuples <- metrics.join_output_tuples + 1;
          Tuple.join t1 t2)
        (Stream0.of_array matches))
    left

let sample rng ~metrics ~r ~left ~right ~left_key ~right_key =
  let j = join_stream metrics ~left ~right ~left_key ~right_key in
  let out = Black_box.u2 rng ~r j in
  metrics.output_tuples <- metrics.output_tuples + Array.length out;
  out

let sample_known_n rng ~metrics ~r ~n ~left ~right ~left_key ~right_key =
  let j = join_stream metrics ~left ~right ~left_key ~right_key in
  let out = Stream0.to_array (Black_box.u1 rng ~n ~r j) in
  metrics.output_tuples <- metrics.output_tuples + Array.length out;
  out

let sample_cf rng ~metrics ~f ~left ~right ~left_key ~right_key =
  let j = join_stream metrics ~left ~right ~left_key ~right_key in
  let out = Stream0.to_array (Black_box.coin_flip rng ~f j) in
  metrics.output_tuples <- metrics.output_tuples + Array.length out;
  out

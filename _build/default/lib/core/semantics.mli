(** The three semantics of [sample(R, f)] (paper §3).

    The operation "produce a uniform random sample that is an f-fraction
    of R" admits three distinct readings; every sampler and every join
    strategy in this library states which one it implements. *)

type t =
  | WR  (** With replacement: fn independent uniform draws; the sample
            is a bag. The paper develops its join strategies for WR and
            converts afterwards. *)
  | WoR  (** Without replacement: fn distinct tuples, each successive
             draw uniform over the remainder; the sample is a set. *)
  | CF  (** Independent coin flips: each tuple included independently
            with probability f; the sample size is Binomial(n, f). *)

val to_string : t -> string
val pp : Format.formatter -> t -> unit

val all : t list

val convertible : from:t -> into:t -> bool
(** Which conversions are possible given only the sample (paper §3
    observations 1–4): WR→WoR and CF→WoR always; WoR→WR with correct
    duplication probabilities; {b nothing} converts into CF, because CF
    assigns non-zero probability to sampling the entire relation, which
    no proper subset can realize. *)

val expected_size : t -> n:int -> f:float -> float
(** Expected sample cardinality (counting duplicates for WR). *)

(** Online (anytime) aggregation over incremental join samples.

    The paper distinguishes its problem from Hellerstein, Haas & Wang's
    online aggregation, but the two compose naturally: any sampler that
    can produce {e one more} independent uniform join tuple on demand —
    {!Chain_sample.draw}, an Olken iteration, or batched Stream-Sample —
    drives an estimator that refines its confidence interval until a
    target precision is reached. This module is that driver.

    Estimators follow {!Aqp}: iid WR draws, CLT intervals. *)

open Rsj_relation

type target =
  | Draws of int  (** Stop after a fixed number of draws. *)
  | Relative_ci of float
      (** Stop when the 95% CI half-width falls below this fraction of
          the current estimate (and at least 30 draws were made). *)
  | Absolute_ci of float  (** Stop when the half-width falls below this value. *)

type progress = {
  draws : int;
  estimate : Aqp.estimate;  (** Current estimate with CI. *)
}

val estimate_mean :
  draw:(unit -> Tuple.t option) ->
  value:(Tuple.t -> float) ->
  ?on_progress:(progress -> unit) ->
  ?max_draws:int ->
  target ->
  progress
(** Estimate E[value(t)] for a uniform join tuple t. Draws until the
    [target] is met or [max_draws] (default 1_000_000) is reached, or
    the sampler returns [None] (empty join: the estimate is 0 draws /
    NaN). [on_progress] fires every draw-doubling (1, 2, 4, ...). *)

val estimate_sum :
  draw:(unit -> Tuple.t option) ->
  value:(Tuple.t -> float) ->
  join_size:int ->
  ?on_progress:(progress -> unit) ->
  ?max_draws:int ->
  target ->
  progress
(** Estimate Σ value over the join: join_size · mean. The CI scales
    accordingly; [Relative_ci] applies to the scaled estimate. *)

val estimate_count_where :
  draw:(unit -> Tuple.t option) ->
  pred:(Tuple.t -> bool) ->
  join_size:int ->
  ?on_progress:(progress -> unit) ->
  ?max_draws:int ->
  target ->
  progress
(** Estimate |{t : pred t}| as join_size · P(pred). *)

(** Approximate query answering over join samples — the paper's §1
    motivation ("OLAP servers ... can significantly benefit from the
    ability to present to the user an approximate answer computed from
    a sample of the result of the query").

    All estimators take a WR sample of the join (what the strategies
    produce) together with the exact join size n = |J| (known to every
    Case B/C strategy from the statistics; Σ_v m1(v)·m2(v)). Standard
    errors use the CLT over the iid WR draws; confidence intervals are
    two-sided normal intervals. *)

open Rsj_relation

type estimate = {
  value : float;  (** Point estimate. *)
  stderr : float;  (** Estimated standard error (0 when undefined). *)
  ci_low : float;  (** value - z·stderr. *)
  ci_high : float;  (** value + z·stderr. *)
}

val confidence_z : float
(** The z multiplier used for intervals: 1.96 (95%). *)

val count_where : sample:Tuple.t array -> n:int -> pred:(Tuple.t -> bool) -> estimate
(** Estimates |{t in J : pred t}| as n·(fraction of sample matching). *)

val sum : sample:Tuple.t array -> n:int -> col:int -> estimate
(** Estimates Σ over J of column [col] (numeric; NULLs contribute 0)
    as n · (sample mean). *)

val avg : sample:Tuple.t array -> col:int -> estimate
(** Estimates the mean of column [col] over J directly from the sample
    (no n needed). NULLs are excluded from numerator and denominator. *)

val sum_where :
  sample:Tuple.t array -> n:int -> col:int -> pred:(Tuple.t -> bool) -> estimate
(** Σ of [col] over tuples satisfying [pred]. *)

val group_count : sample:Tuple.t array -> n:int -> group_col:int -> (Value.t * estimate) list
(** Per-group COUNT estimates, sorted descending by estimate. Groups
    absent from the sample are (necessarily) absent from the output. *)

val group_sum :
  sample:Tuple.t array -> n:int -> group_col:int -> value_col:int -> (Value.t * estimate) list
(** Per-group SUM estimates. *)

open Rsj_relation
open Rsj_util

let wr_positions rng ~n ~r =
  if r < 0 then invalid_arg "Block_sample.wr_positions: r < 0";
  if r > 0 && n <= 0 then invalid_arg "Block_sample.wr_positions: empty relation";
  let out = Array.init r (fun _ -> Prng.int rng n) in
  Array.sort compare out;
  out

let fetch_sorted paged positions = Array.map (Paged.fetch paged) positions

let u1_paged rng ~r paged =
  let n = Paged.cardinality paged in
  if r > 0 && n = 0 then [||]
  else fetch_sorted paged (wr_positions rng ~n ~r)

let wor_skip rng ~n ~r paged =
  if n <> Paged.cardinality paged then
    invalid_arg "Block_sample.wor_skip: declared n differs from the relation";
  let positions = Prng.sample_distinct rng ~k:r ~n in
  Array.sort compare positions;
  fetch_sorted paged positions

let scan_sample rng ~r paged = Black_box.u2 rng ~r (Paged.scan paged)

open Rsj_relation

type estimate = { value : float; stderr : float; ci_low : float; ci_high : float }

let confidence_z = 1.96

let make_estimate value stderr =
  { value; stderr; ci_low = value -. (confidence_z *. stderr); ci_high = value +. (confidence_z *. stderr) }

(* Scale up a per-draw statistic: estimate n * mean(xs), with
   stderr n * sd(xs)/sqrt(r). *)
let scaled_mean ~n xs =
  let r = Array.length xs in
  if r = 0 then make_estimate 0. 0.
  else begin
    let nf = float_of_int n in
    let mean = Rsj_util.Stats_math.mean xs in
    let stderr =
      if r < 2 then 0.
      else nf *. Rsj_util.Stats_math.stddev xs /. sqrt (float_of_int r)
    in
    make_estimate (nf *. mean) stderr
  end

let numeric_or_zero v = if Value.is_null v then 0. else Value.to_float_exn v

let count_where ~sample ~n ~pred =
  let xs = Array.map (fun t -> if pred t then 1. else 0.) sample in
  scaled_mean ~n xs

let sum ~sample ~n ~col =
  let xs = Array.map (fun t -> numeric_or_zero (Tuple.get t col)) sample in
  scaled_mean ~n xs

let sum_where ~sample ~n ~col ~pred =
  let xs =
    Array.map (fun t -> if pred t then numeric_or_zero (Tuple.get t col) else 0.) sample
  in
  scaled_mean ~n xs

let avg ~sample ~col =
  let xs =
    Array.to_list sample
    |> List.filter_map (fun t ->
           let v = Tuple.get t col in
           if Value.is_null v then None else Some (Value.to_float_exn v))
    |> Array.of_list
  in
  let r = Array.length xs in
  if r = 0 then make_estimate nan nan
  else begin
    let mean = Rsj_util.Stats_math.mean xs in
    let stderr =
      if r < 2 then 0. else Rsj_util.Stats_math.stddev xs /. sqrt (float_of_int r)
    in
    make_estimate mean stderr
  end

let group_estimates ~sample ~n ~group_col ~value_of =
  let module Vtbl = Hashtbl in
  let groups : (Value.t, float list ref) Vtbl.t = Vtbl.create 64 in
  Array.iter
    (fun t ->
      let g = Tuple.get t group_col in
      let x = value_of t in
      match Vtbl.find_opt groups g with
      | Some cell -> cell := x :: !cell
      | None -> Vtbl.replace groups g (ref [ x ]))
    sample;
  let r = Array.length sample in
  let out =
    Vtbl.fold
      (fun g cell acc ->
        (* Per-group statistic over ALL r draws: zero outside the
           group. Rebuild the full vector implicitly: mean and variance
           over r values of which only the group's entries are
           non-zero. *)
        let xs_in = !cell in
        let sum_in = List.fold_left ( +. ) 0. xs_in in
        let sumsq_in = List.fold_left (fun a x -> a +. (x *. x)) 0. xs_in in
        let rf = float_of_int r in
        let mean = sum_in /. rf in
        let var =
          if r < 2 then 0. else (sumsq_in -. (rf *. mean *. mean)) /. (rf -. 1.)
        in
        let nf = float_of_int n in
        let stderr = if var <= 0. then 0. else nf *. sqrt var /. sqrt rf in
        (g, make_estimate (nf *. mean) stderr) :: acc)
      groups []
  in
  List.sort (fun (_, a) (_, b) -> Float.compare b.value a.value) out

let group_count ~sample ~n ~group_col =
  group_estimates ~sample ~n ~group_col ~value_of:(fun _ -> 1.)

let group_sum ~sample ~n ~group_col ~value_col =
  group_estimates ~sample ~n ~group_col ~value_of:(fun t ->
      numeric_or_zero (Tuple.get t value_col))

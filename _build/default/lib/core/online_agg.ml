
type target = Draws of int | Relative_ci of float | Absolute_ci of float

type progress = { draws : int; estimate : Aqp.estimate }

(* Welford's online mean/variance: numerically stable single pass. *)
type welford = { mutable n : int; mutable mean : float; mutable m2 : float }

let welford_create () = { n = 0; mean = 0.; m2 = 0. }

let welford_push w x =
  w.n <- w.n + 1;
  let delta = x -. w.mean in
  w.mean <- w.mean +. (delta /. float_of_int w.n);
  w.m2 <- w.m2 +. (delta *. (x -. w.mean))

let welford_stderr w =
  if w.n < 2 then 0.
  else sqrt (w.m2 /. float_of_int (w.n - 1)) /. sqrt (float_of_int w.n)

let estimate_of_welford ~scale w =
  let value = scale *. w.mean in
  let stderr = scale *. welford_stderr w in
  {
    Aqp.value;
    stderr;
    ci_low = value -. (Aqp.confidence_z *. stderr);
    ci_high = value +. (Aqp.confidence_z *. stderr);
  }

let min_draws_for_clt = 30

let satisfied target w ~scale =
  match target with
  | Draws k -> w.n >= k
  | Relative_ci frac ->
      w.n >= min_draws_for_clt
      &&
      let e = estimate_of_welford ~scale w in
      let half = Aqp.confidence_z *. e.Aqp.stderr in
      Float.abs e.Aqp.value > 0. && half /. Float.abs e.Aqp.value <= frac
  | Absolute_ci width ->
      w.n >= min_draws_for_clt
      &&
      let e = estimate_of_welford ~scale w in
      Aqp.confidence_z *. e.Aqp.stderr <= width

let run ~draw ~value ~scale ?(on_progress = fun _ -> ()) ?(max_draws = 1_000_000) target =
  let w = welford_create () in
  let next_report = ref 1 in
  let exhausted = ref false in
  while (not !exhausted) && (not (satisfied target w ~scale)) && w.n < max_draws do
    match draw () with
    | None -> exhausted := true
    | Some t ->
        welford_push w (value t);
        if w.n = !next_report then begin
          on_progress { draws = w.n; estimate = estimate_of_welford ~scale w };
          next_report := 2 * !next_report
        end
  done;
  { draws = w.n; estimate = estimate_of_welford ~scale w }

let estimate_mean ~draw ~value ?on_progress ?max_draws target =
  run ~draw ~value ~scale:1. ?on_progress ?max_draws target

let estimate_sum ~draw ~value ~join_size ?on_progress ?max_draws target =
  run ~draw ~value ~scale:(float_of_int join_size) ?on_progress ?max_draws target

let estimate_count_where ~draw ~pred ~join_size ?on_progress ?max_draws target =
  run ~draw
    ~value:(fun t -> if pred t then 1. else 0.)
    ~scale:(float_of_int join_size) ?on_progress ?max_draws target

(** Strategy Group-Sample (paper §6.2) — Case B with statistics only.

    Step 1: weighted WR sample S1 = (s1, ..., sr) from streaming R1,
    weights m2(t.A) read from R2's frequency statistics. Step 2: join S1
    with R2, keeping the output {e grouped by the S1 element} that
    produced it. Step 3: from each group pick exactly one tuple
    uniformly at random (one unit reservoir per group, so the
    intermediate join is streamed, never materialized).

    Theorem 7: the result is a WR sample of J and the intermediate join
    computed has expected size α·|J| with
    α = r · Σ_v m1(v)m2(v)² / (Σ_v m1(v)m2(v))².
    No index on R2 is needed — only statistics — at the price of one
    full scan of R2 for the S1 ⋈ R2 join. *)

open Rsj_relation
open Rsj_exec

val sample :
  Rsj_util.Prng.t ->
  metrics:Metrics.t ->
  r:int ->
  left:Tuple.t Stream0.t ->
  left_key:int ->
  right:Relation.t ->
  right_key:int ->
  right_stats:Rsj_stats.Frequency.t ->
  Tuple.t array
(** WR sample of size [r] ([[||]] on an empty join). Raises [Failure]
    if a sampled S1 tuple finds no matches in R2, which exact statistics
    make impossible (stale-statistics failure injection exercises it). *)

(** Exact WR sampling over a whole join chain without computing any
    join — the full push-down the paper poses as future work in §7.2
    ("we will have to sample from R1 using statistics for both R2 and
    R3. In principle, this can be done, since the operand relations are
    all base relations and their statistics can be precomputed").

    For a chain R1 ⋈ R2 ⋈ ... ⋈ Rk (each join on its own attribute
    pair), propagate weights right to left:

    - w_k(t) = 1 for t in Rk;
    - w_i(t) = Σ over matching t' in R(i+1) of w_(i+1)(t'), aggregated
      per join value so each pass is one scan;
    - |J| = Σ over t in R1 of w_1(t).

    One output tuple is drawn by walking left to right, choosing the
    next tuple with probability proportional to its weight among the
    matches — a weighted random walk whose acceptance probability is 1
    (the same idea later published as Wander Join with exact weights).
    Every draw is an independent uniform tuple of the chain join, so r
    draws form a WR sample. Preparation costs one scan of every
    relation; each sample costs k categorical draws. *)

open Rsj_relation
open Rsj_exec

type spec = {
  relations : Relation.t array;  (** R1 ... Rk, k >= 1. *)
  join_keys : (int * int) array;
      (** [join_keys.(i) = (a, b)]: R(i+1).a = R(i+2).b in 0-based
          array terms — column [a] of [relations.(i)] equals column [b]
          of [relations.(i+1)]. Length k-1. *)
}

type t
(** Prepared sampler (weight tables and per-value alias structures). *)

val prepare : ?metrics:Metrics.t -> spec -> t
(** Validates the spec and builds the weight tables. Raises
    [Invalid_argument] on shape errors. *)

val join_size : t -> float
(** Exact |J| as the total root weight (float: chains can overflow
    int range; exact up to float precision). *)

val draw : t -> Rsj_util.Prng.t -> ?metrics:Metrics.t -> unit -> Tuple.t option
(** One uniform random tuple of the chain join (concatenated row), or
    [None] when the join is empty. *)

val sample : t -> Rsj_util.Prng.t -> ?metrics:Metrics.t -> r:int -> unit -> Tuple.t array
(** [r] independent draws (WR). [[||]] when the join is empty. *)

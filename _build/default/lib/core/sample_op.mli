(** Sampling operators as query-plan nodes.

    The paper's implementation splices its black boxes into SQL Server
    execution trees as operators ("we implemented each of these
    black-boxes as operators ... adding an operator to the query
    execution tree only requires creating a derived class ... and
    implementing Open, Close, and GetRow", §8). This module is the
    analogous integration for {!Rsj_exec.Plan}: each function wraps a
    black box as a [Plan.Transform] node, so sampling can be placed
    anywhere in an operator tree — e.g. the Naive-Sample plan is
    [u1 ~n ~r (Join ...)], and Stream-Sample's weighted filter is
    [wr2 ~r ~weight (Scan r1)] feeding a join.

    Each node draws its randomness from a generator split off the one
    supplied, so rebuilding the same plan yields the same sample. *)

open Rsj_relation
open Rsj_exec

val u1 : Rsj_util.Prng.t -> n:int -> r:int -> Plan.t -> Plan.t
(** Online unweighted WR sampling of the child's output, which must
    produce exactly [n] rows (e.g. known from statistics). *)

val u2 : Rsj_util.Prng.t -> r:int -> Plan.t -> Plan.t
(** Blocking unweighted WR reservoir over the child's output ([n] not
    needed). Output order is the reservoir's slot order. *)

val wr1 :
  Rsj_util.Prng.t -> total_weight:float -> r:int -> weight:(Tuple.t -> float) -> Plan.t -> Plan.t
(** Online weighted WR sampling (total weight known in advance). *)

val wr2 : Rsj_util.Prng.t -> r:int -> weight:(Tuple.t -> float) -> Plan.t -> Plan.t
(** Blocking weighted WR reservoir. *)

val coin_flip : Rsj_util.Prng.t -> f:float -> Plan.t -> Plan.t
(** CF semantics: keep each row independently with probability [f]. *)

val wor : Rsj_util.Prng.t -> n:int -> r:int -> Plan.t -> Plan.t
(** Online WoR selection sampling; the child must produce exactly [n]
    rows and [r <= n]. *)

val naive_sample_plan :
  Rsj_util.Prng.t -> r:int -> left:Plan.t -> right:Plan.t -> left_key:int -> right_key:int -> Plan.t
(** The full Naive-Sample execution tree: hash join under a U2
    reservoir — the paper's "added the U1 operator as the root of the
    execution tree" construction, reservoir variant. *)

val stream_sample_plan :
  Rsj_util.Prng.t ->
  r:int ->
  left:Plan.t ->
  left_key:int ->
  right_index:Rsj_index.Hash_index.t ->
  right_stats:Rsj_stats.Frequency.t ->
  Plan.t
(** The Stream-Sample execution tree: a WR2 operator inserted between
    the outer scan and the join ("we inserted the WR1 operator as a
    child of the join operator"), followed by a modified index join
    that emits exactly one random match per outer row. *)

open Rsj_util

let wr_to_wor rng ?(key = Hashtbl.hash) ~r sample =
  let order = Array.init (Array.length sample) Fun.id in
  Prng.shuffle_in_place rng order;
  let seen = Hashtbl.create (2 * r) in
  let out = ref [] in
  let count = ref 0 in
  Array.iter
    (fun idx ->
      if !count < r then begin
        let k = key sample.(idx) in
        if not (Hashtbl.mem seen k) then begin
          Hashtbl.replace seen k ();
          out := sample.(idx) :: !out;
          incr count
        end
      end)
    order;
  Array.of_list (List.rev !out)

let cf_to_wor rng ~r sample =
  let n = Array.length sample in
  if n < r then None
  else begin
    let idxs = Prng.sample_distinct rng ~k:r ~n in
    Some (Array.map (fun i -> sample.(i)) idxs)
  end

let cf_oversample_fraction ~f ~n ?(failure_prob = 1e-6) () =
  if f < 0. || f > 1. then invalid_arg "Convert.cf_oversample_fraction: f outside [0,1]";
  if n <= 0 then invalid_arg "Convert.cf_oversample_fraction: n <= 0";
  if f = 0. then 0.
  else begin
    (* Multiplicative Chernoff lower tail: a CF(f') sample of n tuples
       falls below (1 - eps) f' n with probability <= exp(-eps^2 f' n / 2).
       Choose eps so that (1 - eps) f' = f and the bound is failure_prob;
       solving exactly is transcendental, so iterate a few times. *)
    let nf = float_of_int n in
    let target = -.log failure_prob in
    let fprime = ref f in
    for _ = 1 to 32 do
      let eps = sqrt (2. *. target /. (nf *. !fprime)) in
      fprime := f /. Float.max 1e-9 (1. -. Float.min 0.999 eps)
    done;
    Float.min 1. !fprime
  end

let wor_to_wr rng ~r sample =
  let n = Array.length sample in
  if n = 0 then
    if r = 0 then [||] else invalid_arg "Convert.wor_to_wr: empty source with r > 0"
  else Array.init r (fun _ -> sample.(Prng.int rng n))

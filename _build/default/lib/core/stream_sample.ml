open Rsj_relation
open Rsj_exec
module Hash_index = Rsj_index.Hash_index
module Frequency = Rsj_stats.Frequency

let sample rng ~metrics ~r ~left ~left_key ~right_index ?right_stats ?total_weight () =
  let open Metrics in
  let weight t1 =
    let v = Tuple.attr t1 left_key in
    match right_stats with
    | Some stats ->
        metrics.stats_lookups <- metrics.stats_lookups + 1;
        float_of_int (Frequency.frequency stats v)
    | None ->
        metrics.index_probes <- metrics.index_probes + 1;
        float_of_int (Hash_index.multiplicity right_index v)
  in
  let s1 =
    match total_weight with
    | Some w -> Stream0.to_array (Black_box.wr1 rng ~total_weight:w ~r ~weight left)
    | None -> Black_box.wr2 rng ~r ~weight left
  in
  let out =
    Array.map
      (fun t1 ->
        let v = Tuple.attr t1 left_key in
        metrics.index_probes <- metrics.index_probes + 1;
        match Hash_index.random_match right_index rng v with
        | Some t2 ->
            metrics.join_output_tuples <- metrics.join_output_tuples + 1;
            Tuple.join t1 t2
        | None ->
            (* A sampled tuple always has positive weight, i.e. at least
               one match — reachable only with stale statistics. *)
            failwith
              "Stream_sample.sample: sampled tuple has no match in R2 (stale statistics?)")
      s1
  in
  metrics.output_tuples <- metrics.output_tuples + Array.length out;
  out

type t = WR | WoR | CF

let to_string = function
  | WR -> "with-replacement"
  | WoR -> "without-replacement"
  | CF -> "coin-flip"

let pp ppf t = Format.pp_print_string ppf (to_string t)
let all = [ WR; WoR; CF ]

let convertible ~from ~into =
  match (from, into) with
  | a, b when a = b -> true
  | (WR | WoR | CF), CF -> false
  | WR, WoR | CF, WoR | WoR, WR | CF, WR -> true
  | WR, WR | WoR, WoR -> true

let expected_size _ ~n ~f = float_of_int n *. f

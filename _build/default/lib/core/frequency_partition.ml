open Rsj_relation
open Rsj_exec
module End_biased = Rsj_stats.Histogram.End_biased
module Vtbl = Internals.Vtbl

type detail = { n_hi : int; n_lo : int; r_hi : int; r_lo : int }

let sample rng ~metrics ~r ~left ~left_key ~right ~right_key ~histogram =
  let open Metrics in
  (* The join method underneath is a hash join on R2, exactly as in
     Naive-Sample — the saving comes from probing it with S1 instead of
     all of Rhi1. *)
  let tbl = Internals.build_join_hash metrics right ~right_key in
  (* Single pass over R1 (step 2): low-frequency tuples flow straight
     into the Jlo side of the join; high-frequency tuples are filtered
     through the weighted reservoir, collecting Rhi1 frequency
     statistics on the way. *)
  let s1_res = Reservoir.Wr.create ~r in
  let m1_hi : int ref Vtbl.t = Vtbl.create 64 in
  let jlo_res = Reservoir.Wr.create ~r in
  let n_lo = ref 0 in
  Stream0.iter
    (fun t1 ->
      let v = Tuple.attr t1 left_key in
      if Value.is_null v then ()
      else begin
        metrics.stats_lookups <- metrics.stats_lookups + 1;
        match End_biased.frequency histogram v with
        | Some m2v ->
            (* High-frequency side: weight by m2(v) from the histogram. *)
            Reservoir.Wr.feed rng s1_res ~weight:(float_of_int m2v) t1;
            (match Vtbl.find_opt m1_hi v with
            | Some cell -> incr cell
            | None -> Vtbl.replace m1_hi v (ref 1))
        | None ->
            (* Low-frequency side: Naive — join immediately, stream the
               output through the unweighted WR reservoir (U2). *)
            let matches = Internals.hash_matches tbl v in
            Array.iter
              (fun t2 ->
                metrics.join_output_tuples <- metrics.join_output_tuples + 1;
                incr n_lo;
                Reservoir.Wr.feed rng jlo_res ~weight:1. (Tuple.join t1 t2))
              matches
      end)
    left;
  (* Exact |Jhi| from the collected Rhi1 statistics and the histogram. *)
  let n_hi =
    Vtbl.fold
      (fun v m1v acc ->
        match End_biased.frequency histogram v with
        | Some m2v -> acc + (!m1v * m2v)
        | None -> acc)
      m1_hi 0
  in
  (* Group-Sample the high side: join S1 with R2hi through the same
     hash table, one uniform pick per S1 slot (step 4). The counter
     charges the full group size — the S1 ⋈ R2hi intermediate the
     paper's strategy computes, i.e. exactly Theorem 8's alpha·|J| —
     although this implementation amortizes group enumeration through
     the shared hash bucket, so wall-clock scales with r while the
     work model reports the paper-faithful intermediate. The benches
     report both. *)
  let s1 = Reservoir.Wr.contents s1_res in
  let hi_pool =
    Array.map
      (fun t1 ->
        let v = Tuple.attr t1 left_key in
        let matches = Internals.hash_matches tbl v in
        if Array.length matches = 0 then
          failwith
            "Frequency_partition.sample: sampled hi tuple has no match in R2 (stale histogram?)"
        else begin
          metrics.join_output_tuples <- metrics.join_output_tuples + Array.length matches;
          Tuple.join t1 (Rsj_util.Prng.pick rng matches)
        end)
      s1
  in
  let lo_pool = Reservoir.Wr.contents jlo_res in
  let out, r_hi, r_lo = Internals.binomial_combine rng ~r ~n_hi ~n_lo:!n_lo ~hi_pool ~lo_pool in
  metrics.output_tuples <- metrics.output_tuples + Array.length out;
  (out, { n_hi; n_lo = !n_lo; r_hi; r_lo })

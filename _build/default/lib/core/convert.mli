(** Conversions between sampling semantics (paper §3, observations 1–3).

    Observation 4 — that no WR/WoR sample can be turned into a CF sample
    — is a non-theorem-prover's impossibility: there is deliberately no
    [*_to_cf] function here; {!Semantics.convertible} documents it. *)

open Rsj_util

val wr_to_wor : Prng.t -> ?key:('a -> int) -> r:int -> 'a array -> 'a array
(** Observation 1: filter a WR sample down to distinct elements by
    rejecting repeats, keeping the first occurrence of each (scanning in
    random order so no position is favoured), then truncate to at most
    [r]. Distinctness is by [key] (default structural hash via
    [Hashtbl.hash]). The result may be shorter than [r] when the WR
    sample does not contain [r] distinct elements — callers top up by
    drawing more WR samples, as the paper's "minor loss in efficiency"
    remark implies. *)

val cf_to_wor : Prng.t -> r:int -> 'a array -> 'a array option
(** Observation 2: a CF sample taken at an inflated fraction f' > f is
    cut down to exactly [r] elements by uniform WoR subsampling. [None]
    when the CF sample has fewer than [r] elements (the Chernoff-bound
    failure case: the caller must resample at a larger f'). *)

val cf_oversample_fraction : f:float -> n:int -> ?failure_prob:float -> unit -> float
(** The inflated fraction f' the paper's Chernoff argument prescribes so
    that a CF pass of fraction f' yields at least f·n elements except
    with probability [failure_prob] (default 1e-6): solves
    f' = f + delta with delta from the multiplicative Chernoff lower
    tail. Clamped to 1. *)

val wor_to_wr : Prng.t -> r:int -> 'a array -> 'a array
(** Observation 3: draw [r] elements uniformly {e with} replacement
    from a WoR sample. When the WoR sample is a full f-fraction of R,
    each output position is marginally uniform over R; the caveat that
    draws are only exchangeable (not independent) across positions is
    inherent to the construction and documented in the test-suite. *)

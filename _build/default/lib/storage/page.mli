(** Slotted pages: fixed-size byte blocks holding variable-length tuples.

    Layout (little-endian):
    {v
    offset 0   u16  tuple count
    offset 2   u16  free-space offset (first unused byte)
    offset 4-  tuple data, growing upward
    end        slot directory: one u16 per tuple, growing downward,
               slot i at (page_size - 2*(i+1))
    v}

    Tuple encoding: per value a tag byte (0 NULL, 1 int, 2 float,
    3 string) followed by the payload (int64 LE / float64 LE bits /
    u32 length + bytes); a tuple is a u16 arity followed by its values.

    Pages are the unit the {!Buffer_pool} caches and {!Heap_file} reads
    and writes; all bounds are checked and decoding errors raise
    [Failure] with a description (corrupt-page detection). *)

open Rsj_relation

type t
(** A mutable in-memory page image. *)

val create : page_size:int -> t
(** Fresh empty page. [page_size] must be at least 64 bytes. *)

val page_size : t -> int
val tuple_count : t -> int

val free_space : t -> int
(** Bytes available for one more tuple (data + its slot entry). *)

val add_tuple : t -> Tuple.t -> bool
(** Append a tuple; [false] when it does not fit. Raises
    [Invalid_argument] if the tuple alone exceeds what an empty page of
    this size could hold. *)

val get_tuple : t -> int -> Tuple.t
(** Read tuple [i]; raises [Invalid_argument] out of range, [Failure]
    on a corrupt image. *)

val iter : t -> (Tuple.t -> unit) -> unit

val encoded_size : Tuple.t -> int
(** Bytes the tuple occupies (excluding its slot entry). *)

val to_bytes : t -> bytes
(** The raw image (shared — do not mutate while the page is in use). *)

val of_bytes : bytes -> t
(** Adopt a raw image (validates the header). *)

lib/storage/heap_file.ml: Array Buffer_pool Bytes Filename Int32 Int64 Page Printf Relation Rsj_relation Schema Stream0 Unix

lib/storage/buffer_pool.ml: Bytes Hashtbl List Unix

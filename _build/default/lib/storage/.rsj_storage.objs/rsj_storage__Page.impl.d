lib/storage/page.ml: Array Bytes Char Int32 Int64 Printf Rsj_relation String Value

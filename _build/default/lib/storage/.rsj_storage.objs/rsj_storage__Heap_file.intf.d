lib/storage/heap_file.mli: Buffer_pool Page Relation Rsj_relation Schema Stream0 Tuple

lib/storage/page.mli: Rsj_relation Tuple

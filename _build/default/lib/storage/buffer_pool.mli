(** A small LRU buffer pool over file pages.

    The pool caches page images keyed by (file id, page number) and
    tracks hits, misses and evictions — the quantities the paper's
    disk-era cost intuitions are about: sequential scans stream through
    the pool, while random probes (Olken's accesses) hit or fault
    depending on capacity. The replacement policy is exact LRU. *)

type t

type stats = { hits : int; misses : int; evictions : int }

val create : capacity:int -> t
(** Pool holding up to [capacity] pages (>= 1). *)

val capacity : t -> int
val resident : t -> int

val read :
  t -> file_id:int -> fd:Unix.file_descr -> page_size:int -> page_no:int -> bytes
(** Fetch a page image through the cache: on a miss the page is read
    from [fd] at offset [page_no * page_size] (evicting the least
    recently used page if full). The returned bytes are the cached
    image — treat as read-only. Raises [Failure] on a short read. *)

val invalidate_file : t -> file_id:int -> unit
(** Drop every cached page of one file (used when a file is rewritten). *)

val stats : t -> stats
val reset_stats : t -> unit

(* Exact LRU via a doubly-linked list threaded through the cache
   entries; O(1) hit, O(1) eviction. *)

type key = int * int (* file id, page number *)

type entry = {
  key : key;
  image : bytes;
  mutable prev : entry option;
  mutable next : entry option;
}

type stats = { hits : int; misses : int; evictions : int }

type t = {
  cap : int;
  table : (key, entry) Hashtbl.t;
  mutable head : entry option;  (* most recently used *)
  mutable tail : entry option;  (* least recently used *)
  mutable hits : int;
  mutable misses : int;
  mutable evictions : int;
}

let create ~capacity =
  if capacity < 1 then invalid_arg "Buffer_pool.create: capacity < 1";
  {
    cap = capacity;
    table = Hashtbl.create (2 * capacity);
    head = None;
    tail = None;
    hits = 0;
    misses = 0;
    evictions = 0;
  }

let capacity t = t.cap
let resident t = Hashtbl.length t.table

let unlink t e =
  (match e.prev with Some p -> p.next <- e.next | None -> t.head <- e.next);
  (match e.next with Some n -> n.prev <- e.prev | None -> t.tail <- e.prev);
  e.prev <- None;
  e.next <- None

let push_front t e =
  e.next <- t.head;
  e.prev <- None;
  (match t.head with Some h -> h.prev <- Some e | None -> t.tail <- Some e);
  t.head <- Some e

let touch t e =
  if t.head != Some e then begin
    unlink t e;
    push_front t e
  end

let evict_lru t =
  match t.tail with
  | None -> ()
  | Some e ->
      unlink t e;
      Hashtbl.remove t.table e.key;
      t.evictions <- t.evictions + 1

let read_page_from_disk fd ~page_size ~page_no =
  let buf = Bytes.make page_size '\000' in
  ignore (Unix.lseek fd (page_no * page_size) Unix.SEEK_SET);
  let rec fill pos =
    if pos < page_size then begin
      let k = Unix.read fd buf pos (page_size - pos) in
      if k = 0 then failwith "Buffer_pool: short read (truncated file?)";
      fill (pos + k)
    end
  in
  fill 0;
  buf

let read t ~file_id ~fd ~page_size ~page_no =
  let key = (file_id, page_no) in
  match Hashtbl.find_opt t.table key with
  | Some e ->
      t.hits <- t.hits + 1;
      touch t e;
      e.image
  | None ->
      t.misses <- t.misses + 1;
      if Hashtbl.length t.table >= t.cap then evict_lru t;
      let image = read_page_from_disk fd ~page_size ~page_no in
      let e = { key; image; prev = None; next = None } in
      Hashtbl.replace t.table key e;
      push_front t e;
      image

let invalidate_file t ~file_id =
  let doomed =
    Hashtbl.fold (fun (fid, _) e acc -> if fid = file_id then e :: acc else acc) t.table []
  in
  List.iter
    (fun e ->
      unlink t e;
      Hashtbl.remove t.table e.key)
    doomed

let stats t = { hits = t.hits; misses = t.misses; evictions = t.evictions }

let reset_stats t =
  t.hits <- 0;
  t.misses <- 0;
  t.evictions <- 0

open Rsj_relation

type t = { buf : bytes; size : int }

let header_bytes = 4
let slot_bytes = 2

let get_u16 buf off = Char.code (Bytes.get buf off) lor (Char.code (Bytes.get buf (off + 1)) lsl 8)

let set_u16 buf off v =
  Bytes.set buf off (Char.chr (v land 0xFF));
  Bytes.set buf (off + 1) (Char.chr ((v lsr 8) land 0xFF))

let create ~page_size =
  if page_size < 64 then invalid_arg "Page.create: page_size < 64";
  if page_size > 0xFFFF then invalid_arg "Page.create: page_size > 65535";
  let buf = Bytes.make page_size '\000' in
  set_u16 buf 0 0;
  set_u16 buf 2 header_bytes;
  { buf; size = page_size }

let page_size t = t.size
let tuple_count t = get_u16 t.buf 0
let free_offset t = get_u16 t.buf 2

let slot_offset t i = t.size - (slot_bytes * (i + 1))

let free_space t =
  let used_by_slots = slot_bytes * tuple_count t in
  t.size - free_offset t - used_by_slots - slot_bytes

(* ---- value codec ---- *)

let value_size = function
  | Value.Null -> 1
  | Value.Int _ -> 9
  | Value.Float _ -> 9
  | Value.Str s -> 5 + String.length s

let encoded_size tuple =
  Array.fold_left (fun acc v -> acc + value_size v) 2 tuple

let write_value buf off = function
  | Value.Null ->
      Bytes.set buf off '\000';
      off + 1
  | Value.Int x ->
      Bytes.set buf off '\001';
      Bytes.set_int64_le buf (off + 1) (Int64.of_int x);
      off + 9
  | Value.Float f ->
      Bytes.set buf off '\002';
      Bytes.set_int64_le buf (off + 1) (Int64.bits_of_float f);
      off + 9
  | Value.Str s ->
      Bytes.set buf off '\003';
      Bytes.set_int32_le buf (off + 1) (Int32.of_int (String.length s));
      Bytes.blit_string s 0 buf (off + 5) (String.length s);
      off + 5 + String.length s

let read_value buf off =
  match Bytes.get buf off with
  | '\000' -> (Value.Null, off + 1)
  | '\001' -> (Value.Int (Int64.to_int (Bytes.get_int64_le buf (off + 1))), off + 9)
  | '\002' -> (Value.Float (Int64.float_of_bits (Bytes.get_int64_le buf (off + 1))), off + 9)
  | '\003' ->
      let len = Int32.to_int (Bytes.get_int32_le buf (off + 1)) in
      if len < 0 || off + 5 + len > Bytes.length buf then
        failwith "Page: corrupt string length";
      (Value.Str (Bytes.sub_string buf (off + 5) len), off + 5 + len)
  | c -> failwith (Printf.sprintf "Page: unknown value tag %d" (Char.code c))

let write_tuple buf off tuple =
  set_u16 buf off (Array.length tuple);
  Array.fold_left (fun pos v -> write_value buf pos v) (off + 2) tuple

let read_tuple buf off =
  let arity = get_u16 buf off in
  let out = Array.make arity Value.Null in
  let pos = ref (off + 2) in
  for i = 0 to arity - 1 do
    let v, next = read_value buf !pos in
    out.(i) <- v;
    pos := next
  done;
  out

(* ---- page operations ---- *)

let add_tuple t tuple =
  let need = encoded_size tuple in
  let empty_capacity = t.size - header_bytes - slot_bytes in
  if need > empty_capacity then
    invalid_arg
      (Printf.sprintf "Page.add_tuple: tuple of %d bytes exceeds page capacity %d" need
         empty_capacity);
  if need > free_space t then false
  else begin
    let n = tuple_count t in
    let off = free_offset t in
    let stop = write_tuple t.buf off tuple in
    set_u16 t.buf (slot_offset t n) off;
    set_u16 t.buf 0 (n + 1);
    set_u16 t.buf 2 stop;
    true
  end

let get_tuple t i =
  let n = tuple_count t in
  if i < 0 || i >= n then
    invalid_arg (Printf.sprintf "Page.get_tuple: slot %d out of range [0,%d)" i n);
  let off = get_u16 t.buf (slot_offset t i) in
  if off < header_bytes || off >= t.size then failwith "Page: corrupt slot offset";
  read_tuple t.buf off

let iter t f =
  for i = 0 to tuple_count t - 1 do
    f (get_tuple t i)
  done

let to_bytes t = t.buf

let of_bytes buf =
  let size = Bytes.length buf in
  if size < 64 then failwith "Page.of_bytes: image too small";
  let t = { buf; size } in
  let n = tuple_count t in
  if free_offset t < header_bytes || free_offset t > size then
    failwith "Page.of_bytes: corrupt free offset";
  if slot_bytes * n > size - header_bytes then failwith "Page.of_bytes: corrupt tuple count";
  t

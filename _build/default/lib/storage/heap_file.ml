open Rsj_relation

let magic = "RSJH"
let format_version = 1
let default_page_size = 8192

type t = {
  path : string;
  schema : Schema.t;
  fd : Unix.file_descr;
  page_size : int;
  id : int;
  mutable data_pages : int;  (* full pages written to disk *)
  mutable tuples : int;  (* total appended *)
  mutable current : Page.t;  (* partial page being filled *)
  mutable closed : bool;
  (* Cumulative tuple counts per data page, built lazily for fetch:
     directory.(i) = tuples in pages [0, i]. *)
  mutable directory : int array option;
}

let next_id = ref 0

let fresh_id () =
  incr next_id;
  !next_id

(* ---- header page ---- *)

let write_header t =
  let buf = Bytes.make t.page_size '\000' in
  Bytes.blit_string magic 0 buf 0 4;
  Bytes.set_int32_le buf 4 (Int32.of_int format_version);
  Bytes.set_int32_le buf 8 (Int32.of_int t.page_size);
  Bytes.set_int64_le buf 12 (Int64.of_int t.data_pages);
  Bytes.set_int64_le buf 20 (Int64.of_int t.tuples);
  ignore (Unix.lseek t.fd 0 Unix.SEEK_SET);
  let written = Unix.write t.fd buf 0 t.page_size in
  if written <> t.page_size then failwith "Heap_file: short header write"

let read_header fd path =
  let buf = Bytes.make 28 '\000' in
  ignore (Unix.lseek fd 0 Unix.SEEK_SET);
  let rec fill pos =
    if pos < 28 then begin
      let k = Unix.read fd buf pos (28 - pos) in
      if k = 0 then failwith (Printf.sprintf "Heap_file(%s): truncated header" path);
      fill (pos + k)
    end
  in
  fill 0;
  if Bytes.sub_string buf 0 4 <> magic then
    failwith (Printf.sprintf "Heap_file(%s): bad magic" path);
  let version = Int32.to_int (Bytes.get_int32_le buf 4) in
  if version <> format_version then
    failwith (Printf.sprintf "Heap_file(%s): unsupported version %d" path version);
  let page_size = Int32.to_int (Bytes.get_int32_le buf 8) in
  let data_pages = Int64.to_int (Bytes.get_int64_le buf 12) in
  let tuples = Int64.to_int (Bytes.get_int64_le buf 20) in
  (page_size, data_pages, tuples)

(* ---- lifecycle ---- *)

let create ~path ?(page_size = default_page_size) schema =
  if page_size < 64 || page_size > 0xFFFF then
    invalid_arg "Heap_file.create: page_size out of range [64, 65535]";
  let fd = Unix.openfile path [ Unix.O_RDWR; Unix.O_CREAT; Unix.O_TRUNC ] 0o644 in
  let t =
    {
      path;
      schema;
      fd;
      page_size;
      id = fresh_id ();
      data_pages = 0;
      tuples = 0;
      current = Page.create ~page_size;
      closed = false;
      directory = None;
    }
  in
  write_header t;
  t

let open_existing ~path schema =
  let fd = Unix.openfile path [ Unix.O_RDWR ] 0o644 in
  let page_size, data_pages, tuples = read_header fd path in
  {
    path;
    schema;
    fd;
    page_size;
    id = fresh_id ();
    data_pages;
    tuples;
    current = Page.create ~page_size;
    closed = false;
    directory = None;
  }

let ensure_open t = if t.closed then failwith (Printf.sprintf "Heap_file(%s): closed" t.path)

let write_page_at t index page =
  ignore (Unix.lseek t.fd ((index + 1) * t.page_size) Unix.SEEK_SET);
  let buf = Page.to_bytes page in
  let written = Unix.write t.fd buf 0 t.page_size in
  if written <> t.page_size then failwith "Heap_file: short page write"

let flush_current t =
  if Page.tuple_count t.current > 0 then begin
    write_page_at t t.data_pages t.current;
    t.data_pages <- t.data_pages + 1;
    t.current <- Page.create ~page_size:t.page_size;
    t.directory <- None
  end

let flush t =
  ensure_open t;
  flush_current t;
  write_header t

let close t =
  if not t.closed then begin
    flush_current t;
    write_header t;
    Unix.close t.fd;
    t.closed <- true
  end

let path t = t.path
let schema t = t.schema
let page_size t = t.page_size
let data_page_count t = t.data_pages
let tuple_count t = t.tuples
let file_id t = t.id

let append t row =
  ensure_open t;
  (match Schema.validate t.schema row with
  | Ok () -> ()
  | Error msg -> invalid_arg (Printf.sprintf "Heap_file.append(%s): %s" t.path msg));
  if not (Page.add_tuple t.current row) then begin
    flush_current t;
    if not (Page.add_tuple t.current row) then
      (* Page.add_tuple on an empty page raises for oversized tuples,
         so reaching here is impossible. *)
      assert false
  end;
  t.tuples <- t.tuples + 1;
  t.directory <- None

let read_data_page t pool i =
  ensure_open t;
  if i < 0 || i >= t.data_pages then
    invalid_arg (Printf.sprintf "Heap_file.read_data_page: %d out of [0,%d)" i t.data_pages);
  (* Data page i lives at file page i+1 (after the header). *)
  Page.of_bytes
    (Buffer_pool.read pool ~file_id:t.id ~fd:t.fd ~page_size:t.page_size ~page_no:(i + 1))

let scan t pool =
  ensure_open t;
  let pages = t.data_pages in
  let current = ref None in
  let page_idx = ref 0 in
  let slot = ref 0 in
  let rec next () =
    match !current with
    | Some page when !slot < Page.tuple_count page ->
        let row = Page.get_tuple page !slot in
        incr slot;
        Some row
    | _ ->
        if !page_idx >= pages then None
        else begin
          current := Some (read_data_page t pool !page_idx);
          incr page_idx;
          slot := 0;
          next ()
        end
  in
  Stream0.make ~next ()

let directory t pool =
  match t.directory with
  | Some d -> d
  | None ->
      let d = Array.make (max t.data_pages 1) 0 in
      let acc = ref 0 in
      for i = 0 to t.data_pages - 1 do
        acc := !acc + Page.tuple_count (read_data_page t pool i);
        d.(i) <- !acc
      done;
      t.directory <- Some d;
      d

let fetch t pool idx =
  ensure_open t;
  let flushed = if t.data_pages = 0 then 0 else (directory t pool).(t.data_pages - 1) in
  if idx < 0 || idx >= flushed then
    invalid_arg
      (Printf.sprintf "Heap_file.fetch: tuple %d out of range [0,%d) (unflushed tail?)" idx
         flushed);
  let d = directory t pool in
  (* First page whose cumulative count exceeds idx. *)
  let lo = ref 0 and hi = ref (t.data_pages - 1) in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if d.(mid) <= idx then lo := mid + 1 else hi := mid
  done;
  let page_idx = !lo in
  let before = if page_idx = 0 then 0 else d.(page_idx - 1) in
  Page.get_tuple (read_data_page t pool page_idx) (idx - before)

let to_relation t pool =
  let rel = Relation.create ~name:(Filename.basename t.path) ~capacity:(max 1 t.tuples) t.schema in
  Stream0.iter (Relation.append_unchecked rel) (scan t pool);
  rel

let of_relation ~path ?page_size rel =
  let t = create ~path ?page_size (Relation.schema rel) in
  Relation.iter rel (append t);
  flush t;
  t

(** Disk-backed heap files of slotted pages.

    File layout: a metadata page 0 (magic "RSJH", format version, page
    size, page count, tuple count) followed by data pages. Schemas are
    not stored — the caller supplies one on open, as with {!Csv_io} —
    but arity is validated on every append.

    Reads go through a {!Buffer_pool}, so scans and random fetches have
    observable I/O costs; this is the substrate on which the paper's
    block-level sampling remarks become measurable (see
    {!sample_pages}). Writing is append-only (no update/delete), which
    is all the experiments need. *)

open Rsj_relation

type t

val create : path:string -> ?page_size:int -> Schema.t -> t
(** Create/truncate a heap file (default page size 8192). *)

val open_existing : path:string -> Schema.t -> t
(** Open for reading and further appends. Raises [Failure] on a bad
    magic/version or a page size mismatch with the file header. *)

val close : t -> unit
(** Flush buffered data and the header, then close the fd. Idempotent. *)

val path : t -> string
val schema : t -> Schema.t
val page_size : t -> int
val data_page_count : t -> int
val tuple_count : t -> int

val append : t -> Tuple.t -> unit
(** Buffered append; pages are written as they fill. Validates against
    the schema. Raises [Failure] if the file is closed. *)

val flush : t -> unit
(** Write out the partial page and header without closing. *)

val file_id : t -> int
(** Identity used as the buffer-pool key (unique per open handle). *)

val read_data_page : t -> Buffer_pool.t -> int -> Page.t
(** Fetch data page [i] (0-based among data pages) through the pool. *)

val scan : t -> Buffer_pool.t -> Tuple.t Stream0.t
(** Sequential scan through the pool. Requires a prior {!flush} (or
    {!close}/{!open_existing}) to see all appended tuples. *)

val fetch : t -> Buffer_pool.t -> int -> Tuple.t
(** Global tuple index → tuple, via a per-page cumulative directory
    built on first use. *)

val to_relation : t -> Buffer_pool.t -> Relation.t
(** Materialize into memory. *)

val of_relation : path:string -> ?page_size:int -> Relation.t -> t
(** Write a whole relation out (flushed, ready to scan). *)

lib/sql/ast.ml: Format List Printf String

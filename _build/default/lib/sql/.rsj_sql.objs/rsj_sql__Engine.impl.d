lib/sql/engine.ml: Array Ast Hashtbl List Option Parser Printf Relation Rsj_core Rsj_exec Rsj_relation Rsj_util Schema Stream0 String Tuple Value

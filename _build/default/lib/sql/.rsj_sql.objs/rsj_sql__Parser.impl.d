lib/sql/parser.ml: Array Ast Buffer List Option Printf String

lib/sql/engine.mli: Ast Relation Rsj_exec Rsj_relation Schema Tuple

(** Planner and executor for the SQL subset.

    Turns a parsed {!Ast.query} into an {!Rsj_exec.Plan} over a catalog
    of named relations, then runs it. The [SAMPLE n] clause implements
    the paper's proposal of sampling as a language primitive:

    - [SAMPLE n] places a WR reservoir (Black-Box U2) at the root of
      the query tree — the Naive-Sample construction, valid for any
      query shape;
    - [SAMPLE n USING <strategy>] pushes the sampling into the join per
      the paper's strategies; this requires the query to be a single
      equi-join of two tables (the setting of §5–6). Single-table
      constant filters are pushed below the sampling first — selection
      commutes with sampling (§1) — so [WHERE t1.a = t2.a AND t1.x > 5]
      is sampled correctly.

    Aggregation over a sample estimates the aggregate over the full
    result scaled via {!Rsj_core.Aqp} only in the examples; the engine
    itself evaluates aggregates over whatever rows reach them, exactly
    as a real engine running on a sample operator would. *)

open Rsj_relation

type catalog = (string * Relation.t) list
(** Name → relation bindings visible to FROM. *)

type query_result = {
  schema : Schema.t;
  rows : Tuple.t list;
  metrics : Rsj_exec.Metrics.t;
  plan : Rsj_exec.Plan.t;  (** The executed plan, for EXPLAIN. *)
}

val plan_query : ?seed:int -> catalog -> Ast.query -> (Rsj_exec.Plan.t, string) result
(** Plan without executing. *)

val run_query : ?seed:int -> catalog -> Ast.query -> (query_result, string) result
val run : ?seed:int -> catalog -> string -> (query_result, string) result
(** Parse + plan + execute. All errors (syntax, unknown table/column,
    ambiguity, unsupported sampling shape) come back as [Error msg]. *)

(** Random variate generation for the distributions the paper relies on.

    The sequential black boxes U1 and WR1 (paper §4) consume one
    Binomial(x, p) draw per input tuple, so {!binomial} must be exact (the
    correctness proofs of Theorems 1 and 3 depend on it) and fast for the
    small-mean case that dominates streaming use. {!Zipf} reproduces the
    data generator of §8.1. *)

val binomial : Prng.t -> n:int -> p:float -> int
(** [binomial rng ~n ~p] draws from Binomial(n, p) exactly.

    Implementation: for small mean, sequential inversion from 0 (expected
    O(np) work); for large mean, inversion started at the mode and
    expanded outwards (expected O(sqrt(np(1-p))) work). [p] outside
    [\[0,1\]] is clamped. Raises [Invalid_argument] if [n < 0]. *)

val geometric : Prng.t -> p:float -> int
(** [geometric rng ~p] is the number of failures before the first success
    of a Bernoulli(p) sequence (support 0, 1, 2, ...). Requires
    [0 < p <= 1]. Used for skip-ahead sampling (Vitter-style). *)

val exponential : Prng.t -> rate:float -> float
(** [exponential rng ~rate] draws from Exp(rate), [rate > 0]. *)

val categorical : Prng.t -> weights:float array -> int
(** [categorical rng ~weights] draws index [i] with probability
    proportional to [weights.(i)] (single draw, linear scan). Weights must
    be non-negative with a positive sum. *)

(** Precomputed discrete distribution supporting O(log k) draws by binary
    search on the CDF; used for repeated categorical draws. *)
module Cdf_table : sig
  type t

  val of_weights : float array -> t
  (** Build from non-negative weights with positive sum. *)

  val draw : t -> Prng.t -> int
  (** Draw an index with probability proportional to its weight. *)

  val prob : t -> int -> float
  (** [prob t i] is the normalized probability of index [i]. *)

  val support : t -> int
  (** Number of categories. *)
end

(** The Zipfian data distribution of the paper's experimental setup
    (§8.1): value of rank [i] (1-based) has probability proportional to
    [1 / i^z] over a domain of [support] distinct values. [z = 0] is the
    uniform distribution; the paper uses z in {0, 1, 2, 3}. *)
module Zipf : sig
  type t

  val create : z:float -> support:int -> t
  (** [create ~z ~support] precomputes the CDF. Raises [Invalid_argument]
      if [support <= 0] or [z < 0]. *)

  val draw : t -> Prng.t -> int
  (** [draw t rng] returns a rank in [\[1, support\]]; rank 1 is the most
      frequent. The paper generates both join columns with the same rank
      order so that hot values collide ({i "the most frequent value was
      picked in the same order in each case"}). *)

  val prob : t -> int -> float
  (** [prob t rank] is the probability of [rank]. *)

  val expected_counts : t -> n:int -> float array
  (** [expected_counts t ~n] is the expected frequency of each rank in a
      sample of [n] draws, index 0 holding rank 1. *)

  val z : t -> float
  val support : t -> int
end

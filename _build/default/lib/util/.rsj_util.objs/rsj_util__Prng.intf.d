lib/util/prng.mli:

lib/util/dist.ml: Array Float Prng Stats_math

(** Work-model counters.

    The paper reports running time relative to Naive-Sample on one
    machine; absolute times do not transfer across substrates, so every
    operator additionally counts the work it performs. The dominant
    figure is {!join_output_tuples} — the size of the intermediate join
    each strategy materializes, which is exactly the quantity bounded by
    Theorems 7, 8 and 9 — so the work ratios reproduce the paper's
    relative running times in a hardware-independent way. *)

type t = {
  mutable tuples_scanned : int;
      (** Tuples read from base relations / source streams. *)
  mutable join_output_tuples : int;
      (** Tuples produced by any join operator (intermediate work). *)
  mutable index_probes : int;  (** Point lookups into an index. *)
  mutable hash_build_tuples : int;  (** Tuples inserted into join hash tables. *)
  mutable sort_tuples : int;  (** Tuples passed through sort operators. *)
  mutable output_tuples : int;  (** Tuples delivered to the consumer. *)
  mutable random_accesses : int;
      (** Random (non-sequential) tuple fetches, e.g. Olken's draws from R1. *)
  mutable rejected_samples : int;
      (** Samples discarded by rejection steps (Olken-Sample's
          inefficiency; zero for Stream-Sample by Theorem 6). *)
  mutable stats_lookups : int;
      (** Frequency-statistics / histogram lookups (the "work table"
          probes whose overhead drives the Figure F threshold sweep). *)
}

val create : unit -> t
val reset : t -> unit
val copy : t -> t
val add : t -> t -> t
(** Component-wise sum (fresh value). *)

val total_work : t -> int
(** Scalar summary used for strategy comparisons: scanned + join output
    + probes + hash build + sort + random accesses + rejections. *)

val pp : Format.formatter -> t -> unit
val to_assoc : t -> (string * int) list

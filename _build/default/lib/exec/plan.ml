open Rsj_relation

type join_algorithm = Hash | Merge | Nested_loop

type t =
  | Scan of Relation.t
  | Source of source
  | Filter of Predicate.t * t
  | Project of int list * t
  | Join of join
  | Index_join of index_join
  | Sort of int * t
  | Limit of int * t
  | Transform of transform

and source = { source_name : string; source_schema : Schema.t; produce : unit -> Tuple.t Stream0.t }

and join = {
  algorithm : join_algorithm;
  left : t;
  right : t;
  left_key : int;
  right_key : int;
}

and index_join = { ij_left : t; ij_left_key : int; ij_index : Rsj_index.Hash_index.t }

and transform = {
  transform_name : string;
  child : t;
  out_schema : Schema.t option;
  apply : Metrics.t -> Tuple.t Stream0.t -> Tuple.t Stream0.t;
}

let rec schema_of = function
  | Scan rel -> Relation.schema rel
  | Source s -> s.source_schema
  | Filter (_, child) -> schema_of child
  | Project (cols, child) -> Schema.project (schema_of child) cols
  | Join { left; right; _ } -> Schema.concat (schema_of left) (schema_of right)
  | Index_join { ij_left; ij_index; _ } ->
      Schema.concat (schema_of ij_left)
        (Relation.schema (Rsj_index.Hash_index.relation ij_index))
  | Sort (_, child) -> schema_of child
  | Limit (_, child) -> schema_of child
  | Transform { child; out_schema; _ } -> (
      match out_schema with Some s -> s | None -> schema_of child)

module Vtbl = Hashtbl.Make (struct
  type t = Value.t

  let equal = Value.equal
  let hash = Value.hash
end)

(* Hash join: materialize the right input into buckets, stream the left.
   NULL keys never match (equi-join semantics). *)
let compile_hash_join metrics left_stream right_stream ~left_key ~right_key =
  let buckets : Tuple.t list ref Vtbl.t = Vtbl.create 1024 in
  Stream0.iter
    (fun row ->
      metrics.Metrics.hash_build_tuples <- metrics.Metrics.hash_build_tuples + 1;
      let v = Tuple.attr row right_key in
      if not (Value.is_null v) then
        match Vtbl.find_opt buckets v with
        | Some cell -> cell := row :: !cell
        | None -> Vtbl.replace buckets v (ref [ row ]))
    right_stream;
  (* Bucket lists are in reverse insertion order; restore storage order
     so output order is deterministic. *)
  Vtbl.iter (fun _ cell -> cell := List.rev !cell) buckets;
  let matches row =
    let v = Tuple.attr row left_key in
    if Value.is_null v then Stream0.empty ()
    else
      match Vtbl.find_opt buckets v with
      | None -> Stream0.empty ()
      | Some cell ->
          Stream0.map
            (fun rrow ->
              metrics.Metrics.join_output_tuples <- metrics.Metrics.join_output_tuples + 1;
              Tuple.join row rrow)
            (Stream0.of_list !cell)
  in
  Stream0.concat_map matches left_stream

(* Merge join: sort both sides (blocking), then linear merge with
   duplicate-group cross products. *)
let compile_merge_join metrics left_stream right_stream ~left_key ~right_key =
  let slurp_sorted key stream =
    let arr = Stream0.to_array stream in
    metrics.Metrics.sort_tuples <- metrics.Metrics.sort_tuples + Array.length arr;
    Array.sort (fun a b -> Value.compare (Tuple.attr a key) (Tuple.attr b key)) arr;
    arr
  in
  let l = slurp_sorted left_key left_stream in
  let r = slurp_sorted right_key right_stream in
  let out = ref [] in
  let i = ref 0 and j = ref 0 in
  let nl = Array.length l and nr = Array.length r in
  while !i < nl && !j < nr do
    let lv = Tuple.attr l.(!i) left_key and rv = Tuple.attr r.(!j) right_key in
    if Value.is_null lv then incr i
    else if Value.is_null rv then incr j
    else begin
      let c = Value.compare lv rv in
      if c < 0 then incr i
      else if c > 0 then incr j
      else begin
        (* Find both duplicate groups and emit their cross product. *)
        let i_end = ref (!i + 1) in
        while !i_end < nl && Value.equal (Tuple.attr l.(!i_end) left_key) lv do
          incr i_end
        done;
        let j_end = ref (!j + 1) in
        while !j_end < nr && Value.equal (Tuple.attr r.(!j_end) right_key) rv do
          incr j_end
        done;
        for a = !i to !i_end - 1 do
          for b = !j to !j_end - 1 do
            metrics.Metrics.join_output_tuples <- metrics.Metrics.join_output_tuples + 1;
            out := Tuple.join l.(a) r.(b) :: !out
          done
        done;
        i := !i_end;
        j := !j_end
      end
    end
  done;
  Stream0.of_list (List.rev !out)

(* Block nested loop: materialize the right side, rescan per left tuple. *)
let compile_nested_loop metrics left_stream right_stream ~left_key ~right_key =
  let right_rows = Stream0.to_array right_stream in
  let matches row =
    let v = Tuple.attr row left_key in
    if Value.is_null v then Stream0.empty ()
    else
      Stream0.filter_map
        (fun rrow ->
          let rv = Tuple.attr rrow right_key in
          if (not (Value.is_null rv)) && Value.equal v rv then begin
            metrics.Metrics.join_output_tuples <- metrics.Metrics.join_output_tuples + 1;
            Some (Tuple.join row rrow)
          end
          else None)
        (Stream0.of_array right_rows)
  in
  Stream0.concat_map matches left_stream

let rec compile metrics plan : Tuple.t Stream0.t =
  match plan with
  | Scan rel ->
      Stream0.on_element
        (fun _ -> metrics.Metrics.tuples_scanned <- metrics.Metrics.tuples_scanned + 1)
        (Relation.to_stream rel)
  | Source s ->
      Stream0.on_element
        (fun _ -> metrics.Metrics.tuples_scanned <- metrics.Metrics.tuples_scanned + 1)
        (s.produce ())
  | Filter (pred, child) -> Stream0.filter (Predicate.eval pred) (compile metrics child)
  | Project (cols, child) -> Stream0.map (fun row -> Tuple.project row cols) (compile metrics child)
  | Join { algorithm; left; right; left_key; right_key } -> (
      let ls = compile metrics left and rs = compile metrics right in
      match algorithm with
      | Hash -> compile_hash_join metrics ls rs ~left_key ~right_key
      | Merge -> compile_merge_join metrics ls rs ~left_key ~right_key
      | Nested_loop -> compile_nested_loop metrics ls rs ~left_key ~right_key)
  | Index_join { ij_left; ij_left_key; ij_index } ->
      let ls = compile metrics ij_left in
      Stream0.concat_map
        (fun row ->
          metrics.Metrics.index_probes <- metrics.Metrics.index_probes + 1;
          let v = Tuple.attr row ij_left_key in
          let matches = Rsj_index.Hash_index.matching_tuples ij_index v in
          Stream0.map
            (fun rrow ->
              metrics.Metrics.join_output_tuples <- metrics.Metrics.join_output_tuples + 1;
              Tuple.join row rrow)
            (Stream0.of_array matches))
        ls
  | Sort (col, child) ->
      let rows = Stream0.to_array (compile metrics child) in
      metrics.Metrics.sort_tuples <- metrics.Metrics.sort_tuples + Array.length rows;
      Array.sort (fun a b -> Value.compare (Tuple.attr a col) (Tuple.attr b col)) rows;
      Stream0.of_array rows
  | Limit (n, child) -> Stream0.take n (compile metrics child)
  | Transform { apply; child; _ } -> apply metrics (compile metrics child)

let run ?metrics plan =
  let metrics = match metrics with Some m -> m | None -> Metrics.create () in
  Stream0.on_element
    (fun _ -> metrics.Metrics.output_tuples <- metrics.Metrics.output_tuples + 1)
    (compile metrics plan)

let collect ?metrics plan = Stream0.to_list (run ?metrics plan)
let count ?metrics plan = Stream0.length (run ?metrics plan)

let algorithm_name = function
  | Hash -> "hash"
  | Merge -> "merge"
  | Nested_loop -> "nested-loop"

let rec explain_indented ppf indent plan =
  let pad = String.make indent ' ' in
  match plan with
  | Scan rel ->
      Format.fprintf ppf "%sScan %s (%d rows)@," pad (Relation.name rel) (Relation.cardinality rel)
  | Source s -> Format.fprintf ppf "%sSource %s (pipelined)@," pad s.source_name
  | Filter (pred, child) ->
      Format.fprintf ppf "%sFilter [%s]@," pad (Predicate.to_string pred);
      explain_indented ppf (indent + 2) child
  | Project (cols, child) ->
      Format.fprintf ppf "%sProject [%s]@," pad
        (String.concat ", " (List.map string_of_int cols));
      explain_indented ppf (indent + 2) child
  | Join { algorithm; left; right; left_key; right_key } ->
      Format.fprintf ppf "%sJoin (%s) on left.#%d = right.#%d@," pad (algorithm_name algorithm)
        left_key right_key;
      explain_indented ppf (indent + 2) left;
      explain_indented ppf (indent + 2) right
  | Index_join { ij_left; ij_left_key; ij_index } ->
      Format.fprintf ppf "%sIndexJoin on left.#%d = %s.#%d (hash index)@," pad ij_left_key
        (Relation.name (Rsj_index.Hash_index.relation ij_index))
        (Rsj_index.Hash_index.key ij_index);
      explain_indented ppf (indent + 2) ij_left
  | Sort (col, child) ->
      Format.fprintf ppf "%sSort on #%d@," pad col;
      explain_indented ppf (indent + 2) child
  | Limit (n, child) ->
      Format.fprintf ppf "%sLimit %d@," pad n;
      explain_indented ppf (indent + 2) child
  | Transform { transform_name; child; _ } ->
      Format.fprintf ppf "%s%s@," pad transform_name;
      explain_indented ppf (indent + 2) child

let explain ppf plan =
  Format.fprintf ppf "@[<v>";
  explain_indented ppf 0 plan;
  Format.fprintf ppf "@]"

let source_of_stream ~name schema produce =
  Source { source_name = name; source_schema = schema; produce }

(** Row predicates for filter operators.

    A small first-order language covering the selections the examples
    need, plus an escape hatch ([Custom]) carrying its own description
    for {!Plan.explain}. *)

open Rsj_relation

type t =
  | True
  | Eq of int * Value.t  (** column = constant *)
  | Ne of int * Value.t
  | Lt of int * Value.t
  | Le of int * Value.t
  | Gt of int * Value.t
  | Ge of int * Value.t
  | Between of int * Value.t * Value.t  (** inclusive range *)
  | Is_null of int
  | Not_null of int
  | And of t * t
  | Or of t * t
  | Not of t
  | Custom of string * (Tuple.t -> bool)

val eval : t -> Tuple.t -> bool
(** Comparisons against NULL are false (SQL three-valued logic collapsed
    to two values at the filter: unknown does not pass). *)

val to_string : t -> string

type t = {
  mutable tuples_scanned : int;
  mutable join_output_tuples : int;
  mutable index_probes : int;
  mutable hash_build_tuples : int;
  mutable sort_tuples : int;
  mutable output_tuples : int;
  mutable random_accesses : int;
  mutable rejected_samples : int;
  mutable stats_lookups : int;
}

let create () =
  {
    tuples_scanned = 0;
    join_output_tuples = 0;
    index_probes = 0;
    hash_build_tuples = 0;
    sort_tuples = 0;
    output_tuples = 0;
    random_accesses = 0;
    rejected_samples = 0;
    stats_lookups = 0;
  }

let reset m =
  m.tuples_scanned <- 0;
  m.join_output_tuples <- 0;
  m.index_probes <- 0;
  m.hash_build_tuples <- 0;
  m.sort_tuples <- 0;
  m.output_tuples <- 0;
  m.random_accesses <- 0;
  m.rejected_samples <- 0;
  m.stats_lookups <- 0

let copy m =
  {
    tuples_scanned = m.tuples_scanned;
    join_output_tuples = m.join_output_tuples;
    index_probes = m.index_probes;
    hash_build_tuples = m.hash_build_tuples;
    sort_tuples = m.sort_tuples;
    output_tuples = m.output_tuples;
    random_accesses = m.random_accesses;
    rejected_samples = m.rejected_samples;
    stats_lookups = m.stats_lookups;
  }

let add a b =
  {
    tuples_scanned = a.tuples_scanned + b.tuples_scanned;
    join_output_tuples = a.join_output_tuples + b.join_output_tuples;
    index_probes = a.index_probes + b.index_probes;
    hash_build_tuples = a.hash_build_tuples + b.hash_build_tuples;
    sort_tuples = a.sort_tuples + b.sort_tuples;
    output_tuples = a.output_tuples + b.output_tuples;
    random_accesses = a.random_accesses + b.random_accesses;
    rejected_samples = a.rejected_samples + b.rejected_samples;
    stats_lookups = a.stats_lookups + b.stats_lookups;
  }

let total_work m =
  m.tuples_scanned + m.join_output_tuples + m.index_probes + m.hash_build_tuples
  + m.sort_tuples + m.random_accesses + m.rejected_samples + m.stats_lookups

let to_assoc m =
  [
    ("tuples_scanned", m.tuples_scanned);
    ("join_output_tuples", m.join_output_tuples);
    ("index_probes", m.index_probes);
    ("hash_build_tuples", m.hash_build_tuples);
    ("sort_tuples", m.sort_tuples);
    ("output_tuples", m.output_tuples);
    ("random_accesses", m.random_accesses);
    ("rejected_samples", m.rejected_samples);
    ("stats_lookups", m.stats_lookups);
  ]

let pp ppf m =
  Format.fprintf ppf "@[<v>";
  List.iter (fun (k, v) -> Format.fprintf ppf "%-20s %d@," k v) (to_assoc m);
  Format.fprintf ppf "%-20s %d@]" "total_work" (total_work m)

(** Query plans and their streaming executor.

    Mirrors the paper's implementation environment: a tree of operators
    with Open/GetRow/Close discipline ("adding an operator to the query
    execution tree only requires ... implementing the necessary
    methods"). Plans compile to single-pass {!Rsj_relation.Stream0}
    cursors; all work is counted in a {!Metrics.t}.

    The [Transform] node is the extension point through which the
    sampling library splices its black-box operators into a tree exactly
    as the paper splices U1/WR1 into SQL Server plans. *)

open Rsj_relation

type join_algorithm = Hash | Merge | Nested_loop

type t =
  | Scan of Relation.t  (** Sequential scan of a materialized relation. *)
  | Source of source  (** A pipelined input that is not materialized. *)
  | Filter of Predicate.t * t
  | Project of int list * t
  | Join of join
  | Index_join of index_join
      (** Left stream probed against a prebuilt index on the right
          relation (index nested loops). *)
  | Sort of int * t  (** Full sort on one column (blocking). *)
  | Limit of int * t
  | Transform of transform

and source = { source_name : string; source_schema : Schema.t; produce : unit -> Tuple.t Stream0.t }

and join = {
  algorithm : join_algorithm;
  left : t;
  right : t;
  left_key : int;
  right_key : int;
}

and index_join = { ij_left : t; ij_left_key : int; ij_index : Rsj_index.Hash_index.t }

and transform = {
  transform_name : string;
  child : t;
  out_schema : Schema.t option;  (** [None]: same schema as the child. *)
  apply : Metrics.t -> Tuple.t Stream0.t -> Tuple.t Stream0.t;
}

val schema_of : t -> Schema.t
(** Output schema of a plan. Join outputs use {!Schema.concat}. *)

val run : ?metrics:Metrics.t -> t -> Tuple.t Stream0.t
(** Compile and open the plan. The stream is single-use. Metrics are
    accumulated into [metrics] (fresh if omitted) as tuples flow. *)

val collect : ?metrics:Metrics.t -> t -> Tuple.t list
(** Run to completion and gather the output. *)

val count : ?metrics:Metrics.t -> t -> int
(** Run to completion, counting output tuples without retaining them. *)

val explain : Format.formatter -> t -> unit
(** Operator-tree rendering, one node per line, children indented. *)

val source_of_stream : name:string -> Schema.t -> (unit -> Tuple.t Stream0.t) -> t
(** Wrap a pipelined producer as a leaf. *)

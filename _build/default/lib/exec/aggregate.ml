open Rsj_relation

type func =
  | Count
  | Count_col of int
  | Sum of int
  | Avg of int
  | Min of int
  | Max of int

type t = { group_by : int list; aggregates : (string * func) list }

let func_col = function
  | Count -> None
  | Count_col c | Sum c | Avg c | Min c | Max c -> Some c

let check_cols ~input t =
  let arity = Schema.arity input in
  let check c =
    if c < 0 || c >= arity then
      invalid_arg (Printf.sprintf "Aggregate: column %d out of range (arity %d)" c arity)
  in
  List.iter check t.group_by;
  List.iter (fun (_, f) -> Option.iter check (func_col f)) t.aggregates

let output_schema ~input t =
  check_cols ~input t;
  let group_cols =
    List.map
      (fun c -> { Schema.name = Schema.column_name input c; ty = Schema.column_ty input c })
      t.group_by
  in
  let agg_cols =
    List.map
      (fun (name, f) ->
        let ty =
          match f with
          | Count | Count_col _ -> Value.T_int
          | Sum _ | Avg _ -> Value.T_float
          | Min c | Max c -> Schema.column_ty input c
        in
        { Schema.name; ty })
      t.aggregates
  in
  Schema.create (group_cols @ agg_cols)

(* Running state per aggregate per group. *)
type acc = {
  mutable count : int;
  mutable non_null : int;
  mutable sum : float;
  mutable min_v : Value.t;
  mutable max_v : Value.t;
}

let fresh_acc () = { count = 0; non_null = 0; sum = 0.; min_v = Value.Null; max_v = Value.Null }

let feed_acc acc f row =
  acc.count <- acc.count + 1;
  match func_col f with
  | None -> ()
  | Some c ->
      let v = Tuple.get row c in
      if not (Value.is_null v) then begin
        acc.non_null <- acc.non_null + 1;
        (match f with
        | Sum _ | Avg _ -> acc.sum <- acc.sum +. Value.to_float_exn v
        | Count | Count_col _ | Min _ | Max _ -> ());
        if Value.is_null acc.min_v || Value.compare v acc.min_v < 0 then acc.min_v <- v;
        if Value.is_null acc.max_v || Value.compare v acc.max_v > 0 then acc.max_v <- v
      end

let finish_acc acc = function
  | Count -> Value.Int acc.count
  | Count_col _ -> Value.Int acc.non_null
  | Sum _ -> if acc.non_null = 0 then Value.Float 0. else Value.Float acc.sum
  | Avg _ ->
      if acc.non_null = 0 then Value.Null
      else Value.Float (acc.sum /. float_of_int acc.non_null)
  | Min _ -> acc.min_v
  | Max _ -> acc.max_v

let apply t ~input stream =
  check_cols ~input t;
  let groups : (Tuple.t, acc array) Hashtbl.t = Hashtbl.create 64 in
  Stream0.iter
    (fun row ->
      let key = Array.of_list (List.map (Tuple.get row) t.group_by) in
      let accs =
        match Hashtbl.find_opt groups key with
        | Some a -> a
        | None ->
            let a = Array.init (List.length t.aggregates) (fun _ -> fresh_acc ()) in
            Hashtbl.replace groups key a;
            a
      in
      List.iteri (fun i (_, f) -> feed_acc accs.(i) f row) t.aggregates)
    stream;
  let out = ref [] in
  Hashtbl.iter
    (fun key accs ->
      let agg_values = List.mapi (fun i (_, f) -> finish_acc accs.(i) f) t.aggregates in
      out := Array.append key (Array.of_list agg_values) :: !out)
    groups;
  Stream0.of_list !out

let plan t child =
  let input = Plan.schema_of child in
  Plan.Transform
    {
      Plan.transform_name =
        Printf.sprintf "Aggregate [group by %s; %s]"
          (String.concat "," (List.map string_of_int t.group_by))
          (String.concat ", " (List.map fst t.aggregates));
      child;
      out_schema = Some (output_schema ~input t);
      apply = (fun _metrics stream -> apply t ~input stream);
    }

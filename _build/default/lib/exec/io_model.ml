type t = {
  page_size_tuples : int;
  sequential_page_cost : float;
  random_page_cost : float;
  cpu_tuple_cost : float;
}

let default_disk =
  { page_size_tuples = 100; sequential_page_cost = 1.0; random_page_cost = 4.0; cpu_tuple_cost = 0.01 }

let in_memory =
  { page_size_tuples = 1; sequential_page_cost = 1.0; random_page_cost = 1.0; cpu_tuple_cost = 1.0 }

let cost model (m : Metrics.t) =
  if model.page_size_tuples <= 0 then invalid_arg "Io_model.cost: page_size_tuples <= 0";
  let seq_pages =
    (m.tuples_scanned + model.page_size_tuples - 1) / model.page_size_tuples
  in
  let random_pages = m.random_accesses + m.index_probes in
  let cpu_tuples =
    m.join_output_tuples + m.hash_build_tuples + m.sort_tuples + m.rejected_samples
    + m.stats_lookups
  in
  (float_of_int seq_pages *. model.sequential_page_cost)
  +. (float_of_int random_pages *. model.random_page_cost)
  +. (float_of_int cpu_tuples *. model.cpu_tuple_cost)

let relative_pct model ~baseline m =
  let b = cost model baseline in
  if b <= 0. then nan else 100. *. cost model m /. b
